// Org chart: the tree-DP queries on the §5 connectivity structure. A
// company's reporting lines form a tree rooted at the CEO (employee 0);
// each seat carries a headcount weight (1 filled, 0 vacant). Reorgs
// re-home whole teams — a cut of the old reporting edge and a link to
// the new manager, which the structure repairs with two O(1)-word shift
// broadcasts — and HR audits ask rollups between them: QSubtreeSum
// answers "how many filled seats report up to m?" without ever walking
// the tree, QPathSum measures an employee's management chain, QTreeTop
// names a component's heaviest seat. The stream flows through Ingest,
// so audits ride the same waves as the reorgs they interleave with and
// every answer is snapshot-consistent at its arrival position — which
// is what lets the local replay below check them exactly.
package main

import (
	"fmt"
	"math/rand"

	"dmpc"
)

func main() {
	const staff = 180
	const reorgs = 120
	const auditsPerReorg = 3

	rng := rand.New(rand.NewSource(7))
	cc := dmpc.NewConnectivity(staff, 4*staff)

	// Onboarding: everyone reports to somebody already onboarded, and
	// every seat starts filled (headcount weight 1).
	parent := make([]int, staff)
	parent[0] = -1
	var boot []dmpc.Op
	for e := 1; e < staff; e++ {
		parent[e] = rng.Intn(e)
		boot = append(boot, dmpc.Ins(e, parent[e]))
	}
	filled := make([]int64, staff)
	for e := 0; e < staff; e++ {
		filled[e] = 1
		boot = append(boot, dmpc.SetWeight(e, 1))
	}
	cc.Apply(boot)
	fmt.Printf("org chart up: %d seats reporting to employee 0\n", staff)

	// Local replay oracles over the parent array.
	subtree := func(m int) []bool {
		in := make([]bool, staff)
		in[m] = true
		for changed := true; changed; {
			changed = false
			for e := 1; e < staff; e++ {
				if !in[e] && in[parent[e]] {
					in[e] = true
					changed = true
				}
			}
		}
		return in
	}
	subtreeHeads := func(m int) int64 {
		var sum int64
		for e, ok := range subtree(m) {
			if ok {
				sum += filled[e]
			}
		}
		return sum
	}
	chainHeads := func(e int) int64 {
		var sum int64
		for ; e != -1; e = parent[e] {
			sum += filled[e]
		}
		return sum
	}

	// The reorg season: each event re-homes one team under a manager
	// outside it, sometimes opens or fills a seat, and is followed by a
	// burst of audit queries one tick later.
	var arrivals []dmpc.Arrival
	var want []int64
	t := int64(0)
	for r := 0; r < reorgs; r++ {
		e := 1 + rng.Intn(staff-1)
		in := subtree(e)
		nm := rng.Intn(staff)
		for in[nm] {
			nm = rng.Intn(staff)
		}
		arrivals = append(arrivals,
			dmpc.Arrival{At: t, Op: dmpc.Del(e, parent[e])},
			dmpc.Arrival{At: t, Op: dmpc.Ins(e, nm)})
		parent[e] = nm
		if r%5 == 0 {
			s := rng.Intn(staff)
			filled[s] ^= 1
			arrivals = append(arrivals, dmpc.Arrival{At: t, Op: dmpc.SetWeight(s, dmpc.Weight(filled[s]))})
		}
		for a := 0; a < auditsPerReorg; a++ {
			m := rng.Intn(staff)
			arrivals = append(arrivals, dmpc.Arrival{At: t + 8, Op: dmpc.QSubtreeSum(0, m)})
			want = append(want, subtreeHeads(m))
		}
		t += 24
	}
	// A final round of chain and argmax reads: how deep does employee 17
	// sit, and which seat tops the (single) company tree?
	arrivals = append(arrivals, dmpc.Arrival{At: t, Op: dmpc.QPathSum(17, 0)})
	want = append(want, chainHeads(17))
	arrivals = append(arrivals, dmpc.Arrival{At: t, Op: dmpc.QTreeTop(0)})
	top := int64(-1)
	for e := 0; e < staff; e++ {
		if top == -1 || filled[e] > filled[top] {
			top = int64(e)
		}
	}
	want = append(want, top)

	res, st := dmpc.Ingest(cc, arrivals, dmpc.IngestorConfig{Pipeline: cc, MaxAge: 8})

	ok := len(res) == len(want)
	for i := range want {
		if !ok || res[i].Int != want[i] {
			ok = false
			break
		}
	}
	fmt.Printf("reorgs: %d team moves, %d audits answered mid-stream\n", reorgs, len(want))
	fmt.Printf("amortized: %.2f rounds/op, p95 latency %d rounds\n",
		st.RoundsPerOp(), st.P95())
	fmt.Printf("headcount rollups matching local replay: %v\n", ok)
}
