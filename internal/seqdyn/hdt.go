package seqdyn

import (
	"fmt"

	"dmpc/internal/graph"
)

// HDT is the fully-dynamic connectivity structure of Holm, de Lichtenberg
// and Thorup (J.ACM 2001), reference [21] of the paper: a hierarchy of
// O(log n) spanning forests in which deleted tree edges are replaced by
// searching non-tree edges level by level, amortizing to O(log² n) per
// update. It is the centralized algorithm behind the paper's Table 1
// reduction rows for connected components.
type HDT struct {
	n      int
	lmax   int
	forest []*ETT                     // forest[i] spans edges of level >= i
	adj    []map[int32]map[int32]bool // adj[i][v] = non-tree neighbors at level i
	level  map[graph.Edge]int
	isTree map[graph.Edge]bool
	Ops    Counter
}

// NewHDT returns an empty structure on n vertices.
func NewHDT(n int) *HDT {
	lmax := 1
	for 1<<lmax < n {
		lmax++
	}
	// One spare level beyond the theoretical maximum guards the push-down
	// boundary (trees at level lmax have a single vertex, so the spare is
	// never populated in practice).
	h := &HDT{
		n:      n,
		lmax:   lmax,
		forest: make([]*ETT, lmax+2),
		adj:    make([]map[int32]map[int32]bool, lmax+2),
		level:  make(map[graph.Edge]int),
		isTree: make(map[graph.Edge]bool),
	}
	for i := range h.forest {
		h.forest[i] = NewETT(&h.Ops)
		h.adj[i] = make(map[int32]map[int32]bool)
	}
	return h
}

// Connected reports whether u and v are connected.
func (h *HDT) Connected(u, v int) bool {
	h.Ops.Inc(1)
	return h.forest[0].Connected(u, v)
}

// HasEdge reports whether (u,v) is currently in the graph.
func (h *HDT) HasEdge(u, v int) bool {
	_, ok := h.level[graph.NormEdge(u, v)]
	return ok
}

func (h *HDT) addNonTree(lvl int, u, v int32) {
	for _, pair := range [2][2]int32{{u, v}, {v, u}} {
		a, b := pair[0], pair[1]
		s := h.adj[lvl][a]
		if s == nil {
			s = make(map[int32]bool)
			h.adj[lvl][a] = s
		}
		if len(s) == 0 {
			h.forest[lvl].SetVertexFlag(int(a), true)
		}
		s[b] = true
		h.Ops.Inc(1)
	}
}

func (h *HDT) removeNonTree(lvl int, u, v int32) {
	for _, pair := range [2][2]int32{{u, v}, {v, u}} {
		a, b := pair[0], pair[1]
		s := h.adj[lvl][a]
		delete(s, b)
		if len(s) == 0 {
			h.forest[lvl].SetVertexFlag(int(a), false)
		}
		h.Ops.Inc(1)
	}
}

// Insert adds edge (u,v). Duplicate inserts and self-loops are no-ops.
func (h *HDT) Insert(u, v int) {
	if u == v {
		return
	}
	e := graph.NormEdge(u, v)
	if _, dup := h.level[e]; dup {
		return
	}
	h.level[e] = 0
	if !h.forest[0].Connected(u, v) {
		h.isTree[e] = true
		h.forest[0].Link(e.U, e.V)
		h.forest[0].SetEdgeFlag(e.U, e.V, true) // level exactly 0
		return
	}
	h.isTree[e] = false
	h.addNonTree(0, int32(e.U), int32(e.V))
}

// Delete removes edge (u,v); a removed tree edge triggers the level-wise
// replacement search. Unknown edges are no-ops.
func (h *HDT) Delete(u, v int) {
	e := graph.NormEdge(u, v)
	lvl, ok := h.level[e]
	if !ok {
		return
	}
	delete(h.level, e)
	if !h.isTree[e] {
		delete(h.isTree, e)
		h.removeNonTree(lvl, int32(e.U), int32(e.V))
		return
	}
	delete(h.isTree, e)
	// Remove from forests 0..lvl.
	for i := 0; i <= lvl; i++ {
		h.forest[i].Cut(e.U, e.V)
	}
	h.replace(e.U, e.V, lvl)
}

// replace searches for a replacement edge reconnecting u's and v's trees,
// starting at level lvl and descending to 0.
func (h *HDT) replace(u, v, lvl int) {
	for i := lvl; i >= 0; i-- {
		f := h.forest[i]
		// Work on the smaller tree; pick its representative endpoint.
		small := u
		if f.TreeSize(u) > f.TreeSize(v) {
			small = v
		}
		// Push all level-exactly-i tree edges of the small tree to i+1.
		for {
			a, b, ok := f.FindEdgeFlag(small)
			if !ok {
				break
			}
			te := graph.NormEdge(a, b)
			f.SetEdgeFlag(a, b, false)
			h.level[te] = i + 1
			h.forest[i+1].Link(a, b)
			h.forest[i+1].SetEdgeFlag(a, b, true)
			h.Ops.Inc(1)
		}
		// Scan level-i non-tree edges incident to the small tree.
		for {
			x, ok := f.FindVertexFlag(small)
			if !ok {
				break
			}
			x32 := int32(x)
			var found *graph.Edge
			for y := range h.adj[i][x32] {
				h.Ops.Inc(1)
				ne := graph.NormEdge(x, int(y))
				if f.Connected(x, int(y)) {
					// Both endpoints in the small tree: promote to i+1.
					h.removeNonTree(i, x32, y)
					h.addNonTree(i+1, x32, y)
					h.level[ne] = i + 1
					continue
				}
				// Crossing edge: replacement found.
				found = &ne
				break
			}
			if found != nil {
				fe := *found
				h.removeNonTree(i, int32(fe.U), int32(fe.V))
				h.isTree[fe] = true
				// level stays i; link into forests 0..i.
				for j := 0; j <= i; j++ {
					h.forest[j].Link(fe.U, fe.V)
				}
				h.forest[i].SetEdgeFlag(fe.U, fe.V, true)
				return
			}
		}
	}
}

// Components returns the number of connected components (all n vertices
// count, including isolated ones).
func (h *HDT) Components() int {
	uf := NewUnionFind(h.n)
	for e, tree := range h.isTree {
		if tree {
			uf.Union(e.U, e.V)
		}
	}
	return uf.Components()
}

// CheckInvariants verifies that tree/non-tree classification matches the
// actual forests and that non-tree edges never cross components. Used by
// tests; returns the first violation.
func (h *HDT) CheckInvariants() error {
	for e, lvl := range h.level {
		if h.isTree[e] {
			for i := 0; i <= lvl; i++ {
				if !h.forest[i].HasEdge(e.U, e.V) && !h.forest[i].HasEdge(e.V, e.U) {
					return fmt.Errorf("tree edge %v missing from forest %d (level %d)", e, i, lvl)
				}
			}
		} else {
			if !h.forest[lvl].Connected(e.U, e.V) {
				return fmt.Errorf("non-tree edge %v crosses components at level %d", e, lvl)
			}
		}
	}
	return nil
}
