package seqdyn

// UnionFind is a disjoint-set forest with union by rank and path
// compression: the classic incremental connectivity structure, used both as
// an oracle and as a reduction target for insert-only workloads.
type UnionFind struct {
	parent []int32
	rank   []int8
	comps  int
	Ops    Counter
}

// NewUnionFind returns n singleton sets.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{parent: make([]int32, n), rank: make([]int8, n), comps: n}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Find returns the representative of x's set.
func (u *UnionFind) Find(x int) int {
	root := x
	for int(u.parent[root]) != root {
		root = int(u.parent[root])
		u.Ops.Inc(1)
	}
	for int(u.parent[x]) != root {
		u.parent[x], x = int32(root), int(u.parent[x])
		u.Ops.Inc(1)
	}
	u.Ops.Inc(1)
	return root
}

// Union merges the sets of a and b, reporting whether they were distinct.
func (u *UnionFind) Union(a, b int) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = int32(ra)
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.comps--
	u.Ops.Inc(1)
	return true
}

// Connected reports whether a and b are in the same set.
func (u *UnionFind) Connected(a, b int) bool { return u.Find(a) == u.Find(b) }

// Components returns the number of disjoint sets.
func (u *UnionFind) Components() int { return u.comps }
