package seqdyn

import "fmt"

// ETT maintains Euler tours of a forest in balanced search trees (treaps),
// the classic O(log n) link/cut/connectivity structure of Henzinger–King
// and Holm et al. The tour of each tree is a sequence containing one loop
// element per vertex and two arc elements per tree edge; the treap stores
// the sequence by implicit position.
//
// Flag augmentation (per-node bits with subtree ORs) supports the HDT
// connectivity algorithm: forests at level i flag tree edges whose level is
// exactly i and vertices that own non-tree edges at level i, so the
// replacement search can enumerate flagged elements in O(log n) each.
type ETT struct {
	loop map[int32]*ettNode
	arc  map[int64]*ettNode
	seed uint64
	Ops  *Counter
}

// Flag bits for ettNode.
const (
	// FlagEdgeExact marks a tree edge whose level equals this forest's.
	FlagEdgeExact uint8 = 1 << iota
	// FlagVertexNonTree marks a vertex owning non-tree edges at this level.
	FlagVertexNonTree
)

type ettNode struct {
	l, r, p  *ettNode
	prio     uint64
	size     int32
	loops    int32
	u, v     int32
	flags    uint8
	subFlags uint8
}

func (n *ettNode) isLoop() bool { return n.u == n.v }

// NewETT returns an empty forest; vertices materialize lazily as
// singletons. ops may be nil.
func NewETT(ops *Counter) *ETT {
	if ops == nil {
		ops = &Counter{}
	}
	return &ETT{
		loop: make(map[int32]*ettNode),
		arc:  make(map[int64]*ettNode),
		seed: 0x9e3779b97f4a7c15,
		Ops:  ops,
	}
}

func arcKey(u, v int32) int64 { return int64(u)<<32 | int64(uint32(v)) }

// splitmix64 gives deterministic, well-mixed treap priorities.
func (t *ETT) nextPrio() uint64 {
	t.seed += 0x9e3779b97f4a7c15
	z := t.seed
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func size(n *ettNode) int32 {
	if n == nil {
		return 0
	}
	return n.size
}

func loopsOf(n *ettNode) int32 {
	if n == nil {
		return 0
	}
	return n.loops
}

func subFlags(n *ettNode) uint8 {
	if n == nil {
		return 0
	}
	return n.subFlags
}

func (n *ettNode) pull() {
	n.size = 1 + size(n.l) + size(n.r)
	n.loops = loopsOf(n.l) + loopsOf(n.r)
	if n.isLoop() {
		n.loops++
	}
	n.subFlags = n.flags | subFlags(n.l) | subFlags(n.r)
	if n.l != nil {
		n.l.p = n
	}
	if n.r != nil {
		n.r.p = n
	}
}

func (t *ETT) merge(a, b *ettNode) *ettNode {
	t.Ops.Inc(1)
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.prio > b.prio {
		a.r = t.merge(a.r, b)
		a.pull()
		return a
	}
	b.l = t.merge(a, b.l)
	b.pull()
	return b
}

// splitAt divides the sequence rooted at n into the first k elements and
// the rest; both results have nil parents.
func (t *ETT) splitAt(n *ettNode, k int32) (a, b *ettNode) {
	t.Ops.Inc(1)
	if n == nil {
		return nil, nil
	}
	if size(n.l) >= k {
		a, n.l = t.splitAt(n.l, k)
		n.pull()
		n.p = nil
		if a != nil {
			a.p = nil
		}
		return a, n
	}
	n.r, b = t.splitAt(n.r, k-size(n.l)-1)
	n.pull()
	n.p = nil
	if b != nil {
		b.p = nil
	}
	return n, b
}

func (t *ETT) rootOf(n *ettNode) *ettNode {
	for n.p != nil {
		n = n.p
		t.Ops.Inc(1)
	}
	return n
}

// indexOf returns n's 0-based position in its sequence.
func (t *ETT) indexOf(n *ettNode) int32 {
	i := size(n.l)
	for n.p != nil {
		if n == n.p.r {
			i += size(n.p.l) + 1
		}
		n = n.p
		t.Ops.Inc(1)
	}
	return i
}

// loopNode returns v's loop node, creating a singleton lazily.
func (t *ETT) loopNode(v int32) *ettNode {
	if n, ok := t.loop[v]; ok {
		return n
	}
	n := &ettNode{prio: t.nextPrio(), u: v, v: v}
	n.pull()
	t.loop[v] = n
	return n
}

// Connected reports whether u and v are in the same tree.
func (t *ETT) Connected(u, v int) bool {
	if u == v {
		return true
	}
	return t.rootOf(t.loopNode(int32(u))) == t.rootOf(t.loopNode(int32(v)))
}

// TreeSize returns the number of vertices in v's tree.
func (t *ETT) TreeSize(v int) int {
	return int(t.rootOf(t.loopNode(int32(v))).loops)
}

// HasEdge reports whether (u,v) is a tree edge of this forest.
func (t *ETT) HasEdge(u, v int) bool {
	_, ok := t.arc[arcKey(int32(u), int32(v))]
	return ok
}

// reroot rotates v's tour so it starts at v's loop node.
func (t *ETT) reroot(n *ettNode) *ettNode {
	root := t.rootOf(n)
	i := t.indexOf(n)
	if i == 0 {
		return root
	}
	a, b := t.splitAt(root, i)
	return t.merge(b, a)
}

// Link adds tree edge (u,v); the trees must be distinct (not checked —
// callers maintain forest-ness; Connected is available).
func (t *ETT) Link(u, v int) {
	nu, nv := t.loopNode(int32(u)), t.loopNode(int32(v))
	tu := t.reroot(nu)
	tv := t.reroot(nv)
	auv := &ettNode{prio: t.nextPrio(), u: int32(u), v: int32(v)}
	auv.pull()
	avu := &ettNode{prio: t.nextPrio(), u: int32(v), v: int32(u)}
	avu.pull()
	t.arc[arcKey(int32(u), int32(v))] = auv
	t.arc[arcKey(int32(v), int32(u))] = avu
	t.merge(t.merge(tu, auv), t.merge(tv, avu))
}

// Cut removes tree edge (u,v); panics if absent.
func (t *ETT) Cut(u, v int) {
	nuv, ok1 := t.arc[arcKey(int32(u), int32(v))]
	nvu, ok2 := t.arc[arcKey(int32(v), int32(u))]
	if !ok1 || !ok2 {
		panic(fmt.Sprintf("seqdyn: Cut(%d,%d): not a tree edge", u, v))
	}
	delete(t.arc, arcKey(int32(u), int32(v)))
	delete(t.arc, arcKey(int32(v), int32(u)))
	i, j := t.indexOf(nuv), t.indexOf(nvu)
	if i > j {
		nuv, nvu = nvu, nuv
		i, j = j, i
	}
	root := t.rootOf(nuv)
	a, rest := t.splitAt(root, i)
	mid, c := t.splitAt(rest, j-i+1)
	// mid = arc ++ M ++ arc; strip both arc nodes.
	_, m1 := t.splitAt(mid, 1)
	m, _ := t.splitAt(m1, size(m1)-1)
	t.merge(a, c)
	_ = m // m is the detached subtree's tour, already a standalone root
}

// SetEdgeFlag sets or clears FlagEdgeExact on tree edge (u,v) (stored on
// the u->v arc as inserted by Link; callers pass a consistent orientation).
func (t *ETT) SetEdgeFlag(u, v int, on bool) {
	n, ok := t.arc[arcKey(int32(u), int32(v))]
	if !ok {
		panic(fmt.Sprintf("seqdyn: SetEdgeFlag(%d,%d): not a tree edge", u, v))
	}
	t.setFlag(n, FlagEdgeExact, on)
}

// SetVertexFlag sets or clears FlagVertexNonTree on v's loop node.
func (t *ETT) SetVertexFlag(v int, on bool) {
	t.setFlag(t.loopNode(int32(v)), FlagVertexNonTree, on)
}

func (t *ETT) setFlag(n *ettNode, bit uint8, on bool) {
	if on {
		n.flags |= bit
	} else {
		n.flags &^= bit
	}
	for m := n; m != nil; m = m.p {
		m.subFlags = m.flags | subFlags(m.l) | subFlags(m.r)
		t.Ops.Inc(1)
	}
}

// FindEdgeFlag returns some tree edge flagged FlagEdgeExact in v's tree.
func (t *ETT) FindEdgeFlag(v int) (a, b int, ok bool) {
	n := t.findFlag(t.rootOf(t.loopNode(int32(v))), FlagEdgeExact)
	if n == nil {
		return 0, 0, false
	}
	return int(n.u), int(n.v), true
}

// FindVertexFlag returns some vertex flagged FlagVertexNonTree in v's tree.
func (t *ETT) FindVertexFlag(v int) (int, bool) {
	n := t.findFlag(t.rootOf(t.loopNode(int32(v))), FlagVertexNonTree)
	if n == nil {
		return 0, false
	}
	return int(n.u), true
}

func (t *ETT) findFlag(n *ettNode, bit uint8) *ettNode {
	for n != nil && n.subFlags&bit != 0 {
		t.Ops.Inc(1)
		if n.flags&bit != 0 {
			return n
		}
		if subFlags(n.l)&bit != 0 {
			n = n.l
		} else {
			n = n.r
		}
	}
	return nil
}

// TourVertices returns the distinct vertices of v's tree in tour order —
// an O(size) enumeration used by oracles and the MSF replacement scan.
func (t *ETT) TourVertices(v int) []int {
	var out []int
	var walk func(n *ettNode)
	walk = func(n *ettNode) {
		if n == nil {
			return
		}
		walk(n.l)
		if n.isLoop() {
			out = append(out, int(n.u))
		}
		walk(n.r)
	}
	walk(t.rootOf(t.loopNode(int32(v))))
	return out
}
