package graph

import "math/rand"

// Stream produces dynamic update sequences. Each generator returns the
// updates and the final graph obtained by replaying them; callers that need
// intermediate states replay the prefix themselves.

// RandomStream emits length updates on n vertices: with probability pInsert
// a fresh random edge is inserted, otherwise a uniformly random present edge
// is deleted (falling back to an insert when the graph is empty). Weights
// are uniform in [1, maxW].
func RandomStream(n, length int, pInsert float64, maxW Weight, rng *rand.Rand) []Update {
	g := New(n)
	updates := make([]Update, 0, length)
	present := make([]Edge, 0, length)
	pos := make(map[Edge]int)

	addRandom := func() bool {
		for t := 0; t < 50; t++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v || g.Has(u, v) {
				continue
			}
			w := Weight(1)
			if maxW > 1 {
				w = 1 + Weight(rng.Int63n(int64(maxW)))
			}
			g.Insert(u, v, w)
			e := NormEdge(u, v)
			pos[e] = len(present)
			present = append(present, e)
			updates = append(updates, Update{Op: Insert, U: u, V: v, W: w})
			return true
		}
		return false
	}
	removeRandom := func() bool {
		if len(present) == 0 {
			return false
		}
		i := rng.Intn(len(present))
		e := present[i]
		last := len(present) - 1
		present[i] = present[last]
		pos[present[i]] = i
		present = present[:last]
		delete(pos, e)
		g.Delete(e.U, e.V)
		updates = append(updates, Update{Op: Delete, U: e.U, V: e.V})
		return true
	}

	for len(updates) < length {
		if rng.Float64() < pInsert || len(present) == 0 {
			if !addRandom() && !removeRandom() {
				break
			}
		} else {
			removeRandom()
		}
	}
	return updates
}

// SlidingWindow emits inserts until the graph holds window edges, then
// alternates deleting the oldest edge and inserting a fresh one — the
// "evolving web / social network" workload from the paper's introduction.
func SlidingWindow(n, window, length int, maxW Weight, rng *rand.Rand) []Update {
	g := New(n)
	var fifo []Edge
	updates := make([]Update, 0, length)
	insert := func() {
		for t := 0; t < 50; t++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v || g.Has(u, v) {
				continue
			}
			w := Weight(1)
			if maxW > 1 {
				w = 1 + Weight(rng.Int63n(int64(maxW)))
			}
			g.Insert(u, v, w)
			fifo = append(fifo, NormEdge(u, v))
			updates = append(updates, Update{Op: Insert, U: u, V: v, W: w})
			return
		}
	}
	for len(updates) < length {
		if len(fifo) < window {
			insert()
			continue
		}
		e := fifo[0]
		fifo = fifo[1:]
		g.Delete(e.U, e.V)
		updates = append(updates, Update{Op: Delete, U: e.U, V: e.V})
		if len(updates) < length {
			insert()
		}
	}
	return updates
}

// TreeChurn builds a random spanning tree over n vertices plus extra
// non-tree edges, then repeatedly deletes a random *tree* edge and reinserts
// it. This forces the hard case of dynamic connectivity (spanning-forest
// repair / replacement search) on every deletion.
func TreeChurn(n, extra, churn int, maxW Weight, rng *rand.Rand) (initial []Update, churnUpdates []Update) {
	tree := RandomTree(n, maxW, rng)
	treeEdges := tree.Edges()
	g := tree.Clone()
	for _, e := range treeEdges {
		initial = append(initial, Update{Op: Insert, U: e.U, V: e.V, W: e.W})
	}
	for i := 0; i < extra; i++ {
		for t := 0; t < 50; t++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v || g.Has(u, v) {
				continue
			}
			w := Weight(1)
			if maxW > 1 {
				w = 1 + Weight(rng.Int63n(int64(maxW)))
			}
			g.Insert(u, v, w)
			initial = append(initial, Update{Op: Insert, U: u, V: v, W: w})
			break
		}
	}
	for i := 0; i < churn; i++ {
		e := treeEdges[rng.Intn(len(treeEdges))]
		churnUpdates = append(churnUpdates, Update{Op: Delete, U: e.U, V: e.V})
		churnUpdates = append(churnUpdates, Update{Op: Insert, U: e.U, V: e.V, W: e.W})
	}
	return initial, churnUpdates
}

// MixedStream interleaves typed queries into an update stream so the
// running read fraction tracks readfrac: after each update, queries drawn
// from mkQuery are appended until reads/(reads+writes) reaches the target.
// This is the standard mixed read/write workload of the unified op
// pipeline; the relative update order is preserved exactly.
func MixedStream(updates []Update, readfrac float64, mkQuery func(rng *rand.Rand) Op, rng *rand.Rand) []Op {
	if readfrac <= 0 || readfrac >= 1 || mkQuery == nil {
		return UpdateOps(updates)
	}
	ops := make([]Op, 0, int(float64(len(updates))/(1-readfrac))+1)
	reads, writes := 0, 0
	for _, up := range updates {
		ops = append(ops, OpUpdate(up))
		writes++
		for float64(reads) < readfrac/(1-readfrac)*float64(writes) {
			ops = append(ops, mkQuery(rng))
			reads++
		}
	}
	return ops
}

// InsertAll returns an insert-only stream materializing g in random order.
func InsertAll(g *Graph, rng *rand.Rand) []Update {
	edges := g.Edges()
	if rng != nil {
		rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	}
	updates := make([]Update, len(edges))
	for i, e := range edges {
		updates[i] = Update{Op: Insert, U: e.U, V: e.V, W: e.W}
	}
	return updates
}
