package mpc

import (
	"math"
	"testing"
)

// TestStreamStatsPercentile pins the nearest-rank rule and the derived
// percentiles against hand-computed values.
func TestStreamStatsPercentile(t *testing.T) {
	var s StreamStats
	if s.P99() != 0 || s.P50() != 0 {
		t.Fatal("empty stream reports nonzero percentiles")
	}
	s.Latencies = []int64{9, 1, 5} // unsorted on purpose
	if got := s.P50(); got != 5 {
		t.Fatalf("P50 = %d, want 5", got)
	}
	if got := s.Percentile(100); got != 9 {
		t.Fatalf("P100 = %d, want 9", got)
	}
	if got := s.Percentile(1); got != 1 {
		t.Fatalf("P1 = %d, want 1", got)
	}
	// 100 latencies 1..100: nearest-rank p99 is the 99th value.
	s.Latencies = s.Latencies[:0]
	for i := 1; i <= 100; i++ {
		s.Latencies = append(s.Latencies, int64(i))
	}
	if got := s.P99(); got != 99 {
		t.Fatalf("P99 over 1..100 = %d, want 99", got)
	}
	if got := s.P95(); got != 95 {
		t.Fatalf("P95 over 1..100 = %d, want 95", got)
	}
	if got := s.P50(); got != 50 {
		t.Fatalf("P50 over 1..100 = %d, want 50", got)
	}
	s.Ops = 50
	s.Rounds = 100
	if got := s.RoundsPerOp(); got != 2 {
		t.Fatalf("RoundsPerOp = %v, want 2", got)
	}
}

// TestPercentileEmpty pins the empty-vector behavior: every percentile
// of a stream (or tenant slice) with no recorded latencies is 0, never
// an index panic — an Ingestor that admitted nothing still reports.
func TestPercentileEmpty(t *testing.T) {
	var s StreamStats
	for _, q := range []float64{0.001, 1, 50, 99, 100} {
		if got := s.Percentile(q); got != 0 {
			t.Fatalf("empty Percentile(%v) = %d, want 0", q, got)
		}
	}
	ts := &TenantStreamStats{}
	if got := ts.P99(); got != 0 {
		t.Fatalf("empty tenant P99 = %d, want 0", got)
	}
}

// TestPercentileBadQ pins the q guard: q outside (0,100] — including
// 0, negatives, >100 and NaN — panics instead of silently aliasing the
// minimum or maximum rank.
func TestPercentileBadQ(t *testing.T) {
	s := StreamStats{Latencies: []int64{3, 1, 2}}
	for _, q := range []float64{0, -1, 100.0001, 200, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Percentile(%v) did not panic", q)
				}
			}()
			s.Percentile(q)
		}()
	}
}

// TestMixedTenantAttribution pins the per-tenant rounds rule on a
// hand-built window: a wave's rounds split across its census by op
// count, rounds outside any wave split across the window census, and
// the tenant shares always sum to the window total (attribution splits
// rounds, never mints them).
func TestMixedTenantAttribution(t *testing.T) {
	c := NewCluster(Config{Machines: 2, MemWords: 64})
	c.BeginMixed(3, 1)
	c.BeginMixedTenants([]TenantCount{
		{Tenant: 0, Updates: 1},
		{Tenant: 1, Updates: 2, Queries: 1},
	})
	c.BeginMixedWaveTenants(2, 1, []TenantCount{
		{Tenant: 0, Updates: 1},
		{Tenant: 1, Updates: 1, Queries: 1},
	})
	c.Round()
	c.Round()
	c.EndMixedWave()
	c.Round() // outside any wave: leftover, split over the window census
	m := c.EndMixed()
	if m.Rounds() != 3 {
		t.Fatalf("window rounds = %d, want 3", m.Rounds())
	}
	if len(m.Tenants) != 2 {
		t.Fatalf("tenants = %v, want 2 entries", m.Tenants)
	}
	const eps = 1e-9
	// Wave: 2 rounds over 3 ops (t0 has 1, t1 has 2); leftover: 1 round
	// over the 4-op window census (t0 has 1, t1 has 3).
	want0 := 2.0*1/3 + 1.0*1/4
	want1 := 2.0*2/3 + 1.0*3/4
	if got := m.Tenants[0]; math.Abs(got.Rounds-want0) > eps || got.Ops != 1 || got.Updates != 1 {
		t.Fatalf("tenant 0 = %+v, want Rounds %v", got, want0)
	}
	if got := m.Tenants[1]; math.Abs(got.Rounds-want1) > eps || got.Ops != 3 || got.Queries != 1 {
		t.Fatalf("tenant 1 = %+v, want Rounds %v", got, want1)
	}
	sum := m.Tenants[0].Rounds + m.Tenants[1].Rounds
	if math.Abs(sum-float64(m.Rounds())) > eps {
		t.Fatalf("tenant rounds sum %v != window rounds %d", sum, m.Rounds())
	}
	// A window without a census stays tenant-free: bit-identical
	// accounting for single-tenant runs.
	c.BeginMixed(1, 0)
	c.BeginMixedWave(1, 0)
	c.Round()
	c.EndMixedWave()
	if m := c.EndMixed(); m.Tenants != nil {
		t.Fatalf("censusless window grew Tenants = %v", m.Tenants)
	}
}
