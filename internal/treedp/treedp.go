// Package treedp is the tree-DP layer over the §5 Euler-tour machinery:
// mergeable per-vertex weights and tour-interval aggregates on dyncon's
// spanning forest (subtree sums, path sums, component argmax), in the
// spirit of Bateni et al., "Massively Parallel Dynamic Programming on
// Trees" (arXiv:1809.03685).
//
// The key property it leans on: the tour interval [f(u), l(u)] contains
// exactly the appearances of subtree(u)'s vertices, so ANY surviving
// appearance of v tests subtree membership — anchor ∈ [f(u), l(u)] iff
// v ∈ subtree(u). A distributed weight record therefore stores one
// arbitrary appearance anchor per weighted vertex, maintained under
// link/cut by the very same etour.Shift descriptors the connectivity
// protocol already broadcasts (f(v) itself would NOT survive reroots:
// min/max of appearances does not commute with tour rotation). Queries
// then reduce to one broadcast predicate over the stored anchors:
//
//   - SubtreeSum(u, rooted at r) sums anchors inside [f(u), l(u)] — or
//     the complement of the child-of-u-toward-r interval when r lies in
//     u's current subtree, or the whole component when r is elsewhere.
//   - PathSum(u, v) sums the vertices x whose interval [f(x), l(x)]
//     contains exactly one of the endpoints' appearances, plus the LCA
//     (both contained, but by no single child of x) — see OnPath.
//   - TreeTop(u) is a plain argmax over the component's vertices.
//
// The package holds the shared pieces: the anchor record and its shift
// repair rule, the broadcastable Span predicate, the OnPath predicate,
// and the sequential Oracle the fuzz harnesses replay against.
package treedp

import "dmpc/internal/etour"

// Rec is one weighted vertex's distributed record, held at the vertex's
// owner machine: an arbitrary surviving tour appearance of the vertex
// (0 while the vertex is a singleton), the component label that anchor
// is valid in, and the weight. It repairs under the same broadcast
// discipline as dyncon's non-tree anchors: ApplyShifts on every
// link/cut descriptor, plus the named-endpoint healing rule for
// singleton (anchor 0) records when their vertex is an endpoint of a
// link.
type Rec struct {
	Anchor int
	Comp   int64
	W      int64
}

// ApplyShifts runs a broadcast shift chain over the record, honoring
// per-shift component conditioning and relabeling — the aggregate-repair
// rule on tour splice. Anchor 0 (singleton) is untouched: singletons are
// repaired only by the named-endpoint rule of the link that absorbs
// them, exactly like non-tree anchors.
func (r *Rec) ApplyShifts(shifts []etour.Shift) {
	if r.Anchor == 0 {
		return
	}
	for _, sh := range shifts {
		if r.Comp != sh.Comp {
			continue
		}
		moved := sh.Moves(r.Anchor)
		r.Anchor = sh.Apply(r.Anchor)
		if moved {
			r.Comp = sh.NewComp
		}
	}
}

// Span is the broadcastable aggregation predicate of a subtree query: a
// tour-position interval, optionally inverted (everything in the
// component OUTSIDE [Lo, Hi]), or the whole component (All). Each
// machine applies Contains to the anchors of its records in the query's
// component and replies one partial sum.
type Span struct {
	All    bool
	Invert bool
	Lo, Hi int
}

// Contains reports whether an anchor position satisfies the predicate.
// An All span matches every record of the component, including anchor 0
// (a singleton component's only vertex).
func (s Span) Contains(anchor int) bool {
	if s.All {
		return true
	}
	in := anchor >= s.Lo && anchor <= s.Hi
	if s.Invert {
		return !in
	}
	return in
}

// Words is the descriptor's message size in machine words.
func (s Span) Words() int { return 4 }

// OnPath decides path membership from tour intervals alone: whether the
// vertex with interval [f, l] lies on the tree path between the vertices
// appearing at positions au and av. The ancestor test (f <= a <= l)
// works with ANY appearance a of the endpoint; childBoth must report
// whether one single child interval of the vertex contains both au and
// av. A vertex on exactly one root-to-endpoint chain is on the path; a
// common ancestor is on the path iff it is the LCA, i.e. no single child
// subtree holds both endpoints.
func OnPath(f, l, au, av int, childBoth bool) bool {
	ancU := f <= au && au <= l
	ancV := f <= av && av <= l
	if ancU != ancV {
		return true
	}
	return ancU && ancV && !childBoth
}
