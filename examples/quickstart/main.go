// Quickstart: maintain connected components of a dynamic graph on a
// simulated DMPC cluster in ~50 lines — updates and queries flowing
// through one unified op stream — and read off the paper's O(1)
// rounds-per-update guarantee from the accounting.
//
// Two front doors, one pipeline. Apply takes a prepared []Op slice and
// runs it in one accounting window — use it when the workload is already
// in hand. Ingest (or an Ingestor, for push-style feeding) takes
// timestamped Arrivals and forms batches on the fly: ops join the
// currently-forming set while their schedule claims don't conflict, and
// the set flushes through the same pipeline on a conflict, an age bound,
// or a size bound. Streaming costs nothing extra when arrivals are
// simultaneous — Apply IS the zero-inter-arrival special case of Ingest —
// and in exchange StreamStats tells you each op's rounds-from-arrival-
// to-answer latency (p50/p95/p99), which a batch window cannot express.
package main

import (
	"fmt"

	"dmpc"
)

func main() {
	// A dynamic connectivity structure on 100 vertices.
	cc := dmpc.NewConnectivity(100, 400)

	// Build two chains — 0-1-...-49 and 50-...-99 — as one batch of ops.
	var ops []dmpc.Op
	for i := 0; i < 49; i++ {
		ops = append(ops, dmpc.Ins(i, i+1), dmpc.Ins(50+i, 50+i+1))
	}
	cc.Apply(ops)

	// One mixed stream: a probe, the bridge insert, a probe, the bridge
	// delete, a probe. Each read is answered against exactly the prefix
	// state its position implies — no waiting for quiescence — and reads
	// that share an update's wave cost no extra rounds.
	res, st := cc.Apply([]dmpc.Op{
		dmpc.QConnected(0, 99), // false: no bridge yet
		dmpc.Ins(49, 50),
		dmpc.QConnected(0, 99), // true: bridge in place
		dmpc.Del(49, 50),
		dmpc.QConnected(0, 99), // false: Euler-tour split finds no replacement
	})
	for i, a := range res {
		fmt.Printf("probe %d: 0 connected to 99? %v\n", i, a.Bool)
	}
	fmt.Printf("mixed stream: %d ops in %d rounds (%d update-half, %d query-half)\n",
		st.Ops, st.Rounds(), st.Updates.Rounds, st.Queries.Rounds)

	// The same ops arriving over time: stream them through an Ingestor
	// with an age bound and read off per-op latency instead of a single
	// window. The answers are bit-identical to the Apply above by the
	// arrival-equivalence contract.
	cc2 := dmpc.NewConnectivity(100, 400)
	cc2.Apply(ops) // same two chains
	sres, sst := dmpc.Ingest(cc2, []dmpc.Arrival{
		{At: 0, Op: dmpc.QConnected(0, 99)},
		{At: 3, Op: dmpc.Ins(49, 50)}, // conflicts with the probe: flushes it
		{At: 5, Op: dmpc.QConnected(0, 99)},
		{At: 9, Op: dmpc.Del(49, 50)},
		{At: 14, Op: dmpc.QConnected(0, 99)},
	}, dmpc.IngestorConfig{MaxAge: 8})
	same := len(sres) == len(res)
	for i := range sres {
		same = same && sres[i] == res[i]
	}
	fmt.Printf("streamed: same answers as Apply: %v; %d flushes, latency p50 %d p99 %d rounds\n",
		same, sst.Flushes, sst.P50(), sst.P99())

	// Two tenants through one front door: tag each tenant's ops, give the
	// read-mostly tenant the heavier wave share, and rate-limit the
	// writer with a token bucket. The stream stats split per tenant, and
	// refused ops come back as typed rejections — never silent drops.
	cc3 := dmpc.NewConnectivity(100, 400, dmpc.WithTenantWeights(map[int]int{1: 3, 2: 1}))
	var tarr []dmpc.Arrival
	for i := 0; i < 8; i++ {
		tarr = append(tarr, dmpc.Arrival{At: int64(4 * i), Op: dmpc.QConnected(0, 99).ForTenant(1)})
		tarr = append(tarr, dmpc.Arrival{At: int64(4 * i), Op: dmpc.Ins(4*i, 4*i+1).ForTenant(2)})
		tarr = append(tarr, dmpc.Arrival{At: int64(4 * i), Op: dmpc.Ins(4*i+2, 4*i+3).ForTenant(2)})
	}
	_, tst := dmpc.Ingest(cc3, tarr, dmpc.IngestorConfig{
		MaxAge:    8,
		Weights:   map[int]int{1: 3, 2: 1},
		Admission: map[int]dmpc.AdmissionPolicy{2: &dmpc.TokenBucket{Rate: 0.25, Burst: 1}},
	})
	fmt.Printf("two tenants: reader p99 %d rounds over %d ops; writer admitted %d, rejected %d\n",
		tst.Tenants[1].P99(), tst.Tenants[1].Ops, tst.Tenants[2].Ops, tst.Tenants[2].Rejected)

	// Tree-DP reads on the same pipeline: weight the vertices and ask
	// aggregates over the maintained forest — the subtree sum under 25
	// with the chain rooted at 0, the 10..20 path sum, the heaviest
	// vertex of 0's component. Constant rounds each, like every read
	// (see examples/orgchart for a full workload).
	var wops []dmpc.Op
	for i := 0; i < 50; i++ {
		wops = append(wops, dmpc.SetWeight(i, dmpc.Weight(i)))
	}
	wops = append(wops, dmpc.QSubtreeSum(0, 25), dmpc.QPathSum(10, 20), dmpc.QTreeTop(0))
	dres, _ := cc.Apply(wops)
	fmt.Printf("tree DP: subtree(25) sums %d, path 10-20 sums %d, heaviest in 0's tree is %d\n",
		dres[0].Int, dres[1].Int, dres[2].Int)

	r, a, w := cc.Cluster().Stats().MeanBatch()
	fmt.Printf("whole run: %.2f rounds/update, %.1f machines/round, %.1f words/round on average\n", r, a, w)
}
