package mpc

import "testing"

// TestMixedAttribution pins the MixedStats attribution rule: rounds of
// update-bearing waves and out-of-wave scheduling rounds fold into the
// update half, rounds of query-only waves fold into the query half, the
// halves always partition the window, and the halves land on the Batches
// and Queries logs so the aggregate means cover mixed runs.
func TestMixedAttribution(t *testing.T) {
	c := NewCluster(Config{Machines: 4, MemWords: 64})
	for i := 0; i < 4; i++ {
		c.SetMachine(i, bounceMachine{})
	}

	c.BeginMixed(2, 3)

	// Wave 1: one update plus two riding reads — update half.
	c.BeginMixedWave(1, 2)
	c.Send(Message{From: -1, To: 0, Payload: "ping", Words: 1})
	c.Run(8)
	w1 := c.EndMixedWave()

	// Out-of-wave scheduling round — update half.
	c.Send(Message{From: -1, To: 1, Payload: "ping", Words: 1})
	c.Run(8)

	// Wave 2: query-only — query half.
	c.BeginMixedWave(0, 1)
	c.Send(Message{From: -1, To: 2, Payload: "ping", Words: 1})
	c.Run(8)
	w2 := c.EndMixedWave()

	// Wave 3: one more update, no reads — update half.
	c.BeginMixedWave(1, 0)
	c.Send(Message{From: -1, To: 3, Payload: "ping", Words: 1})
	c.Run(8)
	w3 := c.EndMixedWave()

	m := c.EndMixed()

	if m.Ops != 5 || m.Updates.Updates != 2 || m.Queries.Queries != 3 {
		t.Fatalf("window shape wrong: %+v", m)
	}
	if len(m.Waves) != 3 || m.Waves[0] != w1 || m.Waves[1] != w2 || m.Waves[2] != w3 {
		t.Fatalf("wave log wrong: %+v", m.Waves)
	}
	if len(m.Updates.Waves) != 2 || m.Updates.Waves[0] != w1 || m.Updates.Waves[1] != w3 {
		t.Fatalf("update half must log exactly the update-bearing waves: %+v", m.Updates.Waves)
	}
	if m.Queries.Rounds != w2.Rounds {
		t.Fatalf("query half rounds %d, want query-only wave's %d", m.Queries.Rounds, w2.Rounds)
	}
	if m.Updates.Rounds+m.Queries.Rounds != m.Rounds() {
		t.Fatalf("halves do not partition the window: %d + %d != %d",
			m.Updates.Rounds, m.Queries.Rounds, m.Rounds())
	}
	if m.Updates.Rounds <= w1.Rounds+w3.Rounds {
		t.Fatalf("out-of-wave round missing from the update half: %d vs waves %d",
			m.Updates.Rounds, w1.Rounds+w3.Rounds)
	}
	if want := float64(m.Rounds()) / 5; m.RoundsPerOp() != want {
		t.Fatalf("RoundsPerOp %.3f, want %.3f", m.RoundsPerOp(), want)
	}

	// Halves recorded on the shared logs.
	if bs := c.Stats().Batches(); len(bs) != 1 || !bs[0].Equal(m.Updates) {
		t.Fatalf("update half not on the batch log: %+v", bs)
	}
	if qs := c.Stats().Queries(); len(qs) != 1 || qs[0] != m.Queries {
		t.Fatalf("query half not on the query log: %+v", qs)
	}
	if ms := c.Stats().Mixed(); len(ms) != 1 || !ms[0].Equal(m) {
		t.Fatalf("mixed log wrong: %+v", ms)
	}
	rpo, ur, qr := c.Stats().MeanMixed()
	if rpo != m.RoundsPerOp() || ur != m.Updates.Rounds || qr != m.Queries.Rounds {
		t.Fatalf("MeanMixed = (%.3f, %d, %d)", rpo, ur, qr)
	}
}

// TestMixedHalvesSkipEmpty pins that an all-update mixed window records no
// empty query window (which would pollute MeanQuery) and an all-query one
// records no empty batch window.
func TestMixedHalvesSkipEmpty(t *testing.T) {
	c := NewCluster(Config{Machines: 2, MemWords: 64})
	c.SetMachine(0, bounceMachine{})
	c.SetMachine(1, bounceMachine{})

	c.BeginMixed(1, 0)
	c.BeginMixedWave(1, 0)
	c.Send(Message{From: -1, To: 0, Payload: "ping", Words: 1})
	c.Run(8)
	c.EndMixedWave()
	c.EndMixed()
	if qs := c.Stats().Queries(); len(qs) != 0 {
		t.Fatalf("all-update window recorded a query window: %+v", qs)
	}
	if bs := c.Stats().Batches(); len(bs) != 1 {
		t.Fatalf("all-update window missing from the batch log: %+v", bs)
	}

	c.BeginMixed(0, 2)
	c.BeginMixedWave(0, 2)
	c.Send(Message{From: -1, To: 1, Payload: "ping", Words: 1})
	c.Run(8)
	c.EndMixedWave()
	c.EndMixed()
	if bs := c.Stats().Batches(); len(bs) != 1 {
		t.Fatalf("all-query window polluted the batch log: %+v", bs)
	}
	if qs := c.Stats().Queries(); len(qs) != 1 || qs[0].Queries != 2 {
		t.Fatalf("all-query window missing from the query log: %+v", qs)
	}
}

// TestMixedWindowExclusivity pins that mixed windows refuse to nest with
// every other accounting class in both directions, preserving the window-
// exclusivity invariant the query/update split established.
func TestMixedWindowExclusivity(t *testing.T) {
	wantPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}

	fresh := func() *Cluster { return NewCluster(Config{Machines: 1, MemWords: 16}) }

	c := fresh()
	c.BeginMixed(1, 1)
	wantPanic("BeginUpdate inside mixed", func() { c.BeginUpdate() })
	wantPanic("BeginBatch inside mixed", func() { c.BeginBatch(1) })
	wantPanic("BeginQueryBatch inside mixed", func() { c.BeginQueryBatch(1) })
	wantPanic("BeginMixed inside mixed", func() { c.BeginMixed(1, 1) })

	c2 := fresh()
	c2.BeginBatch(1)
	wantPanic("BeginMixed inside batch", func() { c2.BeginMixed(1, 1) })

	c3 := fresh()
	c3.BeginQueryBatch(1)
	wantPanic("BeginMixed inside query", func() { c3.BeginMixed(1, 1) })

	c4 := fresh()
	c4.BeginUpdate()
	wantPanic("BeginMixed inside update", func() { c4.BeginMixed(1, 1) })

	c5 := fresh()
	wantPanic("BeginMixedWave outside mixed", func() { c5.BeginMixedWave(1, 0) })
	c5.BeginMixed(1, 0)
	c5.BeginMixedWave(1, 0)
	wantPanic("nested mixed wave", func() { c5.BeginMixedWave(1, 0) })
	wantPanic("EndMixed with open wave", func() { c5.EndMixed() })
	c5.EndMixedWave()
	wantPanic("EndMixedWave without wave", func() { c5.EndMixedWave() })
	c5.EndMixed()

	// A closed mixed window releases the cluster for every other class.
	c5.BeginBatch(1)
	c5.EndBatch()
	c5.BeginQueryBatch(1)
	c5.EndQueryBatch()
}
