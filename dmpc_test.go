package dmpc

import (
	"math/rand"
	"testing"

	"dmpc/internal/graph"
)

// TestFacadeConnectivity drives the public API against the oracle.
func TestFacadeConnectivity(t *testing.T) {
	const n = 40
	cc := NewConnectivity(n, 200)
	g := NewGraph(n)
	rng := rand.New(rand.NewSource(1))
	for _, up := range graph.RandomStream(n, 250, 0.55, 1, rng) {
		if up.Op == Insert {
			cc.Insert(up.U, up.V)
		} else {
			cc.Delete(up.U, up.V)
		}
		g.Apply(up)
	}
	comp := graph.Components(g)
	for u := 0; u < n; u += 3 {
		for v := u + 1; v < n; v += 4 {
			if cc.Connected(u, v) != (comp[u] == comp[v]) {
				t.Fatalf("Connected(%d,%d) mismatch", u, v)
			}
		}
	}
	mine := make([]int, n)
	for v := 0; v < n; v++ {
		mine[v] = int(cc.ComponentOf(v))
	}
	if !graph.SameLabeling(mine, comp) {
		t.Fatal("component labels do not partition like the oracle")
	}
	if cc.Cluster().Stats().Rounds == 0 {
		t.Fatal("no rounds accounted")
	}
}

func TestFacadeMST(t *testing.T) {
	const n = 24
	mst := NewMST(n, 0, 150)
	g := NewGraph(n)
	rng := rand.New(rand.NewSource(2))
	for _, up := range graph.RandomStream(n, 180, 0.6, 50, rng) {
		if up.Op == Insert {
			mst.Insert(up.U, up.V, up.W)
		} else {
			mst.Delete(up.U, up.V)
		}
		g.Apply(up)
		if mst.Weight() != graph.MSFWeight(g) {
			t.Fatalf("after %v: weight %d want %d", up, mst.Weight(), graph.MSFWeight(g))
		}
	}
	var plain []graph.Edge
	for _, e := range mst.ForestEdges() {
		plain = append(plain, graph.Edge{U: e.U, V: e.V})
	}
	if !graph.IsSpanningForest(g, plain) {
		t.Fatal("forest edges are not a spanning forest")
	}
}

func TestFacadeMatchings(t *testing.T) {
	const n = 20
	mm := NewMaximalMatching(n, 120)
	m32 := NewThreeHalvesMatching(n, 120)
	am := NewAlmostMaximalMatching(n, 0.2, 7)
	g := NewGraph(n)
	rng := rand.New(rand.NewSource(3))
	for _, up := range graph.RandomStream(n, 200, 0.55, 1, rng) {
		if up.Op == Insert {
			mm.Insert(up.U, up.V)
			m32.Insert(up.U, up.V)
			am.Insert(up.U, up.V)
		} else {
			mm.Delete(up.U, up.V)
			m32.Delete(up.U, up.V)
			am.Delete(up.U, up.V)
		}
		g.Apply(up)
		if !graph.IsMaximalMatching(g, mm.MateTable()) {
			t.Fatalf("after %v: §3 matching not maximal", up)
		}
		mt := m32.MateTable()
		if !graph.IsMaximalMatching(g, mt) || graph.HasLength3AugPath(g, mt) {
			t.Fatalf("after %v: §4 certificate broken", up)
		}
		if !graph.IsMatching(g, am.MateTable()) {
			t.Fatalf("after %v: §6 matching invalid", up)
		}
	}
}

// TestWorstCaseRoundsFlatAcrossSizes is the headline Table 1 property on
// the public API: worst-case rounds per update do not grow with n for any
// of the O(1)-round algorithms.
func TestWorstCaseRoundsFlatAcrossSizes(t *testing.T) {
	worstAt := func(n int) (cc, mst int) {
		c := NewConnectivity(n, 5*n)
		m := NewMST(n, 0.25, 5*n)
		rng := rand.New(rand.NewSource(9))
		for _, up := range graph.RandomStream(n, 200, 0.55, 30, rng) {
			var s1, s2 UpdateStats
			if up.Op == Insert {
				s1 = c.Insert(up.U, up.V)
				s2 = m.Insert(up.U, up.V, up.W)
			} else {
				s1 = c.Delete(up.U, up.V)
				s2 = m.Delete(up.U, up.V)
			}
			if s1.Rounds > cc {
				cc = s1.Rounds
			}
			if s2.Rounds > mst {
				mst = s2.Rounds
			}
		}
		return cc, mst
	}
	cc32, mst32 := worstAt(32)
	cc256, mst256 := worstAt(256)
	if cc256 > cc32+3 {
		t.Fatalf("CC worst rounds grew: %d -> %d", cc32, cc256)
	}
	if mst256 > mst32+3 {
		t.Fatalf("MST worst rounds grew: %d -> %d", mst32, mst256)
	}
}

// TestBatchPipeline drives ApplyBatch through the public API: batch
// application must match sequential application exactly for connectivity
// and maximal matching, and the amortized rounds per update at k=64 must
// be strictly lower than at k=1 — the batch-dynamic headline.
func TestBatchPipeline(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(21))
	stream := graph.RandomStream(n, 256, 0.55, 1, rng)

	amortized := func(k int) (cc, mm float64) {
		c := NewConnectivity(n, 5*n)
		m := NewMaximalMatching(n, 5*n)
		var ccR, mmR, upd int
		for _, b := range Chunk(stream, k) {
			ccR += c.ApplyBatch(b).Rounds
			mmR += m.ApplyBatch(b).Rounds
			upd += len(b)
		}
		if k == 64 {
			// Pin equivalence against per-update application.
			seqC := NewConnectivity(n, 5*n)
			seqM := NewMaximalMatching(n, 5*n)
			for _, up := range stream {
				if up.Op == Insert {
					seqC.Insert(up.U, up.V)
					seqM.Insert(up.U, up.V)
				} else {
					seqC.Delete(up.U, up.V)
					seqM.Delete(up.U, up.V)
				}
			}
			for v := 0; v < n; v++ {
				if c.ComponentOf(v) != seqC.ComponentOf(v) {
					t.Fatalf("component of %d differs between batch and sequential", v)
				}
			}
			want, got := seqM.MateTable(), m.MateTable()
			for v := range want {
				if want[v] != got[v] {
					t.Fatalf("mate of %d differs between batch and sequential", v)
				}
			}
		}
		return float64(ccR) / float64(upd), float64(mmR) / float64(upd)
	}

	cc1, mm1 := amortized(1)
	cc64, mm64 := amortized(64)
	if cc64 >= cc1 {
		t.Fatalf("connectivity amortized rounds/update did not drop: k=1 %.2f, k=64 %.2f", cc1, cc64)
	}
	if mm64 >= mm1 {
		t.Fatalf("matching amortized rounds/update did not drop: k=1 %.2f, k=64 %.2f", mm1, mm64)
	}
}

// TestQueryPipeline drives the batched query path through the public API:
// ConnectedBatch and MateOfBatch agree with the oracles, the k=64
// connectivity batch amortizes under 0.5 rounds/query (vs ~2 sequential),
// and interleaving query batches between update batches leaves the batch
// accounting untouched.
func TestQueryPipeline(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(33))
	stream := graph.RandomStream(n, 256, 0.55, 1, rng)

	cc := NewConnectivity(n, 5*n)
	mm := NewMaximalMatching(n, 5*n)
	g := NewGraph(n)
	qrng := rand.New(rand.NewSource(34))
	for _, b := range Chunk(stream, 32) {
		cc.ApplyBatch(b)
		mm.ApplyBatch(b)
		b.Apply(g)
		// A read burst between write batches.
		pairs := graph.RandomPairs(n, 16, qrng)
		comp := graph.Components(g)
		for i, conn := range cc.ConnectedBatch(pairs) {
			if conn != (comp[pairs[i].U] == comp[pairs[i].V]) {
				t.Fatalf("ConnectedBatch(%v) wrong at %d", pairs[i], i)
			}
		}
		oracle := mm.MateTable()
		vs := []int{0, n / 2, n - 1}
		for i, mate := range mm.MateOfBatch(vs) {
			if mate != oracle[vs[i]] {
				t.Fatalf("MateOfBatch[%d] = %d, oracle %d", vs[i], mate, oracle[vs[i]])
			}
		}
	}

	// Amortization on the public API: one k=64 window costs 2 rounds.
	pairs := graph.RandomPairs(n, 64, qrng)
	cc.ConnectedBatch(pairs)
	qs := cc.Cluster().Stats().Queries()
	last := qs[len(qs)-1]
	if last.Queries != 64 || last.RoundsPerQuery() >= 0.5 {
		t.Fatalf("k=64 window %+v, want < 0.5 amortized rounds/query", last)
	}

	// The interleaved reads must not have perturbed write accounting.
	quiet := NewConnectivity(n, 5*n)
	for _, b := range Chunk(stream, 32) {
		quiet.ApplyBatch(b)
	}
	want := quiet.Cluster().Stats().Batches()
	got := cc.Cluster().Stats().Batches()
	if len(want) != len(got) {
		t.Fatalf("batch window counts differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("batch %d accounting differs with reads interleaved: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestPipelineMixedConnectivity drives the unified front door on a mixed
// stream: in-wave answers must equal sequential replay at the same stream
// positions, the final state must match, and the mixed window must
// partition its rounds between the two halves.
func TestPipelineMixedConnectivity(t *testing.T) {
	const n = 48
	rng := rand.New(rand.NewSource(21))
	updates := graph.RandomStream(n, 240, 0.55, 1, rng)
	ops := graph.MixedStream(updates, 0.4, func(r *rand.Rand) Op {
		if r.Intn(3) == 0 {
			return OpQComponentOf(r.Intn(n))
		}
		return OpQConnected(r.Intn(n), r.Intn(n))
	}, rng)

	ref := NewConnectivity(n, 5*n)
	var want Results
	for _, op := range ops {
		switch op.Kind {
		case OpInsert:
			ref.Insert(op.U, op.V)
		case OpDelete:
			ref.Delete(op.U, op.V)
		case OpConnected:
			want = append(want, Answer{Bool: ref.Connected(op.U, op.V)})
		case OpComponentOf:
			want = append(want, Answer{Int: ref.ComponentOf(op.U)})
		}
	}

	cc := NewConnectivity(n, 5*n)
	var got Results
	for _, chunk := range SplitOps(ops, 32) {
		res, st := cc.Apply(chunk)
		got = append(got, res...)
		u, q := CountOps(chunk)
		if st.Ops != len(chunk) || st.Updates.Updates != u || st.Queries.Queries != q {
			t.Fatalf("window shape (%d,%d,%d) for chunk (%d,%d,%d)",
				st.Ops, st.Updates.Updates, st.Queries.Queries, len(chunk), u, q)
		}
		if st.Updates.Rounds+st.Queries.Rounds != st.Rounds() {
			t.Fatalf("halves do not partition the window: %+v", st)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("%d answers, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("answer %d is %+v, want %+v", i, got[i], want[i])
		}
	}
	for v := 0; v < n; v++ {
		if cc.CompOf(v) != ref.CompOf(v) {
			t.Fatalf("component of %d diverged", v)
		}
	}
}

// TestPipelineMixedMatching drives the §3 pipeline on a mixed stream with
// mate and matched reads, against sequential replay.
func TestPipelineMixedMatching(t *testing.T) {
	const n = 40
	rng := rand.New(rand.NewSource(22))
	updates := graph.RandomStream(n, 200, 0.6, 1, rng)
	ops := graph.MixedStream(updates, 0.5, func(r *rand.Rand) Op {
		if r.Intn(3) == 0 {
			return OpQMatched(r.Intn(n), r.Intn(n))
		}
		return OpQMateOf(r.Intn(n))
	}, rng)

	ref := NewMaximalMatching(n, len(updates))
	var want Results
	for _, op := range ops {
		switch op.Kind {
		case OpInsert:
			ref.Insert(op.U, op.V)
		case OpDelete:
			ref.Delete(op.U, op.V)
		case OpMateOf:
			want = append(want, Answer{Int: int64(ref.MateOf(op.U))})
		case OpMatched:
			want = append(want, Answer{Bool: ref.Matched(op.U, op.V)})
		}
	}

	mm := NewMaximalMatching(n, len(updates))
	var got Results
	for _, chunk := range SplitOps(ops, 24) {
		res, _ := mm.Apply(chunk)
		got = append(got, res...)
	}
	if len(got) != len(want) {
		t.Fatalf("%d answers, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("answer %d is %+v, want %+v", i, got[i], want[i])
		}
	}
	wantT, gotT := ref.MateTable(), mm.MateTable()
	for v := range wantT {
		if wantT[v] != gotT[v] {
			t.Fatalf("mate of %d diverged: %d vs %d", v, gotT[v], wantT[v])
		}
	}
}

// TestPipelineMixedAlmostMaximal drives the §6 pipeline on a mixed stream.
// amm's batch mode does not promise bit-equivalence with sequential
// replay, so the pin is internal consistency: every in-wave answer must
// agree with the authoritative matching at its stream position, checked
// by re-asking the structure's oracle right after each chunk for the
// chunk-final reads.
func TestPipelineMixedAlmostMaximal(t *testing.T) {
	const n = 40
	rng := rand.New(rand.NewSource(23))
	updates := graph.RandomStream(n, 160, 0.65, 1, rng)

	am := NewAlmostMaximalMatching(n, 0.5, 9)
	g := NewGraph(n)
	for _, chunk := range Chunk(updates, 20) {
		ops := UpdateOps(chunk)
		// Tail reads observe the post-chunk state, so the oracle can
		// check them exactly.
		probes := []int{rng.Intn(n), rng.Intn(n), rng.Intn(n)}
		for _, v := range probes {
			ops = append(ops, OpQMateOf(v))
		}
		res, st := am.Apply(ops)
		u, q := CountOps(ops)
		if st.Updates.Updates != u || st.Queries.Queries != q {
			t.Fatalf("window shape %+v for (%d,%d)", st, u, q)
		}
		for _, up := range chunk {
			g.Apply(up)
		}
		table := am.MateTable()
		for i, v := range probes {
			if int(res[i].Int) != table[v] {
				t.Fatalf("read of %d answered %d, authoritative mate is %d", v, res[i].Int, table[v])
			}
		}
	}
	if !graph.IsMatching(g, am.MateTable()) {
		t.Fatal("final matching invalid over the final graph")
	}
}

// TestPipelineRejectsForeignKinds pins the typed-kind contract: a
// structure panics on a query kind it cannot answer instead of returning
// garbage.
func TestPipelineRejectsForeignKinds(t *testing.T) {
	wantPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	cc := NewConnectivity(8, 32)
	wantPanic("MateOf on Connectivity", func() { cc.Apply([]Op{OpQMateOf(1)}) })
	mm := NewMaximalMatching(8, 32)
	wantPanic("Connected on MaximalMatching", func() { mm.Apply([]Op{OpQConnected(1, 2)}) })
}
