package dyncon

import (
	"sort"

	"dmpc/internal/etour"
	"dmpc/internal/graph"
	"dmpc/internal/staticmpc"
)

// Preprocess loads an initial graph, implementing the §5 "starts from an
// arbitrary graph" column of Table 1. The spanning forest is computed by
// the static filtering algorithm of [26] (the paper's cited preprocessing
// substrate; its O(log(m/n))-round cost is returned as the preprocessing
// account), initial Euler tours are constructed per component, and the
// per-machine shards are loaded in the distributed-input convention of the
// MPC model (the model assumes the input already resides on the machines,
// so the load itself is not charged rounds — DESIGN.md records this
// substitution for the paper's parallel tour-merging).
//
// In MST mode the forest is a minimum spanning forest of the (bucketed)
// weights, so the (1+ε) factor of §5.1 indeed comes from preprocessing.
func (d *D) Preprocess(g *graph.Graph) staticmpc.Result {
	if g.N() != d.cfg.N {
		panic("dyncon: Preprocess graph size mismatch")
	}
	work := g
	if d.cfg.Mode == MST && d.cfg.Eps > 0 {
		work = graph.New(g.N())
		for _, e := range g.Edges() {
			work.Insert(e.U, e.V, graph.BucketWeight(e.W, d.cfg.Eps))
		}
	}
	var forest []graph.WEdge
	var res staticmpc.Result
	if d.cfg.Mode == MST {
		forest, res = staticmpc.MinSpanningForest(work, 0)
	} else {
		fe, r := staticmpc.SpanningForest(work, 0)
		res = r
		for _, e := range fe {
			forest = append(forest, graph.WEdge{U: e.U, V: e.V, W: 1})
		}
	}

	// Components and canonical roots (smallest vertex id).
	uf := make([]int, g.N())
	for i := range uf {
		uf[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for uf[x] != x {
			uf[x] = uf[uf[x]]
			x = uf[x]
		}
		return x
	}
	tadj := make(map[int][]int)
	isTree := map[graph.Edge]graph.Weight{}
	for _, e := range forest {
		ra, rb := find(e.U), find(e.V)
		if ra != rb {
			if ra < rb {
				uf[rb] = ra
			} else {
				uf[ra] = rb
			}
		}
		tadj[e.U] = append(tadj[e.U], e.V)
		tadj[e.V] = append(tadj[e.V], e.U)
		isTree[graph.NormEdge(e.U, e.V)] = e.W
	}
	roots := map[int]int{} // component representative -> canonical root
	for v := 0; v < g.N(); v++ {
		r := find(v)
		if cur, ok := roots[r]; !ok || v < cur {
			roots[r] = v
		}
	}

	// Build tours per component and load the shards.
	seqs := map[int]*etour.Seq{}
	comps := make([]int64, g.N())
	for v := 0; v < g.N(); v++ {
		root := roots[find(v)]
		comps[v] = int64(root)
		if _, ok := seqs[root]; !ok {
			seqs[root] = etour.BuildSeq(tadj, root)
		}
	}
	sizes := map[int64]int{}
	for _, sh := range d.shards {
		sh.compVerts = make(map[int64][]int32)
	}
	for v := 0; v < g.N(); v++ {
		sizes[comps[v]]++
		sh := d.shards[d.owner(v)]
		sh.verts[int32(v)] = comps[v]
		sh.compVerts[comps[v]] = append(sh.compVerts[comps[v]], int32(v))
	}
	// Reset registries to the new components.
	for _, sh := range d.shards {
		sh.sizes = make(map[int64]int)
		sh.tree = make(map[graph.Edge]*treeRec)
		sh.nontree = make(map[graph.Edge]*ntRec)
	}
	for c, k := range sizes {
		d.shards[d.registry(c)].sizes[c] = k
	}

	// Tree records from arc positions.
	type arc struct{ a, b int }
	for root, seq := range seqs {
		arcPos := map[arc][2]int{}
		raw := seq.Slice()
		for k := 0; 2*k < len(raw); k++ {
			arcPos[arc{raw[2*k], raw[2*k+1]}] = [2]int{2*k + 1, 2*k + 2}
		}
		for ab, p := range arcPos {
			if ab.a > ab.b {
				continue
			}
			e := graph.NormEdge(ab.a, ab.b)
			rec := treeRec{
				pos:  etour.EdgePos{U: e.U, V: e.V, UV: p, VU: arcPos[arc{ab.b, ab.a}]},
				comp: int64(root),
				w:    int64(isTree[e]),
			}
			cu := rec
			d.shards[d.owner(e.U)].tree[e] = &cu
			if d.owner(e.V) != d.owner(e.U) {
				cv := rec
				d.shards[d.owner(e.V)].tree[e] = &cv
			}
		}
	}

	// Non-tree records with first-appearance anchors.
	var rest []graph.WEdge
	for _, e := range work.Edges() {
		if _, tree := isTree[graph.Edge{U: e.U, V: e.V}]; !tree {
			rest = append(rest, e)
		}
	}
	sort.Slice(rest, func(i, j int) bool {
		if rest[i].U != rest[j].U {
			return rest[i].U < rest[j].U
		}
		return rest[i].V < rest[j].V
	})
	for _, e := range rest {
		root := int(comps[e.U])
		seq := seqs[root]
		rec := ntRec{
			aU: seq.First(e.U), aV: seq.First(e.V),
			cU: comps[e.U], cV: comps[e.V],
			w: int64(e.W),
		}
		cu := rec
		d.shards[d.owner(e.U)].nontree[graph.Edge{U: e.U, V: e.V}] = &cu
		if d.owner(e.V) != d.owner(e.U) {
			cv := rec
			d.shards[d.owner(e.V)].nontree[graph.Edge{U: e.U, V: e.V}] = &cv
		}
	}
	return res
}
