package dyncon

import (
	"testing"

	"dmpc/internal/graph"
	"dmpc/internal/treedp"
)

// forestAdj rebuilds a plain adjacency list from the driver's maintained
// spanning forest — the input the treedp.Oracle walks. DP answers are
// forest-relative (the subtree and path are those of the maintained
// forest), so the oracle must read the same forest the shards hold.
func forestAdj(d *D, n int) [][]int {
	adj := make([][]int, n)
	for _, e := range d.ForestEdges() {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	return adj
}

// FuzzTreeDPEquivalence is the property-based harness for the tree-DP
// subsystem: any mixed stream of links, cuts, weight writes and DP
// queries, at any chunking, must answer bit-identically to sequential
// replay AND to the tour-free treedp.Oracle walking the maintained
// forest. The double check matters: sequential-vs-chunked agreement pins
// the wave scheduling and shift-repair bookkeeping, while oracle
// agreement pins the interval algebra itself (Span containment, OnPath,
// anchor maintenance) against textbook BFS semantics, so the two sides
// cannot share a bug. A parallel-backend replica then reruns the chunked
// stream and must reproduce every answer, the forest, the weight records
// and the round/word accounting exactly.
//
// Run the full fuzzer with:
//
//	go test -run FuzzTreeDPEquivalence -fuzz FuzzTreeDPEquivalence ./internal/core/dyncon
func FuzzTreeDPEquivalence(f *testing.F) {
	// A grown path with weights, then every query kind.
	f.Add(byte(3), []byte("\x00\x01\x02\x00\x02\x03\x00\x03\x04\x02\x02\x09\x02\x03\x07\x02\x04\x14\x06\x02\x04\x0a\x01\x04\x0e\x03\x00\x12\x01\x04"))
	// Cut-then-requery: sever the path mid-way, then ask across the cut
	// (whole-component span, disconnected path, u==r subtree).
	f.Add(byte(1), []byte("\x00\x01\x02\x00\x02\x03\x00\x03\x04\x02\x02\x09\x02\x03\x07\x02\x04\x14\x01\x02\x03\x06\x02\x04\x0a\x01\x04\x0a\x01\x02\x0e\x04\x00\x06\x04\x04"))
	// Weight-update-on-just-linked-edge: a singleton gets a weight (anchor
	// 0), is immediately linked (named-endpoint healing), then queried;
	// plus trivial-path and self-rooted-subtree fast paths.
	f.Add(byte(0x85), []byte("\x02\x05\xc8\x00\x05\x06\x02\x06\x06\x06\x06\x05\x00\x06\x07\x02\x07\x13\x0a\x05\x07\x0e\x05\x00\x0a\x05\x05\x06\x05\x05"))
	// Generic churn, MST mode.
	f.Add(byte(0x90), []byte("abcabdabeacdbce?bcd?bceaXYaYZbZW"))
	f.Fuzz(func(t *testing.T, sel byte, data []byte) {
		const n = 24
		if len(data) > 360 { // 120 ops keeps a fuzz iteration fast
			data = data[:360]
		}
		qkinds := []graph.OpKind{
			graph.OpSetWeight, graph.OpSubtreeSum, graph.OpPathSum,
			graph.OpTreeTop, graph.OpConnected,
		}
		ops := graph.FuzzOps(data, n, 20, qkinds, false)
		if len(ops) == 0 {
			t.Skip()
		}
		cfg := Config{N: n, Mode: CC, ExpectedEdges: 160}
		if sel&0x80 != 0 {
			cfg.Mode = MST
		}
		k := 1 + int(sel&0x7f)%len(ops)

		// Sequential replay: singleton ApplyOps per op keeps every seq and
		// query id at its exact stream position (the bit-identity contract
		// with the chunked run below) while still exercising the full DP
		// orchestration one op at a time. Each DP answer is independently
		// checked against the oracle over the forest as maintained so far.
		seqD := New(cfg)
		oracle := treedp.NewOracle(n)
		var want graph.Results
		for _, op := range ops {
			res, _ := seqD.ApplyOps([]graph.Op{op})
			if op.Kind == graph.OpSetWeight {
				oracle.SetWeight(op.U, int64(op.W))
			}
			if !op.IsQuery() {
				continue
			}
			want = append(want, res[0])
			var exp int64
			switch op.Kind {
			case graph.OpSubtreeSum:
				exp = oracle.SubtreeSum(forestAdj(seqD, n), op.V, op.U)
			case graph.OpPathSum:
				exp = oracle.PathSum(forestAdj(seqD, n), op.U, op.V)
			case graph.OpTreeTop:
				exp = oracle.TreeTop(forestAdj(seqD, n), op.U)
			default: // OpConnected rides along for interleaving only
				continue
			}
			if res[0].Int != exp {
				t.Fatalf("mode=%v: %v answered %d, oracle says %d", cfg.Mode, op, res[0].Int, exp)
			}
		}

		batD := New(cfg)
		var got graph.Results
		for _, chunk := range graph.SplitOps(ops, k) {
			res, st := batD.ApplyOps(chunk)
			got = append(got, res...)
			u, q := graph.CountOps(chunk)
			if st.Ops != len(chunk) || st.Updates.Updates != u || st.Queries.Queries != q {
				t.Fatalf("mixed stats cover (%d,%d,%d), chunk has (%d,%d,%d)",
					st.Ops, st.Updates.Updates, st.Queries.Queries, len(chunk), u, q)
			}
		}

		if len(got) != len(want) {
			t.Fatalf("mode=%v k=%d: %d answers, want %d", cfg.Mode, k, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("mode=%v k=%d: query %d answered %+v in-wave, %+v sequentially",
					cfg.Mode, k, j, got[j], want[j])
			}
		}
		if err := batD.Validate(); err != nil {
			t.Fatalf("mode=%v k=%d: invariants broken after mixed chunks: %v", cfg.Mode, k, err)
		}
		wantF, gotF := forestKey(seqD), forestKey(batD)
		if len(wantF) != len(gotF) {
			t.Fatalf("mode=%v k=%d: forest sizes differ: %d vs %d", cfg.Mode, k, len(gotF), len(wantF))
		}
		for i := range wantF {
			if wantF[i] != gotF[i] {
				t.Fatalf("mode=%v k=%d: forest edge %d differs: %v vs %v", cfg.Mode, k, i, gotF[i], wantF[i])
			}
		}
		for v := 0; v < n; v++ {
			if seqD.CompOf(v) != batD.CompOf(v) {
				t.Fatalf("mode=%v k=%d: component of %d differs: %d vs %d",
					cfg.Mode, k, v, batD.CompOf(v), seqD.CompOf(v))
			}
			if sw, bw := seqD.WeightOf(v), batD.WeightOf(v); sw != bw {
				t.Fatalf("mode=%v k=%d: weight of %d differs: %d vs %d", cfg.Mode, k, v, bw, sw)
			}
		}
		if v := batD.Cluster().Stats().Violations; v != 0 {
			t.Fatalf("mode=%v k=%d: %d cluster constraint violations", cfg.Mode, k, v)
		}

		// Backend-equivalence replica: the same chunks on the goroutine-
		// per-machine runtime must answer identically and reproduce the
		// forest, weight records and accounting bit for bit.
		parD := New(parallelConfig(cfg))
		defer parD.Close()
		var pgot graph.Results
		for _, chunk := range graph.SplitOps(ops, k) {
			res, _ := parD.ApplyOps(chunk)
			pgot = append(pgot, res...)
		}
		if len(pgot) != len(got) {
			t.Fatalf("parallel replica answered %d queries, sim %d", len(pgot), len(got))
		}
		for j := range got {
			if pgot[j] != got[j] {
				t.Fatalf("parallel replica answered query %d %+v, sim %+v", j, pgot[j], got[j])
			}
		}
		for v := 0; v < n; v++ {
			if parD.WeightOf(v) != batD.WeightOf(v) {
				t.Fatalf("parallel replica weight of %d is %d, sim %d", v, parD.WeightOf(v), batD.WeightOf(v))
			}
		}
		assertBackendEquivalent(t, batD, parD)
	})
}
