// Package staticmpc implements the static MPC algorithms the paper uses as
// recompute-from-scratch baselines and preprocessing substrates:
//
//   - connected components by min-label propagation with pointer doubling
//     (O(log n) rounds, sublinear memory per machine — the [14]-style
//     baseline the paper contrasts against),
//   - maximal matching by randomized proposals (Israeli–Itai style [23],
//     O(log n) rounds with high probability),
//   - spanning forest / minimum spanning forest by filtering (Lattanzi et
//     al. [26] — local Kruskal per machine, halving the machine count each
//     round; requires the larger per-machine memory the paper notes static
//     algorithms need), and
//   - O(1)-round distributed sample sort (Goodrich et al. [19]).
//
// All algorithms run on an mpc.Cluster and are accounted in rounds, active
// machines and words exactly like the dynamic algorithms, which is what
// makes the static-vs-dynamic benches meaningful.
package staticmpc

import "dmpc/internal/mpc"

// Layout distributes n vertices over mu machines in contiguous blocks.
type Layout struct {
	N, Mu int
}

// Owner returns the machine owning vertex v.
func (l Layout) Owner(v int) int {
	per := (l.N + l.Mu - 1) / l.Mu
	if per == 0 {
		per = 1
	}
	o := v / per
	if o >= l.Mu {
		o = l.Mu - 1
	}
	return o
}

// Result captures the accounting of one static run.
type Result struct {
	Rounds     int
	MaxActive  int
	MaxWords   int
	TotalWords int
}

func resultFrom(u mpc.UpdateStats) Result {
	return Result{Rounds: u.Rounds, MaxActive: u.MaxActive, MaxWords: u.MaxWords, TotalWords: u.SumWords}
}
