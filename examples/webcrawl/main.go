// Web-crawl connectivity: the paper's "dynamic structure of the Web"
// scenario. A sliding window of hyperlinks (new pages appear, stale links
// expire) is tracked by the §5 connectivity structure; the number of
// connected components — e.g. distinct link farms / communities — stays
// queryable after every link event at O(1) rounds per event, with the
// communication entropy of §8 reported at the end (broadcast-style
// protocols spread load evenly, unlike coordinator-based ones).
package main

import (
	"fmt"
	"math/rand"

	"dmpc"
	"dmpc/internal/graph"
)

func main() {
	const pages = 300
	const window = 500
	const events = 1500
	rng := rand.New(rand.NewSource(99))

	cc := dmpc.NewConnectivity(pages, 2*window)
	g := dmpc.NewGraph(pages)

	stream := graph.SlidingWindow(pages, window, events, 1, rng)
	var sumRounds int
	for _, up := range stream {
		var st dmpc.UpdateStats
		if up.Op == dmpc.Insert {
			st = cc.Insert(up.U, up.V)
		} else {
			st = cc.Delete(up.U, up.V)
		}
		g.Apply(up)
		sumRounds += st.Rounds
	}

	// Component census from the maintained labels (driver-side validation
	// oracle — a protocol read per page would be the unbatched query
	// pattern the query pipeline exists to avoid, and would skew the §8
	// entropy metric reported below).
	sizes := map[int64]int{}
	for v := 0; v < pages; v++ {
		sizes[cc.CompOf(v)]++
	}
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	fmt.Printf("after %d link events (window %d): %d live links\n", events, window, g.M())
	fmt.Printf("communities: %d (oracle %d), largest %d pages\n",
		len(sizes), graph.NumComponents(g), largest)
	fmt.Printf("mean rounds/event: %.2f; comm entropy %.2f bits (§8 metric)\n",
		float64(sumRounds)/float64(len(stream)), cc.Cluster().CommEntropy())
	res, _ := cc.Apply([]dmpc.Op{dmpc.QConnected(0, 42)})
	fmt.Println("sample query: page 0 reaches page 42?", res[0].Bool)
}
