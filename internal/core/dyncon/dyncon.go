// Package dyncon implements §5 of the paper: fully-dynamic connected
// components — and, in MST mode, the §5.1 (1+ε)-approximate minimum
// spanning tree — in the DMPC model, with O(1) rounds per update in the
// worst case, O(√N) active machines and O(√N) total communication per
// round.
//
// # Distribution of state
//
// Vertices are hash-partitioned over the machines; the owner of a vertex
// stores its component label and its incident edge records. A tree edge
// record holds the four Euler-tour positions of its two arcs (from which
// the child endpoint and its subtree interval [f(child), l(child)] can be
// read off locally — the inner position pair). A non-tree edge record
// holds one anchor position per endpoint plus a per-anchor component
// label; an anchor is any surviving tour appearance of that endpoint.
// Component sizes live on a registry machine per component (component id
// mod µ).
//
// # Protocol
//
// Every update is orchestrated by the owner of the update's first
// endpoint. It gathers f/l values from the endpoint owners (computed on
// demand from their local arc positions — the paper's "x and y can simply
// learn those by sending and receiving an appropriate message"), reads
// component sizes from the registry, and then broadcasts a single O(1)-word
// message carrying the etour.Shift descriptors. Every machine applies the
// shifts to every position it stores; because the maps are conditioned on
// position values and component labels only, mirrored anchors stay
// consistent with no further communication — this is the property §5
// leverages to avoid Ω(N) neighbor updates. After a cut, machines scan
// their non-tree records for anchors in different components (a crossing
// edge) and report at most one candidate each; the orchestrator links the
// winner back in, promoting it to a tree edge.
//
// In MST mode an insertion into a connected component first locates the
// maximum-weight tree edge on the cycle via the ancestor trick: a tree
// edge lies on the x..y path iff its child interval contains exactly one
// of f(x), f(y), so every machine can evaluate its own records against the
// broadcast f values and report a local maximum.
//
// The tree-DP layer (internal/treedp, wired in treedp.go) extends the
// same machinery to vertex-weight aggregates: OpSetWeight installs a
// per-vertex weight record anchored at an arbitrary tour appearance,
// repaired by the very Shift descriptors links and cuts already
// broadcast, and OpSubtreeSum / OpPathSum / OpTreeTop ride ApplyOps
// waves as broadcast-predicate/gather queries over those anchors.
package dyncon

import (
	"fmt"

	"dmpc/internal/etour"
	"dmpc/internal/graph"
	"dmpc/internal/mpc"
	"dmpc/internal/sched"
)

// Mode selects plain connectivity or minimum-spanning-tree maintenance.
type Mode int

const (
	// CC maintains an arbitrary spanning forest (connected components).
	CC Mode = iota
	// MST maintains a minimum spanning forest of the (bucketed) weights.
	MST
)

// Config configures a dynamic connectivity instance.
type Config struct {
	N    int  // number of vertices
	Mode Mode // CC or MST
	// Eps, for MST mode, buckets weights by powers of (1+Eps) as in the
	// §5.1 preprocessing; 0 keeps weights exact (the forest is then an
	// exact MSF, which the tests exploit).
	Eps float64
	// Machines and MemWords size the cluster; zero values auto-size from
	// ExpectedEdges.
	Machines      int
	MemWords      int
	ExpectedEdges int
	// Backend selects the cluster execution backend (the zero value is
	// the deterministic mpc.BackendSim oracle; mpc.BackendParallel is
	// the goroutine-per-machine runtime and requires Close). Workers
	// bounds its handler concurrency (0 = GOMAXPROCS).
	Backend mpc.BackendKind
	Workers int
	// TenantWeights, when non-nil, carves the per-round word budget S
	// into weighted deficit-round-robin tenant shares (sched.Fair):
	// wave packing meters each tenant's summed shared cost against its
	// share instead of packing first-fit. nil keeps the pre-tenancy
	// first-fit schedule bit-identically.
	TenantWeights map[int]int
}

// D is a fully-dynamic connectivity/MST structure over a simulated DMPC
// cluster.
type D struct {
	cfg     Config
	cluster *mpc.Cluster
	shards  []*shard
	fair    *sched.Fair // tenant fairness policy; nil = first-fit
	seq     int64       // update sequence number, for fresh component ids
	queryID int64

	// wavePerm, when set by a test, permutes the injection order of every
	// scheduled wave in place — the hook behind the permutation-
	// commutativity property test. Production code leaves it nil.
	wavePerm func(wave []int)
}

// New builds the structure with an empty graph. Use Preprocess to load an
// initial graph with the static-preprocessing accounting of §5.
func New(cfg Config) *D {
	if cfg.N <= 0 {
		panic("dyncon: need at least one vertex")
	}
	exp := cfg.ExpectedEdges
	if exp <= 0 {
		exp = 4 * cfg.N
	}
	auto := mpc.Auto(cfg.N+2*exp, 8)
	if cfg.Machines > 0 {
		auto.Machines = cfg.Machines
	}
	if cfg.MemWords > 0 {
		auto.MemWords = cfg.MemWords
	}
	// The orchestrator's broadcast ships a ~31-word shift descriptor to
	// every machine in one round; the per-round I/O cap S must absorb it.
	// Both S and µ are Θ(√N), so this only pins the constant.
	if min := 40*auto.Machines + 64; auto.MemWords < min {
		auto.MemWords = min
	}
	auto.Backend = cfg.Backend
	auto.Workers = cfg.Workers
	d := &D{cfg: cfg}
	if len(cfg.TenantWeights) > 0 {
		d.fair = sched.NewFair(auto.MemWords, cfg.TenantWeights)
	}
	d.cluster = mpc.NewCluster(auto)
	d.shards = make([]*shard, auto.Machines)
	for i := range d.shards {
		d.shards[i] = newShard(i, auto.Machines, cfg)
		d.cluster.SetMachine(i, d.shards[i])
	}
	// Initial singleton components: comp(v) = v, size 1, registered.
	for v := 0; v < cfg.N; v++ {
		sh := d.shards[d.owner(v)]
		sh.verts[int32(v)] = int64(v)
		sh.compVerts[int64(v)] = []int32{int32(v)}
		d.shards[d.registry(int64(v))].sizes[int64(v)] = 1
	}
	return d
}

func (d *D) owner(v int) int         { return v % len(d.shards) }
func (d *D) registry(comp int64) int { return int(comp % int64(len(d.shards))) }

// Cluster exposes the underlying cluster (stats, entropy metric).
func (d *D) Cluster() *mpc.Cluster { return d.cluster }

// Close releases the cluster's execution backend (the parallel backend's
// worker goroutines). The structure must not be used afterwards.
func (d *D) Close() { d.cluster.Close() }

func (d *D) opWeight(w graph.Weight) graph.Weight {
	if d.cfg.Mode == MST && d.cfg.Eps > 0 {
		return graph.BucketWeight(w, d.cfg.Eps)
	}
	return w
}

// Insert adds edge (u,v) with weight w (ignored in CC mode), driving the
// cluster for the O(1) rounds of the §5 protocol. It returns the update's
// accounting.
func (d *D) Insert(u, v int, w graph.Weight) mpc.UpdateStats {
	return d.update(graph.Update{Op: graph.Insert, U: u, V: v, W: w})
}

// Delete removes edge (u,v).
func (d *D) Delete(u, v int) mpc.UpdateStats {
	return d.update(graph.Update{Op: graph.Delete, U: u, V: v})
}

func (d *D) update(up graph.Update) mpc.UpdateStats {
	d.seq++
	d.cluster.BeginUpdate()
	d.inject(up, d.seq)
	if d.cluster.Run(64); !d.cluster.Quiescent() {
		panic(fmt.Sprintf("dyncon: update %v did not quiesce in 64 rounds", up))
	}
	return d.cluster.EndUpdate()
}

func (d *D) inject(up graph.Update, seq int64) {
	d.cluster.Send(mpc.Message{
		From: -1, To: d.owner(up.U),
		Payload: wire{
			Kind: kUpdate, U: int32(up.U), V: int32(up.V), W: int64(d.opWeight(up.W)),
			Seq: seq, Flag: up.Op == graph.Delete,
		},
		Words: 6,
	})
}

// ApplyOps processes a mixed op stream — updates (edge and vertex-weight
// writes) *and* typed reads (OpConnected, OpComponentOf, OpSubtreeSum,
// OpPathSum, OpTreeTop) — through one scheduled pipeline in a
// single mixed round-accounting window (mpc.MixedStats). Each pending
// op's resources are read driver-side and handed to the shared wave
// scheduler (internal/sched):
//
//   - an update claims its two endpoint component labels exclusively
//     (semantic conflicts: overlapping updates must stay ordered) and its
//     orchestrator machine as a budgeted claim (resource conflict:
//     concurrent orchestrations on one machine are fine until their
//     worst-round words would blow the per-round cap S);
//   - a query claims the component labels it observes as *read* keys:
//     reads of one component commute with each other and with every
//     update touching other components, but keep batch order against
//     updates of the components they observe.
//
// The first precedence color class runs as one component-disjoint
// concurrent wave through the §5 protocol, queries riding the same wave
// as scatter/forward/gather traffic. Because executing a wave merges and
// splits components, sched.Drive recomputes the items from live component
// labels between waves; later color classes are only a prediction (see
// sched.ConflictGraph).
//
// Correctness rests on two facts. Commutativity: the per-shard
// orchestration state is keyed by update sequence number and every
// broadcast shift map is conditioned on component labels, so updates whose
// endpoint components are disjoint touch disjoint records and commute
// exactly — and a query's answer depends only on the labels of its own
// endpoints' components, which no wave peer touches. Order preservation:
// the precedence coloring keeps every conflicting pair — update/update
// and update/query — in batch order. The final forest and labeling
// therefore equal sequential application, and every query is answered
// against exactly the prefix state its stream position implies
// (snapshot-consistent mid-batch reads, pinned by FuzzMixedEquivalence),
// while a wave of w ops costs the rounds of one op instead of w.
//
// The per-op orchestrator cost distinguishes updates that broadcast a
// shift descriptor to all µ machines (links, cuts, MST cycle checks) from
// updates that stay O(1)-machine local (non-tree adds and deletes, no-ops,
// and all queries): the latter pack onto a shared orchestrator nearly
// freely, the former claim most of the machine's per-round word budget.
//
// Answers are positional over the stream's queries: the j-th entry of the
// returned Results answers the j-th op with IsQuery() true.
func (d *D) ApplyOps(ops []graph.Op) (graph.Results, mpc.MixedStats) {
	nu, nq := graph.CountOps(ops)
	d.cluster.BeginMixed(nu, nq)
	// Per-tenant accounting engages only when the stream is actually
	// multi-tenant (a nonzero tenant tag or a configured fairness
	// policy); single-tenant windows stay census-free and bit-identical.
	mt := d.fair != nil
	for _, op := range ops {
		if op.Tenant != 0 {
			mt = true
			break
		}
	}
	if mt {
		d.cluster.BeginMixedTenants(tenantCensus(ops, nil))
	}
	// Sequence numbers are assigned by *stream position*, not injection
	// order: fresh component ids minted by cuts are derived from the seq
	// (N + 2·seq), so position-based seqs make the labels of a reordered
	// schedule bit-identical to sequential replay. Queries draw from the
	// separate queryID counter, exactly like the quiescence read paths.
	ids := make([]int64, len(ops))
	for i, op := range ops {
		if op.IsQuery() {
			d.queryID++
			ids[i] = d.queryID
		} else {
			d.seq++
			ids[i] = d.seq
		}
	}
	sched.DriveFair(len(ops), func(i int) sched.Item { return d.StreamItem(ops[i]) },
		d.cluster.MemWords(), d.fair, func(wave []int) {
			d.runOpWave(ops, ids, wave, mt)
		})
	st := d.cluster.EndMixed()
	res := make(graph.Results, 0, nq)
	for i, op := range ops {
		if !op.IsQuery() {
			continue
		}
		switch op.Kind {
		case graph.OpConnected:
			sh := d.shards[d.owner(op.V)]
			b, ok := sh.queryResults[ids[i]]
			if !ok {
				panic(fmt.Sprintf("dyncon: in-wave query %v produced no result", op))
			}
			delete(sh.queryResults, ids[i])
			res = append(res, graph.Answer{Bool: b})
		case graph.OpComponentOf:
			sh := d.shards[d.owner(op.U)]
			c, ok := sh.compResults[ids[i]]
			if !ok {
				panic(fmt.Sprintf("dyncon: in-wave query %v produced no result", op))
			}
			delete(sh.compResults, ids[i])
			res = append(res, graph.Answer{Int: c})
		case graph.OpSubtreeSum, graph.OpPathSum, graph.OpTreeTop:
			sh := d.shards[d.owner(op.U)]
			v, ok := sh.dpResults[ids[i]]
			if !ok {
				panic(fmt.Sprintf("dyncon: in-wave query %v produced no result", op))
			}
			delete(sh.dpResults, ids[i])
			res = append(res, graph.Answer{Int: v})
		}
	}
	return res, st
}

// StreamItem reads one op's schedule-time resources from live driver
// state — the per-op claims oracle ApplyOps feeds sched.Drive and the
// streaming Ingestor feeds its incremental Admitter. Claims are valid
// only for the state they were read from (executing ops moves component
// labels), which both callers honor: Drive recomputes items between
// waves, and the Ingestor computes each arrival's item against the
// post-last-flush quiescent state, exactly the FirstWave convention.
func (d *D) StreamItem(op graph.Op) sched.Item {
	switch op.Kind {
	case graph.OpConnected:
		return sched.Item{
			Read:   []int64{d.CompOf(op.U), d.CompOf(op.V)},
			Shared: []sched.Claim{{Key: int64(d.owner(op.U)), Cost: 8}},
			Tenant: op.Tenant,
		}
	case graph.OpComponentOf:
		return sched.Item{
			Read:   []int64{d.CompOf(op.U)},
			Shared: []sched.Claim{{Key: int64(d.owner(op.U)), Cost: 4}},
			Tenant: op.Tenant,
		}
	case graph.OpSubtreeSum:
		// DP queries broadcast one Span/predicate descriptor and gather µ
		// one-word partials; they read both observed components (the
		// subtree degenerates to u's whole component when the root sits
		// elsewhere, so the answer depends on V's label too).
		return sched.Item{
			Read:   []int64{d.CompOf(op.U), d.CompOf(op.V)},
			Shared: []sched.Claim{{Key: int64(d.owner(op.U)), Cost: 8*len(d.shards) + 16}},
			Tenant: op.Tenant,
		}
	case graph.OpPathSum:
		return sched.Item{
			Read:   []int64{d.CompOf(op.U), d.CompOf(op.V)},
			Shared: []sched.Claim{{Key: int64(d.owner(op.U)), Cost: 6*len(d.shards) + 16}},
			Tenant: op.Tenant,
		}
	case graph.OpTreeTop:
		return sched.Item{
			Read:   []int64{d.CompOf(op.U)},
			Shared: []sched.Claim{{Key: int64(d.owner(op.U)), Cost: 5*len(d.shards) + 8}},
			Tenant: op.Tenant,
		}
	case graph.OpMateOf, graph.OpMatched:
		panic(fmt.Sprintf("dyncon: unsupported query kind %v (connectivity answers OpConnected and OpComponentOf)", op.Kind))
	case graph.OpSetWeight:
		// A vertex-weight write: purely local at the owner, but it must
		// stay ordered against structural updates and DP reads of the
		// same component, hence the exclusive component claim.
		return sched.Item{
			Excl:   []int64{d.CompOf(op.U)},
			Shared: []sched.Claim{{Key: int64(d.owner(op.U)), Cost: 4}},
			Tenant: op.Tenant,
		}
	}
	up := op.Update()
	cost := 32 // info/size requests and non-tree record traffic, all O(1) words
	if d.broadcasts(up) {
		// Worst orchestration round of a broadcasting update: a 3-shift
		// descriptor to every machine, plus slack for the same round's
		// O(1) point-to-point traffic.
		cost = (16+5*3)*len(d.shards) + 32
	}
	return sched.Item{
		Excl:   []int64{d.CompOf(up.U), d.CompOf(up.V)},
		Shared: []sched.Claim{{Key: int64(d.owner(up.U)), Cost: cost}},
		Tenant: op.Tenant,
	}
}

// tenantCensus counts the (sub)stream's ops per tenant: over all ops
// when idx is nil, else over the stream indices in idx.
func tenantCensus(ops []graph.Op, idx []int) []mpc.TenantCount {
	n := len(ops)
	if idx != nil {
		n = len(idx)
	}
	return mpc.TenantCensus(n, func(i int) (int, bool) {
		op := ops[i]
		if idx != nil {
			op = ops[idx[i]]
		}
		return op.Tenant, op.IsQuery()
	})
}

// runOpWave injects the scheduled wave (stream indices: updates and
// queries alike) concurrently and drives the cluster to quiescence inside
// a per-wave attribution window. The test-only wavePerm hook permutes the
// injection order, backing the permutation-commutativity property test.
func (d *D) runOpWave(ops []graph.Op, ids []int64, wave []int, mt bool) {
	order := wave
	if d.wavePerm != nil {
		order = append([]int(nil), wave...)
		d.wavePerm(order)
	}
	nu, nq := 0, 0
	for _, i := range wave {
		if ops[i].IsQuery() {
			nq++
		} else {
			nu++
		}
	}
	if mt {
		d.cluster.BeginMixedWaveTenants(nu, nq, tenantCensus(ops, wave))
	} else {
		d.cluster.BeginMixedWave(nu, nq)
	}
	for _, i := range order {
		op := ops[i]
		switch op.Kind {
		case graph.OpConnected:
			d.cluster.Send(mpc.Message{
				From: -1, To: d.owner(op.U),
				Payload: wire{Kind: kQuery, U: int32(op.U), V: int32(op.V), Seq: ids[i]},
				Words:   4,
			})
		case graph.OpComponentOf:
			d.cluster.Send(mpc.Message{
				From: -1, To: d.owner(op.U),
				Payload: wire{Kind: kCompQuery, V: int32(op.U), Seq: ids[i]},
				Words:   3,
			})
		case graph.OpSubtreeSum, graph.OpPathSum, graph.OpTreeTop:
			msg := wire{Kind: kDPSubtree, U: int32(op.U), V: int32(op.V), Seq: ids[i]}
			words := 5
			switch op.Kind {
			case graph.OpPathSum:
				msg.Kind = kDPPath
			case graph.OpTreeTop:
				msg.Kind, msg.V, words = kDPTop, 0, 4
			}
			d.cluster.Send(mpc.Message{From: -1, To: d.owner(op.U), Payload: msg, Words: words})
		case graph.OpSetWeight:
			d.cluster.Send(mpc.Message{
				From: -1, To: d.owner(op.U),
				Payload: wire{Kind: kSetWeight, U: int32(op.U), W: int64(op.W), Seq: ids[i]},
				Words:   4,
			})
		case graph.OpMateOf, graph.OpMatched:
			panic(fmt.Sprintf("dyncon: unsupported query kind %v (connectivity answers OpConnected and OpComponentOf)", op.Kind))
		default:
			d.inject(op.Update(), ids[i])
		}
	}
	d.cluster.Drain(64, fmt.Sprintf("dyncon: op wave of %d updates + %d reads", nu, nq))
	d.cluster.EndMixedWave()
}

// ApplyBatch processes a batch of updates in one shared round-accounting
// window — the write-only projection of ApplyOps: the batch is lifted into
// an op stream and scheduled through the same pipeline, so the update
// half of the mixed window *is* the batch's BatchStats (no query-only
// waves exist to absorb rounds). See ApplyOps for the scheduling and
// correctness story; unlike the greedy-prefix packer (ApplyBatchPrefix,
// kept for comparison), one early conflicting pair never caps the wave
// width.
func (d *D) ApplyBatch(batch graph.Batch) mpc.BatchStats {
	_, st := d.ApplyOps(graph.UpdateOps(batch))
	return st.Updates
}

// broadcasts predicts, from driver-side oracle state at schedule time,
// whether the §5 orchestration of up includes a cluster-wide broadcast
// round: links (components differ), cuts (deleting a tree edge), and MST
// cycle checks all broadcast; non-tree adds and deletes, duplicates and
// no-ops touch O(1) machines with O(1) words. The prediction stays valid
// through the wave because wave members are component-disjoint: no wave
// peer can move the edge between tree and non-tree or merge the endpoint
// components.
func (d *D) broadcasts(up graph.Update) bool {
	if up.U == up.V {
		return false
	}
	e := graph.NormEdge(up.U, up.V)
	sh := d.shards[d.owner(up.U)] // owner of U holds every record incident to U
	if up.Op == graph.Delete {
		_, isTree := sh.tree[e]
		return isTree
	}
	if _, dup := sh.tree[e]; dup {
		return false
	}
	if _, dup := sh.nontree[e]; dup {
		return false
	}
	if d.CompOf(up.U) != d.CompOf(up.V) {
		return true // link broadcast
	}
	// Same component: CC stores a non-tree record locally; MST broadcasts
	// the cycle check (and possibly a swap cut plus relink).
	return d.cfg.Mode == MST
}

// ApplyBatchPrefix is the PR 1 greedy-prefix wave packer, retained as the
// baseline the conflict-graph scheduler is benchmarked against (see
// cmd/dmpcbench -shard and BENCH_0003.json): each wave is the longest
// *prefix* of the remaining updates whose endpoint components are pairwise
// disjoint and whose orchestrator machines are distinct, so one early
// conflicting edge caps the wave width. Semantics are identical to
// ApplyBatch; only the packing (and hence the amortized round count)
// differs.
func (d *D) ApplyBatchPrefix(batch graph.Batch) mpc.BatchStats {
	d.cluster.BeginBatch(len(batch))
	for i := 0; i < len(batch); {
		touched := make(map[int64]bool, 8)
		orch := make(map[int]bool, 8)
		j := i
		for j < len(batch) {
			up := batch[j]
			cu, cv := d.CompOf(up.U), d.CompOf(up.V)
			o := d.owner(up.U)
			if touched[cu] || touched[cv] || orch[o] {
				break
			}
			touched[cu], touched[cv] = true, true
			orch[o] = true
			j++
		}
		d.cluster.BeginWave(j - i)
		for _, up := range batch[i:j] {
			d.seq++
			d.inject(up, d.seq)
		}
		d.cluster.Drain(64, fmt.Sprintf("dyncon: batch wave of %d updates", j-i))
		d.cluster.EndWave()
		i = j
	}
	return d.cluster.EndBatch()
}

// Connected answers a connectivity query through the cluster (two rounds,
// two active machines, O(1) words — the query path of §5). Its rounds are
// charged to a QueryStats window, never to an update window.
func (d *D) Connected(u, v int) bool {
	return d.ConnectedBatch([]graph.Pair{{U: u, V: v}})[0]
}

// ConnectedBatch answers k connectivity queries in one shared query window:
// all queries are injected at their first endpoints' owners in a single
// scatter round, forwarded, and answered at the second endpoints' owners in
// a single gather round — so the whole batch costs the two rounds of one §5
// query and the amortized cost is 2/k rounds per query, exactly how
// ApplyBatch amortizes update rounds. Answers are positional: out[i]
// answers pairs[i].
func (d *D) ConnectedBatch(pairs []graph.Pair) []bool {
	if len(pairs) == 0 {
		return nil
	}
	d.cluster.BeginQueryBatch(len(pairs))
	qids := make([]int64, len(pairs))
	for i, p := range pairs {
		d.queryID++
		qids[i] = d.queryID
		d.cluster.Send(mpc.Message{
			From: -1, To: d.owner(p.U),
			Payload: wire{Kind: kQuery, U: int32(p.U), V: int32(p.V), Seq: qids[i]},
			Words:   4,
		})
	}
	rounds := d.drainQueries(len(pairs))
	d.cluster.EndQueryBatch()
	out := make([]bool, len(pairs))
	for i, p := range pairs {
		sh := d.shards[d.owner(p.V)]
		res, ok := sh.queryResults[qids[i]]
		if !ok {
			panic(fmt.Sprintf("dyncon: query (%d,%d) produced no result after %d rounds", p.U, p.V, rounds))
		}
		delete(sh.queryResults, qids[i])
		out[i] = res
	}
	return out
}

// ComponentOf answers a component-label query through the cluster (one
// round, one active machine, O(1) words): the owner of v records comp(v)
// for the driver to gather. This is the protocol-accounted counterpart of
// the CompOf validation oracle.
func (d *D) ComponentOf(v int) int64 {
	d.cluster.BeginQuery()
	d.queryID++
	qid := d.queryID
	d.cluster.Send(mpc.Message{
		From: -1, To: d.owner(v),
		Payload: wire{Kind: kCompQuery, V: int32(v), Seq: qid},
		Words:   3,
	})
	rounds := d.drainQueries(1)
	d.cluster.EndQuery()
	sh := d.shards[d.owner(v)]
	res, ok := sh.compResults[qid]
	if !ok {
		panic(fmt.Sprintf("dyncon: component query for %d produced no result after %d rounds", v, rounds))
	}
	delete(sh.compResults, qid)
	return res
}

// drainQueries drives the cluster until quiescent under the standard
// 64-round guard, reporting the round count. Queries normally settle in one
// or two rounds; the slack covers update traffic still in flight when the
// query was injected, which the query window then legitimately absorbs.
func (d *D) drainQueries(k int) int {
	return d.cluster.Drain(64, fmt.Sprintf("dyncon: query batch of %d", k))
}

// CompOf returns v's component label by inspecting the shard directly —
// driver-side oracle access for validation only, not part of the protocol
// accounting. Use ComponentOf for the protocol query.
func (d *D) CompOf(v int) int64 {
	return d.shards[d.owner(v)].verts[int32(v)]
}

// ForestEdges returns the maintained spanning forest (driver-side oracle
// access for validation).
func (d *D) ForestEdges() []graph.WEdge {
	var out []graph.WEdge
	for _, sh := range d.shards {
		for k, rec := range sh.tree {
			if int(k.U)%len(d.shards) == sh.id { // report once, at U's owner
				out = append(out, graph.WEdge{U: int(k.U), V: int(k.V), W: graph.Weight(rec.w)})
			}
		}
	}
	return out
}

// NonTreeEdges returns the stored non-tree records (driver-side oracle).
func (d *D) NonTreeEdges() []graph.WEdge {
	var out []graph.WEdge
	for _, sh := range d.shards {
		for k, rec := range sh.nontree {
			if int(k.U)%len(d.shards) == sh.id {
				out = append(out, graph.WEdge{U: int(k.U), V: int(k.V), W: graph.Weight(rec.w)})
			}
		}
	}
	return out
}

// ForestWeight sums the maintained forest's operative weights.
func (d *D) ForestWeight() graph.Weight {
	var total graph.Weight
	for _, e := range d.ForestEdges() {
		total += e.W
	}
	return total
}

// Validate cross-checks the distributed state: owner copies of each record
// must agree, every component's positions must reassemble into a valid
// Euler tour, registry sizes must match vertex counts, and every non-tree
// anchor must be a genuine appearance of its endpoint with consistent
// component labels. Driver-side; used by tests after every update.
func (d *D) Validate() error {
	type agg struct {
		rec  treeRec
		seen int
	}
	all := map[graph.Edge]*agg{}
	for _, sh := range d.shards {
		for k, rec := range sh.tree {
			if a, ok := all[k]; ok {
				a.seen++
				if a.rec.pos != rec.pos || a.rec.comp != rec.comp || a.rec.w != rec.w {
					return fmt.Errorf("edge %v: owner copies disagree", k)
				}
			} else {
				all[k] = &agg{rec: *rec, seen: 1}
			}
		}
	}
	for ge, a := range all {
		want := 2
		if d.owner(ge.U) == d.owner(ge.V) {
			want = 1
		}
		if a.seen != want {
			return fmt.Errorf("edge %v: %d copies, want %d", ge, a.seen, want)
		}
	}

	// The compVerts inverse index must mirror verts exactly on every
	// shard: each owned vertex listed once under its current label, no
	// stale or duplicate entries. The broadcast relabel loops walk this
	// index instead of scanning verts, so drift here would silently skip
	// (or double-apply) component relabels.
	for _, sh := range d.shards {
		listed := 0
		seen := make(map[int32]bool, len(sh.verts))
		for comp, vs := range sh.compVerts {
			for _, v := range vs {
				if seen[v] {
					return fmt.Errorf("machine %d: vertex %d listed twice in compVerts", sh.id, v)
				}
				seen[v] = true
				if got, ok := sh.verts[v]; !ok || got != comp {
					return fmt.Errorf("machine %d: compVerts files vertex %d under %d, verts says %d", sh.id, v, comp, got)
				}
			}
			listed += len(vs)
		}
		if listed != len(sh.verts) {
			return fmt.Errorf("machine %d: compVerts indexes %d vertices, verts holds %d", sh.id, listed, len(sh.verts))
		}
	}

	// Registry sizes vs vertex labels.
	sizes := map[int64]int{}
	for _, sh := range d.shards {
		for c, s := range sh.sizes {
			sizes[c] = s
		}
	}
	counts := map[int64]int{}
	for v := 0; v < d.cfg.N; v++ {
		counts[d.CompOf(v)]++
	}
	for c, k := range counts {
		if sizes[c] != k {
			return fmt.Errorf("component %d: registry size %d, actual %d", c, sizes[c], k)
		}
	}

	// Reassemble tours per component.
	tours := map[int64][]int{}
	for c, k := range counts {
		tours[c] = make([]int, 4*(k-1))
	}
	place := func(c int64, pos, vert int) error {
		t := tours[c]
		if pos < 1 || pos > len(t) {
			return fmt.Errorf("component %d: position %d outside tour of length %d", c, pos, len(t))
		}
		if t[pos-1] != 0 && t[pos-1] != vert+1 {
			return fmt.Errorf("component %d: position %d claimed by %d and %d", c, pos, t[pos-1]-1, vert)
		}
		t[pos-1] = vert + 1 // store +1 so 0 means empty
		return nil
	}
	for ge, a := range all {
		c := a.rec.comp
		if d.CompOf(ge.U) != c || d.CompOf(ge.V) != c {
			return fmt.Errorf("edge %v: component label %d disagrees with endpoints", ge, c)
		}
		p := a.rec.pos
		for _, pv := range [4][2]int{{p.UV[0], p.U}, {p.UV[1], p.V}, {p.VU[0], p.V}, {p.VU[1], p.U}} {
			if err := place(c, pv[0], pv[1]); err != nil {
				return err
			}
		}
	}
	appear := map[int64]map[int]map[int]bool{} // comp -> vertex -> positions
	for c, t := range tours {
		seq := make([]int, len(t))
		appear[c] = map[int]map[int]bool{}
		for i, x := range t {
			if x == 0 {
				return fmt.Errorf("component %d: position %d unassigned", c, i+1)
			}
			seq[i] = x - 1
			if appear[c][x-1] == nil {
				appear[c][x-1] = map[int]bool{}
			}
			appear[c][x-1][i+1] = true
		}
		if err := etour.SeqFromSlice(seq).Valid(); err != nil {
			return fmt.Errorf("component %d: %w", c, err)
		}
	}

	// Non-tree anchors.
	seenNT := map[graph.Edge]bool{}
	for _, sh := range d.shards {
		for ge, rec := range sh.nontree {
			if seenNT[ge] {
				continue
			}
			seenNT[ge] = true
			cu, cv := d.CompOf(ge.U), d.CompOf(ge.V)
			if cu != cv {
				return fmt.Errorf("non-tree edge %v spans components %d and %d", ge, cu, cv)
			}
			if rec.cU != cu || rec.cV != cv {
				return fmt.Errorf("non-tree edge %v: anchor comps (%d,%d) want %d", ge, rec.cU, rec.cV, cu)
			}
			for _, av := range [2][2]int{{rec.aU, ge.U}, {rec.aV, ge.V}} {
				anchor, vert := av[0], av[1]
				if anchor == 0 {
					return fmt.Errorf("non-tree edge %v: lingering singleton anchor for %d", ge, vert)
				}
				if !appear[cu][vert][anchor] {
					return fmt.Errorf("non-tree edge %v: anchor %d is not an appearance of %d", ge, anchor, vert)
				}
			}
		}
	}

	// Weight partials (tree DP): each record lives at its vertex's owner
	// only, mirrors the vertex's live component label, and anchors a
	// genuine surviving tour appearance — 0 exactly for singletons. Like
	// the compVerts rule, this is mirrored-by-construction state, so
	// every perm/fuzz suite calling Validate exercises the Shift repair
	// rule for free.
	for _, sh := range d.shards {
		for v, rec := range sh.weights {
			if d.owner(int(v)) != sh.id {
				return fmt.Errorf("weight record for %d held by machine %d, owner is %d", v, sh.id, d.owner(int(v)))
			}
			c := d.CompOf(int(v))
			if rec.Comp != c {
				return fmt.Errorf("weight record for %d: component %d, verts says %d", v, rec.Comp, c)
			}
			if counts[c] == 1 {
				if rec.Anchor != 0 {
					return fmt.Errorf("weight record for singleton %d: anchor %d, want 0", v, rec.Anchor)
				}
				continue
			}
			if rec.Anchor == 0 {
				return fmt.Errorf("weight record for %d: lingering singleton anchor", v)
			}
			if !appear[c][int(v)][rec.Anchor] {
				return fmt.Errorf("weight record for %d: anchor %d is not an appearance", v, rec.Anchor)
			}
		}
	}
	return nil
}

// WeightOf returns v's tree-DP weight by inspecting the shard directly —
// driver-side oracle access for validation (0 when never set).
func (d *D) WeightOf(v int) int64 {
	if rec, ok := d.shards[d.owner(v)].weights[int32(v)]; ok {
		return rec.W
	}
	return 0
}
