package mpc

import "sync"

// SimBackend is the deterministic single-driver simulator loop — the
// correctness and accounting oracle. The driver goroutine orchestrates
// every round: it computes the active set, sorts each inbox, runs the
// handlers on short-lived goroutines bounded by the worker semaphore,
// and stages the staged messages in ascending sender order. Handler
// state is only ever touched by the machine's own handler, so results
// are independent of the worker bound (pinned by the determinism tests).
//
// The per-round scratch — the worker semaphore and the active and
// context slices — is hoisted into the backend and reused across rounds,
// so a round's allocation bill is one Ctx per active machine plus
// whatever the handlers themselves allocate (see BenchmarkRoundAllocs).
type SimBackend struct {
	backendBase
	workers int
	sem     chan struct{} // hoisted handler-concurrency semaphore
	ctxs    []*Ctx        // hoisted per-round contexts, positional over the active set
}

func newSimBackend(c *Cluster, workers int) *SimBackend {
	return &SimBackend{
		backendBase: newBackendBase(c),
		workers:     workers,
		sem:         make(chan struct{}, workers),
	}
}

// Round executes one synchronous round: delivers all pending messages,
// runs every active machine's handler concurrently, and stages the
// messages they send for the next round.
func (s *SimBackend) Round() RoundStats {
	active, rs := s.beginRound()

	if cap(s.ctxs) < len(active) {
		s.ctxs = make([]*Ctx, len(active))
	}
	s.ctxs = s.ctxs[:len(active)]

	// Run handlers concurrently, bounded by the hoisted semaphore.
	var wg sync.WaitGroup
	for i, id := range active {
		ctx := &Ctx{cluster: s.c, self: id, round: s.c.stats.Rounds}
		s.ctxs[i] = ctx
		inbox := s.inboxes[id]
		sortInbox(inbox)
		m := s.c.machines[id]
		wg.Add(1)
		s.sem <- struct{}{}
		go func(m Machine, ctx *Ctx, inbox []Message) {
			defer wg.Done()
			defer func() { <-s.sem }()
			if m != nil {
				m.HandleRound(ctx, inbox)
			}
		}(m, ctx, inbox)
	}
	wg.Wait()

	s.settle(active, func(i, _ int) *Ctx { return s.ctxs[i] })
	return rs
}

// Close is a no-op: the sim backend holds no long-lived goroutines.
func (s *SimBackend) Close() {}
