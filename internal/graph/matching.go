package graph

// Matching oracles: validity, maximality, augmenting-path detection and
// exact maximum matchings on small graphs. A matching is represented as a
// mate table: mate[v] = partner of v, or -1 if v is free.

// MateTable converts an edge list into a mate table, panicking if the edges
// do not form a matching on [0,n).
func MateTable(n int, matching []Edge) []int {
	mate := make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	for _, e := range matching {
		if mate[e.U] != -1 || mate[e.V] != -1 {
			panic("graph: edge list is not a matching")
		}
		mate[e.U] = e.V
		mate[e.V] = e.U
	}
	return mate
}

// MatchingSize returns the number of matched edges in a mate table.
func MatchingSize(mate []int) int {
	k := 0
	for v, m := range mate {
		if m > v {
			k++
		}
	}
	return k
}

// IsMatching reports whether mate is a consistent matching whose edges all
// exist in g.
func IsMatching(g *Graph, mate []int) bool {
	if len(mate) != g.N() {
		return false
	}
	for v, m := range mate {
		if m == -1 {
			continue
		}
		if m < 0 || m >= g.N() || m == v {
			return false
		}
		if mate[m] != v {
			return false
		}
		if !g.Has(v, m) {
			return false
		}
	}
	return true
}

// IsMaximalMatching reports whether mate is a matching of g with no edge
// having both endpoints free.
func IsMaximalMatching(g *Graph, mate []int) bool {
	if !IsMatching(g, mate) {
		return false
	}
	return CountFreeFreeEdges(g, mate) == 0
}

// CountFreeFreeEdges counts edges of g whose endpoints are both unmatched —
// the "maximality deficit" used to validate the almost-maximal matching of
// §6 (a proper maximal matching has deficit zero).
func CountFreeFreeEdges(g *Graph, mate []int) int {
	deficit := 0
	for _, e := range g.Edges() {
		if mate[e.U] == -1 && mate[e.V] == -1 {
			deficit++
		}
	}
	return deficit
}

// HasLength3AugPath reports whether g has an augmenting path of length 3
// with respect to the matching: free - matched(u,v) - free. By the
// Hopcroft–Karp bound, a maximal matching without such paths is a
// 3/2-approximation of the maximum matching (k=2 in Lemma of [22]).
func HasLength3AugPath(g *Graph, mate []int) bool {
	hasFreeNeighborOtherThan := func(v, excl1, excl2 int) bool {
		found := false
		g.EachNeighbor(v, func(w int, _ Weight) bool {
			if w != excl1 && w != excl2 && mate[w] == -1 {
				found = true
				return false
			}
			return true
		})
		return found
	}
	for v, m := range mate {
		if m <= v {
			continue
		}
		// Matched edge (v,m): augmenting path of length 3 exists iff both
		// endpoints have a free neighbor (distinct free endpoints).
		if !hasFreeNeighborOtherThan(v, m, -1) {
			continue
		}
		// v has some free neighbor a; m needs a free neighbor b != a.
		// Collect v's free neighbors; if >= 2, any free neighbor of m works.
		var frees []int
		g.EachNeighbor(v, func(w int, _ Weight) bool {
			if w != m && mate[w] == -1 {
				frees = append(frees, w)
			}
			return len(frees) < 2
		})
		excl := -1
		if len(frees) == 1 {
			excl = frees[0]
		}
		if hasFreeNeighborOtherThan(m, v, excl) {
			return true
		}
	}
	return false
}

// MaxMatchingSize computes the exact maximum matching size of g by dynamic
// programming over vertex subsets. It panics for n > 22; it exists to
// validate approximation factors on small instances.
func MaxMatchingSize(g *Graph) int {
	n := g.N()
	if n > 22 {
		panic("graph: MaxMatchingSize limited to n <= 22")
	}
	adj := make([]uint32, n)
	for v := 0; v < n; v++ {
		g.EachNeighbor(v, func(w int, _ Weight) bool {
			adj[v] |= 1 << uint(w)
			return true
		})
	}
	memo := make([]int8, 1<<uint(n))
	for i := range memo {
		memo[i] = -1
	}
	var solve func(mask uint32) int8
	solve = func(mask uint32) int8 {
		if mask == 0 {
			return 0
		}
		if memo[mask] >= 0 {
			return memo[mask]
		}
		// Lowest set bit = lowest unprocessed vertex.
		v := 0
		for mask&(1<<uint(v)) == 0 {
			v++
		}
		rest := mask &^ (1 << uint(v))
		best := solve(rest) // leave v unmatched
		cand := adj[v] & rest
		for cand != 0 {
			w := 0
			for cand&(1<<uint(w)) == 0 {
				w++
			}
			cand &^= 1 << uint(w)
			if s := solve(rest&^(1<<uint(w))) + 1; s > best {
				best = s
			}
		}
		memo[mask] = best
		return best
	}
	full := uint32(1)<<uint(n) - 1
	return int(solve(full))
}

// GreedyMaximalMatching returns a maximal matching built greedily over the
// sorted edge list — the static baseline for matching experiments.
func GreedyMaximalMatching(g *Graph) []int {
	mate := make([]int, g.N())
	for i := range mate {
		mate[i] = -1
	}
	for _, e := range g.Edges() {
		if mate[e.U] == -1 && mate[e.V] == -1 {
			mate[e.U] = e.V
			mate[e.V] = e.U
		}
	}
	return mate
}
