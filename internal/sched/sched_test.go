package sched

import (
	"math/rand"
	"testing"
)

func exclItems(keys [][]int64) []Item {
	items := make([]Item, len(keys))
	for i, ks := range keys {
		items[i] = Item{Excl: ks}
	}
	return items
}

// TestBuildConflict pins the conflict relation: updates conflict iff their
// exclusive key sets intersect, repeated keys within one update are
// harmless, and the relation is irreflexive and symmetric.
func TestBuildConflict(t *testing.T) {
	keys := [][]int64{
		{1, 2},
		{3, 4},
		{2, 3},
		{5, 5}, // same resource named twice: no self-conflict
		{5, 6},
	}
	cg := BuildConflict(exclItems(keys))
	want := map[[2]int]bool{
		{0, 2}: true, // share 2
		{1, 2}: true, // share 3
		{3, 4}: true, // share 5
	}
	for i := 0; i < cg.N(); i++ {
		if cg.Conflicts(i, i) {
			t.Fatalf("update %d conflicts with itself", i)
		}
		for j := i + 1; j < cg.N(); j++ {
			got := cg.Conflicts(i, j)
			if got != want[[2]int{i, j}] {
				t.Fatalf("Conflicts(%d,%d) = %v, want %v", i, j, got, want[[2]int{i, j}])
			}
			if got != cg.Conflicts(j, i) {
				t.Fatalf("Conflicts(%d,%d) not symmetric", i, j)
			}
		}
	}
}

// TestBuildConflictSolo pins that a Solo item conflicts with every other
// item even with no shared keys.
func TestBuildConflictSolo(t *testing.T) {
	items := []Item{
		{Excl: []int64{1}},
		{Solo: true},
		{Excl: []int64{2}},
	}
	cg := BuildConflict(items)
	for _, pair := range [][2]int{{0, 1}, {1, 2}} {
		if !cg.Conflicts(pair[0], pair[1]) {
			t.Fatalf("solo item does not conflict with %d", pair[0]+pair[1]-1)
		}
	}
	if cg.Conflicts(0, 2) {
		t.Fatal("disjoint non-solo items conflict")
	}
}

// randomItems builds random exclusive- and read-key items, optionally
// sprinkling Solo markers.
func randomItems(rng *rand.Rand, n, nkeys int, soloFrac float64) []Item {
	items := make([]Item, n)
	for i := range items {
		nk := rng.Intn(4) // 0..3 keys, duplicates allowed
		for j := 0; j < nk; j++ {
			items[i].Excl = append(items[i].Excl, int64(rng.Intn(nkeys)))
		}
		nr := rng.Intn(3) // 0..2 read keys, may overlap the exclusive ones
		for j := 0; j < nr; j++ {
			items[i].Read = append(items[i].Read, int64(rng.Intn(nkeys)))
		}
		if rng.Float64() < soloFrac {
			items[i].Solo = true
		}
	}
	return items
}

// TestPrecedenceColorProperties pins the two scheduler obligations on
// random conflict graphs: the coloring is proper (no conflicting pair
// shares a color) and order-preserving (for conflicting i < j, color(i) <
// color(j), so executing color classes in order replays every conflicting
// pair in batch order).
func TestPrecedenceColorProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		items := randomItems(rng, n, 1+rng.Intn(12), 0.1)
		cg := BuildConflict(items)
		colors := cg.PrecedenceColor()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if !cg.Conflicts(i, j) {
					continue
				}
				if colors[i] >= colors[j] {
					t.Fatalf("trial %d: conflicting pair (%d,%d) has colors (%d,%d); want color(i) < color(j)",
						trial, i, j, colors[i], colors[j])
				}
			}
		}
		// Tightness: every color c > 0 is forced by an earlier neighbor of
		// color c-1 (the greedy rule takes the minimum feasible color).
		for j, c := range colors {
			if c == 0 {
				continue
			}
			forced := false
			for i := 0; i < j; i++ {
				if colors[i] == c-1 && cg.Conflicts(i, j) {
					forced = true
					break
				}
			}
			if !forced {
				t.Fatalf("trial %d: update %d has color %d with no earlier conflicting neighbor of color %d",
					trial, j, c, c-1)
			}
		}
	}
}

// TestFirstWaveEquivalence pins that the one-pass scheduler hot path with
// an unlimited budget computes exactly the first precedence color class of
// the materialized conflict graph, across random key sets including empty
// key lists and Solo items.
func TestFirstWaveEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		items := randomItems(rng, n, 10, 0.15)
		want := BuildConflict(items).Waves()[0]
		got := FirstWave(items, 0)
		if len(got) != len(want) {
			t.Fatalf("trial %d: FirstWave %v, Waves()[0] %v", trial, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: FirstWave %v, Waves()[0] %v", trial, got, want)
			}
		}
	}
}

// TestWaves pins the wave grouping: waves partition the batch, each wave is
// an independent set listed in ascending batch order, and waves[0] is
// exactly the set of updates with no earlier conflicting update.
func TestWaves(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(30)
		items := randomItems(rng, n, 8, 0.1)
		cg := BuildConflict(items)
		waves := cg.Waves()
		seen := make([]bool, n)
		for w, wave := range waves {
			if len(wave) == 0 {
				t.Fatalf("trial %d: empty wave %d", trial, w)
			}
			for x := 0; x < len(wave); x++ {
				if seen[wave[x]] {
					t.Fatalf("trial %d: update %d in two waves", trial, wave[x])
				}
				seen[wave[x]] = true
				if x > 0 && wave[x-1] >= wave[x] {
					t.Fatalf("trial %d: wave %d not in ascending batch order: %v", trial, w, wave)
				}
				for y := x + 1; y < len(wave); y++ {
					if cg.Conflicts(wave[x], wave[y]) {
						t.Fatalf("trial %d: wave %d contains conflicting pair (%d,%d)",
							trial, w, wave[x], wave[y])
					}
				}
			}
		}
		for i, s := range seen {
			if !s {
				t.Fatalf("trial %d: update %d in no wave", trial, i)
			}
		}
		inFirst := make(map[int]bool, len(waves[0]))
		for _, i := range waves[0] {
			inFirst[i] = true
		}
		for j := 0; j < n; j++ {
			free := true
			for i := 0; i < j; i++ {
				if cg.Conflicts(i, j) {
					free = false
					break
				}
			}
			if free != inFirst[j] {
				t.Fatalf("trial %d: update %d conflict-free=%v but in waves[0]=%v", trial, j, free, inFirst[j])
			}
		}
	}
}

// TestFirstWaveBudget pins the broadcast-budget packing rule: updates that
// collide only on a shared key pack into one wave until the budget is
// exhausted, an oversized claim still gets the key to itself, and
// exhaustion on one key does not block claimants of other keys.
func TestFirstWaveBudget(t *testing.T) {
	orch := func(key int64, cost int) Item {
		return Item{Shared: []Claim{{Key: key, Cost: cost}}}
	}
	items := []Item{
		orch(1, 40),  // joins: key 1 usage 40
		orch(1, 40),  // joins: 80 = budget
		orch(1, 40),  // blocked: would be 120 > 100
		orch(2, 999), // oversized claim, key 2 unused: joins alone on key 2
		orch(2, 1),   // blocked: key 2 over budget
		orch(3, 10),  // joins: key 3 untouched
	}
	got := FirstWave(items, 100)
	want := []int{0, 1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("FirstWave = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FirstWave = %v, want %v", got, want)
		}
	}
	// Unlimited budget packs everything conflict-free.
	if all := FirstWave(items, 0); len(all) != len(items) {
		t.Fatalf("unlimited budget FirstWave = %v, want all %d items", all, len(items))
	}
}

// TestFirstWaveExclBlocksLater pins order preservation: an update blocked
// on an exclusive key still claims its keys, so a later update conflicting
// with the *blocked* one cannot jump ahead of it.
func TestFirstWaveExclBlocksLater(t *testing.T) {
	items := []Item{
		{Excl: []int64{1}},
		{Excl: []int64{1, 2}}, // blocked on 1, claims 2
		{Excl: []int64{2}},    // must not jump ahead of 1
	}
	got := FirstWave(items, 0)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("FirstWave = %v, want [0]", got)
	}
}

// TestBuildConflictRead pins the read-claim relation: readers of one key
// never conflict with each other, a reader conflicts with every exclusive
// claimant of its key in either batch order, and an item claiming a key
// both ways behaves as an exclusive claimant.
func TestBuildConflictRead(t *testing.T) {
	items := []Item{
		{Read: []int64{1}},                   // 0: reader
		{Read: []int64{1}},                   // 1: reader — no conflict with 0
		{Excl: []int64{1}},                   // 2: writer — conflicts with 0, 1
		{Read: []int64{1}},                   // 3: reader after the writer
		{Excl: []int64{2}, Read: []int64{2}}, // 4: excl subsumes the read
		{Read: []int64{2}},                   // 5: conflicts with 4
	}
	cg := BuildConflict(items)
	want := map[[2]int]bool{
		{0, 2}: true, {1, 2}: true, {2, 3}: true, {4, 5}: true,
	}
	for i := 0; i < cg.N(); i++ {
		if cg.Conflicts(i, i) {
			t.Fatalf("item %d conflicts with itself", i)
		}
		for j := i + 1; j < cg.N(); j++ {
			if got := cg.Conflicts(i, j); got != want[[2]int{i, j}] {
				t.Fatalf("Conflicts(%d,%d) = %v, want %v", i, j, got, want[[2]int{i, j}])
			}
		}
	}
}

// TestFirstWaveReadSharing pins the wave-formation rules for reads: any
// number of readers of one key share a wave, a reader never overtakes a
// conflicting earlier writer, and a blocked reader still blocks later
// writers of its key (order preservation through reads).
func TestFirstWaveReadSharing(t *testing.T) {
	check := func(items []Item, want []int) {
		t.Helper()
		got := FirstWave(items, 0)
		if len(got) != len(want) {
			t.Fatalf("FirstWave = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("FirstWave = %v, want %v", got, want)
			}
		}
	}
	// Readers pack together; an unrelated writer joins too.
	check([]Item{
		{Read: []int64{1}},
		{Read: []int64{1}},
		{Read: []int64{1}},
		{Excl: []int64{2}},
	}, []int{0, 1, 2, 3})
	// A writer at the head blocks its readers, but not readers of other keys.
	check([]Item{
		{Excl: []int64{1}},
		{Read: []int64{1}},
		{Read: []int64{2}},
	}, []int{0, 2})
	// A blocked reader blocks the later writer of its key: 1 is blocked by
	// 0's write of key 1; 2 writes key 2, which 1 reads — 2 may not jump
	// ahead of 1.
	check([]Item{
		{Excl: []int64{1}},
		{Read: []int64{1, 2}},
		{Excl: []int64{2}},
	}, []int{0})
	// A reader ahead of a writer of its key keeps the writer out of the
	// wave (the read must see pre-write state).
	check([]Item{
		{Read: []int64{1}},
		{Excl: []int64{1}},
	}, []int{0})
}

// TestFirstWaveSolo pins the solo rules: a solo update joins only from
// position 0 and always alone, and blocks everything behind it.
func TestFirstWaveSolo(t *testing.T) {
	if got := FirstWave([]Item{{Solo: true}, {}, {}}, 0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("leading solo: FirstWave = %v, want [0]", got)
	}
	got := FirstWave([]Item{{Excl: []int64{1}}, {Solo: true}, {Excl: []int64{2}}}, 0)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("mid-batch solo: FirstWave = %v, want [0]", got)
	}
}

// TestDrive pins the wave loop: every update executes exactly once, waves
// respect the conflict relation computed against live state, batch order is
// preserved among conflicting updates, and progress is guaranteed (a batch
// of all-conflicting updates degenerates to singleton waves in order).
func TestDrive(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(40)
		items := randomItems(rng, n, 6, 0.1)
		var order []int
		ran := make([]bool, n)
		waves := Drive(n, func(i int) Item { return items[i] }, 0, func(wave []int) {
			if len(wave) == 0 {
				t.Fatalf("trial %d: empty wave", trial)
			}
			for x, i := range wave {
				if ran[i] {
					t.Fatalf("trial %d: update %d executed twice", trial, i)
				}
				ran[i] = true
				if x > 0 && wave[x-1] >= i {
					t.Fatalf("trial %d: wave not in ascending batch order: %v", trial, wave)
				}
			}
			order = append(order, wave...)
		})
		if waves <= 0 {
			t.Fatalf("trial %d: Drive reported %d waves", trial, waves)
		}
		for i, r := range ran {
			if !r {
				t.Fatalf("trial %d: update %d never executed", trial, i)
			}
		}
		// Conflicting pairs keep batch order in the execution sequence.
		cg := BuildConflict(items)
		pos := make([]int, n)
		for p, i := range order {
			pos[i] = p
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if cg.Conflicts(i, j) && pos[i] > pos[j] {
					t.Fatalf("trial %d: conflicting pair (%d,%d) executed out of order", trial, i, j)
				}
			}
		}
	}
	// All-conflicting batch: singleton waves in batch order.
	n := 7
	var order []int
	waves := Drive(n, func(i int) Item { return Item{Excl: []int64{42}} }, 0, func(wave []int) {
		order = append(order, wave...)
	})
	if waves != n {
		t.Fatalf("all-conflicting batch ran in %d waves, want %d", waves, n)
	}
	for i, b := range order {
		if b != i {
			t.Fatalf("all-conflicting batch order %v, want identity", order)
		}
	}
}
