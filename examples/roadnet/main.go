// Road-network MST: a weighted grid models a road network undergoing
// construction (segment closures and openings, travel-time changes via
// delete+insert). The §5.1 structure keeps a (1+ε)-approximate minimum
// spanning tree current in O(1) rounds per change, validated against
// Kruskal on every snapshot.
package main

import (
	"fmt"
	"math/rand"

	"dmpc"
	"dmpc/internal/graph"
)

func main() {
	const rows, cols = 12, 12
	const eps = 0.25
	n := rows * cols
	rng := rand.New(rand.NewSource(7))

	grid := graph.Grid(rows, cols, 100, rng)
	mst := dmpc.NewMST(n, eps, 2*grid.M())
	g := dmpc.NewGraph(n)

	// Open the network road by road.
	for _, e := range grid.Edges() {
		mst.Insert(e.U, e.V, e.W)
		g.Insert(e.U, e.V, e.W)
	}
	fmt.Printf("network opened: %d junctions, %d roads, MST (bucketed) weight %d, exact %d\n",
		n, g.M(), mst.Weight(), graph.MSFWeight(g))

	// Construction season: close random roads, open bypasses, re-grade
	// travel times.
	edges := g.Edges()
	var worstRounds int
	for i := 0; i < 150; i++ {
		e := edges[rng.Intn(len(edges))]
		if !g.Has(e.U, e.V) {
			continue
		}
		st := mst.Delete(e.U, e.V)
		g.Delete(e.U, e.V)
		if st.Rounds > worstRounds {
			worstRounds = st.Rounds
		}
		// Re-open with a new travel time.
		w := graph.Weight(1 + rng.Intn(100))
		st = mst.Insert(e.U, e.V, w)
		g.Insert(e.U, e.V, w)
		if st.Rounds > worstRounds {
			worstRounds = st.Rounds
		}
	}

	exact := graph.MSFWeight(g)
	approx := mst.Weight()
	fmt.Printf("after construction: MST weight %d vs exact %d (ratio %.3f, bound 1+ε=%.2f)\n",
		approx, exact, float64(exact)/float64(approx), 1+eps)
	fmt.Printf("worst update during construction: %d rounds (O(1) as promised)\n", worstRounds)
	if res, _ := mst.Apply([]dmpc.Op{dmpc.QConnected(0, n-1)}); !res[0].Bool {
		fmt.Println("warning: network disconnected!")
	}
}
