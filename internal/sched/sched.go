// Package sched is the shared wave scheduler of the batch-dynamic update
// pipelines: the conflict machinery PR 3 grew inline in dyncon — resource-
// keyed conflict building, order-preserving precedence coloring, wave
// execution with between-wave conflict recompute — promoted to a subsystem
// every algorithm can buy wave parallelism from (Nowicki–Onak,
// arXiv:2002.07800 §3; Durfee et al., arXiv:1908.01956 frame the execution
// model).
//
// A batch-dynamic algorithm describes each update of a batch as an Item
// naming the resources the update touches at schedule time. Resources come
// in two classes with different sharing rules:
//
//   - Exclusive keys (Item.Excl) are semantic state: dyncon's endpoint
//     component labels, dmm's endpoint vertices and their current mates.
//     Two updates sharing an exclusive key may interleave arbitrarily badly
//     (they read and write the same records), so they never share a wave
//     and must keep batch order across waves.
//
//   - Shared claims (Item.Shared) are capacity-limited machine resources:
//     the per-round word cap S of the machine a key names. Updates sharing
//     such a key commute semantically — colliding on dyncon's orchestrator
//     machine owner(U) mod µ only means two broadcasts would leave one
//     machine in one round — so they may share a wave as long as the sum of
//     their claimed costs stays within the budget. This is the packing PR 3
//     deferred: before it, any orchestrator collision serialized the pair.
//
//   - Read keys (Item.Read) are the read-only view of semantic state: a
//     query names the components or vertices it observes. Readers of one
//     key never conflict with each other (reads commute), but a reader and
//     an exclusive writer of the same key must keep batch order — the
//     reader answers against exactly the prefix state its position
//     implies, so it may neither overtake a conflicting earlier write nor
//     share a wave with a conflicting later one. This is what sequences
//     queries *into* the update waves of a mixed op stream instead of
//     waiting for quiescence.
//
// Item.Solo marks an update whose touch set cannot be bounded at schedule
// time (dmm's cascading rematch/surrogate chains): it conflicts with
// everything and runs as a singleton wave in batch position.
//
// The coloring/wave prediction is valid only for the state it was built
// against — executing a wave changes the resources later updates touch —
// so Drive recomputes items and takes only the first wave between
// executions; ConflictGraph's later classes are a lower-bound prediction,
// not a commitment.
package sched

// Claim is one capacity-limited resource claim: the update needs Cost
// words of key's per-round budget (typically: Key names a machine, Cost
// estimates the worst-round words the update makes that machine send).
type Claim struct {
	Key  int64
	Cost int
}

// Item describes one batch update's resource usage at schedule time. The
// zero Item conflicts with nothing and always joins the first wave.
type Item struct {
	// Excl are exclusive resource keys: updates sharing one never share a
	// wave and keep batch order.
	Excl []int64
	// Read are read-only resource keys: an item reading a key conflicts
	// with items holding the same key exclusively (batch order is kept),
	// but not with other readers of it.
	Read []int64
	// Shared are capacity-limited claims: updates sharing a key may share
	// a wave while their summed costs fit the budget.
	Shared []Claim
	// Solo marks an update whose touch set is unbounded at schedule time:
	// it conflicts with every other update.
	Solo bool
	// Tenant is the logical stream the op belongs to. It does not affect
	// conflict semantics — only how a Fair policy meters the op's shared
	// cost against the tenant's deficit (see FirstWaveFair). Zero is the
	// single-tenant default.
	Tenant int
}

// ConflictGraph is the semantic conflict relation over the ops of one
// batch: vertices are batch indices 0..n-1 and an edge joins two ops that
// may not run concurrently for *semantic* reasons (intersecting Excl
// sets, an Excl set intersecting a Read set in either direction, or
// either Solo — two Read claims on one key never conflict). Shared-claim
// budget exhaustion is not an edge — it depends on which updates actually
// pack together, a property of wave formation (FirstWave), not of pairs.
// Build one with BuildConflict.
type ConflictGraph struct {
	n   int
	adj [][]int // adjacency lists; neighbor order is unspecified
}

// BuildConflict builds the semantic conflict graph over the items: ops
// conflict iff their exclusive key sets intersect, one's exclusive keys
// intersect the other's read keys, or either is Solo. Keys are grouped
// rather than compared pairwise, so construction is near-linear in the
// total key count for sparse conflicts.
func BuildConflict(items []Item) *ConflictGraph {
	n := len(items)
	cg := &ConflictGraph{n: n, adj: make([][]int, n)}
	type claimants struct{ excl, read []int }
	byKey := make(map[int64]*claimants)
	group := func(k int64) *claimants {
		c := byKey[k]
		if c == nil {
			c = &claimants{}
			byKey[k] = c
		}
		return c
	}
	for i, it := range items {
		seen := make(map[int64]bool, 4)
		for _, k := range it.Excl {
			if seen[k] {
				continue // an op may name one resource twice (u,v in the same component)
			}
			seen[k] = true
			group(k).excl = append(group(k).excl, i)
		}
		for _, k := range it.Read {
			if seen[k] {
				continue // an exclusive claim subsumes a read of the same key
			}
			seen[k] = true
			group(k).read = append(group(k).read, i)
		}
	}
	// Exclusive claimants of a key form a clique and additionally conflict
	// with every reader of it; readers don't conflict among themselves. A
	// pair sharing several keys gets one edge. Group members are appended
	// in ascending index order, so pair{a,b} always has a < b.
	type pair struct{ a, b int }
	linked := make(map[pair]bool)
	link := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		p := pair{a, b}
		if linked[p] {
			return
		}
		linked[p] = true
		cg.adj[a] = append(cg.adj[a], b)
		cg.adj[b] = append(cg.adj[b], a)
	}
	for _, c := range byKey {
		for x := 0; x < len(c.excl); x++ {
			for y := x + 1; y < len(c.excl); y++ {
				link(c.excl[x], c.excl[y])
			}
			for _, r := range c.read {
				if r != c.excl[x] {
					link(c.excl[x], r)
				}
			}
		}
	}
	for i, it := range items {
		if !it.Solo {
			continue
		}
		for j := 0; j < n; j++ {
			if j < i {
				link(j, i)
			} else if j > i {
				link(i, j)
			}
		}
	}
	return cg
}

// N returns the number of updates the graph was built over.
func (cg *ConflictGraph) N() int { return cg.n }

// Conflicts reports whether updates i and j conflict.
func (cg *ConflictGraph) Conflicts(i, j int) bool {
	for _, k := range cg.adj[i] {
		if k == j {
			return true
		}
	}
	return false
}

// PrecedenceColor greedily colors the conflict graph in batch order:
// color(i) = 1 + max color of i's earlier conflicting neighbors, or 0 if it
// has none. The coloring is proper (conflicting updates never share a
// color) and order-preserving (for a conflicting pair i < j, color(i) <
// color(j)), so color classes executed in order replay every conflicting
// pair in batch order.
func (cg *ConflictGraph) PrecedenceColor() []int {
	colors := make([]int, cg.n)
	for i := 0; i < cg.n; i++ {
		c := 0
		for _, j := range cg.adj[i] {
			if j < i && colors[j]+1 > c {
				c = colors[j] + 1
			}
		}
		colors[i] = c
	}
	return colors
}

// Waves groups the updates by precedence color, in color order; within a
// wave, updates keep ascending batch order. waves[0] is the set of updates
// with no earlier conflicting update — the one class that is always safe to
// execute against the state the items were read from (budget permitting;
// see FirstWave).
func (cg *ConflictGraph) Waves() [][]int {
	colors := cg.PrecedenceColor()
	max := -1
	for _, c := range colors {
		if c > max {
			max = c
		}
	}
	waves := make([][]int, max+1)
	for i, c := range colors {
		waves[c] = append(waves[c], i)
	}
	return waves
}

// FirstWave computes the wave to execute next in one pass over the items,
// without materializing the conflict graph: the first precedence color
// class, thinned by the shared-claim budgets. An update joins the wave iff
//
//   - no Solo op precedes it (a Solo op joins only from position 0,
//     alone),
//   - none of its exclusive keys were claimed — exclusively *or* read —
//     by any earlier op, and none of its read keys were claimed
//     exclusively by one (reads never block reads). Every op records its
//     claims whether it joined or not, so a blocked op also blocks its
//     later conflicters and batch order is preserved — and
//   - for every shared claim, either the key is so far unused in this wave
//     or adding the claim keeps the key's total within budget (a claim
//     larger than the whole budget still gets the key to itself, or it
//     could never run).
//
// budget <= 0 means unlimited, in which case FirstWave equals
// BuildConflict(items).Waves()[0] exactly (pinned by
// TestFirstWaveEquivalence). Position 0 always joins, so a scheduler
// looping over FirstWave always makes progress.
func FirstWave(items []Item, budget int) []int {
	claimed := make(map[int64]bool, 2*len(items))
	readClaimed := make(map[int64]bool, 4)
	usage := make(map[int64]int, 4)
	var wave []int
	for i, it := range items {
		if it.Solo {
			if i == 0 {
				return []int{0}
			}
			// A solo op conflicts with everything: it cannot join past
			// position 0, and nothing after it may jump ahead of it.
			break
		}
		free := true
		for _, k := range it.Excl {
			if claimed[k] || readClaimed[k] {
				free = false
				break
			}
		}
		if free {
			for _, k := range it.Read {
				if claimed[k] {
					free = false
					break
				}
			}
		}
		if free && budget > 0 {
			for _, cl := range it.Shared {
				if u := usage[cl.Key]; u > 0 && u+cl.Cost > budget {
					free = false
					break
				}
			}
		}
		if free {
			wave = append(wave, i)
			for _, cl := range it.Shared {
				usage[cl.Key] += cl.Cost
			}
		}
		for _, k := range it.Excl {
			claimed[k] = true
		}
		for _, k := range it.Read {
			readClaimed[k] = true
		}
	}
	return wave
}

// Drive executes a batch of n updates as a sequence of waves: item(i)
// reads update i's resource usage from live state, exec runs one wave of
// batch indices concurrently, and items are recomputed from scratch
// between waves because executing a wave changes the resources the
// remaining updates touch. It returns the number of waves executed.
// Callers assign per-update identifiers (sequence numbers) by batch
// position, not execution order, so reordered schedules replay state
// transitions bit-identically.
func Drive(n int, item func(i int) Item, budget int, exec func(wave []int)) int {
	pending := make([]int, n)
	for i := range pending {
		pending[i] = i
	}
	items := make([]Item, 0, n)
	waves := 0
	for len(pending) > 0 {
		items = items[:0]
		for _, b := range pending {
			items = append(items, item(b))
		}
		pos := FirstWave(items, budget)
		wave := make([]int, len(pos))
		for x, j := range pos {
			wave[x] = pending[j]
		}
		exec(wave)
		waves++
		// Drop the executed wave (ascending positions) from pending.
		kept := pending[:0]
		x := 0
		for j, b := range pending {
			if x < len(pos) && pos[x] == j {
				x++
				continue
			}
			kept = append(kept, b)
		}
		pending = kept
	}
	return waves
}
