package mpc

import (
	"fmt"
	"math"
	"sort"
)

// StreamStats is the accounting window of one asynchronous op stream —
// the streaming counterpart of MixedStats. Where a mixed window reports
// the amortized rounds per op of one batch, a stream window additionally
// reports what amortization hides: each op's rounds from *arrival* to
// answer, measured on the ingestor's virtual clock (arrivals carry a
// timestamp in rounds; an op admitted at time t and answered by a flush
// window ending at time t' observed latency t'−t, waiting included). The
// p50/p95/p99 of those latencies sit next to RoundsPerOp because the two
// disagree by design: the amortized-optimal batch size k makes early
// arrivals of every chunk wait longest, which is exactly what the
// AutoBatcher's TargetP99Rounds constraint trades against.
//
// A StreamStats is accumulated flush by flush by the facade's Ingestor;
// the zero value is ready to use.
type StreamStats struct {
	Ops     int // ops ingested (updates + queries)
	Updates int
	Queries int

	// Flushes counts the Apply windows the stream was cut into, broken
	// down by what triggered each cut: a conflicting arrival refused
	// admission to the forming set (FlushConflict), the set reaching the
	// batch-size bound k (FlushFull), the oldest forming op reaching the
	// age bound (FlushAge), or the end of the stream (FlushTail).
	Flushes       int
	FlushConflict int
	FlushFull     int
	FlushAge      int
	FlushTail     int

	// Rounds is the total cluster rounds the flush windows executed;
	// Makespan is the virtual time the last flush completed at — at least
	// Rounds, larger when arrival gaps left the cluster idle.
	Rounds   int
	Makespan int64

	// Latencies holds every op's rounds-from-arrival-to-answer, in
	// arrival order (updates count: an update's "answer" is its
	// application landing).
	Latencies []int64

	// Windows holds each flush's mixed accounting, in flush order.
	Windows []MixedStats

	// Rejected counts ops refused by a per-tenant admission policy
	// before entering the forming set; Rejections records each one.
	// Rejected ops are not counted in Ops and record no latency — they
	// never ran.
	Rejected   int         `json:",omitempty"`
	Rejections []Rejection `json:",omitempty"`

	// Tenants breaks the stream down per tenant. nil for single-tenant
	// streams (every op on the zero tenant, no admission policies or
	// weights configured), keeping the accounting bit-identical to
	// pre-tenancy behavior.
	Tenants map[int]*TenantStreamStats `json:",omitempty"`
}

// Rejection is one op refused by a per-tenant admission policy: a typed
// record instead of a silent drop. Index is the op's position in the
// whole pushed stream (admitted and rejected, 0-based); Query reports
// whether the op was a read — a rejected query additionally gets a
// positional Results entry with Answer.Rejected set, so result indexing
// stays aligned with the query stream.
type Rejection struct {
	Index  int
	Tenant int
	At     int64
	Query  bool
}

// TenantStreamStats is one tenant's slice of a stream window: its op
// counts, its admission rejections, its share of the flush windows'
// rounds (attributed by wave share, see TenantStats), and its own
// arrival-to-answer latency vector.
type TenantStreamStats struct {
	Ops       int
	Updates   int
	Queries   int
	Rejected  int
	Rounds    float64
	Latencies []int64
}

// Percentile returns the q-th latency percentile of the tenant's ops by
// the same nearest-rank rule as StreamStats.Percentile.
func (t *TenantStreamStats) Percentile(q float64) int64 { return percentile(t.Latencies, q) }

// P50 returns the tenant's median rounds-from-arrival-to-answer.
func (t *TenantStreamStats) P50() int64 { return t.Percentile(50) }

// P95 returns the tenant's 95th-percentile rounds-from-arrival-to-answer.
func (t *TenantStreamStats) P95() int64 { return t.Percentile(95) }

// P99 returns the tenant's 99th-percentile rounds-from-arrival-to-answer.
func (t *TenantStreamStats) P99() int64 { return t.Percentile(99) }

// RoundsPerOp returns the stream's amortized rounds per op — the same
// figure MixedStats.RoundsPerOp reports per window, over all windows.
func (s StreamStats) RoundsPerOp() float64 {
	if s.Ops == 0 {
		return 0
	}
	return float64(s.Rounds) / float64(s.Ops)
}

// Percentile returns the q-th latency percentile (0 < q <= 100) by the
// nearest-rank rule on a sorted copy of Latencies: the smallest recorded
// latency with at least ceil(q/100·n) recorded latencies at or below it.
// It returns 0 when no latencies were recorded — an empty stream has no
// tail, and 0 composes with the "latency in rounds" scale (pinned by
// TestPercentileEmpty) — and panics on q outside (0,100] (q=0 or
// negative would silently alias the minimum, q>100 the maximum, and
// NaN whatever the comparison happened to do; all three are caller
// bugs, pinned by TestPercentileBadQ).
func (s StreamStats) Percentile(q float64) int64 { return percentile(s.Latencies, q) }

func percentile(lat []int64, q float64) int64 {
	if math.IsNaN(q) || q <= 0 || q > 100 {
		panic(fmt.Sprintf("mpc: Percentile(%v) outside (0,100]", q))
	}
	n := len(lat)
	if n == 0 {
		return 0
	}
	sorted := make([]int64, n)
	copy(sorted, lat)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(float64(n) * q / 100))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// P50 returns the median rounds-from-arrival-to-answer.
func (s StreamStats) P50() int64 { return s.Percentile(50) }

// P95 returns the 95th-percentile rounds-from-arrival-to-answer.
func (s StreamStats) P95() int64 { return s.Percentile(95) }

// P99 returns the 99th-percentile rounds-from-arrival-to-answer.
func (s StreamStats) P99() int64 { return s.Percentile(99) }
