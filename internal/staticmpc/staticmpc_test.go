package staticmpc

import (
	"math/rand"
	"sort"
	"testing"

	"dmpc/internal/graph"
)

func TestLayoutCoversAll(t *testing.T) {
	for _, tc := range []struct{ n, mu int }{{10, 3}, {1, 1}, {100, 7}, {5, 10}} {
		l := Layout{N: tc.n, Mu: tc.mu}
		for v := 0; v < tc.n; v++ {
			o := l.Owner(v)
			if o < 0 || o >= tc.mu {
				t.Fatalf("owner(%d) = %d out of range for %+v", v, o, tc)
			}
		}
	}
}

func TestConnectedComponentsMatchesOracle(t *testing.T) {
	cases := []*graph.Graph{
		graph.Path(40),
		graph.Cycle(30),
		graph.Star(25),
		graph.Grid(6, 7, 1, nil),
	}
	rng := rand.New(rand.NewSource(3))
	cases = append(cases, graph.GNM(50, 60, 1, rng))
	// Disconnected case.
	g := graph.New(20)
	for i := 0; i < 8; i++ {
		g.Insert(i, (i+1)%9, 1)
	}
	g.Insert(10, 11, 1)
	cases = append(cases, g)

	for i, g := range cases {
		labels, res := ConnectedComponents(g, 0, 0)
		if !graph.SameLabeling(labels, graph.Components(g)) {
			t.Fatalf("case %d: wrong labeling", i)
		}
		if res.Rounds <= 0 {
			t.Fatalf("case %d: no rounds recorded", i)
		}
	}
}

func TestConnectedComponentsRoundsLogarithmic(t *testing.T) {
	// On a path of length n, doubling must converge in O(log n)
	// iterations, not O(n) — each iteration is 3 cluster rounds.
	for _, n := range []int{64, 256, 1024} {
		_, res := ConnectedComponents(graph.Path(n), 0, 0)
		iters := res.Rounds / 3
		limit := 4*bitsFor(n) + 8
		if iters > limit {
			t.Fatalf("n=%d: %d iterations exceeds budget %d", n, iters, limit)
		}
		// Without doubling a path needs ~n iterations; with it, far fewer.
		if iters > n/4 {
			t.Fatalf("n=%d: %d iterations suggests doubling is broken", n, iters)
		}
	}
}

func TestMaximalMatchingMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []*graph.Graph{
		graph.Path(30),
		graph.Star(20),
		graph.CompleteBipartite(8, 9),
		graph.GNM(40, 80, 1, rng),
	}
	for i, g := range cases {
		mate, res := MaximalMatching(g, 0, 0, int64(i)+1)
		if !graph.IsMatching(g, mate) {
			t.Fatalf("case %d: invalid matching", i)
		}
		if !graph.IsMaximalMatching(g, mate) {
			t.Fatalf("case %d: not maximal", i)
		}
		if res.Rounds <= 0 {
			t.Fatalf("case %d: no rounds", i)
		}
	}
}

func TestMinSpanningForestMatchesKruskal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5; i++ {
		g := graph.GNM(40, 100, 50, rng)
		forest, res := MinSpanningForest(g, 8)
		var w graph.Weight
		var plain []graph.Edge
		for _, e := range forest {
			w += e.W
			plain = append(plain, graph.Edge{U: e.U, V: e.V})
		}
		if w != graph.MSFWeight(g) {
			t.Fatalf("case %d: weight %d, Kruskal %d", i, w, graph.MSFWeight(g))
		}
		if !graph.IsSpanningForest(g, plain) {
			t.Fatalf("case %d: not a spanning forest", i)
		}
		if res.Rounds <= 0 || res.Rounds > 40 {
			t.Fatalf("case %d: rounds = %d", i, res.Rounds)
		}
	}
}

func TestSpanningForestUnweighted(t *testing.T) {
	g := graph.Grid(5, 8, 1, nil)
	forest, _ := SpanningForest(g, 6)
	if !graph.IsSpanningForest(g, forest) {
		t.Fatal("not a spanning forest")
	}
}

func TestSortMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 10, 1000, 5000} {
		items := make([]int64, n)
		for i := range items {
			items[i] = rng.Int63n(1 << 40)
		}
		want := append([]int64(nil), items...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got, res := Sort(items, 8)
		if len(got) != n {
			t.Fatalf("n=%d: lost items: %d", n, len(got))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: mismatch at %d: %d != %d", n, i, got[i], want[i])
			}
		}
		if res.Rounds != 4 {
			t.Fatalf("n=%d: sample sort took %d rounds, want 4 (constant)", n, res.Rounds)
		}
	}
}

func TestSortIsConstantRounds(t *testing.T) {
	// Rounds must not grow with input size — that is the whole point of
	// the [19] primitive.
	rounds := map[int]int{}
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{100, 10_000} {
		items := make([]int64, n)
		for i := range items {
			items[i] = rng.Int63()
		}
		_, res := Sort(items, 8)
		rounds[n] = res.Rounds
	}
	if rounds[100] != rounds[10_000] {
		t.Fatalf("rounds vary with size: %v", rounds)
	}
}

func TestApproxMinSpanningForestFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	eps := 0.25
	for i := 0; i < 4; i++ {
		g := graph.GNM(50, 150, 1000, rng)
		forest, res := ApproxMinSpanningForest(g, eps, 8)
		var plain []graph.Edge
		var w graph.Weight
		for _, e := range forest {
			plain = append(plain, graph.Edge{U: e.U, V: e.V})
			w += e.W
		}
		if !graph.IsSpanningForest(g, plain) {
			t.Fatalf("case %d: not a spanning forest", i)
		}
		opt := graph.MSFWeight(g)
		if w < opt {
			t.Fatalf("case %d: below optimum?! %d < %d", i, w, opt)
		}
		slack := float64(g.N()) * (1 + eps)
		if float64(w) > float64(opt)*(1+eps)+slack {
			t.Fatalf("case %d: weight %d exceeds (1+eps)*%d", i, w, opt)
		}
		if res.Rounds <= 0 {
			t.Fatal("no rounds accounted")
		}
	}
}
