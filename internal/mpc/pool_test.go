package mpc

import (
	"math"
	"math/big"
	"testing"
)

// setDebugActive installs a test observer on the backend's beginRound —
// the hook sees every round's active set exactly as settle will.
func setDebugActive(c *Cluster, f func([]int)) {
	switch b := c.backend.(type) {
	case *SimBackend:
		b.debugActive = f
	case *ParallelBackend:
		b.debugActive = f
	default:
		panic("setDebugActive: unknown backend")
	}
}

// xorshift is the test-local deterministic RNG (math/rand would work too;
// this keeps the property test's two backend runs trivially identical).
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// TestSteadyStateAllocsPerRound pins the allocation bill of a
// steady-state Round with every machine active — the pooled hot path.
// The parallel backend's per-round scratch (active set, Ctx slab, inbox
// backing arrays, pair staging) is fully recycled, so its budget is zero.
// The sim oracle inherently spawns one handler goroutine per activation
// (a closure plus the goroutine itself, ~2 allocations per active
// machine); its budget pins that linear bill so the pooled parts can't
// silently regress underneath it.
func TestSteadyStateAllocsPerRound(t *testing.T) {
	const mu = 64
	for _, bc := range []struct {
		name   string
		be     BackendKind
		budget float64
	}{
		{"parallel", BackendParallel, 0.5},
		{"sim", BackendSim, 2*mu + 8},
	} {
		c := newPingCluster(mu, bc.be, 4)
		for i := 0; i < 64; i++ { // warm the pools past the growth phase
			c.Round()
		}
		avg := testing.AllocsPerRun(100, func() { c.Round() })
		if avg > bc.budget {
			t.Errorf("%s: %.2f allocs/round at steady state, budget %.1f", bc.name, avg, bc.budget)
		}
		c.Close()
	}
}

// chaosMachine drives the active-set property test: each activation sends
// to 0–3 deterministically random targets and occasionally schedules a
// random machine, logging both so the test can maintain the reference
// pending set. All state is per-machine, so concurrent handler execution
// stays deterministic.
type chaosMachine struct {
	id, mu    int
	rng       xorshift
	sent      []int
	scheduled []int
}

func (m *chaosMachine) HandleRound(ctx *Ctx, inbox []Message) {
	m.sent, m.scheduled = m.sent[:0], m.scheduled[:0]
	for k := m.rng.next() % 4; k > 0; k-- {
		to := int(m.rng.next() % uint64(m.mu))
		ctx.Send(to, int64(to), 1)
		m.sent = append(m.sent, to)
	}
	if m.rng.next()%8 == 0 {
		s := int(m.rng.next() % uint64(m.mu))
		ctx.Schedule(s)
		m.scheduled = append(m.scheduled, s)
	}
}

// TestActiveSetInvariantUnderChaos: under randomized Deliver/Schedule
// interleavings — external injections between rounds plus machines
// sending and scheduling at random — the active set handed to settle is
// strictly ascending, duplicate-free, in range, and exactly the set of
// machines with a pending message or schedule bit, on both backends.
// This is the invariant the sparse pending set must preserve (the old
// O(µ) scan got it for free) and the one settle's deterministic
// ascending-order merge depends on.
func TestActiveSetInvariantUnderChaos(t *testing.T) {
	const mu = 33
	for _, be := range []BackendKind{BackendSim, BackendParallel} {
		c := NewCluster(Config{Machines: mu, MemWords: 1 << 16, Workers: 5, Backend: be})
		ms := make([]*chaosMachine, mu)
		for i := range ms {
			ms[i] = &chaosMachine{id: i, mu: mu, rng: xorshift(uint64(i)*0x9e3779b97f4a7c15 + 1)}
			c.SetMachine(i, ms[i])
		}
		var observed []int
		setDebugActive(c, func(active []int) {
			observed = append(observed[:0], active...)
		})

		drive := xorshift(42)
		expect := map[int]bool{}
		for step := 0; step < 300; step++ {
			for k := drive.next() % 3; k > 0; k-- {
				to := int(drive.next() % mu)
				c.Send(Message{From: -1, To: to, Payload: int64(step), Words: 1})
				expect[to] = true
			}
			if drive.next()%4 == 0 {
				id := int(drive.next() % mu)
				c.Schedule(id)
				expect[id] = true
			}
			if c.Quiescent() != (len(expect) == 0) {
				t.Fatalf("%v step %d: Quiescent()=%v with %d expected pending",
					be, step, c.Quiescent(), len(expect))
			}
			if len(expect) == 0 {
				continue
			}
			observed = observed[:0]
			rs := c.Round()

			if len(observed) != len(expect) || rs.Active != len(observed) {
				t.Fatalf("%v step %d: active set size %d (RoundStats %d), want %d",
					be, step, len(observed), rs.Active, len(expect))
			}
			for i, id := range observed {
				if id < 0 || id >= mu {
					t.Fatalf("%v step %d: active id %d out of range", be, step, id)
				}
				if i > 0 && observed[i-1] >= id {
					t.Fatalf("%v step %d: active set not strictly ascending at %d: %v",
						be, step, i, observed)
				}
				if !expect[id] {
					t.Fatalf("%v step %d: machine %d active but never delivered/scheduled", be, step, id)
				}
			}

			// The next round's reference set: whatever the machines that
			// just ran sent or scheduled.
			clear(expect)
			for _, id := range observed {
				for _, to := range ms[id].sent {
					expect[to] = true
				}
				for _, s := range ms[id].scheduled {
					expect[s] = true
				}
			}
		}
		c.Close()
	}
}

// TestShardOfOverflowBoundary: shardOf is floor(id·nshards/µ) and must
// stay exact when the naive id*nshards product would overflow int —
// µ near MaxInt here stands in for the 32-bit case, where overflow
// starts at entirely realistic cluster sizes (µ·shards > 2³¹). Pinned
// against a big.Int oracle, alongside the graph.Chunk/SplitOps MaxInt
// boundary tests. The backend is constructed bare: shardOf reads only
// nshards and cfg.Machines, and a MaxInt cluster can't be allocated.
func TestShardOfOverflowBoundary(t *testing.T) {
	mk := func(machines, shards int) *ParallelBackend {
		return &ParallelBackend{
			backendBase: backendBase{c: &Cluster{cfg: Config{Machines: machines}}},
			nshards:     shards,
		}
	}
	want := func(id, shards, machines int) int {
		n := new(big.Int).Mul(big.NewInt(int64(id)), big.NewInt(int64(shards)))
		n.Quo(n, big.NewInt(int64(machines)))
		return int(n.Int64())
	}

	p := mk(math.MaxInt, 64)
	for _, id := range []int{0, 1, math.MaxInt / 64, math.MaxInt / 2, math.MaxInt - 2, math.MaxInt - 1} {
		got := p.shardOf(id)
		if w := want(id, 64, math.MaxInt); got != w {
			t.Errorf("shardOf(%d) with µ=MaxInt, 64 shards: got %d, want %d", id, got, w)
		}
		if got < 0 || got >= 64 {
			t.Errorf("shardOf(%d) = %d out of shard range [0,64)", id, got)
		}
	}

	// Where the naive product does not overflow, the mapping is unchanged:
	// contiguous blocks, monotone, full shard coverage.
	q := mk(1_000_003, 7)
	prev := 0
	for id := 0; id < 1_000_003; id += 997 {
		got := q.shardOf(id)
		if naive := id * 7 / 1_000_003; got != naive {
			t.Fatalf("shardOf(%d) = %d, naive formula says %d", id, got, naive)
		}
		if got < prev {
			t.Fatalf("shardOf not monotone at id %d: %d < %d", id, got, prev)
		}
		prev = got
	}
	if got := q.shardOf(1_000_002); got != 6 {
		t.Fatalf("last machine lands in shard %d, want 6", got)
	}
}

// TestMsgPoolPayloadClearing pins the payload-clearing rule: a retired
// inbox's consumed elements are zeroed before the backing array is
// banked (so the free-list pins no message payloads), and grab hands the
// banked array back out instead of growing from nil.
func TestMsgPoolPayloadClearing(t *testing.T) {
	var p msgPool
	payload := &struct{ x int }{1}
	ms := p.grab(nil, Message{From: 1, To: 2, Payload: payload, Words: 3})
	backing := ms
	if out := p.retire(ms); out != nil {
		t.Fatalf("retire returned %v, want nil", out)
	}
	if backing[0] != (Message{}) {
		t.Fatalf("retired element not zeroed: %+v still pins its payload", backing[0])
	}
	got := p.grab(nil, Message{To: 9, Words: 1})
	if &got[0] != &backing[0] {
		t.Fatal("grab allocated a fresh array instead of reusing the banked one")
	}
	if len(p.free) != 0 {
		t.Fatalf("free-list holds %d arrays after reuse, want 0", len(p.free))
	}
	// A never-grown slice has no backing array to bank.
	if out := p.retire(nil); out != nil || len(p.free) != 0 {
		t.Fatalf("retire(nil) banked something: out=%v free=%d", out, len(p.free))
	}
}

// TestPairStageFoldMatchesDirectWrites: folding the flat per-round runs
// into the pair map — across random fold boundaries and with run-heavy
// sequences exercising the same-pair coalescing — produces exactly the
// map the old per-message writes built. Integer addition commutes, so
// "exactly" means bit-identical CommEntropy/MaxPairWords inputs.
func TestPairStageFoldMatchesDirectWrites(t *testing.T) {
	var stage pairStage
	st := Stats{pairWords: map[[2]int]int{}}
	direct := map[[2]int]int{}
	rng := xorshift(7)
	from, to := 0, 1
	for i := 0; i < 2000; i++ {
		if rng.next()%3 != 0 { // bias toward repeating the previous pair
			from, to = int(rng.next()%5), int(rng.next()%5)
		}
		words := int(rng.next()%9) + 1
		stage.add(from, to, words)
		direct[[2]int{from, to}] += words
		if rng.next()%40 == 0 { // random round boundary
			stage.fold(&st)
		}
	}
	stage.fold(&st)
	if len(stage.entries) != 0 {
		t.Fatalf("stage holds %d entries after fold, want 0", len(stage.entries))
	}
	if len(st.pairWords) != len(direct) {
		t.Fatalf("folded map has %d pairs, direct writes %d", len(st.pairWords), len(direct))
	}
	for pair, w := range direct {
		if st.pairWords[pair] != w {
			t.Fatalf("pair %v: folded %d words, direct %d", pair, st.pairWords[pair], w)
		}
	}
}
