package dyncon

import (
	"testing"

	"dmpc/internal/graph"
)

// FuzzMixedEquivalence is the property-based equivalence harness for the
// unified op pipeline: any mixed stream of updates and reads, any
// chunking, and every in-wave query answer must be bit-identical to
// sequential replay at the same stream position — the snapshot-consistency
// contract of ApplyOps — with the final forest, component labels and
// distributed invariants matching as well. The fuzzer decodes the raw
// bytes through graph.FuzzOps (roughly half of every stream reads,
// OpConnected and OpComponentOf), the low bits of sel pick the chunk
// size, and the top bit selects CC vs exact MST.
//
// Run the full fuzzer with:
//
//	go test -run FuzzMixedEquivalence -fuzz FuzzMixedEquivalence ./internal/core/dyncon
func FuzzMixedEquivalence(f *testing.F) {
	f.Add(byte(1), []byte("abcabdacd"))
	f.Add(byte(4), []byte("0120342516273869"))
	f.Add(byte(131), []byte("ABCABDABEACDBCE?bcd?bce")) // MST mode, reads via sel&3>=2
	f.Add(byte(64), []byte("aXYaYZbZWbWXcXZcYWfXYgZW")) // wide chunk, mixed selectors
	f.Fuzz(func(t *testing.T, sel byte, data []byte) {
		const n = 24
		if len(data) > 360 { // 120 ops keeps a fuzz iteration fast
			data = data[:360]
		}
		ops := graph.FuzzOps(data, n, 20, []graph.OpKind{graph.OpConnected, graph.OpComponentOf}, false)
		if len(ops) == 0 {
			t.Skip()
		}
		cfg := Config{N: n, Mode: CC, ExpectedEdges: 160}
		if sel&0x80 != 0 {
			cfg.Mode = MST // Eps 0: exact MSF, comparable edge for edge
		}
		k := 1 + int(sel&0x7f)%len(ops)

		// Sequential replay: one op at a time, queries through the
		// quiescence read paths at their exact stream positions.
		seqD := New(cfg)
		var want graph.Results
		for _, op := range ops {
			switch op.Kind {
			case graph.OpInsert:
				seqD.Insert(op.U, op.V, op.W)
			case graph.OpDelete:
				seqD.Delete(op.U, op.V)
			case graph.OpConnected:
				want = append(want, graph.Answer{Bool: seqD.Connected(op.U, op.V)})
			case graph.OpComponentOf:
				want = append(want, graph.Answer{Int: seqD.ComponentOf(op.U)})
			}
		}

		batD := New(cfg)
		var got graph.Results
		for _, chunk := range graph.SplitOps(ops, k) {
			res, st := batD.ApplyOps(chunk)
			got = append(got, res...)
			u, q := graph.CountOps(chunk)
			if st.Ops != len(chunk) || st.Updates.Updates != u || st.Queries.Queries != q {
				t.Fatalf("mixed stats cover (%d,%d,%d), chunk has (%d,%d,%d)",
					st.Ops, st.Updates.Updates, st.Queries.Queries, len(chunk), u, q)
			}
			cu, cq := 0, 0
			for _, w := range st.Waves {
				cu += w.Updates
				cq += w.Queries
			}
			if cu != u || cq != q {
				t.Fatalf("waves cover %d updates + %d reads of %d + %d", cu, cq, u, q)
			}
		}

		if len(got) != len(want) {
			t.Fatalf("mode=%v k=%d: %d answers, want %d", cfg.Mode, k, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("mode=%v k=%d: query %d answered %+v in-wave, %+v sequentially",
					cfg.Mode, k, j, got[j], want[j])
			}
		}
		if err := batD.Validate(); err != nil {
			t.Fatalf("mode=%v k=%d: invariants broken after mixed chunks: %v", cfg.Mode, k, err)
		}
		wantF, gotF := forestKey(seqD), forestKey(batD)
		if len(wantF) != len(gotF) {
			t.Fatalf("mode=%v k=%d: forest sizes differ: %d vs %d", cfg.Mode, k, len(gotF), len(wantF))
		}
		for i := range wantF {
			if wantF[i] != gotF[i] {
				t.Fatalf("mode=%v k=%d: forest edge %d differs: %v vs %v", cfg.Mode, k, i, gotF[i], wantF[i])
			}
		}
		for v := 0; v < n; v++ {
			if seqD.CompOf(v) != batD.CompOf(v) {
				t.Fatalf("mode=%v k=%d: component of %d differs: %d vs %d",
					cfg.Mode, k, v, batD.CompOf(v), seqD.CompOf(v))
			}
		}
		if v := batD.Cluster().Stats().Violations; v != 0 {
			t.Fatalf("mode=%v k=%d: %d cluster constraint violations", cfg.Mode, k, v)
		}

		// Backend-equivalence replica: the same mixed chunks on the
		// goroutine-per-machine runtime must answer every in-wave query
		// identically and reproduce state and accounting bit for bit.
		parD := New(parallelConfig(cfg))
		defer parD.Close()
		var pgot graph.Results
		for _, chunk := range graph.SplitOps(ops, k) {
			res, _ := parD.ApplyOps(chunk)
			pgot = append(pgot, res...)
		}
		if len(pgot) != len(got) {
			t.Fatalf("parallel replica answered %d queries, sim %d", len(pgot), len(got))
		}
		for j := range got {
			if pgot[j] != got[j] {
				t.Fatalf("parallel replica answered query %d %+v, sim %+v", j, pgot[j], got[j])
			}
		}
		assertBackendEquivalent(t, batD, parD)
	})
}
