// Package seqdyn implements the centralized (sequential) dynamic graph
// algorithms the paper builds on: union-find, Euler-tour trees over treaps,
// Holm–de Lichtenberg–Thorup fully-dynamic connectivity, link-cut trees,
// fully-dynamic minimum spanning forests and Neiman–Solomon-style maximal
// matching.
//
// These serve three roles in the reproduction:
//
//   - as the plug-in targets of the §7 black-box reduction (a sequential
//     algorithm with update time u becomes a DMPC algorithm running O(u)
//     rounds on O(1) machines),
//   - as golden oracles for the native DMPC algorithms, and
//   - as the baselines for the bottom rows of Table 1.
//
// Every structure embeds an operation counter incremented at each
// elementary step (node visit, pointer follow, list touch); the reduction
// charges its simulated rounds from these counts, which is exactly the
// content of Lemma 7.1 ("each access to the memory by SA is simulated by a
// constant number of rounds").
package seqdyn

// Counter tallies elementary operations for the §7 reduction and for the
// benchmark harness. The zero value is ready to use.
type Counter struct {
	n int64
}

// Inc adds k elementary operations.
func (c *Counter) Inc(k int) { c.n += int64(k) }

// Count returns the total so far.
func (c *Counter) Count() int64 { return c.n }

// Reset zeroes the counter and returns the previous value.
func (c *Counter) Reset() int64 {
	v := c.n
	c.n = 0
	return v
}
