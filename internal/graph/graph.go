// Package graph provides the dynamic-graph substrate shared by every
// algorithm in this repository: an undirected (optionally weighted) graph
// that supports edge insertions and deletions, update-stream generators that
// produce the workloads of the paper's experiments, and sequential "golden"
// checkers (connectivity, matchings, MST) used as oracles by the tests.
package graph

import (
	"fmt"
	"sort"
)

// Weight is an integral edge weight. Unweighted graphs use weight 1.
type Weight int64

// Edge is an undirected edge with U < V after normalization.
type Edge struct {
	U, V int
}

// NormEdge returns the edge with endpoints ordered so U <= V.
func NormEdge(u, v int) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// WEdge is a weighted undirected edge.
type WEdge struct {
	U, V int
	W    Weight
}

// UpdateKind distinguishes the two dynamic update operations. (The
// unified op-stream type Op extends these two kinds with typed reads.)
type UpdateKind int8

const (
	// Insert adds an edge.
	Insert UpdateKind = iota
	// Delete removes an edge.
	Delete
)

func (o UpdateKind) String() string {
	if o == Insert {
		return "insert"
	}
	return "delete"
}

// Update is one dynamic graph operation.
type Update struct {
	Op   UpdateKind
	U, V int
	W    Weight
}

func (u Update) String() string {
	return fmt.Sprintf("%s(%d,%d,w=%d)", u.Op, u.U, u.V, u.W)
}

// Graph is a mutable undirected multigraph-free graph on vertices 0..n-1.
// The zero value is unusable; call New.
type Graph struct {
	n   int
	m   int
	adj []map[int]Weight
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	g := &Graph{n: n, adj: make([]map[int]Weight, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]Weight)
	}
	return g
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.m = g.m
	for v, nbrs := range g.adj {
		for w, wt := range nbrs {
			c.adj[v][w] = wt
		}
	}
	return c
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Has reports whether edge (u,v) is present.
func (g *Graph) Has(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	_, ok := g.adj[u][v]
	return ok
}

// WeightOf returns the weight of (u,v) and whether the edge exists.
func (g *Graph) WeightOf(u, v int) (Weight, bool) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0, false
	}
	w, ok := g.adj[u][v]
	return w, ok
}

// Insert adds edge (u,v) with weight w. It reports whether the edge was
// newly added (false for self-loops and duplicates).
func (g *Graph) Insert(u, v int, w Weight) bool {
	if u == v || u < 0 || v < 0 || u >= g.n || v >= g.n {
		return false
	}
	if _, ok := g.adj[u][v]; ok {
		return false
	}
	g.adj[u][v] = w
	g.adj[v][u] = w
	g.m++
	return true
}

// Delete removes edge (u,v), reporting whether it was present.
func (g *Graph) Delete(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	if _, ok := g.adj[u][v]; !ok {
		return false
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	g.m--
	return true
}

// Apply mutates the graph according to upd, reporting whether it changed.
func (g *Graph) Apply(upd Update) bool {
	if upd.Op == Insert {
		return g.Insert(upd.U, upd.V, upd.W)
	}
	return g.Delete(upd.U, upd.V)
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns v's neighbors in ascending order.
func (g *Graph) Neighbors(v int) []int {
	out := make([]int, 0, len(g.adj[v]))
	for w := range g.adj[v] {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// EachNeighbor calls f for every neighbor of v in unspecified order; f
// returning false stops the iteration.
func (g *Graph) EachNeighbor(v int, f func(w int, wt Weight) bool) {
	for w, wt := range g.adj[v] {
		if !f(w, wt) {
			return
		}
	}
}

// Edges returns all edges (U<V) sorted lexicographically.
func (g *Graph) Edges() []WEdge {
	out := make([]WEdge, 0, g.m)
	for u, nbrs := range g.adj {
		for v, w := range nbrs {
			if u < v {
				out = append(out, WEdge{U: u, V: v, W: w})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// FromUpdates replays a prefix of updates onto a fresh graph.
func FromUpdates(n int, updates []Update) *Graph {
	g := New(n)
	for _, u := range updates {
		g.Apply(u)
	}
	return g
}
