// Social-graph matching: the paper's motivating scenario of reacting fast
// to each update ("displaying ads, friend recommendations") — a friendship
// graph evolves continuously and a maximal matching (think: pairing users
// for a feature) is maintained with worst-case O(1) rounds per update,
// instead of recomputing a matching with an O(log n)-round static MPC job
// after every change.
package main

import (
	"fmt"
	"math/rand"

	"dmpc"
	"dmpc/internal/graph"
	"dmpc/internal/staticmpc"
)

func main() {
	const users = 200
	const churn = 800
	rng := rand.New(rand.NewSource(42))

	mm := dmpc.NewThreeHalvesMatching(users, 4*users)
	g := dmpc.NewGraph(users)

	// Preferential-attachment-ish churn: popular users gain and lose
	// friendships faster, exercising the light/heavy vertex machinery.
	stream := graph.RandomStream(users, churn, 0.65, 1, rng)

	var worstRounds, worstWords int
	for _, up := range stream {
		var st dmpc.UpdateStats
		if up.Op == dmpc.Insert {
			st = mm.Insert(up.U, up.V)
		} else {
			st = mm.Delete(up.U, up.V)
		}
		g.Apply(up)
		if st.Rounds > worstRounds {
			worstRounds = st.Rounds
		}
		if st.MaxWords > worstWords {
			worstWords = st.MaxWords
		}
	}

	mt := mm.MateTable()
	fmt.Printf("after %d churn events: %d friendships, matching of size %d\n",
		churn, g.M(), graph.MatchingSize(mt))
	fmt.Printf("maximal: %v, no length-3 augmenting path (3/2-approx certificate): %v\n",
		graph.IsMaximalMatching(g, mt), !graph.HasLength3AugPath(g, mt))
	fmt.Printf("worst update: %d rounds, %d words in the busiest round\n", worstRounds, worstWords)

	// Contrast with recomputing from scratch once, using the static MPC
	// baseline (all machines active, O(log n) rounds, Ω(N) traffic).
	_, res := staticmpc.MaximalMatching(g, 0, 0, 1)
	fmt.Printf("static recompute for comparison: %d rounds, %d machines, %d total words\n",
		res.Rounds, res.MaxActive, res.TotalWords)
}
