package graph

// Cross-batch conflict sharding (Nowicki–Onak, arXiv:2002.07800 §3).
//
// A batch-dynamic algorithm that can only run *prefixes* of a batch
// concurrently is capped by the first conflicting pair it meets. Reordering
// independent updates across the whole batch recovers near-full
// parallelism, provided the reordering is sound: two updates that conflict
// (their endpoint components intersect at schedule time) must keep their
// original relative order, while non-conflicting updates commute exactly
// and may run in the same concurrent wave.
//
// ConflictGraph captures the conflict relation over one batch and
// PrecedenceColor computes the order-preserving greedy coloring whose color
// classes are exactly the executable waves: an update's color is one more
// than the maximum color among its *earlier* conflicting neighbors (zero if
// it has none), so for every conflicting pair i < j, color(i) < color(j)
// and executing classes in color order replays conflicting updates in batch
// order. Each class is an independent set — two same-colored updates can
// never conflict — so a class runs as one component-disjoint wave.
//
// The coloring is valid for the component structure it was built against.
// Executing a wave merges and splits components, which can create conflicts
// between updates that were independent at schedule time, so a scheduler
// must rebuild the conflict graph between waves (take class 0, execute,
// recompute); the later classes of any single coloring are a lower-bound
// prediction of the schedule, not a commitment.

// ConflictGraph is the conflict relation over the updates of one batch:
// vertices are batch indices 0..n-1 and an edge joins two updates that may
// not run concurrently. Build one with BuildConflict.
type ConflictGraph struct {
	n   int
	adj [][]int // adjacency lists; neighbor order is unspecified
}

// BuildConflict builds the conflict graph over n updates from their
// resource keys: keys(i) returns the identifiers of the resources update i
// touches at schedule time (for dyncon, the component labels of its two
// endpoints), and updates conflict iff their key sets intersect. Keys are
// grouped rather than compared pairwise, so construction is near-linear in
// the total key count for sparse conflicts.
func BuildConflict(n int, keys func(i int) []int64) *ConflictGraph {
	cg := &ConflictGraph{n: n, adj: make([][]int, n)}
	byKey := make(map[int64][]int)
	for i := 0; i < n; i++ {
		seen := make(map[int64]bool, 4)
		for _, k := range keys(i) {
			if seen[k] {
				continue // an update may name one resource twice (u,v in the same component)
			}
			seen[k] = true
			byKey[k] = append(byKey[k], i)
		}
	}
	// Updates sharing a key form a clique; a pair sharing several keys gets
	// one edge. Group members are appended in ascending index order, so
	// pair{a,b} always has a < b.
	type pair struct{ a, b int }
	linked := make(map[pair]bool)
	for _, group := range byKey {
		for x := 0; x < len(group); x++ {
			for y := x + 1; y < len(group); y++ {
				p := pair{group[x], group[y]}
				if linked[p] {
					continue
				}
				linked[p] = true
				cg.adj[p.a] = append(cg.adj[p.a], p.b)
				cg.adj[p.b] = append(cg.adj[p.b], p.a)
			}
		}
	}
	return cg
}

// N returns the number of updates the graph was built over.
func (cg *ConflictGraph) N() int { return cg.n }

// Conflicts reports whether updates i and j conflict.
func (cg *ConflictGraph) Conflicts(i, j int) bool {
	for _, k := range cg.adj[i] {
		if k == j {
			return true
		}
	}
	return false
}

// PrecedenceColor greedily colors the conflict graph in batch order:
// color(i) = 1 + max color of i's earlier conflicting neighbors, or 0 if it
// has none. The coloring is proper (conflicting updates never share a
// color) and order-preserving (for a conflicting pair i < j, color(i) <
// color(j)), so color classes executed in order replay every conflicting
// pair in batch order.
func (cg *ConflictGraph) PrecedenceColor() []int {
	colors := make([]int, cg.n)
	for i := 0; i < cg.n; i++ {
		c := 0
		for _, j := range cg.adj[i] {
			if j < i && colors[j]+1 > c {
				c = colors[j] + 1
			}
		}
		colors[i] = c
	}
	return colors
}

// FirstWave computes the first precedence color class directly — the
// updates with no earlier conflicting update — in one pass over the keys,
// without materializing the conflict graph: an update joins the wave iff
// none of its keys were claimed by any earlier update, and every update
// claims its keys whether it joined or not. Equivalent to
// BuildConflict(n, keys).Waves()[0] (pinned by TestFirstWaveEquivalence); a
// scheduler that recomputes conflicts between waves only ever consumes the
// first class, so its hot path uses this O(total keys) form instead of the
// O(clique) graph build.
func FirstWave(n int, keys func(i int) []int64) []int {
	claimed := make(map[int64]bool, 2*n)
	var wave []int
	for i := 0; i < n; i++ {
		ks := keys(i)
		free := true
		for _, k := range ks {
			if claimed[k] {
				free = false
				break
			}
		}
		if free {
			wave = append(wave, i)
		}
		for _, k := range ks {
			claimed[k] = true
		}
	}
	return wave
}

// Waves groups the updates by precedence color, in color order; within a
// wave, updates keep ascending batch order. waves[0] is the set of updates
// with no earlier conflicting update — the one class that is always safe to
// execute against the component structure the graph was built from.
func (cg *ConflictGraph) Waves() [][]int {
	colors := cg.PrecedenceColor()
	max := -1
	for _, c := range colors {
		if c > max {
			max = c
		}
	}
	waves := make([][]int, max+1)
	for i, c := range colors {
		waves[c] = append(waves[c], i)
	}
	return waves
}
