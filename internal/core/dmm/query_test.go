package dmm

import (
	"math/rand"
	"testing"

	"dmpc/internal/graph"
)

// TestMateQueries pins the §3 protocol query path: MateOf/Matched agree
// with the MateTable validation oracle, a k-query batch costs one shared
// round, and query rounds never disturb update or batch accounting.
func TestMateQueries(t *testing.T) {
	const n = 48
	rng := rand.New(rand.NewSource(11))
	m := New(Config{N: n, CapEdges: 4 * n})
	for _, up := range graph.RandomStream(n, 160, 0.6, 1, rng) {
		if up.Op == graph.Insert {
			m.Insert(up.U, up.V)
		} else {
			m.Delete(up.U, up.V)
		}
	}
	updatesBefore := m.Cluster().Stats().Updates()

	oracle := m.MateTable()
	vs := make([]int, n)
	for v := range vs {
		vs[v] = v
	}
	got := m.MateOfBatch(vs)
	for v := range vs {
		if got[v] != oracle[v] {
			t.Fatalf("MateOfBatch[%d] = %d, oracle %d", v, got[v], oracle[v])
		}
	}
	qs := m.Cluster().Stats().Queries()
	if len(qs) != 1 || qs[0].Queries != n {
		t.Fatalf("query windows %+v, want one covering %d queries", qs, n)
	}
	if qs[0].Rounds != 1 {
		t.Fatalf("k=%d mate batch cost %d rounds, want 1 shared round", n, qs[0].Rounds)
	}

	for _, v := range []int{0, 7, n - 1} {
		if m.MateOf(v) != oracle[v] {
			t.Fatalf("MateOf(%d) = %d, oracle %d", v, m.MateOf(v), oracle[v])
		}
		if oracle[v] >= 0 && !m.Matched(v, oracle[v]) {
			t.Fatalf("Matched(%d,%d) = false for a matched pair", v, oracle[v])
		}
		if m.Matched(v, v) {
			t.Fatalf("Matched(%d,%d) = true for a self-loop", v, v)
		}
	}

	// Queries must not have grown the per-update accounting.
	if after := m.Cluster().Stats().Updates(); len(after) != len(updatesBefore) {
		t.Fatalf("queries leaked into update accounting: %d -> %d windows",
			len(updatesBefore), len(after))
	}
}
