package amm

import (
	"testing"

	"dmpc/internal/graph"
	"dmpc/internal/mpc"
)

// FuzzBatchEquivalence is the property-based harness for the randomized §6
// batch pipeline. Exact edge-for-edge equality with sequential replay is
// NOT the contract here — shuffle/rise probes fire per scheduler cycle, not
// per update, so batching legitimately lands on a different almost-maximal
// matching (see the ApplyBatch comment and DESIGN.md). What must hold for
// every update sequence and every chunking, and what this fuzzer asserts,
// is equivalence at the level of the §6 guarantees over the *same final
// graph* as sequential replay: the batched matching is a valid matching,
// every §6 invariant passes, and the accounting covers the whole batch.
// The raw bytes decode through graph.FuzzStreamWellFormed because amm's
// owner bookkeeping, like dmm's, assumes the well-formed stream contract.
//
// Run the full fuzzer with:
//
//	go test -run FuzzBatchEquivalence -fuzz FuzzBatchEquivalence ./internal/core/amm
func FuzzBatchEquivalence(f *testing.F) {
	f.Add(byte(1), []byte("abcabdacd"))
	f.Add(byte(7), []byte("0120340516273809"))
	f.Add(byte(48), []byte("ABCABDABEACD!bcd!ace02460135"))
	f.Fuzz(func(t *testing.T, sel byte, data []byte) {
		const n = 20
		if len(data) > 300 { // 100 updates keeps a fuzz iteration fast
			data = data[:300]
		}
		stream := graph.FuzzStreamWellFormed(data, n, 1)
		if len(stream) == 0 {
			t.Skip()
		}
		k := 1 + int(sel)%len(stream)

		seqM := New(Config{N: n, Seed: 7})
		gSeq := graph.New(n)
		for _, up := range stream {
			if up.Op == graph.Insert {
				seqM.Insert(up.U, up.V)
			} else {
				seqM.Delete(up.U, up.V)
			}
			gSeq.Apply(up)
		}

		batM := New(Config{N: n, Seed: 7})
		g := graph.New(n)
		for _, b := range graph.Chunk(stream, k) {
			st := batM.ApplyBatch(b)
			if st.Updates != len(b) {
				t.Fatalf("batch stats cover %d updates, batch has %d", st.Updates, len(b))
			}
			b.Apply(g)
		}

		// Same final graph, and both replays uphold the §6 guarantees on it.
		if g.M() != gSeq.M() {
			t.Fatalf("k=%d: final graphs diverge: %d vs %d edges", k, g.M(), gSeq.M())
		}
		if !graph.IsMatching(g, seqM.MateTable()) {
			t.Fatalf("k=%d: sequential matching invalid", k)
		}
		if !graph.IsMatching(g, batM.MateTable()) {
			t.Fatalf("k=%d: batched matching invalid", k)
		}
		if err := batM.Validate(g); err != nil {
			t.Fatalf("k=%d: invariants broken after batches: %v", k, err)
		}
		if v := batM.Cluster().Stats().Violations; v != 0 {
			t.Fatalf("k=%d: %d cluster constraint violations", k, v)
		}

		// Backend-equivalence replica: §6 is randomized but seeded, so a
		// parallel-backend replica of the *batched* replay (same seed, same
		// chunks) must land on the bit-identical matching and accounting —
		// the backend determinism rule survives the randomized scheduler.
		parM := New(Config{N: n, Seed: 7, Backend: mpc.BackendParallel, Workers: 3})
		defer parM.Close()
		for _, b := range graph.Chunk(stream, k) {
			parM.ApplyBatch(b)
		}
		wantT, gotT := batM.MateTable(), parM.MateTable()
		for v := range wantT {
			if wantT[v] != gotT[v] {
				t.Fatalf("k=%d: parallel replica mate of %d: %d, sim %d", k, v, gotT[v], wantT[v])
			}
		}
		a, b := batM.Cluster().Stats(), parM.Cluster().Stats()
		if a.Rounds != b.Rounds || a.Words != b.Words || a.Messages != b.Messages ||
			a.Violations != b.Violations || a.PeakMemWords != b.PeakMemWords {
			t.Fatalf("k=%d: parallel replica accounting (rounds %d, words %d) diverges from sim (rounds %d, words %d)",
				k, b.Rounds, b.Words, a.Rounds, a.Words)
		}
	})
}
