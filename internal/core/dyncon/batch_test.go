package dyncon

import (
	"math/rand"
	"sort"
	"testing"

	"dmpc/internal/graph"
	"dmpc/internal/mpc"
)

func forestKey(d *D) []graph.WEdge {
	out := d.ForestEdges()
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// TestBatchEquivalence pins the wave-concurrent batch pipeline: applying a
// stream in batches of k yields exactly the forest and component labeling
// of sequential application, in both CC and exact-MST modes.
func TestBatchEquivalence(t *testing.T) {
	type mode struct {
		name string
		cfg  Config
	}
	const n = 40
	modes := []mode{
		{"cc", Config{N: n, Mode: CC, ExpectedEdges: 200}},
		{"mst", Config{N: n, Mode: MST, Eps: 0, ExpectedEdges: 200}},
	}
	for _, md := range modes {
		for _, k := range []int{1, 8, 32} {
			rng := rand.New(rand.NewSource(17))
			stream := graph.RandomStream(n, 220, 0.55, 40, rng)

			seqD := New(md.cfg)
			for _, up := range stream {
				if up.Op == graph.Insert {
					seqD.Insert(up.U, up.V, up.W)
				} else {
					seqD.Delete(up.U, up.V)
				}
			}

			batD := New(md.cfg)
			g := graph.New(n)
			for _, b := range graph.Chunk(stream, k) {
				st := batD.ApplyBatch(b)
				if st.Updates != len(b) || st.Rounds == 0 {
					t.Fatalf("%s k=%d: bad batch stats %+v", md.name, k, st)
				}
				b.Apply(g)
				if err := batD.Validate(); err != nil {
					t.Fatalf("%s k=%d: invariants broken after batch: %v", md.name, k, err)
				}
			}

			wantF, gotF := forestKey(seqD), forestKey(batD)
			if len(wantF) != len(gotF) {
				t.Fatalf("%s k=%d: forest sizes differ: %d vs %d", md.name, k, len(gotF), len(wantF))
			}
			for i := range wantF {
				if wantF[i] != gotF[i] {
					t.Fatalf("%s k=%d: forest edge %d differs: %v vs %v", md.name, k, i, gotF[i], wantF[i])
				}
			}
			for v := 0; v < n; v++ {
				if seqD.CompOf(v) != batD.CompOf(v) {
					t.Fatalf("%s k=%d: component of %d differs: %d vs %d",
						md.name, k, v, batD.CompOf(v), seqD.CompOf(v))
				}
			}
			comp := graph.Components(g)
			labels := make([]int, n)
			for v := 0; v < n; v++ {
				labels[v] = int(batD.CompOf(v))
			}
			if !graph.SameLabeling(labels, comp) {
				t.Fatalf("%s k=%d: labels do not partition like the oracle", md.name, k)
			}
			if md.name == "mst" && batD.ForestWeight() != graph.MSFWeight(g) {
				t.Fatalf("mst k=%d: forest weight %d, oracle %d", k, batD.ForestWeight(), graph.MSFWeight(g))
			}
			if v := batD.Cluster().Stats().Violations; v != 0 {
				t.Fatalf("%s k=%d: %d cluster constraint violations", md.name, k, v)
			}
		}
	}
}

// TestPrefixPackerEquivalence pins that the retained greedy-prefix packer
// (the PR 1 baseline the conflict-graph scheduler is benchmarked against)
// still produces the sequential forest and labeling.
func TestPrefixPackerEquivalence(t *testing.T) {
	const n = 40
	rng := rand.New(rand.NewSource(19))
	stream := graph.RandomStream(n, 200, 0.55, 40, rng)

	seqD := New(Config{N: n, Mode: CC, ExpectedEdges: 200})
	for _, up := range stream {
		if up.Op == graph.Insert {
			seqD.Insert(up.U, up.V, up.W)
		} else {
			seqD.Delete(up.U, up.V)
		}
	}
	preD := New(Config{N: n, Mode: CC, ExpectedEdges: 200})
	for _, b := range graph.Chunk(stream, 16) {
		preD.ApplyBatchPrefix(b)
	}
	wantF, gotF := forestKey(seqD), forestKey(preD)
	if len(wantF) != len(gotF) {
		t.Fatalf("forest sizes differ: %d vs %d", len(gotF), len(wantF))
	}
	for i := range wantF {
		if wantF[i] != gotF[i] {
			t.Fatalf("forest edge %d differs: %v vs %v", i, gotF[i], wantF[i])
		}
	}
	for v := 0; v < n; v++ {
		if seqD.CompOf(v) != preD.CompOf(v) {
			t.Fatalf("component of %d differs: %d vs %d", v, preD.CompOf(v), seqD.CompOf(v))
		}
	}
}

// TestConflictShardingBeatsPrefix pins the tentpole win: on a random
// workload at k=64, the conflict-graph scheduler packs wider waves than the
// greedy-prefix packer, so it spends strictly fewer rounds for the same
// batch semantics — and records the per-wave attribution that proves it.
func TestConflictShardingBeatsPrefix(t *testing.T) {
	const n = 96
	run := func(apply func(*D, graph.Batch) mpc.BatchStats) (rounds int, widths []int) {
		rng := rand.New(rand.NewSource(3))
		stream := graph.RandomStream(n, 256, 0.55, 1, rng)
		d := New(Config{N: n, Mode: CC, ExpectedEdges: 5 * n})
		for _, b := range graph.Chunk(stream, 64) {
			st := apply(d, b)
			covered := 0
			for _, w := range st.Waves {
				widths = append(widths, w.Updates)
				covered += w.Updates
			}
			if covered != st.Updates {
				t.Fatalf("waves cover %d updates, batch has %d", covered, st.Updates)
			}
			rounds += st.Rounds
		}
		return rounds, widths
	}
	prefRounds, prefWidths := run((*D).ApplyBatchPrefix)
	shardRounds, shardWidths := run((*D).ApplyBatch)
	if shardRounds >= prefRounds {
		t.Fatalf("conflict sharding did not beat prefix packing: %d vs %d rounds", shardRounds, prefRounds)
	}
	if len(shardWidths) >= len(prefWidths) {
		t.Fatalf("conflict sharding did not reduce wave count: %d vs %d waves", len(shardWidths), len(prefWidths))
	}
	maxW := func(ws []int) int {
		m := 0
		for _, w := range ws {
			if w > m {
				m = w
			}
		}
		return m
	}
	if maxW(shardWidths) <= maxW(prefWidths) {
		t.Fatalf("widest sharded wave %d not wider than widest prefix wave %d",
			maxW(shardWidths), maxW(prefWidths))
	}
}

// TestBatchAmortizedRoundsDrop pins the batching win for §5: waves of
// component-disjoint updates share their round window, so amortized rounds
// per update fall as the batch grows.
func TestBatchAmortizedRoundsDrop(t *testing.T) {
	const n = 96
	perUpdate := func(k int) float64 {
		rng := rand.New(rand.NewSource(3))
		stream := graph.RandomStream(n, 256, 0.55, 1, rng)
		d := New(Config{N: n, Mode: CC, ExpectedEdges: 5 * n})
		rounds, updates := 0, 0
		for _, b := range graph.Chunk(stream, k) {
			st := d.ApplyBatch(b)
			rounds += st.Rounds
			updates += st.Updates
		}
		return float64(rounds) / float64(updates)
	}
	r1, r64 := perUpdate(1), perUpdate(64)
	if r64 >= r1 {
		t.Fatalf("amortized rounds/update did not drop: k=1 %.2f, k=64 %.2f", r1, r64)
	}
}
