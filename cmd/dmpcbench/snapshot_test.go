package main

import (
	"encoding/json"
	"math"
	"os"
	"testing"
)

// loadSnapshot parses a committed BENCH_*.json from the repo root.
func loadSnapshot(t *testing.T, name string) benchReport {
	t.Helper()
	raw, err := os.ReadFile("../../" + name)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return rep
}

// TestWallSnapshotImprovement pins the point of the sparse-activation
// round engine: the committed BENCH_0009 wall-clock rows at n=10^5 must
// be at least 10% faster per op than BENCH_0007's on BOTH backends and
// BOTH algorithms, while rounds/op stays bit-identical (the engine may
// only change time, never the schedule). The snapshots are committed
// artifacts, so this is a property of the repo, not of the machine the
// test runs on — it fails if someone re-pins BENCH_0009 with the
// improvement lost.
func TestWallSnapshotImprovement(t *testing.T) {
	const n = 100_000
	oldRep := loadSnapshot(t, "BENCH_0007.json")
	newRep := loadSnapshot(t, "BENCH_0009.json")
	type key struct {
		name, backend string
	}
	oldRows := map[key]wallRow{}
	for _, w := range oldRep.Wall {
		if w.N == n {
			oldRows[key{w.Name, w.Backend}] = w
		}
	}
	if len(oldRows) == 0 {
		t.Fatalf("BENCH_0007 has no wall rows at n=%d", n)
	}
	matched := 0
	for _, w := range newRep.Wall {
		if w.N != n {
			continue
		}
		old, ok := oldRows[key{w.Name, w.Backend}]
		if !ok {
			t.Errorf("%s/%s: in BENCH_0009 but not BENCH_0007", w.Name, w.Backend)
			continue
		}
		matched++
		if math.Abs(w.RoundsPerOp-old.RoundsPerOp) > 1e-9 {
			t.Errorf("%s/%s: rounds/op moved %.6f -> %.6f; the engine may only change wall-clock time",
				w.Name, w.Backend, old.RoundsPerOp, w.RoundsPerOp)
		}
		if w.NsPerOp > 0.9*old.NsPerOp {
			t.Errorf("%s/%s: ns/op %.0f not >=10%% under BENCH_0007's %.0f",
				w.Name, w.Backend, w.NsPerOp, old.NsPerOp)
		}
		if w.AllocsPerRound <= 0 {
			t.Errorf("%s/%s: BENCH_0009 row missing allocs/round (the gate checkBaseline enforces needs it)",
				w.Name, w.Backend)
		}
	}
	if matched != len(oldRows) {
		t.Fatalf("only %d of %d n=%d rows matched between snapshots", matched, len(oldRows), n)
	}
}

// TestWallSnapshotLadder checks the committed BENCH_0009 records the full
// ladder through n=10^6 with the parallel backend winning the makespan on
// every rung at n >= 10^4 — the trajectory claim DESIGN.md §4 makes.
func TestWallSnapshotLadder(t *testing.T) {
	rep := loadSnapshot(t, "BENCH_0009.json")
	sim := map[[2]interface{}]wallRow{}
	seen := map[int]bool{}
	for _, w := range rep.Wall {
		seen[w.N] = true
		if w.Backend == "sim" {
			sim[[2]interface{}{w.Name, w.N}] = w
		}
	}
	for _, n := range []int{128, 10_000, 100_000, 1_000_000} {
		if !seen[n] {
			t.Errorf("BENCH_0009 missing the n=%d rung", n)
		}
	}
	for _, w := range rep.Wall {
		if w.Backend != "parallel" || w.N < 10_000 {
			continue
		}
		s, ok := sim[[2]interface{}{w.Name, w.N}]
		if !ok {
			t.Errorf("%s n=%d: parallel row without sim partner", w.Name, w.N)
			continue
		}
		if w.MakespanNs >= s.MakespanNs {
			t.Errorf("%s n=%d: parallel makespan %d not under sim %d", w.Name, w.N, w.MakespanNs, s.MakespanNs)
		}
	}
}
