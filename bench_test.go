// Benchmark harness reproducing the paper's evaluation artifacts (see
// DESIGN.md §4): one benchmark per Table 1 row, the reduction rows, the
// static-recompute baselines the rows are compared against, the §8
// entropy ablation, the Figure 1/2 tours, and the batch-pipeline
// amortization curves. Custom metrics report the three DMPC complexity
// measures per update: rounds/update, machines/round (worst),
// words/round (worst).
package dmpc

import (
	"fmt"
	"math/rand"
	"testing"

	"dmpc/internal/core/amm"
	"dmpc/internal/core/dmm"
	"dmpc/internal/core/dyncon"
	"dmpc/internal/core/reduction"
	"dmpc/internal/etour"
	"dmpc/internal/graph"
	"dmpc/internal/mpc"
	"dmpc/internal/seqdyn"
	"dmpc/internal/staticmpc"
)

const (
	benchN      = 96
	benchCap    = 600
	benchStream = 400
)

func benchStreamUpdates(seed int64) []graph.Update {
	rng := rand.New(rand.NewSource(seed))
	return graph.RandomStream(benchN, benchStream, 0.55, 50, rng)
}

type statsAgg struct {
	updates int
	rounds  int
	active  int
	words   int
}

func (a *statsAgg) add(st mpc.UpdateStats) {
	a.updates++
	a.rounds += st.Rounds
	if st.MaxActive > a.active {
		a.active = st.MaxActive
	}
	if st.MaxWords > a.words {
		a.words = st.MaxWords
	}
}

func (a *statsAgg) report(b *testing.B) {
	if a.updates == 0 {
		return
	}
	b.ReportMetric(float64(a.rounds)/float64(a.updates), "rounds/update")
	b.ReportMetric(float64(a.active), "machines/round(max)")
	b.ReportMetric(float64(a.words), "words/round(max)")
}

// BenchmarkTable1MaximalMatching reproduces Table 1 row 1 (§3): O(1)
// rounds, O(1) active machines, O(√N) words per round, worst case.
func BenchmarkTable1MaximalMatching(b *testing.B) {
	var agg statsAgg
	for i := 0; i < b.N; i++ {
		m := dmm.New(dmm.Config{N: benchN, CapEdges: benchCap})
		for _, up := range benchStreamUpdates(1) {
			var st mpc.UpdateStats
			if up.Op == graph.Insert {
				st = m.Insert(up.U, up.V)
			} else {
				st = m.Delete(up.U, up.V)
			}
			agg.add(st)
		}
	}
	agg.report(b)
}

// BenchmarkTable1ThreeHalves reproduces Table 1 row 2 (§4): O(1) rounds,
// O(n/√N) machines, O(√N) words.
func BenchmarkTable1ThreeHalves(b *testing.B) {
	var agg statsAgg
	for i := 0; i < b.N; i++ {
		m := dmm.New(dmm.Config{N: benchN, CapEdges: benchCap, ThreeHalves: true})
		for _, up := range benchStreamUpdates(2) {
			var st mpc.UpdateStats
			if up.Op == graph.Insert {
				st = m.Insert(up.U, up.V)
			} else {
				st = m.Delete(up.U, up.V)
			}
			agg.add(st)
		}
	}
	agg.report(b)
}

// BenchmarkTable1TwoPlusEps reproduces Table 1 row 3 (§6): O(1) rounds,
// Õ(1) machines, Õ(1) words.
func BenchmarkTable1TwoPlusEps(b *testing.B) {
	var agg statsAgg
	for i := 0; i < b.N; i++ {
		m := amm.New(amm.Config{N: benchN, Seed: 3})
		for _, up := range benchStreamUpdates(3) {
			var st mpc.UpdateStats
			if up.Op == graph.Insert {
				st = m.Insert(up.U, up.V)
			} else {
				st = m.Delete(up.U, up.V)
			}
			agg.add(st)
		}
	}
	agg.report(b)
}

// BenchmarkTable1ConnComp reproduces Table 1 row 4 (§5): O(1) rounds,
// O(√N) machines, O(√N) words.
func BenchmarkTable1ConnComp(b *testing.B) {
	var agg statsAgg
	for i := 0; i < b.N; i++ {
		d := dyncon.New(dyncon.Config{N: benchN, Mode: dyncon.CC, ExpectedEdges: benchCap})
		for _, up := range benchStreamUpdates(4) {
			var st mpc.UpdateStats
			if up.Op == graph.Insert {
				st = d.Insert(up.U, up.V, 1)
			} else {
				st = d.Delete(up.U, up.V)
			}
			agg.add(st)
		}
	}
	agg.report(b)
}

// BenchmarkTable1MST reproduces Table 1 row 5 (§5.1): O(1) rounds, O(√N)
// machines, O(√N) words; approximation from the (1+ε) bucketing.
func BenchmarkTable1MST(b *testing.B) {
	var agg statsAgg
	for i := 0; i < b.N; i++ {
		d := dyncon.New(dyncon.Config{N: benchN, Mode: dyncon.MST, Eps: 0.25, ExpectedEdges: benchCap})
		for _, up := range benchStreamUpdates(5) {
			var st mpc.UpdateStats
			if up.Op == graph.Insert {
				st = d.Insert(up.U, up.V, up.W)
			} else {
				st = d.Delete(up.U, up.V)
			}
			agg.add(st)
		}
	}
	agg.report(b)
}

// BenchmarkReductionConnectivity reproduces the Table 1 reduction row for
// connected components: Õ(1) amortized rounds via HDT, O(1) machines, O(1)
// words per round (Lemma 7.1).
func BenchmarkReductionConnectivity(b *testing.B) {
	var agg statsAgg
	for i := 0; i < b.N; i++ {
		sim := reduction.NewSim(8, 1<<17)
		w := reduction.NewWrapped(sim, reduction.HDTTarget{H: seqdyn.NewHDT(benchN)})
		for _, up := range benchStreamUpdates(6) {
			agg.add(w.Update(up))
		}
	}
	agg.report(b)
}

// BenchmarkReductionMatching reproduces the reduction row for maximal
// matching (Neiman–Solomon substitute, see DESIGN.md).
func BenchmarkReductionMatching(b *testing.B) {
	var agg statsAgg
	for i := 0; i < b.N; i++ {
		sim := reduction.NewSim(8, 1<<17)
		w := reduction.NewWrapped(sim, reduction.NSMatchTarget{M: seqdyn.NewNSMatch(benchN, benchCap)})
		for _, up := range benchStreamUpdates(7) {
			agg.add(w.Update(up))
		}
	}
	agg.report(b)
}

// BenchmarkReductionMST reproduces the reduction row for minimum spanning
// trees.
func BenchmarkReductionMST(b *testing.B) {
	var agg statsAgg
	for i := 0; i < b.N; i++ {
		sim := reduction.NewSim(8, 1<<17)
		w := reduction.NewWrapped(sim, reduction.MSFTarget{F: seqdyn.NewDynMSF(benchN)})
		for _, up := range benchStreamUpdates(8) {
			agg.add(w.Update(up))
		}
	}
	agg.report(b)
}

// BenchmarkBatchPipeline measures the batch-dynamic update pipeline: each
// ApplyBatch implementation is driven over the same stream at batch sizes
// k ∈ {1, 8, 64}; the metric to watch is amortized rounds/update dropping
// as k grows (the §7 reduction replays sequentially and stays flat by
// design).
func BenchmarkBatchPipeline(b *testing.B) {
	type runner struct {
		name string
		mk   func() func(graph.Batch) mpc.BatchStats
	}
	runners := []runner{
		{"MaximalMatching", func() func(graph.Batch) mpc.BatchStats {
			return dmm.New(dmm.Config{N: benchN, CapEdges: benchCap}).ApplyBatch
		}},
		{"ThreeHalves", func() func(graph.Batch) mpc.BatchStats {
			return dmm.New(dmm.Config{N: benchN, CapEdges: benchCap, ThreeHalves: true}).ApplyBatch
		}},
		{"TwoPlusEps", func() func(graph.Batch) mpc.BatchStats {
			return amm.New(amm.Config{N: benchN, Seed: 13}).ApplyBatch
		}},
		{"ConnComp", func() func(graph.Batch) mpc.BatchStats {
			return dyncon.New(dyncon.Config{N: benchN, Mode: dyncon.CC, ExpectedEdges: benchCap}).ApplyBatch
		}},
		{"MST", func() func(graph.Batch) mpc.BatchStats {
			return dyncon.New(dyncon.Config{N: benchN, Mode: dyncon.MST, Eps: 0.25, ExpectedEdges: benchCap}).ApplyBatch
		}},
		{"ReductionConnectivity", func() func(graph.Batch) mpc.BatchStats {
			sim := reduction.NewSim(8, 1<<17)
			return reduction.NewWrapped(sim, reduction.HDTTarget{H: seqdyn.NewHDT(benchN)}).ApplyBatch
		}},
	}
	for _, r := range runners {
		for _, k := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/k=%d", r.name, k), func(b *testing.B) {
				var rounds, updates, batches int
				for i := 0; i < b.N; i++ {
					apply := r.mk()
					for _, batch := range graph.Chunk(benchStreamUpdates(14), k) {
						st := apply(batch)
						rounds += st.Rounds
						updates += st.Updates
						batches++
					}
				}
				if updates > 0 {
					b.ReportMetric(float64(rounds)/float64(updates), "rounds/update(amortized)")
					b.ReportMetric(float64(rounds)/float64(batches), "rounds/batch")
				}
			})
		}
	}
}

// BenchmarkQueryPipeline measures the batched query pipeline: after a
// warm-up stream, each protocol query path (ConnectedBatch, MateOfBatch)
// is driven at query-batch sizes k ∈ {1, 8, 64}; the metric to watch is
// amortized rounds/query dropping from ~2 (resp. 1) toward 2/k (resp.
// 1/k), the read-side mirror of the batch-dynamic update curves.
func BenchmarkQueryPipeline(b *testing.B) {
	type runner struct {
		name string
		mk   func() (query func(k int, rng *rand.Rand), stats func() *mpc.Stats)
	}
	runners := []runner{
		{"ConnComp", func() (func(int, *rand.Rand), func() *mpc.Stats) {
			d := dyncon.New(dyncon.Config{N: benchN, Mode: dyncon.CC, ExpectedEdges: benchCap})
			for _, batch := range graph.Chunk(benchStreamUpdates(14), 32) {
				d.ApplyBatch(batch)
			}
			return func(k int, rng *rand.Rand) { d.ConnectedBatch(graph.RandomPairs(benchN, k, rng)) },
				func() *mpc.Stats { return d.Cluster().Stats() }
		}},
		{"MaximalMatching", func() (func(int, *rand.Rand), func() *mpc.Stats) {
			m := dmm.New(dmm.Config{N: benchN, CapEdges: benchCap})
			for _, batch := range graph.Chunk(benchStreamUpdates(14), 32) {
				m.ApplyBatch(batch)
			}
			return func(k int, rng *rand.Rand) { m.MateOfBatch(graph.RandomVerts(benchN, k, rng)) },
				func() *mpc.Stats { return m.Cluster().Stats() }
		}},
		{"TwoPlusEps", func() (func(int, *rand.Rand), func() *mpc.Stats) {
			m := amm.New(amm.Config{N: benchN, Seed: 13})
			for _, batch := range graph.Chunk(benchStreamUpdates(14), 32) {
				m.ApplyBatch(batch)
			}
			return func(k int, rng *rand.Rand) { m.MateOfBatch(graph.RandomVerts(benchN, k, rng)) },
				func() *mpc.Stats { return m.Cluster().Stats() }
		}},
	}
	for _, r := range runners {
		for _, k := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/k=%d", r.name, k), func(b *testing.B) {
				query, stats := r.mk()
				rng := rand.New(rand.NewSource(31))
				for i := 0; i < b.N; i++ {
					for q := 0; q < 128; q += k {
						query(k, rng)
					}
				}
				if rpq, _, words := stats().MeanQuery(); rpq > 0 {
					b.ReportMetric(rpq, "rounds/query(amortized)")
					b.ReportMetric(words, "words/round(mean)")
				}
			})
		}
	}
}

// BenchmarkStaticRecomputeCC is the baseline the §5 row is compared
// against: recomputing components from scratch after every update costs
// O(log n) rounds with all machines active and Ω(N) communication.
func BenchmarkStaticRecomputeCC(b *testing.B) {
	updates := benchStreamUpdates(9)
	var rounds, words, active, runs int
	for i := 0; i < b.N; i++ {
		g := graph.New(benchN)
		for s, up := range updates {
			g.Apply(up)
			if s%20 != 0 {
				continue // recompute periodically; per-update would dwarf the bench
			}
			_, res := staticmpc.ConnectedComponents(g, 0, 0)
			rounds += res.Rounds
			words += res.MaxWords
			if res.MaxActive > active {
				active = res.MaxActive
			}
			runs++
		}
	}
	if runs > 0 {
		b.ReportMetric(float64(rounds)/float64(runs), "rounds/recompute")
		b.ReportMetric(float64(active), "machines/round(max)")
		b.ReportMetric(float64(words)/float64(runs), "words/round(mean-max)")
	}
}

// BenchmarkStaticRecomputeMatching is the static matching baseline
// (randomized proposals, O(log n) rounds).
func BenchmarkStaticRecomputeMatching(b *testing.B) {
	updates := benchStreamUpdates(10)
	var rounds, runs int
	for i := 0; i < b.N; i++ {
		g := graph.New(benchN)
		for s, up := range updates {
			g.Apply(up)
			if s%20 != 0 {
				continue
			}
			_, res := staticmpc.MaximalMatching(g, 0, 0, int64(s))
			rounds += res.Rounds
			runs++
		}
	}
	if runs > 0 {
		b.ReportMetric(float64(rounds)/float64(runs), "rounds/recompute")
	}
}

// BenchmarkStaticRecomputeMSF is the static MST baseline (filtering).
func BenchmarkStaticRecomputeMSF(b *testing.B) {
	updates := benchStreamUpdates(11)
	var rounds, runs int
	for i := 0; i < b.N; i++ {
		g := graph.New(benchN)
		for s, up := range updates {
			g.Apply(up)
			if s%20 != 0 {
				continue
			}
			_, res := staticmpc.MinSpanningForest(g, 8)
			rounds += res.Rounds
			runs++
		}
	}
	if runs > 0 {
		b.ReportMetric(float64(rounds)/float64(runs), "rounds/recompute")
	}
}

// BenchmarkAblationEntropy quantifies §8's communication-entropy metric:
// the coordinator-based §3 algorithm concentrates traffic (low entropy)
// while the broadcast-based §5 algorithm spreads it (high entropy).
func BenchmarkAblationEntropy(b *testing.B) {
	var coordinated, broadcast float64
	for i := 0; i < b.N; i++ {
		m := dmm.New(dmm.Config{N: benchN, CapEdges: benchCap})
		d := dyncon.New(dyncon.Config{N: benchN, Mode: dyncon.CC, ExpectedEdges: benchCap})
		for _, up := range benchStreamUpdates(12) {
			if up.Op == graph.Insert {
				m.Insert(up.U, up.V)
				d.Insert(up.U, up.V, 1)
			} else {
				m.Delete(up.U, up.V)
				d.Delete(up.U, up.V)
			}
		}
		coordinated = m.Cluster().CommEntropy()
		broadcast = d.Cluster().CommEntropy()
	}
	b.ReportMetric(coordinated, "entropy-coordinator(bits)")
	b.ReportMetric(broadcast, "entropy-broadcast(bits)")
}

// BenchmarkFigure12EulerTours regenerates the tours of Figures 1 and 2
// via the index-arithmetic forest (correctness is pinned in the etour
// tests; this measures the op cost).
func BenchmarkFigure12EulerTours(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fo := etour.NewForest(7)
		fo.BuildFromTree(map[int][]int{1: {2, 4}, 2: {1, 3}, 3: {2}, 4: {1}}, 1)
		fo.BuildFromTree(map[int][]int{0: {5}, 5: {0, 6}, 6: {5}}, 0)
		fo.Link(6, 4) // Figure 1(iii): insert (e,g)
		fo.Cut(6, 4)
		fo.Link(0, 1)
		fo.Cut(0, 1) // Figure 2(iii): delete (a,b)
	}
}

// BenchmarkScalingCommPerRound verifies the O(√N) communication shape of
// the §5 row: quadrupling N should roughly double worst-case words per
// round. The two metrics let the ratio be read off directly.
func BenchmarkScalingCommPerRound(b *testing.B) {
	measure := func(n int) float64 {
		d := dyncon.New(dyncon.Config{N: n, Mode: dyncon.CC, ExpectedEdges: 4 * n})
		rng := rand.New(rand.NewSource(13))
		worst := 0
		for _, up := range graph.RandomStream(n, 200, 0.55, 1, rng) {
			var st mpc.UpdateStats
			if up.Op == graph.Insert {
				st = d.Insert(up.U, up.V, 1)
			} else {
				st = d.Delete(up.U, up.V)
			}
			if st.MaxWords > worst {
				worst = st.MaxWords
			}
		}
		return float64(worst)
	}
	var small, big float64
	for i := 0; i < b.N; i++ {
		small = measure(64)
		big = measure(256)
	}
	b.ReportMetric(small, "words/round(N=64)")
	b.ReportMetric(big, "words/round(N=256)")
	if small > 0 {
		b.ReportMetric(big/small, "growth-per-4x-input")
	}
}
