#!/usr/bin/env sh
# check_deprecated.sh — assert no in-repo non-test code still calls the
# facade's deprecated surfaces.
#
# The PR 5/6 API redesign left the pre-redesign methods (ApplyBatch,
# Connected/ConnectedBatch/ComponentOf, MateOf/MateOfBatch/Matched) as
# thin deprecated wrappers over Apply/Ingest. Examples and tools are the
# reference usage, so they must speak the current API: any non-test .go
# file that constructs a facade structure (dmpc.NewConnectivity, NewMST,
# NewMaximalMatching, NewThreeHalvesMatching, NewAlmostMaximalMatching)
# must not call a deprecated method token. Internal packages keep their
# own same-named methods (dyncon.ApplyBatch etc.) — those are the
# implementation, not the deprecated facade, and files using only the
# internal constructors are exempt.
#
# Run from the repo root: sh scripts/check_deprecated.sh
set -eu

fail=0
for f in $(git ls-files '*.go' 2>/dev/null || find . -name '*.go' -not -path './.git/*'); do
    case "$f" in
    *_test.go) continue ;; # tests pin the wrappers' delegation on purpose
    dmpc.go | ./dmpc.go) continue ;; # the wrappers' own definitions
    esac
    grep -qE 'dmpc\.New(Connectivity|MST|MaximalMatching|ThreeHalvesMatching|AlmostMaximalMatching)\(' "$f" || continue
    hits=$(grep -nE '\.(ApplyBatch|Connected|ConnectedBatch|ComponentOf|MateOf|MateOfBatch|Matched)\(' "$f" || true)
    if [ -n "$hits" ]; then
        echo "$f calls deprecated facade surfaces:"
        echo "$hits" | sed 's/^/  /'
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "use Apply (or Ingest for streaming arrivals) instead; see dmpc.go deprecation notes" >&2
    exit 1
fi
echo "deprecation check: no facade-constructing non-test file calls deprecated surfaces"
