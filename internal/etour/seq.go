package etour

import (
	"fmt"
	"sort"
	"strings"
)

// Seq is a materialized Euler tour: the explicit sequence of vertex
// appearances. It exists as an independent oracle for the index-arithmetic
// Forest (the two implementations are cross-checked in tests) and to render
// the paper's Figures 1 and 2. Position arguments and results are 1-based,
// matching the paper; a singleton tree is the empty sequence.
type Seq struct {
	s []int
}

// SeqFromSlice wraps an explicit appearance sequence (1-based positions map
// to slice indexes 0..) so external reconstructions can reuse Valid,
// First/Last and Render.
func SeqFromSlice(s []int) *Seq { return &Seq{s: append([]int(nil), s...)} }

// BuildSeq constructs the canonical Euler tour of the tree containing root,
// visiting children in ascending vertex order — the order used by the
// paper's figures. adj maps each vertex to its tree neighbors.
func BuildSeq(adj map[int][]int, root int) *Seq {
	var s []int
	seen := map[int]bool{root: true}
	var dfs func(v int)
	dfs = func(v int) {
		nbrs := append([]int(nil), adj[v]...)
		sort.Ints(nbrs)
		for _, w := range nbrs {
			if seen[w] {
				continue
			}
			seen[w] = true
			s = append(s, v, w) // arc v -> w
			dfs(w)
			s = append(s, w, v) // arc w -> v
		}
	}
	dfs(root)
	return &Seq{s: s}
}

// Len returns ELen, the tour length.
func (t *Seq) Len() int { return len(t.s) }

// At returns the vertex at 1-based position i.
func (t *Seq) At(i int) int { return t.s[i-1] }

// Slice returns a copy of the raw sequence.
func (t *Seq) Slice() []int { return append([]int(nil), t.s...) }

// First returns f(v), the 1-based first appearance of v, or 0 if absent.
func (t *Seq) First(v int) int {
	for i, x := range t.s {
		if x == v {
			return i + 1
		}
	}
	return 0
}

// Last returns l(v), the 1-based last appearance of v, or 0 if absent.
func (t *Seq) Last(v int) int {
	for i := len(t.s) - 1; i >= 0; i-- {
		if t.s[i] == v {
			return i + 1
		}
	}
	return 0
}

// Root returns the tour's root (the vertex at position 1), or -1 for the
// empty tour.
func (t *Seq) Root() int {
	if len(t.s) == 0 {
		return -1
	}
	return t.s[0]
}

// Reroot rotates the tour so y becomes the root. No-op if y already is.
func (t *Seq) Reroot(y int) {
	if len(t.s) == 0 || t.s[0] == y {
		return
	}
	ly := t.Last(y) // 1-based; rotation starts at the arc (y, parent)
	rotated := make([]int, 0, len(t.s))
	rotated = append(rotated, t.s[ly-1:]...)
	rotated = append(rotated, t.s[:ly-1]...)
	t.s = rotated
}

// LinkSeq splices guest (which must be rooted at y, or be a singleton) into
// host at host-vertex x, returning the merged tour. hostX identifies x; for
// a singleton host the caller passes the singleton's vertex id.
func LinkSeq(host *Seq, x int, guest *Seq, y int) *Seq {
	// Splice point q: an even-aligned appearance of x.
	q := 0
	if host.Len() > 0 {
		if host.Root() == x {
			q = host.Len()
		} else {
			q = host.First(x) // even for non-root vertices
		}
	}
	merged := make([]int, 0, host.Len()+guest.Len()+4)
	merged = append(merged, host.s[:q]...)
	merged = append(merged, x, y) // arc x -> y
	merged = append(merged, guest.s...)
	merged = append(merged, y, x) // arc y -> x
	merged = append(merged, host.s[q:]...)
	return &Seq{s: merged}
}

// CutSeq removes tree edge (x,y) where one endpoint is the parent of the
// other, returning the remaining tour (containing the parent) and the
// subtree tour (rooted at the child). It panics if the edge's arcs are not
// found where the conventions place them.
func CutSeq(t *Seq, x, y int) (rest, sub *Seq) {
	fx, lx := t.First(x), t.Last(x)
	fy, ly := t.First(y), t.Last(y)
	if InSubtree(fx, lx, fy, ly) {
		// y is the parent.
		x, y = y, x
		fy, ly = fx, lx
	}
	if t.s[fy-2] != x || t.s[ly] != x {
		panic(fmt.Sprintf("etour: arcs of (%d,%d) not adjacent to subtree interval", x, y))
	}
	subSeq := append([]int(nil), t.s[fy:ly-1]...) // positions fy+1 .. ly-1
	restSeq := make([]int, 0, len(t.s)-len(subSeq)-4)
	restSeq = append(restSeq, t.s[:fy-2]...) // positions 1 .. fy-2
	restSeq = append(restSeq, t.s[ly+1:]...) // positions ly+2 .. L
	return &Seq{s: restSeq}, &Seq{s: subSeq}
}

// Valid reports whether the sequence is a structurally valid Euler tour:
// even length, arcs at (2k-1, 2k) with distinct endpoints, consecutive arcs
// chained through their shared vertex, and circular closure at the root.
func (t *Seq) Valid() error {
	L := len(t.s)
	if L == 0 {
		return nil
	}
	if L%2 != 0 {
		return fmt.Errorf("odd tour length %d", L)
	}
	for k := 0; 2*k < L; k++ {
		if t.s[2*k] == t.s[2*k+1] {
			return fmt.Errorf("self-arc at positions %d,%d", 2*k+1, 2*k+2)
		}
	}
	for k := 1; 2*k < L; k++ {
		if t.s[2*k-1] != t.s[2*k] {
			return fmt.Errorf("broken chain at position %d", 2*k)
		}
	}
	if t.s[L-1] != t.s[0] {
		return fmt.Errorf("tour not circular: starts %d ends %d", t.s[0], t.s[L-1])
	}
	// Each arc must appear with its reverse exactly once.
	type arc struct{ a, b int }
	count := map[arc]int{}
	for k := 0; 2*k < L; k++ {
		count[arc{t.s[2*k], t.s[2*k+1]}]++
	}
	for a, c := range count {
		if c != 1 || count[arc{a.b, a.a}] != 1 {
			return fmt.Errorf("arc (%d,%d) multiplicity %d", a.a, a.b, c)
		}
	}
	return nil
}

// Render formats the tour with vertex names (index = vertex id) in the
// style of the paper's figures: "[b,c,c,d,...]".
func (t *Seq) Render(names []string) string {
	parts := make([]string, len(t.s))
	for i, v := range t.s {
		if names != nil && v < len(names) {
			parts[i] = names[v]
		} else {
			parts[i] = fmt.Sprintf("%d", v)
		}
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// Brackets formats the [f,l] appearance intervals for the given vertices in
// the style of the paper's figures.
func (t *Seq) Brackets(vertices []int, names []string) string {
	var parts []string
	for _, v := range vertices {
		f, l := t.First(v), t.Last(v)
		if f == 0 {
			continue
		}
		name := fmt.Sprintf("%d", v)
		if names != nil && v < len(names) {
			name = names[v]
		}
		parts = append(parts, fmt.Sprintf("%s[%d,%d]", name, f, l))
	}
	return strings.Join(parts, " ")
}
