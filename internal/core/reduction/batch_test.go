package reduction

import (
	"math/rand"
	"testing"

	"dmpc/internal/graph"
	"dmpc/internal/seqdyn"
)

// TestBatchSequentialReplay pins the §7 fallback: a batch costs exactly
// the sum of its updates' round costs (no sharing — the simulation is
// serial at the compute machine), and the wrapped structure's answers
// still match the oracle.
func TestBatchSequentialReplay(t *testing.T) {
	const n = 32
	rng := rand.New(rand.NewSource(31))
	stream := graph.RandomStream(n, 120, 0.6, 1, rng)

	sim := NewSim(8, 1<<17)
	w := NewWrapped(sim, HDTTarget{H: seqdyn.NewHDT(n)})
	g := graph.New(n)
	for _, b := range graph.Chunk(stream, 16) {
		before := len(sim.Cluster().Stats().Updates())
		st := w.ApplyBatch(b)
		if st.Updates != len(b) {
			t.Fatalf("batch stats cover %d updates, want %d", st.Updates, len(b))
		}
		sum := 0
		for _, u := range sim.Cluster().Stats().Updates()[before:] {
			sum += u.Rounds
		}
		if st.Rounds != sum {
			t.Fatalf("batch rounds %d != sum of per-update rounds %d", st.Rounds, sum)
		}
		b.Apply(g)
	}
	comp := graph.Components(g)
	for u := 0; u < n; u += 3 {
		for v := u + 1; v < n; v += 2 {
			if w.Target.(HDTTarget).H.Connected(u, v) != (comp[u] == comp[v]) {
				t.Fatalf("Connected(%d,%d) mismatch after batched replay", u, v)
			}
		}
	}
}
