package mpc

import "testing"

// TestStreamStatsPercentile pins the nearest-rank rule and the derived
// percentiles against hand-computed values.
func TestStreamStatsPercentile(t *testing.T) {
	var s StreamStats
	if s.P99() != 0 || s.P50() != 0 {
		t.Fatal("empty stream reports nonzero percentiles")
	}
	s.Latencies = []int64{9, 1, 5} // unsorted on purpose
	if got := s.P50(); got != 5 {
		t.Fatalf("P50 = %d, want 5", got)
	}
	if got := s.Percentile(100); got != 9 {
		t.Fatalf("P100 = %d, want 9", got)
	}
	if got := s.Percentile(1); got != 1 {
		t.Fatalf("P1 = %d, want 1", got)
	}
	// 100 latencies 1..100: nearest-rank p99 is the 99th value.
	s.Latencies = s.Latencies[:0]
	for i := 1; i <= 100; i++ {
		s.Latencies = append(s.Latencies, int64(i))
	}
	if got := s.P99(); got != 99 {
		t.Fatalf("P99 over 1..100 = %d, want 99", got)
	}
	if got := s.P95(); got != 95 {
		t.Fatalf("P95 over 1..100 = %d, want 95", got)
	}
	if got := s.P50(); got != 50 {
		t.Fatalf("P50 over 1..100 = %d, want 50", got)
	}
	s.Ops = 50
	s.Rounds = 100
	if got := s.RoundsPerOp(); got != 2 {
		t.Fatalf("RoundsPerOp = %v, want 2", got)
	}
}
