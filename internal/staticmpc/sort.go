package staticmpc

import (
	"sort"

	"dmpc/internal/mpc"
)

// Distributed sample sort in a constant number of rounds (Goodrich et al.
// [19], which the paper invokes for the O(1)-round sorting step of its §5
// preprocessing): machine 0 gathers a sample, broadcasts µ-1 splitters,
// every machine routes its items to the owner of their bucket, and each
// machine sorts its bucket locally. The sorted sequence is the
// concatenation of the machines' buckets in machine order.

type sortMsg struct {
	kind  int32 // 0: sample contribution, 1: splitters, 2: routed items
	items []int64
}

type sortMachine struct {
	id         int
	items      []int64
	splitters  []int64
	phase      int32
	sampleAt   int // coordinator id
	oversample int
}

func (m *sortMachine) MemWords() int { return len(m.items) + len(m.splitters) }

func (m *sortMachine) HandleRound(ctx *mpc.Ctx, inbox []mpc.Message) {
	for _, msg := range inbox {
		sm, ok := msg.Payload.(sortMsg)
		if !ok {
			continue
		}
		switch sm.kind {
		case 0: // sample arrives at coordinator
			m.items = append(m.items, sm.items...)
		case 1:
			m.splitters = sm.items
		case 2:
			m.items = append(m.items, sm.items...)
		}
	}

	switch m.phase {
	case 0: // send a deterministic sample (every k-th local item) to coordinator
		sort.Slice(m.items, func(i, j int) bool { return m.items[i] < m.items[j] })
		step := len(m.items)/m.oversample + 1
		var sample []int64
		for i := 0; i < len(m.items); i += step {
			sample = append(sample, m.items[i])
		}
		ctx.Send(m.sampleAt, sortMsg{kind: 0, items: sample}, len(sample)+1)
	case 1: // coordinator: pick µ-1 splitters, broadcast
		sort.Slice(m.items, func(i, j int) bool { return m.items[i] < m.items[j] })
		mu := ctx.Machines()
		var spl []int64
		for k := 1; k < mu; k++ {
			idx := k * len(m.items) / mu
			if idx < len(m.items) {
				spl = append(spl, m.items[idx])
			}
		}
		ctx.Broadcast(sortMsg{kind: 1, items: spl}, len(spl)+1, true)
		m.items = nil // coordinator held only the sample
	case 2: // route local items by splitter bucket
		buckets := make(map[int][]int64)
		for _, x := range m.items {
			b := sort.Search(len(m.splitters), func(i int) bool { return m.splitters[i] > x })
			buckets[b] = append(buckets[b], x)
		}
		m.items = nil
		for b, xs := range buckets {
			ctx.Send(b, sortMsg{kind: 2, items: xs}, len(xs)+1)
		}
	case 3: // local sort of the received bucket
		sort.Slice(m.items, func(i, j int) bool { return m.items[i] < m.items[j] })
	}
	m.phase = -1
}

// Sort sorts items on a cluster of mu machines in a constant number of
// rounds, returning the sorted slice and the accounting.
func Sort(items []int64, mu int) ([]int64, Result) {
	if mu < 2 {
		mu = 2
	}
	mem := 4*(len(items)/mu+1) + 8*mu + 16
	cl := mpc.NewCluster(mpc.Config{Machines: mu, MemWords: mem})
	machines := make([]*sortMachine, mu)
	for i := range machines {
		machines[i] = &sortMachine{id: i, phase: -1, sampleAt: 0, oversample: 4}
		cl.SetMachine(i, machines[i])
	}
	// The coordinator's own items would bias its sample buffer; keep data
	// machines 0..mu-1 all loaded, coordinator doubles as data machine but
	// samples before gathering.
	for i, x := range items {
		m := machines[i%mu]
		m.items = append(m.items, x)
	}

	cl.BeginUpdate()
	// Phase A: samples to coordinator. The coordinator must not mix its
	// own data with the sample buffer: it contributes its sample first and
	// parks its data.
	parked := machines[0].items
	machines[0].items = nil
	step := len(parked)/machines[0].oversample + 1
	sortInt64(parked)
	for i := 0; i < len(parked); i += step {
		machines[0].items = append(machines[0].items, parked[i])
	}
	for i := 1; i < mu; i++ {
		machines[i].phase = 0
		cl.Schedule(i)
	}
	cl.Round()
	machines[0].phase = 1
	cl.Schedule(0)
	cl.Round() // splitters broadcast
	machines[0].items = parked
	for i := 0; i < mu; i++ {
		machines[i].phase = 2
		cl.Schedule(i)
	}
	cl.Round() // splitters received; route
	for i := 0; i < mu; i++ {
		machines[i].phase = 3
		cl.Schedule(i)
	}
	cl.Round() // buckets received; local sort
	stats := cl.EndUpdate()

	var out []int64
	for i := 0; i < mu; i++ {
		out = append(out, machines[i].items...)
	}
	return out, resultFrom(stats)
}

func sortInt64(xs []int64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
