package dmpc

import (
	"math"
	"sort"
)

// AutoBatcher is the adaptive batch-sizing driver deferred by PR 1: it
// feeds an op stream through an ApplyBatch function (update-only streams)
// or a Pipeline front door (mixed update/query streams) while growing or
// shrinking the chunk size k online against the measured amortized rounds
// per op, seeking the knee of the k-vs-rounds curve without the caller
// having to pick k. On mixed streams the measurement is the mixed
// window's rounds over its ops — both halves — so k is sized for the
// workload actually flowing, not for its write side alone, and the word
// cap watches the peak round of either half.
//
// Policy (deterministic, no randomness):
//
//   - Warm up first: the opening WarmupBatches full batches are applied
//     but excluded from the search. A structure that starts empty processes
//     its first updates unrepresentatively cheaply (every insert lands in a
//     tiny component), and letting that transient set the baseline poisons
//     every later comparison.
//   - Probe upward: evaluate each k over a window of ProbeBatches full
//     batches — the windowed amortized rounds/update is the measurement, so
//     one unlucky batch cannot end the search — and double k as long as the
//     window is not worse than the *best window seen so far* by more than
//     Margin (relative). Amortized rounds are non-increasing in k by
//     construction (more updates share each wave's rounds), but successive
//     windows measure different stream segments of a drifting workload, so
//     demanding a measured improvement per doubling would settle spuriously
//     at the start; "not measurably worse than the best" tracks the true
//     curve through segment noise.
//   - Settle at the knee, on two strikes: a single bad window re-measures
//     at the same k instead of ending the search; two consecutive windows
//     worse than the best by more than Margin mark genuine saturation, and
//     k steps back to the best-measured value and holds. MaxK bounds the
//     search when the curve never worsens.
//   - Respect the word cap: a batch whose MaxWords exceeds CapWords halves
//     k immediately (mid-window, discarding the window), whatever the
//     round trend said — wider waves mean more concurrent broadcasts per
//     round, and the communication budget binds first. BatchStats.MaxWords
//     counts cluster-wide words per round, so the natural setting is µ·S
//     (Machines × MemWords), the model's aggregate per-round capacity.
//   - Re-probe after the knee settles: every ReprobeEvery settled full
//     batches the search re-opens so long-lived streams track workload
//     drift — the settled k halves one step (so a knee that moved *down*
//     is reachable, not just one that moved up), the stale best-window
//     baseline is discarded (it described the old workload, exactly the
//     poison the warmup rule guards against at startup), and the
//     grow-unless-worse climb runs again from there. On a stable workload
//     the re-probe costs a few windows and settles back at the same knee;
//     under drift, repeated periods walk k to the new knee in either
//     direction. A search settled by the word cap never re-probes: growing
//     back into the cap would periodically violate the budget on purpose.
//   - Partial batches (a final Flush shorter than k) are applied and
//     recorded but never drive adaptation: their amortized figure is not
//     comparable against full batches.
//   - Respect the tail bound, when TargetP99Rounds is set: amortized
//     rounds/op is non-increasing in k, but every op of a chunk waits
//     the chunk's whole window under back-to-back arrivals, so the
//     amortized-optimal k is exactly wrong for tail latency. Each probe
//     window's p99 is computed under that worst case (every op of a
//     chunk observes the chunk's total rounds); a window violating the
//     target halves k and lowers MaxK to the new k — a hard ceiling the
//     climb and every later re-probe stay under — so the search
//     minimizes rounds/op *subject to* the tail bound and settles on a
//     smaller k than the unconstrained search whenever the bound bites.
//     If even MinK violates the bound, the search settles there (the
//     bound is unachievable; the batcher still minimizes what it can).
type AutoBatcher struct {
	apply        func(Batch) BatchStats
	applyOps     func([]Op) (Results, MixedStats)
	capWords     int
	minK         int
	maxK         int
	margin       float64
	probeBatches int
	reprobeEvery int
	targetP99    int

	k        int
	dir      int     // +1 probing upward, 0 settled at the knee
	bestK    int     // k of the best window so far, the settle target
	bestA    float64 // best windowed amortized rounds/update (<0: none yet)
	strikes  int     // consecutive windows measurably worse than bestA
	warmup   int     // full batches still to discard before the search starts
	settled  int     // full batches applied since the knee settled
	capBound bool    // settled by the word cap: never re-probe upward

	tailInfeasible bool // tail bound violated at MinK: settled for good
	tailViolations int  // probe windows whose p99 exceeded TargetP99Rounds

	// accumulators of the in-progress probe window at the current k
	winRounds, winUpdates, winBatches int
	winSamples                        []chunkSample // per-chunk (rounds, units), for the tail bound

	buf     []Op
	history []BatchStats
	mixed   []MixedStats // mixed-mode counterpart of history, index-aligned
	ks      []int        // chunk size used for each recorded batch
}

// AutoBatcherConfig configures NewAutoBatcher. Apply is required; zero
// values elsewhere pick the documented defaults.
type AutoBatcherConfig struct {
	// Apply runs one batch and returns its shared-window accounting —
	// typically the ApplyBatch method of a structure in this package.
	// Exactly one of Apply and ApplyOps must be set.
	Apply func(Batch) BatchStats
	// ApplyOps runs one mixed op chunk and returns its answers and mixed
	// accounting — typically the Apply method of a Pipeline. Setting it
	// makes the batcher accept queries (PushOp/RunOps) and size k on the
	// amortized rounds per *op*.
	ApplyOps func([]Op) (Results, MixedStats)
	// CapWords is the cluster-wide per-round word budget (naturally µ·S);
	// a batch observing MaxWords above it forces k to halve. 0 disables
	// cap feedback.
	CapWords int
	// StartK (default 8) is the initial chunk size; MinK (default 1) and
	// MaxK (default 1024) clamp the search.
	StartK, MinK, MaxK int
	// Margin (default 0.05) is the relative amortized-rounds worsening that
	// counts as a strike: a window worse than the best seen by more than
	// Margin re-measures, and two strikes in a row settle the search at the
	// best-measured k.
	Margin float64
	// ProbeBatches (default 3) is how many full batches each k is measured
	// over before the knee search judges it; larger windows smooth out
	// batch-to-batch workload variance at the cost of a slower search.
	ProbeBatches int
	// WarmupBatches is how many opening full batches to apply without
	// feeding the search (the empty-structure transient). 0 picks the
	// default (ProbeBatches); negative disables the warmup.
	WarmupBatches int
	// ReprobeEvery re-opens the knee search after this many settled full
	// batches, so long-lived streams track workload drift (see the policy
	// comment). 0 picks the default (32); negative disables re-probing.
	ReprobeEvery int
	// TargetP99Rounds, when positive, constrains the knee search to
	// chunk sizes whose worst-case 99th-percentile rounds-from-arrival
	// stays at or under this bound (see the policy comment): minimize
	// rounds/op subject to the tail bound. 0 disables the constraint.
	TargetP99Rounds int
}

// chunkSample is one full chunk's contribution to a probe window's tail
// estimate: units ops that each observed the chunk's rounds end to end.
type chunkSample struct{ rounds, units int }

// NewAutoBatcher builds the driver. It panics if cfg.Apply is nil or the
// clamps are inconsistent.
func NewAutoBatcher(cfg AutoBatcherConfig) *AutoBatcher {
	if (cfg.Apply == nil) == (cfg.ApplyOps == nil) {
		panic("dmpc: AutoBatcher needs exactly one of Apply and ApplyOps")
	}
	ab := &AutoBatcher{
		apply:        cfg.Apply,
		applyOps:     cfg.ApplyOps,
		capWords:     cfg.CapWords,
		minK:         cfg.MinK,
		maxK:         cfg.MaxK,
		margin:       cfg.Margin,
		probeBatches: cfg.ProbeBatches,
		targetP99:    cfg.TargetP99Rounds,
		dir:          +1,
		bestA:        -1,
	}
	if ab.targetP99 < 0 {
		ab.targetP99 = 0
	}
	if ab.minK < 1 {
		ab.minK = 1
	}
	if ab.maxK < 1 {
		ab.maxK = 1024
	}
	if ab.maxK < ab.minK {
		panic("dmpc: AutoBatcher MaxK below MinK")
	}
	if ab.margin <= 0 {
		ab.margin = 0.05
	}
	if ab.probeBatches < 1 {
		ab.probeBatches = 3
	}
	ab.k = cfg.StartK
	if ab.k < 1 {
		ab.k = 8
	}
	ab.k = ab.clamp(ab.k)
	ab.bestK = ab.k
	ab.warmup = cfg.WarmupBatches
	if ab.warmup == 0 {
		ab.warmup = ab.probeBatches
	}
	if ab.warmup < 0 {
		ab.warmup = 0
	}
	ab.reprobeEvery = cfg.ReprobeEvery
	if ab.reprobeEvery == 0 {
		ab.reprobeEvery = 32
	}
	if ab.reprobeEvery < 0 {
		ab.reprobeEvery = 0
	}
	return ab
}

func (ab *AutoBatcher) clamp(k int) int {
	if k < ab.minK {
		return ab.minK
	}
	if k > ab.maxK {
		return ab.maxK
	}
	return k
}

// K returns the chunk size the next batch will use.
func (ab *AutoBatcher) K() int { return ab.k }

// TailViolations counts the completed probe windows whose worst-case p99
// rounds exceeded TargetP99Rounds. A nonzero count with a settled small k
// means the bound actively shaped the search; see TailInfeasible for the
// case where even MinK cannot meet it.
func (ab *AutoBatcher) TailViolations() int { return ab.tailViolations }

// TailInfeasible reports that a probe window violated TargetP99Rounds at
// k = MinK: the bound is unachievable for this workload, and the search
// has settled terminally at MinK (no re-probe will re-open it) rather
// than looping halve/climb around a violation it cannot shed.
func (ab *AutoBatcher) TailInfeasible() bool { return ab.tailInfeasible }

// History returns the accounting of every batch applied so far, and Ks the
// chunk size each of those batches was scheduled at. In mixed mode each
// entry is the corresponding mixed window's update half; MixedHistory has
// the full windows.
func (ab *AutoBatcher) History() []BatchStats { return ab.history }

// MixedHistory returns the mixed accounting of every chunk applied through
// ApplyOps, index-aligned with History and Ks. Nil in update-only mode.
func (ab *AutoBatcher) MixedHistory() []MixedStats { return ab.mixed }

// Ks returns the chunk size used for each recorded batch, index-aligned
// with History.
func (ab *AutoBatcher) Ks() []int { return ab.ks }

// Push buffers one update, applying a chunk when the buffer reaches K. It
// returns the chunk's update-half accounting and true when one was
// applied. (In mixed mode, PushOp additionally returns the answers.)
func (ab *AutoBatcher) Push(up Update) (BatchStats, bool) {
	_, st, ok := ab.PushOp(OpOf(up))
	return st, ok
}

// PushOp buffers one op (update or query; queries need ApplyOps mode),
// applying a chunk when the buffer reaches K. It returns the answers to
// the chunk's queries, the update half's accounting, and true when a
// chunk was applied.
func (ab *AutoBatcher) PushOp(op Op) (Results, BatchStats, bool) {
	if op.IsQuery() && ab.applyOps == nil {
		panic("dmpc: AutoBatcher built with Apply cannot ingest queries (set ApplyOps)")
	}
	ab.buf = append(ab.buf, op)
	if len(ab.buf) < ab.k {
		return nil, BatchStats{}, false
	}
	res, st := ab.flush(true)
	return res, st, true
}

// Flush applies whatever the buffer holds. It reports false if the buffer
// was empty. A flushed buffer is always a partial chunk — Push applies the
// chunk the moment the buffer reaches K — so Flush never drives adaptation.
// Flush has no way to return query answers, so it panics if the buffer
// holds any (they would be silently lost); drain mixed tails with
// FlushOps instead.
func (ab *AutoBatcher) Flush() (BatchStats, bool) {
	for _, op := range ab.buf {
		if op.IsQuery() {
			panic("dmpc: AutoBatcher.Flush would discard buffered query answers (use FlushOps)")
		}
	}
	_, st, ok := ab.FlushOps()
	return st, ok
}

// FlushOps applies whatever the buffer holds, returning the answers to
// the flushed chunk's queries alongside the update half's accounting. It
// reports false if the buffer was empty, and like Flush never drives
// adaptation.
func (ab *AutoBatcher) FlushOps() (Results, BatchStats, bool) {
	if len(ab.buf) == 0 {
		return nil, BatchStats{}, false
	}
	res, st := ab.flush(false)
	return res, st, true
}

// Run pushes the whole update stream and flushes the tail, returning the
// accounting of every chunk applied.
func (ab *AutoBatcher) Run(updates []Update) []BatchStats {
	start := len(ab.history)
	for _, up := range updates {
		ab.Push(up)
	}
	ab.Flush()
	return ab.history[start:]
}

// RunOps pushes a whole mixed op stream and flushes the tail, returning
// every answer in stream order (needs ApplyOps mode).
func (ab *AutoBatcher) RunOps(ops []Op) Results {
	var out Results
	for _, op := range ops {
		res, _, _ := ab.PushOp(op)
		out = append(out, res...)
	}
	res, _, _ := ab.FlushOps()
	return append(out, res...)
}

// ApplyChunk applies one externally-formed chunk through the batcher —
// the entry the streaming Ingestor flushes through: the Ingestor owns
// the buffer (it cuts chunks on conflict, age and k), while the batcher
// still records every chunk and adapts K on the full ones. full must be
// true exactly when the chunk was cut by reaching K; chunks cut for any
// other reason never drive adaptation, just as a partial Flush never
// does. ApplyChunk requires ApplyOps mode and must not be interleaved
// with a non-empty Push buffer (it panics on either misuse).
func (ab *AutoBatcher) ApplyChunk(ops []Op, full bool) (Results, MixedStats) {
	if ab.applyOps == nil {
		panic("dmpc: AutoBatcher.ApplyChunk needs ApplyOps mode")
	}
	if len(ab.buf) > 0 {
		panic("dmpc: AutoBatcher.ApplyChunk with ops still buffered by Push")
	}
	if len(ops) == 0 {
		return nil, MixedStats{}
	}
	ab.buf = append(ab.buf, ops...)
	res, _ := ab.flush(full)
	return res, ab.mixed[len(ab.mixed)-1]
}

func (ab *AutoBatcher) flush(full bool) (Results, BatchStats) {
	chunk := append([]Op(nil), ab.buf...)
	ab.buf = ab.buf[:0]
	if ab.applyOps != nil {
		res, st := ab.applyOps(chunk)
		ab.mixed = append(ab.mixed, st)
		ab.history = append(ab.history, st.Updates)
		ab.ks = append(ab.ks, ab.k)
		if full {
			maxWords := st.Updates.MaxWords
			if st.Queries.MaxWords > maxWords {
				maxWords = st.Queries.MaxWords
			}
			ab.adapt(st.Rounds(), st.Ops, maxWords)
		}
		return res, st.Updates
	}
	batch := make(Batch, len(chunk))
	for i, op := range chunk {
		batch[i] = op.Update()
	}
	st := ab.apply(batch)
	ab.history = append(ab.history, st)
	ab.ks = append(ab.ks, ab.k)
	if full {
		ab.adapt(st.Rounds, st.Updates, st.MaxWords)
	}
	return nil, st
}

// adapt folds one full chunk (rounds over units ops/updates, with the
// peak round's words) into the current probe window and, when the window
// is complete, runs the knee-search step on the windowed amortized
// rounds per unit.
func (ab *AutoBatcher) adapt(rounds, units, maxWords int) {
	if ab.capWords > 0 && maxWords > ab.capWords {
		// The S cap binds before the round curve does: back off
		// immediately (discarding the in-progress window), stop probing
		// upward and never re-probe — growth from here would walk back
		// into the cap by design.
		ab.k = ab.clamp(ab.k / 2)
		ab.bestK = ab.k
		ab.dir = 0
		ab.capBound = true
		ab.winRounds, ab.winUpdates, ab.winBatches = 0, 0, 0
		ab.winSamples = ab.winSamples[:0]
		return
	}
	if ab.dir == 0 {
		if ab.reprobeEvery == 0 || ab.capBound || ab.tailInfeasible {
			// Settled for good: nothing left to measure. The tail-
			// infeasible case matters here — re-opening the climb would
			// double k off MinK, violate the bound again, and halve back,
			// looping the violation every re-probe period on purpose.
			return
		}
		ab.settled++
		if ab.settled < ab.reprobeEvery {
			return
		}
		// Periodic re-probe: step one notch below the settled knee,
		// discard the stale baseline, and run the climb again so the
		// search can follow workload drift in either direction.
		ab.settled = 0
		ab.k = ab.clamp(ab.k / 2)
		ab.bestK, ab.bestA = ab.k, -1
		ab.strikes = 0
		ab.dir = +1
		return
	}
	if ab.warmup > 0 {
		ab.warmup--
		return // empty-structure transient: apply, don't measure
	}
	ab.winRounds += rounds
	ab.winUpdates += units
	ab.winSamples = append(ab.winSamples, chunkSample{rounds: rounds, units: units})
	ab.winBatches++
	if ab.winBatches < ab.probeBatches {
		return // window still filling
	}
	a := float64(ab.winRounds) / float64(ab.winUpdates)
	tailBad := ab.targetP99 > 0 && ab.windowP99() > int64(ab.targetP99)
	ab.winRounds, ab.winUpdates, ab.winBatches = 0, 0, 0
	ab.winSamples = ab.winSamples[:0]
	if tailBad {
		// The tail bound binds at this k, whatever the amortized trend
		// said: halve k and make the new k a hard ceiling, so neither
		// the climb nor a later re-probe returns above it. A best window
		// measured beyond the ceiling described an infeasible k — drop
		// it. At MinK there is nothing left to shed: settle terminally
		// (the bound is unachievable — TailInfeasible reports it) rather
		// than halving MaxK below MinK or letting a re-probe climb back
		// into the violation.
		ab.tailViolations++
		if ab.k <= ab.minK {
			ab.k = ab.minK
			ab.bestK = ab.minK
			ab.dir = 0
			ab.tailInfeasible = true
			return
		}
		ab.maxK = ab.clamp(ab.k / 2)
		ab.k = ab.maxK
		if ab.bestK > ab.maxK {
			ab.bestK, ab.bestA = ab.k, -1
		}
		ab.strikes = 0
		return
	}
	if ab.bestA < 0 || a <= ab.bestA*(1+ab.margin) {
		// First window, or this k is not measurably worse than the best
		// seen: record it if it is the new best, and keep growing unless
		// the clamp already stops us (then settle where we are).
		ab.strikes = 0
		if ab.bestA < 0 || a < ab.bestA {
			ab.bestA, ab.bestK = a, ab.k
		}
		if ab.k == ab.maxK {
			ab.dir = 0
			return
		}
		ab.k = ab.clamp(ab.k * 2)
		return
	}
	// Measurably worse than the best window. One strike re-measures at the
	// same k (segment noise); the second in a row is genuine saturation —
	// settle at the best-measured k.
	ab.strikes++
	if ab.strikes >= 2 {
		ab.k = ab.bestK
		ab.dir = 0
	}
}

// windowP99 estimates the in-progress probe window's worst-case
// 99th-percentile rounds-from-arrival: under back-to-back arrivals every
// op of a chunk waits the chunk's whole window, so each recorded chunk
// contributes units observations of its total rounds, and the weighted
// nearest-rank p99 over them is the tail the TargetP99Rounds constraint
// gates.
func (ab *AutoBatcher) windowP99() int64 {
	total := 0
	for _, s := range ab.winSamples {
		total += s.units
	}
	if total == 0 {
		return 0
	}
	samples := append([]chunkSample(nil), ab.winSamples...)
	sort.Slice(samples, func(i, j int) bool { return samples[i].rounds < samples[j].rounds })
	rank := int(math.Ceil(0.99 * float64(total)))
	cum := 0
	for _, s := range samples {
		cum += s.units
		if cum >= rank {
			return int64(s.rounds)
		}
	}
	return int64(samples[len(samples)-1].rounds)
}
