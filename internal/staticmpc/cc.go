package staticmpc

import (
	"dmpc/internal/graph"
	"dmpc/internal/mpc"
)

// Connected components by min-label propagation with pointer doubling.
// Every iteration costs two cluster rounds: machines announce the labels of
// their vertices to neighbor owners and issue doubling queries to the
// owners of current labels; the next round absorbs announcements and
// answers queries. Labels converge to the component minimum in O(log n)
// iterations on paths (doubling) and O(diameter) at worst without it.

type ccMsg struct {
	kind int32 // 0 announce, 1 query, 2 answer
	a, b int32 // announce: (vertex, label); query: (target, asker); answer: (asker, label)
}

type ccMachine struct {
	id      int
	layout  Layout
	verts   []int32           // owned vertices
	adj     map[int32][]int32 // owned vertex -> neighbors
	label   map[int32]int32   // owned vertex -> current label
	changed bool
	active  bool // participate in announce phase this tick
}

func (m *ccMachine) MemWords() int {
	w := 2 * len(m.label)
	for _, nb := range m.adj {
		w += len(nb)
	}
	return w
}

func (m *ccMachine) HandleRound(ctx *mpc.Ctx, inbox []mpc.Message) {
	// Absorb incoming messages first.
	for _, msg := range inbox {
		cm, ok := msg.Payload.(ccMsg)
		if !ok {
			continue
		}
		switch cm.kind {
		case 0, 2: // announce or doubling answer: candidate label for cm.a
			if cur, mine := m.label[cm.a]; mine && cm.b < cur {
				m.label[cm.a] = cm.b
				m.changed = true
			}
		case 1: // query: reply with label of cm.a to the asker's owner
			asker := cm.b
			ctx.Send(m.layout.Owner(int(asker)),
				ccMsg{kind: 2, a: asker, b: m.label[cm.a]}, 3)
		}
	}
	if !m.active {
		return
	}
	m.active = false
	// Announce phase: labels to neighbor owners, doubling queries to label
	// owners.
	for _, v := range m.verts {
		lv := m.label[v]
		for _, w := range m.adj[v] {
			ctx.Send(m.layout.Owner(int(w)), ccMsg{kind: 0, a: w, b: lv}, 3)
		}
		if lv != v {
			ctx.Send(m.layout.Owner(int(lv)), ccMsg{kind: 1, a: lv, b: v}, 3)
		}
	}
}

// ConnectedComponents runs the static CC baseline on g over a cluster with
// mu machines and memWords memory per machine (pass 0,0 for automatic
// sizing). It returns the component labeling and the run's accounting.
func ConnectedComponents(g *graph.Graph, mu, memWords int) ([]int, Result) {
	n := g.N()
	cfg := mpc.Auto(n+2*g.M(), 4)
	if mu > 0 {
		cfg.Machines = mu
	}
	if memWords > 0 {
		cfg.MemWords = memWords
	}
	cl := mpc.NewCluster(cfg)
	layout := Layout{N: n, Mu: cfg.Machines}
	machines := make([]*ccMachine, cfg.Machines)
	for i := range machines {
		machines[i] = &ccMachine{
			id: i, layout: layout,
			adj:   make(map[int32][]int32),
			label: make(map[int32]int32),
		}
		cl.SetMachine(i, machines[i])
	}
	for v := 0; v < n; v++ {
		mach := machines[layout.Owner(v)]
		mach.verts = append(mach.verts, int32(v))
		mach.label[int32(v)] = int32(v)
		for _, w := range g.Neighbors(v) {
			mach.adj[int32(v)] = append(mach.adj[int32(v)], int32(w))
		}
	}

	cl.BeginUpdate()
	for iter := 0; iter < 4*bitsFor(n)+8; iter++ {
		for i := range machines {
			machines[i].changed = false
			machines[i].active = true
			cl.Schedule(i)
		}
		cl.Round() // announce + query
		cl.Round() // absorb + answer
		cl.Round() // absorb answers
		anyChanged := false
		for i := range machines {
			if machines[i].changed {
				anyChanged = true
			}
		}
		if !anyChanged {
			break
		}
	}
	stats := cl.EndUpdate()

	labels := make([]int, n)
	for _, m := range machines {
		for v, l := range m.label {
			labels[v] = int(l)
		}
	}
	return labels, resultFrom(stats)
}

func bitsFor(n int) int {
	b := 1
	for 1<<b < n {
		b++
	}
	return b
}
