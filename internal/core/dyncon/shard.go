package dyncon

import (
	"fmt"
	"sort"

	"dmpc/internal/etour"
	"dmpc/internal/graph"
	"dmpc/internal/mpc"
	"dmpc/internal/treedp"
)

// Message kinds of the §5 protocol.
type kind int32

const (
	kUpdate      kind = iota // external update, delivered to owner(U)
	kInfoReq                 // orchestrator -> owner(v): report comp, f, l
	kInfoRep                 // owner -> orchestrator
	kSizeReq                 // orchestrator -> registry(comp)
	kSizeRep                 // registry -> orchestrator
	kDoLink                  // broadcast: apply link shifts, add tree record
	kAddNonTree              // orchestrator -> owners: store a non-tree record
	kDelNonTree              // orchestrator -> owner: drop a non-tree record
	kDoCut                   // broadcast: apply cut shifts, report candidates
	kCandidate               // machine -> orchestrator: replacement candidate
	kPathMaxReq              // broadcast (MST): report max tree edge on path
	kPathMaxRep              // machine -> orchestrator
	kQuery                   // external connectivity query at owner(u)
	kQueryFwd                // owner(u) -> owner(v)
	kCompQuery               // external component query at owner(v)
	kIntervalReq             // orchestrator -> record owner: child interval of a tree edge
	kIntervalRep
	kSetWeight // external vertex-weight write at owner(v) (tree DP)
	kDPSubtree // external subtree-sum query at owner(u)
	kDPPath    // external path-sum query at owner(u)
	kDPTop     // external tree-top query at owner(u)
	// kDPInfoReq mirrors kInfoReq for the DP orchestrations, which key
	// their pending state by query id — numerically overlapping the
	// update seq space — so the reply must route to qpend, never pend.
	kDPInfoReq
	kDPInfoRep
	kDPSumReq  // broadcast: sum weight records matching Span in Comp
	kDPSumRep  // machine -> DP orchestrator: one partial sum
	kDPPathReq // broadcast: sum weights on the au..av tree path in Comp
	kDPTopReq  // broadcast: local weight argmax over Comp's owned vertices
	kDPTopRep  // machine -> DP orchestrator: local argmax candidate
)

// wire is the single message payload of the protocol; Kind selects which
// fields are meaningful. Words charged per message reflect the populated
// field count, all O(1).
type wire struct {
	Kind        kind
	U, V        int32
	W           int64
	Seq         int64
	Comp, Comp2 int64
	F, L        int
	Size        int
	Q, Ly       int
	Fy, LyCut   int // cut interval
	TourLen     int
	SubSize     int
	RestSize    int
	Shifts      []etour.Shift
	Pos         etour.EdgePos
	Span        treedp.Span
	AnchorU     int
	AnchorV     int
	Promote     bool
	Convert     bool // cut converts the edge to non-tree (MST swap)
	NoReplace   bool
	ReplyTo     int32
	Found       bool
	Flag        bool
}

func (w wire) words() int { return 16 + 5*len(w.Shifts) }

// treeRec is one tree edge's state: its four tour positions (etour.EdgePos,
// self-describing), the component and the operative weight.
type treeRec struct {
	pos  etour.EdgePos
	comp int64
	w    int64
}

// ntRec is a non-tree edge: one anchor position and component per endpoint.
// Anchors are arbitrary surviving tour appearances of their endpoint; 0
// marks an endpoint that is currently a singleton (only possible while the
// record crosses a fresh cut, and then that endpoint is always a named
// endpoint of the healing link).
type ntRec struct {
	aU, aV int
	cU, cV int64
	w      int64
}

// pending tracks one in-flight orchestration at the coordinator-for-this-
// update (the owner of the update's first endpoint).
type pending struct {
	op    graph.Update
	stage int

	gotU, gotV   bool
	compU, compV int64
	fU, lU       int
	fV, lV       int

	gotSizeU, gotSizeV bool
	sizeU, sizeV       int

	// cut state
	cutEdge  graph.Edge
	cutW     int64
	cutComp  int64
	newComp  int64
	fy, ly   int
	subSize  int
	restSize int
	convert  bool

	// pathmax / candidate collection
	replies   int
	bestFound bool
	bestU     int32
	bestV     int32
	bestW     int64

	// after a swap-cut, link the pending edge
	relinkU, relinkV int32
	relinkW          int64
	relinkPromote    bool
}

const (
	stInfo = iota
	stSizes
	stPathMax
	stInterval
	stSizeForCut
	stCandidates
	stInfoRelink
	stSizeForSwapCut
)

type shard struct {
	id, mu int
	cfg    Config

	verts map[int32]int64
	// compVerts is the inverse of verts — component label -> owned
	// vertices carrying it — so the broadcast relabel loops in onDoLink
	// and onDoCut walk only the touched component instead of scanning
	// every owned vertex (O(n/µ) per machine per broadcast, i.e. O(n)
	// cluster-wide work per update once n reaches 10^5). The index is a
	// runtime cache derived from verts: it never changes messages, stats
	// or MemWords, which charge for the logical state only.
	compVerts    map[int64][]int32
	tree         map[graph.Edge]*treeRec
	nontree      map[graph.Edge]*ntRec
	sizes        map[int64]int
	queryResults map[int64]bool  // connectivity answers, gathered driver-side
	compResults  map[int64]int64 // component answers, gathered driver-side
	pend         map[int64]*pending
	qcomp        map[int64]int64 // in-flight query: seq -> comp(u)

	// Tree-DP state (internal/treedp): one weight record per owned
	// weighted vertex, repaired on every link/cut broadcast; DP query
	// orchestration state and answers, keyed by query id. qpend is
	// deliberately separate from pend: query ids and update seqs are
	// drawn from distinct counters that overlap numerically.
	weights   map[int32]*treedp.Rec
	qpend     map[int64]*dpPending
	dpResults map[int64]int64 // DP answers, gathered driver-side
}

func newShard(id, mu int, cfg Config) *shard {
	return &shard{
		id: id, mu: mu, cfg: cfg,
		verts:        make(map[int32]int64),
		compVerts:    make(map[int64][]int32),
		tree:         make(map[graph.Edge]*treeRec),
		nontree:      make(map[graph.Edge]*ntRec),
		sizes:        make(map[int64]int),
		queryResults: make(map[int64]bool),
		compResults:  make(map[int64]int64),
		pend:         make(map[int64]*pending),
		qcomp:        make(map[int64]int64),
		weights:      make(map[int32]*treedp.Rec),
		qpend:        make(map[int64]*dpPending),
		dpResults:    make(map[int64]int64),
	}
}

func (s *shard) owner(v int32) int         { return int(v) % s.mu }
func (s *shard) registry(comp int64) int32 { return int32(comp % int64(s.mu)) }

func (s *shard) MemWords() int {
	return 2*len(s.verts) + 7*len(s.tree) + 7*len(s.nontree) + 2*len(s.sizes) + 4*len(s.weights)
}

// flOf computes f(v), l(v) from the locally stored tree records — the
// on-demand computation §5 prescribes. Zero values mean singleton.
func (s *shard) flOf(v int32) (f, l int) {
	for e, rec := range s.tree {
		if int32(e.U) != v && int32(e.V) != v {
			continue
		}
		p := posOf(&rec.pos, int(v))
		for _, i := range p {
			if f == 0 || i < f {
				f = i
			}
			if i > l {
				l = i
			}
		}
	}
	return f, l
}

func posOf(e *etour.EdgePos, v int) [2]int {
	if v == e.U {
		return [2]int{e.UV[0], e.VU[1]}
	}
	return [2]int{e.UV[1], e.VU[0]}
}

// applyChain runs the shift list over one position with its component
// label, honoring per-shift component conditioning and relabeling.
func applyChain(shifts []etour.Shift, pos int, comp int64) (int, int64) {
	if pos == 0 {
		return pos, comp // singleton anchors are fixed by named-endpoint rules only
	}
	for _, sh := range shifts {
		if comp != sh.Comp {
			continue
		}
		moved := sh.Moves(pos)
		pos = sh.Apply(pos)
		if moved {
			comp = sh.NewComp
		}
	}
	return pos, comp
}

// applyChainRec shifts all four positions of a tree record. The positions
// of one record always sit on the same side of any cut interval and share
// one component trajectory, so the relabel computed for the first position
// applies to the record.
func applyChainRec(shifts []etour.Shift, rec *treeRec) {
	var c int64
	rec.pos.UV[0], c = applyChain(shifts, rec.pos.UV[0], rec.comp)
	rec.pos.UV[1], _ = applyChain(shifts, rec.pos.UV[1], rec.comp)
	rec.pos.VU[0], _ = applyChain(shifts, rec.pos.VU[0], rec.comp)
	rec.pos.VU[1], _ = applyChain(shifts, rec.pos.VU[1], rec.comp)
	rec.comp = c
}

func (s *shard) HandleRound(ctx *mpc.Ctx, inbox []mpc.Message) {
	for _, m := range inbox {
		w, ok := m.Payload.(wire)
		if !ok {
			continue
		}
		switch w.Kind {
		case kUpdate:
			s.startUpdate(ctx, w)
		case kInfoReq:
			f, l := s.flOf(w.U)
			ctx.Send(int(w.ReplyTo), wire{
				Kind: kInfoRep, U: w.U, Seq: w.Seq,
				Comp: s.verts[w.U], F: f, L: l,
			}, 7)
		case kInfoRep:
			s.onInfo(ctx, w)
		case kSizeReq:
			ctx.Send(int(w.ReplyTo), wire{
				Kind: kSizeRep, Comp: w.Comp, Seq: w.Seq, Size: s.sizes[w.Comp],
			}, 5)
		case kSizeRep:
			s.onSize(ctx, w)
		case kDoLink:
			s.onDoLink(ctx, w)
		case kAddNonTree:
			e := graph.NormEdge(int(w.U), int(w.V))
			au, av, cu, cv := w.AnchorU, w.AnchorV, w.Comp, w.Comp
			if e.U != int(w.U) {
				au, av = av, au
			}
			s.nontree[e] = &ntRec{aU: au, aV: av, cU: cu, cV: cv, w: w.W}
		case kDelNonTree:
			delete(s.nontree, graph.NormEdge(int(w.U), int(w.V)))
		case kDoCut:
			s.onDoCut(ctx, w)
		case kCandidate:
			s.onCandidate(ctx, w)
		case kPathMaxReq:
			s.onPathMaxReq(ctx, w)
		case kPathMaxRep:
			s.onPathMaxRep(ctx, w)
		case kQuery:
			ctx.Send(s.owner(w.V), wire{
				Kind: kQueryFwd, U: w.U, V: w.V, Seq: w.Seq, Comp: s.verts[w.U],
			}, 5)
		case kQueryFwd:
			s.queryResults[w.Seq] = s.verts[w.V] == w.Comp
		case kCompQuery:
			s.compResults[w.Seq] = s.verts[w.V]
		case kIntervalReq:
			s.onIntervalReq(ctx, w)
		case kIntervalRep:
			s.onIntervalRep(ctx, w)
		case kSetWeight:
			s.onSetWeight(w)
		case kDPSubtree:
			s.onDPSubtree(ctx, w)
		case kDPPath:
			s.onDPPath(ctx, w)
		case kDPTop:
			s.onDPTop(ctx, w)
		case kDPInfoReq:
			f, l := s.flOf(w.U)
			ctx.Send(int(w.ReplyTo), wire{
				Kind: kDPInfoRep, U: w.U, Seq: w.Seq,
				Comp: s.verts[w.U], F: f, L: l,
			}, 7)
		case kDPInfoRep:
			s.onDPInfo(ctx, w)
		case kDPSumReq:
			s.onDPSumReq(ctx, w)
		case kDPSumRep:
			s.onDPSumRep(w)
		case kDPPathReq:
			s.onDPPathReq(ctx, w)
		case kDPTopReq:
			s.onDPTopReq(ctx, w)
		case kDPTopRep:
			s.onDPTopRep(w)
		}
	}
}

// startUpdate begins orchestration at the owner of the update's endpoint.
// Deletes are marked by w.Flag.
func (s *shard) startUpdate(ctx *mpc.Ctx, w wire) {
	e := graph.NormEdge(int(w.U), int(w.V))
	if w.U == w.V {
		return
	}
	if !w.Flag {
		// Duplicate check: the orchestrator owns U and hence every record
		// incident to U.
		if _, dup := s.tree[e]; dup {
			return
		}
		if _, dup := s.nontree[e]; dup {
			return
		}
		p := &pending{op: graph.Update{Op: graph.Insert, U: int(w.U), V: int(w.V), W: graph.Weight(w.W)}, stage: stInfo}
		s.pend[w.Seq] = p
		s.sendInfoReqs(ctx, w.Seq, w.U, w.V)
		return
	}
	// Delete.
	if rec, ok := s.nontree[e]; ok {
		_ = rec
		delete(s.nontree, e)
		if s.owner(int32(e.V)) != s.id || s.owner(int32(e.U)) != s.id {
			other := s.owner(int32(e.V))
			if other == s.id {
				other = s.owner(int32(e.U))
			}
			ctx.Send(other, wire{Kind: kDelNonTree, U: int32(e.U), V: int32(e.V)}, 3)
		}
		return
	}
	rec, ok := s.tree[e]
	if !ok {
		return // unknown edge
	}
	// Tree edge: identify the child interval from the inner position pair.
	fy, ly := childInterval(&rec.pos)
	p := &pending{
		op:      graph.Update{Op: graph.Delete, U: int(w.U), V: int(w.V)},
		stage:   stSizeForCut,
		cutEdge: e, cutW: rec.w, cutComp: rec.comp,
		fy: fy, ly: ly,
		newComp: int64(s.cfg.N) + 2*w.Seq,
	}
	s.pend[w.Seq] = p
	ctx.Send(int(s.registry(rec.comp)), wire{
		Kind: kSizeReq, Comp: rec.comp, Seq: w.Seq, ReplyTo: int32(s.id),
	}, 5)
}

// childInterval extracts the child endpoint's [f,l] from an edge record:
// the inner pair of its four positions.
func childInterval(e *etour.EdgePos) (fy, ly int) {
	ps := []int{e.UV[0], e.UV[1], e.VU[0], e.VU[1]}
	sort.Ints(ps)
	return ps[1], ps[2]
}

func (s *shard) sendInfoReqs(ctx *mpc.Ctx, seq int64, u, v int32) {
	ctx.Send(s.owner(u), wire{Kind: kInfoReq, U: u, Seq: seq, ReplyTo: int32(s.id)}, 4)
	ctx.Send(s.owner(v), wire{Kind: kInfoReq, U: v, Seq: seq, ReplyTo: int32(s.id)}, 4)
}

func (s *shard) onInfo(ctx *mpc.Ctx, w wire) {
	p, ok := s.pend[w.Seq]
	if !ok {
		return
	}
	var u, v int32
	if p.stage == stInfoRelink {
		u, v = p.relinkU, p.relinkV
	} else {
		u, v = int32(p.op.U), int32(p.op.V)
	}
	if w.U == u {
		p.gotU, p.compU, p.fU, p.lU = true, w.Comp, w.F, w.L
	}
	if w.U == v {
		p.gotV, p.compV, p.fV, p.lV = true, w.Comp, w.F, w.L
	}
	if !p.gotU || !p.gotV {
		return
	}
	switch p.stage {
	case stInfo:
		if p.compU == p.compV {
			if s.cfg.Mode == MST {
				// Look for a heavier tree edge on the cycle.
				p.stage = stPathMax
				p.replies = 0
				p.bestFound = false
				ctx.Broadcast(wire{
					Kind: kPathMaxReq, Seq: w.Seq, Comp: p.compU,
					F: p.fU, L: p.lU, Fy: p.fV, LyCut: p.lV,
					ReplyTo: int32(s.id),
				}, 9, true)
				return
			}
			s.sendAddNonTree(ctx, int32(p.op.U), int32(p.op.V), int64(p.op.W), p.compU, p.fU, p.fV)
			delete(s.pend, w.Seq)
			return
		}
		p.stage = stSizes
		s.sendSizeReqs(ctx, w.Seq, p.compU, p.compV)
	case stInfoRelink:
		// Sizes of both components are already known from the cut.
		sizeU, sizeV := p.restSize, p.subSize
		if p.compU == p.newComp {
			sizeU, sizeV = p.subSize, p.restSize
		}
		s.broadcastLink(ctx, w.Seq, p.relinkU, p.relinkV, p.relinkW,
			p.compU, p.compV, sizeU, sizeV, p.fU, p.lU, p.fV, p.lV, p.relinkPromote)
		delete(s.pend, w.Seq)
	}
}

func (s *shard) sendSizeReqs(ctx *mpc.Ctx, seq int64, compU, compV int64) {
	ctx.Send(int(s.registry(compU)), wire{Kind: kSizeReq, Comp: compU, Seq: seq, ReplyTo: int32(s.id)}, 5)
	ctx.Send(int(s.registry(compV)), wire{Kind: kSizeReq, Comp: compV, Seq: seq, ReplyTo: int32(s.id)}, 5)
}

func (s *shard) sendAddNonTree(ctx *mpc.Ctx, u, v int32, w int64, comp int64, au, av int) {
	msg := wire{Kind: kAddNonTree, U: u, V: v, W: w, Comp: comp, AnchorU: au, AnchorV: av}
	ctx.Send(s.owner(u), msg, 8)
	if s.owner(v) != s.owner(u) {
		ctx.Send(s.owner(v), msg, 8)
	}
}

func (s *shard) onSize(ctx *mpc.Ctx, w wire) {
	p, ok := s.pend[w.Seq]
	if !ok {
		return
	}
	switch p.stage {
	case stSizes:
		if w.Comp == p.compU {
			p.gotSizeU, p.sizeU = true, w.Size
		}
		if w.Comp == p.compV {
			p.gotSizeV, p.sizeV = true, w.Size
		}
		if !p.gotSizeU || !p.gotSizeV {
			return
		}
		s.broadcastLink(ctx, w.Seq, int32(p.op.U), int32(p.op.V), int64(p.op.W),
			p.compU, p.compV, p.sizeU, p.sizeV, p.fU, p.lU, p.fV, p.lV, false)
		delete(s.pend, w.Seq)
	case stSizeForCut, stSizeForSwapCut:
		size := w.Size
		L := 4 * (size - 1)
		p.subSize = (p.ly-p.fy-1)/4 + 1
		p.restSize = size - p.subSize
		shifts := []etour.Shift{
			{Kind: etour.ShiftCutRepair, Comp: p.cutComp, NewComp: p.newComp, A: p.fy, B: p.ly, C: L},
			{Kind: etour.ShiftCutSub, Comp: p.cutComp, NewComp: p.newComp, A: p.fy, B: p.ly},
			{Kind: etour.ShiftCutRest, Comp: p.cutComp, NewComp: p.cutComp, A: p.fy, B: p.ly},
		}
		p.replies = 0
		p.bestFound = false
		if p.stage == stSizeForCut {
			p.stage = stCandidates
		} else {
			p.stage = stCandidates // swap cut also collects (empty) candidate replies
		}
		ctx.Broadcast(wire{
			Kind: kDoCut, Seq: w.Seq,
			U: int32(p.cutEdge.U), V: int32(p.cutEdge.V), W: p.cutW,
			Comp: p.cutComp, Comp2: p.newComp,
			Fy: p.fy, LyCut: p.ly, TourLen: L,
			SubSize: p.subSize, RestSize: p.restSize,
			Shifts:  shifts,
			Convert: p.convert, NoReplace: p.convert,
			ReplyTo: int32(s.id),
		}, wire{Shifts: shifts}.words(), true)
	}
}

// onDoCut applies a cut broadcast to the local shard and reports a
// replacement candidate (or the lack of one) to the orchestrator.
func (s *shard) onDoCut(ctx *mpc.Ctx, w wire) {
	e := graph.NormEdge(int(w.U), int(w.V))
	fy, ly := w.Fy, w.LyCut
	restSingleton := fy == 2 && ly == w.TourLen-1
	compOld, compNew := w.Comp, w.Comp2

	var captured *treeRec
	if rec, ok := s.tree[e]; ok {
		captured = rec
		delete(s.tree, e)
	}

	// Tree records: all four positions shift together.
	for _, rec := range s.tree {
		applyChainRec(w.Shifts, rec)
	}
	// Non-tree anchors: per anchor.
	for _, rec := range s.nontree {
		rec.aU, rec.cU = applyChain(w.Shifts, rec.aU, rec.cU)
		rec.aV, rec.cV = applyChain(w.Shifts, rec.aV, rec.cV)
	}
	// Weight records repair under the identical rule: the cut-repair
	// shift remaps anchors sitting on the four removed positions onto
	// surviving appearances (or 0 + the fresh component for a cut-off
	// singleton), and the sub/rest shifts renumber the rest.
	for _, rec := range s.weights {
		rec.ApplyShifts(w.Shifts)
	}
	// Named endpoints: the child (whose interval was [fy,ly] pre-cut) is
	// the endpoint appearing at fy on the captured record. Resolved before
	// the relabel pass so the index filter can route it directly.
	childV := int32(-1)
	child, parent := int(w.U), int(w.V)
	if captured != nil {
		pu := posOf(&captured.pos, int(w.U))
		if pu[0] != fy && pu[1] != fy {
			child, parent = int(w.V), int(w.U)
		}
		if s.owner(int32(child)) == s.id {
			childV = int32(child)
		}
	}
	// Vertex labels: an owned vertex adopts the component of any of its
	// incident (already shifted) tree records; the named child endpoint is
	// handled explicitly since it may have lost its only record. Only
	// vertices labeled compOld can move, so the pass walks the compVerts
	// inverse index instead of every owned vertex; all tour appearances of
	// a vertex land on one side of the cut, so its incident records agree
	// on the adopted label exactly as the old full scan did.
	if members := s.compVerts[compOld]; len(members) > 0 {
		vcomp := make(map[int32]int64, 2*len(s.tree))
		for ge, rec := range s.tree {
			vcomp[int32(ge.U)] = rec.comp
			vcomp[int32(ge.V)] = rec.comp
		}
		kept := members[:0]
		for _, v := range members {
			if v == childV {
				continue // labeled compNew below
			}
			if c, ok := vcomp[v]; ok && c != compOld {
				s.verts[v] = c
				s.compVerts[c] = append(s.compVerts[c], v)
			} else {
				kept = append(kept, v)
			}
		}
		if len(kept) == 0 {
			delete(s.compVerts, compOld)
		} else {
			s.compVerts[compOld] = kept
		}
	}
	if childV >= 0 {
		s.verts[childV] = compNew
		s.compVerts[compNew] = append(s.compVerts[compNew], childV)
	}
	if captured != nil {
		if w.Convert && (s.owner(int32(e.U)) == s.id || s.owner(int32(e.V)) == s.id) {
			// Re-add the evicted MST edge as a non-tree record with
			// repaired anchors; the repair shift handles the singleton
			// endpoints (position 0, fresh component) uniformly.
			pU := posOf(&captured.pos, e.U)[0]
			pV := posOf(&captured.pos, e.V)[0]
			aU, cU := applyChain(w.Shifts, pU, compOld)
			aV, cV := applyChain(w.Shifts, pV, compOld)
			if restSingleton {
				if e.U == parent {
					aU, cU = 0, compOld
				} else {
					aV, cV = 0, compOld
				}
			}
			s.nontree[e] = &ntRec{aU: aU, aV: aV, cU: cU, cV: cV, w: w.W}
		}
	}
	// Registry updates.
	if s.registry(compOld) == int32(s.id) {
		s.sizes[compOld] = w.RestSize
	}
	if s.registry(compNew) == int32(s.id) {
		s.sizes[compNew] = w.SubSize
	}

	// Candidate scan.
	reply := wire{Kind: kCandidate, Seq: w.Seq, Found: false}
	if !w.NoReplace {
		for ge, rec := range s.nontree {
			crossing := (rec.cU == compOld && rec.cV == compNew) ||
				(rec.cU == compNew && rec.cV == compOld)
			if !crossing {
				continue
			}
			if !reply.Found || betterCandidate(s.cfg.Mode, rec.w, int32(ge.U), int32(ge.V), reply.W, reply.U, reply.V) {
				reply.Found = true
				reply.U, reply.V, reply.W = int32(ge.U), int32(ge.V), rec.w
			}
		}
	}
	ctx.Send(int(w.ReplyTo), reply, 6)
}

// betterCandidate orders replacement candidates: min weight first in MST
// mode, then lexicographic ids for determinism.
func betterCandidate(mode Mode, w int64, u, v int32, bw int64, bu, bv int32) bool {
	if mode == MST && w != bw {
		return w < bw
	}
	if u != bu {
		return u < bu
	}
	return v < bv
}

func (s *shard) onCandidate(ctx *mpc.Ctx, w wire) {
	p, ok := s.pend[w.Seq]
	if !ok || p.stage != stCandidates {
		return
	}
	p.replies++
	if w.Found && (!p.bestFound || betterCandidate(s.cfg.Mode, w.W, w.U, w.V, p.bestW, p.bestU, p.bestV)) {
		p.bestFound = true
		p.bestU, p.bestV, p.bestW = w.U, w.V, w.W
	}
	if p.replies < s.mu {
		return
	}
	if p.convert {
		// Swap cut complete: now link the originally inserted edge.
		p.stage = stInfoRelink
		p.relinkU, p.relinkV = int32(p.op.U), int32(p.op.V)
		p.relinkW = int64(p.op.W)
		p.relinkPromote = false
		p.gotU, p.gotV = false, false
		s.sendInfoReqs(ctx, w.Seq, p.relinkU, p.relinkV)
		return
	}
	if !p.bestFound {
		delete(s.pend, w.Seq) // components stay split
		return
	}
	// Promote the winning non-tree edge to a tree edge via a link.
	p.stage = stInfoRelink
	p.relinkU, p.relinkV = p.bestU, p.bestV
	p.relinkW = p.bestW
	p.relinkPromote = true
	p.gotU, p.gotV = false, false
	s.sendInfoReqs(ctx, w.Seq, p.bestU, p.bestV)
}

func (s *shard) onPathMaxReq(ctx *mpc.Ctx, w wire) {
	// Broadcast fields: F,L = f(x),l(x); Fy,LyCut = f(y),l(y); Comp.
	fx, fy := w.F, w.Fy
	reply := wire{Kind: kPathMaxRep, Seq: w.Seq, Found: false}
	for ge, rec := range s.tree {
		if rec.comp != w.Comp {
			continue
		}
		cf, cl := childInterval(&rec.pos)
		onPath := (cf <= fx && fx <= cl) != (cf <= fy && fy <= cl)
		if !onPath {
			continue
		}
		if !reply.Found || rec.w > reply.W ||
			(rec.w == reply.W && (int32(ge.U) < reply.U || (int32(ge.U) == reply.U && int32(ge.V) < reply.V))) {
			reply.Found = true
			reply.U, reply.V, reply.W = int32(ge.U), int32(ge.V), rec.w
		}
	}
	ctx.Send(int(w.ReplyTo), reply, 6)
}

func (s *shard) onPathMaxRep(ctx *mpc.Ctx, w wire) {
	p, ok := s.pend[w.Seq]
	if !ok || p.stage != stPathMax {
		return
	}
	p.replies++
	if w.Found && (!p.bestFound || w.W > p.bestW ||
		(w.W == p.bestW && (w.U < p.bestU || (w.U == p.bestU && w.V < p.bestV)))) {
		p.bestFound = true
		p.bestU, p.bestV, p.bestW = w.U, w.V, w.W
	}
	if p.replies < s.mu {
		return
	}
	if !p.bestFound || p.bestW <= int64(p.op.W) {
		// Keep the forest; the new edge becomes non-tree.
		s.sendAddNonTree(ctx, int32(p.op.U), int32(p.op.V), int64(p.op.W), p.compU, p.fU, p.fV)
		delete(s.pend, w.Seq)
		return
	}
	// Swap: cut the heaviest cycle edge (converting it to non-tree), then
	// link the new edge. The child interval lives on the evicted edge's
	// record at its owner; fetch it, then the component size.
	p.convert = true
	p.cutEdge = graph.NormEdge(int(p.bestU), int(p.bestV))
	p.cutW = p.bestW
	p.cutComp = p.compU
	p.newComp = int64(s.cfg.N) + 2*w.Seq + 1
	p.stage = stInterval
	ctx.Send(s.owner(p.bestU), wire{
		Kind: kIntervalReq, U: p.bestU, V: p.bestV, Seq: w.Seq, ReplyTo: int32(s.id),
	}, 5)
}

func (s *shard) onIntervalReq(ctx *mpc.Ctx, w wire) {
	e := graph.NormEdge(int(w.U), int(w.V))
	rec, ok := s.tree[e]
	if !ok {
		panic(fmt.Sprintf("dyncon: interval request for unknown tree edge %v at machine %d", e, s.id))
	}
	fy, ly := childInterval(&rec.pos)
	ctx.Send(int(w.ReplyTo), wire{Kind: kIntervalRep, Seq: w.Seq, Fy: fy, LyCut: ly}, 5)
}

func (s *shard) onIntervalRep(ctx *mpc.Ctx, w wire) {
	p, ok := s.pend[w.Seq]
	if !ok || p.stage != stInterval {
		return
	}
	p.fy, p.ly = w.Fy, w.LyCut
	p.stage = stSizeForSwapCut
	ctx.Send(int(s.registry(p.cutComp)), wire{
		Kind: kSizeReq, Comp: p.cutComp, Seq: w.Seq, ReplyTo: int32(s.id),
	}, 5)
}

// broadcastLink computes the §5 insert plan (reroot of the guest tree,
// host tail shift, guest splice shift, the new edge's four positions) and
// broadcasts it. All parameters derive from the endpoint f/l values and
// component sizes, so one broadcast suffices.
func (s *shard) broadcastLink(ctx *mpc.Ctx, seq int64, x, y int32, w int64,
	compX, compY int64, sizeX, sizeY int, fx, lx, fy, ly int, promote bool) {

	var shifts []etour.Shift
	if sizeY > 1 && fy != 1 {
		shifts = append(shifts, etour.Shift{
			Kind: etour.ShiftReroot, Comp: compY, NewComp: compY,
			A: 4 * (sizeY - 1), B: ly,
		})
	}
	q := 0
	switch {
	case sizeX == 1:
		q = 0
	case fx == 1: // x roots its tree
		q = 4 * (sizeX - 1)
	default:
		q = fx
	}
	Ly := 4 * (sizeY - 1)
	shifts = append(shifts,
		etour.Shift{Kind: etour.ShiftLinkHost, Comp: compX, NewComp: compX, A: q, B: Ly},
		etour.Shift{Kind: etour.ShiftLinkGuest, Comp: compY, NewComp: compX, A: q, B: Ly},
	)
	e := graph.NormEdge(int(x), int(y))
	pos := etour.EdgePos{U: e.U, V: e.V}
	if e.U == int(x) {
		pos.UV = [2]int{q + 1, q + 2}
		pos.VU = [2]int{q + Ly + 3, q + Ly + 4}
	} else {
		pos.VU = [2]int{q + 1, q + 2}
		pos.UV = [2]int{q + Ly + 3, q + Ly + 4}
	}
	msg := wire{
		Kind: kDoLink, Seq: seq, U: x, V: y, W: w,
		Comp: compX, Comp2: compY, Q: q, Ly: Ly,
		Size: sizeX + sizeY, Shifts: shifts, Pos: pos, Promote: promote,
	}
	ctx.Broadcast(msg, msg.words(), true)
}

// onDoLink applies a link broadcast to the local shard.
func (s *shard) onDoLink(ctx *mpc.Ctx, w wire) {
	compX, compY := w.Comp, w.Comp2
	for _, rec := range s.tree {
		applyChainRec(w.Shifts, rec)
	}
	for _, rec := range s.nontree {
		rec.aU, rec.cU = applyChain(w.Shifts, rec.aU, rec.cU)
		rec.aV, rec.cV = applyChain(w.Shifts, rec.aV, rec.cV)
	}
	// Singleton anchors of the named endpoints receive their fresh
	// positions: x appears at q+1, y at q+2 (a singleton's component can
	// only be linked through its own vertex, so the names always cover
	// anchor value 0).
	for ge, rec := range s.nontree {
		if rec.aU == 0 {
			if int32(ge.U) == w.U && rec.cU == compX {
				rec.aU = w.Q + 1
			} else if int32(ge.U) == w.V && rec.cU == compY {
				rec.aU, rec.cU = w.Q+2, compX
			}
		}
		if rec.aV == 0 {
			if int32(ge.V) == w.U && rec.cV == compX {
				rec.aV = w.Q + 1
			} else if int32(ge.V) == w.V && rec.cV == compY {
				rec.aV, rec.cV = w.Q+2, compX
			}
		}
	}
	// Weight records: same shift chain, same named-endpoint healing for
	// singleton anchors (a singleton component is only ever linked
	// through its own vertex, so the link names it).
	for _, rec := range s.weights {
		rec.ApplyShifts(w.Shifts)
	}
	for v, rec := range s.weights {
		if rec.Anchor != 0 {
			continue
		}
		if v == w.U && rec.Comp == compX {
			rec.Anchor = w.Q + 1
		} else if v == w.V && rec.Comp == compY {
			rec.Anchor, rec.Comp = w.Q+2, compX
		}
	}
	// Guest vertices adopt the host's label; the compVerts inverse index
	// hands over exactly the owned vertices labeled compY, so the relabel
	// is O(|guest ∩ shard|) instead of a scan over every owned vertex.
	guests := s.compVerts[compY]
	for _, v := range guests {
		s.verts[v] = compX
	}
	if len(guests) > 0 {
		s.compVerts[compX] = append(s.compVerts[compX], guests...)
	}
	delete(s.compVerts, compY)
	e := graph.NormEdge(int(w.U), int(w.V))
	if s.owner(int32(e.U)) == s.id || s.owner(int32(e.V)) == s.id {
		if w.Promote {
			delete(s.nontree, e)
		}
		s.tree[e] = &treeRec{pos: w.Pos, comp: compX, w: w.W}
	}
	if s.registry(compX) == int32(s.id) {
		s.sizes[compX] = w.Size
	}
	if s.registry(compY) == int32(s.id) {
		delete(s.sizes, compY)
	}
}
