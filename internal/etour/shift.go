// Package etour implements the Euler-tour machinery of §5 of the paper.
//
// An Euler tour (E-tour) of a rooted tree T is the sequence of endpoints of
// the arcs traversed by a depth-first walk that starts and ends at the root;
// each tree edge contributes two arcs, each arc contributes its two
// endpoints, so the tour has length ELen(T) = 4(|T|-1) and every vertex v
// appears exactly 2·deg_T(v) times. The tour is never materialized by the
// dynamic algorithms: each tree edge stores the four positions of its arc
// endpoints, and each vertex stores its first and last appearance f(v),
// l(v). Every structural operation — rerooting a tree, linking two trees,
// cutting a subtree — transforms all stored positions by an affine map
// conditioned only on position values (never on vertex identities), so a
// machine holding an arbitrary shard of edges can apply the map locally
// after receiving an O(1)-word descriptor. This is the property the paper
// leverages to update the tours with O(1) rounds and O(1)-size messages per
// machine.
//
// Position conventions (verified against Figures 1 and 2 of the paper):
//
//   - Positions are 1-based; a singleton tree has an empty tour and its
//     vertex has f = l = 0.
//   - Arc k occupies positions (2k-1, 2k); consecutive arcs share their
//     meeting vertex, and the tour is circular (position ELen holds the
//     root, as does position 1).
//   - For a non-root vertex v, f(v) is even (v first appears as the target
//     of the arc from its parent) and l(v) is odd (v last appears as the
//     source of the arc back to its parent). The root has f = 1, l = ELen.
//
// The paper's §5 prints the tail shift of insert(x,y) as "4·ELength_Ty";
// replaying Figure 1 shows the correct shift is ELength_Ty + 4, which is
// what this package implements.
package etour

// ShiftKind enumerates the value-conditional index maps of §5.
type ShiftKind int8

const (
	// ShiftReroot rotates a tour so that the vertex whose last appearance
	// was at position B=l(y) becomes the root: i' = ((i - l(y) + L) mod L) + 1
	// applied to every position of the component; A carries L.
	ShiftReroot ShiftKind = iota
	// ShiftLinkGuest shifts every position of the guest tree Ty (already
	// rerooted at y) into its spliced location: i' = i + q + 2, where A
	// carries q (the splice point in the host tour). Guest positions are
	// additionally relabeled to the host component.
	ShiftLinkGuest
	// ShiftLinkHost shifts the host-tree positions after the splice point:
	// if i > q then i' = i + Ly + 4; A carries q, B carries Ly.
	ShiftLinkHost
	// ShiftCutSub renumbers the positions strictly inside the cut subtree
	// interval: if f(y) < i < l(y) then i' = i - f(y); A carries f(y), B
	// carries l(y). Matching positions move to a fresh component.
	ShiftCutSub
	// ShiftCutRest closes the gap left by the removed subtree: if
	// i > l(y)+1 then i' = i - (l(y) - f(y) + 3); A carries f(y), B l(y).
	ShiftCutRest
	// ShiftCutRepair remaps the four positions removed by a cut — the arc
	// positions of the deleted edge — onto surviving appearances of the
	// same vertices, using the tour's circular chain property (positions
	// 2k and 2k+1 hold the same vertex). It must be applied before
	// ShiftCutSub/ShiftCutRest. A carries f(y), B carries l(y), C the
	// pre-cut tour length; vertices left as singletons map to 0. Machines
	// apply it to mirrored anchor positions, which may be any appearance
	// of the mirrored vertex.
	ShiftCutRepair
)

func (k ShiftKind) String() string {
	switch k {
	case ShiftReroot:
		return "reroot"
	case ShiftLinkGuest:
		return "link-guest"
	case ShiftLinkHost:
		return "link-host"
	case ShiftCutSub:
		return "cut-sub"
	case ShiftCutRest:
		return "cut-rest"
	case ShiftCutRepair:
		return "cut-repair"
	}
	return "?"
}

// Shift is an O(1)-word broadcast descriptor: a value-conditional affine
// map over the tour positions of one component. Machines apply it to every
// position they store (edge arc positions, vertex f/l values, and mirrored
// neighbor positions) for vertices in component Comp; positions matching
// the condition of a ShiftLinkGuest or ShiftCutSub map are relabeled to
// component NewComp.
type Shift struct {
	Kind    ShiftKind
	Comp    int64 // component whose positions this map addresses
	NewComp int64 // target component for relabeling kinds; else Comp
	A, B, C int   // parameters, see ShiftKind docs
}

// Apply transforms a single position value. It never inspects vertex
// identity, only the position value, which is what makes the map safely
// applicable to arbitrary shards, including mirrored copies of neighbor
// positions.
func (s Shift) Apply(i int) int {
	switch s.Kind {
	case ShiftReroot:
		L, ly := s.A, s.B
		if L <= 0 {
			return i
		}
		return ((i-ly+L)%L+L)%L + 1
	case ShiftLinkGuest:
		return i + s.A + 2
	case ShiftLinkHost:
		if i > s.A {
			return i + s.B + 4
		}
		return i
	case ShiftCutSub:
		if i > s.A && i < s.B {
			return i - s.A
		}
		return i
	case ShiftCutRest:
		if i > s.B+1 {
			return i - (s.B - s.A + 3)
		}
		return i
	case ShiftCutRepair:
		fy, ly, L := s.A, s.B, s.C
		subSingleton := ly == fy+1
		restSingleton := fy == 2 && ly == L-1
		switch i {
		case fy - 1: // x's appearance on the removed arc (x,y)
			if restSingleton {
				return 0
			}
			if fy-2 >= 1 {
				return fy - 2
			}
			return L
		case ly + 1: // x's appearance on the removed arc (y,x)
			if restSingleton {
				return 0
			}
			if ly+2 <= L {
				return ly + 2
			}
			return 1
		case fy: // y's first appearance
			if subSingleton {
				return 0
			}
			return fy + 1
		case ly: // y's last appearance
			if subSingleton {
				return 0
			}
			return ly - 1
		}
		return i
	}
	return i
}

// Moves reports whether Apply would relocate position i into the NewComp
// component (only meaningful for relabeling kinds). For ShiftCutRepair it
// fires when the cut leaves the subtree side as a singleton: the child's
// two appearances (at f(y) and l(y)) map to 0 and their component moves to
// the fresh one, keeping mirrored anchors consistent.
func (s Shift) Moves(i int) bool {
	switch s.Kind {
	case ShiftLinkGuest:
		return true // guest maps address the guest component wholesale
	case ShiftCutSub:
		return i > s.A && i < s.B
	case ShiftCutRepair:
		return s.B == s.A+1 && (i == s.A || i == s.B)
	}
	return false
}

// Words returns the message size of the descriptor in machine words, as
// charged by the DMPC accounting.
func (s Shift) Words() int { return 5 }

// InInterval reports whether a position i lies in the closed interval
// [f, l]; with the conventions above this is the subtree membership test:
// vertex v is in the subtree rooted at y iff f(y) <= f(v) and l(v) <= l(y),
// and u is an ancestor-or-self of v iff InInterval(f(v), f(u), l(u)).
func InInterval(i, f, l int) bool { return i >= f && i <= l }

// InSubtree reports whether the vertex with appearance interval [fv, lv]
// lies (weakly) inside the subtree of the vertex with interval [fy, ly].
// Singletons (f = l = 0) are only inside their own (empty) interval.
func InSubtree(fv, lv, fy, ly int) bool {
	if fy == 0 && ly == 0 {
		return fv == 0 && lv == 0
	}
	return fy <= fv && lv <= ly
}
