package graph

import (
	"math/rand"
	"testing"
)

// TestBuildConflict pins the conflict relation: updates conflict iff their
// key sets intersect, repeated keys within one update are harmless, and the
// relation is irreflexive and symmetric.
func TestBuildConflict(t *testing.T) {
	keys := [][]int64{
		{1, 2},
		{3, 4},
		{2, 3},
		{5, 5}, // same resource named twice: no self-conflict
		{5, 6},
	}
	cg := BuildConflict(len(keys), func(i int) []int64 { return keys[i] })
	want := map[[2]int]bool{
		{0, 2}: true, // share 2
		{1, 2}: true, // share 3
		{3, 4}: true, // share 5
	}
	for i := 0; i < cg.N(); i++ {
		if cg.Conflicts(i, i) {
			t.Fatalf("update %d conflicts with itself", i)
		}
		for j := i + 1; j < cg.N(); j++ {
			got := cg.Conflicts(i, j)
			if got != want[[2]int{i, j}] {
				t.Fatalf("Conflicts(%d,%d) = %v, want %v", i, j, got, want[[2]int{i, j}])
			}
			if got != cg.Conflicts(j, i) {
				t.Fatalf("Conflicts(%d,%d) not symmetric", i, j)
			}
		}
	}
}

// TestPrecedenceColorProperties pins the two scheduler obligations on
// random conflict graphs: the coloring is proper (no conflicting pair
// shares a color) and order-preserving (for conflicting i < j, color(i) <
// color(j), so executing color classes in order replays every conflicting
// pair in batch order).
func TestPrecedenceColorProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		nkeys := 1 + rng.Intn(12)
		keys := make([][]int64, n)
		for i := range keys {
			keys[i] = []int64{int64(rng.Intn(nkeys)), int64(rng.Intn(nkeys))}
		}
		cg := BuildConflict(n, func(i int) []int64 { return keys[i] })
		colors := cg.PrecedenceColor()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if !cg.Conflicts(i, j) {
					continue
				}
				if colors[i] >= colors[j] {
					t.Fatalf("trial %d: conflicting pair (%d,%d) has colors (%d,%d); want color(i) < color(j)",
						trial, i, j, colors[i], colors[j])
				}
			}
		}
		// Tightness: every color c > 0 is forced by an earlier neighbor of
		// color c-1 (the greedy rule takes the minimum feasible color).
		for j, c := range colors {
			if c == 0 {
				continue
			}
			forced := false
			for i := 0; i < j; i++ {
				if colors[i] == c-1 && cg.Conflicts(i, j) {
					forced = true
					break
				}
			}
			if !forced {
				t.Fatalf("trial %d: update %d has color %d with no earlier conflicting neighbor of color %d",
					trial, j, c, c-1)
			}
		}
	}
}

// TestFirstWaveEquivalence pins that the one-pass scheduler hot path
// computes exactly the first precedence color class of the materialized
// conflict graph, across random key sets including empty key lists.
func TestFirstWaveEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		keys := make([][]int64, n)
		for i := range keys {
			nk := rng.Intn(4) // 0..3 keys, duplicates allowed
			for j := 0; j < nk; j++ {
				keys[i] = append(keys[i], int64(rng.Intn(10)))
			}
		}
		kf := func(i int) []int64 { return keys[i] }
		want := BuildConflict(n, kf).Waves()[0]
		got := FirstWave(n, kf)
		if len(got) != len(want) {
			t.Fatalf("trial %d: FirstWave %v, Waves()[0] %v", trial, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: FirstWave %v, Waves()[0] %v", trial, got, want)
			}
		}
	}
}

// TestWaves pins the wave grouping: waves partition the batch, each wave is
// an independent set listed in ascending batch order, and waves[0] is
// exactly the set of updates with no earlier conflicting update.
func TestWaves(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(30)
		keys := make([][]int64, n)
		for i := range keys {
			keys[i] = []int64{int64(rng.Intn(8)), int64(rng.Intn(8))}
		}
		cg := BuildConflict(n, func(i int) []int64 { return keys[i] })
		waves := cg.Waves()
		seen := make([]bool, n)
		for w, wave := range waves {
			if len(wave) == 0 {
				t.Fatalf("trial %d: empty wave %d", trial, w)
			}
			for x := 0; x < len(wave); x++ {
				if seen[wave[x]] {
					t.Fatalf("trial %d: update %d in two waves", trial, wave[x])
				}
				seen[wave[x]] = true
				if x > 0 && wave[x-1] >= wave[x] {
					t.Fatalf("trial %d: wave %d not in ascending batch order: %v", trial, w, wave)
				}
				for y := x + 1; y < len(wave); y++ {
					if cg.Conflicts(wave[x], wave[y]) {
						t.Fatalf("trial %d: wave %d contains conflicting pair (%d,%d)",
							trial, w, wave[x], wave[y])
					}
				}
			}
		}
		for i, s := range seen {
			if !s {
				t.Fatalf("trial %d: update %d in no wave", trial, i)
			}
		}
		inFirst := make(map[int]bool, len(waves[0]))
		for _, i := range waves[0] {
			inFirst[i] = true
		}
		for j := 0; j < n; j++ {
			free := true
			for i := 0; i < j; i++ {
				if cg.Conflicts(i, j) {
					free = false
					break
				}
			}
			if free != inFirst[j] {
				t.Fatalf("trial %d: update %d conflict-free=%v but in waves[0]=%v", trial, j, free, inFirst[j])
			}
		}
	}
}
