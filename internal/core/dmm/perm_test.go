package dmm

import (
	"math/rand"
	"testing"

	"dmpc/internal/graph"
)

// TestWavePermutationCommutativity is the commutativity proof obligation
// of the dmm wave scheduler as a property test: for every wave the batch
// driver forms, injecting the wave's updates at MC in any order must yield
// a bit-identical mate table — and identical degree/heaviness statistics —
// because wave members touch disjoint vertices (endpoints and their
// current mates are exclusive keys, cascading updates run solo). The test
// replays the same chunked stream with the injection order of every wave
// shuffled under several seeds (via the wavePerm test hook) and demands
// equality with both the unpermuted run and plain sequential application.
func TestWavePermutationCommutativity(t *testing.T) {
	const n, capEdges = 48, 300
	stream := graph.RandomStream(n, 240, 0.55, 1, rand.New(rand.NewSource(41)))
	g := graph.New(n)
	graph.Batch(stream).Apply(g)

	run := func(perm func(wave []int)) *M {
		m := New(Config{N: n, CapEdges: capEdges})
		m.wavePerm = perm
		for _, b := range graph.Chunk(stream, 32) {
			m.ApplyBatch(b)
		}
		return m
	}

	seqM := New(Config{N: n, CapEdges: capEdges})
	for _, up := range stream {
		if up.Op == graph.Insert {
			seqM.Insert(up.U, up.V)
		} else {
			seqM.Delete(up.U, up.V)
		}
	}
	want := seqM.MateTable()

	base := run(nil)
	if err := base.Validate(g); err != nil {
		t.Fatalf("baseline invariants broken: %v", err)
	}
	for v, mate := range base.MateTable() {
		if want[v] != mate {
			t.Fatalf("wave schedule diverged from sequential replay: mate of %d is %d, want %d", v, mate, want[v])
		}
	}

	fingerprint := func(m *M) []stat {
		out := make([]stat, n)
		for v := 0; v < n; v++ {
			out[v] = m.statPeek(int32(v))
		}
		return out
	}
	wantStats := fingerprint(base)

	permuted := 0
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		m := run(func(wave []int) {
			if len(wave) > 1 {
				permuted++
			}
			rng.Shuffle(len(wave), func(i, j int) { wave[i], wave[j] = wave[j], wave[i] })
		})
		got := fingerprint(m)
		for v := 0; v < n; v++ {
			if got[v].mate != wantStats[v].mate || got[v].deg != wantStats[v].deg || got[v].heavy != wantStats[v].heavy {
				t.Fatalf("seed %d: permuted wave execution diverged at vertex %d: mate/deg/heavy (%d,%d,%v), want (%d,%d,%v)",
					seed, v, got[v].mate, got[v].deg, got[v].heavy,
					wantStats[v].mate, wantStats[v].deg, wantStats[v].heavy)
			}
		}
		if err := m.Validate(g); err != nil {
			t.Fatalf("seed %d: invariants broken: %v", seed, err)
		}
		if v := m.Cluster().Stats().Violations; v != 0 {
			t.Fatalf("seed %d: %d cluster constraint violations", seed, v)
		}
	}
	if permuted == 0 {
		t.Fatal("no wave wider than 1 was ever permuted — the property was vacuous")
	}
}

// TestWaveBatchBeatsChained pins the batch-dynamic headline this PR adds:
// on a stream with endpoint-disjoint stretches, the wave scheduler's
// amortized rounds per update at k=64 beat the PR 1 coordinator-chaining
// baseline, and genuine multi-update waves actually formed.
func TestWaveBatchBeatsChained(t *testing.T) {
	const n, capEdges = 96, 600
	stream := graph.RandomStream(n, 384, 0.55, 1, rand.New(rand.NewSource(9)))

	chainedM := New(Config{N: n, CapEdges: capEdges})
	var cRounds, cUpd int
	for _, b := range graph.Chunk(stream, 64) {
		st := chainedM.ApplyBatchChained(b)
		cRounds += st.Rounds
		cUpd += st.Updates
	}
	chained := float64(cRounds) / float64(cUpd)

	waveM := New(Config{N: n, CapEdges: capEdges})
	var wRounds, wUpd, widest int
	for _, b := range graph.Chunk(stream, 64) {
		st := waveM.ApplyBatch(b)
		wRounds += st.Rounds
		wUpd += st.Updates
		for _, w := range st.Waves {
			if w.Updates > widest {
				widest = w.Updates
			}
		}
	}
	waved := float64(wRounds) / float64(wUpd)

	if waved >= chained {
		t.Fatalf("wave scheduler %.3f rounds/update not below chained baseline %.3f", waved, chained)
	}
	if widest < 2 {
		t.Fatalf("no wave wider than 1 formed (widest %d)", widest)
	}
	cm, wm := chainedM.MateTable(), waveM.MateTable()
	for v := range cm {
		if cm[v] != wm[v] {
			t.Fatalf("schedulers disagree on mate of %d: chained %d, waves %d", v, cm[v], wm[v])
		}
	}
}
