package seqdyn

import "fmt"

// LCT is a link-cut tree (Sleator–Tarjan) over splay trees of preferred
// paths, augmented with a subtree maximum over node values. Tree edges are
// represented as nodes (edge subdivision), so "maximum edge on the path
// u..v" is a path aggregate over edge nodes. It powers the insert side of
// the fully-dynamic minimum spanning forest: when a cycle would form, the
// heaviest cycle edge is found in O(log n) amortized.
type LCT struct {
	nodes []lctNode
	Ops   *Counter
}

type lctNode struct {
	l, r, p int32
	flip    bool
	val     int64 // node value (edge weight for edge nodes, -inf for vertices)
	maxVal  int64 // max over splay subtree
	maxNode int32 // node achieving maxVal
}

const negInf = int64(-1) << 62

// NewLCT returns a forest of n isolated nodes (ids 0..n-1) with value
// -inf; extra nodes for edges are added with AddNode. ops may be nil.
func NewLCT(n int, ops *Counter) *LCT {
	if ops == nil {
		ops = &Counter{}
	}
	t := &LCT{nodes: make([]lctNode, 0, 2*n), Ops: ops}
	for i := 0; i < n; i++ {
		t.AddNode(negInf)
	}
	return t
}

// AddNode appends an isolated node with the given value, returning its id.
func (t *LCT) AddNode(val int64) int {
	id := len(t.nodes)
	t.nodes = append(t.nodes, lctNode{l: -1, r: -1, p: -1, val: val, maxVal: val, maxNode: int32(id)})
	return id
}

func (t *LCT) isRoot(x int32) bool {
	p := t.nodes[x].p
	return p < 0 || (t.nodes[p].l != x && t.nodes[p].r != x)
}

func (t *LCT) push(x int32) {
	n := &t.nodes[x]
	if !n.flip {
		return
	}
	n.l, n.r = n.r, n.l
	if n.l >= 0 {
		t.nodes[n.l].flip = !t.nodes[n.l].flip
	}
	if n.r >= 0 {
		t.nodes[n.r].flip = !t.nodes[n.r].flip
	}
	n.flip = false
}

func (t *LCT) pull(x int32) {
	n := &t.nodes[x]
	n.maxVal, n.maxNode = n.val, x
	for _, c := range [2]int32{n.l, n.r} {
		if c >= 0 && t.nodes[c].maxVal > n.maxVal {
			n.maxVal, n.maxNode = t.nodes[c].maxVal, t.nodes[c].maxNode
		}
	}
}

func (t *LCT) rotate(x int32) {
	p := t.nodes[x].p
	g := t.nodes[p].p
	pIsRoot := t.isRoot(p)
	if t.nodes[p].l == x {
		t.nodes[p].l = t.nodes[x].r
		if t.nodes[x].r >= 0 {
			t.nodes[t.nodes[x].r].p = p
		}
		t.nodes[x].r = p
	} else {
		t.nodes[p].r = t.nodes[x].l
		if t.nodes[x].l >= 0 {
			t.nodes[t.nodes[x].l].p = p
		}
		t.nodes[x].l = p
	}
	t.nodes[p].p = x
	t.nodes[x].p = g
	if !pIsRoot && g >= 0 {
		if t.nodes[g].l == p {
			t.nodes[g].l = x
		} else if t.nodes[g].r == p {
			t.nodes[g].r = x
		}
	}
	t.pull(p)
	t.pull(x)
	t.Ops.Inc(1)
}

func (t *LCT) splay(x int32) {
	// Push pending flips from the splay root down to x.
	stack := []int32{x}
	for y := x; !t.isRoot(y); {
		y = t.nodes[y].p
		stack = append(stack, y)
	}
	for i := len(stack) - 1; i >= 0; i-- {
		t.push(stack[i])
	}
	for !t.isRoot(x) {
		p := t.nodes[x].p
		if !t.isRoot(p) {
			g := t.nodes[p].p
			if (t.nodes[g].l == p) == (t.nodes[p].l == x) {
				t.rotate(p)
			} else {
				t.rotate(x)
			}
		}
		t.rotate(x)
	}
}

func (t *LCT) access(x int32) {
	last := int32(-1)
	for y := x; y >= 0; y = t.nodes[y].p {
		t.splay(y)
		t.nodes[y].r = last
		t.pull(y)
		last = y
		t.Ops.Inc(1)
	}
	t.splay(x)
}

func (t *LCT) makeRoot(x int32) {
	t.access(x)
	t.nodes[x].flip = !t.nodes[x].flip
	t.push(x)
}

// FindRoot returns the root of x's tree (stable until the next MakeRoot).
func (t *LCT) FindRoot(x int) int {
	x32 := int32(x)
	t.access(x32)
	y := x32
	for {
		t.push(y)
		if t.nodes[y].l < 0 {
			break
		}
		y = t.nodes[y].l
		t.Ops.Inc(1)
	}
	t.splay(y)
	return int(y)
}

// Connected reports whether x and y are in the same tree.
func (t *LCT) Connected(x, y int) bool {
	if x == y {
		return true
	}
	return t.FindRoot(x) == t.FindRoot(y)
}

// Link attaches x's tree under y; x and y must be disconnected.
func (t *LCT) Link(x, y int) {
	if t.Connected(x, y) {
		panic(fmt.Sprintf("seqdyn: LCT.Link(%d,%d) would create a cycle", x, y))
	}
	t.makeRoot(int32(x))
	t.nodes[x].p = int32(y)
}

// Cut removes the edge between adjacent nodes x and y.
func (t *LCT) Cut(x, y int) {
	t.makeRoot(int32(x))
	t.access(int32(y))
	// y's splay left child must be exactly x (path x-y of length 1).
	if t.nodes[y].l != int32(x) || t.nodes[x].l >= 0 || t.nodes[x].r >= 0 {
		panic(fmt.Sprintf("seqdyn: LCT.Cut(%d,%d): nodes not adjacent", x, y))
	}
	t.nodes[y].l = -1
	t.nodes[x].p = -1
	t.pull(int32(y))
}

// PathMax returns the node with maximum value on the x..y path and its
// value. x and y must be connected.
func (t *LCT) PathMax(x, y int) (node int, val int64) {
	t.makeRoot(int32(x))
	t.access(int32(y))
	return int(t.nodes[y].maxNode), t.nodes[y].maxVal
}
