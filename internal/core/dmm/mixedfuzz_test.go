package dmm

import (
	"testing"

	"dmpc/internal/graph"
)

// FuzzMixedEquivalence is the property-based equivalence harness for the
// §3 unified op pipeline: any mixed stream of updates and reads, any
// chunking, and every in-wave answer must be bit-identical to sequential
// replay at the same stream position — the snapshot-consistency contract
// of ApplyOps — with the final mate table matching edge for edge. The raw
// bytes decode through graph.FuzzOps with the well-formed update contract
// dmm's degree bookkeeping relies on; roughly half of every stream reads
// (OpMateOf and OpMatched), so queries land inside update waves, between
// solo cascades, and at chained-run boundaries.
//
// Run the full fuzzer with:
//
//	go test -run FuzzMixedEquivalence -fuzz FuzzMixedEquivalence ./internal/core/dmm
func FuzzMixedEquivalence(f *testing.F) {
	f.Add(byte(1), []byte("abcabdacd"))
	f.Add(byte(5), []byte("0120342516273869"))
	f.Add(byte(32), []byte("ABCABDABEACD?bcd?ace02460135"))
	// Disjoint matched pairs with interleaved reads of exactly those
	// vertices: reads conflict with the writes of their own pair only, so
	// they ride the widest waves the scheduler packs.
	f.Add(byte(16), []byte("\x00\x00\x01\x02\x00\x01\x00\x02\x03\x02\x02\x03\x00\x04\x05\x03\x04\x00"+
		"\x00\x06\x07\x02\x06\x00\x00\x08\x09\x03\x08\x00\x01\x00\x01\x02\x00\x01"))
	f.Fuzz(func(t *testing.T, sel byte, data []byte) {
		const n = 20
		if len(data) > 300 { // 100 ops keeps a fuzz iteration fast
			data = data[:300]
		}
		ops := graph.FuzzOps(data, n, 1, []graph.OpKind{graph.OpMateOf, graph.OpMatched}, true)
		if len(ops) == 0 {
			t.Skip()
		}
		k := 1 + int(sel)%len(ops)

		// CapEdges must absorb any prefix of distinct concurrent edges the
		// decoded stream can build (at most one per update).
		capEdges := len(ops)

		// Sequential replay: one op at a time, reads through the
		// quiescence query paths at their exact stream positions.
		seqM := New(Config{N: n, CapEdges: capEdges})
		var want graph.Results
		for _, op := range ops {
			switch op.Kind {
			case graph.OpInsert:
				seqM.Insert(op.U, op.V)
			case graph.OpDelete:
				seqM.Delete(op.U, op.V)
			case graph.OpMateOf:
				want = append(want, graph.Answer{Int: int64(seqM.MateOf(op.U))})
			case graph.OpMatched:
				want = append(want, graph.Answer{Bool: seqM.Matched(op.U, op.V)})
			}
		}

		batM := New(Config{N: n, CapEdges: capEdges})
		g := graph.New(n)
		var got graph.Results
		for _, chunk := range graph.SplitOps(ops, k) {
			res, st := batM.ApplyOps(chunk)
			got = append(got, res...)
			u, q := graph.CountOps(chunk)
			if st.Ops != len(chunk) || st.Updates.Updates != u || st.Queries.Queries != q {
				t.Fatalf("mixed stats cover (%d,%d,%d), chunk has (%d,%d,%d)",
					st.Ops, st.Updates.Updates, st.Queries.Queries, len(chunk), u, q)
			}
			for _, op := range chunk {
				if !op.IsQuery() {
					g.Apply(op.Update())
				}
			}
		}

		if len(got) != len(want) {
			t.Fatalf("k=%d: %d answers, want %d", k, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("k=%d: query %d answered %+v in-wave, %+v sequentially", k, j, got[j], want[j])
			}
		}
		wantT, gotT := seqM.MateTable(), batM.MateTable()
		for v := range wantT {
			if wantT[v] != gotT[v] {
				t.Fatalf("k=%d: mate of %d differs: %d vs %d", k, v, gotT[v], wantT[v])
			}
		}
		if !graph.IsMaximalMatching(g, gotT) {
			t.Fatalf("k=%d: matching not maximal over the final graph", k)
		}
		if err := batM.Validate(g); err != nil {
			t.Fatalf("k=%d: invariants broken after mixed chunks: %v", k, err)
		}
		if v := batM.Cluster().Stats().Violations; v != 0 {
			t.Fatalf("k=%d: %d cluster constraint violations", k, v)
		}

		// Backend-equivalence replica: the same mixed chunks on the
		// goroutine-per-machine runtime must answer every in-wave query
		// identically and reproduce the mate table and accounting bit for
		// bit.
		parM := New(parallelConfig(Config{N: n, CapEdges: capEdges}))
		defer parM.Close()
		var pgot graph.Results
		for _, chunk := range graph.SplitOps(ops, k) {
			res, _ := parM.ApplyOps(chunk)
			pgot = append(pgot, res...)
		}
		if len(pgot) != len(got) {
			t.Fatalf("parallel replica answered %d queries, sim %d", len(pgot), len(got))
		}
		for j := range got {
			if pgot[j] != got[j] {
				t.Fatalf("parallel replica answered query %d %+v, sim %+v", j, pgot[j], got[j])
			}
		}
		assertBackendEquivalent(t, batM, parM)
	})
}
