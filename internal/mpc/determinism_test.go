package mpc

import (
	"testing"
)

// relayMachine forwards received integers along value-dependent routes, a
// branching, order-sensitive workload. Each machine emits at most budget
// messages in total, bounding the cascade while keeping plenty of
// cross-machine interleaving to expose scheduling nondeterminism.
type relayMachine struct {
	id     int
	mu     int
	budget int
	seen   []int64
}

func (r *relayMachine) HandleRound(ctx *Ctx, inbox []Message) {
	for _, m := range inbox {
		v, ok := m.Payload.(int64)
		if !ok {
			continue
		}
		r.seen = append(r.seen, v)
		if r.budget > 0 {
			r.budget--
			ctx.Send(int(v)%r.mu, v+1, 1)
		}
		if r.budget > 0 && v%3 == 0 {
			r.budget--
			ctx.Send(int(v*7)%r.mu, v+3, 1)
		}
	}
}

// run executes the branching relay and returns a trace fingerprint.
func runRelay(workers int) (rounds int, words int, trace []int64) {
	const mu = 7
	c := NewCluster(Config{Machines: mu, MemWords: 1 << 20, Workers: workers})
	ms := make([]*relayMachine, mu)
	for i := range ms {
		ms[i] = &relayMachine{id: i, mu: mu, budget: 40}
		c.SetMachine(i, ms[i])
	}
	c.Send(Message{To: 0, Payload: int64(1), Words: 1})
	c.Run(500)
	for _, m := range ms {
		trace = append(trace, int64(len(m.seen)))
		for _, v := range m.seen {
			trace = append(trace, v)
		}
	}
	return c.Stats().Rounds, c.Stats().Words, trace
}

// TestDeterministicAcrossWorkerCounts: the simulation must produce
// identical traces regardless of handler concurrency — the guarantee that
// makes every experiment in this repository reproducible.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	r1, w1, t1 := runRelay(1)
	r8, w8, t8 := runRelay(8)
	if r1 != r8 || w1 != w8 {
		t.Fatalf("stats diverge: rounds %d/%d words %d/%d", r1, r8, w1, w8)
	}
	if len(t1) != len(t8) {
		t.Fatalf("trace lengths diverge: %d vs %d", len(t1), len(t8))
	}
	for i := range t1 {
		if t1[i] != t8[i] {
			t.Fatalf("trace diverges at %d: %d vs %d", i, t1[i], t8[i])
		}
	}
}
