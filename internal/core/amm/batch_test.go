package amm

import (
	"math/rand"
	"testing"

	"dmpc/internal/graph"
)

// TestBatchValidity pins the batch contract of the randomized §6
// structure: after every batch the matching is valid and the §6 invariants
// hold over the same final graph. (Exact equality with sequential
// application is not required here — shuffle/rise probes fire per cycle,
// not per update; see the ApplyBatch comment.)
func TestBatchValidity(t *testing.T) {
	for _, k := range []int{1, 8, 32} {
		const n = 40
		rng := rand.New(rand.NewSource(23))
		stream := graph.RandomStream(n, 220, 0.55, 1, rng)
		m := New(Config{N: n, Seed: 7})
		g := graph.New(n)
		for _, b := range graph.Chunk(stream, k) {
			st := m.ApplyBatch(b)
			if st.Updates != len(b) || st.Rounds == 0 {
				t.Fatalf("k=%d: bad batch stats %+v", k, st)
			}
			b.Apply(g)
			if !graph.IsMatching(g, m.MateTable()) {
				t.Fatalf("k=%d: invalid matching after batch", k)
			}
			if err := m.Validate(g); err != nil {
				t.Fatalf("k=%d: invariants broken after batch: %v", k, err)
			}
		}
		if v := m.Cluster().Stats().Violations; v != 0 {
			t.Fatalf("k=%d: %d cluster constraint violations", k, v)
		}
		// No assertion on QueueBacklog: a residual backlog is legitimate
		// (vertices whose sampling pools are exhausted wait in queue under
		// sequential application too); Validate above already checks that
		// every free-free edge has a pending endpoint.
	}
}

// TestBatchAmortizedRoundsDrop pins the §6 batching win: cycles are shared
// across the batch (the scheduler drains Δ-bounded batches per cycle), so
// rounds per update fall as k grows.
func TestBatchAmortizedRoundsDrop(t *testing.T) {
	const n = 64
	perUpdate := func(k int) float64 {
		rng := rand.New(rand.NewSource(29))
		stream := graph.RandomStream(n, 256, 0.55, 1, rng)
		m := New(Config{N: n, Seed: 9})
		rounds, updates := 0, 0
		for _, b := range graph.Chunk(stream, k) {
			st := m.ApplyBatch(b)
			rounds += st.Rounds
			updates += st.Updates
		}
		return float64(rounds) / float64(updates)
	}
	r1, r64 := perUpdate(1), perUpdate(64)
	if r64 >= r1 {
		t.Fatalf("amortized rounds/update did not drop: k=1 %.2f, k=64 %.2f", r1, r64)
	}
}
