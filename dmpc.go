// Package dmpc is the public facade of this repository: a from-scratch Go
// reproduction of "Dynamic Algorithms for the Massively Parallel
// Computation Model" (Italiano, Lattanzi, Mirrokni, Parotsidis — SPAA
// 2019, arXiv:1905.09175).
//
// The DMPC model extends MPC to dynamic inputs: a cluster of µ machines
// with O(√N) words of memory each processes edge insertions and deletions,
// and an algorithm is charged per update for (i) rounds, (ii) active
// machines per round and (iii) communicated words per round. This package
// re-exports the simulated cluster and the paper's five dynamic algorithms
// plus the §7 reduction:
//
//   - NewMaximalMatching (§3): O(1) rounds, O(1) machines, O(√N) words.
//   - NewThreeHalvesMatching (§4): 3/2-approximate, O(n/√N) machines.
//   - NewConnectivity / NewMST (§5, §5.1): Euler-tour connectivity and
//     (1+ε)-MST, O(1) rounds, O(√N) machines and words.
//   - NewAlmostMaximalMatching (§6): (2+ε)-approximate, Õ(1) machines
//     and words.
//   - reduction.NewSim (§7): run any sequential dynamic algorithm in
//     O(u(N)) rounds on O(1) machines.
//
// # Unified op stream
//
// The paper charges updates and queries to the same three resources, so
// the facade ingests them through one front door: every structure
// implements Pipeline, whose Apply takes a single []Op stream mixing edge
// insertions, deletions and typed reads (OpConnected, OpComponentOf,
// OpMateOf, OpMatched) and returns the positional query answers plus a
// MixedStats window attributing rounds to the update and query halves.
// Under the hood the shared wave machinery (internal/sched) — resource-
// keyed conflict building with exclusive keys for writes and read-shared
// keys for queries, order-preserving precedence coloring, per-machine
// broadcast-budget packing, and the first-wave/recompute loop — sequences
// reads *into* the update waves: a query rides the wave that follows
// every conflicting earlier write and precedes every conflicting later
// one, so it is answered against exactly the prefix state its stream
// position implies (snapshot-consistent mid-batch reads, bit-identical to
// sequential replay — pinned by the FuzzMixedEquivalence harnesses)
// instead of waiting for cluster quiescence. Reads touching state no
// in-flight write conflicts with ride a write wave's rounds for free,
// which is where mixed workloads beat the split read/write paths (see
// cmd/dmpcbench -mixed and BENCH_0005.json).
//
// # Tree-DP queries
//
// The §5 structures additionally maintain vertex weights and answer
// tree-aggregate reads over the maintained spanning forest, entirely on
// the Euler-tour machinery: SetWeight writes a vertex weight, QSubtreeSum
// sums the subtree of u when its tree is rooted at r, QPathSum sums the
// u–v tree path, and QTreeTop names a component's heaviest vertex. Every
// machine holds, per weighted vertex it owns, one tour-position anchor
// repaired by the same O(1)-word Shift descriptors that links and cuts
// already broadcast, so a query is a constant-round broadcast of an
// interval (or path) predicate answered with one partial sum per machine
// (DESIGN.md §2e). DP reads ride the same waves as every other read, so
// mixed link/cut/weight/query streams amortize below one round per query
// (cmd/dmpcbench -treedp, BENCH_0010.json); the FuzzTreeDPEquivalence
// harness pins answers bit-identical to sequential replay and to a
// tour-free oracle on both backends. See examples/orgchart for a worked
// rollup workload.
//
// # Streaming ingestion
//
// When ops arrive over time rather than as a prepared slice, the Ingestor
// (see ingest.go) is the front door: it consumes timestamped Arrivals
// from a min-heap, admits each into the currently-forming wave set while
// its schedule claims don't conflict with the set's, and flushes the
// partial stream through Apply when a conflicting op arrives, an op ages
// past MaxAge, or the set reaches the batch bound (fixed MaxBatch or an
// AutoBatcher's adaptive k, optionally tail-constrained by
// TargetP99Rounds). StreamStats attributes to every op its
// rounds-from-arrival-to-answer latency (p50/p95/p99). Apply itself is
// the zero-inter-arrival special case of this loop, so batch and
// streaming callers share one code path; the FuzzArrivalEquivalence
// harnesses pin that any arrival schedule yields answers bit-identical
// to Apply on the full slice. See cmd/dmpcbench -arrivals and
// BENCH_0006.json for the latency picture.
//
// # Multi-tenant streams
//
// Ops carry a tenant id (Op.Tenant, zero = the single-tenant default;
// tag streams with TenantOps). WithTenantWeights turns wave packing
// into deficit-round-robin fair sharing of the per-round word budget —
// a flooding tenant can fill only its weighted share of each wave, and
// unused share rolls forward — without ever reordering conflicting
// ops, so answers stay bit-identical to the unweighted run.
// IngestorConfig.Weights and IngestorConfig.Admission (AlwaysAdmit,
// TokenBucket) shape the streaming front door the same way, with
// refused ops surfaced as typed Rejections, and StreamStats/MixedStats
// gain per-tenant breakdowns (TenantStreamStats, TenantStats). See
// DESIGN.md §2c and cmd/dmpcbench -tenants (BENCH_0008.json) for the
// noisy-neighbor isolation picture.
//
// The pre-redesign surface remains as thin deprecated wrappers delegating
// to Apply: ApplyBatch is the write-only projection (a Batch shares one
// BatchStats round-accounting window and non-conflicting updates
// parallelize into waves, per Nowicki–Onak, arXiv:2002.07800), and the
// batched query paths (ConnectedBatch, MateOfBatch) are the read-only
// projection (one scatter/gather window, 2/k resp. 1/k amortized rounds
// per query). Update and query accounting never mix: pure windows are
// mutually exclusive in the simulator, and a mixed window partitions its
// rounds between its two halves by wave. Driver-side oracle accessors
// (MateTable, and dyncon's CompOf/ForestEdges) bypass the cluster and are
// for validation only.
//
// See DESIGN.md for the system inventory, the op pipeline, and the
// deviations from the paper; cmd/dmpcbench reproduces Table 1 and the
// batch amortization curves (its -json snapshots live in BENCH_*.json).
package dmpc

import (
	"dmpc/internal/core/amm"
	"dmpc/internal/core/dmm"
	"dmpc/internal/core/dyncon"
	"dmpc/internal/graph"
	"dmpc/internal/mpc"
	"dmpc/internal/sched"
)

// Re-exported building blocks.
type (
	// Graph is the dynamic graph used to describe workloads.
	Graph = graph.Graph
	// Update is one edge insertion or deletion.
	Update = graph.Update
	// Weight is an edge weight.
	Weight = graph.Weight
	// UpdateStats is the per-update DMPC accounting: rounds, active
	// machines per round, words per round.
	UpdateStats = mpc.UpdateStats
	// Batch is an ordered sequence of updates applied as one unit.
	Batch = graph.Batch
	// BatchStats is the shared round-accounting window of one batch.
	BatchStats = mpc.BatchStats
	// WaveStats is one concurrent wave's slice of a batch or mixed window;
	// the wave widths measure how much parallelism the scheduler
	// extracted, and Queries counts the reads that rode the wave.
	WaveStats = mpc.WaveStats
	// Op is one operation of a unified op stream: an edge insertion, an
	// edge deletion, or a typed read.
	Op = graph.Op
	// OpKind classifies an Op.
	OpKind = graph.OpKind
	// Answer is one query's result (Bool for OpConnected/OpMatched, Int
	// for OpComponentOf/OpMateOf and the tree-DP reads OpSubtreeSum,
	// OpPathSum and OpTreeTop).
	Answer = graph.Answer
	// Results holds one Answer per query op of a stream, in stream order.
	Results = graph.Results
	// MixedStats is the round-accounting window of one mixed op stream,
	// split into its update and query halves.
	MixedStats = mpc.MixedStats
	// Pair is one query's endpoints; a []Pair is the read-side analogue of
	// a Batch.
	Pair = graph.Pair
	// QueryStats is the shared round-accounting window of one query or one
	// query batch, mutually exclusive with update/batch windows.
	QueryStats = mpc.QueryStats
	// Cluster is the simulated DMPC cluster.
	Cluster = mpc.Cluster
	// BackendKind selects the cluster's execution backend; see the
	// BackendSim and BackendParallel constants and WithBackend.
	BackendKind = mpc.BackendKind
	// TenantStats is one tenant's slice of a mixed window: op counts and
	// the tenant's wave-share of the window's rounds.
	TenantStats = mpc.TenantStats
	// TenantStreamStats is one tenant's slice of an ingested stream: op
	// counts, admission rejections, rounds share, latency percentiles.
	TenantStreamStats = mpc.TenantStreamStats
	// Rejection is one op refused by a per-tenant admission policy — a
	// typed record in StreamStats.Rejections, never a silent drop.
	Rejection = mpc.Rejection
)

// TenantOps tags every op of a stream with a tenant id (returning a new
// slice); Op.ForTenant tags a single op. The zero tenant is the
// single-tenant default: untagged streams behave exactly as before
// tenancy existed.
func TenantOps(t int, ops []Op) []Op { return graph.TenantOps(t, ops) }

// Execution backends (see internal/mpc and DESIGN.md §2d). Every backend
// produces bit-identical answers and accounting for the same op history —
// pinned by the backend-equivalence fuzz suites — and differs only in
// wall-clock time.
const (
	// BackendSim is the deterministic single-driver simulator loop, the
	// correctness and accounting oracle. The zero-value default.
	BackendSim = mpc.BackendSim
	// BackendParallel is the goroutine-per-machine parallel runtime:
	// long-lived channel-woken workers with a deterministic merge at the
	// round barrier. Structures built on it must be Closed.
	BackendParallel = mpc.BackendParallel
)

// ParseBackend parses the CLI spelling of a backend kind ("sim" or
// "parallel").
func ParseBackend(s string) (BackendKind, error) { return mpc.ParseBackend(s) }

// Option configures a structure at construction time.
type Option func(*options)

type options struct {
	backend mpc.BackendKind
	workers int
	tenants map[int]int
}

func buildOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithBackend selects the cluster execution backend (default BackendSim).
// A structure built with BackendParallel owns worker goroutines and must
// be released with Close when done.
func WithBackend(k BackendKind) Option { return func(o *options) { o.backend = k } }

// WithWorkers bounds the backend's handler concurrency (0 = GOMAXPROCS).
// Worker count never changes answers or accounting, only wall-clock time.
func WithWorkers(n int) Option { return func(o *options) { o.workers = n } }

// WithTenantWeights carves the per-round word budget S into weighted
// deficit-round-robin tenant shares: wave packing meters each tenant's
// summed shared-claim cost against its share (unused share rolls
// forward, capped at one wave's budget) instead of packing first-fit,
// so a noisy tenant's cascading updates cannot fill every wave while a
// read-mostly tenant starves. Fairness never reorders conflicting ops —
// it only reshapes which non-conflicting ops share a wave. Tenants
// absent from the map weigh 1 against the same total; nil (the
// default) keeps the single-tenant first-fit schedule bit-identically.
// Pair with IngestorConfig.Weights/Admission to also shape the
// streaming front door.
func WithTenantWeights(w map[int]int) Option { return func(o *options) { o.tenants = w } }

// Operation kinds for Update.Op and Op.Kind.
const (
	Insert = graph.Insert
	Delete = graph.Delete

	OpInsert      = graph.OpInsert
	OpDelete      = graph.OpDelete
	OpSetWeight   = graph.OpSetWeight
	OpConnected   = graph.OpConnected
	OpComponentOf = graph.OpComponentOf
	OpMateOf      = graph.OpMateOf
	OpMatched     = graph.OpMatched
	OpSubtreeSum  = graph.OpSubtreeSum
	OpPathSum     = graph.OpPathSum
	OpTreeTop     = graph.OpTreeTop
)

// Op constructors, re-exported for workload building.
var (
	// OpIns returns an insert op.
	OpIns = graph.OpIns
	// OpDel returns a delete op.
	OpDel = graph.OpDel
	// OpQConnected returns a connectivity query op.
	OpQConnected = graph.OpQConnected
	// OpQComponentOf returns a component-label query op.
	OpQComponentOf = graph.OpQComponentOf
	// OpQMateOf returns a mate query op.
	OpQMateOf = graph.OpQMateOf
	// OpQMatched returns a matched-edge query op.
	OpQMatched = graph.OpQMatched
	// OpSetW returns a vertex-weight write op.
	OpSetW = graph.OpSetW
	// OpQSubtreeSum returns a subtree-aggregate query op.
	OpQSubtreeSum = graph.OpQSubtreeSum
	// OpQPathSum returns a tree-path-aggregate query op.
	OpQPathSum = graph.OpQPathSum
	// OpQTreeTop returns a component-argmax query op.
	OpQTreeTop = graph.OpQTreeTop
	// OpOf lifts a legacy Update into an Op.
	OpOf = graph.OpUpdate
	// UpdateOps lifts a write-only Batch into an op stream.
	UpdateOps = graph.UpdateOps
	// CountOps counts a stream's operations by side.
	CountOps = graph.CountOps
)

// Op construction helpers — the ergonomic spellings of the constructors
// above, so workload code reads as the ops it performs.

// Ins returns an insert op for the unit-weight edge (u,v); use InsW for
// a weighted insert (MST workloads).
func Ins(u, v int) Op { return graph.OpIns(u, v, 1) }

// InsW returns an insert op for the edge (u,v) with weight w.
func InsW(u, v int, w Weight) Op { return graph.OpIns(u, v, w) }

// Del returns a delete op for the edge (u,v).
func Del(u, v int) Op { return graph.OpDel(u, v) }

// QConnected returns a connectivity query op: are u and v in one
// component?
func QConnected(u, v int) Op { return graph.OpQConnected(u, v) }

// QComponentOf returns a component-label query op for v.
func QComponentOf(v int) Op { return graph.OpQComponentOf(v) }

// QMateOf returns a mate query op for v (-1 answers "free").
func QMateOf(v int) Op { return graph.OpQMateOf(v) }

// QMatched returns a matched-edge query op: is (u,v) in the matching?
func QMatched(u, v int) Op { return graph.OpQMatched(u, v) }

// SetWeight returns a vertex-weight write op: assign weight w to vertex
// v (weights default to 0; the write is an update, not a read, and
// orders against structural ops on v's component).
func SetWeight(v int, w Weight) Op { return graph.OpSetW(v, w) }

// QSubtreeSum returns a subtree-aggregate query op: the weight sum over
// the subtree of u when u's tree in the maintained forest is rooted at
// r. When r == u — or r lies in another component — the subtree is u's
// whole component.
func QSubtreeSum(r, u int) Op { return graph.OpQSubtreeSum(r, u) }

// QPathSum returns a tree-path-aggregate query op: the weight sum along
// the u–v path of the maintained forest, endpoints included (0 when u
// and v are disconnected).
func QPathSum(u, v int) Op { return graph.OpQPathSum(u, v) }

// QTreeTop returns a component-argmax query op: the id of the heaviest
// vertex of u's component (smallest id on ties; every vertex counts, at
// weight 0 when never written).
func QTreeTop(u int) Op { return graph.OpQTreeTop(u) }

// Chunk splits an update stream into consecutive batches of at most k
// updates, preserving order.
func Chunk(updates []Update, k int) []Batch { return graph.Chunk(updates, k) }

// SplitOps splits an op stream into consecutive chunks of at most k ops,
// preserving the relative update/query order.
func SplitOps(ops []Op, k int) [][]Op { return graph.SplitOps(ops, k) }

// NewGraph returns an empty dynamic graph on n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// Pipeline is the unified front door every structure in this package
// implements: one scheduled pipeline ingesting updates and queries as a
// single op stream, with snapshot-consistent in-wave reads. Apply returns
// the answers positionally over the stream's queries (the j-th Answer
// answers the j-th op with IsQuery() true) and the mixed window's
// accounting. Each structure answers its own query kinds — OpConnected
// and OpComponentOf on Connectivity/MST, OpMateOf and OpMatched on the
// matchings — and panics on a kind it cannot answer.
type Pipeline interface {
	Apply(ops []Op) (Results, MixedStats)
	Cluster() *Cluster
	// Close releases the cluster's execution backend (the parallel
	// backend's worker goroutines). A no-op for BackendSim structures;
	// the structure must not be used afterwards.
	Close()
}

// Compile-time assertions: all four structures implement Pipeline.
var (
	_ Pipeline = (*Connectivity)(nil)
	_ Pipeline = (*MST)(nil)
	_ Pipeline = (*MaximalMatching)(nil)
	_ Pipeline = (*AlmostMaximalMatching)(nil)
)

// pipe is the facade plumbing shared by all four structures — the one
// copy of the Apply front door, the per-op claims oracle the Ingestor
// admits arrivals with, and the Cluster accessor.
type pipe struct {
	apply  func([]graph.Op) (graph.Results, mpc.MixedStats)
	claims func(graph.Op) sched.Item
	cl     *mpc.Cluster
}

func newPipe(apply func([]graph.Op) (graph.Results, mpc.MixedStats), claims func(graph.Op) sched.Item, cl *mpc.Cluster) pipe {
	return pipe{apply: apply, claims: claims, cl: cl}
}

// Apply processes a mixed op stream through the structure's scheduled
// pipeline in one MixedStats window; see Pipeline.
//
// Apply is the zero-inter-arrival special case of streaming ingestion:
// the stream is timestamped at time zero and pushed through a degenerate
// Ingestor (no admission control, no age or size bound), whose single
// tail flush runs the whole slice through the scheduled pipeline in one
// window. Batch and streaming callers therefore exercise one code path
// and cannot drift.
func (p pipe) Apply(ops []Op) (Results, MixedStats) {
	if len(ops) == 0 {
		return p.apply(ops)
	}
	ing := newIngestor(p, IngestorConfig{}, false)
	for _, op := range ops {
		ing.Push(Arrival{At: 0, Op: op})
	}
	res, st := ing.Close()
	return res, st.Windows[0]
}

// Cluster exposes the underlying cluster accounting.
func (p pipe) Cluster() *Cluster { return p.cl }

// Close releases the cluster's execution backend; see Pipeline.
func (p pipe) Close() { p.cl.Close() }

// rawApply is the un-ingested scheduled pipeline — what an Ingestor
// flush calls, so routing Apply through a degenerate Ingestor cannot
// recurse.
func (p pipe) rawApply(ops []Op) (Results, MixedStats) { return p.apply(ops) }

// streamClaims exposes the structure's per-op claims oracle to the
// Ingestor's admission control.
func (p pipe) streamClaims() func(graph.Op) sched.Item { return p.claims }

// applyBatch is the shared deprecated ApplyBatch wrapper: the write-only
// projection of Apply.
func (p pipe) applyBatch(b Batch) BatchStats {
	_, st := p.apply(graph.UpdateOps(b))
	return st.Updates
}

// Connectivity maintains the connected components of a dynamic graph (§5).
type Connectivity struct {
	pipe
	d *dyncon.D
}

// NewConnectivity builds a fully-dynamic connected-components structure on
// n vertices, sized for expectedEdges simultaneous edges (0 = default).
func NewConnectivity(n, expectedEdges int, opts ...Option) *Connectivity {
	o := buildOptions(opts)
	d := dyncon.New(dyncon.Config{N: n, Mode: dyncon.CC, ExpectedEdges: expectedEdges, Backend: o.backend, Workers: o.workers, TenantWeights: o.tenants})
	return &Connectivity{pipe: newPipe(d.ApplyOps, d.StreamItem, d.Cluster()), d: d}
}

// Insert adds an edge, returning the update's accounting.
func (c *Connectivity) Insert(u, v int) UpdateStats { return c.d.Insert(u, v, 1) }

// Delete removes an edge.
func (c *Connectivity) Delete(u, v int) UpdateStats { return c.d.Delete(u, v) }

// Connected answers a connectivity query through the cluster.
//
// Deprecated: Use Apply with QConnected ops, or Ingest for streaming
// arrivals.
func (c *Connectivity) Connected(u, v int) bool { return c.ConnectedBatch([]Pair{{U: u, V: v}})[0] }

// ConnectedBatch answers k connectivity queries in one shared
// scatter/gather window, amortizing the round cost to 2/k per query.
// Answers are positional.
//
// Deprecated: Use Apply with QConnected ops, or Ingest for streaming
// arrivals.
func (c *Connectivity) ConnectedBatch(pairs []Pair) []bool { return c.pipe.connectedBatch(pairs) }

// ApplyBatch applies a batch of updates in one shared round window,
// running component-disjoint updates concurrently.
//
// Deprecated: Use Apply with Ins/Del ops (see UpdateOps), or Ingest for
// streaming arrivals.
func (c *Connectivity) ApplyBatch(b Batch) BatchStats { return c.applyBatch(b) }

// ComponentOf returns v's component label, as a one-round protocol query
// through the cluster.
//
// Deprecated: Use Apply with QComponentOf ops, or Ingest for streaming
// arrivals.
func (c *Connectivity) ComponentOf(v int) int64 { return c.pipe.componentOf(v) }

// CompOf returns v's component label by driver-side oracle access —
// validation only, no protocol accounting. Use an OpQComponentOf op for
// the protocol query.
func (c *Connectivity) CompOf(v int) int64 { return c.d.CompOf(v) }

// WeightOf returns v's vertex weight by driver-side oracle access —
// validation only, no protocol accounting. Weights are written with
// SetWeight ops and read in aggregate by the tree-DP queries.
func (c *Connectivity) WeightOf(v int) int64 { return c.d.WeightOf(v) }

// MST maintains a (1+ε)-approximate minimum spanning forest (§5.1); eps 0
// maintains an exact MSF.
type MST struct {
	pipe
	d *dyncon.D
}

// NewMST builds a fully-dynamic MSF structure.
func NewMST(n int, eps float64, expectedEdges int, opts ...Option) *MST {
	o := buildOptions(opts)
	d := dyncon.New(dyncon.Config{N: n, Mode: dyncon.MST, Eps: eps, ExpectedEdges: expectedEdges, Backend: o.backend, Workers: o.workers, TenantWeights: o.tenants})
	return &MST{pipe: newPipe(d.ApplyOps, d.StreamItem, d.Cluster()), d: d}
}

// Insert adds a weighted edge.
func (m *MST) Insert(u, v int, w Weight) UpdateStats { return m.d.Insert(u, v, w) }

// Delete removes an edge.
func (m *MST) Delete(u, v int) UpdateStats { return m.d.Delete(u, v) }

// ApplyBatch applies a batch of updates in one shared round window.
//
// Deprecated: Use Apply with Ins/Del ops (see UpdateOps), or Ingest for
// streaming arrivals.
func (m *MST) ApplyBatch(b Batch) BatchStats { return m.applyBatch(b) }

// Weight returns the maintained forest's total (bucketed) weight
// (driver-side oracle access; validation only).
func (m *MST) Weight() Weight { return m.d.ForestWeight() }

// ForestEdges returns the maintained forest (driver-side oracle access;
// validation only).
func (m *MST) ForestEdges() []graph.WEdge { return m.d.ForestEdges() }

// WeightOf returns v's vertex weight by driver-side oracle access —
// validation only, no protocol accounting.
func (m *MST) WeightOf(v int) int64 { return m.d.WeightOf(v) }

// Connected answers connectivity through the cluster.
//
// Deprecated: Use Apply with QConnected ops, or Ingest for streaming
// arrivals.
func (m *MST) Connected(u, v int) bool { return m.ConnectedBatch([]Pair{{U: u, V: v}})[0] }

// ConnectedBatch answers k connectivity queries in one shared
// scatter/gather window.
//
// Deprecated: Use Apply with QConnected ops, or Ingest for streaming
// arrivals.
func (m *MST) ConnectedBatch(pairs []Pair) []bool { return m.pipe.connectedBatch(pairs) }

// connectedBatch and componentOf are the dyncon-backed read projections
// shared by Connectivity and MST.
func (p pipe) connectedBatch(pairs []Pair) []bool {
	if len(pairs) == 0 {
		return nil
	}
	ops := make([]Op, len(pairs))
	for i, pr := range pairs {
		ops[i] = graph.OpQConnected(pr.U, pr.V)
	}
	res, _ := p.apply(ops)
	out := make([]bool, len(res))
	for i, a := range res {
		out[i] = a.Bool
	}
	return out
}

func (p pipe) componentOf(v int) int64 {
	res, _ := p.apply([]Op{graph.OpQComponentOf(v)})
	return res[0].Int
}

// mateOfBatch and mateOf are the read projections shared by the two
// matching structures.
func (p pipe) mateOfBatch(vs []int) []int {
	if len(vs) == 0 {
		return nil
	}
	ops := make([]Op, len(vs))
	for i, v := range vs {
		ops[i] = graph.OpQMateOf(v)
	}
	res, _ := p.apply(ops)
	out := make([]int, len(res))
	for i, a := range res {
		out[i] = int(a.Int)
	}
	return out
}

func (p pipe) matched(u, v int) bool {
	res, _ := p.apply([]Op{graph.OpQMatched(u, v)})
	return res[0].Bool
}

// MaximalMatching maintains a maximal matching (§3).
type MaximalMatching struct {
	pipe
	m *dmm.M
}

// NewMaximalMatching builds the §3 structure for n vertices and at most
// capEdges simultaneous edges.
func NewMaximalMatching(n, capEdges int, opts ...Option) *MaximalMatching {
	o := buildOptions(opts)
	m := dmm.New(dmm.Config{N: n, CapEdges: capEdges, Backend: o.backend, Workers: o.workers, TenantWeights: o.tenants})
	return &MaximalMatching{pipe: newPipe(m.ApplyOps, m.StreamItem, m.Cluster()), m: m}
}

// NewThreeHalvesMatching builds the §4 structure: a 3/2-approximate
// maximum matching (the graph must start empty, which it does).
func NewThreeHalvesMatching(n, capEdges int, opts ...Option) *MaximalMatching {
	o := buildOptions(opts)
	m := dmm.New(dmm.Config{N: n, CapEdges: capEdges, ThreeHalves: true, Backend: o.backend, Workers: o.workers, TenantWeights: o.tenants})
	return &MaximalMatching{pipe: newPipe(m.ApplyOps, m.StreamItem, m.Cluster()), m: m}
}

// Insert adds an edge.
func (mm *MaximalMatching) Insert(u, v int) UpdateStats { return mm.m.Insert(u, v) }

// Delete removes an edge.
func (mm *MaximalMatching) Delete(u, v int) UpdateStats { return mm.m.Delete(u, v) }

// ApplyBatch applies a batch of updates in one shared round window through
// the shared wave scheduler; the resulting matching is identical to
// applying the updates one at a time.
//
// Deprecated: Use Apply with Ins/Del ops (see UpdateOps), or Ingest for
// streaming arrivals.
func (mm *MaximalMatching) ApplyBatch(b Batch) BatchStats { return mm.applyBatch(b) }

// ApplyBatchChained applies a batch through the PR 1 coordinator-chaining
// path — strictly in-order execution with shared injection and ack-tail
// rounds — retained as the serial baseline the wave scheduler is
// benchmarked against (see dmm.ApplyBatchChained).
func (mm *MaximalMatching) ApplyBatchChained(b Batch) BatchStats { return mm.m.ApplyBatchChained(b) }

// MateOf answers "who is v matched to?" (-1 = free) as a one-round
// protocol query at v's statistics machine.
//
// Deprecated: Use Apply with QMateOf ops, or Ingest for streaming
// arrivals.
func (mm *MaximalMatching) MateOf(v int) int { return mm.mateOfBatch([]int{v})[0] }

// MateOfBatch answers k mate queries in one shared one-round window.
//
// Deprecated: Use Apply with QMateOf ops, or Ingest for streaming
// arrivals.
func (mm *MaximalMatching) MateOfBatch(vs []int) []int { return mm.pipe.mateOfBatch(vs) }

// Matched reports whether (u,v) is in the matching, as a protocol query.
//
// Deprecated: Use Apply with QMatched ops, or Ingest for streaming
// arrivals.
func (mm *MaximalMatching) Matched(u, v int) bool { return mm.pipe.matched(u, v) }

// MateTable returns the current matching as a mate table (-1 = free) by
// driver-side oracle access — validation only, no protocol accounting. Use
// OpQMateOf/OpQMatched ops for protocol queries.
func (mm *MaximalMatching) MateTable() []int { return mm.m.MateTable() }

// AlmostMaximalMatching maintains a (2+ε)-approximate matching (§6).
type AlmostMaximalMatching struct {
	pipe
	m *amm.M
}

// ammStreamItem is the coarse claims oracle of the §6 structure: its
// epoch scheduler rebuilds data-dependent slices of the matching, so the
// safe schedule-time view is endpoint-level — updates hold both
// endpoints exclusively, reads hold their vertex read-shared. Coarser
// claims only cut the forming stream earlier (Apply itself orders every
// flushed chunk correctly), so this errs toward latency, never
// correctness.
func ammStreamItem(op graph.Op) sched.Item {
	if op.IsQuery() {
		return sched.Item{Read: []int64{int64(op.U)}, Tenant: op.Tenant}
	}
	return sched.Item{Excl: []int64{int64(op.U), int64(op.V)}, Tenant: op.Tenant}
}

// NewAlmostMaximalMatching builds the §6 structure.
func NewAlmostMaximalMatching(n int, eps float64, seed int64, opts ...Option) *AlmostMaximalMatching {
	o := buildOptions(opts)
	m := amm.New(amm.Config{N: n, Eps: eps, Seed: seed, Backend: o.backend, Workers: o.workers})
	return &AlmostMaximalMatching{pipe: newPipe(m.ApplyOps, ammStreamItem, m.Cluster()), m: m}
}

// Insert adds an edge.
func (am *AlmostMaximalMatching) Insert(u, v int) UpdateStats { return am.m.Insert(u, v) }

// Delete removes an edge.
func (am *AlmostMaximalMatching) Delete(u, v int) UpdateStats { return am.m.Delete(u, v) }

// ApplyBatch applies a batch of updates in one shared round window:
// endpoint-disjoint injection waves plus scheduler cycles shared across
// the batch (see amm.ApplyBatch).
func (am *AlmostMaximalMatching) ApplyBatch(b Batch) BatchStats { return am.m.ApplyBatch(b) }

// MateOf answers "who is v matched to?" (-1 = free) as a one-round
// protocol query at v's owner machine.
//
// Deprecated: Use Apply with QMateOf ops, or Ingest for streaming
// arrivals.
func (am *AlmostMaximalMatching) MateOf(v int) int { return am.mateOfBatch([]int{v})[0] }

// MateOfBatch answers k mate queries in one shared one-round window.
//
// Deprecated: Use Apply with QMateOf ops, or Ingest for streaming
// arrivals.
func (am *AlmostMaximalMatching) MateOfBatch(vs []int) []int { return am.pipe.mateOfBatch(vs) }

// Matched reports whether (u,v) is in the matching, as a protocol query.
//
// Deprecated: Use Apply with QMatched ops, or Ingest for streaming
// arrivals.
func (am *AlmostMaximalMatching) Matched(u, v int) bool { return am.pipe.matched(u, v) }

// MateTable returns the current matching as a mate table (-1 = free) by
// driver-side oracle access — validation only, no protocol accounting. Use
// OpQMateOf/OpQMatched ops for protocol queries.
func (am *AlmostMaximalMatching) MateTable() []int { return am.m.MateTable() }
