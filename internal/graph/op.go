package graph

import "fmt"

// OpKind classifies one operation of a unified op stream. The first two
// kinds are the write side (they carry an Update); the remaining kinds are
// typed protocol reads. Keeping reads and writes in one stream is the
// batch-dynamic view of a workload: the paper charges both to the same
// three DMPC resources, so a scheduler may interleave them freely as long
// as every read observes exactly the prefix state its stream position
// implies.
type OpKind int8

const (
	// OpInsert adds an edge.
	OpInsert OpKind = iota
	// OpDelete removes an edge.
	OpDelete
	// OpSetWeight assigns vertex U the weight W (dyncon tree DP). A
	// write-side op like OpInsert/OpDelete — it mutates state and
	// produces no Answer — but it carries no edge, so it has no legacy
	// Update form.
	OpSetWeight
	// OpConnected asks whether U and V are in one component (dyncon).
	OpConnected
	// OpComponentOf asks for U's component label (dyncon).
	OpComponentOf
	// OpMateOf asks for U's mate, -1 when free (dmm, amm).
	OpMateOf
	// OpMatched asks whether edge (U,V) is in the matching (dmm, amm).
	OpMatched
	// OpSubtreeSum asks for the sum of vertex weights over the subtree
	// of U when U's tree is rooted at V (dyncon tree DP). When U and V
	// are in different components — or U == V — the "subtree" is U's
	// whole component.
	OpSubtreeSum
	// OpPathSum asks for the sum of vertex weights along the U–V tree
	// path, endpoints included; 0 when U and V are disconnected (dyncon
	// tree DP).
	OpPathSum
	// OpTreeTop asks for the heaviest vertex of U's component — the
	// argmax of vertex weight, smallest id on ties (dyncon tree DP).
	OpTreeTop
)

// IsQuery reports whether the kind is a read.
func (k OpKind) IsQuery() bool { return k >= OpConnected }

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpSetWeight:
		return "set-weight"
	case OpConnected:
		return "connected?"
	case OpComponentOf:
		return "component-of?"
	case OpMateOf:
		return "mate-of?"
	case OpMatched:
		return "matched?"
	case OpSubtreeSum:
		return "subtree-sum?"
	case OpPathSum:
		return "path-sum?"
	case OpTreeTop:
		return "tree-top?"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one operation of a unified op stream: an edge insertion, an edge
// deletion, or a typed read. Single-vertex queries (OpComponentOf,
// OpMateOf) use U and leave V zero.
// Tenant tags the op with the logical stream it belongs to; the zero
// tenant is the single-tenant default and behaves exactly as before
// tenancy existed, so untagged streams (and every committed fuzz
// corpus) are unchanged.
type Op struct {
	Kind   OpKind
	U, V   int
	W      Weight
	Tenant int
}

// IsQuery reports whether the op is a read.
func (o Op) IsQuery() bool { return o.Kind.IsQuery() }

// Update converts a write op to the legacy Update form. It panics on a
// query op: a read has no Update representation, and silently coercing one
// would corrupt a replay. It also panics on OpSetWeight, which is a write
// but touches a vertex, not an edge — there is no Update for it either.
func (o Op) Update() Update {
	switch o.Kind {
	case OpInsert:
		return Update{Op: Insert, U: o.U, V: o.V, W: o.W}
	case OpDelete:
		return Update{Op: Delete, U: o.U, V: o.V}
	case OpSetWeight:
		panic(fmt.Sprintf("graph: Op %v is a vertex-weight write, it has no edge-update form", o))
	}
	panic(fmt.Sprintf("graph: Op %v is a query, not an update", o))
}

func (o Op) String() string {
	s := ""
	switch o.Kind {
	case OpInsert:
		s = fmt.Sprintf("insert(%d,%d,w=%d)", o.U, o.V, o.W)
	case OpSetWeight:
		s = fmt.Sprintf("set-weight(%d,w=%d)", o.U, o.W)
	case OpComponentOf, OpMateOf, OpTreeTop:
		s = fmt.Sprintf("%s(%d)", o.Kind, o.U)
	case OpSubtreeSum:
		s = fmt.Sprintf("subtree-sum?(%d,root=%d)", o.U, o.V)
	default:
		s = fmt.Sprintf("%s(%d,%d)", o.Kind, o.U, o.V)
	}
	if o.Tenant != 0 {
		s += fmt.Sprintf("@t%d", o.Tenant)
	}
	return s
}

// ForTenant returns a copy of the op tagged with the tenant id.
func (o Op) ForTenant(t int) Op {
	o.Tenant = t
	return o
}

// TenantOps tags every op of a stream with the tenant id, returning a
// new slice; the input is not modified.
func TenantOps(t int, ops []Op) []Op {
	out := make([]Op, len(ops))
	for i, o := range ops {
		o.Tenant = t
		out[i] = o
	}
	return out
}

// Op constructors, one per kind.

// OpIns returns an insert op.
func OpIns(u, v int, w Weight) Op { return Op{Kind: OpInsert, U: u, V: v, W: w} }

// OpDel returns a delete op.
func OpDel(u, v int) Op { return Op{Kind: OpDelete, U: u, V: v} }

// OpQConnected returns a connectivity query op.
func OpQConnected(u, v int) Op { return Op{Kind: OpConnected, U: u, V: v} }

// OpQComponentOf returns a component-label query op.
func OpQComponentOf(v int) Op { return Op{Kind: OpComponentOf, U: v} }

// OpQMateOf returns a mate query op.
func OpQMateOf(v int) Op { return Op{Kind: OpMateOf, U: v} }

// OpQMatched returns a matched-edge query op.
func OpQMatched(u, v int) Op { return Op{Kind: OpMatched, U: u, V: v} }

// OpSetW returns a vertex-weight write op: set v's weight to w.
func OpSetW(v int, w Weight) Op { return Op{Kind: OpSetWeight, U: v, W: w} }

// OpQSubtreeSum returns a subtree-aggregate query op: the weight sum over
// the subtree of u when u's tree is rooted at r (whole component when r
// is not in u's tree, or r == u).
func OpQSubtreeSum(r, u int) Op { return Op{Kind: OpSubtreeSum, U: u, V: r} }

// OpQPathSum returns a path-aggregate query op: the weight sum along the
// u–v tree path, endpoints included (0 when disconnected).
func OpQPathSum(u, v int) Op { return Op{Kind: OpPathSum, U: u, V: v} }

// OpQTreeTop returns a component-argmax query op: the heaviest vertex of
// u's component, smallest id on ties.
func OpQTreeTop(u int) Op { return Op{Kind: OpTreeTop, U: u} }

// OpUpdate lifts a legacy Update into an Op.
func OpUpdate(up Update) Op {
	if up.Op == Insert {
		return OpIns(up.U, up.V, up.W)
	}
	return OpDel(up.U, up.V)
}

// UpdateOps lifts a write-only batch into an op stream.
func UpdateOps(b Batch) []Op {
	ops := make([]Op, len(b))
	for i, up := range b {
		ops[i] = OpUpdate(up)
	}
	return ops
}

// Answer is one query's result; which field is meaningful depends on the
// query kind: Bool answers OpConnected and OpMatched, Int answers
// OpComponentOf (the component label), OpMateOf (the mate, -1 = free),
// OpSubtreeSum and OpPathSum (the weight sum), and OpTreeTop (the
// heaviest vertex's id).
// Rejected marks a query refused by a per-tenant admission policy before
// it ran: Bool and Int are meaningless and the query observed no state —
// the entry exists so Results stays positionally aligned with the query
// stream instead of silently dropping the op.
type Answer struct {
	Bool     bool
	Int      int64
	Rejected bool
}

// Results holds one Answer per query op of a stream, in stream order:
// Results[j] answers the j-th op with IsQuery() true. Write ops produce no
// entry, so len(Results) equals CountOps' query count.
type Results []Answer

// CountOps counts a stream's operations by side.
func CountOps(ops []Op) (updates, queries int) {
	for _, o := range ops {
		if o.IsQuery() {
			queries++
		} else {
			updates++
		}
	}
	return updates, queries
}

// SplitOps splits an op stream into consecutive chunks of at most k ops,
// preserving the relative order of updates and queries (a chunk is a
// contiguous window, so it cannot reorder anything). Like Chunk, k <= 0 is
// coerced to 1 (singleton chunks, per-op semantics) and k is clamped to
// the stream length first so the capacity expression cannot overflow for k
// near MaxInt. An empty stream yields nil; an all-query stream chunks like
// any other.
func SplitOps(ops []Op, k int) [][]Op {
	if len(ops) == 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > len(ops) {
		k = len(ops)
	}
	out := make([][]Op, 0, (len(ops)+k-1)/k)
	for len(ops) > 0 {
		n := k
		if n > len(ops) {
			n = len(ops)
		}
		out = append(out, ops[:n:n])
		ops = ops[n:]
	}
	return out
}
