package graph

import (
	"math"
	"math/rand"
	"testing"
)

// TestSplitOpsBoundaries pins the Chunk-style edge cases on the op-stream
// splitter: k <= 0 coerces to singleton chunks, empty input yields nil,
// k at or past the stream length yields one chunk, and k near MaxInt must
// not overflow the capacity expression.
func TestSplitOpsBoundaries(t *testing.T) {
	ops := []Op{OpIns(0, 1, 1), OpQConnected(0, 1), OpDel(0, 1), OpQComponentOf(2), OpIns(2, 3, 5)}
	cases := []struct {
		k     int
		sizes []int
	}{
		{math.MinInt, []int{1, 1, 1, 1, 1}},
		{-1, []int{1, 1, 1, 1, 1}},
		{0, []int{1, 1, 1, 1, 1}},
		{1, []int{1, 1, 1, 1, 1}},
		{2, []int{2, 2, 1}},
		{len(ops), []int{5}},
		{len(ops) + 1, []int{5}},
		{math.MaxInt, []int{5}},
	}
	for _, tc := range cases {
		got := SplitOps(ops, tc.k)
		if len(got) != len(tc.sizes) {
			t.Fatalf("k=%d: %d chunks, want %d", tc.k, len(got), len(tc.sizes))
		}
		var flat []Op
		for i, c := range got {
			if len(c) != tc.sizes[i] {
				t.Fatalf("k=%d: chunk %d has %d ops, want %d", tc.k, i, len(c), tc.sizes[i])
			}
			flat = append(flat, c...)
		}
		for i, o := range flat {
			if o != ops[i] {
				t.Fatalf("k=%d: op %d reordered: got %v, want %v", tc.k, i, o, ops[i])
			}
		}
	}
	if got := SplitOps(nil, 4); got != nil {
		t.Fatalf("SplitOps(nil) = %v, want nil", got)
	}
	if got := SplitOps([]Op{}, 4); got != nil {
		t.Fatalf("SplitOps(empty) = %v, want nil", got)
	}
}

// TestSplitOpsAllQueries pins that a read-only stream splits like any
// other — no special casing that could drop or reorder trailing reads.
func TestSplitOpsAllQueries(t *testing.T) {
	ops := make([]Op, 7)
	for i := range ops {
		ops[i] = OpQMateOf(i)
	}
	chunks := SplitOps(ops, 3)
	if len(chunks) != 3 || len(chunks[0]) != 3 || len(chunks[1]) != 3 || len(chunks[2]) != 1 {
		t.Fatalf("all-query split shapes wrong: %v", chunks)
	}
	seen := 0
	for _, c := range chunks {
		for _, o := range c {
			if o.U != seen {
				t.Fatalf("query order broken: got %d, want %d", o.U, seen)
			}
			seen++
		}
	}
}

// TestSplitOpsPreservesRelativeOrder pins, on random mixed streams, that
// concatenating the chunks reproduces the stream exactly — in particular
// the relative update/query order every equivalence argument rests on.
func TestSplitOpsPreservesRelativeOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(60)
		ops := make([]Op, n)
		for i := range ops {
			switch rng.Intn(4) {
			case 0:
				ops[i] = OpIns(rng.Intn(8), rng.Intn(8), 1)
			case 1:
				ops[i] = OpDel(rng.Intn(8), rng.Intn(8))
			case 2:
				ops[i] = OpQConnected(rng.Intn(8), rng.Intn(8))
			default:
				ops[i] = OpQMateOf(rng.Intn(8))
			}
		}
		k := rng.Intn(n+3) - 1
		var flat []Op
		for _, c := range SplitOps(ops, k) {
			flat = append(flat, c...)
		}
		if len(flat) != len(ops) {
			t.Fatalf("trial %d (k=%d): %d ops after split, want %d", trial, k, len(flat), len(ops))
		}
		for i := range ops {
			if flat[i] != ops[i] {
				t.Fatalf("trial %d (k=%d): op %d changed: %v vs %v", trial, k, i, flat[i], ops[i])
			}
		}
	}
}

// TestCountOpsAndUpdateConversion pins the side counters and the
// update/query conversion guards.
func TestCountOpsAndUpdateConversion(t *testing.T) {
	ops := []Op{OpIns(0, 1, 2), OpQMatched(0, 1), OpDel(0, 1), OpQMateOf(1), OpQComponentOf(0)}
	u, q := CountOps(ops)
	if u != 2 || q != 3 {
		t.Fatalf("CountOps = (%d,%d), want (2,3)", u, q)
	}
	if up := ops[0].Update(); up.Op != Insert || up.U != 0 || up.V != 1 || up.W != 2 {
		t.Fatalf("insert conversion wrong: %v", up)
	}
	if up := ops[2].Update(); up.Op != Delete {
		t.Fatalf("delete conversion wrong: %v", up)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Update() on a query op did not panic")
		}
	}()
	ops[1].Update()
}

// TestMixedStreamTracksReadFrac pins the mixed-workload generator: updates
// keep their order and the realized read fraction lands on the target.
func TestMixedStreamTracksReadFrac(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	updates := RandomStream(32, 200, 0.6, 10, rng)
	ops := MixedStream(updates, 0.5, func(r *rand.Rand) Op {
		return OpQConnected(r.Intn(32), r.Intn(32))
	}, rng)
	var got []Update
	queries := 0
	for _, o := range ops {
		if o.IsQuery() {
			queries++
			continue
		}
		got = append(got, o.Update())
	}
	if len(got) != len(updates) {
		t.Fatalf("%d updates survived, want %d", len(got), len(updates))
	}
	for i := range got {
		if got[i] != updates[i] {
			t.Fatalf("update %d reordered: %v vs %v", i, got[i], updates[i])
		}
	}
	frac := float64(queries) / float64(len(ops))
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("read fraction %.2f, want ~0.5", frac)
	}
}
