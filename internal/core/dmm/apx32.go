package dmm

import (
	"sort"

	"dmpc/internal/mpc"
)

// §4: 3/2-approximate matching. A maximal matching with no augmenting path
// of length 3 is a 3/2-approximation of the maximum matching (Hopcroft–
// Karp, k=2). On top of the §3 machinery this file maintains, per vertex,
// a free-neighbor counter on the statistics machines, and eliminates every
// length-3 augmenting path an update could create:
//
//   - counters adjust exactly: an edge event contributes the other
//     endpoint's pre-event status; matching-status flips are coalesced by
//     parity per update (the adjacency is constant after the edge event)
//     and flushed by scanning the flipped vertex's list and batching
//     deltas to the O(n/√N) statistics machines — the paper's O(√N)-word,
//     O(n/√N)-machine flow;
//   - a vertex left free after the §3 logic searches its neighbors' mates
//     for one with a positive free-neighbor counter and rotates the
//     matching along the augmenting path (counter value 1 may refer to the
//     searching vertex itself, so the chosen mate is verified by a scan
//     excluding it; a counter of 2 or more always verifies).

// ctrEdgeEvent applies the exact counter adjustment for the update's edge
// event: the other endpoint's counter changes by ±1 if this endpoint was
// free at event time.
func (c *coordinator) ctrEdgeEvent(ctx *mpc.Ctx, x, y int32, xFree, yFree bool, ins bool) {
	d := int32(1)
	if !ins {
		d = -1
	}
	if yFree {
		c.send(ctx, c.statsOf(x), cmsg{Kind: cCtrAdd, Vs: []int32{x}, Ds: []int32{d}})
	}
	if xFree {
		c.send(ctx, c.statsOf(y), cmsg{Kind: cCtrAdd, Vs: []int32{y}, Ds: []int32{d}})
	}
}

// counterFlush propagates the net status flips accumulated so far: for
// each vertex whose status changed, its neighbor list is fetched and ±1
// deltas are batched to the statistics machines.
func (c *coordinator) counterFlush(ctx *mpc.Ctx, cont func(ctx *mpc.Ctx)) {
	var pending []int32
	for v, fi := range c.flips {
		if fi.flips%2 == 1 {
			pending = append(pending, v)
		}
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })
	dirs := make(map[int32]int32, len(pending))
	for _, v := range pending {
		if c.flips[v].origFree {
			dirs[v] = -1 // became matched: neighbors lose a free neighbor
		} else {
			dirs[v] = +1
		}
	}
	c.flips = make(map[int32]*flipInfo)
	c.flushNext(ctx, pending, dirs, 0, cont)
}

func (c *coordinator) flushNext(ctx *mpc.Ctx, pending []int32, dirs map[int32]int32, i int, cont func(ctx *mpc.Ctx)) {
	if i >= len(pending) {
		cont(ctx)
		return
	}
	v := pending[i]
	c.statsReq(ctx, v, 0)
	c.await(ctx, 1, func(ctx *mpc.Ctx) {
		s := c.statOf(v)
		machines := c.vertexMachines(s)
		if len(machines) == 0 {
			c.flushNext(ctx, pending, dirs, i+1, cont)
			return
		}
		for _, m := range machines {
			c.send(ctx, m, cmsg{Kind: cList, V: v, H: c.suffixFor(m), Target: m})
		}
		c.await(ctx, len(machines), func(ctx *mpc.Ctx) {
			// Batch ±1 deltas to the stats machines, grouped by owner.
			group := map[int32]*cmsg{}
			for _, r := range c.cur.replies {
				if r.Kind != cListRep {
					continue
				}
				for _, rec := range r.Recs {
					sm := c.statsOf(rec.other)
					g, ok := group[sm]
					if !ok {
						g = &cmsg{Kind: cCtrAdd}
						group[sm] = g
					}
					g.Vs = append(g.Vs, rec.other)
					g.Ds = append(g.Ds, dirs[v])
				}
			}
			for sm, g := range group {
				c.send(ctx, sm, *g)
			}
			c.flushNext(ctx, pending, dirs, i+1, cont)
		})
	})
}

// vertexMachines lists the storage machines holding v's records.
func (c *coordinator) vertexMachines(s stat) []int32 {
	var out []int32
	if s.home >= 0 {
		out = append(out, s.home)
	}
	out = append(out, s.suspended...)
	return out
}

// insertMatch32 is the §4 case analysis after an insert's edge is stored.
func (c *coordinator) insertMatch32(ctx *mpc.Ctx, x int32, sx stat, y int32, sy stat) {
	xFree, yFree := sx.mate < 0, sy.mate < 0
	switch {
	case xFree && yFree:
		// Maximality ensured neither endpoint had a free neighbor, so no
		// augmenting path appears.
		c.matchPair(ctx, x, y, sx.heavy, sy.heavy)
		c.finishUpdate(ctx)
	case xFree && sx.heavy:
		c.surrogate(ctx, x, sx, c.finishUpdate)
	case yFree && sy.heavy:
		c.surrogate(ctx, y, sy, c.finishUpdate)
	case xFree:
		// x free and light, y matched: the new edge may close the
		// augmenting path x - (y,y') - w.
		c.aug3ViaEdge(ctx, x, sx, y, sy, c.finishUpdate)
	case yFree:
		c.aug3ViaEdge(ctx, y, sy, x, sx, c.finishUpdate)
	default:
		c.finishUpdate(ctx)
	}
}

// aug3ViaEdge resolves the path free - (matched, mate) - free created by a
// new edge (free, matched): if mate has a free neighbor w != free, rotate.
func (c *coordinator) aug3ViaEdge(ctx *mpc.Ctx, free int32, sFree stat, matched int32, sMatched stat, cont func(ctx *mpc.Ctx)) {
	mate := sMatched.mate
	c.send(ctx, c.statsOf(mate), cmsg{Kind: cCtrGet, Vs: []int32{mate}})
	c.statsReq(ctx, mate, 0)
	c.await(ctx, 2, func(ctx *mpc.Ctx) {
		sMate := c.statOf(mate)
		ctr := c.ctrOf(mate)
		if ctr < 1 {
			cont(ctx)
			return
		}
		c.scanFreeExcluding(ctx, mate, sMate, free, func(ctx *mpc.Ctx, w int32, wHeavy, found bool) {
			if !found {
				cont(ctx)
				return
			}
			c.unmatchPair(ctx, matched, mate)
			c.matchPair(ctx, matched, free, sMatched.heavy, sFree.heavy)
			c.matchPair(ctx, mate, w, sMate.heavy, wHeavy)
			cont(ctx)
		})
	})
}

// scanFreeExcluding scans v's machines for a free neighbor other than
// excl, walking the suspended stack if needed.
func (c *coordinator) scanFreeExcluding(ctx *mpc.Ctx, v int32, s stat, excl int32, done func(ctx *mpc.Ctx, w int32, wHeavy, found bool)) {
	machines := c.vertexMachines(s)
	var step func(ctx *mpc.Ctx, i int)
	step = func(ctx *mpc.Ctx, i int) {
		if i >= len(machines) {
			done(ctx, -1, false, false)
			return
		}
		m := machines[i]
		c.send(ctx, m, cmsg{
			Kind: cScan, V: v, WantFree: true, Exclude: excl,
			H: c.suffixFor(m), Target: m,
		})
		c.await(ctx, 1, func(ctx *mpc.Ctx) {
			r := c.scanRep()
			if r.FoundFree {
				done(ctx, r.FreeW, r.Rec.heavy, true)
				return
			}
			step(ctx, i+1)
		})
	}
	step(ctx, 0)
}

func (c *coordinator) ctrOf(v int32) int32 {
	for _, r := range c.cur.replies {
		if r.Kind == cCtrRep {
			for i, x := range r.Vs {
				if x == v {
					return r.Ds[i]
				}
			}
		}
	}
	return 0
}

// augSweep runs the delete-side elimination: every vertex left free by the
// §3 logic is checked for a length-3 augmenting path through one of its
// neighbors' mates.
func (c *coordinator) augSweep(ctx *mpc.Ctx, cont func(ctx *mpc.Ctx)) {
	var cands []int32
	for v := range c.freed {
		cands = append(cands, v)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	c.freed = make(map[int32]bool)
	c.sweepNext(ctx, cands, 0, cont)
}

func (c *coordinator) sweepNext(ctx *mpc.Ctx, cands []int32, i int, cont func(ctx *mpc.Ctx)) {
	if i >= len(cands) {
		cont(ctx)
		return
	}
	// Flips from a previous rotation must land in the counters before the
	// next candidate reads them.
	c.counterFlush(ctx, func(ctx *mpc.Ctx) {
		c.aug3From(ctx, cands[i], func(ctx *mpc.Ctx) {
			c.sweepNext(ctx, cands, i+1, cont)
		})
	})
}

// aug3From searches for an augmenting path of length 3 starting at z (a
// vertex that is free after the base update) and rotates the matching
// along it if found.
func (c *coordinator) aug3From(ctx *mpc.Ctx, z int32, cont func(ctx *mpc.Ctx)) {
	c.statsReq(ctx, z, 0)
	c.await(ctx, 1, func(ctx *mpc.Ctx) {
		s := c.statOf(z)
		if s.mate >= 0 || s.deg == 0 {
			cont(ctx)
			return
		}
		machines := c.vertexMachines(s)
		for _, m := range machines {
			c.send(ctx, m, cmsg{Kind: cList, V: z, H: c.suffixFor(m), Target: m})
		}
		c.await(ctx, len(machines), func(ctx *mpc.Ctx) {
			// Collect matched neighbors' mates; remember each mate's
			// partner record (z's neighbor, with its heaviness mirror). A
			// free neighbor in the list is matched immediately — the base
			// logic normally prevents this, but it preserves maximality
			// under the rare fallback paths.
			partner := map[int32]edgeRec{}
			var mates []int32
			for _, r := range c.cur.replies {
				if r.Kind != cListRep {
					continue
				}
				for _, rec := range r.Recs {
					if !rec.matched {
						c.matchPair(ctx, z, rec.other, s.heavy, rec.heavy)
						cont(ctx)
						return
					}
					if rec.mate >= 0 {
						if _, dup := partner[rec.mate]; !dup {
							partner[rec.mate] = rec
							mates = append(mates, rec.mate)
						}
					}
				}
			}
			if len(mates) == 0 {
				cont(ctx)
				return
			}
			// Batched counter reads grouped by statistics machine.
			group := map[int32][]int32{}
			for _, mt := range mates {
				group[c.statsOf(mt)] = append(group[c.statsOf(mt)], mt)
			}
			for sm, vs := range group {
				c.send(ctx, sm, cmsg{Kind: cCtrGet, Vs: vs})
			}
			c.await(ctx, len(group), func(ctx *mpc.Ctx) {
				var candMates []int32
				ctrs := map[int32]int32{}
				for _, r := range c.cur.replies {
					if r.Kind != cCtrRep {
						continue
					}
					for i, v := range r.Vs {
						if r.Ds[i] >= 1 {
							candMates = append(candMates, v)
							ctrs[v] = r.Ds[i]
						}
					}
				}
				// Prefer counters >= 2 (always verifiable) and stable order.
				sort.Slice(candMates, func(a, b int) bool {
					ca, cb := ctrs[candMates[a]] >= 2, ctrs[candMates[b]] >= 2
					if ca != cb {
						return ca
					}
					return candMates[a] < candMates[b]
				})
				c.tryRotate(ctx, z, s, partner, candMates, 0, cont)
			})
		})
	})
}

// tryRotate verifies candidates in order: the mate must have a free
// neighbor other than z; the first verified candidate rotates the
// matching.
func (c *coordinator) tryRotate(ctx *mpc.Ctx, z int32, sz stat, partner map[int32]edgeRec, mates []int32, i int, cont func(ctx *mpc.Ctx)) {
	if i >= len(mates) {
		cont(ctx) // no length-3 augmenting path through z
		return
	}
	mate := mates[i]
	c.statsReq(ctx, mate, 0)
	c.await(ctx, 1, func(ctx *mpc.Ctx) {
		sMate := c.statOf(mate)
		wRec := partner[mate]
		w := wRec.other
		if sMate.mate != w {
			// A stale mirror or an earlier rotation re-matched this pair.
			c.tryRotate(ctx, z, sz, partner, mates, i+1, cont)
			return
		}
		c.scanFreeExcluding(ctx, mate, sMate, z, func(ctx *mpc.Ctx, q int32, qHeavy, found bool) {
			if !found {
				c.tryRotate(ctx, z, sz, partner, mates, i+1, cont)
				return
			}
			c.unmatchPair(ctx, w, mate)
			c.matchPair(ctx, z, w, sz.heavy, wRec.heavy)
			c.matchPair(ctx, mate, q, sMate.heavy, qHeavy)
			cont(ctx)
		})
	})
}
