package graph

import "math/rand"

// Pair names the two endpoints of a connectivity (or matching) query. A
// slice of Pairs is the read-side analogue of a Batch: a query batch shares
// a single scatter/gather round window in the DMPC simulator, so the
// per-query round cost amortizes exactly like a batch amortizes update
// rounds.
type Pair struct {
	U, V int
}

// RandomPairs draws k uniform vertex pairs (u != v) on n vertices, the
// standard read workload for mixed read/write benchmarks.
func RandomPairs(n, k int, rng *rand.Rand) []Pair {
	if n < 2 {
		return nil
	}
	out := make([]Pair, 0, k)
	for len(out) < k {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		out = append(out, Pair{U: u, V: v})
	}
	return out
}

// RandomVerts draws k uniform vertex ids on n vertices, the read workload
// for single-vertex queries (MateOf, ComponentOf).
func RandomVerts(n, k int, rng *rand.Rand) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = rng.Intn(n)
	}
	return out
}
