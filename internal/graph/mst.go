package graph

import "sort"

// MST oracles based on Kruskal's algorithm.

// MSFEdges returns a minimum spanning forest of g (one MST per component),
// with deterministic tie-breaking by (weight, u, v).
func MSFEdges(g *Graph) []WEdge {
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].W != edges[j].W {
			return edges[i].W < edges[j].W
		}
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var out []WEdge
	for _, e := range edges {
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			parent[ru] = rv
			out = append(out, e)
		}
	}
	return out
}

// MSFWeight returns the total weight of a minimum spanning forest of g.
func MSFWeight(g *Graph) Weight {
	var total Weight
	for _, e := range MSFEdges(g) {
		total += e.W
	}
	return total
}

// ForestWeight sums the weights of the given edges as found in g; ok is
// false if any edge is missing from g.
func ForestWeight(g *Graph, edges []Edge) (total Weight, ok bool) {
	for _, e := range edges {
		w, present := g.WeightOf(e.U, e.V)
		if !present {
			return 0, false
		}
		total += w
	}
	return total, true
}

// BucketWeight rounds w down to the representative of its (1+eps) bucket:
// bucket k holds weights in [(1+eps)^k, (1+eps)^{k+1}) and is represented
// by ⌊(1+eps)^k⌋. The representative b satisfies b <= w < b*(1+eps)+1+eps
// (the additive slack comes from integer truncation), so rounding all
// weights this way changes the MSF weight by at most a (1+eps) factor plus
// one unit per edge — the paper's §5.1 preprocessing uses exactly this
// bucketization.
func BucketWeight(w Weight, eps float64) Weight {
	if w <= 0 || eps <= 0 {
		return w
	}
	base := 1.0 + eps
	k := 0
	x := 1.0
	for x*base <= float64(w) {
		x *= base
		k++
	}
	return Weight(x)
}
