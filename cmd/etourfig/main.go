// Command etourfig regenerates Figures 1 and 2 of the paper: the Euler
// tours before and after a reroot, an edge insertion and an edge deletion,
// with the [first,last] appearance brackets. The sequences are produced by
// the same index-arithmetic engine the dynamic connectivity algorithm
// runs on (internal/etour) and are pinned byte-exactly in that package's
// tests.
//
// Usage:
//
//	etourfig            # both figures
//	etourfig -figure 1  # only Figure 1
package main

import (
	"flag"
	"fmt"

	"dmpc/internal/etour"
)

const (
	vA = iota
	vB
	vC
	vD
	vE
	vF
	vG
)

var names = []string{"a", "b", "c", "d", "e", "f", "g"}

func printState(label string, fo *etour.Forest, reps []int) {
	fmt.Printf("%s\n", label)
	for i, r := range reps {
		tour := fo.TourOf(r)
		if tour.Len() == 0 {
			continue
		}
		fmt.Printf("  Euler tour %d: %s\n", i+1, tour.Render(names))
		var vs []int
		for v := 0; v < 7; v++ {
			if fo.Comp(v) == fo.Comp(r) {
				vs = append(vs, v)
			}
		}
		fmt.Printf("  brackets:     %s\n", tour.Brackets(vs, names))
	}
	fmt.Println()
}

func figure1() {
	fmt.Println("=== Figure 1: reroot and insert ===")
	fo := etour.NewForest(7)
	fo.BuildFromTree(map[int][]int{vB: {vC, vE}, vC: {vB, vD}, vD: {vC}, vE: {vB}}, vB)
	fo.BuildFromTree(map[int][]int{vA: {vF}, vF: {vA, vG}, vG: {vF}}, vA)
	printState("(i) a forest of two trees:", fo, []int{vB, vA})

	fo.Reroot(vE)
	printState("(ii) after setting e to be the root of its tree:", fo, []int{vB, vA})

	fo2 := etour.NewForest(7)
	fo2.BuildFromTree(map[int][]int{vB: {vC, vE}, vC: {vB, vD}, vD: {vC}, vE: {vB}}, vB)
	fo2.BuildFromTree(map[int][]int{vA: {vF}, vF: {vA, vG}, vG: {vF}}, vA)
	fo2.Link(vG, vE)
	printState("(iii) after the insertion of the edge (e,g):", fo2, []int{vA})
}

func figure2() {
	fmt.Println("=== Figure 2: delete ===")
	fo := etour.NewForest(7)
	fo.BuildFromTree(map[int][]int{
		vA: {vB, vF}, vB: {vA, vC, vE}, vC: {vB, vD}, vD: {vC}, vE: {vB},
		vF: {vA, vG}, vG: {vF},
	}, vA)
	printState("(i) a tree and its E-tour:", fo, []int{vA})

	fo.Cut(vA, vB)
	printState("(iii) after the deletion of the edge (a,b):", fo, []int{vB, vA})
}

func main() {
	fig := flag.Int("figure", 0, "which figure to print (1 or 2; 0 = both)")
	flag.Parse()
	if *fig == 0 || *fig == 1 {
		figure1()
	}
	if *fig == 0 || *fig == 2 {
		figure2()
	}
}
