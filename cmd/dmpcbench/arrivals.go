package main

import (
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"

	"dmpc"
	"dmpc/internal/graph"
)

// --- streaming ingestion: per-op latency under timed arrivals -------------

// arrivalRow is one (algorithm, arrival process, batch bound) run of the
// streaming front door: the tail of the per-op rounds-from-arrival-to-
// answer distribution, the makespan, and the amortized rounds/op the
// latency was bought at.
type arrivalRow struct {
	Name        string  `json:"name"`
	Gen         string  `json:"arrivals"`
	K           int     `json:"k"`
	Ops         int     `json:"ops"`
	Flushes     int     `json:"flushes"`
	P50         int64   `json:"latency_p50_rounds"`
	P95         int64   `json:"latency_p95_rounds"`
	P99         int64   `json:"latency_p99_rounds"`
	Makespan    int64   `json:"makespan_rounds"`
	RoundsPerOp float64 `json:"rounds_per_op"`
}

// latencyAutoRow compares an unconstrained AutoBatcher against a
// TargetP99Rounds-constrained one over the same arrival schedule: the
// tail bound must buy its latency by settling at a smaller k.
type latencyAutoRow struct {
	Name     string `json:"name"`
	Gen      string `json:"arrivals"`
	Target   int    `json:"target_p99_rounds"`
	FreeK    int    `json:"unconstrained_final_k"`
	BoundK   int    `json:"constrained_final_k"`
	FreeP99  int64  `json:"unconstrained_p99"`
	BoundP99 int64  `json:"constrained_p99"`
}

// arrivalRunner builds one algorithm's fresh Pipeline plus the mixed op
// stream it ingests (reads interleaved at readfrac 0.75 — read-heavy,
// so batch-bound flushes and not just conflict cuts shape the latency).
type arrivalRunner struct {
	name string
	mk   func() dmpc.Pipeline
	ops  []dmpc.Op
}

func arrivalRunners(n, nUpdates int, seed int64) []arrivalRunner {
	capEdges := 6 * n
	ccStream := graph.RandomStream(n, nUpdates, 0.55, 50, rand.New(rand.NewSource(seed+100)))
	ccOps := graph.MixedStream(ccStream, 0.75, func(r *rand.Rand) graph.Op {
		return graph.OpQConnected(r.Intn(n), r.Intn(n))
	}, rand.New(rand.NewSource(seed+200)))
	mmStream := graph.RandomStream(n, nUpdates, 0.55, 1, rand.New(rand.NewSource(seed+300)))
	mmOps := graph.MixedStream(mmStream, 0.75, func(r *rand.Rand) graph.Op {
		return graph.OpQMateOf(r.Intn(n))
	}, rand.New(rand.NewSource(seed+400)))
	return []arrivalRunner{
		{"Connected comps (§5)", func() dmpc.Pipeline { return dmpc.NewConnectivity(n, capEdges, benchOpts()...) }, ccOps},
		{"Maximal matching (§3)", func() dmpc.Pipeline { return dmpc.NewMaximalMatching(n, capEdges, benchOpts()...) }, mmOps},
	}
}

// arrivalSchedules stamps one op stream with the two arrival processes
// under test: Poisson (mean inter-arrival gap 4 rounds) and bursty
// (storms of 16 back-to-back ops, 48 quiet rounds between storms). The
// rates keep the cluster under ~70% utilization so the tail reflects
// batching policy, not an unstable queue.
func arrivalSchedules(ops []dmpc.Op, seed int64) []struct {
	gen string
	arr []dmpc.Arrival
} {
	return []struct {
		gen string
		arr []dmpc.Arrival
	}{
		{"poisson", dmpc.PoissonArrivals(ops, 4, rand.New(rand.NewSource(seed+500)))},
		{"bursty", dmpc.BurstyArrivals(ops, 16, 0, 48)},
	}
}

// arrivalTable measures the streaming front door at fixed batch bounds
// k ∈ {8, 64, 256} for each algorithm and arrival process (fresh
// instances per cell; conflict flushes cut the stream below k whenever
// the claims say so).
func arrivalTable(n, nUpdates int, seed int64) []arrivalRow {
	var rows []arrivalRow
	for _, ar := range arrivalRunners(n, nUpdates, seed) {
		for _, sched := range arrivalSchedules(ar.ops, seed) {
			for _, k := range []int{8, 64, 256} {
				_, st := dmpc.Ingest(ar.mk(), sched.arr, dmpc.IngestorConfig{MaxBatch: k})
				rows = append(rows, arrivalRow{
					Name: ar.name, Gen: sched.gen, K: k,
					Ops: st.Ops, Flushes: st.Flushes,
					P50: st.P50(), P95: st.P95(), P99: st.P99(),
					Makespan: st.Makespan, RoundsPerOp: st.RoundsPerOp(),
				})
			}
		}
	}
	return rows
}

// boundsOnlyPipeline hides the facade's claims oracle from the Ingestor,
// so ingestion runs in the foreign-Pipeline regime: no admission control,
// only the configured bounds cut the stream. With claims on, the
// Admitter refuses any op that would not fit the forming set's first
// wave, which caps a chunk's rounds by construction and hides the
// batch-size/tail trade this table exists to measure.
type boundsOnlyPipeline struct{ p dmpc.Pipeline }

func (o boundsOnlyPipeline) Apply(ops []dmpc.Op) (dmpc.Results, dmpc.MixedStats) {
	return o.p.Apply(ops)
}
func (o boundsOnlyPipeline) Cluster() *dmpc.Cluster { return o.p.Cluster() }
func (o boundsOnlyPipeline) Close()                 { o.p.Close() }

// latencyAutoTable runs one Poisson arrival schedule through two
// AutoBatcher-driven ingests — one free, one tail-constrained — and
// records where each knee search settled. Admission control is off (see
// boundsOnlyPipeline), so every flush is a k-bound full chunk the knee
// search sees, and a chunk's rounds grow with the conflicting updates it
// serializes. Unconstrained, the search chases amortized rounds/op
// toward large k; the tail bound must refuse those windows and settle
// smaller.
func latencyAutoTable(n, nUpdates int, seed int64) []latencyAutoRow {
	const target = 40
	ar := arrivalRunners(n, nUpdates, seed)[0] // connectivity, mixed 0.75
	sched := arrivalSchedules(ar.ops, seed)[0] // poisson
	run := func(target int) (int, int64) {
		p := ar.mk()
		ab := dmpc.NewAutoBatcher(dmpc.AutoBatcherConfig{
			ApplyOps:        p.Apply,
			CapWords:        p.Cluster().Machines() * p.Cluster().MemWords(),
			StartK:          8,
			MaxK:            256,
			TargetP99Rounds: target,
		})
		_, st := dmpc.Ingest(boundsOnlyPipeline{p}, sched.arr, dmpc.IngestorConfig{Auto: ab})
		return ab.K(), st.P99()
	}
	freeK, freeP99 := run(0)
	boundK, boundP99 := run(target)
	return []latencyAutoRow{{
		Name: ar.name + ", bounds-only", Gen: "poisson", Target: target,
		FreeK: freeK, BoundK: boundK, FreeP99: freeP99, BoundP99: boundP99,
	}}
}

func printArrivalTable(rows []arrivalRow, lrows []latencyAutoRow) {
	fmt.Println("\nStreaming ingestion: per-op latency under timed arrivals (readfrac 0.75):")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Algorithm\tarrivals\tk\tops\tflushes\tp50\tp95\tp99\tmakespan\trounds/op\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.2f\n",
			r.Name, r.Gen, r.K, r.Ops, r.Flushes, r.P50, r.P95, r.P99, r.Makespan, r.RoundsPerOp)
	}
	w.Flush()
	fmt.Println("(latency is rounds from arrival to answer; a larger batch bound amortizes")
	fmt.Println(" rounds/op but holds early arrivals longer, which is the p99 column's story)")
	if len(lrows) > 0 {
		fmt.Println("\nTail-constrained adaptive batching (TargetP99Rounds vs unconstrained):")
		w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintf(w, "Algorithm\tarrivals\ttarget p99\tfree k\tfree p99\tbound k\tbound p99\n")
		for _, r := range lrows {
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%d\t%d\n",
				r.Name, r.Gen, r.Target, r.FreeK, r.FreeP99, r.BoundK, r.BoundP99)
		}
		w.Flush()
		fmt.Println("(the tail bound caps the knee search: windows whose worst-case p99 exceeds")
		fmt.Println(" the target halve k and lower the search ceiling, so the constrained run")
		fmt.Println(" settles at a smaller batch than the pure rounds/op knee)")
	}
}
