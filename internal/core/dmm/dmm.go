// Package dmm implements §3 of the paper: a deterministic fully-dynamic
// maximal matching in the DMPC model with O(1) rounds per update, O(1)
// active machines per round and O(√N) communication per round, in the
// worst case.
//
// # Roles
//
// Machine 0 is the coordinator MC. It stores the update-history H — a ring
// of the last O(√N) updates to the graph AND to the maintained matching
// (including light/heavy transitions) — plus the storage directory
// (per-machine free space, light-machine assignment, alive/suspended
// machines of heavy vertices) and a per-machine synchronization cursor
// into H.
//
// Machines 1..k are statistics machines (k = O(n/√N)); the statistics of
// vertex v (degree, mate, light/heavy, storage locations) live on machine
// 1 + v/statsPerMachine and are authoritative: every update flows through
// them via MC.
//
// The remaining machines store adjacency: a light vertex keeps its whole
// list on one (shared) light machine; a heavy vertex keeps an alive window
// of up to ⌈√(2·cap)⌉ edges on an exclusive machine and the rest on a
// stack of suspended machines. Each stored edge carries a mirror of the
// other endpoint's matching status; mirrors may be up to O(√N) updates
// stale, and every message from MC to a storage machine carries the H
// suffix since that machine's last contact, letting it reconstruct current
// state locally — the paper's need-to-know buffer. One additional machine
// is refreshed round-robin per update, so every machine is contacted at
// least every O(√N) updates and the ring never overflows.
//
// # Deviations
//
// Physical deletion of suspended edges is lazy (applied at the next
// contact), as in the paper's updateMachine; the light-machine merge rule
// is occupancy-threshold-based rather than pairwise-exhaustive, preserving
// the Lemma 3.2 machine bound within constants. If the alive window of a
// heavy vertex offers neither a free neighbor nor a surrogate with a light
// mate (impossible at paper scale by the degree-counting argument, but
// possible on tiny graphs), the suspended stack is scanned as a counted
// fallback.
package dmm

import (
	"fmt"
	"math"

	"dmpc/internal/graph"
	"dmpc/internal/mpc"
	"dmpc/internal/sched"
)

// Config sizes a dynamic maximal matching instance.
type Config struct {
	N        int // vertices
	CapEdges int // maximum simultaneous edges (the paper's m)
	// MemWords overrides the per-machine memory (0 = derived from CapEdges).
	MemWords int
	// ThreeHalves enables the §4 extension: free-neighbor counters on the
	// statistics machines and elimination of all length-3 augmenting
	// paths, upgrading the guarantee from maximal (2-approximate) to
	// 3/2-approximate at the price of O(n/√N) active machines per round.
	// Per §4 the graph must start empty (it does).
	ThreeHalves bool
	// Backend selects the cluster execution backend (zero value =
	// mpc.BackendSim oracle; mpc.BackendParallel requires Close).
	// Workers bounds its handler concurrency (0 = GOMAXPROCS).
	Backend mpc.BackendKind
	Workers int
	// TenantWeights, when non-nil, carves the per-round word budget S
	// into weighted deficit-round-robin tenant shares (sched.Fair) for
	// wave packing. nil keeps the pre-tenancy first-fit schedule
	// bit-identically.
	TenantWeights map[int]int
}

// M is the §3 dynamic maximal matching structure.
type M struct {
	cfg     Config
	cluster *mpc.Cluster
	coord   *coordinator
	stats   []*statsMachine
	storage []*storeMachine
	fair    *sched.Fair // tenant fairness policy; nil = first-fit
	seq     int64
	queryID int64

	// wavePerm, when set by a test, permutes the injection order of every
	// scheduled wave in place — the hook behind the permutation-
	// commutativity property test. Production code leaves it nil.
	wavePerm func(wave []int)
}

// New builds an empty instance.
func New(cfg Config) *M {
	if cfg.N <= 0 {
		panic("dmm: need at least one vertex")
	}
	if cfg.CapEdges < 16 {
		cfg.CapEdges = 16
	}
	root := int(math.Ceil(math.Sqrt(float64(cfg.CapEdges))))
	aliveCap := int(math.Ceil(math.Sqrt(2 * float64(cfg.CapEdges))))
	heavyAt := 2 * root

	// Size memory, machine count and history capacity together: all three
	// are Θ(√N) in the paper, and the worst-case history suffix (≈ the
	// whole ring, 4 words per entry) must fit within a machine's per-round
	// I/O budget a few times over. A short fixpoint iteration settles the
	// constants.
	mem := maxi(cfg.MemWords, maxi(edgeWords*heavyAt*2+64, 64*root))
	var statsPer, numStats, poolSize, mu int
	for i := 0; i < 4; i++ {
		statsPer = maxi(1, mem/8)
		numStats = (cfg.N+statsPer-1)/statsPer + 1
		poolSize = 4*(edgeWords*2*cfg.CapEdges/mem+1) + 3*root + 8
		mu = 1 + numStats + poolSize
		need := 16 * (12*mu + 128)
		if mem >= need {
			break
		}
		mem = need
	}

	cl := mpc.NewCluster(mpc.Config{Machines: mu, MemWords: mem, Backend: cfg.Backend, Workers: cfg.Workers})
	m := &M{cfg: cfg}
	if len(cfg.TenantWeights) > 0 {
		m.fair = sched.NewFair(mem, cfg.TenantWeights)
	}
	m.cluster = cl
	m.coord = newCoordinator(cfg, mu, numStats, statsPer, mem, heavyAt, aliveCap)
	cl.SetMachine(0, m.coord)
	m.stats = make([]*statsMachine, numStats)
	for i := 0; i < numStats; i++ {
		m.stats[i] = newStatsMachine(1+i, statsPer)
		cl.SetMachine(1+i, m.stats[i])
	}
	m.storage = make([]*storeMachine, poolSize)
	for i := 0; i < poolSize; i++ {
		m.storage[i] = newStoreMachine(1 + numStats + i)
		cl.SetMachine(1+numStats+i, m.storage[i])
	}
	return m
}

// Cluster exposes the underlying cluster for accounting.
func (m *M) Cluster() *mpc.Cluster { return m.cluster }

// Close releases the cluster's execution backend (the parallel backend's
// worker goroutines). The structure must not be used afterwards.
func (m *M) Close() { m.cluster.Close() }

// Insert adds edge (u,v), returning the update's accounting.
func (m *M) Insert(u, v int) mpc.UpdateStats {
	return m.update(graph.Update{Op: graph.Insert, U: u, V: v})
}

// Delete removes edge (u,v).
func (m *M) Delete(u, v int) mpc.UpdateStats {
	return m.update(graph.Update{Op: graph.Delete, U: u, V: v})
}

func (m *M) update(up graph.Update) mpc.UpdateStats {
	m.seq++
	m.cluster.BeginUpdate()
	m.inject(up, m.seq)
	if m.cluster.Run(80); !m.cluster.Quiescent() {
		panic(fmt.Sprintf("dmm: update %v did not quiesce in 80 rounds", up))
	}
	return m.cluster.EndUpdate()
}

// ApplyOps processes a mixed op stream — updates *and* typed reads
// (OpMateOf, OpMatched) — through one scheduled pipeline in a single
// mixed round-accounting window (mpc.MixedStats), using the shared wave
// scheduler (internal/sched). Updates whose §3 case analysis provably
// touches only their endpoints and those endpoints' current mates run
// phase-parallel as one concurrent wave — MC opens a per-seq continuation
// flow for each and interleaves their stats/storage round trips — while
// updates whose touch set cannot be bounded at schedule time (deletions
// of matched edges and insertions at a free heavy endpoint, whose
// rematch/surrogate chains scan arbitrary neighbors) run solo in stream
// position. A read claims the vertex it observes as a *read* key: every
// matching change involving vertex v carries v in its exclusive touch set
// (endpoints plus current mates; cascades are Solo), so the precedence
// coloring sequences the read after every conflicting earlier update and
// before every conflicting later one, and the authoritative statistics
// machine answers it in the wave's delivery round against exactly the
// prefix state its stream position implies. Reads of untouched vertices
// ride any wave for free.
//
// Items are recomputed from live statistics between waves, and sequence
// numbers are assigned by stream position, so the final mate table AND
// every in-wave answer are bit-identical to applying the ops one at a
// time (pinned by FuzzBatchEquivalence, FuzzMixedEquivalence and
// TestWavePermutationCommutativity).
//
// A wave of w ops costs the rounds of one update instead of w — the
// batch-dynamic win serial coordinator chaining (ApplyBatchChained, the
// PR 1 baseline) could not reach, because chaining still ran every case
// analysis back to back. Update stretches with no parallelism to extract
// (a wave of width 1) do not regress below that baseline either: the
// driver detects the maximal serial head-run of updates and executes it
// chained through the coordinator queue — serialize mode is sequential
// replay by construction, so the fallback needs no schedule-time reads at
// all — and only genuine waves pay wave bookkeeping. Reads never chain:
// a read reaching the head of the remaining stream runs as a query-only
// wave costing one round, charged to the window's query half.
//
// Answers are positional over the stream's queries: the j-th entry of the
// returned Results answers the j-th op with IsQuery() true.
func (m *M) ApplyOps(ops []graph.Op) (graph.Results, mpc.MixedStats) {
	nu, nq := graph.CountOps(ops)
	m.cluster.BeginMixed(nu, nq)
	// Per-tenant accounting engages only for multi-tenant streams (a
	// nonzero tenant tag or a configured fairness policy); single-tenant
	// windows stay census-free and bit-identical.
	mt := m.fair != nil
	for _, op := range ops {
		if op.Tenant != 0 {
			mt = true
			break
		}
	}
	if mt {
		m.cluster.BeginMixedTenants(tenantCensus(ops, nil))
	}
	// Updates draw sequence numbers by stream position, queries draw from
	// the separate queryID counter — exactly the ids sequential replay
	// would hand out.
	ids := make([]int64, len(ops))
	for i, op := range ops {
		if op.IsQuery() {
			m.queryID++
			ids[i] = m.queryID
		} else {
			m.seq++
			ids[i] = m.seq
		}
	}
	item := m.opItem(ops)
	budget := m.cluster.MemWords()
	pending := make([]int, len(ops))
	for i := range pending {
		pending[i] = i
	}
	items := make([]sched.Item, len(ops))
	for len(pending) > 0 {
		// The mean refresh-suffix cost only moves when rounds execute, so
		// it is read once per scheduling pass, not once per item.
		meanSuffix := m.coord.meanStoreSuffix()
		for j, b := range pending {
			items[j] = item(b, meanSuffix)
		}
		// The executed wave packs fairly (tenant deficits metered); the
		// serial head-run segmentation below keeps using plain FirstWave —
		// it is a width heuristic over hypothetical futures, and letting it
		// consume deficit top-ups would starve the real waves.
		wave := sched.FirstWaveFair(items[:len(pending)], budget, m.fair)
		if len(wave) > 1 || ops[pending[wave[0]]].IsQuery() {
			idx := make([]int, len(wave))
			for x, j := range wave {
				idx[x] = pending[j]
			}
			m.runOpWave(ops, ids, idx, mt)
			kept := pending[:0]
			x := 0
			for j, b := range pending {
				if x < len(wave) && wave[x] == j {
					x++
					continue
				}
				kept = append(kept, b)
			}
			pending = kept
			continue
		}
		// Serial head-run: the front of the remaining stream packs no wave.
		// Chain forward while the (schedule-time) item view keeps yielding
		// width-1 waves over consecutive *updates* — a segmentation
		// heuristic only; chained execution is sequential replay whatever
		// the items say.
		run := 1
		for run < len(pending) && !ops[pending[run]].IsQuery() &&
			len(sched.FirstWave(items[run:len(pending)], budget)) == 1 {
			run++
		}
		m.runChained(ops, ids, pending[:run])
		pending = pending[run:]
	}
	// Absorb the last run's leftover bookkeeping acks inside the window so
	// the structure is quiescent for whatever comes next.
	m.cluster.Drain(16, "dmm: op ack tail")
	st := m.cluster.EndMixed()
	res := make(graph.Results, 0, nq)
	for i, op := range ops {
		if !op.IsQuery() {
			continue
		}
		sm := m.stats[op.U/m.coord.statsPer]
		mate, ok := sm.queryResults[ids[i]]
		if !ok {
			panic(fmt.Sprintf("dmm: in-wave query %v produced no result", op))
		}
		delete(sm.queryResults, ids[i])
		if op.Kind == graph.OpMatched {
			res = append(res, graph.Answer{Bool: int(mate) == op.V})
		} else {
			res = append(res, graph.Answer{Int: int64(mate)})
		}
	}
	return res, st
}

// ApplyBatch processes a batch of updates in one shared round-accounting
// window — the write-only projection of ApplyOps: the batch is lifted
// into an op stream and scheduled through the same pipeline, so the
// update half of the mixed window *is* the batch's BatchStats (no
// query-only waves exist to absorb rounds). See ApplyOps for the
// scheduling and correctness story.
func (m *M) ApplyBatch(batch graph.Batch) mpc.BatchStats {
	_, st := m.ApplyOps(graph.UpdateOps(batch))
	return st.Updates
}

// runOpWave injects the scheduled wave (stream indices: updates at MC,
// reads at their statistics machines) in one round — every update opens
// its own continuation flow on arrival, every read is answered in the
// delivery round — and drives the flows to completion inside a per-wave
// attribution window. A query-only wave needs exactly one round (the
// MateOfBatch scatter), charged to the query half. The test-only wavePerm
// hook permutes the injection order, backing the permutation-
// commutativity property test.
func (m *M) runOpWave(ops []graph.Op, ids []int64, wave []int, mt bool) {
	order := wave
	if m.wavePerm != nil {
		order = append([]int(nil), wave...)
		m.wavePerm(order)
	}
	nu, nq := 0, 0
	for _, i := range wave {
		if ops[i].IsQuery() {
			nq++
		} else {
			nu++
		}
	}
	if mt {
		m.cluster.BeginMixedWaveTenants(nu, nq, tenantCensus(ops, wave))
	} else {
		m.cluster.BeginMixedWave(nu, nq)
	}
	for _, i := range order {
		op := ops[i]
		if op.IsQuery() {
			m.cluster.Send(mpc.Message{
				From: -1, To: 1 + op.U/m.coord.statsPer,
				Payload: cmsg{Kind: cMateQuery, V: int32(op.U), Seq: ids[i]},
				Words:   3,
			})
			continue
		}
		m.inject(op.Update(), ids[i])
	}
	if nu == 0 {
		m.cluster.Round() // reads answer in the delivery round; no flows to drive
	} else {
		m.driveFlows(80*nu+16, fmt.Sprintf("dmm: op wave of %d updates + %d reads", nu, nq))
	}
	m.cluster.EndMixedWave()
}

// runChained executes a serial update segment (stream indices) through
// the coordinator queue: all updates are injected in one round, MC runs
// them strictly in order and chains each update's first requests into the
// round the previous one finishes — the PR 1 batch path, scoped to the
// segments where it is optimal. Chained rounds belong to the window's
// update half only: a wave records genuine concurrency, and a serial
// segment has none.
func (m *M) runChained(ops []graph.Op, ids []int64, seg []int) {
	m.coord.serialize = true
	defer func() { m.coord.serialize = false }()
	for _, i := range seg {
		m.inject(ops[i].Update(), ids[i])
	}
	m.driveFlows(80*len(seg)+16, fmt.Sprintf("dmm: chained run of %d updates", len(seg)))
}

func (m *M) inject(up graph.Update, seq int64) {
	m.cluster.Send(mpc.Message{
		From: -1, To: 0,
		Payload: cmsg{Kind: cUpdate, A: int32(up.U), B: int32(up.V), Seq: seq, Del: up.Op == graph.Delete},
		Words:   4,
	})
}

// driveFlows runs rounds from the injection round until MC has closed
// every flow (and drained its serialize queue), then one more round so the
// final flows' authoritative statistics and storage writes land — the
// point where driver-side schedule reads are current again. The round-
// robin refresh and store acks of the tail are deliberately left in
// flight: they carry no semantic state (they only true up MC's free-space
// directory), so their rounds overlap the next wave instead of extending
// this one.
func (m *M) driveFlows(limit int, what string) {
	rounds := 0
	for {
		m.cluster.Round()
		rounds++
		if len(m.coord.inflight) == 0 && len(m.coord.queue) == 0 {
			m.cluster.Round()
			return
		}
		if rounds >= limit {
			panic(fmt.Sprintf("%s did not complete within %d rounds", what, limit))
		}
	}
}

// opItem reads one op's schedule-time resources from the authoritative
// statistics (driver-side, between waves, at quiescence — so the reads
// are current).
//
// Reads: a query names the vertex it observes as a read key. Matching
// state is symmetric — any update changing mate(u) carries u among its
// exclusive keys (endpoint or current mate) or is Solo — so ordering the
// read against exclusive claimants of u is exactly the §3 snapshot it
// must observe. OpMatched(u,v) is mate(u) == v, a single read of u. The
// statistics machine of u takes a small budgeted claim so a wave cannot
// funnel unbounded reads through one machine.
//
// Update classification: an insert matching two free endpoints, an insert that
// changes no matching (some endpoint matched, no free heavy endpoint) and
// a delete of an unmatched edge touch exactly {u, v} plus, for mirror
// heaviness reads, their current mates — those vertex ids are the
// exclusive keys, and such updates commute whenever the key sets are
// disjoint (per-vertex storage lists, H entries and statistics writes all
// key by those vertices). A delete of a matched edge or an insert with a
// free heavy endpoint cascades through rematch/surrogate scans whose
// reach is data-dependent, so it runs Solo; §4 mode is always Solo (its
// counter flush and augmenting sweep read global state).
//
// Budgeted claims: MC's per-round word cap pays every flow's stats and
// storage messages plus the need-to-know H suffixes — estimated from the
// live cursor staleness of the machines this update contacts plus the
// mean storage suffix its end-of-update round-robin refresh will ship.
// Statistics and home storage machines get small claims so a wave cannot
// funnel unbounded traffic through one machine. An update predicted to
// cross the heavy threshold additionally takes the exclusive transition
// key: transitions hold fresh exclusive machines transiently, so at most
// one per wave keeps the storage pool within its sequential envelope.
func (m *M) opItem(ops []graph.Op) func(i, meanSuffix int) sched.Item {
	return func(i, meanSuffix int) sched.Item {
		return m.itemFor(ops[i], meanSuffix)
	}
}

// StreamItem reads one op's schedule-time resources at the current mean
// refresh-suffix cost — the per-op claims oracle the streaming Ingestor
// feeds its incremental Admitter. Valid only at driver-side quiescence
// (between flushes), which is when the Ingestor calls it; ApplyOps reads
// the suffix cost once per scheduling pass instead (see opItem).
func (m *M) StreamItem(op graph.Op) sched.Item {
	return m.itemFor(op, m.coord.meanStoreSuffix())
}

// itemFor is the shared per-op core of opItem and StreamItem; every
// item carries the op's tenant tag for the optional fairness policy.
func (m *M) itemFor(op graph.Op, meanSuffix int) sched.Item {
	it := m.rawItemFor(op, meanSuffix)
	it.Tenant = op.Tenant
	return it
}

func (m *M) rawItemFor(op graph.Op, meanSuffix int) sched.Item {
	c := m.coord
	const transitionKey = int64(-1) // vertex ids are >= 0
	if op.IsQuery() {
		switch op.Kind {
		case graph.OpMateOf, graph.OpMatched:
			return sched.Item{
				Read:   []int64{int64(op.U)},
				Shared: []sched.Claim{{Key: int64(c.statsOf(int32(op.U))), Cost: 4}},
			}
		}
		panic(fmt.Sprintf("dmm: unsupported query kind %v (matching answers OpMateOf and OpMatched)", op.Kind))
	}
	up := op.Update()
	u, v := int32(up.U), int32(up.V)
	if u == v {
		return sched.Item{Excl: []int64{int64(u)}} // no-op at MC
	}
	if c.threeHalves {
		return sched.Item{Solo: true}
	}
	su, sv := m.statPeek(u), m.statPeek(v)
	if up.Op == graph.Delete {
		if su.mate == v {
			return sched.Item{Solo: true} // unmatch + rematch both ends
		}
	} else {
		uFree, vFree := su.mate < 0, sv.mate < 0
		uHeavy := su.heavy || int(su.deg)+1 >= c.heavyAt // transitionUp runs before the case analysis
		vHeavy := sv.heavy || int(sv.deg)+1 >= c.heavyAt
		if !(uFree && vFree) && ((uFree && uHeavy) || (vFree && vHeavy)) {
			return sched.Item{Solo: true} // surrogate chain
		}
	}
	excl := []int64{int64(u), int64(v)}
	if su.mate >= 0 {
		excl = append(excl, int64(su.mate))
	}
	if sv.mate >= 0 && sv.mate != su.mate {
		excl = append(excl, int64(sv.mate))
	}
	mcCost := 128 + 4*meanSuffix
	var shared []sched.Claim
	addHome := func(s stat, deg int32) {
		if s.home < 0 {
			return
		}
		cost := 2 * edgeWords
		mcCost += 4 * c.suffixLen(s.home)
		if transitionPredicted(s, up.Op == graph.Delete, c.heavyAt) {
			cost += edgeWords * int(deg) // cMoveOut ships the whole list
			excl = append(excl, transitionKey)
		}
		shared = append(shared, sched.Claim{Key: int64(s.home), Cost: cost})
	}
	addHome(su, su.deg)
	addHome(sv, sv.deg)
	shared = append(shared,
		sched.Claim{Key: 0, Cost: mcCost},
		sched.Claim{Key: int64(c.statsOf(u)), Cost: 32},
		sched.Claim{Key: int64(c.statsOf(v)), Cost: 32},
	)
	return sched.Item{Excl: excl, Shared: shared}
}

// tenantCensus counts the (sub)stream's ops per tenant: over all ops
// when idx is nil, else over the stream indices in idx.
func tenantCensus(ops []graph.Op, idx []int) []mpc.TenantCount {
	n := len(ops)
	if idx != nil {
		n = len(idx)
	}
	return mpc.TenantCensus(n, func(i int) (int, bool) {
		op := ops[i]
		if idx != nil {
			op = ops[idx[i]]
		}
		return op.Tenant, op.IsQuery()
	})
}

// transitionPredicted reports whether the update will cross v's heavy
// threshold (transitionUp on insert, transitionDown on delete).
func transitionPredicted(s stat, del bool, heavyAt int) bool {
	if del {
		return s.heavy && int(s.deg)-1 < heavyAt
	}
	return !s.heavy && int(s.deg)+1 >= heavyAt
}

// statPeek reads v's authoritative stat driver-side without mutating the
// statistics machine (oracle access; the protocol path is cStatsReq).
func (m *M) statPeek(v int32) stat {
	return m.stats[int(v)/m.coord.statsPer].peek(v)
}

// ApplyBatchChained is the PR 1 coordinator-chaining batch path, retained
// as the baseline the wave scheduler is benchmarked against (see
// cmd/dmpcbench -shard and BENCH_0004.json): all k updates are injected at
// MC in a single round and executed strictly in order, each update's first
// requests chained into the round the previous update finishes, so only
// the injection round and the set/refresh ack tail are shared. Semantics
// are identical to ApplyBatch; only the scheduling (and hence the
// amortized round count) differs.
func (m *M) ApplyBatchChained(batch graph.Batch) mpc.BatchStats {
	m.coord.serialize = true
	defer func() { m.coord.serialize = false }()
	m.cluster.BeginBatch(len(batch))
	for _, up := range batch {
		m.seq++
		m.inject(up, m.seq)
	}
	limit := 80*len(batch) + 16
	if m.cluster.Run(limit); !m.cluster.Quiescent() {
		panic(fmt.Sprintf("dmm: batch of %d updates did not quiesce in %d rounds", len(batch), limit))
	}
	return m.cluster.EndBatch()
}

// MateOf answers "who is v matched to?" (-1 = free) through the cluster:
// one round, one active statistics machine, O(1) words. The rounds are
// charged to a QueryStats window, never to an update window.
func (m *M) MateOf(v int) int {
	return m.MateOfBatch([]int{v})[0]
}

// Matched reports whether edge (u,v) is in the maintained matching, as a
// protocol query answered by u's statistics machine.
func (m *M) Matched(u, v int) bool {
	return m.MateOf(u) == v
}

// MateOfBatch answers k mate queries in one shared query window: all
// queries are injected at their statistics machines in a single scatter
// round and every machine records its answers in that same round, so the
// batch costs one round total and the amortized cost is 1/k rounds per
// query.
func (m *M) MateOfBatch(vs []int) []int {
	if len(vs) == 0 {
		return nil
	}
	m.cluster.BeginQueryBatch(len(vs))
	qids := make([]int64, len(vs))
	for i, v := range vs {
		m.queryID++
		qids[i] = m.queryID
		m.cluster.Send(mpc.Message{
			From: -1, To: 1 + v/m.coord.statsPer,
			Payload: cmsg{Kind: cMateQuery, V: int32(v), Seq: qids[i]},
			Words:   3,
		})
	}
	n := m.cluster.Drain(64, fmt.Sprintf("dmm: query batch of %d", len(vs)))
	m.cluster.EndQueryBatch()
	out := make([]int, len(vs))
	for i, v := range vs {
		sm := m.stats[v/m.coord.statsPer]
		res, ok := sm.queryResults[qids[i]]
		if !ok {
			panic(fmt.Sprintf("dmm: mate query for %d produced no result after %d rounds", v, n))
		}
		delete(sm.queryResults, qids[i])
		out[i] = int(res)
	}
	return out
}

// MateTable reads the authoritative mate table from the statistics
// machines — driver-side oracle access for validation only, not part of
// the protocol accounting. Use MateOf/MateOfBatch for protocol queries.
func (m *M) MateTable() []int {
	out := make([]int, m.cfg.N)
	for v := 0; v < m.cfg.N; v++ {
		out[v] = int(m.statPeek(int32(v)).mate)
	}
	return out
}

// Fallbacks reports how often the suspended stack had to be scanned
// because the alive window offered no surrogate (see package comment).
func (m *M) Fallbacks() int64 { return m.coord.fallbacks }

// Validate checks the distributed storage invariants: every graph edge is
// stored under both endpoints exactly once (modulo lazy deletions still in
// H), light vertices live on a single machine, alive windows respect their
// capacity, and directory free-space figures match machine contents.
func (m *M) Validate(g *graph.Graph) error {
	// Effective edge sets per vertex, after applying pending H deletions.
	for v := 0; v < m.cfg.N; v++ {
		st := m.stats[v/m.coord.statsPer].get(int32(v))
		if int(st.deg) != g.Degree(v) {
			return fmt.Errorf("vertex %d: stats degree %d, graph %d", v, st.deg, g.Degree(v))
		}
		want := g.Degree(v) >= m.coord.heavyAt
		if st.heavy != want {
			return fmt.Errorf("vertex %d: heavy=%v, degree %d, threshold %d", v, st.heavy, g.Degree(v), m.coord.heavyAt)
		}
		edges := map[int32]bool{}
		collect := func(mach int32) error {
			if mach < 0 {
				return nil
			}
			sm := m.storage[int(mach)-1-len(m.stats)]
			for _, rec := range sm.edges[int32(v)] {
				if m.coord.deletedInH(int32(v), rec.other) {
					continue
				}
				if edges[rec.other] {
					return fmt.Errorf("vertex %d: duplicate edge to %d", v, rec.other)
				}
				edges[rec.other] = true
			}
			return nil
		}
		if err := collect(st.home); err != nil {
			return err
		}
		for _, sm := range st.suspended {
			if err := collect(sm); err != nil {
				return err
			}
		}
		for _, w := range g.Neighbors(v) {
			if !edges[int32(w)] {
				return fmt.Errorf("vertex %d: edge to %d missing from storage", v, w)
			}
		}
		if len(edges) != g.Degree(v) {
			return fmt.Errorf("vertex %d: %d stored, %d in graph", v, len(edges), g.Degree(v))
		}
		if st.heavy {
			alive := m.storage[int(st.home)-1-len(m.stats)]
			if len(alive.edges[int32(v)]) > m.coord.aliveCap {
				return fmt.Errorf("vertex %d: alive window %d exceeds cap %d",
					v, len(alive.edges[int32(v)]), m.coord.aliveCap)
			}
		} else if len(st.suspended) > 0 {
			return fmt.Errorf("light vertex %d has suspended machines", v)
		}
	}
	return nil
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
