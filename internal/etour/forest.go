package etour

import (
	"fmt"
	"sort"
)

// EdgePos holds the four tour positions contributed by one tree edge
// (U,V), U < V: arc U->V occupies (UV[0], UV[1]) and arc V->U occupies
// (VU[0], VU[1]). All positions are 1-based.
type EdgePos struct {
	U, V int
	UV   [2]int
	VU   [2]int
}

// positionsOf returns the two positions at which vertex v appears on this
// edge (one per arc).
func (e *EdgePos) positionsOf(v int) [2]int {
	if v == e.U {
		return [2]int{e.UV[0], e.VU[1]}
	}
	return [2]int{e.UV[1], e.VU[0]}
}

func (e *EdgePos) apply(s Shift) {
	e.UV[0] = s.Apply(e.UV[0])
	e.UV[1] = s.Apply(e.UV[1])
	e.VU[0] = s.Apply(e.VU[0])
	e.VU[1] = s.Apply(e.VU[1])
}

// Forest maintains Euler tours of a spanning forest purely through the
// index arithmetic of §5: per tree edge the four arc positions, per vertex
// the first/last appearance f(v), l(v) and a component id. Structural
// operations return the Shift descriptors that a distributed implementation
// would broadcast; Forest itself applies them to its own state, serving
// both as the reference implementation and as the shard engine used by the
// DMPC connectivity algorithm.
type Forest struct {
	n        int
	comp     []int64
	f, l     []int
	tadj     []map[int]*EdgePos // v -> neighbor -> shared edge record
	compSize map[int64]int
	nextComp int64
}

// NewForest returns a forest of n singleton trees; vertex v starts in
// component int64(v).
func NewForest(n int) *Forest {
	fo := &Forest{
		n:        n,
		comp:     make([]int64, n),
		f:        make([]int, n),
		l:        make([]int, n),
		tadj:     make([]map[int]*EdgePos, n),
		compSize: make(map[int64]int, n),
		nextComp: int64(n),
	}
	for v := 0; v < n; v++ {
		fo.comp[v] = int64(v)
		fo.compSize[int64(v)] = 1
		fo.tadj[v] = make(map[int]*EdgePos)
	}
	return fo
}

// N returns the number of vertices.
func (fo *Forest) N() int { return fo.n }

// Comp returns v's component id.
func (fo *Forest) Comp(v int) int64 { return fo.comp[v] }

// CompSize returns the number of vertices in v's component.
func (fo *Forest) CompSize(v int) int { return fo.compSize[fo.comp[v]] }

// F returns f(v), the first appearance of v in its tour (0 for singletons).
func (fo *Forest) F(v int) int { return fo.f[v] }

// L returns l(v), the last appearance of v in its tour (0 for singletons).
func (fo *Forest) L(v int) int { return fo.l[v] }

// SameTree reports whether u and v are in the same tree.
func (fo *Forest) SameTree(u, v int) bool { return fo.comp[u] == fo.comp[v] }

// HasEdge reports whether (u,v) is a tree edge.
func (fo *Forest) HasEdge(u, v int) bool {
	_, ok := fo.tadj[u][v]
	return ok
}

// TreeDegree returns v's degree in the forest.
func (fo *Forest) TreeDegree(v int) int { return len(fo.tadj[v]) }

// TreeNeighbors returns v's forest neighbors in ascending order.
func (fo *Forest) TreeNeighbors(v int) []int {
	out := make([]int, 0, len(fo.tadj[v]))
	for w := range fo.tadj[v] {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// IsAncestor reports whether u is a (weak) ancestor of v in their common
// tree; false if they are in different trees.
func (fo *Forest) IsAncestor(u, v int) bool {
	if fo.comp[u] != fo.comp[v] {
		return false
	}
	if u == v {
		return true
	}
	return InSubtree(fo.f[v], fo.l[v], fo.f[u], fo.l[u])
}

// members returns the vertices currently labeled with component c.
func (fo *Forest) members(c int64) []int {
	var out []int
	for v := 0; v < fo.n; v++ {
		if fo.comp[v] == c {
			out = append(out, v)
		}
	}
	return out
}

// applyShiftToEdges transforms the edge positions of the given vertices
// according to s. Per-vertex f/l values are NOT updated here — a reroot
// rotation does not commute with min/max, so callers recompute f/l from the
// transformed edge records afterwards (in the distributed setting, f/l are
// learned on demand the same way).
func (fo *Forest) applyShiftToEdges(s Shift, members []int) {
	seen := map[*EdgePos]bool{}
	for _, v := range members {
		for _, e := range fo.tadj[v] {
			if !seen[e] {
				seen[e] = true
				e.apply(s)
			}
		}
	}
}

func (fo *Forest) recomputeAll(members []int) {
	for _, v := range members {
		fo.recomputeFL(v)
	}
}

// recomputeFL refreshes f(v) and l(v) from v's incident edge records
// (needed after an incident edge was added or removed).
func (fo *Forest) recomputeFL(v int) {
	if len(fo.tadj[v]) == 0 {
		fo.f[v], fo.l[v] = 0, 0
		return
	}
	first, last := int(^uint(0)>>1), 0
	for _, e := range fo.tadj[v] {
		p := e.positionsOf(v)
		for _, i := range p {
			if i < first {
				first = i
			}
			if i > last {
				last = i
			}
		}
	}
	fo.f[v], fo.l[v] = first, last
}

// Reroot makes y the root of its tree, returning the broadcast shift (nil
// if y already is the root or is a singleton).
func (fo *Forest) Reroot(y int) []Shift {
	size := fo.compSize[fo.comp[y]]
	if size <= 1 || fo.f[y] == 1 {
		return nil
	}
	L := 4 * (size - 1)
	s := Shift{Kind: ShiftReroot, Comp: fo.comp[y], NewComp: fo.comp[y], A: L, B: fo.l[y]}
	mem := fo.members(fo.comp[y])
	fo.applyShiftToEdges(s, mem)
	fo.recomputeAll(mem)
	return []Shift{s}
}

// Link adds tree edge (x,y), merging y's tree into x's. It returns the
// ordered shifts a distributed implementation broadcasts (reroot of y's
// tree, host tail shift, guest shift) — the order is significant: applying
// them sequentially to any stored position yields the correct result.
func (fo *Forest) Link(x, y int) []Shift {
	if fo.comp[x] == fo.comp[y] {
		panic(fmt.Sprintf("etour: Link(%d,%d) within one tree", x, y))
	}
	shifts := fo.Reroot(y)

	compX, compY := fo.comp[x], fo.comp[y]
	hostMem := fo.members(compX)
	guestMem := fo.members(compY)
	sizeX, sizeY := fo.compSize[compX], fo.compSize[compY]
	Ly := 4 * (sizeY - 1)

	// Splice point: an even-aligned appearance of x.
	q := 0
	switch {
	case sizeX == 1:
		q = 0
	case fo.f[x] == 1: // x is the root of its tree
		q = 4 * (sizeX - 1)
	default:
		q = fo.f[x]
	}

	host := Shift{Kind: ShiftLinkHost, Comp: compX, NewComp: compX, A: q, B: Ly}
	fo.applyShiftToEdges(host, hostMem)
	shifts = append(shifts, host)

	guest := Shift{Kind: ShiftLinkGuest, Comp: compY, NewComp: compX, A: q, B: Ly}
	fo.applyShiftToEdges(guest, guestMem)
	shifts = append(shifts, guest)
	for _, v := range guestMem {
		fo.comp[v] = compX
	}

	e := &EdgePos{U: min(x, y), V: max(x, y)}
	if e.U == x {
		e.UV = [2]int{q + 1, q + 2}
		e.VU = [2]int{q + Ly + 3, q + Ly + 4}
	} else {
		// Arc x->y is arc V->U in normalized storage.
		e.VU = [2]int{q + 1, q + 2}
		e.UV = [2]int{q + Ly + 3, q + Ly + 4}
	}
	fo.tadj[x][y] = e
	fo.tadj[y][x] = e
	fo.recomputeAll(hostMem)
	fo.recomputeAll(guestMem)

	fo.compSize[compX] = sizeX + sizeY
	delete(fo.compSize, compY)
	return shifts
}

// Cut removes tree edge (x,y), splitting the tree. The subtree side (the
// child's side) moves to a fresh component. It returns the ordered
// broadcast shifts and the new component's id.
func (fo *Forest) Cut(x, y int) ([]Shift, int64) {
	if _, ok := fo.tadj[x][y]; !ok {
		panic(fmt.Sprintf("etour: Cut(%d,%d): not a tree edge", x, y))
	}
	// Make x the parent: the child's appearance interval nests inside the
	// parent's.
	if InSubtree(fo.f[x], fo.l[x], fo.f[y], fo.l[y]) {
		x, y = y, x
	}
	fy, ly := fo.f[y], fo.l[y]
	oldComp := fo.comp[x]
	newComp := fo.nextComp
	fo.nextComp++
	L := 4 * (fo.compSize[oldComp] - 1)

	mem := fo.members(oldComp)
	// Subtree membership is decided on pre-shift appearance intervals.
	var subMem []int
	for _, v := range mem {
		if InSubtree(fo.f[v], fo.l[v], fy, ly) {
			subMem = append(subMem, v)
		}
	}

	delete(fo.tadj[x], y)
	delete(fo.tadj[y], x)

	repair := Shift{Kind: ShiftCutRepair, Comp: oldComp, NewComp: oldComp, A: fy, B: ly, C: L}
	sub := Shift{Kind: ShiftCutSub, Comp: oldComp, NewComp: newComp, A: fy, B: ly}
	rest := Shift{Kind: ShiftCutRest, Comp: oldComp, NewComp: oldComp, A: fy, B: ly}
	// The repair map only affects the removed edge's own positions, which
	// were just deleted with the record; it is emitted for subscribers
	// holding mirrored anchor positions.
	fo.applyShiftToEdges(sub, mem)
	fo.applyShiftToEdges(rest, mem)

	for _, v := range subMem {
		fo.comp[v] = newComp
	}
	fo.recomputeAll(mem)

	subSize := (ly-fy-1)/4 + 1
	fo.compSize[oldComp] -= subSize
	fo.compSize[newComp] = subSize
	return []Shift{repair, sub, rest}, newComp
}

// PathEdgeTest reports whether tree edge (u,v) lies on the tree path
// between x and y, using only appearance intervals — the §5.1 ancestor
// trick: the edge's child endpoint must be an ancestor-or-self of exactly
// one of x, y.
func (fo *Forest) PathEdgeTest(u, v, x, y int) bool {
	if fo.comp[u] != fo.comp[x] || fo.comp[x] != fo.comp[y] {
		return false
	}
	// Child endpoint = the one nested inside the other.
	child := v
	if InSubtree(fo.f[u], fo.l[u], fo.f[v], fo.l[v]) {
		child = u
	}
	inX := fo.IsAncestor(child, x)
	inY := fo.IsAncestor(child, y)
	return inX != inY
}

// TourOf reconstructs the materialized tour of v's component from the
// stored edge positions — used by tests, figures and debugging only; the
// dynamic algorithms never materialize tours.
func (fo *Forest) TourOf(v int) *Seq {
	compID := fo.comp[v]
	size := fo.compSize[compID]
	L := 4 * (size - 1)
	if L <= 0 {
		return &Seq{}
	}
	s := make([]int, L)
	filled := make([]bool, L)
	seen := map[*EdgePos]bool{}
	place := func(pos, vert int) {
		if pos < 1 || pos > L {
			panic(fmt.Sprintf("etour: position %d outside tour of length %d", pos, L))
		}
		if filled[pos-1] && s[pos-1] != vert {
			panic(fmt.Sprintf("etour: position %d assigned to both %d and %d", pos, s[pos-1], vert))
		}
		s[pos-1] = vert
		filled[pos-1] = true
	}
	for w := 0; w < fo.n; w++ {
		if fo.comp[w] != compID {
			continue
		}
		for _, e := range fo.tadj[w] {
			if seen[e] {
				continue
			}
			seen[e] = true
			place(e.UV[0], e.U)
			place(e.UV[1], e.V)
			place(e.VU[0], e.V)
			place(e.VU[1], e.U)
		}
	}
	for i, ok := range filled {
		if !ok {
			panic(fmt.Sprintf("etour: position %d unassigned", i+1))
		}
	}
	return &Seq{s: s}
}

// Validate checks all invariants: per component, the reconstructed tour is
// a valid Euler tour, f/l match the tour, and component sizes are right.
// It returns the first violation found.
func (fo *Forest) Validate() error {
	done := map[int64]bool{}
	counts := map[int64]int{}
	for v := 0; v < fo.n; v++ {
		counts[fo.comp[v]]++
	}
	for c, k := range counts {
		if fo.compSize[c] != k {
			return fmt.Errorf("component %d: size %d recorded, %d actual", c, fo.compSize[c], k)
		}
	}
	for v := 0; v < fo.n; v++ {
		c := fo.comp[v]
		if done[c] {
			continue
		}
		done[c] = true
		tour := fo.TourOf(v)
		if err := tour.Valid(); err != nil {
			return fmt.Errorf("component %d: %w", c, err)
		}
		for w := 0; w < fo.n; w++ {
			if fo.comp[w] != c {
				continue
			}
			wantF, wantL := tour.First(w), tour.Last(w)
			if fo.f[w] != wantF || fo.l[w] != wantL {
				return fmt.Errorf("vertex %d: f/l = %d/%d, tour says %d/%d",
					w, fo.f[w], fo.l[w], wantF, wantL)
			}
		}
	}
	return nil
}

// BuildFromTree initializes the forest from the trees of a tree adjacency
// (vertex -> neighbors), one call per tree, assigning the canonical DFS
// tour rooted at root — the tour the paper's figures start from.
func (fo *Forest) BuildFromTree(adj map[int][]int, root int) {
	seq := BuildSeq(adj, root)
	compID := fo.comp[root]
	// Collect vertices of this tree.
	verts := map[int]bool{root: true}
	for _, v := range seq.s {
		verts[v] = true
	}
	for v := range verts {
		fo.comp[v] = compID
		fo.f[v] = seq.First(v)
		fo.l[v] = seq.Last(v)
		delete(fo.compSize, int64(v))
	}
	fo.compSize[compID] = len(verts)
	// Edge records from arc positions: arcs at (2k-1, 2k).
	type arc struct{ a, b int }
	arcPos := map[arc][2]int{}
	for k := 0; 2*k < seq.Len(); k++ {
		a, b := seq.s[2*k], seq.s[2*k+1]
		arcPos[arc{a, b}] = [2]int{2*k + 1, 2*k + 2}
	}
	for ab, p := range arcPos {
		if ab.a > ab.b {
			continue
		}
		rev := arcPos[arc{ab.b, ab.a}]
		e := &EdgePos{U: ab.a, V: ab.b, UV: p, VU: rev}
		fo.tadj[ab.a][ab.b] = e
		fo.tadj[ab.b][ab.a] = e
	}
}
