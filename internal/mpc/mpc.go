// Package mpc implements a deterministic simulator for the DMPC model of
// Italiano, Lattanzi, Mirrokni and Parotsidis (SPAA 2019): a cluster of µ
// machines, each with S words of memory, exchanging messages in synchronous
// rounds.
//
// The simulator accounts for exactly the three quantities the DMPC model
// charges a dynamic algorithm for:
//
//   - the number of rounds required to process each update,
//   - the number of machines that are active in each round, and
//   - the total number of words communicated in each round.
//
// A machine is active in a round if it sends or receives at least one
// message in that round, or if it was explicitly scheduled to run.
// Message delivery order is deterministic, so simulations are
// reproducible for a fixed seed regardless of GOMAXPROCS.
//
// # Execution backends
//
// The machine-step loop is pluggable behind the Backend interface,
// selected by Config.Backend. BackendSim (the default) is the
// deterministic single-driver loop: the driver orchestrates each round
// and runs handlers on short-lived goroutines bounded by Config.Workers
// — it is the correctness and accounting oracle. BackendParallel is the
// goroutine-per-machine runtime: long-lived workers (machines sharded
// over at most Config.Workers goroutines, default GOMAXPROCS) woken over
// channels each round, lock-free per-sender outbox staging, and a
// deterministic ascending-id merge at the round barrier. Both backends
// produce bit-identical answers and Stats for the same inputs — the
// parallel backend exists to measure real wall-clock time next to the
// model's round counts, and clusters using it must be Close()d to
// release the workers.
package mpc

import (
	"fmt"
	"math"
	"runtime"
	"slices"
)

// Message is a single inter-machine message. Payload stays in process (the
// simulator never serializes); Words is the size charged to the model's
// communication measure and must be set by the sender. The Cluster validates
// that Words is positive.
type Message struct {
	From    int
	To      int
	Payload any
	Words   int

	seq int // per-sender sequence number for deterministic delivery order
}

// Machine is the behavior of one simulated DMPC machine. Implementations
// hold the machine's local state; HandleRound is called once per round in
// which the machine is active and must not touch other machines' state
// except through ctx.Send.
type Machine interface {
	// HandleRound processes the inbox for this round. It may send messages
	// for delivery at the start of the next round via ctx.Send and may
	// schedule itself or others for the next round via ctx.Schedule.
	HandleRound(ctx *Ctx, inbox []Message)
}

// MemReporter is optionally implemented by machines that can report their
// local memory footprint in words; the cluster uses it to enforce the
// per-machine memory cap in strict mode and to report peak usage.
type MemReporter interface {
	MemWords() int
}

// Config describes a cluster. The zero value is not usable; call Auto or
// fill in the fields explicitly.
type Config struct {
	// Machines is µ, the number of machines in the cluster.
	Machines int
	// MemWords is S, the per-machine memory budget in words. In strict
	// mode it also caps per-machine per-round communication, as in the
	// model definition ("each machine can send and receive messages of
	// total size up to S at each round").
	MemWords int
	// Strict makes constraint violations (memory over S, per-round I/O
	// over S, sends to out-of-range machines) fatal via panic. Violations
	// are always counted in Stats regardless.
	Strict bool
	// Workers bounds handler concurrency; 0 means GOMAXPROCS. For
	// BackendParallel it caps the number of long-lived worker
	// goroutines the machines are sharded over.
	Workers int
	// Backend selects the execution backend; the zero value is
	// BackendSim, the deterministic single-driver oracle.
	Backend BackendKind
}

// Auto returns the canonical DMPC configuration for an input of size n
// words: S = scale·⌈√n⌉ memory words per machine and µ = ⌈n/S⌉+slack
// machines, so that total memory is Θ(N) as required by the paper.
func Auto(inputWords int, scale float64) Config {
	if inputWords < 1 {
		inputWords = 1
	}
	if scale <= 0 {
		scale = 4
	}
	s := int(scale * math.Ceil(math.Sqrt(float64(inputWords))))
	if s < 16 {
		s = 16
	}
	mu := (inputWords+s-1)/s + 4
	if mu < 4 {
		mu = 4
	}
	return Config{Machines: mu, MemWords: s}
}

// RoundStats records the accounting for a single synchronous round.
type RoundStats struct {
	Active   int // machines that sent, received, or were scheduled
	Words    int // total message words delivered into this round
	Messages int // number of messages delivered into this round
}

// UpdateStats aggregates the rounds spent processing one dynamic update.
type UpdateStats struct {
	Rounds    int
	MaxActive int // max active machines over the update's rounds
	SumActive int
	MaxWords  int // max communicated words in any round of the update
	SumWords  int
}

// Add folds a round into the update aggregate.
func (u *UpdateStats) Add(r RoundStats) {
	u.Rounds++
	u.SumActive += r.Active
	u.SumWords += r.Words
	if r.Active > u.MaxActive {
		u.MaxActive = r.Active
	}
	if r.Words > u.MaxWords {
		u.MaxWords = r.Words
	}
}

// WaveStats attributes a slice of a batch window to one concurrent wave: a
// set of updates the algorithm executed simultaneously because they were
// pairwise conflict-free at schedule time. Wave widths are the direct
// measure of how much parallelism the batch scheduler extracted — a batch
// whose waves are all width 1 degenerates to sequential replay — and the
// word columns expose how close a wave's packing came to the per-round cap
// S, the budget the shared scheduler (internal/sched) packs against.
type WaveStats struct {
	Updates  int // wave width: updates executed concurrently in this wave
	Queries  int // reads sequenced into this wave (mixed op windows only)
	Rounds   int // rounds attributed to this wave
	SumWords int // words communicated over the wave's rounds
	MaxWords int // peak words in any round of the wave
}

// BatchStats aggregates the rounds spent processing one batch of k dynamic
// updates that share a single round-accounting window. Where UpdateStats
// charges every update its own rounds, a batch charges the whole window
// once, so RoundsPerUpdate reports the amortized cost the batch-dynamic
// model (Nowicki–Onak, arXiv:2002.07800) optimizes for. Waves, when the
// algorithm declares them via BeginWave/EndWave, break the window down per
// concurrent wave; scheduling rounds outside any wave belong to the batch
// only.
type BatchStats struct {
	Updates   int // k, the number of updates covered by the window
	Rounds    int
	MaxActive int // max active machines over the batch's rounds
	SumActive int
	MaxWords  int // max communicated words in any round of the batch
	SumWords  int
	Waves     []WaveStats // per-wave attribution, in execution order
}

// Add folds a round into the batch aggregate.
func (b *BatchStats) Add(r RoundStats) {
	b.Rounds++
	b.SumActive += r.Active
	b.SumWords += r.Words
	if r.Active > b.MaxActive {
		b.MaxActive = r.Active
	}
	if r.Words > b.MaxWords {
		b.MaxWords = r.Words
	}
}

// Equal reports deep equality, including the per-wave attribution.
// (BatchStats holds a slice, so == no longer compiles.)
func (b BatchStats) Equal(o BatchStats) bool {
	if b.Updates != o.Updates || b.Rounds != o.Rounds ||
		b.MaxActive != o.MaxActive || b.SumActive != o.SumActive ||
		b.MaxWords != o.MaxWords || b.SumWords != o.SumWords ||
		len(b.Waves) != len(o.Waves) {
		return false
	}
	for i := range b.Waves {
		if b.Waves[i] != o.Waves[i] {
			return false
		}
	}
	return true
}

// RoundsPerUpdate returns the amortized rounds per update of the batch.
func (b BatchStats) RoundsPerUpdate() float64 {
	if b.Updates == 0 {
		return 0
	}
	return float64(b.Rounds) / float64(b.Updates)
}

// QueryStats aggregates the rounds spent answering one query — or one batch
// of k queries sharing a single scatter/gather round window. Queries are a
// first-class accounting class: their rounds never fold into an update or
// batch window (the two window kinds are mutually exclusive), so
// rounds-per-update figures stay comparable across read-free and read-heavy
// workloads, and RoundsPerQuery reports the amortized §5 query cost.
type QueryStats struct {
	Queries   int // k, the number of queries covered by the window
	Rounds    int
	MaxActive int // max active machines over the window's rounds
	SumActive int
	MaxWords  int // max communicated words in any round of the window
	SumWords  int
}

// Add folds a round into the query aggregate.
func (q *QueryStats) Add(r RoundStats) {
	q.Rounds++
	q.SumActive += r.Active
	q.SumWords += r.Words
	if r.Active > q.MaxActive {
		q.MaxActive = r.Active
	}
	if r.Words > q.MaxWords {
		q.MaxWords = r.Words
	}
}

// RoundsPerQuery returns the amortized rounds per query of the window.
func (q QueryStats) RoundsPerQuery() float64 {
	if q.Queries == 0 {
		return 0
	}
	return float64(q.Rounds) / float64(q.Queries)
}

// MixedStats aggregates one mixed op window: a single scheduled pipeline
// processing updates *and* queries, with the rounds attributed to the two
// accounting halves without ever letting one leak into the other. The
// attribution rule is per wave: a round folds into the query half iff the
// open wave is query-only (it executes reads and nothing else); every
// other round — update-bearing waves, scheduling and drain rounds outside
// any wave — folds into the update half. A query sequenced into an
// update-bearing wave therefore rides that wave's rounds for free, which
// is exactly the batch-dynamic win the mixed pipeline exists to measure,
// while the update half stays comparable to a pure BatchStats window over
// the same updates.
type MixedStats struct {
	Ops     int         // updates + queries covered by the window
	Updates BatchStats  // update half; its Waves hold the update-bearing waves
	Queries QueryStats  // query half: the query-only waves
	Waves   []WaveStats // every wave of the window, in execution order

	// Tenants breaks the window down per tenant (see TenantStats); nil
	// unless the window was opened with a tenant census
	// (BeginMixedTenants), so single-tenant accounting is bit-identical
	// to pre-tenancy behavior, golden JSON included.
	Tenants map[int]TenantStats `json:",omitempty"`
}

// Rounds returns the whole window's round count (both halves).
func (m MixedStats) Rounds() int { return m.Updates.Rounds + m.Queries.Rounds }

// RoundsPerOp returns the amortized rounds per op of the window — the
// figure a mixed workload optimizes for, and the one the AutoBatcher
// sizes k against on mixed streams.
func (m MixedStats) RoundsPerOp() float64 {
	if m.Ops == 0 {
		return 0
	}
	return float64(m.Rounds()) / float64(m.Ops)
}

// Equal reports deep equality, including the per-wave attribution.
func (m MixedStats) Equal(o MixedStats) bool {
	if m.Ops != o.Ops || !m.Updates.Equal(o.Updates) || m.Queries != o.Queries ||
		len(m.Waves) != len(o.Waves) || len(m.Tenants) != len(o.Tenants) {
		return false
	}
	for i := range m.Waves {
		if m.Waves[i] != o.Waves[i] {
			return false
		}
	}
	for t, ts := range m.Tenants {
		if o.Tenants[t] != ts {
			return false
		}
	}
	return true
}

// Stats is the lifetime accounting of a cluster.
type Stats struct {
	Rounds        int
	Messages      int
	Words         int
	PeakMemWords  int
	Violations    int
	pairWords     map[[2]int]int // communication volume per (from,to) pair
	updates       []UpdateStats
	currentUpdate *UpdateStats
	batches       []BatchStats
	currentBatch  *BatchStats
	currentWave   *WaveStats
	queries       []QueryStats
	currentQuery  *QueryStats
	mixed         []MixedStats
	currentMixed  *MixedStats
	waveTenants   []TenantCount // tenant census of the open mixed wave
}

// Updates returns per-update statistics recorded between BeginUpdate and
// EndUpdate calls. The returned slice is owned by the caller.
func (s *Stats) Updates() []UpdateStats {
	out := make([]UpdateStats, len(s.updates))
	copy(out, s.updates)
	return out
}

// Batches returns per-batch statistics recorded between BeginBatch and
// EndBatch calls. The returned slice is owned by the caller.
func (s *Stats) Batches() []BatchStats {
	out := make([]BatchStats, len(s.batches))
	copy(out, s.batches)
	return out
}

// Queries returns per-window query statistics recorded between
// BeginQuery/BeginQueryBatch and EndQuery/EndQueryBatch calls. The returned
// slice is owned by the caller.
func (s *Stats) Queries() []QueryStats {
	out := make([]QueryStats, len(s.queries))
	copy(out, s.queries)
	return out
}

// Mixed returns per-window mixed op statistics recorded between
// BeginMixed and EndMixed calls. The returned slice is owned by the
// caller. Each window's halves are additionally recorded in Batches and
// Queries (when non-empty), so the aggregate means keep covering mixed
// runs.
func (s *Stats) Mixed() []MixedStats {
	out := make([]MixedStats, len(s.mixed))
	copy(out, s.mixed)
	return out
}

// MeanMixed returns the amortized rounds per op over all recorded mixed
// windows, plus the totals of the two halves.
func (s *Stats) MeanMixed() (roundsPerOp float64, updateRounds, queryRounds int) {
	var ops int
	for _, m := range s.mixed {
		ops += m.Ops
		updateRounds += m.Updates.Rounds
		queryRounds += m.Queries.Rounds
	}
	if ops > 0 {
		roundsPerOp = float64(updateRounds+queryRounds) / float64(ops)
	}
	return roundsPerOp, updateRounds, queryRounds
}

// MeanQuery returns the amortized rounds per query, plus mean active
// machines and words per round, over all recorded query windows.
func (s *Stats) MeanQuery() (roundsPerQuery, activePerRound, wordsPerRound float64) {
	var qs, r, a, w int
	for _, q := range s.queries {
		qs += q.Queries
		r += q.Rounds
		a += q.SumActive
		w += q.SumWords
	}
	if qs > 0 {
		roundsPerQuery = float64(r) / float64(qs)
	}
	if r > 0 {
		activePerRound = float64(a) / float64(r)
		wordsPerRound = float64(w) / float64(r)
	}
	return roundsPerQuery, activePerRound, wordsPerRound
}

// MeanBatch returns the amortized rounds per update, plus mean active
// machines and words per round, over all recorded batches.
func (s *Stats) MeanBatch() (roundsPerUpdate, activePerRound, wordsPerRound float64) {
	var upd, r, a, w int
	for _, b := range s.batches {
		upd += b.Updates
		r += b.Rounds
		a += b.SumActive
		w += b.SumWords
	}
	if upd > 0 {
		roundsPerUpdate = float64(r) / float64(upd)
	}
	if r > 0 {
		activePerRound = float64(a) / float64(r)
		wordsPerRound = float64(w) / float64(r)
	}
	return roundsPerUpdate, activePerRound, wordsPerRound
}

// WorstUpdate returns the element-wise maxima over all recorded updates,
// i.e. the measured worst-case per-update complexity.
func (s *Stats) WorstUpdate() UpdateStats {
	var w UpdateStats
	for _, u := range s.updates {
		if u.Rounds > w.Rounds {
			w.Rounds = u.Rounds
		}
		if u.MaxActive > w.MaxActive {
			w.MaxActive = u.MaxActive
		}
		if u.MaxWords > w.MaxWords {
			w.MaxWords = u.MaxWords
		}
		w.SumActive += u.SumActive
		w.SumWords += u.SumWords
	}
	return w
}

// MeanUpdate returns the mean rounds, active machines per round and words
// per round over all recorded updates.
func (s *Stats) MeanUpdate() (rounds, activePerRound, wordsPerRound float64) {
	if len(s.updates) == 0 {
		return 0, 0, 0
	}
	var r, a, w, rr int
	for _, u := range s.updates {
		r += u.Rounds
		a += u.SumActive
		w += u.SumWords
		rr += u.Rounds
	}
	n := float64(len(s.updates))
	rounds = float64(r) / n
	if rr > 0 {
		activePerRound = float64(a) / float64(rr)
		wordsPerRound = float64(w) / float64(rr)
	}
	return rounds, activePerRound, wordsPerRound
}

// Cluster is a simulated DMPC cluster. It is not safe for concurrent use by
// multiple goroutines; one Cluster drives one simulation.
type Cluster struct {
	cfg      Config
	machines []Machine
	stats    Stats
	backend  Backend
}

// NewCluster builds a cluster with the given configuration. Machines are
// attached afterwards with SetMachine; unattached slots are inert.
func NewCluster(cfg Config) *Cluster {
	if cfg.Machines <= 0 {
		panic("mpc: cluster needs at least one machine")
	}
	if cfg.MemWords <= 0 {
		panic("mpc: per-machine memory must be positive")
	}
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	c := &Cluster{
		cfg:      cfg,
		machines: make([]Machine, cfg.Machines),
	}
	c.stats.pairWords = make(map[[2]int]int)
	switch cfg.Backend {
	case BackendSim:
		c.backend = newSimBackend(c, w)
	case BackendParallel:
		c.backend = newParallelBackend(c, w)
	default:
		panic(fmt.Sprintf("mpc: unknown backend %v", cfg.Backend))
	}
	return c
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Machines returns µ.
func (c *Cluster) Machines() int { return c.cfg.Machines }

// MemWords returns S.
func (c *Cluster) MemWords() int { return c.cfg.MemWords }

// Stats exposes the lifetime accounting. The pointer stays valid for the
// cluster's lifetime.
func (c *Cluster) Stats() *Stats { return &c.stats }

// SetMachine attaches m to slot id.
func (c *Cluster) SetMachine(id int, m Machine) {
	c.machines[id] = m
}

// MachineAt returns the machine attached to slot id, or nil.
func (c *Cluster) MachineAt(id int) Machine { return c.machines[id] }

// Schedule marks machine id as active for the next round even if it
// receives no messages. Used to bootstrap computation.
func (c *Cluster) Schedule(id int) {
	c.backend.Schedule(id)
}

// Send enqueues a message for delivery at the start of the next round. It is
// intended for injecting external input (e.g. a graph update) into the
// cluster; machines use Ctx.Send instead. From may be -1 for "external".
// A destination outside the cluster is a model violation (counted, fatal
// in strict mode) and the message is dropped; delivered words count
// toward the pair-communication distribution CommEntropy reports on.
func (c *Cluster) Send(msg Message) {
	c.backend.Deliver(msg)
}

// Backend returns the configured execution backend kind.
func (c *Cluster) Backend() BackendKind { return c.cfg.Backend }

// Close releases the backend's resources — the parallel backend's
// long-lived worker goroutines. A closed cluster must not Round again;
// Close is idempotent and a no-op for the sim backend.
func (c *Cluster) Close() { c.backend.Close() }

// BeginUpdate starts per-update accounting; every subsequent round is folded
// into the update until EndUpdate. Update and query windows are mutually
// exclusive: opening one inside the other is a driver bug that would let
// rounds leak across accounting classes, so it panics.
func (c *Cluster) BeginUpdate() {
	if c.stats.currentQuery != nil {
		panic("mpc: BeginUpdate inside an open query window (update and query accounting are mutually exclusive)")
	}
	if c.stats.currentMixed != nil {
		panic("mpc: BeginUpdate inside an open mixed window (window kinds are mutually exclusive)")
	}
	c.stats.currentUpdate = &UpdateStats{}
}

// EndUpdate finishes per-update accounting and records the aggregate.
func (c *Cluster) EndUpdate() UpdateStats {
	u := c.stats.currentUpdate
	c.stats.currentUpdate = nil
	if u == nil {
		return UpdateStats{}
	}
	c.stats.updates = append(c.stats.updates, *u)
	return *u
}

// BeginBatch starts batch accounting for k updates sharing one round
// window; every subsequent round is folded into the batch until EndBatch.
// Per-update accounting (BeginUpdate/EndUpdate) may nest inside a batch:
// rounds then fold into both aggregates. Query windows may not: see
// BeginQueryBatch.
func (c *Cluster) BeginBatch(k int) {
	if c.stats.currentQuery != nil {
		panic("mpc: BeginBatch inside an open query window (update and query accounting are mutually exclusive)")
	}
	if c.stats.currentMixed != nil {
		panic("mpc: BeginBatch inside an open mixed window (window kinds are mutually exclusive)")
	}
	c.stats.currentBatch = &BatchStats{Updates: k}
}

// EndBatch finishes batch accounting and records the aggregate. An open
// wave is a driver bug (its rounds would be misattributed), so it panics.
func (c *Cluster) EndBatch() BatchStats {
	if c.stats.currentWave != nil {
		panic("mpc: EndBatch with an open wave (close it with EndWave first)")
	}
	b := c.stats.currentBatch
	c.stats.currentBatch = nil
	if b == nil {
		return BatchStats{}
	}
	c.stats.batches = append(c.stats.batches, *b)
	return *b
}

// BeginWave starts per-wave attribution inside an open batch window: the
// algorithm declares that the next rounds execute k conflict-free updates
// concurrently. Rounds fold into both the wave and the batch until EndWave.
// Waves only exist inside batches and never nest.
func (c *Cluster) BeginWave(k int) {
	if c.stats.currentBatch == nil {
		panic("mpc: BeginWave outside a batch window")
	}
	if c.stats.currentWave != nil {
		panic("mpc: BeginWave inside an open wave (close it with EndWave first)")
	}
	c.stats.currentWave = &WaveStats{Updates: k}
}

// EndWave finishes the current wave and records it on the open batch.
func (c *Cluster) EndWave() WaveStats {
	w := c.stats.currentWave
	if w == nil {
		panic("mpc: EndWave without an open wave")
	}
	c.stats.currentWave = nil
	c.stats.currentBatch.Waves = append(c.stats.currentBatch.Waves, *w)
	return *w
}

// BeginQuery starts query accounting for a single query; every subsequent
// round is folded into the query window until EndQuery. See BeginQueryBatch
// for the window-exclusivity rule.
func (c *Cluster) BeginQuery() { c.BeginQueryBatch(1) }

// EndQuery finishes a single-query window and records the aggregate.
func (c *Cluster) EndQuery() QueryStats { return c.EndQueryBatch() }

// BeginQueryBatch starts query accounting for k queries sharing one
// scatter/gather round window; every subsequent round is folded into the
// window until EndQueryBatch. Query windows are mutually exclusive with
// update/batch windows: a query window opened while BeginUpdate/BeginBatch
// accounting is live (or vice versa) would fold read rounds into
// rounds-per-update figures, so it panics instead.
func (c *Cluster) BeginQueryBatch(k int) {
	if c.stats.currentUpdate != nil || c.stats.currentBatch != nil {
		panic("mpc: BeginQueryBatch inside an open update/batch window (update and query accounting are mutually exclusive)")
	}
	if c.stats.currentMixed != nil {
		panic("mpc: BeginQueryBatch inside an open mixed window (window kinds are mutually exclusive)")
	}
	if c.stats.currentQuery != nil {
		panic("mpc: BeginQueryBatch inside an open query window (close it with EndQueryBatch first)")
	}
	c.stats.currentQuery = &QueryStats{Queries: k}
}

// EndQueryBatch finishes query accounting and records the aggregate.
func (c *Cluster) EndQueryBatch() QueryStats {
	q := c.stats.currentQuery
	c.stats.currentQuery = nil
	if q == nil {
		return QueryStats{}
	}
	c.stats.queries = append(c.stats.queries, *q)
	return *q
}

// BeginMixed starts mixed op accounting for a window covering updates
// writes and queries reads scheduled through one pipeline. Mixed windows
// are mutually exclusive with every other window kind — their whole point
// is to attribute each round to exactly one of the two halves (see
// MixedStats), so opening one inside another accounting class panics.
// Within the window, waves are declared with BeginMixedWave/EndMixedWave.
func (c *Cluster) BeginMixed(updates, queries int) {
	if c.stats.currentUpdate != nil || c.stats.currentBatch != nil || c.stats.currentQuery != nil {
		panic("mpc: BeginMixed inside an open update/batch/query window (window kinds are mutually exclusive)")
	}
	if c.stats.currentMixed != nil {
		panic("mpc: BeginMixed inside an open mixed window (close it with EndMixed first)")
	}
	c.stats.currentMixed = &MixedStats{
		Ops:     updates + queries,
		Updates: BatchStats{Updates: updates},
		Queries: QueryStats{Queries: queries},
	}
}

// EndMixed finishes mixed accounting and records the aggregate. The two
// halves are additionally recorded on the Batches and Queries logs (when
// they cover any ops or rounds), so MeanBatch/MeanQuery and the wave
// histograms transparently include mixed runs. An open wave panics, as in
// EndBatch.
func (c *Cluster) EndMixed() MixedStats {
	if c.stats.currentWave != nil {
		panic("mpc: EndMixed with an open wave (close it with EndMixedWave first)")
	}
	m := c.stats.currentMixed
	c.stats.currentMixed = nil
	if m == nil {
		return MixedStats{}
	}
	c.stats.shareLeftoverRounds(m)
	c.stats.mixed = append(c.stats.mixed, *m)
	if m.Updates.Updates > 0 || m.Updates.Rounds > 0 {
		c.stats.batches = append(c.stats.batches, m.Updates)
	}
	if m.Queries.Queries > 0 || m.Queries.Rounds > 0 {
		c.stats.queries = append(c.stats.queries, m.Queries)
	}
	return *m
}

// BeginMixedWave starts per-wave attribution inside an open mixed window:
// the next rounds execute updates writes and queries reads concurrently.
// A wave with updates == 0 is a query-only wave; its rounds fold into the
// window's query half, while every other wave's rounds (the reads ride
// along) fold into the update half. Waves never nest.
func (c *Cluster) BeginMixedWave(updates, queries int) {
	c.BeginMixedWaveTenants(updates, queries, nil)
}

// EndMixedWave finishes the current mixed wave and records it on the open
// mixed window (update-bearing waves additionally on the update half's
// wave log, keeping it shaped like a pure batch window).
func (c *Cluster) EndMixedWave() WaveStats {
	w := c.stats.currentWave
	if w == nil {
		panic("mpc: EndMixedWave without an open wave")
	}
	m := c.stats.currentMixed
	if m == nil {
		panic("mpc: EndMixedWave outside a mixed window")
	}
	c.stats.currentWave = nil
	m.Waves = append(m.Waves, *w)
	if w.Updates > 0 {
		m.Updates.Waves = append(m.Updates.Waves, *w)
	}
	c.stats.shareWaveRounds(m, *w)
	return *w
}

// Quiescent reports whether no machine has pending messages or scheduling,
// i.e. whether another Round would be a no-op.
func (c *Cluster) Quiescent() bool {
	return c.backend.Quiescent()
}

// Round executes one synchronous round through the configured backend:
// delivers all pending messages, runs every active machine's handler,
// stages the messages they send for the next round, and folds the round
// into the open accounting windows. It returns the round's statistics.
func (c *Cluster) Round() RoundStats {
	rs := c.backend.Round()

	c.stats.Rounds++
	c.stats.Messages += rs.Messages
	c.stats.Words += rs.Words
	if c.stats.currentUpdate != nil {
		c.stats.currentUpdate.Add(rs)
	}
	if c.stats.currentBatch != nil {
		c.stats.currentBatch.Add(rs)
	}
	if m := c.stats.currentMixed; m != nil {
		// The per-wave attribution rule of MixedStats: query-only waves
		// feed the query half, everything else feeds the update half.
		if w := c.stats.currentWave; w != nil && w.Updates == 0 && w.Queries > 0 {
			m.Queries.Add(rs)
		} else {
			m.Updates.Add(rs)
		}
	}
	if w := c.stats.currentWave; w != nil {
		w.Rounds++
		w.SumWords += rs.Words
		if rs.Words > w.MaxWords {
			w.MaxWords = rs.Words
		}
	}
	if c.stats.currentQuery != nil {
		c.stats.currentQuery.Add(rs)
	}
	return rs
}

// Run executes rounds until the cluster is quiescent or maxRounds is
// reached, returning the number of rounds executed.
func (c *Cluster) Run(maxRounds int) int {
	n := 0
	for n < maxRounds && !c.Quiescent() {
		c.Round()
		n++
	}
	return n
}

// Drain executes rounds until the cluster is quiescent, panicking with the
// caller's context string if maxRounds is exhausted first, and returns the
// number of rounds executed. This is the standard run-to-quiescence guard
// the query paths share instead of fixed round budgets.
func (c *Cluster) Drain(maxRounds int, what string) int {
	n := c.Run(maxRounds)
	if !c.Quiescent() {
		panic(fmt.Sprintf("%s did not quiesce within %d rounds", what, maxRounds))
	}
	return n
}

func (c *Cluster) violation(format string, args ...any) {
	c.stats.Violations++
	if c.cfg.Strict {
		panic(fmt.Sprintf("mpc: "+format, args...))
	}
}

// CommEntropy returns the Shannon entropy (in bits) of the normalized
// distribution of communicated words over ordered machine pairs, the metric
// proposed in §8 of the paper to quantify how evenly an algorithm spreads
// its communication. Higher is more uniform; an algorithm funnelling all
// traffic through a coordinator scores low.
//
// The summation runs over the pairs in sorted order: floating-point
// addition does not commute at the ulp, so summing in (randomized) map
// iteration order made the last bits of the result run- and
// backend-dependent, which the determinism rule — bit-identical Stats
// across backends, pinned by the equivalence fingerprints — does not
// tolerate.
func (c *Cluster) CommEntropy() float64 {
	total := 0
	volumes := make([]int, 0, len(c.stats.pairWords))
	for _, w := range c.stats.pairWords {
		total += w
		volumes = append(volumes, w)
	}
	if total == 0 {
		return 0
	}
	slices.Sort(volumes)
	h := 0.0
	for _, w := range volumes {
		p := float64(w) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// MaxPairWords returns the heaviest ordered machine pair's lifetime
// communication volume in words — the hot-pair companion to CommEntropy:
// entropy says how evenly traffic spreads, this says how tall the tallest
// spike is. Zero for a cluster that has communicated nothing.
func (c *Cluster) MaxPairWords() int {
	max := 0
	for _, w := range c.stats.pairWords {
		if w > max {
			max = w
		}
	}
	return max
}

// Ctx is the per-round execution context handed to a machine's handler.
type Ctx struct {
	cluster  *Cluster
	self     int
	round    int
	out      []Message
	schedule []int
}

// Self returns the executing machine's id.
func (ctx *Ctx) Self() int { return ctx.self }

// Round returns the global round number.
func (ctx *Ctx) Round() int { return ctx.round }

// Machines returns µ for the cluster.
func (ctx *Ctx) Machines() int { return ctx.cluster.cfg.Machines }

// Send stages a message for delivery at the start of the next round. Words
// must reflect the payload size in machine words; zero is coerced to one.
func (ctx *Ctx) Send(to int, payload any, words int) {
	if words <= 0 {
		words = 1
	}
	ctx.out = append(ctx.out, Message{
		From: ctx.self, To: to, Payload: payload, Words: words,
		seq: len(ctx.out),
	})
}

// Broadcast sends the payload to every machine in the cluster (including
// self if includeSelf). It charges words per recipient, matching the
// model's accounting for a machine that transmits to all µ machines.
func (ctx *Ctx) Broadcast(payload any, words int, includeSelf bool) {
	for id := 0; id < ctx.cluster.cfg.Machines; id++ {
		if id == ctx.self && !includeSelf {
			continue
		}
		ctx.Send(id, payload, words)
	}
}

// Schedule marks a machine active in the next round without sending data.
func (ctx *Ctx) Schedule(id int) {
	ctx.schedule = append(ctx.schedule, id)
}
