package dmm

import (
	"testing"

	"dmpc/internal/graph"
)

// FuzzBatchEquivalence is the property-based equivalence harness for the §3
// batch pipeline: any update sequence, any chunking, and the wave-scheduled
// batch (phase-parallel flows for endpoint-disjoint updates, chained runs
// for serial stretches) must produce the exact matching of sequential
// replay (dmm's case analysis is deterministic, so equality is
// edge-for-edge). The raw bytes decode through graph.FuzzStreamWellFormed:
// dmm's degree bookkeeping assumes the standard well-formed stream contract
// (no duplicate inserts, no deletes of absent edges — see the startInsert
// comment), so the decoder enforces it while redirecting bogus deletes onto
// present edges to keep delete coverage high.
//
// The seeded corpus mixes conflict-heavy streams with endpoint-disjoint-
// heavy ones (pairs (0,1),(2,3),... inserted, re-covered, deleted): the
// latter drive the widest waves through the parallel path, the regime the
// scheduler exists for.
//
// Run the full fuzzer with:
//
//	go test -run FuzzBatchEquivalence -fuzz FuzzBatchEquivalence ./internal/core/dmm
func FuzzBatchEquivalence(f *testing.F) {
	f.Add(byte(1), []byte("abcabdacd"))
	f.Add(byte(5), []byte("0120340516273809"))
	f.Add(byte(32), []byte("ABCABDABEACD!bcd!ace02460135"))
	// Endpoint-disjoint-heavy: ten disjoint matched pairs, then disjoint
	// deletes of exactly those pairs (solo cascades after wide waves).
	f.Add(byte(16), []byte("\x00\x00\x01\x00\x02\x03\x00\x04\x05\x00\x06\x07\x00\x08\x09"+
		"\x00\x0a\x0b\x00\x0c\x0d\x00\x0e\x0f\x00\x10\x11\x00\x12\x13"+
		"\x01\x00\x01\x01\x02\x03\x01\x04\x05\x01\x06\x07\x01\x08\x09"+
		"\x01\x0a\x0b\x01\x0c\x0d\x01\x0e\x0f\x01\x10\x11\x01\x12\x13"))
	// Disjoint matched pairs, then disjoint non-matching inserts bridging
	// them, then disjoint deletes of those unmatched bridges — simple
	// updates throughout, the widest-wave regime.
	f.Add(byte(63), []byte("\x00\x00\x01\x00\x02\x03\x00\x04\x05\x00\x06\x07\x00\x08\x09"+
		"\x00\x0a\x0b\x00\x0c\x0d\x00\x0e\x0f\x00\x10\x11\x00\x12\x13"+
		"\x00\x01\x02\x00\x03\x04\x00\x05\x06\x00\x07\x08\x00\x09\x0a"+
		"\x01\x01\x02\x01\x03\x04\x01\x05\x06\x01\x07\x08\x01\x09\x0a"))
	f.Fuzz(func(t *testing.T, sel byte, data []byte) {
		const n = 20
		if len(data) > 300 { // 100 updates keeps a fuzz iteration fast
			data = data[:300]
		}
		stream := graph.FuzzStreamWellFormed(data, n, 1)
		if len(stream) == 0 {
			t.Skip()
		}
		k := 1 + int(sel)%len(stream)

		// CapEdges must absorb any prefix of distinct concurrent edges the
		// decoded stream can build (at most one per update).
		capEdges := len(stream)
		seqM := New(Config{N: n, CapEdges: capEdges})
		g := graph.New(n)
		for _, up := range stream {
			if up.Op == graph.Insert {
				seqM.Insert(up.U, up.V)
			} else {
				seqM.Delete(up.U, up.V)
			}
		}
		batM := New(Config{N: n, CapEdges: capEdges})
		for _, b := range graph.Chunk(stream, k) {
			st := batM.ApplyBatch(b)
			if st.Updates != len(b) {
				t.Fatalf("batch stats cover %d updates, batch has %d", st.Updates, len(b))
			}
			b.Apply(g)
		}

		want, got := seqM.MateTable(), batM.MateTable()
		for v := range want {
			if want[v] != got[v] {
				t.Fatalf("k=%d: mate of %d differs: %d vs %d", k, v, got[v], want[v])
			}
		}
		if !graph.IsMaximalMatching(g, got) {
			t.Fatalf("k=%d: batched matching not maximal over the final graph", k)
		}
		if err := batM.Validate(g); err != nil {
			t.Fatalf("k=%d: invariants broken after batches: %v", k, err)
		}
		if v := batM.Cluster().Stats().Violations; v != 0 {
			t.Fatalf("k=%d: %d cluster constraint violations", k, v)
		}

		// Backend-equivalence replica: the same chunks on the goroutine-
		// per-machine runtime must reproduce the sim batches bit for bit —
		// mate table and cluster accounting — so every committed corpus
		// seed doubles as a backend determinism case.
		parM := New(parallelConfig(Config{N: n, CapEdges: capEdges}))
		defer parM.Close()
		for _, b := range graph.Chunk(stream, k) {
			parM.ApplyBatch(b)
		}
		assertBackendEquivalent(t, batM, parM)
	})
}
