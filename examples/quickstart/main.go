// Quickstart: maintain connected components of a dynamic graph on a
// simulated DMPC cluster in ~40 lines — updates and queries flowing
// through one unified op stream — and read off the paper's O(1)
// rounds-per-update guarantee from the accounting.
package main

import (
	"fmt"

	"dmpc"
)

func main() {
	// A dynamic connectivity structure on 100 vertices.
	cc := dmpc.NewConnectivity(100, 400)

	// Build two chains — 0-1-...-49 and 50-...-99 — as one batch of ops.
	var ops []dmpc.Op
	for i := 0; i < 49; i++ {
		ops = append(ops, dmpc.OpIns(i, i+1, 1), dmpc.OpIns(50+i, 50+i+1, 1))
	}
	cc.Apply(ops)

	// One mixed stream: a probe, the bridge insert, a probe, the bridge
	// delete, a probe. Each read is answered against exactly the prefix
	// state its position implies — no waiting for quiescence — and reads
	// that share an update's wave cost no extra rounds.
	res, st := cc.Apply([]dmpc.Op{
		dmpc.OpQConnected(0, 99), // false: no bridge yet
		dmpc.OpIns(49, 50, 1),
		dmpc.OpQConnected(0, 99), // true: bridge in place
		dmpc.OpDel(49, 50),
		dmpc.OpQConnected(0, 99), // false: Euler-tour split finds no replacement
	})
	for i, a := range res {
		fmt.Printf("probe %d: 0 connected to 99? %v\n", i, a.Bool)
	}
	fmt.Printf("mixed stream: %d ops in %d rounds (%d update-half, %d query-half)\n",
		st.Ops, st.Rounds(), st.Updates.Rounds, st.Queries.Rounds)

	r, a, w := cc.Cluster().Stats().MeanBatch()
	fmt.Printf("whole run: %.2f rounds/update, %.1f machines/round, %.1f words/round on average\n", r, a, w)
}
