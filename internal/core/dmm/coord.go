package dmm

import (
	"fmt"

	"dmpc/internal/mpc"
)

// Message kinds of the §3 protocol. Every storage-bound message carries
// the H suffix the target has not yet seen; every storage reply reports
// words reclaimed by lazy deletions, keeping the coordinator's free-space
// directory current.
type ckind int32

const (
	cUpdate   ckind = iota // external update at MC
	cStatsReq              // MC -> stats: apply degree delta, reply stat
	cStatsRep
	cStatsSet // MC -> stats: field updates
	cStore    // MC -> storage: add one edge record (no reply)
	cScan     // MC -> storage: scan v's records for matching candidates
	cScanRep
	cMoveOut // MC -> storage: ship v's records to a target
	cMoveIn  // storage -> storage: record payload
	cAck     // storage -> MC: {Freed, Used, Count}
	cRefresh // MC -> storage: apply H suffix only (round-robin)

	// §4 extension traffic.
	cList    // MC -> storage: report v's full records
	cListRep // storage -> MC
	cCtrGet  // MC -> stats: batched free-neighbor counter reads
	cCtrRep  // stats -> MC
	cCtrAdd  // MC -> stats: batched counter deltas (no reply)

	// Query traffic: external mate query at the authoritative statistics
	// machine, which records the answer for the driver to gather. Queries
	// bypass MC entirely — the §3 query path needs one round, not the
	// coordinator's serial pipeline.
	cMateQuery
)

// hop describes one update-history entry. hMatched carries the heaviness
// of both endpoints at match time so storage machines can maintain the
// mate-heaviness mirror locally.
type hop int8

const (
	hEdgeIns hop = iota
	hEdgeDel
	hMatched
	hUnmatched
	hHeavyOn
	hHeavyOff
)

type hentry struct {
	op     hop
	a, b   int32
	ah, bh bool
}

// edgeRec is one stored edge copy: v's record of neighbor other, with a
// mirror of other's matching status, heaviness, and its mate's heaviness —
// all refreshed lazily through H.
type edgeRec struct {
	other     int32
	matched   bool
	mate      int32
	heavy     bool
	mateHeavy bool
}

const edgeWords = 7

// stat is the authoritative per-vertex record on a statistics machine.
// home is the light machine for light vertices and the alive machine for
// heavy ones (-1 when the vertex stores no edges).
type stat struct {
	deg       int32
	mate      int32 // -1 free
	heavy     bool
	home      int32
	aliveCnt  int32 // physical records on the alive machine (approximate)
	suspended []int32
	freeNbr   int32 // §4 free-neighbor counter
}

type cmsg struct {
	Kind ckind
	A, B int32
	Seq  int64
	Del  bool

	// stats traffic
	DegDelta int32
	St       stat
	SetMate  bool
	Mate     int32
	SetHeavy bool
	Heavy    bool
	SetHome  bool
	Home     int32
	SetCnt   bool
	Cnt      int32
	SetSusp  bool
	Susp     []int32

	// storage traffic
	V        int32
	Rec      edgeRec
	H        []hentry
	Target   int32
	Keep     int32
	Overflow int32
	Recs     []edgeRec
	Freed    int32
	Used     int32
	Count    int32

	// scan request/reply
	WantFree   bool
	WantSteal  bool
	Exclude    int32 // vertex to skip in free-neighbor searches (-1 none)
	FoundFree  bool
	FreeW      int32
	FoundSteal bool
	StealW     int32
	StealMate  int32

	// §4 counter traffic
	Vs []int32
	Ds []int32
}

func (m cmsg) words() int {
	return 14 + 4*len(m.H) + edgeWords*len(m.Recs) + len(m.Susp) + len(m.Vs) + len(m.Ds)
}

// Machine kinds in the coordinator's directory.
const (
	mkFree int8 = iota
	mkLight
	mkExclusive
)

// coordinator is machine 0: the paper's MC.
type coordinator struct {
	cfg      Config
	mu       int
	numStats int
	statsPer int
	mem      int
	heavyAt  int
	aliveCap int

	// update-history ring.
	h     []hentry
	hBase int64
	hCap  int

	lastSync  []int64
	freeWords []int32
	kindOf    []int8
	refreshAt int

	fallbacks int64

	// §4 state: per-update status flips (coalesced by parity) and the set
	// of vertices freed during the update (augmenting-path sweep
	// candidates).
	threeHalves bool
	flips       map[int32]*flipInfo
	freed       map[int32]bool

	// continuation-driven orchestration, one flow per in-flight update:
	// the per-seq continuation table that lets endpoint-disjoint updates
	// progress the §3 case analysis phase-parallel within a wave. Solicited
	// replies echo their update's seq and route to its flow; unsolicited
	// acks (store/refresh bookkeeping) carry -1 and only adjust the
	// free-space directory. cur is the flow whose continuation is
	// executing — the helpers (send, await, statOf, ...) read it, so the
	// orchestration code in update.go stays written per update.
	inflight map[int64]*flow
	cur      *flow

	// serialize restores the PR 1 chained baseline (ApplyBatchChained):
	// updates arriving while one is in flight queue here and start in the
	// round the previous update finishes, overlapping each update's
	// injection and ack-tail rounds with its successor but never running
	// two case analyses concurrently.
	serialize bool
	queue     []cmsg
}

// flow is one in-flight update's continuation state at MC: which replies
// it is waiting for and what to do when they are all in.
type flow struct {
	seq     int64
	waiting int
	replies []cmsg
	cont    func(ctx *mpc.Ctx)
}

func newCoordinator(cfg Config, mu, numStats, statsPer, mem, heavyAt, aliveCap int) *coordinator {
	c := &coordinator{
		cfg: cfg, mu: mu, numStats: numStats, statsPer: statsPer, mem: mem,
		heavyAt: heavyAt, aliveCap: aliveCap,
		hCap:        12*mu + 128,
		lastSync:    make([]int64, mu),
		freeWords:   make([]int32, mu),
		kindOf:      make([]int8, mu),
		threeHalves: cfg.ThreeHalves,
		flips:       make(map[int32]*flipInfo),
		freed:       make(map[int32]bool),
		inflight:    make(map[int64]*flow),
	}
	for i := c.firstStore(); i < mu; i++ {
		c.freeWords[i] = int32(mem)
		c.kindOf[i] = mkFree
	}
	return c
}

func (c *coordinator) firstStore() int { return 1 + c.numStats }

func (c *coordinator) MemWords() int {
	return len(c.h)*4 + len(c.lastSync)*2 + len(c.freeWords) + 4*len(c.queue) + 8*len(c.inflight) + 16
}

func (c *coordinator) statsOf(v int32) int32 { return 1 + v/int32(c.statsPer) }

func (c *coordinator) hAppend(e hentry) {
	c.h = append(c.h, e)
	if len(c.h) > c.hCap {
		drop := len(c.h) - c.hCap
		for m := c.firstStore(); m < c.mu; m++ {
			if c.lastSync[m] < c.hBase+int64(drop) {
				panic(fmt.Sprintf("dmm: machine %d fell behind the update-history ring", m))
			}
		}
		c.h = append(c.h[:0], c.h[drop:]...)
		c.hBase += int64(drop)
	}
}

// suffixFor returns the H entries machine m has not seen and advances its
// cursor.
func (c *coordinator) suffixFor(m int32) []hentry {
	end := c.hBase + int64(len(c.h))
	ls := c.lastSync[m]
	if ls < c.hBase {
		panic(fmt.Sprintf("dmm: machine %d lost history (sync %d < base %d)", m, ls, c.hBase))
	}
	out := append([]hentry(nil), c.h[ls-c.hBase:]...)
	c.lastSync[m] = end
	return out
}

// suffixLen reports how many H entries machine m has not yet seen, without
// advancing its cursor — the driver-side cost estimate for the need-to-know
// suffix the next message to m will carry (the batch scheduler's MC budget
// claim).
func (c *coordinator) suffixLen(m int32) int {
	return int(c.hBase + int64(len(c.h)) - c.lastSync[m])
}

// meanStoreSuffix averages suffixLen over the storage pool — the expected
// per-refresh suffix cost, charged per wave member because every finishing
// update refreshes one round-robin machine.
func (c *coordinator) meanStoreSuffix() int {
	n := c.mu - c.firstStore()
	if n <= 0 {
		return 0
	}
	total := 0
	for m := c.firstStore(); m < c.mu; m++ {
		total += c.suffixLen(int32(m))
	}
	return total / n
}

// deletedInH reports whether edge (v,other) has a pending lazy deletion
// (driver-side validation helper).
func (c *coordinator) deletedInH(v, other int32) bool {
	del := false
	for _, e := range c.h {
		same := (e.a == v && e.b == other) || (e.a == other && e.b == v)
		if !same {
			continue
		}
		switch e.op {
		case hEdgeIns:
			del = false
		case hEdgeDel:
			del = true
		}
	}
	return del
}

// allocate claims a machine: first-fit light sharing or a fresh exclusive.
func (c *coordinator) allocate(kind int8, need int32) int32 {
	if kind == mkLight {
		for m := c.firstStore(); m < c.mu; m++ {
			if c.kindOf[m] == mkLight && c.freeWords[m] >= need {
				return int32(m)
			}
		}
	}
	for m := c.firstStore(); m < c.mu; m++ {
		if c.kindOf[m] == mkFree {
			c.kindOf[m] = kind
			c.freeWords[m] = int32(c.mem)
			// A fresh machine holds nothing, so its history cursor starts
			// at the present.
			c.lastSync[m] = c.hBase + int64(len(c.h))
			return int32(m)
		}
	}
	panic("dmm: storage pool exhausted")
}

// release returns an exclusive machine to the pool.
func (c *coordinator) release(m int32) {
	c.kindOf[m] = mkFree
	c.freeWords[m] = int32(c.mem)
	c.lastSync[m] = c.hBase + int64(len(c.h))
}

// await parks the current flow until n replies carrying its seq arrive.
func (c *coordinator) await(ctx *mpc.Ctx, n int, f func(ctx *mpc.Ctx)) {
	if n == 0 {
		f(ctx)
		return
	}
	fl := c.cur
	fl.waiting = n
	fl.replies = fl.replies[:0]
	fl.cont = f
}

func (c *coordinator) send(ctx *mpc.Ctx, to int32, m cmsg) {
	if m.Seq == 0 {
		m.Seq = c.cur.seq
	}
	ctx.Send(int(to), m, m.words())
}

// sendStore ships an edge record with the target's H suffix; no reply.
func (c *coordinator) sendStore(ctx *mpc.Ctx, target, v int32, rec edgeRec) {
	c.send(ctx, target, cmsg{Kind: cStore, V: v, Rec: rec, H: c.suffixFor(target), Target: target})
	c.freeWords[target] -= edgeWords
}

func (c *coordinator) HandleRound(ctx *mpc.Ctx, inbox []mpc.Message) {
	for _, raw := range inbox {
		m, ok := raw.Payload.(cmsg)
		if !ok {
			continue
		}
		switch m.Kind {
		case cUpdate:
			if c.serialize && len(c.inflight) > 0 {
				c.queue = append(c.queue, m)
				continue
			}
			c.begin(ctx, m)
		case cStatsRep, cScanRep, cAck, cListRep, cCtrRep:
			if m.Kind != cStatsRep && m.Kind != cCtrRep {
				// Free-space deltas ride on every storage reply.
				c.freeWords[m.Target] += m.Freed - m.Used
			}
			fl := c.inflight[m.Seq] // Seq -1: unsolicited bookkeeping ack
			if fl == nil {
				continue
			}
			fl.replies = append(fl.replies, m)
			if fl.cont != nil && len(fl.replies) >= fl.waiting {
				f := fl.cont
				fl.cont = nil
				c.cur = fl
				f(ctx)
			}
		}
	}
}

// begin opens a flow for the update and starts its case analysis in the
// current round.
func (c *coordinator) begin(ctx *mpc.Ctx, m cmsg) {
	fl := &flow{seq: m.Seq}
	c.inflight[m.Seq] = fl
	c.cur = fl
	c.startUpdate(ctx, m)
}

func (c *coordinator) statOf(v int32) stat {
	for _, r := range c.cur.replies {
		if r.Kind == cStatsRep && r.V == v {
			return r.St
		}
	}
	panic(fmt.Sprintf("dmm: missing stats reply for %d", v))
}

func (c *coordinator) scanRep() cmsg {
	for _, r := range c.cur.replies {
		if r.Kind == cScanRep {
			return r
		}
	}
	panic("dmm: missing scan reply")
}

func (c *coordinator) ackCount(target int32) int32 {
	for _, r := range c.cur.replies {
		if r.Kind == cAck && r.Target == target {
			return r.Count
		}
	}
	return 0
}

// statsSet helpers: authoritative field writes.

func (c *coordinator) setMate(ctx *mpc.Ctx, v, mate int32) {
	c.send(ctx, c.statsOf(v), cmsg{Kind: cStatsSet, V: v, SetMate: true, Mate: mate})
}

func (c *coordinator) setHeavy(ctx *mpc.Ctx, v int32, heavy bool) {
	c.send(ctx, c.statsOf(v), cmsg{Kind: cStatsSet, V: v, SetHeavy: true, Heavy: heavy})
}

func (c *coordinator) setHome(ctx *mpc.Ctx, v, home int32) {
	c.send(ctx, c.statsOf(v), cmsg{Kind: cStatsSet, V: v, SetHome: true, Home: home})
}

func (c *coordinator) setCnt(ctx *mpc.Ctx, v, cnt int32) {
	c.send(ctx, c.statsOf(v), cmsg{Kind: cStatsSet, V: v, SetCnt: true, Cnt: cnt})
}

func (c *coordinator) setSusp(ctx *mpc.Ctx, v int32, susp []int32) {
	c.send(ctx, c.statsOf(v), cmsg{Kind: cStatsSet, V: v, SetSusp: true, Susp: append([]int32(nil), susp...)})
}

// flipInfo coalesces a vertex's matching-status flips within one update;
// only the parity and the original status matter, because the adjacency is
// constant after the update's single edge event.
type flipInfo struct {
	origFree bool
	flips    int
}

func (c *coordinator) noteFlip(v int32, wasFree bool) {
	if !c.threeHalves {
		return
	}
	fi, ok := c.flips[v]
	if !ok {
		fi = &flipInfo{origFree: wasFree}
		c.flips[v] = fi
	}
	fi.flips++
}

// matchPair records (v,w) as matched: H entry (with heaviness bits for the
// mirrors) plus authoritative mate writes.
func (c *coordinator) matchPair(ctx *mpc.Ctx, v, w int32, vHeavy, wHeavy bool) {
	c.hAppend(hentry{op: hMatched, a: v, b: w, ah: vHeavy, bh: wHeavy})
	c.setMate(ctx, v, w)
	c.setMate(ctx, w, v)
	c.noteFlip(v, true)
	c.noteFlip(w, true)
	if c.threeHalves {
		delete(c.freed, v)
		delete(c.freed, w)
	}
}

// unmatchPair records (v,w) as unmatched.
func (c *coordinator) unmatchPair(ctx *mpc.Ctx, v, w int32) {
	c.hAppend(hentry{op: hUnmatched, a: v, b: w})
	c.setMate(ctx, v, -1)
	c.setMate(ctx, w, -1)
	c.noteFlip(v, false)
	c.noteFlip(w, false)
	if c.threeHalves {
		c.freed[v] = true
		c.freed[w] = true
	}
}

// finishUpdate closes the update: in §4 mode it first flushes the pending
// counter flips and sweeps for length-3 augmenting paths; it always ends
// with the round-robin refresh that keeps every storage machine within
// O(√N) updates of the history.
func (c *coordinator) finishUpdate(ctx *mpc.Ctx) {
	done := func(ctx *mpc.Ctx) {
		c.refreshOne(ctx)
		c.updateDone(ctx)
	}
	if c.threeHalves {
		c.counterFlush(ctx, func(ctx *mpc.Ctx) {
			c.augSweep(ctx, func(ctx *mpc.Ctx) {
				c.counterFlush(ctx, done)
			})
		})
		return
	}
	done(ctx)
}

// updateDone closes the current flow and, in serialize mode, chains the
// next queued update into the current round: its first stats requests
// leave in the same round as the finished update's final writes and
// refresh, so a chained batch of k updates pays the injection and ack-tail
// rounds once instead of k times. In wave mode the queue is never used —
// the driver injects each conflict-free wave in one round and every member
// opens its own flow on arrival.
func (c *coordinator) updateDone(ctx *mpc.Ctx) {
	delete(c.inflight, c.cur.seq)
	if len(c.queue) == 0 {
		return
	}
	m := c.queue[0]
	c.queue = c.queue[1:]
	c.begin(ctx, m)
}

func (c *coordinator) refreshOne(ctx *mpc.Ctx) {
	n := c.mu - c.firstStore()
	if n > 0 {
		m := int32(c.firstStore() + c.refreshAt%n)
		c.refreshAt++
		c.send(ctx, m, cmsg{Kind: cRefresh, H: c.suffixFor(m), Target: m})
	}
}
