package sched

// Admitter is the incremental face of FirstWave for streaming ingestion:
// where FirstWave judges a complete batch in one pass, an Admitter grows
// an open wave set one item at a time, answering "may this op join the
// set already admitted?" under exactly the FirstWave rules. The streaming
// front door (the facade's Ingestor) admits arrivals into the currently-
// forming wave set and flushes the set the moment an arrival is refused,
// so the greedy admitted prefix of an op stream equals the all-admitted
// prefix FirstWave would certify over the same items (pinned by
// TestAdmitterFirstWaveEquivalence).
//
// Unlike FirstWave, a refused item records nothing: the caller flushes on
// refusal, so there is no later op that a blocked op's claims would need
// to block (batch order across flushes is preserved by the flush itself).
type Admitter struct {
	budget      int
	claimed     map[int64]bool // exclusive keys held by admitted items
	readClaimed map[int64]bool // read keys held by admitted items
	usage       map[int64]int  // shared-claim usage per key
	n           int            // items admitted since the last Reset
	solo        bool           // a Solo item holds the set: nothing else joins
	fair        *Fair          // optional tenant policy; nil = first-fit
}

// NewAdmitter returns an empty admitter with the given shared-claim
// budget (per key, per wave; <= 0 means unlimited, like FirstWave).
func NewAdmitter(budget int) *Admitter {
	a := &Admitter{budget: budget}
	a.Reset()
	return a
}

// NewAdmitterFair returns an admitter that additionally meters each
// tenant's summed shared cost against the Fair policy's deficits, under
// exactly the FirstWaveFair rules: the greedy admitted prefix equals
// the prefix FirstWaveFair would certify over the same items (pinned by
// TestAdmitterFirstWaveFairEquivalence). nil fair is NewAdmitter.
func NewAdmitterFair(budget int, fair *Fair) *Admitter {
	a := &Admitter{budget: budget, fair: fair}
	a.Reset()
	return a
}

// Len returns the number of items admitted since the last Reset.
func (a *Admitter) Len() int { return a.n }

// Reset empties the wave set; the caller does this after flushing it.
// With a Fair policy attached this is the wave boundary: every tenant's
// deficit is topped up by its quantum, mirroring FirstWaveFair's
// BeginWave.
func (a *Admitter) Reset() {
	a.claimed = make(map[int64]bool, 8)
	a.readClaimed = make(map[int64]bool, 4)
	a.usage = make(map[int64]int, 4)
	a.n = 0
	a.solo = false
	if a.fair != nil {
		a.fair.BeginWave()
	}
}

// Admit reports whether the item may join the open wave set, recording
// its claims when it does. The rules are FirstWave's: a Solo item joins
// only an empty set and seals it; an exclusive key is refused if any
// admitted item claimed it (exclusively or read); a read key is refused
// only against an exclusive claimant (reads never block reads); and each
// shared claim must fit the remaining budget of its key (a claim larger
// than the whole budget still gets an empty key to itself). An empty set
// admits anything — position 0 always joins — so a flush-on-refuse loop
// always makes progress.
func (a *Admitter) Admit(it Item) bool {
	if a.solo {
		return false
	}
	if it.Solo {
		if a.n > 0 {
			return false
		}
		a.solo = true
		a.n = 1
		if a.fair != nil {
			a.fair.charge(it.Tenant, a.fair.cost(it))
		}
		return true
	}
	for _, k := range it.Excl {
		if a.claimed[k] || a.readClaimed[k] {
			return false
		}
	}
	for _, k := range it.Read {
		if a.claimed[k] {
			return false
		}
	}
	if a.budget > 0 {
		for _, cl := range it.Shared {
			if u := a.usage[cl.Key]; u > 0 && u+cl.Cost > a.budget {
				return false
			}
		}
	}
	// Tenant fairness, FirstWaveFair's rule: the first item of the set
	// always joins (progress) and is charged; later items need their
	// tenant's deficit to cover the cost.
	if a.fair != nil && a.n > 0 && !a.fair.allows(it.Tenant, a.fair.cost(it)) {
		return false
	}
	for _, k := range it.Excl {
		a.claimed[k] = true
	}
	for _, k := range it.Read {
		a.readClaimed[k] = true
	}
	for _, cl := range it.Shared {
		a.usage[cl.Key] += cl.Cost
	}
	if a.fair != nil {
		a.fair.charge(it.Tenant, a.fair.cost(it))
	}
	a.n++
	return true
}
