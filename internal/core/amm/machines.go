package amm

import (
	"math/rand"
	"sort"

	"dmpc/internal/mpc"
)

type akind int32

const (
	aUpdate       akind = iota // external edge update at owner(u)
	aEdge                      // owner(u) -> owner(v): second half of the edge update
	aEdgeBack                  // owner(v) -> owner(u): commit both-free match / mirror
	aReport                    // owners -> scheduler: freed vertices, low supports, pending jobs
	aCycle                     // external: run this cycle's subscheduler batches
	aHandleFree                // scheduler -> owner: run handle-free(v)
	aCandidate                 // owner -> scheduler: sampled mate proposal
	aMatchOrder                // scheduler -> owner: commit (v,w) at level ℓ
	aMatchedAck                // owner -> scheduler: committed; names the stolen ex-partner
	aExFreed                   // owner(w) -> owner(ex): your partner was stolen
	aUnmatchOrder              // scheduler -> owner: proactively unmatch v's edge
	aTick                      // scheduler -> owner: process Δ level-notification jobs
	aTickAck                   // owner -> scheduler: jobs drained or not
	aLvlUpd                    // owner -> owner: neighbor level mirror update
	aProbe                     // scheduler -> owner: rise/shuffle probe
	aProbeRep                  // owner -> scheduler
	aMateQuery                 // external mate query at owner(v)
)

type amsg struct {
	Kind    akind
	U, V    int32
	Seq     int64
	Del     bool
	Lvl     int32
	Lvl2    int32
	Support int32
	Free    bool
	Freed   []int32 // pairs (vertex, level)
	Low     []int32 // vertices whose matched edge lost support
	Active  []int32
	Pending bool
	Shuffle bool
	Found   bool
}

func (m amsg) words() int {
	return 10 + len(m.Freed) + len(m.Low) + len(m.Active)
}

// vstate is the authoritative per-vertex state at its owner.
type vstate struct {
	lvl     int32 // -1 free
	mate    int32 // -1 free
	support int32
	adj     map[int32]int32 // neighbor -> mirrored level
}

// job notifies v's neighbors about a level change, Δ per tick.
type job struct {
	v    int32
	lvl  int32
	todo []int32
}

type shard struct {
	id           int
	mu           int
	cfg          Config
	levels       int
	verts        map[int32]*vstate
	jobs         []job
	rng          *rand.Rand
	queryResults map[int64]int32 // mate answers, gathered driver-side
}

func newShard(id, mu int, cfg Config, levels int) *shard {
	return &shard{
		id: id, mu: mu, cfg: cfg, levels: levels,
		verts:        make(map[int32]*vstate),
		rng:          rand.New(rand.NewSource(cfg.Seed + int64(id)*7919)),
		queryResults: make(map[int64]int32),
	}
}

func (s *shard) owner(v int32) int { return 1 + int(v)%s.mu }

func (s *shard) MemWords() int {
	w := 2 * len(s.queryResults)
	for _, st := range s.verts {
		w += 4 + 2*len(st.adj)
	}
	for _, j := range s.jobs {
		w += 2 + len(j.todo)
	}
	return w
}

func (s *shard) get(v int32) *vstate {
	st, ok := s.verts[v]
	if !ok {
		st = &vstate{lvl: -1, mate: -1, adj: make(map[int32]int32)}
		s.verts[v] = st
	}
	return st
}

// queueLevelJob schedules neighbor notifications for v's new level.
func (s *shard) queueLevelJob(v int32, lvl int32) {
	st := s.get(v)
	todo := make([]int32, 0, len(st.adj))
	for w := range st.adj {
		todo = append(todo, w)
	}
	sort.Slice(todo, func(i, j int) bool { return todo[i] < todo[j] })
	s.jobs = append(s.jobs, job{v: v, lvl: lvl, todo: todo})
}

// setLevel moves v to lvl and queues the neighbor notifications.
func (s *shard) setLevel(v int32, lvl int32) {
	st := s.get(v)
	if st.lvl == lvl {
		return
	}
	st.lvl = lvl
	s.queueLevelJob(v, lvl)
}

// lowThreshold is (1-2ε)·γ^ℓ, the proactive unmatch trigger.
func (s *shard) lowThreshold(lvl int32) int32 {
	return int32((1 - 2*s.cfg.Eps) * float64(pow(s.cfg.Gamma, int(lvl))))
}

func (s *shard) HandleRound(ctx *mpc.Ctx, inbox []mpc.Message) {
	report := amsg{Kind: aReport, Seq: 0}
	dirty := false
	sawProtocol := false

	for _, raw := range inbox {
		m, ok := raw.Payload.(amsg)
		if !ok {
			continue
		}
		if m.Kind != aMateQuery {
			sawProtocol = true
		}
		switch m.Kind {
		case aUpdate:
			s.handleUpdate(ctx, m, &report, &dirty)
		case aEdge:
			s.handleEdgeOther(ctx, m, &report, &dirty)
		case aEdgeBack:
			st := s.get(m.U)
			st.adj[m.V] = m.Lvl
			if m.Found { // both-free match committed at the other side
				st.mate = m.V
				s.setLevel(m.U, 0)
				st.support = 1
				dirty = true
			}
		case aHandleFree:
			s.handleFree(ctx, m)
		case aMatchOrder:
			s.commitMatch(ctx, m, &report, &dirty)
		case aExFreed:
			st := s.get(m.U)
			if st.mate == m.V {
				st.mate = -1
				st.lvl = -1
				s.queueLevelJob(m.U, -1)
				dirty = true
			}
		case aUnmatchOrder:
			s.unmatchLocal(ctx, m.U, &report, &dirty)
		case aTick:
			s.processJobs(ctx)
			ack := amsg{Kind: aTickAck, U: int32(s.id), Pending: len(s.jobs) > 0}
			ctx.Send(0, ack, ack.words())
		case aLvlUpd:
			st := s.get(m.U)
			if _, ok := st.adj[m.V]; ok {
				st.adj[m.V] = m.Lvl
			}
		case aProbe:
			s.handleProbe(ctx, m)
		case aMateQuery:
			// Plain lookup: a read must not allocate authoritative state
			// for a never-touched vertex (free vertices report -1 anyway).
			mate := int32(-1)
			if st, ok := s.verts[m.U]; ok {
				mate = st.mate
			}
			s.queryResults[m.Seq] = mate
		}
	}
	// Pure reads report nothing: queries mutate no state, and the
	// scheduler already learned of pending jobs from the protocol round
	// that queued them (and keeps them alive via aTickAck), so a
	// query-only round re-reporting would leak read-triggered traffic
	// into the next update window's accounting.
	pending := len(s.jobs) > 0
	if sawProtocol && (dirty || len(report.Freed) > 0 || len(report.Low) > 0 || pending) {
		report.Pending = pending
		report.U = int32(s.id)
		ctx.Send(0, report, report.words())
	}
}

// handleUpdate is the first half of an edge update, at owner(u).
func (s *shard) handleUpdate(ctx *mpc.Ctx, m amsg, report *amsg, dirty *bool) {
	u, v := m.U, m.V
	if u == v {
		return
	}
	st := s.get(u)
	if !m.Del {
		st.adj[v] = -2 // unknown until the mirror reply
		fwd := amsg{Kind: aEdge, U: v, V: u, Lvl: st.lvl, Free: st.mate == -1}
		ctx.Send(s.owner(v), fwd, fwd.words())
		return
	}
	// Delete.
	wasMate := st.mate == v
	delete(st.adj, v)
	fwd := amsg{Kind: aEdge, U: v, V: u, Del: true, Found: wasMate, Lvl: st.lvl}
	if wasMate {
		report.Freed = append(report.Freed, u, st.lvl)
		st.mate = -1
		st.lvl = -1
		s.queueLevelJob(u, -1)
		*dirty = true
	} else if st.mate >= 0 {
		st.support--
		if st.support < s.lowThreshold(st.lvl) {
			report.Low = append(report.Low, u)
			*dirty = true
		}
	}
	ctx.Send(s.owner(v), fwd, fwd.words())
}

// handleEdgeOther is the second half, at owner(v).
func (s *shard) handleEdgeOther(ctx *mpc.Ctx, m amsg, report *amsg, dirty *bool) {
	v, u := m.U, m.V
	st := s.get(v)
	if m.Del {
		delete(st.adj, u)
		if m.Found { // the deleted edge was the matched edge
			report.Freed = append(report.Freed, v, st.lvl)
			st.mate = -1
			st.lvl = -1
			s.queueLevelJob(v, -1)
			*dirty = true
		} else if st.mate >= 0 {
			st.support--
			if st.support < s.lowThreshold(st.lvl) {
				report.Low = append(report.Low, v)
				*dirty = true
			}
		}
		return
	}
	st.adj[u] = m.Lvl
	back := amsg{Kind: aEdgeBack, U: u, V: v, Lvl: st.lvl}
	if m.Free && st.mate == -1 {
		// Both endpoints free: match at level 0 (§6's insertion rule).
		st.mate = u
		s.setLevel(v, 0)
		st.support = 1
		back.Found = true
		back.Lvl = 0
		*dirty = true
	}
	ctx.Send(s.owner(u), back, back.words())
}

// handleFree runs the §6 handle-free(v): choose the highest level ℓ with
// Φ_v(ℓ) ≥ γ^ℓ and sample a mate from the lower-level pool, excluding the
// active list.
func (s *shard) handleFree(ctx *mpc.Ctx, m amsg) {
	v := m.U
	st := s.get(v)
	if st.mate >= 0 || len(st.adj) == 0 {
		return // nothing to do; scheduler's active entry expires
	}
	active := map[int32]bool{}
	for _, a := range m.Active {
		active[a] = true
	}
	bestLvl := int32(-1)
	for l := 0; l < s.levels; l++ {
		phi := 0
		for _, wl := range st.adj {
			if int(wl) < l {
				phi++
			}
		}
		if phi >= pow(s.cfg.Gamma, l) {
			bestLvl = int32(l)
		}
	}
	if bestLvl < 0 {
		return
	}
	var pool []int32
	for w, wl := range st.adj {
		if wl < bestLvl && !active[w] {
			pool = append(pool, w)
		}
	}
	if len(pool) == 0 {
		return
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
	w := pool[s.rng.Intn(len(pool))]
	cand := amsg{Kind: aCandidate, U: v, V: w, Lvl: bestLvl, Support: int32(len(pool))}
	ctx.Send(0, cand, cand.words())
}

// commitMatch applies an arbitrated match order for the vertex this shard
// owns. The first order (to w's owner, Found=true) steals w from its
// current partner if necessary.
func (s *shard) commitMatch(ctx *mpc.Ctx, m amsg, report *amsg, dirty *bool) {
	v := m.U
	st := s.get(v)
	if m.Found && st.mate >= 0 {
		// Steal: the ex-partner is freed.
		ex := st.mate
		exLvl := st.lvl
		fr := amsg{Kind: aExFreed, U: ex, V: v}
		ctx.Send(s.owner(ex), fr, fr.words())
		report.Freed = append(report.Freed, ex, exLvl)
		*dirty = true
	}
	st.mate = m.V
	st.support = m.Support
	s.setLevel(v, m.Lvl)
	*dirty = true
}

// processJobs delivers up to Δ pending level notifications.
func (s *shard) processJobs(ctx *mpc.Ctx) {
	budget := s.cfg.Delta
	for budget > 0 && len(s.jobs) > 0 {
		j := &s.jobs[0]
		n := budget
		if n > len(j.todo) {
			n = len(j.todo)
		}
		for _, w := range j.todo[:n] {
			upd := amsg{Kind: aLvlUpd, U: w, V: j.v, Lvl: j.lvl}
			ctx.Send(s.owner(w), upd, upd.words())
		}
		j.todo = j.todo[n:]
		budget -= n
		if len(j.todo) == 0 {
			s.jobs = s.jobs[1:]
		}
	}
}

// unmatchLocal proactively unmatches v's edge (unmatch/shuffle/rise
// schedulers).
func (s *shard) unmatchLocal(ctx *mpc.Ctx, v int32, report *amsg, dirty *bool) {
	st := s.get(v)
	if st.mate < 0 {
		return
	}
	ex := st.mate
	lvl := st.lvl
	st.mate = -1
	st.lvl = -1
	s.queueLevelJob(v, -1)
	fr := amsg{Kind: aExFreed, U: ex, V: v}
	ctx.Send(s.owner(ex), fr, fr.words())
	report.Freed = append(report.Freed, v, lvl, ex, lvl)
	*dirty = true
}

// handleProbe serves the rise/shuffle subschedulers: report a random
// matched vertex at level >= 1 (shuffle) or a Φ-invariant violator (rise).
func (s *shard) handleProbe(ctx *mpc.Ctx, m amsg) {
	rep := amsg{Kind: aProbeRep, Shuffle: m.Shuffle}
	var ids []int32
	for v := range s.verts {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if m.Shuffle {
		var cands []int32
		for _, v := range ids {
			st := s.verts[v]
			if st.mate >= 0 && st.lvl >= 1 && v < st.mate {
				cands = append(cands, v)
			}
		}
		if len(cands) > 0 {
			rep.Found = true
			rep.U = cands[s.rng.Intn(len(cands))]
		}
	} else {
		// Rise probe: Φ_v(ℓ) must stay ≤ γ^ℓ · c·log² n for ℓ > lvl(v).
		cap := 4 * bits(s.cfg.N) * bits(s.cfg.N)
		for _, v := range ids {
			st := s.verts[v]
			for l := int(st.lvl) + 1; l < s.levels; l++ {
				phi := 0
				for _, wl := range st.adj {
					if int(wl) < l {
						phi++
					}
				}
				if phi > pow(s.cfg.Gamma, l)*cap {
					rep.Found = true
					rep.U = v
					rep.Lvl = int32(l)
					break
				}
			}
			if rep.Found {
				break
			}
		}
	}
	ctx.Send(0, rep, rep.words())
}

// scheduler is machine 0: queues, active list, subscheduler arbitration.
type scheduler struct {
	cfg    Config
	mu     int
	levels int

	queues          [][]int32 // per level (index lvl+1)
	active          map[int32]bool
	lowSupp         map[int32]bool
	pendingJobs     map[int32]bool
	pendingUnmatch  []int32
	pendingAckClear []int32
	rng             *rand.Rand
	cycle           int64
}

func newScheduler(cfg Config, mu, levels int) *scheduler {
	return &scheduler{
		cfg: cfg, mu: mu, levels: levels,
		queues:      make([][]int32, levels+1),
		active:      make(map[int32]bool),
		lowSupp:     make(map[int32]bool),
		pendingJobs: make(map[int32]bool),
		rng:         rand.New(rand.NewSource(cfg.Seed ^ 0x5bf0_3635)),
	}
}

func (s *scheduler) MemWords() int {
	w := len(s.active) + len(s.lowSupp) + len(s.pendingJobs) + len(s.pendingUnmatch)
	for _, q := range s.queues {
		w += len(q)
	}
	return w + 8
}

func (s *scheduler) owner(v int32) int { return 1 + int(v)%s.mu }

func (s *scheduler) enqueue(v, lvl int32) {
	idx := int(lvl) + 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.queues) {
		idx = len(s.queues) - 1
	}
	s.queues[idx] = append(s.queues[idx], v)
}

func (s *scheduler) HandleRound(ctx *mpc.Ctx, inbox []mpc.Message) {
	runCycle := false
	for _, raw := range inbox {
		m, ok := raw.Payload.(amsg)
		if !ok {
			continue
		}
		switch m.Kind {
		case aReport:
			for i := 0; i+1 < len(m.Freed); i += 2 {
				s.enqueue(m.Freed[i], m.Freed[i+1])
			}
			for _, v := range m.Low {
				s.lowSupp[v] = true
			}
			if m.Pending {
				s.pendingJobs[m.U] = true
			}
		case aTickAck:
			if !m.Pending {
				delete(s.pendingJobs, m.U)
			} else {
				s.pendingJobs[m.U] = true
			}
		case aCycle:
			runCycle = true
		case aCandidate:
			s.arbitrate(ctx, m)
		case aMatchedAck:
			delete(s.active, m.U)
			delete(s.active, m.V)
		case aProbeRep:
			if m.Found {
				s.pendingUnmatch = append(s.pendingUnmatch, m.U)
				if !m.Shuffle {
					// Rise: requeue at the violating level after unmatching.
					s.enqueue(m.U, m.Lvl)
				}
			}
		}
	}
	if runCycle {
		s.dispatch(ctx)
	}
}

// dispatch runs one Δ-bounded batch of every subscheduler family.
func (s *scheduler) dispatch(ctx *mpc.Ctx) {
	s.cycle++
	// Match orders always commit, so the previous cycle's active entries
	// expire now.
	for _, v := range s.pendingAckClear {
		delete(s.active, v)
	}
	s.pendingAckClear = nil
	// Deferred unmatch orders (shuffle/rise picks from the previous cycle,
	// low-support edges from the unmatch-scheduler).
	orders := s.pendingUnmatch
	s.pendingUnmatch = nil
	var lows []int32
	for v := range s.lowSupp {
		lows = append(lows, v)
	}
	sort.Slice(lows, func(i, j int) bool { return lows[i] < lows[j] })
	if len(lows) > 0 {
		orders = append(orders, lows[0]) // lowest-support proxy: one per cycle
		delete(s.lowSupp, lows[0])
	}
	seen := map[int32]bool{}
	for _, v := range orders {
		if seen[v] || s.active[v] {
			continue
		}
		seen[v] = true
		o := amsg{Kind: aUnmatchOrder, U: v}
		ctx.Send(s.owner(v), o, o.words())
	}

	// Free-schedule: pop one vertex per level, highest level first (the
	// paper's processing order), and dispatch handle-free with the active
	// list attached.
	act := make([]int32, 0, len(s.active))
	for v := range s.active {
		act = append(act, v)
	}
	sort.Slice(act, func(i, j int) bool { return act[i] < act[j] })
	for lvl := len(s.queues) - 1; lvl >= 0; lvl-- {
		q := s.queues[lvl]
		for len(q) > 0 {
			v := q[0]
			q = q[1:]
			if s.active[v] {
				continue
			}
			o := amsg{Kind: aHandleFree, U: v, Active: act}
			ctx.Send(s.owner(v), o, o.words())
			break
		}
		s.queues[lvl] = q
	}

	// Tick machines with pending level-notification jobs.
	for m := range s.pendingJobs {
		o := amsg{Kind: aTick}
		ctx.Send(int(m), o, o.words())
	}

	// Shuffle and rise probes, one random shard each every few cycles.
	if s.cycle%4 == 0 {
		o := amsg{Kind: aProbe, Shuffle: true}
		ctx.Send(1+s.rng.Intn(s.mu), o, o.words())
	}
	if s.cycle%4 == 2 {
		o := amsg{Kind: aProbe}
		ctx.Send(1+s.rng.Intn(s.mu), o, o.words())
	}
}

// arbitrate resolves candidate conflicts: first valid candidate per vertex
// wins; both sides become active until their acks arrive.
func (s *scheduler) arbitrate(ctx *mpc.Ctx, m amsg) {
	v, w := m.U, m.V
	if s.active[v] || s.active[w] {
		s.enqueue(v, m.Lvl) // retry later
		return
	}
	s.active[v], s.active[w] = true, true
	// w's side first (it may steal), then v's side.
	ow := amsg{Kind: aMatchOrder, U: w, V: v, Lvl: m.Lvl, Support: m.Support, Found: true}
	ctx.Send(s.owner(w), ow, ow.words())
	ov := amsg{Kind: aMatchOrder, U: v, V: w, Lvl: m.Lvl, Support: m.Support}
	ctx.Send(s.owner(v), ov, ov.words())
	// Acks are implicit: both orders always commit (the steal frees the
	// ex-partner), so the active entries clear at the next cycle.
	s.pendingAckClear = append(s.pendingAckClear, v, w)
}
