package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertDeleteBasics(t *testing.T) {
	g := New(5)
	if !g.Insert(0, 1, 7) {
		t.Fatal("insert failed")
	}
	if g.Insert(1, 0, 7) {
		t.Fatal("duplicate insert should fail")
	}
	if g.Insert(2, 2, 1) {
		t.Fatal("self-loop insert should fail")
	}
	if g.Insert(-1, 2, 1) || g.Insert(0, 5, 1) {
		t.Fatal("out-of-range insert should fail")
	}
	if !g.Has(1, 0) {
		t.Fatal("edge should be symmetric")
	}
	if w, ok := g.WeightOf(0, 1); !ok || w != 7 {
		t.Fatalf("weight = %d,%v", w, ok)
	}
	if g.M() != 1 {
		t.Fatalf("m = %d", g.M())
	}
	if !g.Delete(1, 0) {
		t.Fatal("delete failed")
	}
	if g.Delete(0, 1) {
		t.Fatal("double delete should fail")
	}
	if g.M() != 0 {
		t.Fatalf("m = %d after delete", g.M())
	}
}

func TestCloneIndependent(t *testing.T) {
	g := Path(4)
	c := g.Clone()
	c.Delete(0, 1)
	if !g.Has(0, 1) {
		t.Fatal("clone mutation leaked into original")
	}
	if c.M() != g.M()-1 {
		t.Fatal("clone edge count wrong")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := Star(6)
	nbrs := g.Neighbors(0)
	if len(nbrs) != 5 {
		t.Fatalf("center degree = %d", len(nbrs))
	}
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i-1] >= nbrs[i] {
			t.Fatal("neighbors not sorted")
		}
	}
}

func TestEdgesSortedAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := GNM(30, 60, 10, rng)
	edges := g.Edges()
	if len(edges) != g.M() {
		t.Fatalf("edges %d != m %d", len(edges), g.M())
	}
	for i, e := range edges {
		if e.U >= e.V {
			t.Fatal("edge not normalized")
		}
		if i > 0 {
			p := edges[i-1]
			if p.U > e.U || (p.U == e.U && p.V >= e.V) {
				t.Fatal("edges not sorted")
			}
		}
		if !g.Has(e.U, e.V) {
			t.Fatal("listed edge missing")
		}
	}
}

func TestGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	if g := Path(10); g.M() != 9 || NumComponents(g) != 1 {
		t.Fatal("path wrong")
	}
	if g := Cycle(10); g.M() != 10 || NumComponents(g) != 1 {
		t.Fatal("cycle wrong")
	}
	if g := Star(10); g.M() != 9 || g.Degree(0) != 9 {
		t.Fatal("star wrong")
	}
	if g := Grid(4, 5, 1, nil); g.M() != 4*4+3*5 || NumComponents(g) != 1 {
		t.Fatal("grid wrong")
	}
	if g := RandomTree(50, 5, rng); g.M() != 49 || NumComponents(g) != 1 {
		t.Fatal("tree wrong")
	}
	if g := CompleteBipartite(3, 4); g.M() != 12 {
		t.Fatal("bipartite wrong")
	}
	g := PrefAttach(100, 3, rng)
	if NumComponents(g) != 1 {
		t.Fatal("pref attach should be connected")
	}
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 6 {
		t.Fatalf("pref attach should have a hub, max degree = %d", maxDeg)
	}
}

func TestRandomStreamReplayConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	updates := RandomStream(20, 300, 0.6, 10, rng)
	if len(updates) != 300 {
		t.Fatalf("stream length %d", len(updates))
	}
	// Replaying must never produce a duplicate insert or phantom delete.
	g := New(20)
	for _, u := range updates {
		if !g.Apply(u) {
			t.Fatalf("update %v was a no-op on replay", u)
		}
	}
}

func TestSlidingWindowBoundsEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	updates := SlidingWindow(30, 25, 400, 1, rng)
	g := New(30)
	for _, u := range updates {
		if !g.Apply(u) {
			t.Fatalf("no-op update %v", u)
		}
		if g.M() > 25 {
			t.Fatalf("window exceeded: m=%d", g.M())
		}
	}
}

func TestTreeChurnDeletesTreeEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	initial, churn := TreeChurn(40, 20, 50, 8, rng)
	g := FromUpdates(40, initial)
	if NumComponents(g) != 1 {
		t.Fatal("initial graph should be connected")
	}
	for _, u := range churn {
		if !g.Apply(u) {
			t.Fatalf("churn update %v was no-op", u)
		}
	}
	if NumComponents(g) != 1 {
		t.Fatal("graph should end connected")
	}
}

func TestComponentsAgainstUnionFind(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := GNM(25, 30, 1, rng)
		comp := Components(g)
		// Brute force: same component iff BFS from u reaches v.
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if (comp[u] == comp[v]) != SameComponent(g, u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSameLabeling(t *testing.T) {
	if !SameLabeling([]int{0, 0, 2}, []int{5, 5, 9}) {
		t.Fatal("isomorphic labelings should match")
	}
	if SameLabeling([]int{0, 0, 2}, []int{5, 9, 9}) {
		t.Fatal("different partitions should not match")
	}
	if SameLabeling([]int{0}, []int{0, 1}) {
		t.Fatal("length mismatch should fail")
	}
}

func TestIsSpanningForest(t *testing.T) {
	g := Cycle(5)
	forest := []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	if !IsSpanningForest(g, forest) {
		t.Fatal("path should span the cycle")
	}
	cyclic := append(append([]Edge{}, forest...), Edge{0, 4})
	if IsSpanningForest(g, cyclic) {
		t.Fatal("cycle should be rejected")
	}
	if IsSpanningForest(g, forest[:3]) {
		t.Fatal("disconnected forest should be rejected")
	}
	if IsSpanningForest(g, []Edge{{0, 2}}) {
		t.Fatal("non-edge should be rejected")
	}
}

func TestMatchingCheckers(t *testing.T) {
	g := Path(6) // 0-1-2-3-4-5
	mate := MateTable(6, []Edge{{1, 2}, {3, 4}})
	if !IsMatching(g, mate) {
		t.Fatal("valid matching rejected")
	}
	if IsMaximalMatching(g, mate) {
		// edge (0,1)? 1 is matched. (4,5)? 4 matched. (2,3)? both matched.
		// Actually all edges touch a matched vertex except... 0-1: 1 matched.
		t.Log("path matching {12,34} is maximal")
	}
	if CountFreeFreeEdges(g, mate) != 0 {
		t.Fatal("deficit should be 0")
	}
	// Augmenting path of length 3: 0 - (1,2) - ... 0 free, 5 free:
	// 0-1,1-2 matched? path 0,1,2,3 needs (1,2) matched and 0,3 free: 3 is
	// matched, so no. Path 5,4,3,2: (4,3) matched, 5 free, 2 matched. No.
	if HasLength3AugPath(g, mate) {
		t.Fatal("no length-3 augmenting path expected")
	}
	mate2 := MateTable(6, []Edge{{2, 3}})
	// 1 - (2,3) - 4 with 1 and 4 free: augmenting path of length 3.
	if !HasLength3AugPath(g, mate2) {
		t.Fatal("length-3 augmenting path should be found")
	}
}

func TestMaxMatchingSizeSmall(t *testing.T) {
	if got := MaxMatchingSize(Path(6)); got != 3 {
		t.Fatalf("path6 max matching = %d, want 3", got)
	}
	if got := MaxMatchingSize(Cycle(5)); got != 2 {
		t.Fatalf("cycle5 max matching = %d, want 2", got)
	}
	if got := MaxMatchingSize(Star(8)); got != 1 {
		t.Fatalf("star8 max matching = %d, want 1", got)
	}
	if got := MaxMatchingSize(CompleteBipartite(3, 5)); got != 3 {
		t.Fatalf("K35 max matching = %d, want 3", got)
	}
}

func TestGreedyMaximalMatchingProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := GNM(18, 30, 1, rng)
		mate := GreedyMaximalMatching(g)
		if !IsMaximalMatching(g, mate) {
			return false
		}
		// Maximal matching is a 2-approximation of maximum.
		return 2*MatchingSize(mate) >= MaxMatchingSize(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestMSF(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := Grid(5, 5, 100, rng)
	msf := MSFEdges(g)
	if len(msf) != g.N()-1 {
		t.Fatalf("msf has %d edges, want %d", len(msf), g.N()-1)
	}
	var plain []Edge
	for _, e := range msf {
		plain = append(plain, Edge{e.U, e.V})
	}
	if !IsSpanningForest(g, plain) {
		t.Fatal("msf is not a spanning forest")
	}
	// Cut property spot check: total weight must not exceed any other
	// spanning forest; compare against the unweighted spanning forest.
	w := MSFWeight(g)
	if alt, ok := ForestWeight(g, plain); !ok || alt != w {
		t.Fatal("forest weight mismatch")
	}
}

func TestBucketWeight(t *testing.T) {
	eps := 0.25
	for w := Weight(1); w < 1000; w++ {
		b := BucketWeight(w, eps)
		if b > w {
			t.Fatalf("bucket %d > weight %d", b, w)
		}
		if float64(w) >= float64(b)*(1+eps)+1+eps {
			t.Fatalf("bucket %d too far below %d", b, w)
		}
	}
	// Rounded MSF weight is within (1+eps) of exact (plus one unit of
	// integer-truncation slack per forest edge).
	rng := rand.New(rand.NewSource(5))
	g := GNM(40, 120, 1000, rng)
	exact := MSFWeight(g)
	rounded := g.Clone()
	for _, e := range g.Edges() {
		rounded.Delete(e.U, e.V)
		rounded.Insert(e.U, e.V, BucketWeight(e.W, eps))
	}
	rw := MSFWeight(rounded)
	if rw > exact {
		t.Fatalf("rounded MSF %d > exact %d", rw, exact)
	}
	slack := float64(g.N()) * (1 + eps)
	if float64(exact) > float64(rw)*(1+eps)+slack {
		t.Fatalf("exact %d not within (1+eps) of rounded %d", exact, rw)
	}
}

func TestFromUpdates(t *testing.T) {
	updates := []Update{
		{Op: Insert, U: 0, V: 1, W: 2},
		{Op: Insert, U: 1, V: 2, W: 3},
		{Op: Delete, U: 0, V: 1},
	}
	g := FromUpdates(3, updates)
	if g.M() != 1 || !g.Has(1, 2) {
		t.Fatal("replay wrong")
	}
}

func TestUpdateString(t *testing.T) {
	u := Update{Op: Insert, U: 1, V: 2, W: 3}
	d := Update{Op: Delete, U: 1, V: 2}
	if u.String() == "" || d.String() == "" {
		t.Fatal("String should be non-empty")
	}
}
