package mpc

import (
	"math/bits"
	"runtime"
)

// ParallelBackend is the goroutine-per-machine parallel runtime. Machines
// are statically sharded over long-lived worker goroutines — one machine
// per worker while µ fits under the worker cap, contiguous blocks above
// it — and each round the driver wakes exactly the workers whose shards
// hold active machines over per-worker channels. A worker runs its
// machines' handlers against a contiguous per-round context slab: the
// active set is ascending and shards are contiguous id blocks, so worker
// si owns exactly the slab positions of its slice of the active set, and
// outbox staging is lock-free per sender. The drained done channel is the
// round barrier; after it the driver merges the staged messages in
// ascending machine order — the same deterministic merge the SimBackend
// oracle uses — so answers, stats and violation accounting are
// bit-identical to BackendSim.
//
// Two fast paths keep serial stretches cheap: the driver executes shard 0
// itself while the woken workers run, and a round whose active machines
// all fall into one shard runs entirely inline on the driver with no
// channel traffic at all. The context slab is pooled across rounds
// (growSlab + settle's payload-clearing recycle), so a cluster round
// costs at most one channel wake per involved worker and no allocations
// at steady state, instead of one goroutine spawn, one semaphore
// round-trip and one context allocation per active machine — which is
// where the wall-clock headroom over the sim backend comes from (see
// BenchmarkBackends and TestSteadyStateAllocsPerRound).
//
// Close must be called to release the worker goroutines; the facade
// structures forward their Close to it.
type ParallelBackend struct {
	backendBase
	nshards int
	work    []chan int // per-worker round signal, shards 1..nshards-1 (shard 0 is the driver's)
	done    chan int   // round barrier: workers report their shard index

	// Per-round state, written by the driver before the wakes and read by
	// the workers (the channel send orders the accesses): the active set,
	// one recycled context per active machine at the matching position,
	// and each shard's [start, end) slice of both. The slab persists
	// across rounds — settle payload-clears every slot, so keeping the
	// backing array pins nothing.
	active []int
	slab   []Ctx
	lo, hi []int
	closed bool
}

func newParallelBackend(c *Cluster, workers int) *ParallelBackend {
	w := workers
	if w > c.cfg.Machines {
		w = c.cfg.Machines
	}
	if w < 1 {
		w = 1
	}
	p := &ParallelBackend{
		backendBase: newBackendBase(c),
		nshards:     w,
		done:        make(chan int, w),
		lo:          make([]int, w),
		hi:          make([]int, w),
	}
	p.work = make([]chan int, w)
	for si := 1; si < w; si++ {
		p.work[si] = make(chan int, 1)
		go p.worker(si)
	}
	return p
}

// shardOf maps a machine id to its static worker shard (contiguous
// blocks, so a worker's machines stay cache-adjacent). The mapping is
// floor(id·nshards/µ) computed through a 128-bit intermediate: the naive
// id*nshards product overflows int for large µ on 32-bit platforms and
// near-MaxInt ids on 64-bit ones. The quotient always fits — id < µ, so
// id·nshards/µ < nshards — which also satisfies Div64's hi < divisor
// precondition.
func (p *ParallelBackend) shardOf(id int) int {
	hi, lo := bits.Mul64(uint64(id), uint64(p.nshards))
	quo, _ := bits.Div64(hi, lo, uint64(p.c.cfg.Machines))
	return int(quo)
}

// worker is the long-lived loop of one shard: woken with a round number,
// it executes its shard's active machines and reports to the barrier. It
// exits when the work channel is closed.
func (p *ParallelBackend) worker(si int) {
	for round := range p.work[si] {
		p.runShard(si, round)
		p.done <- si
	}
}

// runShard sorts the inboxes and runs the handlers of one shard's slice
// of the active set. Each slab slot is written only here, by the single
// goroutine executing this shard this round. The Gosched after every
// handler mirrors the yield cadence the sim oracle gets for free from
// its per-handler goroutines: without it this loop monopolizes its P for
// the whole round, the concurrent GC mark worker starves, the mark phase
// stretches, and every pointer write inside the stretched window pays
// the full write-barrier flush (measured at >20% of round time on a
// single-P box before the yields).
func (p *ParallelBackend) runShard(si, round int) {
	for i := p.lo[si]; i < p.hi[si]; i++ {
		id := p.active[i]
		ctx := &p.slab[i]
		ctx.cluster, ctx.self, ctx.round = p.c, id, round
		inbox := p.inboxes[id]
		sortInbox(inbox)
		if m := p.c.machines[id]; m != nil {
			m.HandleRound(ctx, inbox)
		}
		runtime.Gosched()
	}
	runtime.Gosched()
}

// Round executes one synchronous round: wake the involved workers, run
// the driver's own share, drain the barrier, then merge deterministically.
func (p *ParallelBackend) Round() RoundStats {
	if p.closed {
		panic("mpc: Round on a closed cluster")
	}
	active, rs := p.beginRound()
	round := p.c.stats.Rounds

	// One contiguous context slab, positionally aligned with the
	// ascending active set and recycled across rounds (growSlab keeps
	// the backing array; settle payload-cleared every slot last round).
	// A shard's slice of it is the maximal run of positions whose
	// machine ids it owns.
	p.active = active
	p.slab = growSlab(p.slab, len(active))
	for si := range p.lo {
		p.lo[si], p.hi[si] = 0, 0
	}
	prev := -1
	for i, id := range active {
		si := p.shardOf(id)
		if si != prev {
			p.lo[si] = i
			prev = si
		}
		p.hi[si] = i + 1
	}

	involved := 0
	for si := 1; si < p.nshards; si++ {
		if p.hi[si] > p.lo[si] {
			p.work[si] <- round
			involved++
		}
	}
	p.runShard(0, round)
	for ; involved > 0; involved-- {
		<-p.done
	}

	slab := p.slab
	p.settle(active, func(i, _ int) *Ctx { return &slab[i] })

	// The slab stays banked for the next round: settle copied the staged
	// messages into the receiving inboxes and recycled every slot with
	// the payload-clearing rule, so the retained backing array holds no
	// message payloads — the PR 7 "drop the slab" invariant, now enforced
	// by clearing instead of dropping.
	p.active = nil
	return rs
}

// Close stops the worker goroutines. Idempotent; Round panics afterwards.
func (p *ParallelBackend) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for si := 1; si < p.nshards; si++ {
		close(p.work[si])
	}
}
