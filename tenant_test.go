package dmpc

import (
	"testing"
)

// victimArrivals is the read-mostly tenant-1 stream of the adversarial
// scenario: one connectivity query every gap rounds over a small vertex
// range, arriving at a steady cadence.
func victimArrivals(steps int, gap int64) []Arrival {
	arr := make([]Arrival, 0, steps)
	for s := 0; s < steps; s++ {
		u := (s * 2) % 14
		arr = append(arr, Arrival{At: int64(s) * gap, Op: QConnected(u, u+1).ForTenant(1)})
	}
	return arr
}

// noisyMerge interleaves a tenant-2 write storm into the victim stream:
// burst non-conflicting inserts at every victim step, on a vertex range
// disjoint from the victim's queries — the storm contends only for wave
// budget, never for the victim's data, so any victim slowdown is pure
// noisy-neighbor crowding.
func noisyMerge(victim []Arrival, burst int) []Arrival {
	var arr []Arrival
	pair := 0
	for _, a := range victim {
		arr = append(arr, a)
		for j := 0; j < burst; j++ {
			u := 16 + (pair*2)%48
			pair++
			arr = append(arr, Arrival{At: a.At, Op: Ins(u, u+1).ForTenant(2)})
		}
	}
	return arr
}

// TestAdversarialTenantIsolation pins the PR's headline guarantee: a
// write-storm tenant cannot push a read-mostly tenant's p99 rounds-from-
// arrival latency above its solo baseline plus a small tolerance, once
// the multi-tenant controls engage — weighted fair-wave packing meters
// the storm's share of each window, and a token bucket on the noisy
// tenant sheds the flood the cluster could never absorb (work-conserving
// weights alone cannot shed backlog; admission is what bounds it). The
// unweighted shared run must measurably hurt the victim, and the fair
// run must beat it, proving the mechanism (not luck) provides the
// isolation. Deterministic: fixed streams, sim backend.
func TestAdversarialTenantIsolation(t *testing.T) {
	const steps, burst = 40, 12
	const gap = 4 // rounds between victim queries; the storm rides each one
	weights := map[int]int{1: 3, 2: 1}
	cfg := IngestorConfig{MaxAge: 4}
	victim := victimArrivals(steps, gap)
	mixed := noisyMerge(victim, burst)

	solo := NewConnectivity(64, 256)
	_, stSolo := Ingest(solo, victim, cfg)
	p99Solo := stSolo.Tenants[1].P99()

	unfair := NewConnectivity(64, 256)
	_, stUnfair := Ingest(unfair, mixed, cfg)
	p99Unfair := stUnfair.Tenants[1].P99()

	fairCC := NewConnectivity(64, 256, WithTenantWeights(weights))
	fairCfg := cfg
	fairCfg.Weights = weights
	fairCfg.Admission = map[int]AdmissionPolicy{2: &TokenBucket{Rate: 0.1, Burst: 1}}
	resFair, stFair := Ingest(fairCC, mixed, fairCfg)
	p99Fair := stFair.Tenants[1].P99()

	if p99Solo == 0 || p99Unfair == 0 || p99Fair == 0 {
		t.Fatalf("degenerate p99s (solo %d, unfair %d, fair %d): scenario produced no latency signal",
			p99Solo, p99Unfair, p99Fair)
	}
	// The flood must actually hurt without the controls, or the scenario
	// proves nothing about the mechanism.
	if p99Unfair <= p99Solo {
		t.Fatalf("write storm did not degrade the unweighted victim (solo p99 %d, shared p99 %d): scenario too weak",
			p99Solo, p99Unfair)
	}
	const tolerance = 4 // rounds of slack over the solo baseline
	if p99Fair > p99Solo+tolerance {
		t.Fatalf("fair victim p99 = %d rounds, want <= solo baseline %d + %d", p99Fair, p99Solo, tolerance)
	}
	if p99Fair >= p99Unfair {
		t.Fatalf("fair victim p99 %d not below unfair %d: the controls provided no isolation", p99Fair, p99Unfair)
	}

	// Isolation must never cost the victim answers: every victim query is
	// answered, admitted, and correct (the victim's range starts
	// disconnected and stays so — the storm never touches vertices below
	// 16). Only noisy writes were shed, and each shed op left a typed
	// Rejection, never a silent drop.
	nq := 0
	for _, r := range resFair {
		if r.Rejected {
			t.Fatalf("a query was rejected %+v; only the noisy tenant's writes should be shed", r)
		}
		if r.Bool {
			t.Fatalf("victim query answered connected; storm leaked into the victim's vertex range")
		}
		nq++
	}
	if nq != steps {
		t.Fatalf("%d answers, want %d victim queries", nq, steps)
	}
	if stFair.Rejected == 0 || len(stFair.Rejections) != stFair.Rejected {
		t.Fatalf("flood shed %d ops with %d Rejection records; want a nonzero, fully recorded shed",
			stFair.Rejected, len(stFair.Rejections))
	}
	// Per-tenant accounting partitions the stream: the victim's books are
	// untouched, and every noisy op is either admitted or rejected.
	v, n := stFair.Tenants[1], stFair.Tenants[2]
	if v.Ops != steps || v.Queries != steps || v.Rejected != 0 {
		t.Fatalf("victim tenant stats %+v, want %d admitted queries, 0 rejections", v, steps)
	}
	if n.Ops+n.Rejected != steps*burst || n.Queries != 0 {
		t.Fatalf("noisy tenant stats %+v: admitted %d + rejected %d ops, want %d writes total",
			n, n.Ops, n.Rejected, steps*burst)
	}
}

// TestZeroTenantStreamsIdentical pins the compatibility contract: tenant
// tags alone (no weights, no admission) must not change answers, flush
// pattern, or latencies — the tags only add the per-tenant breakdown.
func TestZeroTenantStreamsIdentical(t *testing.T) {
	const steps, burst = 24, 6
	mixed := noisyMerge(victimArrivals(steps, 2), burst)
	plain := make([]Arrival, len(mixed))
	for i, a := range mixed {
		a.Op.Tenant = 0
		plain[i] = a
	}

	ccPlain := NewConnectivity(64, 256)
	resPlain, stPlain := Ingest(ccPlain, plain, IngestorConfig{MaxAge: 4})
	ccTag := NewConnectivity(64, 256)
	resTag, stTag := Ingest(ccTag, mixed, IngestorConfig{MaxAge: 4})

	if len(resPlain) != len(resTag) {
		t.Fatalf("tagged stream answered %d queries, untagged %d", len(resTag), len(resPlain))
	}
	for i := range resPlain {
		if resPlain[i] != resTag[i] {
			t.Fatalf("query %d: tagged %+v, untagged %+v", i, resTag[i], resPlain[i])
		}
	}
	if stPlain.Flushes != stTag.Flushes || stPlain.FlushConflict != stTag.FlushConflict ||
		stPlain.FlushAge != stTag.FlushAge || stPlain.FlushFull != stTag.FlushFull {
		t.Fatalf("flush pattern differs: untagged %+v, tagged %+v", stPlain, stTag)
	}
	if len(stPlain.Latencies) != len(stTag.Latencies) {
		t.Fatalf("latency counts differ: %d vs %d", len(stPlain.Latencies), len(stTag.Latencies))
	}
	for i := range stPlain.Latencies {
		if stPlain.Latencies[i] != stTag.Latencies[i] {
			t.Fatalf("op %d latency: tagged %d, untagged %d", i, stTag.Latencies[i], stPlain.Latencies[i])
		}
	}
	if stPlain.Tenants != nil {
		t.Fatalf("untagged stream grew a Tenants map: %+v", stPlain.Tenants)
	}
	if len(stTag.Tenants) != 2 {
		t.Fatalf("tagged stream has %d tenant entries, want 2", len(stTag.Tenants))
	}
	for v := 0; v < 64; v++ {
		if ccPlain.CompOf(v) != ccTag.CompOf(v) {
			t.Fatalf("component of %d differs: tagged %d, untagged %d", v, ccTag.CompOf(v), ccPlain.CompOf(v))
		}
	}
}

// TestIngestorAdmission pins the per-tenant front door: a TokenBucket
// throttles the noisy tenant's storm, every refusal is a typed Rejection
// (never a silent drop), rejected queries still occupy their positional
// slot in Results with Rejected set, and an AlwaysAdmit tenant sails
// through untouched.
func TestIngestorAdmission(t *testing.T) {
	cc := NewConnectivity(32, 128)
	ing := NewIngestor(IngestorConfig{
		Pipeline: cc,
		MaxAge:   4,
		Admission: map[int]AdmissionPolicy{
			1: AlwaysAdmit{},
			2: &TokenBucket{Rate: 0.5, Burst: 2}, // ~1 op per 2 rounds after the burst
		},
	})
	// Tenant 2 floods 10 writes at t=0: Burst admits 2, the rest reject.
	for i := 0; i < 10; i++ {
		ing.Push(Arrival{At: 0, Op: Ins(2*i, 2*i+1).ForTenant(2)})
	}
	// Tenant 1 reads at t=0 (admitted ops 0-1 inserted (0,1) and (2,3)).
	ing.Push(Arrival{At: 0, Op: QConnected(0, 1).ForTenant(1)})
	// A rejected tenant-2 query must still answer, positionally, as Rejected.
	ing.Push(Arrival{At: 0, Op: QConnected(2, 3).ForTenant(2)})
	// Later, the bucket has refilled: tenant 2 admits again.
	ing.Push(Arrival{At: 8, Op: QConnected(2, 3).ForTenant(2)})
	res, st := ing.Close()

	if st.Rejected != 9 {
		t.Fatalf("%d rejections, want 9 (8 flooded writes + 1 query)", st.Rejected)
	}
	if len(st.Rejections) != st.Rejected {
		t.Fatalf("%d typed Rejection records for %d rejections", len(st.Rejections), st.Rejected)
	}
	for _, r := range st.Rejections {
		if r.Tenant != 2 {
			t.Fatalf("rejection %+v charged to tenant %d, want 2", r, r.Tenant)
		}
	}
	// Results: query 0 = victim's QConnected(0,1) -> true (edge admitted);
	// query 1 = rejected tenant-2 read; query 2 = refilled tenant-2 read.
	if len(res) != 3 {
		t.Fatalf("%d answers, want 3", len(res))
	}
	if !res[0].Bool || res[0].Rejected {
		t.Fatalf("victim query answered %+v, want connected and admitted", res[0])
	}
	if !res[1].Rejected {
		t.Fatalf("throttled query answered %+v, want Rejected", res[1])
	}
	if res[2].Rejected || !res[2].Bool {
		t.Fatalf("post-refill query answered %+v, want admitted and connected", res[2])
	}
	// Per-tenant books: tenant 1 clean, tenant 2 charged its rejections.
	if ts := st.Tenants[1]; ts.Rejected != 0 || ts.Queries != 1 {
		t.Fatalf("victim tenant stats %+v, want 1 query, 0 rejections", ts)
	}
	if ts := st.Tenants[2]; ts.Rejected != 9 || ts.Updates != 2 || ts.Queries != 1 {
		t.Fatalf("noisy tenant stats %+v, want 2 admitted updates, 1 admitted query, 9 rejections", ts)
	}
}
