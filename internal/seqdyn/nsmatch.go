package seqdyn

import "math"

// NSMatch is a fully-dynamic maximal matching in the style of Neiman and
// Solomon [30], the algorithm §3 of the paper distributes: vertices are
// light (degree < 2√cap) or heavy; a heavy vertex that loses its mate
// either finds a free neighbor among its first ~√(2·cap) "alive" neighbors
// or steals a neighbor whose mate is light (such a neighbor exists by a
// degree-counting argument), and the light ex-mate rematches by a full scan
// of its short adjacency list. All updates take O(√cap) worst-case time.
//
// capEdges is the declared maximum number of edges alive at any time,
// matching the paper's convention that m is the maximum over the sequence.
type NSMatch struct {
	n        int
	heavyAt  int // degree threshold for "heavy": 2·⌈√cap⌉
	aliveCap int // alive-window size: ⌈√(2·cap)⌉
	adj      []map[int32]bool
	mate     []int32
	fallback int64 // full-scan fallbacks (the counting argument ~never needs them)
	Ops      Counter
}

// NewNSMatch returns an empty matching structure for n vertices and at
// most capEdges simultaneous edges.
func NewNSMatch(n, capEdges int) *NSMatch {
	if capEdges < 1 {
		capEdges = 1
	}
	m := &NSMatch{
		n:        n,
		heavyAt:  2 * int(math.Ceil(math.Sqrt(float64(capEdges)))),
		aliveCap: int(math.Ceil(math.Sqrt(2 * float64(capEdges)))),
		adj:      make([]map[int32]bool, n),
		mate:     make([]int32, n),
	}
	for i := range m.adj {
		m.adj[i] = make(map[int32]bool)
		m.mate[i] = -1
	}
	return m
}

// Mate returns v's partner, or -1 if free.
func (m *NSMatch) Mate(v int) int { return int(m.mate[v]) }

// MateTable returns a copy of the full mate table.
func (m *NSMatch) MateTable() []int {
	out := make([]int, m.n)
	for i, x := range m.mate {
		out[i] = int(x)
	}
	return out
}

// Fallbacks reports how many times the heavy-vertex surrogate search had to
// scan beyond the alive window (zero when the counting argument applies).
func (m *NSMatch) Fallbacks() int64 { return m.fallback }

func (m *NSMatch) heavy(v int) bool { return len(m.adj[v]) >= m.heavyAt }

func (m *NSMatch) match(a, b int) {
	m.mate[a] = int32(b)
	m.mate[b] = int32(a)
	m.Ops.Inc(1)
}

func (m *NSMatch) unmatch(a, b int) {
	m.mate[a] = -1
	m.mate[b] = -1
	m.Ops.Inc(1)
}

// Insert adds edge (u,v). Duplicates and self-loops are no-ops.
func (m *NSMatch) Insert(u, v int) {
	if u == v || m.adj[u][int32(v)] {
		return
	}
	m.adj[u][int32(v)] = true
	m.adj[v][int32(u)] = true
	m.Ops.Inc(1)
	uFree, vFree := m.mate[u] == -1, m.mate[v] == -1
	switch {
	case uFree && vFree:
		m.match(u, v)
	case uFree && m.heavy(u):
		// Restore the heavy-vertices-matched invariant by stealing.
		m.rematchHeavy(u)
	case vFree && m.heavy(v):
		m.rematchHeavy(v)
	}
}

// Delete removes edge (u,v). Unknown edges are no-ops.
func (m *NSMatch) Delete(u, v int) {
	if u == v || !m.adj[u][int32(v)] {
		return
	}
	delete(m.adj[u], int32(v))
	delete(m.adj[v], int32(u))
	m.Ops.Inc(1)
	if int(m.mate[u]) != v {
		return
	}
	m.unmatch(u, v)
	m.rematch(u)
	m.rematch(v)
}

// rematch restores maximality (and the heavy invariant) around a vertex
// that just became free.
func (m *NSMatch) rematch(z int) {
	if m.mate[z] != -1 {
		return // matched in the meantime (by the other endpoint's rematch)
	}
	if !m.heavy(z) {
		m.rematchLight(z)
		return
	}
	m.rematchHeavy(z)
}

// rematchLight scans the (short) full adjacency list for a free neighbor.
func (m *NSMatch) rematchLight(z int) {
	for w := range m.adj[z] {
		m.Ops.Inc(1)
		if m.mate[w] == -1 {
			m.match(z, int(w))
			return
		}
	}
}

// rematchHeavy scans the alive window for a free neighbor; failing that it
// steals a neighbor with a light mate and rematches the light ex-mate.
func (m *NSMatch) rematchHeavy(z int) {
	scanned := 0
	stealFrom := -1
	for w := range m.adj[z] {
		m.Ops.Inc(1)
		if m.mate[w] == -1 {
			m.match(z, int(w))
			return
		}
		if stealFrom == -1 && !m.heavy(int(m.mate[w])) {
			stealFrom = int(w)
		}
		scanned++
		if scanned >= m.aliveCap && stealFrom != -1 {
			break
		}
	}
	if stealFrom == -1 {
		// The counting argument guarantees a light-mated neighbor among
		// the alive window when parameters hold; at small scale we may
		// need the rest of the list (counted as a fallback).
		m.fallback++
		for w := range m.adj[z] {
			m.Ops.Inc(1)
			if !m.heavy(int(m.mate[w])) {
				stealFrom = int(w)
				break
			}
		}
	}
	if stealFrom == -1 {
		return // genuinely nothing to steal (e.g. all mates heavy); z stays free
	}
	lightMate := int(m.mate[stealFrom])
	m.unmatch(stealFrom, lightMate)
	m.match(z, stealFrom)
	m.rematchLight(lightMate)
}
