package graph

import (
	"container/heap"
	"math/rand"
)

// Arrival is one timestamped operation of an asynchronous op stream: Op
// arrives at virtual time At, measured in cluster rounds since the stream
// began. The streaming front door (the facade's Ingestor) consumes
// Arrivals in time order and reports each op's rounds-from-arrival-to-
// answer, so At is the zero point of that op's latency.
type Arrival struct {
	At int64
	Op Op
}

// ArrivalHeap is a min-heap of arrivals ordered by At, with ties broken
// by insertion order (earlier-pushed arrivals pop first), so a schedule
// with simultaneous arrivals replays deterministically in the order it
// was built. Build one with NewArrivalHeap, then Pop until Len is zero.
type ArrivalHeap struct {
	h       arrivalQueue
	nextSeq int
}

type arrivalEntry struct {
	a   Arrival
	seq int // insertion order, the tie-break
}

type arrivalQueue []arrivalEntry

func (q arrivalQueue) Len() int { return len(q) }
func (q arrivalQueue) Less(i, j int) bool {
	if q[i].a.At != q[j].a.At {
		return q[i].a.At < q[j].a.At
	}
	return q[i].seq < q[j].seq
}
func (q arrivalQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *arrivalQueue) Push(x interface{}) { *q = append(*q, x.(arrivalEntry)) }
func (q *arrivalQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// NewArrivalHeap builds a heap holding the given arrivals. The input
// slice is not modified.
func NewArrivalHeap(arrivals []Arrival) *ArrivalHeap {
	ah := &ArrivalHeap{h: make(arrivalQueue, len(arrivals)), nextSeq: len(arrivals)}
	for i, a := range arrivals {
		ah.h[i] = arrivalEntry{a: a, seq: i}
	}
	heap.Init(&ah.h)
	return ah
}

// Len returns the number of arrivals still queued.
func (ah *ArrivalHeap) Len() int { return len(ah.h) }

// Push queues one more arrival; on an At tie it pops after everything
// already queued.
func (ah *ArrivalHeap) Push(a Arrival) {
	heap.Push(&ah.h, arrivalEntry{a: a, seq: ah.nextSeq})
	ah.nextSeq++
}

// Pop removes and returns the earliest arrival. It panics on an empty
// heap.
func (ah *ArrivalHeap) Pop() Arrival {
	return heap.Pop(&ah.h).(arrivalEntry).a
}

// ArrivalsNow timestamps a whole op stream at time zero — the degenerate
// schedule under which streaming ingestion must coincide exactly with
// Pipeline.Apply on the full slice (the zero-inter-arrival special case).
func ArrivalsNow(ops []Op) []Arrival {
	arr := make([]Arrival, len(ops))
	for i, op := range ops {
		arr[i] = Arrival{At: 0, Op: op}
	}
	return arr
}

// PoissonArrivals timestamps an op stream with independent exponential
// inter-arrival gaps of the given mean (in rounds), rounded to whole
// rounds — the memoryless open-system workload. meanGap <= 0 degenerates
// to ArrivalsNow.
func PoissonArrivals(ops []Op, meanGap float64, rng *rand.Rand) []Arrival {
	if meanGap <= 0 {
		return ArrivalsNow(ops)
	}
	arr := make([]Arrival, len(ops))
	at := int64(0)
	for i, op := range ops {
		at += int64(rng.ExpFloat64() * meanGap)
		arr[i] = Arrival{At: at, Op: op}
	}
	return arr
}

// BurstyArrivals timestamps an op stream as back-to-back bursts: burst
// consecutive ops arrive withinGap rounds apart, then the next burst
// starts betweenGap rounds after the previous burst's last arrival — the
// storm-then-lull workload that separates tail latency from the amortized
// figure. burst < 1 is coerced to 1; negative gaps to 0.
func BurstyArrivals(ops []Op, burst int, withinGap, betweenGap int64) []Arrival {
	if burst < 1 {
		burst = 1
	}
	if withinGap < 0 {
		withinGap = 0
	}
	if betweenGap < 0 {
		betweenGap = 0
	}
	arr := make([]Arrival, len(ops))
	at := int64(0)
	for i, op := range ops {
		if i > 0 {
			if i%burst == 0 {
				at += betweenGap
			} else {
				at += withinGap
			}
		}
		arr[i] = Arrival{At: at, Op: op}
	}
	return arr
}

// FuzzArrivals deterministically decodes raw fuzzer bytes into an arrival
// schedule on n vertices — the front-end of the FuzzArrivalEquivalence
// harnesses. Four bytes per arrival: the first three decode the op
// exactly as FuzzOps documents (so the op streams of the mixed harnesses
// are reachable), and the fourth is the inter-arrival gap before the op,
// taken modulo 13 so random streams mix zero gaps (ops racing into one
// wave set) with real ones (ops straddling flushes). Ops dropped by the
// well-formed filter drop their gap bytes with them, keeping every
// surviving op paired with its own gap.
func FuzzArrivals(data []byte, n int, maxW Weight, qkinds []OpKind, wellFormed bool) []Arrival {
	ops, extras := fuzzOps(data, 4, n, maxW, qkinds, wellFormed)
	arr := make([]Arrival, len(ops))
	at := int64(0)
	for i, op := range ops {
		at += int64(extras[i][0] % 13)
		arr[i] = Arrival{At: at, Op: op}
	}
	return arr
}
