package mpc

// TenantCount is one tenant's op census over a mixed window or one of
// its waves: how many of the covered updates/queries belong to the
// tenant. Censuses are how the algorithm layers (which know op tenancy)
// feed the accounting layer (which only counts rounds).
type TenantCount struct {
	Tenant  int
	Updates int
	Queries int
}

// TenantStats is one tenant's slice of a mixed window. Ops/Updates/
// Queries count the tenant's ops; Rounds is the tenant's share of the
// window's rounds, attributed wave by wave: a wave's rounds divide
// among the tenants with ops in it proportional to their op counts, and
// rounds outside any declared wave (scheduling, drains, chained serial
// runs) divide over the whole window's census the same way. Summed over
// tenants, Rounds equals the window total — attribution splits rounds,
// never mints them.
type TenantStats struct {
	Ops     int
	Updates int
	Queries int
	Rounds  float64
}

// TenantCensus builds a census over n ops described by info (tenant id
// and read/write side per index), grouping tenants in first-seen order
// so the result is deterministic for a given op order. The algorithm
// layers use it for both window and wave censuses.
func TenantCensus(n int, info func(i int) (tenant int, query bool)) []TenantCount {
	var census []TenantCount
	slot := make(map[int]int, 2)
	for i := 0; i < n; i++ {
		t, q := info(i)
		j, ok := slot[t]
		if !ok {
			j = len(census)
			slot[t] = j
			census = append(census, TenantCount{Tenant: t})
		}
		if q {
			census[j].Queries++
		} else {
			census[j].Updates++
		}
	}
	return census
}

// BeginMixedTenants seeds the open mixed window's per-tenant breakdown
// from the window census. Windows without a census (the single-tenant
// default) never allocate the map, keeping MixedStats bit-identical to
// pre-tenancy behavior.
func (c *Cluster) BeginMixedTenants(census []TenantCount) {
	m := c.stats.currentMixed
	if m == nil {
		panic("mpc: BeginMixedTenants outside a mixed window")
	}
	m.Tenants = make(map[int]TenantStats, len(census))
	for _, tc := range census {
		ts := m.Tenants[tc.Tenant]
		ts.Ops += tc.Updates + tc.Queries
		ts.Updates += tc.Updates
		ts.Queries += tc.Queries
		m.Tenants[tc.Tenant] = ts
	}
}

// BeginMixedWaveTenants is BeginMixedWave plus the wave's tenant
// census; EndMixedWave will split the wave's rounds across the census
// proportional to op counts. A nil census (or a window without
// BeginMixedTenants) attributes nothing — BeginMixedWave delegates
// here.
func (c *Cluster) BeginMixedWaveTenants(updates, queries int, census []TenantCount) {
	if c.stats.currentMixed == nil {
		panic("mpc: BeginMixedWave outside a mixed window")
	}
	if c.stats.currentWave != nil {
		panic("mpc: BeginMixedWave inside an open wave (close it with EndMixedWave first)")
	}
	c.stats.currentWave = &WaveStats{Updates: updates, Queries: queries}
	c.stats.waveTenants = append(c.stats.waveTenants[:0], census...)
}

// shareWaveRounds folds a closed wave's rounds into the window's
// per-tenant breakdown by wave share.
func (s *Stats) shareWaveRounds(m *MixedStats, w WaveStats) {
	census := s.waveTenants
	s.waveTenants = s.waveTenants[:0]
	if m.Tenants == nil || len(census) == 0 || w.Rounds == 0 {
		return
	}
	tot := 0
	for _, tc := range census {
		tot += tc.Updates + tc.Queries
	}
	if tot == 0 {
		return
	}
	for _, tc := range census {
		ts := m.Tenants[tc.Tenant]
		ts.Rounds += float64(w.Rounds) * float64(tc.Updates+tc.Queries) / float64(tot)
		m.Tenants[tc.Tenant] = ts
	}
}

// shareLeftoverRounds attributes the window rounds no declared wave
// covered (scheduling, drain, chained serial segments) across the
// window census, keeping the per-tenant Rounds a partition of the
// window total.
func (s *Stats) shareLeftoverRounds(m *MixedStats) {
	if m.Tenants == nil || m.Ops == 0 {
		return
	}
	waveRounds := 0
	for _, w := range m.Waves {
		waveRounds += w.Rounds
	}
	leftover := m.Rounds() - waveRounds
	if leftover <= 0 {
		return
	}
	for t, ts := range m.Tenants {
		ts.Rounds += float64(leftover) * float64(ts.Ops) / float64(m.Ops)
		m.Tenants[t] = ts
	}
}
