// Quickstart: maintain connected components of a dynamic graph on a
// simulated DMPC cluster in ~30 lines, and read off the paper's O(1)
// rounds-per-update guarantee from the accounting.
package main

import (
	"fmt"

	"dmpc"
)

func main() {
	// A dynamic connectivity structure on 100 vertices.
	cc := dmpc.NewConnectivity(100, 400)

	// Build two chains: 0-1-...-49 and 50-...-99.
	for i := 0; i < 49; i++ {
		cc.Insert(i, i+1)
		cc.Insert(50+i, 50+i+1)
	}
	fmt.Println("0 connected to 99?", cc.Connected(0, 99)) // false

	// Bridge them; every update costs O(1) rounds.
	st := cc.Insert(49, 50)
	fmt.Printf("bridge insert: %d rounds, %d machines, %d words in the busiest round\n",
		st.Rounds, st.MaxActive, st.MaxWords)
	fmt.Println("0 connected to 99?", cc.Connected(0, 99)) // true

	// Cut the bridge again: the Euler-tour split finds no replacement.
	st = cc.Delete(49, 50)
	fmt.Printf("bridge delete: %d rounds, %d machines, %d words\n",
		st.Rounds, st.MaxActive, st.MaxWords)
	fmt.Println("0 connected to 99?", cc.Connected(0, 99)) // false

	r, a, w := meanStats(cc.Cluster())
	fmt.Printf("whole run: %.1f rounds/update, %.1f machines/round, %.1f words/round on average\n", r, a, w)
}

func meanStats(cl *dmpc.Cluster) (rounds, active, words float64) {
	return cl.Stats().MeanUpdate()
}
