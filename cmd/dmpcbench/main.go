// Command dmpcbench reproduces Table 1 of the paper in tabular form: for
// every dynamic DMPC algorithm it measures, over a random update stream,
// the three model complexity measures — rounds per update, active
// machines per round and communicated words per round (mean and worst
// case) — and prints them alongside the bound the paper claims. With
// -sweep it additionally reports how the measures scale with the input
// size N, exposing the O(√N) communication shape.
//
// With -batch k the same stream is additionally applied through each
// algorithm's ApplyBatch in chunks of k, reporting rounds per batch and
// the amortized rounds per update next to the k=1 baseline — the
// batch-dynamic headline metric. With -json the whole measurement is
// emitted as a machine-readable JSON document (see benchReport) so the
// perf trajectory can be committed as BENCH_NNNN.json snapshots and
// diffed across PRs.
//
// With -shard each algorithm's wave-scheduled ApplyBatch is compared head
// to head against its retained serial baseline at k ∈ {8, 64, 256}: dyncon
// against the PR 1 greedy-prefix packer (ApplyBatchPrefix), dmm against
// the PR 1 coordinator-chaining path (ApplyBatchChained), with wave-width
// histograms showing where the round savings come from. With -autobatch
// the dmpc.AutoBatcher adaptive batch-sizing driver runs the stream and
// reports the chunk-size trajectory its knee search took.
//
// With -queries Q a mixed read/write workload is measured on top: update
// batches are interleaved with protocol query batches
// (ConnectedBatch/MateOfBatch) holding the read fraction at -readfrac,
// at query-batch sizes k ∈ {1, 8, 64}, and the amortized rounds per
// query are reported alongside that run's rounds per update — the read
// path's counterpart of the batch-dynamic headline.
//
// With -treedp the tree-DP workload is measured: mixed link/cut/weight/
// DP-query streams (SubtreeSum, PathSum, TreeTop) from a uniform and a
// preferential-attachment power-law generator, chunked at k ∈ {8, 64,
// 256} on both backends, reporting rounds/op, the amortized DP rounds
// per query and cross-backend answer equality (see BENCH_0010.json).
//
// With -baseline FILE the run's amortized batch rounds are compared
// against a committed BENCH_*.json snapshot and the command exits nonzero
// on a regression beyond -tolerance (default 10%) — the CI bench smoke.
//
// With -cpuprofile FILE / -memprofile FILE the measured section (every
// table, from the first measurement to the last) is wrapped in a pprof
// capture: -cpuprofile streams the CPU profile of the measurements
// themselves, -memprofile snapshots the heap (after a forced collection)
// the moment the measurements finish. Construction and report
// marshalling stay outside both, so the profiles answer "where do the
// benchmarked ops spend their time/memory" — the standing profiling
// hook for perf PRs.
//
// Usage:
//
//	dmpcbench [-n 128] [-updates 500] [-seed 1] [-sweep] [-batch k] [-shard] [-autobatch] [-queries Q] [-readfrac f] [-treedp] [-wallclock] [-wallmax n] [-cpuprofile FILE] [-memprofile FILE] [-json] [-baseline FILE] [-tolerance f]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"text/tabwriter"
	"time"

	"dmpc"
	"dmpc/internal/core/amm"
	"dmpc/internal/core/dmm"
	"dmpc/internal/core/dyncon"
	"dmpc/internal/core/reduction"
	"dmpc/internal/graph"
	"dmpc/internal/mpc"
	"dmpc/internal/seqdyn"
	"dmpc/internal/staticmpc"
)

type row struct {
	name       string
	claim      string
	meanRounds float64
	maxRounds  int
	maxActive  int
	meanWords  float64
	maxWords   int
}

type updater func(up graph.Update) mpc.UpdateStats

func measure(name, claim string, updates []graph.Update, f updater) row {
	r := row{name: name, claim: claim}
	var sumRounds, sumWords, rounds int
	for _, up := range updates {
		st := f(up)
		sumRounds += st.Rounds
		rounds += st.Rounds
		sumWords += st.SumWords
		if st.Rounds > r.maxRounds {
			r.maxRounds = st.Rounds
		}
		if st.MaxActive > r.maxActive {
			r.maxActive = st.MaxActive
		}
		if st.MaxWords > r.maxWords {
			r.maxWords = st.MaxWords
		}
	}
	r.meanRounds = float64(sumRounds) / float64(len(updates))
	if rounds > 0 {
		r.meanWords = float64(sumWords) / float64(rounds)
	}
	return r
}

func table(n, nUpdates int, seed int64) []row {
	capEdges := 6 * n
	mk := func(s int64) []graph.Update {
		return graph.RandomStream(n, nUpdates, 0.55, 50, rand.New(rand.NewSource(seed+s)))
	}
	var rows []row

	m1 := newDMM(dmm.Config{N: n, CapEdges: capEdges})
	rows = append(rows, measure("Maximal matching (§3)", "O(1) r, O(1) mach, O(√N) words", mk(1),
		func(up graph.Update) mpc.UpdateStats {
			if up.Op == graph.Insert {
				return m1.Insert(up.U, up.V)
			}
			return m1.Delete(up.U, up.V)
		}))

	m2 := newDMM(dmm.Config{N: n, CapEdges: capEdges, ThreeHalves: true})
	rows = append(rows, measure("3/2-approx matching (§4)", "O(1) r, O(n/√N) mach, O(√N) words", mk(2),
		func(up graph.Update) mpc.UpdateStats {
			if up.Op == graph.Insert {
				return m2.Insert(up.U, up.V)
			}
			return m2.Delete(up.U, up.V)
		}))

	m3 := newAMM(amm.Config{N: n, Seed: seed})
	rows = append(rows, measure("(2+ε)-approx matching (§6)", "O(1) r, Õ(1) mach, Õ(1) words", mk(3),
		func(up graph.Update) mpc.UpdateStats {
			if up.Op == graph.Insert {
				return m3.Insert(up.U, up.V)
			}
			return m3.Delete(up.U, up.V)
		}))

	d4 := newDyncon(dyncon.Config{N: n, Mode: dyncon.CC, ExpectedEdges: capEdges})
	rows = append(rows, measure("Connected comps (§5)", "O(1) r, O(√N) mach, O(√N) words", mk(4),
		func(up graph.Update) mpc.UpdateStats {
			if up.Op == graph.Insert {
				return d4.Insert(up.U, up.V, 1)
			}
			return d4.Delete(up.U, up.V)
		}))

	d5 := newDyncon(dyncon.Config{N: n, Mode: dyncon.MST, Eps: 0.25, ExpectedEdges: capEdges})
	rows = append(rows, measure("(1+ε)-MST (§5.1)", "O(1) r, O(√N) mach, O(√N) words", mk(5),
		func(up graph.Update) mpc.UpdateStats {
			if up.Op == graph.Insert {
				return d5.Insert(up.U, up.V, up.W)
			}
			return d5.Delete(up.U, up.V)
		}))

	simH := reduction.NewSim(8, 1<<18)
	wh := reduction.NewWrapped(simH, reduction.HDTTarget{H: seqdyn.NewHDT(n)})
	rows = append(rows, measure("Reduction: conn comps (§7+HDT)", "Õ(1) r amort., O(1) mach, O(1) words", mk(6), wh.Update))

	simM := reduction.NewSim(8, 1<<18)
	wm := reduction.NewWrapped(simM, reduction.NSMatchTarget{M: seqdyn.NewNSMatch(n, capEdges)})
	rows = append(rows, measure("Reduction: matching (§7+NS)", "O(√m) r wc, O(1) mach, O(1) words", mk(7), wm.Update))

	simF := reduction.NewSim(8, 1<<18)
	wf := reduction.NewWrapped(simF, reduction.MSFTarget{F: seqdyn.NewDynMSF(n)})
	rows = append(rows, measure("Reduction: MST (§7+DynMSF)", "Õ(1) r amort., O(1) mach, O(1) words", mk(8), wf.Update))

	return rows
}

// batchRow is one algorithm's batch-pipeline measurement at a given k.
type batchRow struct {
	name       string
	k          int
	batches    int
	meanRounds float64 // rounds per batch
	amortized  float64 // rounds per update
	maxActive  int
	meanWords  float64 // words per round
}

type batchRunner struct {
	name string
	mk   func() func(graph.Batch) mpc.BatchStats
}

// batchRunners builds one fresh instance per measurement so successive k
// values see identical starting states.
func batchRunners(n, capEdges int, seed int64) []batchRunner {
	return []batchRunner{
		{"Maximal matching (§3)", func() func(graph.Batch) mpc.BatchStats {
			m := newDMM(dmm.Config{N: n, CapEdges: capEdges})
			return m.ApplyBatch
		}},
		{"3/2-approx matching (§4)", func() func(graph.Batch) mpc.BatchStats {
			m := newDMM(dmm.Config{N: n, CapEdges: capEdges, ThreeHalves: true})
			return m.ApplyBatch
		}},
		{"(2+ε)-approx matching (§6)", func() func(graph.Batch) mpc.BatchStats {
			m := newAMM(amm.Config{N: n, Seed: seed})
			return m.ApplyBatch
		}},
		{"Connected comps (§5)", func() func(graph.Batch) mpc.BatchStats {
			d := newDyncon(dyncon.Config{N: n, Mode: dyncon.CC, ExpectedEdges: capEdges})
			return d.ApplyBatch
		}},
		{"(1+ε)-MST (§5.1)", func() func(graph.Batch) mpc.BatchStats {
			d := newDyncon(dyncon.Config{N: n, Mode: dyncon.MST, Eps: 0.25, ExpectedEdges: capEdges})
			return d.ApplyBatch
		}},
		{"Reduction: conn comps (§7+HDT)", func() func(graph.Batch) mpc.BatchStats {
			sim := reduction.NewSim(8, 1<<18)
			w := reduction.NewWrapped(sim, reduction.HDTTarget{H: seqdyn.NewHDT(n)})
			return w.ApplyBatch
		}},
	}
}

func measureBatch(name string, updates []graph.Update, k int, run func(graph.Batch) mpc.BatchStats) batchRow {
	r := batchRow{name: name, k: k}
	var rounds, words, upd int
	for _, b := range graph.Chunk(updates, k) {
		st := run(b)
		r.batches++
		rounds += st.Rounds
		words += st.SumWords
		upd += st.Updates
		if st.MaxActive > r.maxActive {
			r.maxActive = st.MaxActive
		}
	}
	if r.batches > 0 {
		r.meanRounds = float64(rounds) / float64(r.batches)
	}
	if upd > 0 {
		r.amortized = float64(rounds) / float64(upd)
	}
	if rounds > 0 {
		r.meanWords = float64(words) / float64(rounds)
	}
	return r
}

// batchTable measures every algorithm at k=1 and k=batch over the same
// stream (fresh instances per k).
func batchTable(n, nUpdates, batch int, seed int64) []batchRow {
	capEdges := 6 * n
	stream := graph.RandomStream(n, nUpdates, 0.55, 50, rand.New(rand.NewSource(seed+100)))
	ks := []int{1}
	if batch > 1 {
		ks = append(ks, batch)
	}
	var rows []batchRow
	for _, br := range batchRunners(n, capEdges, seed) {
		for _, k := range ks {
			rows = append(rows, measureBatch(br.name, stream, k, br.mk()))
		}
	}
	return rows
}

// --- wave scheduler vs per-algorithm serial baseline ----------------------

// shardRow compares an algorithm's wave-scheduled ApplyBatch against its
// retained serial baseline at one batch size, over the same stream (fresh
// instances each): dyncon against the PR 1 greedy-prefix packer
// (ApplyBatchPrefix), dmm against the PR 1 coordinator-chaining path
// (ApplyBatchChained). The wave-width histograms expose *why* the
// amortized rounds drop: the scheduler packs wider waves out of the same
// batch (dmm's chained serial segments carry no wave attribution, so its
// histogram shows the genuinely concurrent share).
type shardRow struct {
	Name           string   `json:"name"`
	Baseline       string   `json:"baseline"`
	K              int      `json:"k"`
	BaseAmortized  float64  `json:"baseline_rounds_per_update"`
	ShardAmortized float64  `json:"sharded_rounds_per_update"`
	Ratio          float64  `json:"sharded_over_baseline"`
	BaseWaves      int      `json:"baseline_waves"`
	ShardWaves     int      `json:"sharded_waves"`
	BaseWaveHist   [][2]int `json:"baseline_wave_width_hist"` // [width, count] ascending
	ShardWaveHist  [][2]int `json:"sharded_wave_width_hist"`  // [width, count] ascending
}

// waveHist folds the per-wave attribution of a run's batches into a
// [width, count] histogram sorted by width.
func waveHist(batches []mpc.BatchStats) (hist [][2]int, waves int) {
	counts := map[int]int{}
	for _, b := range batches {
		for _, w := range b.Waves {
			counts[w.Updates]++
			waves++
		}
	}
	widths := make([]int, 0, len(counts))
	for w := range counts {
		widths = append(widths, w)
	}
	sort.Ints(widths)
	for _, w := range widths {
		hist = append(hist, [2]int{w, counts[w]})
	}
	return hist, waves
}

// shardRunner is one algorithm's pair of batch paths for the comparison.
type shardRunner struct {
	name     string
	baseline string
	mk       func() (base func(graph.Batch) mpc.BatchStats, wave func(graph.Batch) mpc.BatchStats)
}

func shardRunners(n, capEdges int) []shardRunner {
	return []shardRunner{
		{"Connected comps (§5)", "greedy-prefix packer", func() (func(graph.Batch) mpc.BatchStats, func(graph.Batch) mpc.BatchStats) {
			a := newDyncon(dyncon.Config{N: n, Mode: dyncon.CC, ExpectedEdges: capEdges})
			b := newDyncon(dyncon.Config{N: n, Mode: dyncon.CC, ExpectedEdges: capEdges})
			return a.ApplyBatchPrefix, b.ApplyBatch
		}},
		{"(1+ε)-MST (§5.1)", "greedy-prefix packer", func() (func(graph.Batch) mpc.BatchStats, func(graph.Batch) mpc.BatchStats) {
			a := newDyncon(dyncon.Config{N: n, Mode: dyncon.MST, Eps: 0.25, ExpectedEdges: capEdges})
			b := newDyncon(dyncon.Config{N: n, Mode: dyncon.MST, Eps: 0.25, ExpectedEdges: capEdges})
			return a.ApplyBatchPrefix, b.ApplyBatch
		}},
		{"Maximal matching (§3)", "coordinator chaining", func() (func(graph.Batch) mpc.BatchStats, func(graph.Batch) mpc.BatchStats) {
			a := newDMM(dmm.Config{N: n, CapEdges: capEdges})
			b := newDMM(dmm.Config{N: n, CapEdges: capEdges})
			return a.ApplyBatchChained, b.ApplyBatch
		}},
	}
}

func shardTable(n, nUpdates int, seed int64) []shardRow {
	capEdges := 6 * n
	stream := graph.RandomStream(n, nUpdates, 0.55, 50, rand.New(rand.NewSource(seed+100)))
	// Chunk clamps k to the stream length, so any k >= len(stream) measures
	// the identical one-chunk run; report it once, labeled with the
	// effective k, instead of emitting duplicate rows under distinct labels.
	ks := make([]int, 0, 3)
	for _, k := range []int{8, 64, 256} {
		if k > len(stream) {
			k = len(stream)
		}
		if len(ks) > 0 && ks[len(ks)-1] == k {
			continue
		}
		ks = append(ks, k)
	}
	var rows []shardRow
	for _, sr := range shardRunners(n, capEdges) {
		for _, k := range ks {
			run := func(apply func(graph.Batch) mpc.BatchStats) (float64, []mpc.BatchStats) {
				var rounds, upd int
				var batches []mpc.BatchStats
				for _, b := range graph.Chunk(stream, k) {
					st := apply(b)
					rounds += st.Rounds
					upd += st.Updates
					batches = append(batches, st)
				}
				return float64(rounds) / float64(upd), batches
			}
			base, wave := sr.mk()
			pa, pb := run(base)
			sa, sb := run(wave)
			row := shardRow{Name: sr.name, Baseline: sr.baseline, K: k,
				BaseAmortized: pa, ShardAmortized: sa, Ratio: sa / pa}
			row.BaseWaveHist, row.BaseWaves = waveHist(pb)
			row.ShardWaveHist, row.ShardWaves = waveHist(sb)
			rows = append(rows, row)
		}
	}
	return rows
}

func printShardTable(rows []shardRow) {
	fmt.Println("\nShared wave scheduler vs per-algorithm serial baseline (dyncon ApplyBatchPrefix, dmm ApplyBatchChained):")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Algorithm\tbaseline\tk\tbase r/upd\tsharded r/upd\tratio\tbase waves\tsharded waves\twidest wave\n")
	for _, r := range rows {
		widest := 0
		if len(r.ShardWaveHist) > 0 {
			widest = r.ShardWaveHist[len(r.ShardWaveHist)-1][0]
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%.2f\t%.2f\t%.2f\t%d\t%d\t%d\n",
			r.Name, r.Baseline, r.K, r.BaseAmortized, r.ShardAmortized, r.Ratio, r.BaseWaves, r.ShardWaves, widest)
	}
	w.Flush()
	fmt.Println("(one early conflict caps a prefix wave and chaining runs every case analysis")
	fmt.Println(" back to back; the shared scheduler packs independent updates from the whole")
	fmt.Println(" batch into concurrent waves and budget-packs the orchestrator machines)")
}

// --- adaptive batch sizing ------------------------------------------------

// autoRow is one algorithm's AutoBatcher run: the k trajectory the
// knee-search took and the overall amortized rounds it landed at.
type autoRow struct {
	Name      string  `json:"name"`
	Ks        []int   `json:"k_trajectory"`
	FinalK    int     `json:"final_k"`
	Amortized float64 `json:"amortized_rounds_per_update"`
}

func autoTable(n, nUpdates int, seed int64) []autoRow {
	capEdges := 6 * n
	stream := graph.RandomStream(n, nUpdates, 0.55, 50, rand.New(rand.NewSource(seed+100)))
	runners := []struct {
		name string
		mk   func() (func(dmpc.Batch) dmpc.BatchStats, *mpc.Cluster)
	}{
		{"Connected comps (§5)", func() (func(dmpc.Batch) dmpc.BatchStats, *mpc.Cluster) {
			d := newDyncon(dyncon.Config{N: n, Mode: dyncon.CC, ExpectedEdges: capEdges})
			return d.ApplyBatch, d.Cluster()
		}},
		{"Maximal matching (§3)", func() (func(dmpc.Batch) dmpc.BatchStats, *mpc.Cluster) {
			m := newDMM(dmm.Config{N: n, CapEdges: capEdges})
			return m.ApplyBatch, m.Cluster()
		}},
	}
	var rows []autoRow
	for _, rn := range runners {
		apply, cl := rn.mk()
		ab := dmpc.NewAutoBatcher(dmpc.AutoBatcherConfig{
			Apply:    apply,
			CapWords: cl.Machines() * cl.MemWords(),
			StartK:   8,
			MaxK:     256,
		})
		ab.Run(stream)
		var rounds, upd int
		for _, st := range ab.History() {
			rounds += st.Rounds
			upd += st.Updates
		}
		rows = append(rows, autoRow{
			Name: rn.name, Ks: ab.Ks(), FinalK: ab.K(),
			Amortized: float64(rounds) / float64(upd),
		})
	}
	return rows
}

func printAutoTable(rows []autoRow) {
	fmt.Println("\nAdaptive batch sizing (dmpc.AutoBatcher knee search):")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Algorithm\tk trajectory\tfinal k\tamortized rounds/upd\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%v\t%d\t%.2f\n", r.Name, r.Ks, r.FinalK, r.Amortized)
	}
	w.Flush()
	fmt.Println("(after a warmup the driver doubles k while probe windows stay within the")
	fmt.Println(" noise margin of the best seen, settles at the knee on two bad windows, and")
	fmt.Println(" halves k whenever the cluster-wide word budget is exceeded)")
}

// --- unified op pipeline: in-wave reads vs quiescence --------------------

// mixedRow compares the unified op pipeline (ApplyOps: reads sequenced
// into the update waves) against the quiescence baseline on the same
// mixed op stream, chunked at k ops. The baseline answers the *same*
// queries at the *same* stream positions — the only way to do that
// without in-wave scheduling is to split each chunk at its read runs:
// apply every maximal update run through ApplyBatch, then quiesce and
// answer the following read run through the batched query path. (Moving
// all reads to the chunk boundary would be cheaper but answers different
// queries — chunk-end state instead of stream-position state — so it is
// not a baseline for the same workload.) Both paths therefore return
// bit-identical Results; only the round bill differs. FreeRides counts
// the reads that shared an update-bearing wave — the reads whose rounds
// cost nothing.
type mixedRow struct {
	Name            string  `json:"name"`
	K               int     `json:"k"`
	Ops             int     `json:"ops"`
	Updates         int     `json:"updates"`
	Queries         int     `json:"queries"`
	InwavePerOp     float64 `json:"inwave_rounds_per_op"`
	QuiescencePerOp float64 `json:"quiescence_rounds_per_op"`
	Ratio           float64 `json:"inwave_over_quiescence"`
	QueryHalf       int     `json:"inwave_query_half_rounds"`
	FreeRides       int     `json:"reads_riding_update_waves"`
}

// mixedRunner builds fresh instances of one algorithm's two mixed paths:
// the unified pipeline, and the split quiescence path (batch updates,
// then batched reads).
type mixedRunner struct {
	name    string
	mkQuery func(rng *rand.Rand) graph.Op
	mk      func() (inwave func([]graph.Op) (graph.Results, mpc.MixedStats), inStats func() *mpc.Stats,
		base func(graph.Batch) mpc.BatchStats, baseReads func([]graph.Op), baseStats func() *mpc.Stats)
}

func mixedRunners(n, capEdges int) []mixedRunner {
	// amm is absent on purpose: its reads require settle-and-cycle
	// barriers (no bit-equivalence contract), so it has no in-wave read
	// path to compare — its Pipeline front door exists for API uniformity.
	return []mixedRunner{
		{"Connected comps (§5)",
			func(rng *rand.Rand) graph.Op { return graph.OpQConnected(rng.Intn(n), rng.Intn(n)) },
			func() (func([]graph.Op) (graph.Results, mpc.MixedStats), func() *mpc.Stats, func(graph.Batch) mpc.BatchStats, func([]graph.Op), func() *mpc.Stats) {
				a := newDyncon(dyncon.Config{N: n, Mode: dyncon.CC, ExpectedEdges: capEdges})
				b := newDyncon(dyncon.Config{N: n, Mode: dyncon.CC, ExpectedEdges: capEdges})
				return a.ApplyOps, func() *mpc.Stats { return a.Cluster().Stats() },
					b.ApplyBatch, dynconReads(b), func() *mpc.Stats { return b.Cluster().Stats() }
			}},
		{"(1+ε)-MST (§5.1)",
			func(rng *rand.Rand) graph.Op { return graph.OpQConnected(rng.Intn(n), rng.Intn(n)) },
			func() (func([]graph.Op) (graph.Results, mpc.MixedStats), func() *mpc.Stats, func(graph.Batch) mpc.BatchStats, func([]graph.Op), func() *mpc.Stats) {
				a := newDyncon(dyncon.Config{N: n, Mode: dyncon.MST, Eps: 0.25, ExpectedEdges: capEdges})
				b := newDyncon(dyncon.Config{N: n, Mode: dyncon.MST, Eps: 0.25, ExpectedEdges: capEdges})
				return a.ApplyOps, func() *mpc.Stats { return a.Cluster().Stats() },
					b.ApplyBatch, dynconReads(b), func() *mpc.Stats { return b.Cluster().Stats() }
			}},
		{"Maximal matching (§3)",
			func(rng *rand.Rand) graph.Op { return graph.OpQMateOf(rng.Intn(n)) },
			func() (func([]graph.Op) (graph.Results, mpc.MixedStats), func() *mpc.Stats, func(graph.Batch) mpc.BatchStats, func([]graph.Op), func() *mpc.Stats) {
				a := newDMM(dmm.Config{N: n, CapEdges: capEdges})
				b := newDMM(dmm.Config{N: n, CapEdges: capEdges})
				baseReads := func(qs []graph.Op) {
					vs := make([]int, len(qs))
					for i, q := range qs {
						vs[i] = q.U
					}
					b.MateOfBatch(vs)
				}
				return a.ApplyOps, func() *mpc.Stats { return a.Cluster().Stats() },
					b.ApplyBatch, baseReads, func() *mpc.Stats { return b.Cluster().Stats() }
			}},
	}
}

// dynconReads answers a chunk's reads through dyncon's batched quiescence
// query path.
func dynconReads(d *dyncon.D) func([]graph.Op) {
	return func(qs []graph.Op) {
		pairs := make([]graph.Pair, len(qs))
		for i, q := range qs {
			pairs[i] = graph.Pair{U: q.U, V: q.V}
		}
		d.ConnectedBatch(pairs)
	}
}

// measureMixedPipeline runs one op stream through both paths at chunk
// size k and reports the amortized rounds per op of each.
func measureMixedPipeline(mr mixedRunner, ops []graph.Op, k int) mixedRow {
	inwave, inStats, base, baseReads, baseStats := mr.mk()
	row := mixedRow{Name: mr.name, K: k, Ops: len(ops)}
	row.Updates, row.Queries = graph.CountOps(ops)

	for _, chunk := range graph.SplitOps(ops, k) {
		inwave(chunk)
	}
	var inRounds int
	for _, m := range inStats().Mixed() {
		inRounds += m.Rounds()
		row.QueryHalf += m.Queries.Rounds
		for _, w := range m.Waves {
			if w.Updates > 0 {
				row.FreeRides += w.Queries
			}
		}
	}
	row.InwavePerOp = float64(inRounds) / float64(len(ops))

	for _, chunk := range graph.SplitOps(ops, k) {
		// Position-preserving quiescence split: maximal update runs batch,
		// every read run waits for quiescence.
		for i := 0; i < len(chunk); {
			j := i
			if chunk[i].IsQuery() {
				for j < len(chunk) && chunk[j].IsQuery() {
					j++
				}
				baseReads(chunk[i:j])
			} else {
				for j < len(chunk) && !chunk[j].IsQuery() {
					j++
				}
				b := make(graph.Batch, 0, j-i)
				for _, op := range chunk[i:j] {
					b = append(b, op.Update())
				}
				base(b)
			}
			i = j
		}
	}
	var baseRounds int
	for _, b := range baseStats().Batches() {
		baseRounds += b.Rounds
	}
	for _, q := range baseStats().Queries() {
		baseRounds += q.Rounds
	}
	row.QuiescencePerOp = float64(baseRounds) / float64(len(ops))
	row.Ratio = row.InwavePerOp / row.QuiescencePerOp
	return row
}

// mixedTable measures the unified pipeline against the quiescence split
// at op-chunk sizes k ∈ {8, 64, 256} over one mixed stream per algorithm.
func mixedTable(n, nUpdates int, readfrac float64, seed int64) []mixedRow {
	capEdges := 6 * n
	stream := graph.RandomStream(n, nUpdates, 0.55, 50, rand.New(rand.NewSource(seed+100)))
	var rows []mixedRow
	for _, mr := range mixedRunners(n, capEdges) {
		ops := graph.MixedStream(stream, readfrac, mr.mkQuery, rand.New(rand.NewSource(seed+200)))
		ks := make([]int, 0, 3)
		for _, k := range []int{8, 64, 256} {
			if k > len(ops) {
				k = len(ops)
			}
			if len(ks) > 0 && ks[len(ks)-1] == k {
				continue
			}
			ks = append(ks, k)
		}
		for _, k := range ks {
			rows = append(rows, measureMixedPipeline(mr, ops, k))
		}
	}
	return rows
}

func printMixedTable(rows []mixedRow, readfrac float64) {
	fmt.Printf("\nUnified op pipeline: in-wave reads vs quiescence split (readfrac %.2f):\n", readfrac)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Algorithm\tk\tops\tinwave r/op\tquiescence r/op\tratio\tquery-half rounds\tfree-riding reads\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.3f\t%.3f\t%.2f\t%d\t%d/%d\n",
			r.Name, r.K, r.Ops, r.InwavePerOp, r.QuiescencePerOp, r.Ratio, r.QueryHalf, r.FreeRides, r.Queries)
	}
	w.Flush()
	fmt.Println("(both paths answer the same reads at the same stream positions; the baseline")
	fmt.Println(" must quiesce at every read run, while the unified pipeline precedence-colors")
	fmt.Println(" the reads into the update waves — a read sharing an update's wave costs zero")
	fmt.Println(" extra rounds, which is where the ratio comes from)")
}

// --- mixed read/write workload -------------------------------------------

// queryRow is one algorithm's mixed-workload measurement at one query
// batch size.
type queryRow struct {
	name           string
	k              int     // query batch size
	queries        int     // protocol queries issued
	windows        int     // query windows (batches) recorded
	roundsPerQuery float64 // amortized over all query windows
	updAmortized   float64 // rounds/update of the interleaved update batches
	maxActive      int     // wc machines over the query windows
	meanWords      float64 // words/round over the query windows
}

// queryRunner builds a fresh algorithm instance exposing its batched write
// and read paths plus its cluster stats.
type queryRunner struct {
	name string
	mk   func() (apply func(graph.Batch) mpc.BatchStats, query func(k int, rng *rand.Rand), stats func() *mpc.Stats)
}

func queryRunners(n, capEdges int, seed int64) []queryRunner {
	mates := func(k int, rng *rand.Rand) []int { return graph.RandomVerts(n, k, rng) }
	return []queryRunner{
		{"Connected comps (§5)", func() (func(graph.Batch) mpc.BatchStats, func(int, *rand.Rand), func() *mpc.Stats) {
			d := newDyncon(dyncon.Config{N: n, Mode: dyncon.CC, ExpectedEdges: capEdges})
			return d.ApplyBatch, func(k int, rng *rand.Rand) { d.ConnectedBatch(graph.RandomPairs(n, k, rng)) }, func() *mpc.Stats { return d.Cluster().Stats() }
		}},
		{"(1+ε)-MST (§5.1)", func() (func(graph.Batch) mpc.BatchStats, func(int, *rand.Rand), func() *mpc.Stats) {
			d := newDyncon(dyncon.Config{N: n, Mode: dyncon.MST, Eps: 0.25, ExpectedEdges: capEdges})
			return d.ApplyBatch, func(k int, rng *rand.Rand) { d.ConnectedBatch(graph.RandomPairs(n, k, rng)) }, func() *mpc.Stats { return d.Cluster().Stats() }
		}},
		{"Maximal matching (§3)", func() (func(graph.Batch) mpc.BatchStats, func(int, *rand.Rand), func() *mpc.Stats) {
			m := newDMM(dmm.Config{N: n, CapEdges: capEdges})
			return m.ApplyBatch, func(k int, rng *rand.Rand) { m.MateOfBatch(mates(k, rng)) }, func() *mpc.Stats { return m.Cluster().Stats() }
		}},
		{"3/2-approx matching (§4)", func() (func(graph.Batch) mpc.BatchStats, func(int, *rand.Rand), func() *mpc.Stats) {
			m := newDMM(dmm.Config{N: n, CapEdges: capEdges, ThreeHalves: true})
			return m.ApplyBatch, func(k int, rng *rand.Rand) { m.MateOfBatch(mates(k, rng)) }, func() *mpc.Stats { return m.Cluster().Stats() }
		}},
		{"(2+ε)-approx matching (§6)", func() (func(graph.Batch) mpc.BatchStats, func(int, *rand.Rand), func() *mpc.Stats) {
			m := newAMM(amm.Config{N: n, Seed: seed})
			return m.ApplyBatch, func(k int, rng *rand.Rand) { m.MateOfBatch(mates(k, rng)) }, func() *mpc.Stats { return m.Cluster().Stats() }
		}},
	}
}

// measureMixed interleaves query batches of size qk into the batched update
// stream, issuing reads after each update chunk so the running read
// fraction tracks readfrac, up to totalQueries reads.
func measureMixed(qr queryRunner, stream []graph.Update, updK, qk, totalQueries int, readfrac float64, seed int64) queryRow {
	apply, query, stats := qr.mk()
	rng := rand.New(rand.NewSource(seed + 1000))
	r := queryRow{name: qr.name, k: qk}
	writes := 0
	for _, b := range graph.Chunk(stream, updK) {
		apply(b)
		writes += len(b)
		target := int(readfrac / (1 - readfrac) * float64(writes))
		if target > totalQueries {
			target = totalQueries
		}
		// The last batch before the target may be partial, so small -queries
		// values still measure every qk honestly instead of reporting rows
		// with zero reads.
		for r.queries < target {
			k := qk
			if k > target-r.queries {
				k = target - r.queries
			}
			query(k, rng)
			r.queries += k
		}
	}
	for _, q := range stats().Queries() {
		r.windows++
		if q.MaxActive > r.maxActive {
			r.maxActive = q.MaxActive
		}
	}
	r.roundsPerQuery, _, r.meanWords = stats().MeanQuery()
	r.updAmortized, _, _ = stats().MeanBatch()
	return r
}

// queryTable measures the mixed workload for every query-capable algorithm
// at query batch sizes k ∈ {1, 8, 64} (fresh instances per k; the §7
// reduction has no protocol query — Lemma 7.1 covers update replay only).
// updK and readfrac must already be resolved (see main), so the reported
// parameters are the measured ones.
func queryTable(n, nUpdates, updK, totalQueries int, readfrac float64, seed int64) []queryRow {
	capEdges := 6 * n
	stream := graph.RandomStream(n, nUpdates, 0.55, 50, rand.New(rand.NewSource(seed+100)))
	var rows []queryRow
	for _, qr := range queryRunners(n, capEdges, seed) {
		for _, qk := range []int{1, 8, 64} {
			rows = append(rows, measureMixed(qr, stream, updK, qk, totalQueries, readfrac, seed))
		}
	}
	return rows
}

func printQueryTable(rows []queryRow, readfrac float64) {
	fmt.Printf("\nMixed read/write workload (readfrac %.2f, query batches via ConnectedBatch/MateOfBatch):\n", readfrac)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Algorithm\tqk\tqueries\trounds/query\trounds/upd (interleaved)\tmach/round (wc)\twords/round (mean)\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.3f\t%.2f\t%d\t%.1f\n",
			r.name, r.k, r.queries, r.roundsPerQuery, r.updAmortized, r.maxActive, r.meanWords)
	}
	w.Flush()
	fmt.Println("(a query batch shares one scatter/gather window: 2/k rounds per connectivity")
	fmt.Println(" query, 1/k per mate query; update accounting is untouched by the reads)")
}

func printBatchTable(rows []batchRow, batch int) {
	fmt.Printf("\nBatch pipeline (ApplyBatch, k=%d vs k=1):\n", batch)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Algorithm\tk\trounds/batch\tamortized rounds/upd\tmach/round (wc)\twords/round (mean)\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.2f\t%d\t%.1f\n",
			r.name, r.k, r.meanRounds, r.amortized, r.maxActive, r.meanWords)
	}
	w.Flush()
	fmt.Println("(amortized rounds/update dropping as k grows is the batch-dynamic headline;")
	fmt.Println(" the §7 reduction replays sequentially, so its amortized cost stays flat)")
}

// --- JSON output ----------------------------------------------------------

type jsonAlgo struct {
	Name               string  `json:"name"`
	Claim              string  `json:"claim"`
	MeanRoundsPerUpd   float64 `json:"mean_rounds_per_update"`
	WorstRounds        int     `json:"wc_rounds"`
	WorstMachines      int     `json:"wc_machines_per_round"`
	MeanWordsPerRound  float64 `json:"mean_words_per_round"`
	WorstWordsPerRound int     `json:"wc_words_per_round"`
}

type jsonBatch struct {
	Name              string  `json:"name"`
	K                 int     `json:"k"`
	Batches           int     `json:"batches"`
	RoundsPerBatch    float64 `json:"rounds_per_batch"`
	AmortizedRounds   float64 `json:"amortized_rounds_per_update"`
	WorstMachines     int     `json:"wc_machines_per_round"`
	MeanWordsPerRound float64 `json:"mean_words_per_round"`
}

type jsonQuery struct {
	Name              string  `json:"name"`
	K                 int     `json:"k"`
	Queries           int     `json:"queries"`
	Windows           int     `json:"windows"`
	RoundsPerQuery    float64 `json:"amortized_rounds_per_query"`
	UpdateAmortized   float64 `json:"interleaved_rounds_per_update"`
	WorstMachines     int     `json:"wc_machines_per_round"`
	MeanWordsPerRound float64 `json:"mean_words_per_round"`
}

type benchReport struct {
	Schema   string      `json:"schema"`
	N        int         `json:"n"`
	Updates  int         `json:"updates"`
	Seed     int64       `json:"seed"`
	BatchK   int         `json:"batch_k,omitempty"`
	ReadFrac float64     `json:"read_frac,omitempty"`
	QueryUpd int         `json:"query_upd_k,omitempty"` // update-batch size of the mixed runs
	Table1   []jsonAlgo  `json:"table1"`
	Batch    []jsonBatch `json:"batch,omitempty"`
	Shard    []shardRow  `json:"conflict_sharding,omitempty"`
	Auto     []autoRow   `json:"autobatch,omitempty"`
	Queries  []jsonQuery `json:"queries,omitempty"`
	Mixed    []mixedRow  `json:"mixed,omitempty"`
	Sweep    []sweepRow  `json:"sweep,omitempty"`

	Arrivals    []arrivalRow     `json:"arrivals,omitempty"`
	LatencyAuto []latencyAutoRow `json:"latency_autobatch,omitempty"`
	Tenants     []tenantRow      `json:"tenants,omitempty"`
	TreeDP      []treedpRow      `json:"treedp,omitempty"`

	// Backend records the -backend flag the (non-wallclock) tables ran
	// on; Wall is the sim-vs-parallel wall-clock trajectory, which always
	// measures both backends.
	Backend string    `json:"backend,omitempty"`
	Wall    []wallRow `json:"wallclock,omitempty"`
}

// buildReport assembles the machine-readable measurement document.
func buildReport(rows []row, brows []batchRow, shrows []shardRow, arows []autoRow, qrows []queryRow, mrows []mixedRow, srows []sweepRow, n, updates, batch, queryUpdK int, readfrac float64, seed int64) benchReport {
	rep := benchReport{Schema: "dmpcbench/v2", N: n, Updates: updates, Seed: seed, BatchK: batch,
		Shard: shrows, Auto: arows, Mixed: mrows, Sweep: srows}
	if len(qrows) > 0 || len(mrows) > 0 {
		rep.ReadFrac = readfrac
		rep.QueryUpd = queryUpdK
	}
	for _, r := range qrows {
		rep.Queries = append(rep.Queries, jsonQuery{
			Name: r.name, K: r.k, Queries: r.queries, Windows: r.windows,
			RoundsPerQuery: r.roundsPerQuery, UpdateAmortized: r.updAmortized,
			WorstMachines: r.maxActive, MeanWordsPerRound: r.meanWords,
		})
	}
	for _, r := range rows {
		rep.Table1 = append(rep.Table1, jsonAlgo{
			Name: r.name, Claim: r.claim,
			MeanRoundsPerUpd: r.meanRounds, WorstRounds: r.maxRounds,
			WorstMachines: r.maxActive, MeanWordsPerRound: r.meanWords,
			WorstWordsPerRound: r.maxWords,
		})
	}
	for _, r := range brows {
		rep.Batch = append(rep.Batch, jsonBatch{
			Name: r.name, K: r.k, Batches: r.batches,
			RoundsPerBatch: r.meanRounds, AmortizedRounds: r.amortized,
			WorstMachines: r.maxActive, MeanWordsPerRound: r.meanWords,
		})
	}
	return rep
}

func printJSON(rep benchReport) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "dmpcbench:", err)
		os.Exit(1)
	}
}

// checkBaseline compares the run's amortized batch rounds against a
// committed BENCH snapshot (the CI bench-regression smoke): for every
// (name, k) batch row present in both, the measured amortized
// rounds/update may not exceed the snapshot's by more than tol (relative).
// The simulator is deterministic for fixed flags and seed, so any drift is
// a code change, and tol only leaves room for intentional small
// scheduling tweaks between re-pins.
func checkBaseline(rep benchReport, path string, tol float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want benchReport
	if err := json.Unmarshal(raw, &want); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if want.N != rep.N || want.Updates != rep.Updates || want.Seed != rep.Seed || want.BatchK != rep.BatchK {
		return fmt.Errorf("%s was recorded with -n %d -updates %d -seed %d -batch %d; this run used -n %d -updates %d -seed %d -batch %d",
			path, want.N, want.Updates, want.Seed, want.BatchK, rep.N, rep.Updates, rep.Seed, rep.BatchK)
	}
	type key struct {
		name string
		k    int
	}
	base := make(map[key]float64, len(want.Batch))
	for _, b := range want.Batch {
		base[key{b.Name, b.K}] = b.AmortizedRounds
	}
	matched := 0
	for _, b := range rep.Batch {
		wantA, ok := base[key{b.Name, b.K}]
		if !ok {
			continue
		}
		matched++
		if b.AmortizedRounds > wantA*(1+tol) {
			return fmt.Errorf("%s (k=%d): amortized rounds/update %.3f regressed past snapshot %.3f by more than %.0f%% (%s)",
				b.Name, b.K, b.AmortizedRounds, wantA, tol*100, path)
		}
	}
	// Mixed-pipeline regression: the in-wave rounds/op may not drift past
	// the snapshot, and at k >= 64 the in-wave path must still *beat* the
	// quiescence split outright — the unified-pipeline headline is an
	// invariant, not just a number.
	mixedBase := make(map[key]float64, len(want.Mixed))
	for _, m := range want.Mixed {
		mixedBase[key{m.Name, m.K}] = m.InwavePerOp
	}
	for _, m := range rep.Mixed {
		wantA, ok := mixedBase[key{m.Name, m.K}]
		if !ok {
			continue
		}
		matched++
		if m.InwavePerOp > wantA*(1+tol) {
			return fmt.Errorf("%s (k=%d): in-wave rounds/op %.3f regressed past snapshot %.3f by more than %.0f%% (%s)",
				m.Name, m.K, m.InwavePerOp, wantA, tol*100, path)
		}
		if m.K >= 64 && m.Ratio >= 1 {
			return fmt.Errorf("%s (k=%d): in-wave reads no longer beat the quiescence path (ratio %.3f)",
				m.Name, m.K, m.Ratio)
		}
	}
	// Streaming-latency regression: the p99 rounds-from-arrival at the
	// k=64 batch bound may not drift past the snapshot, and the
	// tail-constrained AutoBatcher must keep settling at a smaller k than
	// the unconstrained search — the latency headline is an invariant.
	type akey struct {
		name, gen string
		k         int
	}
	arrBase := make(map[akey]int64, len(want.Arrivals))
	for _, a := range want.Arrivals {
		arrBase[akey{a.Name, a.Gen, a.K}] = a.P99
	}
	for _, a := range rep.Arrivals {
		if a.K != 64 {
			continue
		}
		wantP, ok := arrBase[akey{a.Name, a.Gen, a.K}]
		if !ok {
			continue
		}
		matched++
		if float64(a.P99) > float64(wantP)*(1+tol) {
			return fmt.Errorf("%s (%s, k=%d): latency p99 %d rounds regressed past snapshot %d by more than %.0f%% (%s)",
				a.Name, a.Gen, a.K, a.P99, wantP, tol*100, path)
		}
	}
	for _, l := range rep.LatencyAuto {
		matched++
		if l.BoundK >= l.FreeK {
			return fmt.Errorf("%s (%s): TargetP99Rounds=%d no longer settles below the unconstrained k (bound %d vs free %d)",
				l.Name, l.Gen, l.Target, l.BoundK, l.FreeK)
		}
	}
	// Multi-tenant gates. The fair victim p99 may not drift past the
	// snapshot, and two invariants hold outright: the fair run must keep
	// the victim's read tail bounded near its solo baseline under the
	// noisy tenant's flood, and tenant tags alone (no weights, no
	// admission) must leave the stream bit-identical to the untagged run.
	tenBase := make(map[string]int64, len(want.Tenants))
	for _, tr := range want.Tenants {
		tenBase[tr.Name] = tr.VictimFairP99
	}
	for _, tr := range rep.Tenants {
		if wantP, ok := tenBase[tr.Name]; ok {
			matched++
			if float64(tr.VictimFairP99) > float64(wantP)*(1+tol) {
				return fmt.Errorf("%s: fair victim p99 %d rounds regressed past snapshot %d by more than %.0f%% (%s)",
					tr.Name, tr.VictimFairP99, wantP, tol*100, path)
			}
		}
		if tr.VictimFairP99 > 2*tr.VictimSoloP99 {
			return fmt.Errorf("%s: fair victim p99 %d rounds exceeds 2x its solo baseline %d — the noisy tenant broke isolation",
				tr.Name, tr.VictimFairP99, tr.VictimSoloP99)
		}
		if !tr.ZeroTenantIdentical {
			return fmt.Errorf("%s: tenant tags alone changed answers or accounting — the zero-tenant compatibility contract is broken", tr.Name)
		}
	}
	// Tree-DP gates. The amortized DP rounds/query at k=64 may not drift
	// past the snapshot, and two invariants hold outright regardless of
	// any snapshot: on the uniform workload DP reads must amortize below
	// one round per query at k >= 64 (the power-law rows are exempt — a
	// giant component legitimately serializes its reads around its own
	// structural churn, that being the snapshot-consistency contract),
	// and the sim and parallel backends must have answered the identical
	// stream bit-identically.
	type tkey struct {
		name, backend string
		k             int
	}
	treedpBase := make(map[tkey]float64, len(want.TreeDP))
	for _, tr := range want.TreeDP {
		treedpBase[tkey{tr.Name, tr.Backend, tr.K}] = tr.DPRoundsPerQuery
	}
	for _, tr := range rep.TreeDP {
		if wantQ, ok := treedpBase[tkey{tr.Name, tr.Backend, tr.K}]; ok && tr.K == 64 {
			matched++
			if tr.DPRoundsPerQuery > wantQ*(1+tol) {
				return fmt.Errorf("%s (k=%d, %s): DP rounds/query %.3f regressed past snapshot %.3f by more than %.0f%% (%s)",
					tr.Name, tr.K, tr.Backend, tr.DPRoundsPerQuery, wantQ, tol*100, path)
			}
		}
		if tr.Name == "uniform" && tr.K >= 64 && tr.DPRoundsPerQuery >= 1 {
			return fmt.Errorf("%s (k=%d, %s): DP reads no longer amortize below one round per query (%.3f)",
				tr.Name, tr.K, tr.Backend, tr.DPRoundsPerQuery)
		}
		if !tr.AnswersMatch {
			return fmt.Errorf("%s (k=%d): sim and parallel backends disagree on DP answers — the determinism rule is broken", tr.Name, tr.K)
		}
	}
	// Wall-clock gates. Rounds/op is deterministic, so (a) it may not
	// drift past the snapshot, and (b) within the run the two backends
	// must agree on it exactly — a rounds-vs-time divergence means a
	// backend changed the computation, not just its speed. The ns columns
	// are machine-dependent and never gated against the snapshot; what IS
	// an invariant is the trajectory's headline: at n >= 10^4 the parallel
	// backend must beat the sim oracle's makespan on the same stream.
	// Allocs/round is gated outright: the pooled round engine's bill is a
	// code property, not a machine property, so drifting past the snapshot
	// (modulo tol and a small absolute slack for GC-clock jitter) means
	// someone re-introduced per-round allocation.
	type wkey struct {
		name, backend string
		n             int
	}
	wallBase := make(map[wkey]wallRow, len(want.Wall))
	for _, w := range want.Wall {
		wallBase[wkey{w.Name, w.Backend, w.N}] = w
	}
	simWall := make(map[wkey]wallRow, len(rep.Wall))
	for _, w := range rep.Wall {
		if w.Backend == "sim" {
			simWall[wkey{name: w.Name, n: w.N}] = w
		}
	}
	for _, w := range rep.Wall {
		if wantW, ok := wallBase[wkey{w.Name, w.Backend, w.N}]; ok {
			matched++
			if w.RoundsPerOp > wantW.RoundsPerOp*(1+tol) {
				return fmt.Errorf("%s (n=%d, %s): wall-clock rounds/op %.3f regressed past snapshot %.3f by more than %.0f%% (%s)",
					w.Name, w.N, w.Backend, w.RoundsPerOp, wantW.RoundsPerOp, tol*100, path)
			}
			// Pre-PR-9 snapshots carry no allocs column (0): nothing to gate.
			if budget := wantW.AllocsPerRound*(1+tol) + 16; wantW.AllocsPerRound > 0 && w.AllocsPerRound > budget {
				return fmt.Errorf("%s (n=%d, %s): allocs/round %.1f exceeds the snapshot's %.1f (budget %.1f) — the pooled round engine is allocating again (%s)",
					w.Name, w.N, w.Backend, w.AllocsPerRound, wantW.AllocsPerRound, budget, path)
			}
		}
		if w.Backend != "parallel" {
			continue
		}
		sim, ok := simWall[wkey{name: w.Name, n: w.N}]
		if !ok {
			continue
		}
		if w.RoundsPerOp != sim.RoundsPerOp {
			return fmt.Errorf("%s (n=%d): backends diverge on rounds/op (parallel %.3f vs sim %.3f) — the determinism rule is broken",
				w.Name, w.N, w.RoundsPerOp, sim.RoundsPerOp)
		}
		if w.N >= 10_000 && w.MakespanNs > sim.MakespanNs*102/100 {
			return fmt.Errorf("%s (n=%d): parallel backend no longer beats the sim oracle (makespan %s vs %s)",
				w.Name, w.N, time.Duration(w.MakespanNs), time.Duration(sim.MakespanNs))
		}
	}
	if matched == 0 {
		return fmt.Errorf("%s: no batch, mixed, arrival, tenant or wallclock rows matched this run (was the snapshot generated with -batch/-mixed/-arrivals/-tenants/-wallclock?)", path)
	}
	return nil
}

func printTable(rows []row, n int) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Algorithm\tPaper bound\trounds/upd (mean)\trounds (wc)\tmach/round (wc)\twords/round (mean)\twords (wc)\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.2f\t%d\t%d\t%.1f\t%d\n",
			r.name, r.claim, r.meanRounds, r.maxRounds, r.maxActive, r.meanWords, r.maxWords)
	}
	w.Flush()
	fmt.Printf("\n(N = n + 2m ≈ %d; √N ≈ %.0f)\n", 13*n, math.Sqrt(13*float64(n)))
}

func staticBaselines(n int, seed int64) {
	g := graph.GNM(n, 5*n, 50, rand.New(rand.NewSource(seed)))
	_, cc := staticmpc.ConnectedComponents(g, 0, 0)
	_, mm := staticmpc.MaximalMatching(g, 0, 0, seed)
	_, mf := staticmpc.MinSpanningForest(g, 8)
	fmt.Println("\nStatic recompute-from-scratch baselines (per recomputation):")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Baseline\trounds\tmach/round (wc)\twords total\n")
	fmt.Fprintf(w, "Label-prop CC (O(log n) rounds)\t%d\t%d\t%d\n", cc.Rounds, cc.MaxActive, cc.TotalWords)
	fmt.Fprintf(w, "Proposal matching (O(log n) w.h.p.)\t%d\t%d\t%d\n", mm.Rounds, mm.MaxActive, mm.TotalWords)
	fmt.Fprintf(w, "Filtering MSF [26]\t%d\t%d\t%d\n", mf.Rounds, mf.MaxActive, mf.TotalWords)
	w.Flush()
}

// sweepRow is one input size of the §5 scaling sweep.
type sweepRow struct {
	N             int     `json:"n"`
	WorstRounds   int     `json:"wc_rounds_per_update"`
	WorstMachines int     `json:"wc_machines_per_round"`
	WorstWords    int     `json:"wc_words_per_round"`
	WordsPerSqrtN float64 `json:"wc_words_per_sqrt_n"`
}

func sweepRows(seed int64) []sweepRow {
	var rows []sweepRow
	for _, n := range []int{64, 128, 256, 512, 1024} {
		d := newDyncon(dyncon.Config{N: n, Mode: dyncon.CC, ExpectedEdges: 5 * n})
		rng := rand.New(rand.NewSource(seed))
		var maxR, maxA, maxW int
		for _, up := range graph.RandomStream(n, 300, 0.55, 1, rng) {
			var st mpc.UpdateStats
			if up.Op == graph.Insert {
				st = d.Insert(up.U, up.V, 1)
			} else {
				st = d.Delete(up.U, up.V)
			}
			if st.Rounds > maxR {
				maxR = st.Rounds
			}
			if st.MaxActive > maxA {
				maxA = st.MaxActive
			}
			if st.MaxWords > maxW {
				maxW = st.MaxWords
			}
		}
		root := math.Sqrt(11 * float64(n))
		rows = append(rows, sweepRow{
			N: n, WorstRounds: maxR, WorstMachines: maxA, WorstWords: maxW,
			WordsPerSqrtN: float64(maxW) / root,
		})
	}
	return rows
}

func printSweep(rows []sweepRow) {
	fmt.Println("\nScaling sweep (§5 connectivity): words/round vs N")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "n\trounds/upd (wc)\tmach/round (wc)\twords/round (wc)\twords/√N\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.1f\n", r.N, r.WorstRounds, r.WorstMachines, r.WorstWords, r.WordsPerSqrtN)
	}
	w.Flush()
	fmt.Println("(flat rounds and a roughly constant words/√N column are the paper's shape)")
}

func main() {
	n := flag.Int("n", 128, "number of vertices")
	updates := flag.Int("updates", 500, "updates per algorithm")
	seed := flag.Int64("seed", 1, "stream seed")
	doSweep := flag.Bool("sweep", false, "run the scaling sweep")
	batch := flag.Int("batch", 0, "measure the batch pipeline at this batch size (and k=1)")
	doShard := flag.Bool("shard", false, "compare the conflict-graph wave scheduler against the greedy-prefix packer at k in {8,64,256}")
	doAuto := flag.Bool("autobatch", false, "run the AutoBatcher adaptive batch-sizing driver and report its k trajectory")
	queries := flag.Int("queries", 0, "measure the mixed read/write workload with up to this many protocol queries per run")
	doMixed := flag.Bool("mixed", false, "measure the unified op pipeline (in-wave reads) against the quiescence split at k in {8,64,256}")
	doArrivals := flag.Bool("arrivals", false, "measure streaming ingestion latency (p50/p95/p99 rounds from arrival) at batch bounds k in {8,64,256} plus the tail-constrained AutoBatcher comparison")
	doTreeDP := flag.Bool("treedp", false, "measure the tree-DP workload: mixed link/cut/weight/DP-query streams at k in {8,64,256} on both backends, with amortized DP rounds/query and cross-backend answer equality")
	doTenants := flag.Bool("tenants", false, "measure multi-tenant isolation: a read-mostly victim's p99 solo vs shared with a write-storm tenant, unweighted vs fair-wave packing plus token-bucket admission")
	readfrac := flag.Float64("readfrac", 0.5, "target read fraction of the mixed workload")
	backendFlag := flag.String("backend", "sim", "execution backend for the measurement tables: sim (deterministic oracle) or parallel (goroutine-per-machine runtime)")
	workers := flag.Int("workers", 0, "backend worker bound (0 = GOMAXPROCS); never changes rounds, only wall-clock time")
	doWall := flag.Bool("wallclock", false, "measure the sim-vs-parallel wall-clock trajectory (ns/op, makespan and allocs/round next to rounds/op) over the -wallmax n ladder")
	wallMax := flag.Int("wallmax", 1_000_000, "largest n of the -wallclock ladder (CI smoke caps this; snapshots record the full climb)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the measured section to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile, captured right after the measured section, to this file")
	asJSON := flag.Bool("json", false, "emit the measurements as JSON")
	baseline := flag.String("baseline", "", "committed BENCH_*.json snapshot to compare amortized batch rounds against; exit nonzero on >tolerance regression")
	tolerance := flag.Float64("tolerance", 0.10, "relative regression tolerance for -baseline")
	flag.Parse()

	be, err := mpc.ParseBackend(*backendFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmpcbench:", err)
		os.Exit(2)
	}
	benchBackend, benchWorkers = be, *workers

	// The profile window opens here and closes after the last table, so
	// the captures cover exactly the measurements (see the doc comment).
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmpcbench:", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dmpcbench: cpuprofile:", err)
			os.Exit(2)
		}
	}

	rows := table(*n, *updates, *seed)
	var brows []batchRow
	if *batch > 0 {
		brows = batchTable(*n, *updates, *batch, *seed)
	}
	var shrows []shardRow
	if *doShard {
		shrows = shardTable(*n, *updates, *seed)
	}
	var arows []autoRow
	if *doAuto {
		arows = autoTable(*n, *updates, *seed)
	}
	// Resolve the mixed-workload parameters once, so table and JSON report
	// what was actually measured.
	queryUpdK := *batch
	if queryUpdK < 1 {
		queryUpdK = 64
	}
	if *readfrac <= 0 || *readfrac >= 1 {
		*readfrac = 0.5
	}
	var qrows []queryRow
	if *queries > 0 {
		qrows = queryTable(*n, *updates, queryUpdK, *queries, *readfrac, *seed)
	}
	var mrows []mixedRow
	if *doMixed {
		mrows = mixedTable(*n, *updates, *readfrac, *seed)
	}
	var srows []sweepRow
	if *doSweep {
		srows = sweepRows(*seed)
	}
	var arrRows []arrivalRow
	var latRows []latencyAutoRow
	if *doArrivals {
		arrRows = arrivalTable(*n, *updates, *seed)
		latRows = latencyAutoTable(*n, *updates, *seed)
	}
	var trows []tenantRow
	if *doTenants {
		trows = tenantTable(*n, *updates, *seed)
	}
	var tdrows []treedpRow
	if *doTreeDP {
		tdrows = treedpTable(*n, *updates, *seed)
	}
	var wrows []wallRow
	if *doWall {
		wrows = wallTable(*updates, *seed, *wallMax)
	}

	// Measurements done: close the profile window before reporting.
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmpcbench:", err)
			os.Exit(2)
		}
		runtime.GC() // heap profile of live objects, not collectable garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dmpcbench: memprofile:", err)
			os.Exit(2)
		}
		f.Close()
	}

	rep := buildReport(rows, brows, shrows, arows, qrows, mrows, srows, *n, *updates, *batch, queryUpdK, *readfrac, *seed)
	rep.Arrivals = arrRows
	rep.LatencyAuto = latRows
	rep.Tenants = trows
	rep.TreeDP = tdrows
	rep.Backend = benchBackend.String()
	rep.Wall = wrows
	if *baseline != "" {
		if err := checkBaseline(rep, *baseline, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "dmpcbench: bench regression:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dmpcbench: no bench regression vs %s (tolerance %.0f%%)\n", *baseline, *tolerance*100)
	}
	if *asJSON {
		printJSON(rep)
		return
	}
	fmt.Printf("DMPC dynamic algorithms — Table 1 reproduction (n=%d, %d updates, seed %d)\n\n", *n, *updates, *seed)
	printTable(rows, *n)
	if *batch > 0 {
		printBatchTable(brows, *batch)
	}
	if *doShard {
		printShardTable(shrows)
	}
	if *doAuto {
		printAutoTable(arows)
	}
	if *queries > 0 {
		printQueryTable(qrows, *readfrac)
	}
	if *doMixed {
		printMixedTable(mrows, *readfrac)
	}
	if *doArrivals {
		printArrivalTable(arrRows, latRows)
	}
	if *doTenants {
		printTenantTable(trows)
	}
	if *doTreeDP {
		printTreeDPTable(tdrows)
	}
	if *doWall {
		printWallTable(wrows)
	}
	staticBaselines(*n, *seed)
	if *doSweep {
		printSweep(srows)
	}
}
