// Network monitor: a read-heavy workload on the §5 connectivity
// structure. A datacenter fabric (spine/leaf grid plus cross links)
// suffers continuous link flaps while a monitoring plane fires large
// bursts of reachability probes — "can rack u still reach rack v?" —
// between maintenance batches. Probes dominate updates ~10:1, so the
// read path's cost is the whole story: issued one by one each probe pays
// the §5 query's two rounds, but a maintenance cycle submitted as one
// mixed op stream (the flap updates followed by the probe storm) lets
// the wave scheduler share windows across the probes and the amortized
// cost collapses toward 2/k rounds per probe. The accounting still keeps
// the halves apart — a MixedStats window partitions its rounds between
// its update and query halves by wave.
package main

import (
	"fmt"
	"math/rand"

	"dmpc"
	"dmpc/internal/graph"
)

func main() {
	const racks = 240
	const flapBatches = 12
	const flapsPerBatch = 24
	const probesPerBatch = 256

	rng := rand.New(rand.NewSource(4))
	g := dmpc.NewGraph(racks)
	cc := dmpc.NewConnectivity(racks, 6*racks)

	// Bring the fabric up: a 12x20 grid of racks with some cross links.
	grid := graph.Grid(12, 20, 1, rng)
	for _, e := range grid.Edges() {
		cc.Insert(e.U, e.V)
		g.Insert(e.U, e.V, 1)
	}
	fmt.Printf("fabric up: %d racks, %d links\n", racks, g.M())

	// Maintenance cycles, each one Apply: a batch of link flaps followed
	// by a probe storm, as a single mixed op stream.
	probes := 0
	var mismatches int
	var updRounds, qryRounds, updates int
	for i := 0; i < flapBatches; i++ {
		var ops []dmpc.Op
		for _, up := range graph.RandomStream(racks, flapsPerBatch, 0.45, 1, rng) {
			if g.Apply(up) {
				ops = append(ops, dmpc.OpOf(up))
			}
		}
		nUpd := len(ops)
		pairs := graph.RandomPairs(racks, probesPerBatch, rng)
		for _, pr := range pairs {
			ops = append(ops, dmpc.QConnected(pr.U, pr.V))
		}

		res, st := cc.Apply(ops)

		// Every probe sits after every flap in the stream, so the oracle
		// view is the post-flap graph.
		comp := graph.Components(g)
		for j, a := range res {
			probes++
			if a.Bool != (comp[pairs[j].U] == comp[pairs[j].V]) {
				mismatches++
			}
		}
		updates += nUpd
		updRounds += st.Updates.Rounds
		qryRounds += st.Queries.Rounds
	}

	fmt.Printf("monitoring plane: %d probes in %d cycles, all matching the oracle: %v\n",
		probes, flapBatches, mismatches == 0)
	fmt.Printf("read path: %.3f amortized rounds/probe (a lone probe pays 2)\n",
		float64(qryRounds)/float64(probes))
	fmt.Printf("write path: %.2f rounds/update across %d flap batches, unperturbed by probes\n",
		float64(updRounds)/float64(updates), flapBatches)
}
