package treedp

// Oracle is the sequential reference the equivalence harnesses replay
// against: a plain weight vector plus textbook tree walks over a forest
// adjacency. It is deliberately independent of the tour machinery — no
// positions, no anchors — so agreement with the distributed answers is
// evidence about the interval algebra, not a shared bug.
type Oracle struct {
	w []int64
}

// NewOracle returns an oracle over n vertices, all weights 0.
func NewOracle(n int) *Oracle { return &Oracle{w: make([]int64, n)} }

// SetWeight assigns v's weight.
func (o *Oracle) SetWeight(v int, w int64) { o.w[v] = w }

// Weight reads v's weight (0 by default).
func (o *Oracle) Weight(v int) int64 { return o.w[v] }

// component collects u's component in the forest adjacency, in BFS
// order, and returns parent pointers of the BFS tree rooted at u
// (parent[u] = -1; vertices outside the component keep parent -2).
func component(adj [][]int, u int) (verts []int, parent []int) {
	parent = make([]int, len(adj))
	for i := range parent {
		parent[i] = -2
	}
	parent[u] = -1
	verts = append(verts, u)
	for i := 0; i < len(verts); i++ {
		x := verts[i]
		for _, y := range adj[x] {
			if parent[y] == -2 {
				parent[y] = x
				verts = append(verts, y)
			}
		}
	}
	return verts, parent
}

// SubtreeSum answers OpSubtreeSum over the forest adjacency: the weight
// sum over the subtree of u when u's tree is rooted at r. When r is in a
// different component — or r == u — the subtree is u's whole component.
func (o *Oracle) SubtreeSum(adj [][]int, r, u int) int64 {
	verts, parent := component(adj, r)
	if parent[u] == -2 || u == r {
		// r unreachable from u (or trivially the whole tree): the
		// subtree degenerates to u's entire component.
		comp, _ := component(adj, u)
		var sum int64
		for _, x := range comp {
			sum += o.w[x]
		}
		return sum
	}
	// Rooted at r, subtree(u) = every vertex whose parent chain to r
	// passes through u. The BFS tree from r gives exactly those chains.
	var sum int64
	for _, x := range verts {
		for y := x; y != -1; y = parent[y] {
			if y == u {
				sum += o.w[x]
				break
			}
		}
	}
	return sum
}

// PathSum answers OpPathSum: the weight sum along the u–v tree path,
// endpoints included; 0 when disconnected; w(u) when u == v.
func (o *Oracle) PathSum(adj [][]int, u, v int) int64 {
	_, parent := component(adj, u)
	if parent[v] == -2 {
		return 0
	}
	var sum int64
	for y := v; y != -1; y = parent[y] {
		sum += o.w[y]
	}
	return sum
}

// TreeTop answers OpTreeTop: the id of the heaviest vertex of u's
// component (default weight 0), smallest id on ties.
func (o *Oracle) TreeTop(adj [][]int, u int) int64 {
	verts, _ := component(adj, u)
	best := u
	for _, x := range verts {
		if o.w[x] > o.w[best] || (o.w[x] == o.w[best] && x < best) {
			best = x
		}
	}
	return int64(best)
}
