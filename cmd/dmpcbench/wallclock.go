package main

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"dmpc"
	"dmpc/internal/core/amm"
	"dmpc/internal/core/dmm"
	"dmpc/internal/core/dyncon"
	"dmpc/internal/graph"
	"dmpc/internal/mpc"
)

// benchBackend and benchWorkers carry the -backend/-workers flag values;
// every table's structure constructions route through the wrappers below,
// so one flag retargets the whole measurement at an execution backend.
// The wall-clock table ignores them and always measures both backends
// head to head.
var (
	benchBackend mpc.BackendKind
	benchWorkers int
)

func newDyncon(cfg dyncon.Config) *dyncon.D {
	cfg.Backend = benchBackend
	cfg.Workers = benchWorkers
	return dyncon.New(cfg)
}

func newDMM(cfg dmm.Config) *dmm.M {
	cfg.Backend = benchBackend
	cfg.Workers = benchWorkers
	return dmm.New(cfg)
}

func newAMM(cfg amm.Config) *amm.M {
	cfg.Backend = benchBackend
	cfg.Workers = benchWorkers
	return amm.New(cfg)
}

// benchOpts translates the flag values into facade options for tables
// that build structures through the dmpc front door.
func benchOpts() []dmpc.Option {
	return []dmpc.Option{dmpc.WithBackend(benchBackend), dmpc.WithWorkers(benchWorkers)}
}

// --- wall-clock trajectory -------------------------------------------------

// wallRow is one (algorithm, n, backend) cell of the wall-clock table:
// the same batched update stream measured in model rounds AND in real
// time, so the snapshot records ns/op and makespan next to rounds/op.
// Rounds are backend-independent by the determinism rule (checkBaseline
// enforces the equality); time is what the backends compete on.
type wallRow struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	K           int     `json:"k"`
	Ops         int     `json:"ops"`
	Backend     string  `json:"backend"`
	RoundsPerOp float64 `json:"rounds_per_op"`
	NsPerOp     float64 `json:"ns_per_op"`
	MakespanNs  int64   `json:"makespan_ns"`
	NsPerRound  float64 `json:"ns_per_round"`
	// AllocsPerRound is the heap-allocation bill per round (Mallocs delta
	// over the measured section of the fastest rep, construction excluded)
	// — the figure the sparse-activation pooling drives toward zero and
	// checkBaseline gates outright. Absent (0) in pre-PR-9 snapshots.
	AllocsPerRound float64 `json:"allocs_per_round,omitempty"`
}

// wallK is the batch size of the wall-clock runs: large enough to
// amortize per-batch scheduling, small enough that every n sees many
// batches.
const wallK = 64

// wallNs is the input-size ladder: the Table 1 default plus the three
// orders of magnitude the parallel backend and the sparse-activation
// round engine exist for. -wallmax caps it so CI smoke stays fast while
// committed snapshots record the full climb.
var wallNs = []int{128, 10_000, 100_000, 1_000_000}

// wallRunner builds one algorithm instance pinned to a backend and
// returns its batch front door plus the cluster teardown.
type wallRunner struct {
	name string
	mk   func(n int, be mpc.BackendKind) (apply func(graph.Batch) mpc.BatchStats, closeFn func())
}

func wallRunners() []wallRunner {
	return []wallRunner{
		{"Connected comps (§5)", func(n int, be mpc.BackendKind) (func(graph.Batch) mpc.BatchStats, func()) {
			d := dyncon.New(dyncon.Config{N: n, Mode: dyncon.CC, ExpectedEdges: 6 * n, Backend: be})
			return d.ApplyBatch, d.Close
		}},
		{"Maximal matching (§3)", func(n int, be mpc.BackendKind) (func(graph.Batch) mpc.BatchStats, func()) {
			m := dmm.New(dmm.Config{N: n, CapEdges: 6 * n, Backend: be})
			return m.ApplyBatch, m.Close
		}},
	}
}

// wallReps is how many times each (algorithm, n, backend) cell replays
// its stream; the reported makespan is the fastest rep. Reps alternate
// between the two backends so each pair shares machine conditions, and
// minima filter the one-sided noise (GC pacing, scheduler interference)
// that a single shot would bake into the snapshot the baseline gate
// compares against.
const wallReps = 5

// measureWallOnce times one backend over one replay of the chunked
// stream on a fresh instance. Construction is outside the clock — the
// makespan measures steady-state op processing — and, like the testing
// package before each benchmark, the rep starts from a forced collection
// so GC pacing inherited from earlier tables or the other backend's reps
// cannot leak into this one. allocs is the heap-allocation count of the
// measured section (Mallocs delta, construction excluded); the
// ReadMemStats calls sit outside the clock.
func measureWallOnce(wr wallRunner, n int, stream []graph.Update, be mpc.BackendKind) (rounds, ops int, allocs uint64, elapsed int64) {
	runtime.GC()
	apply, closeFn := wr.mk(n, be)
	defer closeFn()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for _, b := range graph.Chunk(stream, wallK) {
		st := apply(b)
		rounds += st.Rounds
		ops += st.Updates
	}
	elapsed = time.Since(start).Nanoseconds()
	runtime.ReadMemStats(&after)
	return rounds, ops, after.Mallocs - before.Mallocs, elapsed
}

// measureWall measures one (algorithm, n) cell on both backends,
// interleaving wallReps replays of each, and returns the sim row then
// the parallel row (each the fastest rep), the order the pairing in
// checkBaseline expects.
func measureWall(wr wallRunner, n int, stream []graph.Update) []wallRow {
	backends := []mpc.BackendKind{mpc.BackendSim, mpc.BackendParallel}
	rows := make([]wallRow, len(backends))
	for rep := 0; rep < wallReps; rep++ {
		for bi, be := range backends {
			rounds, ops, allocs, elapsed := measureWallOnce(wr, n, stream, be)
			if rows[bi].MakespanNs == 0 || elapsed < rows[bi].MakespanNs {
				rows[bi] = wallRow{Name: wr.name, N: n, K: wallK, Ops: ops, Backend: be.String(), MakespanNs: elapsed}
				if ops > 0 {
					rows[bi].RoundsPerOp = float64(rounds) / float64(ops)
					rows[bi].NsPerOp = float64(elapsed) / float64(ops)
				}
				if rounds > 0 {
					rows[bi].NsPerRound = float64(elapsed) / float64(rounds)
					rows[bi].AllocsPerRound = float64(allocs) / float64(rounds)
				}
			}
		}
	}
	return rows
}

// wallTable climbs the n ladder up to wallMax, measuring every algorithm
// on both backends over the same stream.
func wallTable(nUpdates int, seed int64, wallMax int) []wallRow {
	var rows []wallRow
	for _, n := range wallNs {
		if n > wallMax {
			continue
		}
		stream := graph.RandomStream(n, nUpdates, 0.55, 50, rand.New(rand.NewSource(seed+300)))
		for _, wr := range wallRunners() {
			rows = append(rows, measureWall(wr, n, stream)...)
		}
	}
	return rows
}

func printWallTable(rows []wallRow) {
	fmt.Println("\nWall-clock trajectory: sim oracle vs parallel backend (same stream, k=64):")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Algorithm\tn\tbackend\tops\trounds/op\tns/op\tns/round\tallocs/round\tmakespan\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%s\t%d\t%.2f\t%.0f\t%.0f\t%.1f\t%s\n",
			r.Name, r.N, r.Backend, r.Ops, r.RoundsPerOp, r.NsPerOp, r.NsPerRound, r.AllocsPerRound,
			time.Duration(r.MakespanNs))
	}
	w.Flush()
	fmt.Println("(rounds/op is backend-independent — the determinism rule — so the ns columns")
	fmt.Println(" isolate pure runtime overhead: long-lived channel-woken workers and one")
	fmt.Println(" context slab per round against per-machine goroutine spawns and allocations)")
}
