package etour

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Vertex ids for the paper's figures: a..g = 0..6.
const (
	vA = iota
	vB
	vC
	vD
	vE
	vF
	vG
)

var figNames = []string{"a", "b", "c", "d", "e", "f", "g"}

func figure1Forest() *Forest {
	fo := NewForest(7)
	fo.BuildFromTree(map[int][]int{vB: {vC, vE}, vC: {vB, vD}, vD: {vC}, vE: {vB}}, vB)
	fo.BuildFromTree(map[int][]int{vA: {vF}, vF: {vA, vG}, vG: {vF}}, vA)
	return fo
}

func toNames(seq *Seq) string { return seq.Render(figNames) }

func TestFigure1InitialTours(t *testing.T) {
	fo := figure1Forest()
	if err := fo.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := toNames(fo.TourOf(vB)); got != "[b,c,c,d,d,c,c,b,b,e,e,b]" {
		t.Fatalf("tour 1 = %s", got)
	}
	if got := toNames(fo.TourOf(vA)); got != "[a,f,f,g,g,f,f,a]" {
		t.Fatalf("tour 2 = %s", got)
	}
	// Figure 1(i) brackets.
	checks := map[int][2]int{vB: {1, 12}, vC: {2, 7}, vD: {4, 5}, vE: {10, 11},
		vA: {1, 8}, vF: {2, 7}, vG: {4, 5}}
	for v, fl := range checks {
		if fo.F(v) != fl[0] || fo.L(v) != fl[1] {
			t.Fatalf("%s: f/l = %d/%d, want %d/%d", figNames[v], fo.F(v), fo.L(v), fl[0], fl[1])
		}
	}
}

func TestFigure1Reroot(t *testing.T) {
	fo := figure1Forest()
	fo.Reroot(vE)
	if err := fo.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := toNames(fo.TourOf(vB)); got != "[e,b,b,c,c,d,d,c,c,b,b,e]" {
		t.Fatalf("rerooted tour = %s", got)
	}
	// Figure 1(ii) brackets.
	checks := map[int][2]int{vE: {1, 12}, vB: {2, 11}, vC: {4, 9}, vD: {6, 7}}
	for v, fl := range checks {
		if fo.F(v) != fl[0] || fo.L(v) != fl[1] {
			t.Fatalf("%s: f/l = %d/%d, want %d/%d", figNames[v], fo.F(v), fo.L(v), fl[0], fl[1])
		}
	}
}

func TestFigure1Insert(t *testing.T) {
	fo := figure1Forest()
	fo.Link(vG, vE) // insert edge (e,g); g's tree hosts
	if err := fo.Validate(); err != nil {
		t.Fatal(err)
	}
	want := "[a,f,f,g,g,e,e,b,b,c,c,d,d,c,c,b,b,e,e,g,g,f,f,a]"
	if got := toNames(fo.TourOf(vA)); got != want {
		t.Fatalf("merged tour =\n %s, want\n %s", got, want)
	}
	// Figure 1(iii) brackets.
	checks := map[int][2]int{vA: {1, 24}, vF: {2, 23}, vG: {4, 21}, vE: {6, 19},
		vB: {8, 17}, vC: {10, 15}, vD: {12, 13}}
	for v, fl := range checks {
		if fo.F(v) != fl[0] || fo.L(v) != fl[1] {
			t.Fatalf("%s: f/l = %d/%d, want %d/%d", figNames[v], fo.F(v), fo.L(v), fl[0], fl[1])
		}
	}
	if !fo.SameTree(vA, vD) || fo.CompSize(vA) != 7 {
		t.Fatal("components not merged")
	}
}

func figure2Forest() *Forest {
	fo := NewForest(7)
	fo.BuildFromTree(map[int][]int{
		vA: {vB, vF}, vB: {vA, vC, vE}, vC: {vB, vD}, vD: {vC}, vE: {vB},
		vF: {vA, vG}, vG: {vF},
	}, vA)
	return fo
}

func TestFigure2InitialTour(t *testing.T) {
	fo := figure2Forest()
	if err := fo.Validate(); err != nil {
		t.Fatal(err)
	}
	want := "[a,b,b,c,c,d,d,c,c,b,b,e,e,b,b,a,a,f,f,g,g,f,f,a]"
	if got := toNames(fo.TourOf(vA)); got != want {
		t.Fatalf("tour = %s, want %s", got, want)
	}
	checks := map[int][2]int{vA: {1, 24}, vB: {2, 15}, vC: {4, 9}, vD: {6, 7},
		vE: {12, 13}, vF: {18, 23}, vG: {20, 21}}
	for v, fl := range checks {
		if fo.F(v) != fl[0] || fo.L(v) != fl[1] {
			t.Fatalf("%s: f/l = %d/%d, want %d/%d", figNames[v], fo.F(v), fo.L(v), fl[0], fl[1])
		}
	}
}

func TestFigure2Delete(t *testing.T) {
	fo := figure2Forest()
	fo.Cut(vA, vB)
	if err := fo.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := toNames(fo.TourOf(vB)); got != "[b,c,c,d,d,c,c,b,b,e,e,b]" {
		t.Fatalf("subtree tour = %s", got)
	}
	if got := toNames(fo.TourOf(vA)); got != "[a,f,f,g,g,f,f,a]" {
		t.Fatalf("rest tour = %s", got)
	}
	if fo.SameTree(vA, vB) {
		t.Fatal("components not split")
	}
	if fo.CompSize(vA) != 3 || fo.CompSize(vB) != 4 {
		t.Fatalf("sizes = %d, %d", fo.CompSize(vA), fo.CompSize(vB))
	}
}

// TestSeqOpsMatchFigures drives the independent Seq implementation through
// the same figure scenarios.
func TestSeqOpsMatchFigures(t *testing.T) {
	t1 := BuildSeq(map[int][]int{vB: {vC, vE}, vC: {vB, vD}, vD: {vC}, vE: {vB}}, vB)
	t2 := BuildSeq(map[int][]int{vA: {vF}, vF: {vA, vG}, vG: {vF}}, vA)
	if err := t1.Valid(); err != nil {
		t.Fatal(err)
	}
	t1.Reroot(vE)
	if got := t1.Render(figNames); got != "[e,b,b,c,c,d,d,c,c,b,b,e]" {
		t.Fatalf("seq reroot = %s", got)
	}
	merged := LinkSeq(t2, vG, t1, vE)
	want := "[a,f,f,g,g,e,e,b,b,c,c,d,d,c,c,b,b,e,e,g,g,f,f,a]"
	if got := merged.Render(figNames); got != want {
		t.Fatalf("seq link = %s, want %s", got, want)
	}
	if err := merged.Valid(); err != nil {
		t.Fatal(err)
	}
	rest, sub := CutSeq(merged, vG, vE)
	if err := rest.Valid(); err != nil {
		t.Fatal(err)
	}
	if err := sub.Valid(); err != nil {
		t.Fatal(err)
	}
	if rest.Render(figNames) != "[a,f,f,g,g,f,f,a]" {
		t.Fatalf("seq cut rest = %s", rest.Render(figNames))
	}
	if sub.Render(figNames) != "[e,b,b,c,c,d,d,c,c,b,b,e]" {
		t.Fatalf("seq cut sub = %s", sub.Render(figNames))
	}
}

func TestSeqBrackets(t *testing.T) {
	t2 := BuildSeq(map[int][]int{vA: {vF}, vF: {vA, vG}, vG: {vF}}, vA)
	got := t2.Brackets([]int{vA, vF, vG}, figNames)
	if got != "a[1,8] f[2,7] g[4,5]" {
		t.Fatalf("brackets = %q", got)
	}
}

func TestRerootShiftIsBijection(t *testing.T) {
	f := func(sizeRaw, lyRaw uint8) bool {
		size := int(sizeRaw)%20 + 2
		L := 4 * (size - 1)
		ly := int(lyRaw)%L + 1
		s := Shift{Kind: ShiftReroot, A: L, B: ly}
		seen := make(map[int]bool, L)
		for i := 1; i <= L; i++ {
			j := s.Apply(i)
			if j < 1 || j > L || seen[j] {
				return false
			}
			seen[j] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShiftKindStrings(t *testing.T) {
	kinds := []ShiftKind{ShiftReroot, ShiftLinkGuest, ShiftLinkHost, ShiftCutSub, ShiftCutRest}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "?" || seen[s] {
			t.Fatalf("bad or duplicate name %q", s)
		}
		seen[s] = true
	}
}

// dsu is a minimal union-find used as ground truth for the partitions.
type dsu struct{ p []int }

func newDSU(n int) *dsu {
	d := &dsu{p: make([]int, n)}
	for i := range d.p {
		d.p[i] = i
	}
	return d
}
func (d *dsu) find(x int) int {
	for d.p[x] != x {
		d.p[x] = d.p[d.p[x]]
		x = d.p[x]
	}
	return x
}
func (d *dsu) union(a, b int) { d.p[d.find(a)] = d.find(b) }

// TestRandomLinkCutAgainstOracle performs long random link/cut sequences,
// validating full forest invariants and the partition after every step.
func TestRandomLinkCutAgainstOracle(t *testing.T) {
	const n = 24
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fo := NewForest(n)
		type edge struct{ u, v int }
		var treeEdges []edge

		for step := 0; step < 300; step++ {
			if len(treeEdges) == 0 || (rng.Intn(2) == 0 && len(treeEdges) < n-1) {
				// Try to link two random vertices in different trees.
				u, v := rng.Intn(n), rng.Intn(n)
				if u == v || fo.SameTree(u, v) {
					continue
				}
				shifts := fo.Link(u, v)
				if len(shifts) == 0 || len(shifts) > 3 {
					t.Fatalf("link emitted %d shifts", len(shifts))
				}
				treeEdges = append(treeEdges, edge{u, v})
			} else {
				i := rng.Intn(len(treeEdges))
				e := treeEdges[i]
				treeEdges[i] = treeEdges[len(treeEdges)-1]
				treeEdges = treeEdges[:len(treeEdges)-1]
				shifts, newComp := fo.Cut(e.u, e.v)
				if len(shifts) != 3 {
					t.Fatalf("cut emitted %d shifts", len(shifts))
				}
				if fo.Comp(e.u) != newComp && fo.Comp(e.v) != newComp {
					t.Fatal("cut: neither endpoint in new component")
				}
			}
			if err := fo.Validate(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			// Partition ground truth.
			d := newDSU(n)
			for _, e := range treeEdges {
				d.union(e.u, e.v)
			}
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					if (d.find(u) == d.find(v)) != fo.SameTree(u, v) {
						t.Fatalf("seed %d step %d: partition mismatch at (%d,%d)", seed, step, u, v)
					}
				}
			}
		}
	}
}

// TestAncestorAndPathEdge checks IsAncestor and PathEdgeTest against a
// brute-force parent-pointer computation on random trees.
func TestAncestorAndPathEdge(t *testing.T) {
	const n = 16
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		fo := NewForest(n)
		parent := make([]int, n)
		parent[0] = -1
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v)
			fo.Link(parent[v], v)
		}
		// Brute-force ancestry from parent pointers... but Link rebuilds
		// arbitrary roots, so derive ancestry from the forest's own tour
		// and check consistency with path connectivity instead: u is an
		// ancestor of v iff u lies on the tree path from the root to v.
		tour := fo.TourOf(0)
		root := tour.Root()
		// Build adjacency and compute paths by BFS.
		adj := make([][]int, n)
		for v := 0; v < n; v++ {
			adj[v] = fo.TreeNeighbors(v)
		}
		par := make([]int, n)
		for i := range par {
			par[i] = -2
		}
		par[root] = -1
		queue := []int{root}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if par[w] == -2 {
					par[w] = v
					queue = append(queue, w)
				}
			}
		}
		isAnc := func(u, v int) bool {
			for v != -1 {
				if v == u {
					return true
				}
				v = par[v]
			}
			return false
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if fo.IsAncestor(u, v) != isAnc(u, v) {
					t.Fatalf("seed %d: IsAncestor(%d,%d) mismatch", seed, u, v)
				}
			}
		}
		// PathEdgeTest: edge (w,par[w]) is on path(x,y) iff it separates
		// x from y, i.e. exactly one of x,y is in w's subtree.
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				for w := 0; w < n; w++ {
					if par[w] < 0 {
						continue
					}
					want := isAnc(w, x) != isAnc(w, y)
					if got := fo.PathEdgeTest(w, par[w], x, y); got != want {
						t.Fatalf("seed %d: PathEdgeTest(%d-%d, %d, %d) = %v want %v",
							seed, w, par[w], x, y, got, want)
					}
				}
			}
		}
	}
}

func TestLinkPanicsOnSameTree(t *testing.T) {
	fo := NewForest(3)
	fo.Link(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fo.Link(1, 0)
}

func TestCutPanicsOnNonEdge(t *testing.T) {
	fo := NewForest(3)
	fo.Link(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fo.Cut(0, 2)
}

func TestTwoVertexTree(t *testing.T) {
	fo := NewForest(2)
	fo.Link(0, 1)
	if got := fo.TourOf(0).Slice(); !reflect.DeepEqual(got, []int{0, 1, 1, 0}) {
		t.Fatalf("tour = %v", got)
	}
	if fo.F(0) != 1 || fo.L(0) != 4 || fo.F(1) != 2 || fo.L(1) != 3 {
		t.Fatal("f/l wrong for 2-vertex tree")
	}
	fo.Cut(0, 1)
	if fo.SameTree(0, 1) {
		t.Fatal("still same tree after cut")
	}
	if fo.F(0) != 0 || fo.L(1) != 0 {
		t.Fatal("singletons should have f=l=0")
	}
	if err := fo.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInSubtreeSingleton(t *testing.T) {
	if !InSubtree(0, 0, 0, 0) {
		t.Fatal("singleton inside itself")
	}
	if InSubtree(2, 3, 0, 0) {
		t.Fatal("non-singleton not inside a singleton")
	}
	if !InSubtree(4, 9, 2, 15) {
		t.Fatal("nested interval")
	}
	if InSubtree(2, 15, 4, 9) {
		t.Fatal("containing interval is not contained")
	}
}

// TestBuildSeqRandomTreesValid: canonical tours of random trees are valid
// and every vertex appears exactly 2·deg times.
func TestBuildSeqRandomTreesValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		adj := map[int][]int{}
		for v := 1; v < n; v++ {
			p := rng.Intn(v)
			adj[p] = append(adj[p], v)
			adj[v] = append(adj[v], p)
		}
		seq := BuildSeq(adj, 0)
		if seq.Valid() != nil || seq.Len() != 4*(n-1) {
			return false
		}
		counts := map[int]int{}
		for _, v := range seq.Slice() {
			counts[v]++
		}
		for v := 0; v < n; v++ {
			if counts[v] != 2*len(adj[v]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestForestBuildMatchesSeq: BuildFromTree must agree with BuildSeq on
// every position assignment, for random trees.
func TestForestBuildMatchesSeq(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		adj := map[int][]int{}
		for v := 1; v < n; v++ {
			p := rng.Intn(v)
			adj[p] = append(adj[p], v)
			adj[v] = append(adj[v], p)
		}
		fo := NewForest(n)
		fo.BuildFromTree(adj, 0)
		if fo.Validate() != nil {
			return false
		}
		want := BuildSeq(adj, 0).Slice()
		got := fo.TourOf(0).Slice()
		if len(want) != len(got) {
			return false
		}
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestCutRepairMapsToSameVertex: the repair shift must send the removed
// arc positions to surviving appearances of the same vertices — the
// property anchors rely on.
func TestCutRepairMapsToSameVertex(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed + 500))
		n := 4 + int(seed)
		fo := NewForest(n)
		type e struct{ u, v int }
		var edges []e
		for v := 1; v < n; v++ {
			p := rng.Intn(v)
			fo.Link(p, v)
			edges = append(edges, e{p, v})
		}
		pre := fo.TourOf(0).Slice() // full tour before the cut
		x := edges[rng.Intn(len(edges))]
		shifts, _ := fo.Cut(x.u, x.v)
		repair := shifts[0]
		if repair.Kind != ShiftCutRepair {
			t.Fatalf("first shift is %v", repair.Kind)
		}
		fy, ly := repair.A, repair.B
		for _, pos := range []int{fy - 1, fy, ly, ly + 1} {
			vert := pre[pos-1]
			np := repair.Apply(pos)
			if np == 0 {
				continue // singleton: vertex has no surviving appearance
			}
			if pre[np-1] != vert {
				t.Fatalf("seed %d: repair sent position %d (vertex %d) to %d (vertex %d)",
					seed, pos, vert, np, pre[np-1])
			}
		}
	}
}
