package dyncon

import (
	"math/rand"
	"testing"

	"dmpc/internal/graph"
)

func TestPreprocessArbitraryGraphThenUpdates(t *testing.T) {
	const n = 28
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed + 60))
		g := graph.GNM(n, 50, 1, rng)
		d := New(Config{N: n, Mode: CC, ExpectedEdges: 200})
		res := d.Preprocess(g)
		if res.Rounds <= 0 {
			t.Fatal("preprocessing should cost rounds")
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("seed %d after preprocess: %v", seed, err)
		}
		checkPartition(t, d, g, "preprocess")
		// Dynamic updates on top of the preprocessed state.
		for step, up := range graph.RandomStream(n, 150, 0.5, 1, rng) {
			// The stream generator starts from an empty graph; skip
			// updates that collide with the preprocessed edges.
			if up.Op == graph.Insert && g.Has(up.U, up.V) {
				continue
			}
			if up.Op == graph.Delete && !g.Has(up.U, up.V) {
				continue
			}
			if up.Op == graph.Insert {
				d.Insert(up.U, up.V, 1)
			} else {
				d.Delete(up.U, up.V)
			}
			g.Apply(up)
			if err := d.Validate(); err != nil {
				t.Fatalf("seed %d step %d (%v): %v", seed, step, up, err)
			}
			checkPartition(t, d, g, up.String())
		}
	}
}

func TestPreprocessDeleteForestEdges(t *testing.T) {
	// Deleting preprocessed tree edges must trigger replacement searches
	// over the preprocessed non-tree records.
	const n = 20
	rng := rand.New(rand.NewSource(77))
	g := graph.GNM(n, 40, 1, rng)
	d := New(Config{N: n, Mode: CC, ExpectedEdges: 200})
	d.Preprocess(g)
	for _, e := range d.ForestEdges() {
		d.Delete(e.U, e.V)
		g.Delete(e.U, e.V)
		if err := d.Validate(); err != nil {
			t.Fatalf("after deleting (%d,%d): %v", e.U, e.V, err)
		}
		checkPartition(t, d, g, "forest-delete")
	}
}

func TestPreprocessMSTExact(t *testing.T) {
	const n = 22
	rng := rand.New(rand.NewSource(5))
	g := graph.GNM(n, 60, 40, rng)
	d := New(Config{N: n, Mode: MST, Eps: 0, ExpectedEdges: 240})
	d.Preprocess(g)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := d.ForestWeight(), graph.MSFWeight(g); got != want {
		t.Fatalf("preprocessed MSF weight %d, Kruskal %d", got, want)
	}
	// Updates keep it exact.
	for step, up := range graph.RandomStream(n, 120, 0.5, 40, rng) {
		if up.Op == graph.Insert && g.Has(up.U, up.V) {
			continue
		}
		if up.Op == graph.Delete && !g.Has(up.U, up.V) {
			continue
		}
		if up.Op == graph.Insert {
			d.Insert(up.U, up.V, up.W)
		} else {
			d.Delete(up.U, up.V)
		}
		g.Apply(up)
		if got, want := d.ForestWeight(), graph.MSFWeight(g); got != want {
			t.Fatalf("step %d (%v): weight %d want %d", step, up, got, want)
		}
	}
}

func TestPreprocessMSTBucketedApprox(t *testing.T) {
	const n = 24
	eps := 0.3
	rng := rand.New(rand.NewSource(9))
	g := graph.GNM(n, 70, 500, rng)
	d := New(Config{N: n, Mode: MST, Eps: eps, ExpectedEdges: 280})
	d.Preprocess(g)
	opt := float64(graph.MSFWeight(g))
	lower := float64(d.ForestWeight())
	if lower > opt {
		t.Fatalf("bucketed weight %v above optimum %v", lower, opt)
	}
	if opt > lower*(1+eps)+float64(n)*(1+eps) {
		t.Fatalf("preprocessing approximation violated: opt %v, bucketed %v", opt, lower)
	}
}
