package dmpc

import (
	"math"
	"math/rand"
	"testing"

	"dmpc/internal/graph"
)

// fakeApply returns a scripted BatchStats per call, recording the batch
// sizes it saw — a deterministic stand-in for an algorithm whose amortized
// rounds/update follow a known curve.
type fakeApply struct {
	sizes []int
	// roundsPerUpdate(k) models the amortized cost at chunk size k.
	cost func(k int) float64
	// maxWords(k) models the per-round word pressure at chunk size k.
	words func(k int) int
}

func (f *fakeApply) apply(b Batch) BatchStats {
	f.sizes = append(f.sizes, len(b))
	k := len(b)
	return BatchStats{
		Updates:  k,
		Rounds:   int(f.cost(k) * float64(k)),
		MaxWords: f.words(k),
	}
}

// TestAutoBatcherFindsKnee pins the probe-and-settle policy on a scripted
// cost curve whose knee is at k=64: amortized rounds improve up to 64 and
// get measurably worse beyond it (saturation overhead), so the driver must
// grow 8→16→32→64, observe the worse window at 128, step back to 64 and
// hold there. ProbeBatches is 1 so the scripted trajectory is exact;
// window smoothing is pinned separately by
// TestAutoBatcherWindowSmoothsNoise.
func TestAutoBatcherFindsKnee(t *testing.T) {
	f := &fakeApply{
		cost: func(k int) float64 {
			if k <= 64 {
				return 64.0 / float64(k) // doubling k halves the cost up to the knee
			}
			return 1.4 // measurably worse beyond it
		},
		words: func(int) int { return 10 },
	}
	ab := NewAutoBatcher(AutoBatcherConfig{Apply: f.apply, StartK: 8, MaxK: 512, ProbeBatches: 1, WarmupBatches: -1})
	for i := 0; i < 64*20; i++ {
		ab.Push(Update{Op: Insert, U: i, V: i + 1})
	}
	ks := ab.Ks()
	// 128 appears twice: the first bad window is a strike that re-measures,
	// the second settles back to the best-measured k.
	wantPrefix := []int{8, 16, 32, 64, 128, 128}
	for i, w := range wantPrefix {
		if i >= len(ks) || ks[i] != w {
			t.Fatalf("probe trajectory %v, want prefix %v", ks, wantPrefix)
		}
	}
	for i := len(wantPrefix); i < len(ks); i++ {
		if ks[i] != 64 {
			t.Fatalf("batch %d ran at k=%d after settling, want the knee 64 (trajectory %v)", i, ks[i], ks)
		}
	}
	if ab.K() != 64 {
		t.Fatalf("settled K() = %d, want 64", ab.K())
	}
}

// TestAutoBatcherWindowSmoothsNoise pins why each k is judged on a window
// of ProbeBatches batches rather than a single one: the first batch at
// k=16 is scripted to be anomalously expensive (a workload spike, the
// situation that used to settle the search prematurely), but the window
// average stays within Margin of k=8's, so the probe must keep growing
// past 16.
func TestAutoBatcherWindowSmoothsNoise(t *testing.T) {
	f := &fakeApply{}
	f.cost = func(k int) float64 {
		base := 64.0 / float64(k)
		if k == 16 && f.sizes[len(f.sizes)-1] == 16 && callCount(f.sizes, 16) == 1 {
			return base * 4 // one bad batch right after the doubling
		}
		return base
	}
	f.words = func(int) int { return 10 }
	ab := NewAutoBatcher(AutoBatcherConfig{Apply: f.apply, StartK: 8, MaxK: 64, ProbeBatches: 3, WarmupBatches: -1})
	for i := 0; i < 64*12; i++ {
		ab.Push(Update{Op: Insert, U: i, V: i + 1})
	}
	reached32 := false
	for _, k := range ab.Ks() {
		if k >= 32 {
			reached32 = true
		}
	}
	if !reached32 {
		t.Fatalf("one noisy batch at k=16 stopped the probe: trajectory %v", ab.Ks())
	}
}

// callCount reports how many recorded batches ran at size k.
func callCount(sizes []int, k int) int {
	n := 0
	for _, s := range sizes {
		if s == k {
			n++
		}
	}
	return n
}

// TestAutoBatcherWordCapForcesShrink pins the S-cap feedback: when the
// measured MaxWords exceeds CapWords the driver halves k immediately and
// stops probing upward, whatever the round trend said.
func TestAutoBatcherWordCapForcesShrink(t *testing.T) {
	f := &fakeApply{
		cost:  func(k int) float64 { return 64.0 / float64(k) }, // rounds always favor growth
		words: func(k int) int { return 10 * k },                // but words grow with k
	}
	ab := NewAutoBatcher(AutoBatcherConfig{Apply: f.apply, StartK: 32, CapWords: 200})
	for i := 0; i < 32*8; i++ {
		ab.Push(Update{Op: Insert, U: i, V: i + 1})
	}
	// k=32 → 320 words > 200: halve to 16 and settle (160 words fits).
	ks := ab.Ks()
	if len(ks) < 3 || ks[0] != 32 || ks[1] != 16 {
		t.Fatalf("cap trajectory %v, want 32 then 16", ks)
	}
	for i := 1; i < len(ks); i++ {
		if ks[i] != 16 {
			t.Fatalf("batch %d ran at k=%d, want 16 after the cap shrink (trajectory %v)", i, ks[i], ks)
		}
	}
}

// TestAutoBatcherReprobeTracksDrift pins the periodic re-probe: a
// long-lived stream whose cost curve drifts must not stay pinned at the
// stale knee. Phase 1 has the knee at k=64 (halving costs up to it); after
// the drift, rounds grow with k, so small batches win. Each re-probe
// period steps k down one notch, discards the stale best-window baseline,
// and re-runs the climb — over a few periods k must walk down from 64 and
// settle low, which the pre-drift baseline would have forbidden (every
// post-drift window looks "worse than best" forever).
func TestAutoBatcherReprobeTracksDrift(t *testing.T) {
	f := &fakeApply{}
	applied := 0
	f.cost = func(k int) float64 {
		if applied < 1500 {
			if k <= 64 {
				return 64.0 / float64(k) // phase 1: knee at 64
			}
			return 1.4
		}
		return float64(k) / 4 // phase 2: cost grows with k — small batches win
	}
	f.words = func(int) int { return 10 }
	ab := NewAutoBatcher(AutoBatcherConfig{
		Apply: func(b Batch) BatchStats {
			st := f.apply(b)
			applied += len(b)
			return st
		},
		StartK: 8, MaxK: 128, ProbeBatches: 1, WarmupBatches: -1, ReprobeEvery: 4,
	})
	for i := 0; i < 8000; i++ {
		ab.Push(Update{Op: Insert, U: i, V: i + 1})
	}
	ks := ab.Ks()
	settledAtKnee := false
	for i, k := range ks {
		if k == 64 && i+1 < len(ks) && ks[i+1] == 64 {
			settledAtKnee = true
		}
	}
	if !settledAtKnee {
		t.Fatalf("phase 1 never settled at the knee 64: trajectory %v", ks)
	}
	if got := ab.K(); got > 8 {
		t.Fatalf("after the drift the re-probe left k at %d, want <= 8 (trajectory tail %v)",
			got, ks[maxi(0, len(ks)-12):])
	}
}

// TestAutoBatcherReprobeStableWorkload pins that re-probing a stable
// workload is safe: the search steps down, re-measures, climbs back and
// settles at the same knee instead of wandering.
func TestAutoBatcherReprobeStableWorkload(t *testing.T) {
	f := &fakeApply{
		cost: func(k int) float64 {
			if k <= 32 {
				return 32.0 / float64(k)
			}
			return 1.5
		},
		words: func(int) int { return 10 },
	}
	ab := NewAutoBatcher(AutoBatcherConfig{
		Apply: f.apply, StartK: 8, MaxK: 128,
		ProbeBatches: 1, WarmupBatches: -1, ReprobeEvery: 3,
	})
	for i := 0; i < 32*200; i++ {
		ab.Push(Update{Op: Insert, U: i, V: i + 1})
	}
	ks := ab.Ks()
	// A probe may be in flight when the stream ends, so judge the cycle,
	// not the final instant: after the first settle the search must stay
	// within one notch of the knee, and every re-probe climb must re-settle
	// at 32 (the two-strike step-back from 64 to 32).
	first := -1
	for i := 0; i+1 < len(ks); i++ {
		if ks[i] == 32 && ks[i+1] == 32 {
			first = i
			break
		}
	}
	if first < 0 {
		t.Fatalf("stable workload never settled at the knee 32: trajectory %v", ks)
	}
	resettles := 0
	for i := first; i < len(ks); i++ {
		if ks[i] != 16 && ks[i] != 32 && ks[i] != 64 {
			t.Fatalf("re-probe wandered to k=%d on a stable workload (trajectory tail %v)",
				ks[i], ks[maxi(0, i-6):])
		}
		if i >= 2 && ks[i] == 32 && ks[i-1] == 64 && ks[i-2] == 64 {
			resettles++ // two strikes at 64, stepped back to the knee
		}
	}
	if resettles < 2 {
		t.Fatalf("only %d re-probe cycles re-settled at the knee (trajectory %v)", resettles, ks)
	}
}

// TestAutoBatcherCapSettleNeverReprobes pins that a word-cap settle is
// final: re-opening the search would grow k back into the budget violation
// on a schedule.
func TestAutoBatcherCapSettleNeverReprobes(t *testing.T) {
	f := &fakeApply{
		cost:  func(k int) float64 { return 64.0 / float64(k) }, // rounds always favor growth
		words: func(k int) int { return 10 * k },
	}
	ab := NewAutoBatcher(AutoBatcherConfig{
		Apply: f.apply, StartK: 32, CapWords: 200, ReprobeEvery: 2,
	})
	for i := 0; i < 32*40; i++ {
		ab.Push(Update{Op: Insert, U: i, V: i + 1})
	}
	for i, k := range ab.Ks() {
		if i > 0 && k != 16 {
			t.Fatalf("batch %d ran at k=%d after the cap settle, want 16 forever (trajectory %v)", i, k, ab.Ks())
		}
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestAutoBatcherPartialFlush pins that a short tail batch is applied and
// recorded but never drives adaptation.
func TestAutoBatcherPartialFlush(t *testing.T) {
	f := &fakeApply{
		cost:  func(k int) float64 { return 1000 }, // any full batch would stall the probe
		words: func(int) int { return 1 },
	}
	ab := NewAutoBatcher(AutoBatcherConfig{Apply: f.apply, StartK: 8})
	for i := 0; i < 3; i++ {
		ab.Push(Update{Op: Insert, U: i, V: i + 1})
	}
	if _, ok := ab.Flush(); !ok {
		t.Fatal("Flush dropped a partial batch")
	}
	if _, ok := ab.Flush(); ok {
		t.Fatal("Flush applied an empty batch")
	}
	if got := ab.K(); got != 8 {
		t.Fatalf("partial flush moved K to %d", got)
	}
	if len(f.sizes) != 1 || f.sizes[0] != 3 {
		t.Fatalf("applied sizes %v, want [3]", f.sizes)
	}
}

// TestAutoBatcherOnConnectivity drives the real §5 batch pipeline: the
// driver must grow k away from its start, and its overall amortized
// rounds/update must beat running every batch at the starting size.
func TestAutoBatcherOnConnectivity(t *testing.T) {
	const n = 96
	stream := graph.RandomStream(n, 512, 0.55, 1, rand.New(rand.NewSource(5)))

	cc := NewConnectivity(n, 5*n)
	ab := NewAutoBatcher(AutoBatcherConfig{
		Apply:    cc.ApplyBatch,
		CapWords: cc.Cluster().Machines() * cc.Cluster().MemWords(),
		StartK:   8,
		MaxK:     256,
	})
	ab.Run(stream)
	grew := false
	for _, k := range ab.Ks() {
		if k > 8 {
			grew = true
		}
	}
	if !grew {
		t.Fatalf("AutoBatcher never grew k: trajectory %v", ab.Ks())
	}
	var rounds, upd int
	for _, st := range ab.History() {
		rounds += st.Rounds
		upd += st.Updates
	}
	auto := float64(rounds) / float64(upd)

	fixed := NewConnectivity(n, 5*n)
	var fRounds, fUpd int
	for _, b := range Chunk(stream, 8) {
		st := fixed.ApplyBatch(b)
		fRounds += st.Rounds
		fUpd += st.Updates
	}
	fixed8 := float64(fRounds) / float64(fUpd)
	if auto >= fixed8 {
		t.Fatalf("adaptive amortized %.3f not better than fixed k=8 %.3f (trajectory %v)", auto, fixed8, ab.Ks())
	}
	if v := cc.Cluster().Stats().Violations; v != 0 {
		t.Fatalf("%d cluster constraint violations under AutoBatcher", v)
	}
}

// TestAutoBatcherMixedStream pins the mixed-mode driver: a half-reads op
// stream flows through a Pipeline front door, the knee search still grows
// k (now judged on amortized rounds per *op*), every query is answered
// exactly as a fresh sequential replica answers it, and the growing
// trajectory beats the starting chunk size on rounds/op.
func TestAutoBatcherMixedStream(t *testing.T) {
	const n = 96
	rng := rand.New(rand.NewSource(6))
	updates := graph.RandomStream(n, 384, 0.55, 1, rng)
	ops := graph.MixedStream(updates, 0.5, func(r *rand.Rand) Op {
		return OpQConnected(r.Intn(n), r.Intn(n))
	}, rng)

	cc := NewConnectivity(n, 5*n)
	ab := NewAutoBatcher(AutoBatcherConfig{
		ApplyOps: cc.Apply,
		CapWords: cc.Cluster().Machines() * cc.Cluster().MemWords(),
		StartK:   8,
		MaxK:     256,
	})
	got := ab.RunOps(ops)

	grew := false
	for _, k := range ab.Ks() {
		if k > 8 {
			grew = true
		}
	}
	if !grew {
		t.Fatalf("mixed AutoBatcher never grew k: trajectory %v", ab.Ks())
	}
	if len(ab.MixedHistory()) != len(ab.History()) || len(ab.Ks()) != len(ab.History()) {
		t.Fatalf("histories misaligned: %d mixed, %d batch, %d ks",
			len(ab.MixedHistory()), len(ab.History()), len(ab.Ks()))
	}

	// Bit-identical answers vs sequential replay at the same positions.
	ref := NewConnectivity(n, 5*n)
	var want Results
	for _, op := range ops {
		switch op.Kind {
		case OpInsert:
			ref.Insert(op.U, op.V)
		case OpDelete:
			ref.Delete(op.U, op.V)
		case OpConnected:
			want = append(want, Answer{Bool: ref.Connected(op.U, op.V)})
		}
	}
	if len(got) != len(want) {
		t.Fatalf("%d answers, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("answer %d is %+v, want %+v", i, got[i], want[i])
		}
	}

	var rounds, opsN int
	for _, st := range ab.MixedHistory() {
		rounds += st.Rounds()
		opsN += st.Ops
	}
	auto := float64(rounds) / float64(opsN)

	fixed := NewConnectivity(n, 5*n)
	var fRounds, fOps int
	for _, chunk := range SplitOps(ops, 8) {
		_, st := fixed.Apply(chunk)
		fRounds += st.Rounds()
		fOps += st.Ops
	}
	fixed8 := float64(fRounds) / float64(fOps)
	if auto >= fixed8 {
		t.Fatalf("adaptive rounds/op %.3f not better than fixed k=8 %.3f (trajectory %v)", auto, fixed8, ab.Ks())
	}
	if v := cc.Cluster().Stats().Violations; v != 0 {
		t.Fatalf("%d cluster violations", v)
	}
}

// TestAutoBatcherModeGuards pins the configuration contract: exactly one
// of Apply and ApplyOps, and queries only in ApplyOps mode.
func TestAutoBatcherModeGuards(t *testing.T) {
	wantPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	wantPanic("neither mode", func() { NewAutoBatcher(AutoBatcherConfig{}) })
	wantPanic("both modes", func() {
		NewAutoBatcher(AutoBatcherConfig{
			Apply:    func(Batch) BatchStats { return BatchStats{} },
			ApplyOps: func([]Op) (Results, MixedStats) { return nil, MixedStats{} },
		})
	})
	ab := NewAutoBatcher(AutoBatcherConfig{Apply: func(Batch) BatchStats { return BatchStats{} }})
	wantPanic("query in update mode", func() { ab.PushOp(OpQMateOf(1)) })
}

// TestAutoBatcherFlushOps pins the mixed-tail contract: FlushOps returns
// the partial chunk's answers, and Flush refuses to discard them.
func TestAutoBatcherFlushOps(t *testing.T) {
	cc := NewConnectivity(16, 64)
	ab := NewAutoBatcher(AutoBatcherConfig{ApplyOps: cc.Apply, StartK: 8})
	ab.PushOp(OpIns(0, 1, 1))
	ab.PushOp(OpQConnected(0, 1))
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Flush with buffered queries did not panic")
			}
		}()
		ab.Flush()
	}()
	res, st, ok := ab.FlushOps()
	if !ok || len(res) != 1 || !res[0].Bool || st.Updates != 1 {
		t.Fatalf("FlushOps = (%v, %+v, %v), want the buffered query answered", res, st, ok)
	}
	if _, _, ok := ab.FlushOps(); ok {
		t.Fatal("FlushOps on an empty buffer reported a flush")
	}
	// Update-only tails still drain through plain Flush.
	ab.PushOp(OpIns(1, 2, 1))
	if _, ok := ab.Flush(); !ok {
		t.Fatal("Flush on an update-only tail failed")
	}
}

// TestAutoBatcherTargetP99CapsK pins the tail constraint on a scripted
// curve where amortized rounds/update keep improving with k forever
// (rounds per chunk grow like sqrt(k)), so the unconstrained search
// climbs to MaxK — but the worst-case p99 (every op waits its chunk's
// whole window) crosses TargetP99Rounds at k=32, so the constrained
// search must back off to 16 and hold there: minimize rounds/op subject
// to the tail bound.
func TestAutoBatcherTargetP99CapsK(t *testing.T) {
	mkFake := func() *fakeApply {
		return &fakeApply{
			// rounds(k) = 8·sqrt(k): 22 at k=8, 32 at k=16, 45 at k=32.
			cost:  func(k int) float64 { return 8 / math.Sqrt(float64(k)) },
			words: func(int) int { return 10 },
		}
	}
	free := NewAutoBatcher(AutoBatcherConfig{
		Apply: mkFake().apply, StartK: 8, MaxK: 512, ProbeBatches: 1, WarmupBatches: -1,
	})
	bound := NewAutoBatcher(AutoBatcherConfig{
		Apply: mkFake().apply, StartK: 8, MaxK: 512, ProbeBatches: 1, WarmupBatches: -1,
		TargetP99Rounds: 40,
	})
	for i := 0; i < 512*8; i++ {
		up := Update{Op: Insert, U: i, V: i + 1}
		free.Push(up)
		bound.Push(up)
	}
	if free.K() != 512 {
		t.Fatalf("unconstrained search settled at %d, want MaxK 512", free.K())
	}
	if bound.K() != 16 {
		t.Fatalf("constrained search settled at %d, want 16 (trajectory %v)", bound.K(), bound.Ks())
	}
	for i, k := range bound.Ks() {
		if k > 32 {
			t.Fatalf("batch %d ran at k=%d, above the first tail violation (trajectory %v)",
				i, k, bound.Ks())
		}
	}
}

// TestAutoBatcherTargetP99Unachievable pins the degenerate case: when
// even MinK violates the bound, the search settles at MinK instead of
// thrashing.
func TestAutoBatcherTargetP99Unachievable(t *testing.T) {
	f := &fakeApply{
		cost:  func(k int) float64 { return 100 / float64(k) }, // 100 rounds per chunk at any k
		words: func(int) int { return 10 },
	}
	ab := NewAutoBatcher(AutoBatcherConfig{
		Apply: f.apply, StartK: 8, MinK: 2, MaxK: 64, ProbeBatches: 1, WarmupBatches: -1,
		TargetP99Rounds: 40,
	})
	for i := 0; i < 400; i++ {
		ab.Push(Update{Op: Insert, U: i, V: i + 1})
	}
	if ab.K() != 2 {
		t.Fatalf("unachievable bound settled at %d, want MinK 2 (trajectory %v)", ab.K(), ab.Ks())
	}
}

// TestAutoBatcherTailInfeasibleAtMinK pins the k=1 edge of the tail
// bound: when every chunk costs more rounds than TargetP99Rounds even at
// k=MinK=1, the search must settle terminally at 1 — MaxK must never
// reach 0 (a k of 0 would buffer forever and flush nothing), and the
// periodic re-probe must not re-open the climb into a violation loop.
// The violations that shaped the search stay visible through
// TailViolations/TailInfeasible instead of being swallowed.
func TestAutoBatcherTailInfeasibleAtMinK(t *testing.T) {
	f := &fakeApply{
		cost:  func(k int) float64 { return 100 / float64(k) }, // 100 rounds per chunk at any k
		words: func(int) int { return 10 },
	}
	ab := NewAutoBatcher(AutoBatcherConfig{
		Apply: f.apply, StartK: 4, MinK: 1, MaxK: 64, ProbeBatches: 1, WarmupBatches: -1,
		ReprobeEvery: 2, TargetP99Rounds: 40,
	})
	// 4 → 2 → 1 → infeasible: three violating windows, then settle.
	for i := 0; i < 16; i++ {
		ab.Push(Update{Op: Insert, U: i, V: i + 1})
	}
	if ab.K() != 1 {
		t.Fatalf("unachievable bound settled at %d, want MinK 1 (trajectory %v)", ab.K(), ab.Ks())
	}
	if !ab.TailInfeasible() {
		t.Fatalf("TailInfeasible() = false after violating at MinK (trajectory %v)", ab.Ks())
	}
	atSettle := ab.TailViolations()
	if atSettle == 0 {
		t.Fatal("TailViolations() = 0, want the violating windows reported")
	}
	// Many re-probe periods past the settle: every batch must run at k=1
	// (each push flushes immediately — k never hit 0) and no new
	// violations may accrue, i.e. the re-probe never re-opens the climb.
	before := len(ab.Ks())
	for i := 0; i < 40; i++ {
		if _, applied := ab.Push(Update{Op: Insert, U: 1000 + i, V: 1001 + i}); !applied {
			t.Fatalf("push %d after settling at k=1 did not flush a chunk", i)
		}
	}
	for i, k := range ab.Ks()[before:] {
		if k != 1 {
			t.Fatalf("batch %d after terminal settle ran at k=%d, want 1", before+i, k)
		}
	}
	if got := ab.TailViolations(); got != atSettle {
		t.Fatalf("TailViolations grew %d -> %d after terminal settle: re-probe re-opened the violation loop", atSettle, got)
	}
}

// TestAutoBatcherApplyChunk pins the externally-formed-chunk entry: full
// chunks feed the knee search exactly like Push-cut chunks, non-full
// chunks are recorded but never adapt, and the guards reject misuse.
func TestAutoBatcherApplyChunk(t *testing.T) {
	cc := NewConnectivity(32, 128)
	ab := NewAutoBatcher(AutoBatcherConfig{ApplyOps: cc.Apply, StartK: 4, ProbeBatches: 1, WarmupBatches: -1})
	// Partial chunks: recorded, no adaptation.
	for i := 0; i < 6; i += 2 {
		if _, st := ab.ApplyChunk([]Op{Ins(i, i+1), QConnected(i, i+1)}, false); st.Ops != 2 {
			t.Fatalf("chunk window covers %d ops, want 2", st.Ops)
		}
	}
	if ab.K() != 4 {
		t.Fatalf("non-full chunks adapted k to %d", ab.K())
	}
	if len(ab.MixedHistory()) != 3 || len(ab.Ks()) != 3 {
		t.Fatalf("chunks not recorded: %d windows, %d ks", len(ab.MixedHistory()), len(ab.Ks()))
	}
	// Full chunks drive the search: k grows off a full window.
	for k := ab.K(); ab.K() == k; {
		chunk := make([]Op, ab.K())
		for j := range chunk {
			chunk[j] = QComponentOf(j)
		}
		ab.ApplyChunk(chunk, true)
	}
	if ab.K() <= 4 {
		t.Fatalf("full chunks did not grow k: %d", ab.K())
	}
	wantPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	wantPanic("ApplyChunk in update mode", func() {
		up := NewAutoBatcher(AutoBatcherConfig{Apply: func(Batch) BatchStats { return BatchStats{} }})
		up.ApplyChunk([]Op{Ins(0, 1)}, false)
	})
	wantPanic("ApplyChunk with a dirty Push buffer", func() {
		ab.PushOp(Ins(20, 21))
		ab.ApplyChunk([]Op{Ins(22, 23)}, false)
	})
}
