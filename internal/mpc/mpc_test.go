package mpc

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// echoMachine forwards every received payload to a fixed target.
type echoMachine struct {
	target int
	seen   []any
}

func (e *echoMachine) HandleRound(ctx *Ctx, inbox []Message) {
	for _, m := range inbox {
		e.seen = append(e.seen, m.Payload)
		if e.target >= 0 {
			ctx.Send(e.target, m.Payload, m.Words)
		}
	}
}

func TestAutoConfig(t *testing.T) {
	for _, n := range []int{1, 10, 100, 10_000, 1_000_000} {
		cfg := Auto(n, 4)
		if cfg.MemWords < 16 {
			t.Fatalf("Auto(%d): S=%d too small", n, cfg.MemWords)
		}
		if cfg.Machines*cfg.MemWords < n {
			t.Fatalf("Auto(%d): total memory %d < input", n, cfg.Machines*cfg.MemWords)
		}
		// S should be Θ(√n): within constant factors for large n.
		if n >= 10_000 {
			root := math.Sqrt(float64(n))
			if float64(cfg.MemWords) < root || float64(cfg.MemWords) > 16*root {
				t.Fatalf("Auto(%d): S=%d not Θ(√n)=%.0f", n, cfg.MemWords, root)
			}
		}
	}
}

func TestRoundDeliversAndCounts(t *testing.T) {
	c := NewCluster(Config{Machines: 4, MemWords: 64})
	m0 := &echoMachine{target: 1}
	m1 := &echoMachine{target: -1}
	c.SetMachine(0, m0)
	c.SetMachine(1, m1)

	c.Send(Message{From: -1, To: 0, Payload: "hello", Words: 3})
	rs := c.Round()
	if rs.Active != 1 || rs.Words != 3 || rs.Messages != 1 {
		t.Fatalf("round 1 stats = %+v, want active=1 words=3 msgs=1", rs)
	}
	rs = c.Round()
	if rs.Active != 1 || rs.Words != 3 {
		t.Fatalf("round 2 stats = %+v, want active=1 words=3", rs)
	}
	if len(m1.seen) != 1 || m1.seen[0] != "hello" {
		t.Fatalf("machine 1 saw %v", m1.seen)
	}
	if !c.Quiescent() {
		t.Fatal("cluster should be quiescent after delivery chain ends")
	}
	if got := c.Stats().Rounds; got != 2 {
		t.Fatalf("total rounds = %d, want 2", got)
	}
}

func TestUpdateAccounting(t *testing.T) {
	c := NewCluster(Config{Machines: 3, MemWords: 64})
	c.SetMachine(0, &echoMachine{target: 1})
	c.SetMachine(1, &echoMachine{target: 2})
	c.SetMachine(2, &echoMachine{target: -1})

	c.BeginUpdate()
	c.Send(Message{To: 0, Payload: 1, Words: 2})
	c.Run(100)
	u := c.EndUpdate()
	if u.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3 (chain 0->1->2)", u.Rounds)
	}
	if u.MaxActive != 1 || u.MaxWords != 2 {
		t.Fatalf("update stats = %+v", u)
	}
	w := c.Stats().WorstUpdate()
	if w.Rounds != 3 {
		t.Fatalf("worst rounds = %d", w.Rounds)
	}
	r, a, wo := c.Stats().MeanUpdate()
	if r != 3 || a != 1 || wo != 2 {
		t.Fatalf("mean = %v %v %v", r, a, wo)
	}
}

// fanout broadcasts once when scheduled.
type fanout struct{ words int }

func (f *fanout) HandleRound(ctx *Ctx, inbox []Message) {
	if ctx.Round() == 0 {
		ctx.Broadcast("x", f.words, false)
	}
}

func TestBroadcastActivatesAll(t *testing.T) {
	const mu = 8
	c := NewCluster(Config{Machines: mu, MemWords: 64})
	c.SetMachine(0, &fanout{words: 1})
	for i := 1; i < mu; i++ {
		c.SetMachine(i, &echoMachine{target: -1})
	}
	c.Schedule(0)
	c.Round() // broadcast staged
	rs := c.Round()
	if rs.Active != mu-1 {
		t.Fatalf("active = %d, want %d", rs.Active, mu-1)
	}
	if rs.Words != mu-1 {
		t.Fatalf("words = %d, want %d", rs.Words, mu-1)
	}
}

func TestStrictIOCapPanics(t *testing.T) {
	c := NewCluster(Config{Machines: 2, MemWords: 4, Strict: true})
	c.SetMachine(0, &echoMachine{target: 1})
	c.Send(Message{To: 0, Payload: "big", Words: 10})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on I/O cap violation in strict mode")
		}
	}()
	c.Round()
}

func TestViolationCountedNonStrict(t *testing.T) {
	c := NewCluster(Config{Machines: 2, MemWords: 4})
	c.SetMachine(0, &echoMachine{target: 1})
	c.Send(Message{To: 0, Payload: "big", Words: 10})
	c.Round()
	if c.Stats().Violations != 1 {
		t.Fatalf("violations = %d, want 1", c.Stats().Violations)
	}
}

type memHog struct{ words int }

func (m *memHog) HandleRound(ctx *Ctx, inbox []Message) {}
func (m *memHog) MemWords() int                         { return m.words }

func TestMemoryCapEnforced(t *testing.T) {
	c := NewCluster(Config{Machines: 1, MemWords: 8})
	c.SetMachine(0, &memHog{words: 9})
	c.Schedule(0)
	c.Round()
	if c.Stats().Violations != 1 {
		t.Fatalf("violations = %d, want 1", c.Stats().Violations)
	}
	if c.Stats().PeakMemWords != 9 {
		t.Fatalf("peak = %d, want 9", c.Stats().PeakMemWords)
	}
}

func TestCommEntropyCoordinatorVsUniform(t *testing.T) {
	// Coordinator pattern: everything flows 1->0.
	coord := NewCluster(Config{Machines: 8, MemWords: 1024})
	coord.SetMachine(1, &echoMachine{target: 0})
	coord.SetMachine(0, &echoMachine{target: -1})
	for i := 0; i < 20; i++ {
		coord.Send(Message{To: 1, Payload: i, Words: 1})
		coord.Run(10)
	}

	// Uniform pattern: a ring where each machine forwards to the next.
	ring := NewCluster(Config{Machines: 8, MemWords: 1024})
	for i := 0; i < 8; i++ {
		ring.SetMachine(i, &echoMachine{target: (i + 1) % 8})
	}
	ring.Send(Message{To: 0, Payload: 0, Words: 1})
	ring.Run(40)

	hc, hr := coord.CommEntropy(), ring.CommEntropy()
	if hc >= hr {
		t.Fatalf("coordinator entropy %.3f should be below ring entropy %.3f", hc, hr)
	}
}

// TestDeterministicInboxOrder checks that handlers observe messages sorted
// by (sender, sequence) regardless of send interleaving.
type orderChecker struct {
	t    *testing.T
	fail *atomic.Bool
}

func (o *orderChecker) HandleRound(ctx *Ctx, inbox []Message) {
	last := -1
	lastSeq := -1
	for _, m := range inbox {
		if m.From < last || (m.From == last && m.seq < lastSeq) {
			o.fail.Store(true)
		}
		last, lastSeq = m.From, m.seq
	}
}

type multiSender struct{ n int }

func (s *multiSender) HandleRound(ctx *Ctx, inbox []Message) {
	for i := 0; i < s.n; i++ {
		ctx.Send(0, i, 1)
	}
}

func TestDeterministicInboxOrder(t *testing.T) {
	var fail atomic.Bool
	c := NewCluster(Config{Machines: 5, MemWords: 1024})
	c.SetMachine(0, &orderChecker{t: t, fail: &fail})
	for i := 1; i < 5; i++ {
		c.SetMachine(i, &multiSender{n: 5})
		c.Schedule(i)
	}
	c.Round()
	c.Round()
	if fail.Load() {
		t.Fatal("inbox order not deterministic")
	}
}

func TestQuickUpdateStatsAddMonotone(t *testing.T) {
	f := func(a, b uint8, w uint16) bool {
		var u UpdateStats
		r1 := RoundStats{Active: int(a), Words: int(w)}
		r2 := RoundStats{Active: int(b), Words: int(w) / 2}
		u.Add(r1)
		u.Add(r2)
		maxA := int(a)
		if int(b) > maxA {
			maxA = int(b)
		}
		return u.Rounds == 2 &&
			u.MaxActive == maxA &&
			u.SumActive == int(a)+int(b) &&
			u.SumWords == int(w)+int(w)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunStopsAtMaxRounds(t *testing.T) {
	// A self-perpetuating machine: always reschedules itself.
	c := NewCluster(Config{Machines: 1, MemWords: 64})
	c.SetMachine(0, machineFunc(func(ctx *Ctx, inbox []Message) { ctx.Schedule(0) }))
	c.Schedule(0)
	if n := c.Run(7); n != 7 {
		t.Fatalf("ran %d rounds, want 7", n)
	}
}

// machineFunc adapts a function to the Machine interface.
type machineFunc func(ctx *Ctx, inbox []Message)

func (f machineFunc) HandleRound(ctx *Ctx, inbox []Message) { f(ctx, inbox) }
