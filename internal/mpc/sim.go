package mpc

import "sync"

// SimBackend is the deterministic single-driver simulator loop — the
// correctness and accounting oracle. The driver goroutine orchestrates
// every round: it computes the active set, sorts each inbox, runs the
// handlers on short-lived goroutines bounded by the worker semaphore,
// and stages the staged messages in ascending sender order. Handler
// state is only ever touched by the machine's own handler, so results
// are independent of the worker bound (pinned by the determinism tests).
//
// Per-round memory is pooled: the worker semaphore, the active scratch
// and the Ctx slab are hoisted into the backend, slab slots are recycled
// (payload-cleared) by settle, and inbox backing arrays cycle through
// the shared msgPool — so a steady-state round's allocation bill is the
// handler goroutine spawns plus whatever the handlers themselves
// allocate (pinned by TestSteadyStateAllocsPerRound and
// BenchmarkRoundAllocs).
type SimBackend struct {
	backendBase
	workers int
	sem     chan struct{} // hoisted handler-concurrency semaphore
	slab    []Ctx         // pooled per-round contexts, positional over the active set
}

func newSimBackend(c *Cluster, workers int) *SimBackend {
	return &SimBackend{
		backendBase: newBackendBase(c),
		workers:     workers,
		sem:         make(chan struct{}, workers),
	}
}

// Round executes one synchronous round: delivers all pending messages,
// runs every active machine's handler concurrently, and stages the
// messages they send for the next round.
func (s *SimBackend) Round() RoundStats {
	active, rs := s.beginRound()
	s.slab = growSlab(s.slab, len(active))

	// Run handlers concurrently, bounded by the hoisted semaphore.
	var wg sync.WaitGroup
	for i, id := range active {
		ctx := &s.slab[i]
		ctx.cluster, ctx.self, ctx.round = s.c, id, s.c.stats.Rounds
		inbox := s.inboxes[id]
		sortInbox(inbox)
		m := s.c.machines[id]
		wg.Add(1)
		s.sem <- struct{}{}
		go func(m Machine, ctx *Ctx, inbox []Message) {
			defer wg.Done()
			defer func() { <-s.sem }()
			if m != nil {
				m.HandleRound(ctx, inbox)
			}
		}(m, ctx, inbox)
	}
	wg.Wait()

	s.settle(active, func(i, _ int) *Ctx { return &s.slab[i] })
	return rs
}

// Close is a no-op: the sim backend holds no long-lived goroutines.
func (s *SimBackend) Close() {}
