package dmpc_test

import (
	"fmt"

	"dmpc"
)

// ExamplePipeline feeds one mixed op stream — writes and reads — through
// the unified front door. The reads are sequenced into the update waves
// and answered against exactly the prefix state their stream position
// implies: the first connectivity probe runs before the bridge insert and
// the second after it, so they answer differently even though both ride
// the same Apply call.
func ExamplePipeline() {
	cc := dmpc.NewConnectivity(8, 32)

	ops := []dmpc.Op{
		dmpc.Ins(0, 1),
		dmpc.Ins(2, 3),
		dmpc.QConnected(0, 3), // before the bridge: false
		dmpc.Ins(1, 2),        // the bridge
		dmpc.QConnected(0, 3), // after the bridge: true
		dmpc.Del(1, 2),
		dmpc.QConnected(0, 3), // bridge gone again: false
	}
	res, st := cc.Apply(ops)

	for i, a := range res {
		fmt.Printf("probe %d: %v\n", i, a.Bool)
	}
	fmt.Printf("ops: %d (%d updates + %d queries)\n",
		st.Ops, st.Updates.Updates, st.Queries.Queries)
	fmt.Printf("rounds partitioned: %v\n",
		st.Updates.Rounds+st.Queries.Rounds == st.Rounds())
	// Output:
	// probe 0: false
	// probe 1: true
	// probe 2: false
	// ops: 7 (4 updates + 3 queries)
	// rounds partitioned: true
}
