package graph

import "math/rand"

// Generators for the workload families used across the experiments. All
// generators are deterministic for a given *rand.Rand.

// GNM returns a uniform random simple graph with n vertices and (up to) m
// edges; weights are drawn uniformly from [1, maxW].
func GNM(n, m int, maxW Weight, rng *rand.Rand) *Graph {
	g := New(n)
	if n < 2 {
		return g
	}
	attempts := 0
	for g.M() < m && attempts < 20*m+100 {
		u := rng.Intn(n)
		v := rng.Intn(n)
		attempts++
		if u == v {
			continue
		}
		g.Insert(u, v, 1+Weight(rng.Int63n(int64(maxW))))
	}
	return g
}

// Path returns the path 0-1-...-n-1 with unit weights.
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.Insert(i, i+1, 1)
	}
	return g
}

// Cycle returns the n-cycle.
func Cycle(n int) *Graph {
	g := Path(n)
	if n > 2 {
		g.Insert(n-1, 0, 1)
	}
	return g
}

// Star returns a star with center 0 and n-1 leaves.
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.Insert(0, i, 1)
	}
	return g
}

// Grid returns an r x c grid graph (vertex = row*c+col) with weights drawn
// from [1, maxW]; pass maxW=1 for an unweighted grid.
func Grid(r, c int, maxW Weight, rng *rand.Rand) *Graph {
	g := New(r * c)
	w := func() Weight {
		if maxW <= 1 || rng == nil {
			return 1
		}
		return 1 + Weight(rng.Int63n(int64(maxW)))
	}
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			v := i*c + j
			if j+1 < c {
				g.Insert(v, v+1, w())
			}
			if i+1 < r {
				g.Insert(v, v+c, w())
			}
		}
	}
	return g
}

// RandomTree returns a uniformly random labeled tree on n vertices
// (random attachment), with weights drawn from [1, maxW].
func RandomTree(n int, maxW Weight, rng *rand.Rand) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		w := Weight(1)
		if maxW > 1 {
			w = 1 + Weight(rng.Int63n(int64(maxW)))
		}
		g.Insert(u, v, w)
	}
	return g
}

// PrefAttach returns a preferential-attachment graph: each new vertex
// attaches k edges to existing vertices chosen proportionally to degree,
// producing the heavy-tailed degree distributions of web/social graphs that
// motivate the paper's light/heavy vertex split.
func PrefAttach(n, k int, rng *rand.Rand) *Graph {
	g := New(n)
	if n < 2 {
		return g
	}
	// endpoint pool: every edge contributes both endpoints, so sampling
	// from the pool is degree-proportional sampling.
	pool := []int{0}
	for v := 1; v < n; v++ {
		added := 0
		for t := 0; t < 4*k && added < k; t++ {
			u := pool[rng.Intn(len(pool))]
			if g.Insert(u, v, 1) {
				added++
			}
		}
		if added == 0 {
			g.Insert(rng.Intn(v), v, 1)
		}
		for range g.Neighbors(v) {
			pool = append(pool, v)
		}
		for _, u := range g.Neighbors(v) {
			pool = append(pool, u)
		}
	}
	return g
}

// PrefAttachStream returns a well-formed update stream with
// preferential-attachment skew: inserts choose their existing endpoint
// degree-proportionally (the endpoint-pool trick of PrefAttach), so a few
// hub vertices accumulate most of the edges, and roughly delFrac of the
// stream deletes a uniformly chosen present edge. The result is the
// power-law *churn* workload — hubs keep getting hit — as opposed to
// PrefAttach's static power-law snapshot; RandomStream is its
// uniform-skew counterpart.
func PrefAttachStream(n, length int, delFrac float64, rng *rand.Rand) []Update {
	g := New(n)
	updates := make([]Update, 0, length)
	present := make([]Edge, 0, length)
	pos := make(map[Edge]int)
	// Seed the pool with every vertex once so isolated vertices stay
	// reachable as attachment targets; each inserted edge then adds both
	// endpoints, making pool draws degree-proportional (plus one).
	pool := make([]int, n)
	for v := range pool {
		pool[v] = v
	}
	for len(updates) < length {
		if delFrac > 0 && len(present) > 0 && rng.Float64() < delFrac {
			i := rng.Intn(len(present))
			e := present[i]
			last := len(present) - 1
			present[i] = present[last]
			pos[present[i]] = i
			present = present[:last]
			delete(pos, e)
			g.Delete(e.U, e.V)
			updates = append(updates, Update{Op: Delete, U: e.U, V: e.V})
			continue
		}
		inserted := false
		for t := 0; t < 50 && !inserted; t++ {
			u := pool[rng.Intn(len(pool))]
			v := rng.Intn(n)
			if u == v || g.Has(u, v) {
				continue
			}
			g.Insert(u, v, 1)
			e := NormEdge(u, v)
			pos[e] = len(present)
			present = append(present, e)
			pool = append(pool, u, v)
			updates = append(updates, Update{Op: Insert, U: u, V: v, W: 1})
			inserted = true
		}
		if !inserted {
			// Dense corner: fall back to deleting so the stream always
			// reaches its length.
			if len(present) == 0 {
				break
			}
			i := rng.Intn(len(present))
			e := present[i]
			last := len(present) - 1
			present[i] = present[last]
			pos[present[i]] = i
			present = present[:last]
			delete(pos, e)
			g.Delete(e.U, e.V)
			updates = append(updates, Update{Op: Delete, U: e.U, V: e.V})
		}
	}
	return updates
}

// CompleteBipartite returns K_{a,b}: vertices 0..a-1 on one side and
// a..a+b-1 on the other.
func CompleteBipartite(a, b int) *Graph {
	g := New(a + b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			g.Insert(i, a+j, 1)
		}
	}
	return g
}
