// Package amm implements §6 of the paper: a fully-dynamic (2+ε)-approximate
// — almost-maximal — matching in the DMPC model with O(1) rounds per
// update, Õ(1) active machines and Õ(1) communication per round, adapting
// the Charikar–Solomon framework [13].
//
// Vertices carry levels: free vertices sit at level -1, a matched edge
// lives at the level ℓ at which its endpoint sampled it from a pool of
// ≥ γ^ℓ lower-level neighbors (the pool size is the edge's support, which
// decays as incident edges are deleted). Four subscheduler families run a
// Δ-bounded batch inside every update cycle:
//
//   - free-schedule pops temporarily-free vertices from the per-level
//     queues Q_ℓ and runs handle-free: pick the highest level ℓ with
//     Φ_v(ℓ) ≥ γ^ℓ, sample a mate from the lower-level pool (stealing it
//     from its current partner if matched) and requeue the ex-partner;
//   - unmatch-schedule proactively unmatches the lowest-support edge per
//     level once its support decays below (1-2ε)γ^ℓ, keeping the
//     probability of an adversarial hit low;
//   - shuffle-schedule resamples a random matched edge at a random level;
//   - rise-schedule lifts a vertex violating the Φ invariant
//     (Φ_v(ℓ) ≤ c·γ^ℓ·log² n) to the violating level and rematches it.
//
// All subscheduler picks are arbitrated by one scheduler machine per
// update cycle (the paper's conflict resolution sends the candidate lists
// "to the same machine"); the active list A keeps in-flight vertices out
// of the sampling pools. Level-change notifications to neighbors are
// processed in Δ-sized chunks per cycle by the owning machines (the
// paper's batched set-level), so mirrors lag at most O(deg/Δ) cycles;
// matching state itself is always authoritative at the owners.
//
// What is measured and tested: every update cycle costs a constant number
// of rounds; active machines and words per round stay polylogarithmic; the
// matching is always valid; and the maximality deficit (edges with both
// endpoints free) stays an ε-fraction — vertices wait in queues only O(1)
// cycles in expectation. The full [13] analysis constants (Δ = Θ(log⁵ n))
// are scaled to Δ = c·log n to keep simulations meaningful; DESIGN.md
// records this.
package amm

import (
	"fmt"
	"math"
	"math/rand"

	"dmpc/internal/graph"
	"dmpc/internal/mpc"
)

// Config sizes an instance.
type Config struct {
	N        int
	Eps      float64 // support slack; default 0.2
	Gamma    int     // level base; default 4
	Delta    int     // batch budget; default 4·⌈log2 n⌉
	Seed     int64
	Machines int // 0 = auto
	// Backend selects the cluster execution backend (zero value =
	// mpc.BackendSim oracle; mpc.BackendParallel requires Close).
	// Workers bounds its handler concurrency (0 = GOMAXPROCS).
	Backend mpc.BackendKind
	Workers int
}

// M is the §6 structure.
type M struct {
	cfg     Config
	cluster *mpc.Cluster
	shards  []*shard
	sched   *scheduler
	seq     int64
	queryID int64
}

// New builds an empty instance.
func New(cfg Config) *M {
	if cfg.N <= 0 {
		panic("amm: need at least one vertex")
	}
	if cfg.Eps <= 0 {
		cfg.Eps = 0.2
	}
	if cfg.Gamma < 2 {
		cfg.Gamma = 4
	}
	if cfg.Delta <= 0 {
		cfg.Delta = 4 * bits(cfg.N)
	}
	mu := cfg.Machines
	if mu <= 0 {
		mu = int(math.Ceil(math.Sqrt(float64(cfg.N))))*2 + 2
	}
	levels := 1
	for pow(cfg.Gamma, levels) < cfg.N {
		levels++
	}
	cl := mpc.NewCluster(mpc.Config{Machines: mu + 1, MemWords: 1 << 20, Backend: cfg.Backend, Workers: cfg.Workers})
	m := &M{cfg: cfg}
	m.cluster = cl
	m.sched = newScheduler(cfg, mu, levels)
	cl.SetMachine(0, m.sched)
	m.shards = make([]*shard, mu)
	for i := 0; i < mu; i++ {
		m.shards[i] = newShard(i+1, mu, cfg, levels)
		cl.SetMachine(i+1, m.shards[i])
	}
	return m
}

func bits(n int) int {
	b := 1
	for 1<<b < n {
		b++
	}
	return b
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
		if out > 1<<30 {
			return out
		}
	}
	return out
}

// Cluster exposes accounting.
func (m *M) Cluster() *mpc.Cluster { return m.cluster }

// Close releases the cluster's execution backend (the parallel backend's
// worker goroutines). The structure must not be used afterwards.
func (m *M) Close() { m.cluster.Close() }

func (m *M) owner(v int) int { return 1 + v%(len(m.shards)) }

// Insert adds edge (u,v) and runs one update cycle.
func (m *M) Insert(u, v int) mpc.UpdateStats {
	return m.update(graph.Update{Op: graph.Insert, U: u, V: v})
}

// Delete removes edge (u,v) and runs one update cycle.
func (m *M) Delete(u, v int) mpc.UpdateStats {
	return m.update(graph.Update{Op: graph.Delete, U: u, V: v})
}

func (m *M) update(up graph.Update) mpc.UpdateStats {
	m.seq++
	m.cluster.BeginUpdate()
	m.cluster.Send(mpc.Message{
		From: -1, To: m.owner(up.U),
		Payload: amsg{Kind: aUpdate, U: int32(up.U), V: int32(up.V), Del: up.Op == graph.Delete, Seq: m.seq},
		Words:   4,
	})
	// The edge update itself plus one batch of every subscheduler: a
	// constant number of rounds by construction.
	m.cluster.Round() // owner(u) processes, contacts owner(v)
	m.cluster.Round() // owner(v) processes, reports to scheduler
	m.cluster.Send(mpc.Message{From: -1, To: 0, Payload: amsg{Kind: aCycle, Seq: m.seq}, Words: 1})
	m.cluster.Round() // scheduler ingests reports, dispatches batch orders
	m.cluster.Round() // owners execute orders, reply candidates/acks
	m.cluster.Round() // scheduler arbitrates, sends match orders
	m.cluster.Round() // owners apply matches, report freed ex-partners
	m.cluster.Round() // scheduler ingests final reports
	return m.cluster.EndUpdate()
}

// ApplyBatch processes a batch of updates in one shared round-accounting
// window. Edge updates are injected in endpoint-disjoint waves (three
// rounds each — such updates mutate disjoint vertex state, so they commute
// exactly); then, instead of one update cycle per update, scheduler cycles
// run only until the free-vertex queues drain or stop shrinking (a vertex
// whose sampling pools are exhausted waits in queue under sequential
// application too). Each cycle processes a
// Δ-bounded batch of every subscheduler family, so a batch of k updates
// needs on the order of k/Δ cycles — this is where the amortized rounds
// per update drop. The resulting matching is valid and almost-maximal over
// the same final graph; unlike dmm and dyncon, the exact matched edges may
// differ from sequential application because shuffle/rise probes fire per
// cycle, not per update (see DESIGN.md).
func (m *M) ApplyBatch(batch graph.Batch) mpc.BatchStats {
	m.cluster.BeginBatch(len(batch))
	if len(batch) == 0 {
		return m.cluster.EndBatch()
	}
	if len(batch) == 1 {
		// A singleton batch follows the fixed per-update schedule exactly,
		// so k=1 batching matches sequential application in both state and
		// round cost (the baseline the amortization claim is measured
		// against).
		m.update(batch[0])
		return m.cluster.EndBatch()
	}
	m.injectWaves(batch, m.cluster.BeginWave, m.cluster.EndWave)
	m.drainCycles(len(batch))
	return m.cluster.EndBatch()
}

// injectWaves injects the batch as endpoint-disjoint waves of three
// rounds each (such updates mutate disjoint vertex state, so they
// commute exactly), bracketing every wave with the supplied attribution
// hooks — BeginWave/EndWave inside a batch window, a mixed-wave variant
// inside a mixed window.
func (m *M) injectWaves(batch graph.Batch, begin func(k int), end func() mpc.WaveStats) {
	rest := batch
	for len(rest) > 0 {
		k := rest.DisjointPrefix(0)
		begin(k)
		for _, up := range rest[:k] {
			m.seq++
			m.cluster.Send(mpc.Message{
				From: -1, To: m.owner(up.U),
				Payload: amsg{Kind: aUpdate, U: int32(up.U), V: int32(up.V), Del: up.Op == graph.Delete, Seq: m.seq},
				Words:   4,
			})
		}
		rest = rest[k:]
		m.cluster.Round() // owners of U process, contact owners of V
		m.cluster.Round() // owners of V process, reply / report
		m.cluster.Round() // both-free commits land back at owners of U
		end()
	}
}

// drainCycles runs scheduler cycles until the free-vertex queues drain or
// stop shrinking, with a budget proportional to the updates just applied.
// A backlog can legitimately persist (queued vertices whose pools are all
// exhausted re-queue; sequential mode leaves them waiting too), so it
// stops as soon as a cycle fails to shrink the queues rather than
// spinning the full budget.
func (m *M) drainCycles(updates int) {
	maxCycles := updates + 4
	prev := -1
	for cyc := 0; cyc < maxCycles; cyc++ {
		m.seq++
		m.cluster.Send(mpc.Message{From: -1, To: 0, Payload: amsg{Kind: aCycle, Seq: m.seq}, Words: 1})
		for r := 0; r < 5; r++ {
			m.cluster.Round()
		}
		bl := m.QueueBacklog()
		if bl == 0 || (prev >= 0 && bl >= prev) {
			break
		}
		prev = bl
	}
}

// ApplyOps processes a mixed op stream — updates *and* typed reads
// (OpMateOf, OpMatched) — in one mixed round-accounting window
// (mpc.MixedStats). amm's update cycles are randomized per cycle rather
// than per update, so unlike dyncon and dmm the pipeline does not promise
// bit-equivalence with sequential replay; the mixed contract is the same
// one ApplyBatch already documents, extended to reads: update runs
// execute as endpoint-disjoint injection waves followed by their run of
// scheduler cycles (sequentially every update runs one cycle, so reads
// following a run must see its cycle effects), and a run of consecutive
// reads settles in-flight traffic and is answered by the authoritative
// owners in one query-only wave (settle and answer rounds both charged to
// the query half, as MateOfBatch charges them), observing exactly the
// batched matching state at its stream position.
//
// Answers are positional over the stream's queries: the j-th entry of the
// returned Results answers the j-th op with IsQuery() true.
func (m *M) ApplyOps(ops []graph.Op) (graph.Results, mpc.MixedStats) {
	nu, nq := graph.CountOps(ops)
	m.cluster.BeginMixed(nu, nq)
	qids := make([]int64, len(ops))
	for i := 0; i < len(ops); {
		if !ops[i].IsQuery() {
			// Maximal update run, injected in endpoint-disjoint waves (see
			// injectWaves), then the run's share of scheduler cycles so
			// any following read observes the post-cycle matching exactly
			// as sequential replay would.
			j := i
			for j < len(ops) && !ops[j].IsQuery() {
				j++
			}
			run := make(graph.Batch, 0, j-i)
			for _, op := range ops[i:j] {
				run = append(run, op.Update())
			}
			m.injectWaves(run, func(k int) { m.cluster.BeginMixedWave(k, 0) }, m.cluster.EndMixedWave)
			m.drainCycles(j - i)
			i = j
			continue
		}
		// Maximal read run. Settle in-flight update traffic before
		// injecting the reads — an undelivered aExFreed sorts after a
		// driver query in the same inbox, so answering first would return
		// the pre-steal mate. As in MateOfBatch, the settle rounds are
		// charged to the read side (the query-only wave) rather than left
		// to perturb the update half's figures.
		j := i
		for j < len(ops) && ops[j].IsQuery() {
			j++
		}
		m.cluster.BeginMixedWave(0, j-i)
		m.cluster.Drain(64, "amm: pre-read settle")
		for x := i; x < j; x++ {
			op := ops[x]
			switch op.Kind {
			case graph.OpMateOf, graph.OpMatched:
			default:
				panic(fmt.Sprintf("amm: unsupported query kind %v (matching answers OpMateOf and OpMatched)", op.Kind))
			}
			m.queryID++
			qids[x] = m.queryID
			m.cluster.Send(mpc.Message{
				From: -1, To: m.owner(op.U),
				Payload: amsg{Kind: aMateQuery, U: int32(op.U), Seq: qids[x]},
				Words:   3,
			})
		}
		m.cluster.Drain(64, fmt.Sprintf("amm: read wave of %d", j-i))
		m.cluster.EndMixedWave()
		i = j
	}
	st := m.cluster.EndMixed()
	res := make(graph.Results, 0, nq)
	for i, op := range ops {
		if !op.IsQuery() {
			continue
		}
		sh := m.shards[m.owner(op.U)-1]
		mate, ok := sh.queryResults[qids[i]]
		if !ok {
			panic(fmt.Sprintf("amm: in-wave query %v produced no result", op))
		}
		delete(sh.queryResults, qids[i])
		if op.Kind == graph.OpMatched {
			res = append(res, graph.Answer{Bool: int(mate) == op.V})
		} else {
			res = append(res, graph.Answer{Int: int64(mate)})
		}
	}
	return res, st
}

// MateOf answers "who is v matched to?" (-1 = free) through the cluster:
// one round, one active owner machine, O(1) words, charged to a QueryStats
// window.
func (m *M) MateOf(v int) int {
	return m.MateOfBatch([]int{v})[0]
}

// Matched reports whether edge (u,v) is in the maintained matching, as a
// protocol query answered by u's owner machine.
func (m *M) Matched(u, v int) bool {
	return m.MateOf(u) == v
}

// MateOfBatch answers k mate queries in one shared query window: every
// owner records its answers in the single round the queries are delivered
// (a query-only round triggers no scheduler reports), so the batch costs
// one round and amortizes to 1/k rounds per query. The matching state is
// always authoritative at the owners (only level mirrors lag), so the
// answers equal the oracle's. Update traffic still in flight from amm's
// fixed-round driver is drained inside the query window rather than left
// to perturb the next update window.
func (m *M) MateOfBatch(vs []int) []int {
	if len(vs) == 0 {
		return nil
	}
	m.cluster.BeginQueryBatch(len(vs))
	// Settle update traffic still in flight from amm's fixed-round driver
	// *before* injecting the reads: an undelivered aExFreed sorts after a
	// driver query in the same inbox, so answering first would return the
	// pre-steal mate. The settling rounds are charged to the query window
	// rather than left to perturb the next update window.
	m.cluster.Drain(64, "amm: pre-query settle")
	qids := make([]int64, len(vs))
	for i, v := range vs {
		m.queryID++
		qids[i] = m.queryID
		m.cluster.Send(mpc.Message{
			From: -1, To: m.owner(v),
			Payload: amsg{Kind: aMateQuery, U: int32(v), Seq: qids[i]},
			Words:   3,
		})
	}
	m.cluster.Drain(64, fmt.Sprintf("amm: query batch of %d", len(vs)))
	m.cluster.EndQueryBatch()
	out := make([]int, len(vs))
	for i, v := range vs {
		sh := m.shards[m.owner(v)-1]
		res, ok := sh.queryResults[qids[i]]
		if !ok {
			panic(fmt.Sprintf("amm: mate query for %d produced no result", v))
		}
		delete(sh.queryResults, qids[i])
		out[i] = int(res)
	}
	return out
}

// MateTable reads the authoritative mates — driver-side oracle access for
// validation only, not part of the protocol accounting. Use
// MateOf/MateOfBatch for protocol queries.
func (m *M) MateTable() []int {
	out := make([]int, m.cfg.N)
	for v := 0; v < m.cfg.N; v++ {
		out[v] = int(m.shards[m.owner(v)-1].get(int32(v)).mate)
	}
	return out
}

// Levels reads the level decomposition (driver-side oracle).
func (m *M) Levels() []int {
	out := make([]int, m.cfg.N)
	for v := 0; v < m.cfg.N; v++ {
		out[v] = int(m.shards[m.owner(v)-1].get(int32(v)).lvl)
	}
	return out
}

// QueueBacklog reports the number of vertices waiting in the scheduler's
// queues (the transient non-maximality source).
func (m *M) QueueBacklog() int {
	total := 0
	for _, q := range m.sched.queues {
		total += len(q)
	}
	return total
}

// Validate checks the §6 invariants that must hold at every quiescent
// point: the matching is consistent; matched vertices have level ≥ 0 and
// both endpoints of a matched edge share its level; free vertices are at
// level -1; any free-free edge's endpoints are queued or active (the
// almost-maximality bookkeeping).
func (m *M) Validate(g *graph.Graph) error {
	pending := map[int32]bool{}
	for _, q := range m.sched.queues {
		for _, v := range q {
			pending[v] = true
		}
	}
	for v := range m.sched.active {
		pending[v] = true
	}
	for v := 0; v < m.cfg.N; v++ {
		st := m.shards[m.owner(v)-1].get(int32(v))
		if st.mate >= 0 {
			other := m.shards[m.owner(int(st.mate))-1].get(st.mate)
			if other.mate != int32(v) {
				return fmt.Errorf("vertex %d: mate %d disagrees", v, st.mate)
			}
			if !g.Has(v, int(st.mate)) {
				return fmt.Errorf("matched edge (%d,%d) not in graph", v, st.mate)
			}
			if st.lvl < 0 {
				return fmt.Errorf("matched vertex %d at level %d", v, st.lvl)
			}
			if st.lvl != other.lvl {
				return fmt.Errorf("matched edge (%d,%d) spans levels %d,%d", v, st.mate, st.lvl, other.lvl)
			}
		} else if st.lvl != -1 {
			return fmt.Errorf("free vertex %d at level %d", v, st.lvl)
		}
	}
	for _, e := range g.Edges() {
		su := m.shards[m.owner(e.U)-1].get(int32(e.U))
		sv := m.shards[m.owner(e.V)-1].get(int32(e.V))
		if su.mate == -1 && sv.mate == -1 && !pending[int32(e.U)] && !pending[int32(e.V)] {
			return fmt.Errorf("free-free edge (%d,%d) with neither endpoint pending", e.U, e.V)
		}
	}
	return nil
}

var _ = rand.Int // keep math/rand imported alongside future shuffle tuning
