package dmpc

import (
	"math/rand"
	"testing"

	"dmpc/internal/graph"
)

// TestIngestorBurstStorm is the deterministic burst-storm case: a burst
// of component-disjoint inserts forms one wave set, and a late-arriving
// op whose claims conflict with the open set must NOT join it — the set
// flushes at the newcomer's arrival time and the newcomer starts a fresh
// set.
func TestIngestorBurstStorm(t *testing.T) {
	cc := NewConnectivity(16, 64)
	ing := NewIngestor(IngestorConfig{Pipeline: cc})
	// The storm: disjoint singleton components, all admitted into one set.
	ing.Push(Arrival{At: 0, Op: Ins(0, 1)})
	ing.Push(Arrival{At: 0, Op: Ins(2, 3)})
	ing.Push(Arrival{At: 0, Op: Ins(4, 5)})
	if ing.Pending() != 3 {
		t.Fatalf("storm did not form one set: %d pending", ing.Pending())
	}
	// The latecomer: Ins(1,2) holds component(1) exclusively, which the
	// open set already holds — it must seal and flush the set, not join.
	ing.Push(Arrival{At: 1, Op: Ins(1, 2)})
	if ing.Pending() != 1 {
		t.Fatalf("conflicting latecomer did not cut the set: %d pending", ing.Pending())
	}
	res, st := ing.Close()
	if len(res) != 0 {
		t.Fatalf("update-only stream answered %d queries", len(res))
	}
	if st.Flushes != 2 || st.FlushConflict != 1 || st.FlushTail != 1 {
		t.Fatalf("flushes (total %d, conflict %d, tail %d), want (2, 1, 1)",
			st.Flushes, st.FlushConflict, st.FlushTail)
	}
	if st.Windows[0].Ops != 3 || st.Windows[1].Ops != 1 {
		t.Fatalf("window widths (%d, %d), want (3, 1)", st.Windows[0].Ops, st.Windows[1].Ops)
	}
	// Virtual-clock accounting: the first flush starts at the trigger
	// (t=1), the tail flush queues behind it, and every op's latency is
	// completion minus its own arrival.
	r0, r1 := int64(st.Windows[0].Rounds()), int64(st.Windows[1].Rounds())
	if st.Makespan != 1+r0+r1 {
		t.Fatalf("makespan %d, want %d", st.Makespan, 1+r0+r1)
	}
	wantLat := []int64{1 + r0, 1 + r0, 1 + r0, r0 + r1}
	if len(st.Latencies) != len(wantLat) {
		t.Fatalf("%d latencies, want %d", len(st.Latencies), len(wantLat))
	}
	for i, want := range wantLat {
		if st.Latencies[i] != want {
			t.Fatalf("latency[%d] = %d, want %d (windows %d+%d rounds)",
				i, st.Latencies[i], want, r0, r1)
		}
	}
	// End state matches the sequential result regardless of the cut.
	for _, pair := range [][2]int{{0, 1}, {2, 3}, {4, 5}, {1, 2}, {0, 3}} {
		if cc.CompOf(pair[0]) != cc.CompOf(pair[1]) {
			t.Fatalf("components of %v differ after ingest", pair)
		}
	}
}

// TestIngestorNonConflictingJoins pins the complement of the burst-storm
// case: a latecomer whose claims are disjoint from the open set joins it,
// and the whole stream flushes as one window at Close.
func TestIngestorNonConflictingJoins(t *testing.T) {
	cc := NewConnectivity(16, 64)
	ing := NewIngestor(IngestorConfig{Pipeline: cc})
	ing.Push(Arrival{At: 0, Op: Ins(0, 1)})
	ing.Push(Arrival{At: 3, Op: Ins(2, 3)})
	_, st := ing.Close()
	if st.Flushes != 1 || st.FlushTail != 1 || st.Windows[0].Ops != 2 {
		t.Fatalf("disjoint latecomer did not share the wave set: %+v", st)
	}
}

// TestIngestorAgeBound pins the age flush: the oldest forming op waits at
// most MaxAge rounds, whatever arrives.
func TestIngestorAgeBound(t *testing.T) {
	cc := NewConnectivity(16, 64)
	ing := NewIngestor(IngestorConfig{Pipeline: cc, MaxAge: 10})
	ing.Push(Arrival{At: 0, Op: Ins(0, 1)})
	ing.Push(Arrival{At: 15, Op: QConnected(4, 5)})
	res, st := ing.Close()
	if st.Flushes != 2 || st.FlushAge != 1 || st.FlushTail != 1 {
		t.Fatalf("flushes (total %d, age %d, tail %d), want (2, 1, 1)",
			st.Flushes, st.FlushAge, st.FlushTail)
	}
	// The aged flush starts at its deadline (t=10), not at the arrival
	// that triggered it (t=15).
	r0 := int64(st.Windows[0].Rounds())
	if st.Latencies[0] != 10+r0 {
		t.Fatalf("aged op latency %d, want %d", st.Latencies[0], 10+r0)
	}
	if len(res) != 1 || res[0].Bool {
		t.Fatalf("query answered %+v, want unconnected", res)
	}
}

// TestIngestorMaxAgeBoundary pins the inclusive edge of the age bound:
// an arrival at exactly formingAt[0]+MaxAge triggers flushAge (age ==
// MaxAge is stale, not fresh), and the flush starts at that deadline.
// One tick earlier the forming set must still be intact. The ops are
// non-conflicting reads so nothing but the age bound can cut the stream.
func TestIngestorMaxAgeBoundary(t *testing.T) {
	cc := NewConnectivity(16, 64)
	ing := NewIngestor(IngestorConfig{Pipeline: cc, MaxAge: 8})
	ing.Push(Arrival{At: 0, Op: QConnected(0, 1)})
	// Age 7 < MaxAge: joins the forming set, no flush.
	ing.Push(Arrival{At: 7, Op: QConnected(2, 3)})
	if st := ing.Stats(); st.Flushes != 0 {
		t.Fatalf("arrival at age MaxAge-1 flushed (%d flushes), want the set still forming", st.Flushes)
	}
	// Age exactly 8 == MaxAge: the boundary arrival must trigger flushAge
	// before it joins a fresh forming set.
	ing.Push(Arrival{At: 8, Op: QConnected(4, 5)})
	st := ing.Stats()
	if st.Flushes != 1 || st.FlushAge != 1 {
		t.Fatalf("flushes (total %d, age %d) after boundary arrival, want (1, 1)", st.Flushes, st.FlushAge)
	}
	// The aged flush runs at the deadline t=8, so the oldest op's latency
	// is exactly MaxAge plus the window's rounds.
	r0 := int64(st.Windows[0].Rounds())
	if st.Latencies[0] != 8+r0 {
		t.Fatalf("boundary-aged op latency %d, want %d (deadline 8 + %d rounds)", st.Latencies[0], 8+r0, r0)
	}
	res, st := ing.Close()
	if st.Flushes != 2 || st.FlushTail != 1 {
		t.Fatalf("flushes (total %d, tail %d) after close, want (2, 1)", st.Flushes, st.FlushTail)
	}
	if len(res) != 3 {
		t.Fatalf("%d answers, want 3", len(res))
	}
}

// TestIngestorBatchBound pins the k flush: the forming set never exceeds
// MaxBatch ops (reads of disjoint vertices never conflict, so only the
// size bound cuts this stream).
func TestIngestorBatchBound(t *testing.T) {
	cc := NewConnectivity(16, 64)
	ing := NewIngestor(IngestorConfig{Pipeline: cc, MaxBatch: 2})
	for i := 0; i < 5; i++ {
		ing.Push(Arrival{At: 0, Op: QConnected(2*i, 2*i+1)})
	}
	res, st := ing.Close()
	if st.Flushes != 3 || st.FlushFull != 2 || st.FlushTail != 1 {
		t.Fatalf("flushes (total %d, full %d, tail %d), want (3, 2, 1)",
			st.Flushes, st.FlushFull, st.FlushTail)
	}
	if len(res) != 5 {
		t.Fatalf("%d answers, want 5", len(res))
	}
}

// TestIngestorGuards pins the Push contract: no time regressions, no
// pushes after Close, and Close idempotence.
func TestIngestorGuards(t *testing.T) {
	cc := NewConnectivity(8, 32)
	ing := NewIngestor(IngestorConfig{Pipeline: cc})
	ing.Push(Arrival{At: 5, Op: Ins(0, 1)})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("time regression did not panic")
			}
		}()
		ing.Push(Arrival{At: 4, Op: Ins(1, 2)})
	}()
	res1, st1 := ing.Close()
	res2, st2 := ing.Close()
	if len(res1) != len(res2) || st1.Flushes != st2.Flushes {
		t.Fatal("Close is not idempotent")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Push after Close did not panic")
			}
		}()
		ing.Push(Arrival{At: 9, Op: Ins(2, 3)})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NewIngestor without a Pipeline did not panic")
			}
		}()
		NewIngestor(IngestorConfig{})
	}()
}

// TestIngestZeroGapMatchesApply pins the re-expression both ways: Ingest
// of an ArrivalsNow schedule and Apply of the full slice must agree on
// every answer and on the end state — Apply literally is the zero-
// inter-arrival special case, and the admission cuts Ingest adds on top
// may move rounds between windows but never change results.
func TestIngestZeroGapMatchesApply(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(11))
	updates := graph.RandomStream(n, 240, 0.6, 1, rng)
	ops := graph.MixedStream(updates, 0.4, func(r *rand.Rand) Op {
		if r.Intn(2) == 0 {
			return QConnected(r.Intn(n), r.Intn(n))
		}
		return QComponentOf(r.Intn(n))
	}, rng)

	ref := NewConnectivity(n, 4*n)
	want, _ := ref.Apply(ops)

	cc := NewConnectivity(n, 4*n)
	got, st := Ingest(cc, ArrivalsNow(ops), IngestorConfig{})
	if len(got) != len(want) {
		t.Fatalf("%d answers, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("answer %d is %+v, want %+v", i, got[i], want[i])
		}
	}
	for v := 0; v < n; v++ {
		if cc.CompOf(v) != ref.CompOf(v) {
			t.Fatalf("component of %d differs: %d vs %d", v, cc.CompOf(v), ref.CompOf(v))
		}
	}
	if st.Ops != len(ops) || len(st.Latencies) != len(ops) {
		t.Fatalf("stream stats cover %d ops, %d latencies; stream has %d",
			st.Ops, len(st.Latencies), len(ops))
	}
	if st.Makespan != int64(st.Rounds) {
		t.Fatalf("zero-gap makespan %d != rounds %d (no idle time exists)", st.Makespan, st.Rounds)
	}
	if v := cc.Cluster().Stats().Violations; v != 0 {
		t.Fatalf("%d cluster violations", v)
	}
}

// TestIngestPoissonMatchingEquivalence runs a well-formed mixed matching
// stream through Poisson arrivals and pins answers and the final mate
// table against Apply on the full slice.
func TestIngestPoissonMatchingEquivalence(t *testing.T) {
	const n = 48
	rng := rand.New(rand.NewSource(12))
	updates := graph.RandomStream(n, 160, 0.6, 1, rng)
	ops := graph.MixedStream(updates, 0.3, func(r *rand.Rand) Op {
		return QMateOf(r.Intn(n))
	}, rng)

	ref := NewMaximalMatching(n, 4*n)
	want, _ := ref.Apply(ops)

	mm := NewMaximalMatching(n, 4*n)
	arrivals := PoissonArrivals(ops, 6, rand.New(rand.NewSource(13)))
	got, st := Ingest(mm, arrivals, IngestorConfig{MaxBatch: 16, MaxAge: 32})
	if len(got) != len(want) {
		t.Fatalf("%d answers, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("answer %d is %+v, want %+v", i, got[i], want[i])
		}
	}
	wantMates, gotMates := ref.MateTable(), mm.MateTable()
	for v := range wantMates {
		if wantMates[v] != gotMates[v] {
			t.Fatalf("mate of %d differs: %d vs %d", v, gotMates[v], wantMates[v])
		}
	}
	if st.Makespan < int64(st.Rounds) {
		t.Fatalf("makespan %d below busy rounds %d", st.Makespan, st.Rounds)
	}
	if st.P50() > st.P95() || st.P95() > st.P99() {
		t.Fatalf("percentiles not monotone: p50 %d, p95 %d, p99 %d", st.P50(), st.P95(), st.P99())
	}
	if v := mm.Cluster().Stats().Violations; v != 0 {
		t.Fatalf("%d cluster violations", v)
	}
}

// TestIngestorWithAutoBatcher pins the Ingestor/AutoBatcher wiring: the
// batcher sizes k live (the ingestor's full-flush cuts feed the knee
// search), answers stay bit-identical to Apply on the full slice, and
// every flush lands in the batcher's history.
func TestIngestorWithAutoBatcher(t *testing.T) {
	const n = 96
	rng := rand.New(rand.NewSource(14))
	updates := graph.RandomStream(n, 480, 0.55, 1, rng)
	ops := graph.MixedStream(updates, 0.5, func(r *rand.Rand) Op {
		return QConnected(r.Intn(n), r.Intn(n))
	}, rng)

	ref := NewConnectivity(n, 5*n)
	want, _ := ref.Apply(ops)

	cc := NewConnectivity(n, 5*n)
	ab := NewAutoBatcher(AutoBatcherConfig{ApplyOps: cc.Apply, StartK: 8, MaxK: 256})
	got, st := Ingest(cc, ArrivalsNow(ops), IngestorConfig{Auto: ab})
	if len(got) != len(want) {
		t.Fatalf("%d answers, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("answer %d is %+v, want %+v", i, got[i], want[i])
		}
	}
	if st.Flushes != len(ab.MixedHistory()) {
		t.Fatalf("%d flushes but %d batcher windows", st.Flushes, len(ab.MixedHistory()))
	}
	grew := false
	for _, k := range ab.Ks() {
		if k > 8 {
			grew = true
		}
	}
	if !grew {
		t.Fatalf("batcher never grew k under ingest: trajectory %v", ab.Ks())
	}
}

// TestIngestorForeignPipeline pins the no-claims path: a Pipeline
// implementation from outside the facade ingests without admission
// control, so only the configured bounds cut the stream.
func TestIngestorForeignPipeline(t *testing.T) {
	cc := NewConnectivity(16, 64)
	fp := foreignPipeline{cc}
	ing := NewIngestor(IngestorConfig{Pipeline: fp})
	ing.Push(Arrival{At: 0, Op: Ins(0, 1)})
	ing.Push(Arrival{At: 0, Op: Ins(1, 2)}) // would conflict under claims
	_, st := ing.Close()
	if st.Flushes != 1 || st.FlushConflict != 0 {
		t.Fatalf("foreign pipeline saw admission control: %+v", st)
	}
}

// foreignPipeline hides the facade's claims plumbing behind a plain
// Pipeline value, as an external implementation would look.
type foreignPipeline struct{ inner *Connectivity }

func (f foreignPipeline) Apply(ops []Op) (Results, MixedStats) { return f.inner.Apply(ops) }
func (f foreignPipeline) Cluster() *Cluster                    { return f.inner.Cluster() }
func (f foreignPipeline) Close()                               { f.inner.Close() }
