package mpc

import (
	"fmt"
	"slices"
	"sort"
)

// BackendKind selects the execution backend of a Cluster — the runtime
// that owns message delivery and scheduling state and executes the
// machine-step loop. All backends are observationally identical: for the
// same machine programs and the same injected inputs they produce
// bit-identical answers, Stats accounting, and violation counts (pinned
// by the backend-equivalence suites over the committed fuzz corpora).
// They differ only in wall-clock time.
type BackendKind int

const (
	// BackendSim is the deterministic single-driver simulator loop: the
	// driver goroutine orchestrates every round, spawning short-lived
	// handler goroutines bounded by Config.Workers. It is the
	// correctness and accounting oracle every other backend is measured
	// against.
	BackendSim BackendKind = iota
	// BackendParallel is the goroutine-per-machine runtime: long-lived
	// worker goroutines (one per machine, sharded when µ exceeds the
	// worker cap) woken over channels each round, with a contiguous
	// per-round context slab staging outgoing messages lock-free per
	// sender and a deterministic ascending-id merge at the round
	// barrier. Same
	// answers and stats as BackendSim, measured in real time.
	BackendParallel
)

// String returns the CLI spelling of the backend kind.
func (k BackendKind) String() string {
	switch k {
	case BackendSim:
		return "sim"
	case BackendParallel:
		return "parallel"
	}
	return fmt.Sprintf("BackendKind(%d)", int(k))
}

// ParseBackend parses the CLI spelling of a backend kind ("sim" or
// "parallel").
func ParseBackend(s string) (BackendKind, error) {
	switch s {
	case "sim":
		return BackendSim, nil
	case "parallel":
		return BackendParallel, nil
	}
	return BackendSim, fmt.Errorf("unknown backend %q (want sim or parallel)", s)
}

// Backend executes the machine-step loop of a Cluster: it owns the
// per-machine inboxes and next-round schedules, delivers externally
// injected messages, and runs one synchronous round at a time. The
// Cluster folds the returned RoundStats into its accounting windows; a
// backend must produce bit-identical RoundStats, Stats side effects
// (pairWords, violations, peak memory) and machine state transitions for
// a given input history regardless of its execution strategy — the
// determinism rule that keeps every backend interchangeable with the
// BackendSim oracle.
type Backend interface {
	// Deliver enqueues an externally injected message for the next round.
	Deliver(msg Message)
	// Schedule marks machine id active in the next round.
	Schedule(id int)
	// Quiescent reports whether another Round would be a no-op.
	Quiescent() bool
	// Round executes one synchronous round and returns its statistics.
	Round() RoundStats
	// Close releases backend resources (long-lived worker goroutines).
	// The cluster must not Round after Close; Close is idempotent.
	Close()
}

// backendBase is the delivery, scheduling and staging state shared by
// every backend, plus the deterministic pre- and post-round phases. Only
// the handler-execution phase in between differs per backend, so the
// accounting-relevant code paths exist exactly once.
//
// Activation is sparse: the base incrementally maintains the exact set of
// machines with a nonempty inbox or a set schedule bit (pending, an
// unordered dirty-id buffer deduplicated through inPending), so a round
// costs O(active·log active + delivered) instead of the former O(µ) scan
// over every machine — the work-efficiency the model's O(1)-machines
// claims demand once µ grows past the handful of machines an update
// touches. Quiescent is a length check on the same buffer, O(1).
type backendBase struct {
	c       *Cluster
	inboxes [][]Message
	sched   []bool

	// pending holds exactly the ids with a nonempty inbox or schedule bit
	// (the Quiescent set), unordered; inPending deduplicates insertions.
	// active is the per-round ascending scratch pending is sorted into;
	// the two buffers swap every round, so neither is reallocated.
	pending   []int
	inPending []bool
	active    []int

	pool  msgPool   // retired inbox backing arrays, payload-cleared (pool.go)
	pairs pairStage // flat per-round (from,to,words) runs, folded at settle

	// debugActive, when set by tests, observes every round's active set
	// right after beginRound computes it — the strictly-ascending,
	// duplicate-free invariant settle's deterministic merge depends on.
	debugActive func([]int)
}

func newBackendBase(c *Cluster) backendBase {
	return backendBase{
		c:         c,
		inboxes:   make([][]Message, c.cfg.Machines),
		sched:     make([]bool, c.cfg.Machines),
		inPending: make([]bool, c.cfg.Machines),
	}
}

// markPending records that machine id now has pending input. Idempotent
// per round via the inPending marker.
func (b *backendBase) markPending(id int) {
	if !b.inPending[id] {
		b.inPending[id] = true
		b.pending = append(b.pending, id)
	}
}

// Deliver enqueues an externally injected message (Cluster.Send). An
// out-of-range destination is a model violation, not an index panic, and
// injected words count toward the pair-communication distribution so
// CommEntropy sees the cluster's full traffic. External injection folds
// into the pair map directly — unlike the settle path, no round boundary
// is guaranteed to follow, and CommEntropy/MaxPairWords must be current
// whenever the driver looks.
func (b *backendBase) Deliver(msg Message) {
	if msg.Words <= 0 {
		msg.Words = 1
	}
	if msg.To < 0 || msg.To >= len(b.inboxes) {
		b.c.violation("external send to invalid machine %d", msg.To)
		return
	}
	b.c.stats.pairWords[[2]int{msg.From, msg.To}] += msg.Words
	b.inboxes[msg.To] = b.pool.grab(b.inboxes[msg.To], msg)
	b.markPending(msg.To)
}

// Schedule marks machine id active for the next round.
func (b *backendBase) Schedule(id int) {
	if !b.sched[id] {
		b.sched[id] = true
		b.markPending(id)
	}
}

// Quiescent reports whether no machine has pending messages or
// scheduling. The pending buffer is exactly that set, so this is O(1).
func (b *backendBase) Quiescent() bool {
	return len(b.pending) == 0
}

// beginRound computes the round's active set (ascending machine id) and
// the delivery statistics. The pending buffer *is* the active set — it
// just needs sorting — and the emptied scratch becomes the next round's
// pending buffer, so the swap allocates nothing. The inPending markers
// are cleared here: nothing can mark between beginRound and settle (the
// driver is synchronous and handlers stage through their Ctx), and
// settle's own staging re-marks the next round's receivers.
func (b *backendBase) beginRound() ([]int, RoundStats) {
	b.active, b.pending = b.pending, b.active[:0]
	slices.Sort(b.active)
	var rs RoundStats
	for _, id := range b.active {
		b.inPending[id] = false
		for _, m := range b.inboxes[id] {
			rs.Words += m.Words
			rs.Messages++
		}
	}
	rs.Active = len(b.active)
	if b.debugActive != nil {
		b.debugActive(b.active)
	}
	return b.active, rs
}

// sortInbox orders a machine's inbox deterministically: by sender, then
// per-sender sequence number. Ties (external messages share From -1 and
// seq 0) keep arrival order — both paths below are stable, so the result
// is backend-independent. Small inboxes, the overwhelmingly common case,
// take an allocation-free insertion sort instead of the reflective
// sort.SliceStable.
func sortInbox(inbox []Message) {
	if len(inbox) <= 32 {
		for i := 1; i < len(inbox); i++ {
			for j := i; j > 0 && msgLess(inbox[j], inbox[j-1]); j-- {
				inbox[j], inbox[j-1] = inbox[j-1], inbox[j]
			}
		}
		return
	}
	sort.SliceStable(inbox, func(a, b int) bool { return msgLess(inbox[a], inbox[b]) })
}

func msgLess(a, b Message) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	return a.seq < b.seq
}

// settle is the deterministic round barrier: it retires the consumed
// inboxes into the pool (payload-cleared) and clears the schedules,
// stages every active machine's outgoing messages and next-round
// schedules in ascending machine order — the merge order that keeps
// delivery, pair accounting and violations bit-identical across
// backends — enforces the per-machine I/O cap, folds the round's staged
// pair-communication runs into the lifetime map in one pass, recycles
// each Ctx for the backend's slab, and folds memory accounting. ctxAt
// maps an active-set position (and its machine id) to the Ctx the
// handler ran with.
func (b *backendBase) settle(active []int, ctxAt func(i, id int) *Ctx) {
	for _, id := range active {
		b.inboxes[id] = b.pool.retire(b.inboxes[id])
		b.sched[id] = false
	}
	for i, id := range active {
		ctx := ctxAt(i, id)
		sent := 0
		for _, msg := range ctx.out {
			sent += msg.Words
			if msg.To < 0 || msg.To >= len(b.c.machines) {
				b.c.violation("machine %d sent to invalid machine %d", id, msg.To)
				continue
			}
			b.inboxes[msg.To] = b.pool.grab(b.inboxes[msg.To], msg)
			b.markPending(msg.To)
			b.pairs.add(msg.From, msg.To, msg.Words)
		}
		if sent > b.c.cfg.MemWords {
			b.c.violation("machine %d sent %d words in one round (cap %d)", id, sent, b.c.cfg.MemWords)
		}
		for _, s := range ctx.schedule {
			if !b.sched[s] {
				b.sched[s] = true
				b.markPending(s)
			}
		}
		ctx.recycle()
	}
	b.pairs.fold(&b.c.stats)
	for _, id := range active {
		if mr, ok := b.c.machines[id].(MemReporter); ok {
			w := mr.MemWords()
			if w > b.c.stats.PeakMemWords {
				b.c.stats.PeakMemWords = w
			}
			if w > b.c.cfg.MemWords {
				b.c.violation("machine %d uses %d words (cap %d)", id, w, b.c.cfg.MemWords)
			}
		}
	}
}
