package dyncon

import (
	"math/rand"
	"testing"

	"dmpc/internal/graph"
	"dmpc/internal/seqdyn"
)

// checkPartition compares the distributed component labels with the
// oracle's partition.
func checkPartition(t *testing.T, d *D, g *graph.Graph, tag string) {
	t.Helper()
	comp := graph.Components(g)
	mine := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		mine[v] = int(d.CompOf(v))
	}
	if !graph.SameLabeling(comp, mine) {
		t.Fatalf("%s: partition mismatch", tag)
	}
}

func TestCCBasicLinkCut(t *testing.T) {
	d := New(Config{N: 6, Mode: CC})
	g := graph.New(6)

	apply := func(up graph.Update) {
		if up.Op == graph.Insert {
			d.Insert(up.U, up.V, up.W)
		} else {
			d.Delete(up.U, up.V)
		}
		g.Apply(up)
		if err := d.Validate(); err != nil {
			t.Fatalf("after %v: %v", up, err)
		}
		checkPartition(t, d, g, up.String())
	}

	apply(graph.Update{Op: graph.Insert, U: 0, V: 1, W: 1})
	apply(graph.Update{Op: graph.Insert, U: 1, V: 2, W: 1})
	apply(graph.Update{Op: graph.Insert, U: 3, V: 4, W: 1})
	apply(graph.Update{Op: graph.Insert, U: 2, V: 3, W: 1})
	apply(graph.Update{Op: graph.Insert, U: 0, V: 4, W: 1}) // cycle -> non-tree
	apply(graph.Update{Op: graph.Delete, U: 2, V: 3})       // tree edge, replaced by (0,4)
	apply(graph.Update{Op: graph.Delete, U: 0, V: 1})
	apply(graph.Update{Op: graph.Insert, U: 5, V: 0, W: 1})
	apply(graph.Update{Op: graph.Delete, U: 1, V: 2})
}

func TestCCRandomStreamAgainstOracle(t *testing.T) {
	const n = 24
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := New(Config{N: n, Mode: CC})
		g := graph.New(n)
		for step, up := range graph.RandomStream(n, 250, 0.55, 1, rng) {
			if up.Op == graph.Insert {
				d.Insert(up.U, up.V, 1)
			} else {
				d.Delete(up.U, up.V)
			}
			g.Apply(up)
			if err := d.Validate(); err != nil {
				t.Fatalf("seed %d step %d (%v): %v", seed, step, up, err)
			}
			checkPartition(t, d, g, up.String())
		}
	}
}

func TestCCTreeChurn(t *testing.T) {
	const n = 30
	rng := rand.New(rand.NewSource(2))
	initial, churn := graph.TreeChurn(n, 25, 40, 1, rng)
	d := New(Config{N: n, Mode: CC})
	g := graph.New(n)
	for _, up := range append(initial, churn...) {
		if up.Op == graph.Insert {
			d.Insert(up.U, up.V, up.W)
		} else {
			d.Delete(up.U, up.V)
		}
		g.Apply(up)
		if err := d.Validate(); err != nil {
			t.Fatalf("after %v: %v", up, err)
		}
		checkPartition(t, d, g, up.String())
	}
}

func TestCCConnectedQueries(t *testing.T) {
	const n = 16
	rng := rand.New(rand.NewSource(7))
	d := New(Config{N: n, Mode: CC})
	g := graph.New(n)
	for _, up := range graph.RandomStream(n, 120, 0.6, 1, rng) {
		if up.Op == graph.Insert {
			d.Insert(up.U, up.V, 1)
		} else {
			d.Delete(up.U, up.V)
		}
		g.Apply(up)
	}
	comp := graph.Components(g)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v += 3 {
			if d.Connected(u, v) != (comp[u] == comp[v]) {
				t.Fatalf("Connected(%d,%d) wrong", u, v)
			}
		}
	}
}

func TestCCDuplicateAndNoopUpdates(t *testing.T) {
	d := New(Config{N: 4, Mode: CC})
	g := graph.New(4)
	d.Insert(0, 1, 1)
	g.Insert(0, 1, 1)
	d.Insert(0, 1, 1) // duplicate
	d.Insert(1, 0, 1) // duplicate reversed
	d.Insert(2, 2, 1) // self loop
	d.Delete(0, 3)    // unknown
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	checkPartition(t, d, g, "noops")
	d.Delete(0, 1)
	g.Delete(0, 1)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	checkPartition(t, d, g, "delete")
}

func TestCCRoundsPerUpdateConstant(t *testing.T) {
	// The §5 guarantee: O(1) rounds per update in the worst case. The
	// protocol constant is ~10; assert a hard ceiling and, critically,
	// that it does not grow with n.
	worst := map[int]int{}
	for _, n := range []int{16, 64, 256} {
		rng := rand.New(rand.NewSource(11))
		d := New(Config{N: n, Mode: CC})
		for _, up := range graph.RandomStream(n, 300, 0.55, 1, rng) {
			var st = d.Insert(up.U, up.V, 1)
			if up.Op == graph.Delete {
				st = d.Delete(up.U, up.V)
			}
			if st.Rounds > worst[n] {
				worst[n] = st.Rounds
			}
		}
		if worst[n] > 14 {
			t.Fatalf("n=%d: worst rounds %d exceeds protocol constant", n, worst[n])
		}
	}
	if worst[256] > worst[16]+2 {
		t.Fatalf("rounds grow with n: %v", worst)
	}
}

func TestMSTExactMatchesOracle(t *testing.T) {
	const n = 20
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed + 40))
		d := New(Config{N: n, Mode: MST, Eps: 0})
		g := graph.New(n)
		oracle := seqdyn.NewDynMSF(n)
		for step, up := range graph.RandomStream(n, 220, 0.6, 40, rng) {
			if up.Op == graph.Insert {
				d.Insert(up.U, up.V, up.W)
				oracle.Insert(up.U, up.V, up.W)
			} else {
				d.Delete(up.U, up.V)
				oracle.Delete(up.U, up.V)
			}
			g.Apply(up)
			if err := d.Validate(); err != nil {
				t.Fatalf("seed %d step %d (%v): %v", seed, step, up, err)
			}
			if got, want := d.ForestWeight(), graph.MSFWeight(g); got != want {
				t.Fatalf("seed %d step %d (%v): forest weight %d, Kruskal %d",
					seed, step, up, got, want)
			}
			checkPartition(t, d, g, up.String())
		}
	}
}

func TestMSTSwapOnCycleInsert(t *testing.T) {
	d := New(Config{N: 4, Mode: MST})
	g := graph.New(4)
	ins := func(u, v int, w graph.Weight) {
		d.Insert(u, v, w)
		g.Insert(u, v, w)
	}
	ins(0, 1, 10)
	ins(1, 2, 20)
	ins(2, 3, 30)
	// Closing edge lighter than the heaviest cycle edge: must swap.
	ins(0, 3, 5)
	if got, want := d.ForestWeight(), graph.MSFWeight(g); got != want {
		t.Fatalf("weight %d want %d", got, want)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// The evicted edge (2,3) must survive as a non-tree record.
	found := false
	for _, e := range d.NonTreeEdges() {
		if e.U == 2 && e.V == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("evicted edge not kept as non-tree")
	}
	// Deleting a light tree edge must promote the best replacement.
	d.Delete(1, 2)
	g.Delete(1, 2)
	if got, want := d.ForestWeight(), graph.MSFWeight(g); got != want {
		t.Fatalf("after delete: weight %d want %d", got, want)
	}
}

func TestMSTEpsilonBucketing(t *testing.T) {
	const n = 18
	eps := 0.25
	rng := rand.New(rand.NewSource(3))
	d := New(Config{N: n, Mode: MST, Eps: eps})
	g := graph.New(n)        // true weights
	bucketed := graph.New(n) // bucketed weights
	for _, up := range graph.RandomStream(n, 160, 0.65, 500, rng) {
		if up.Op == graph.Insert {
			d.Insert(up.U, up.V, up.W)
			g.Insert(up.U, up.V, up.W)
			bucketed.Insert(up.U, up.V, graph.BucketWeight(up.W, eps))
		} else {
			d.Delete(up.U, up.V)
			g.Delete(up.U, up.V)
			bucketed.Delete(up.U, up.V)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("after %v: %v", up, err)
		}
		// The maintained forest is an exact MSF of the bucketed weights...
		if got, want := d.ForestWeight(), graph.MSFWeight(bucketed); got != want {
			t.Fatalf("bucketed weight %d want %d", got, want)
		}
		// ...which puts the true optimum within (1+eps) plus integer slack.
		opt := float64(graph.MSFWeight(g))
		lower := float64(d.ForestWeight())
		if lower > opt {
			t.Fatalf("bucketed MSF %v exceeds true optimum %v", lower, opt)
		}
		if opt > lower*(1+eps)+float64(n)*(1+eps) {
			t.Fatalf("approximation violated: opt %v, bucketed %v", opt, lower)
		}
	}
}

func TestEntropyCoordinatorPattern(t *testing.T) {
	// §8: the broadcast-style CC algorithm spreads communication; its
	// entropy should exceed a pure star pattern's. Sanity check only.
	const n = 32
	rng := rand.New(rand.NewSource(5))
	d := New(Config{N: n, Mode: CC})
	for _, up := range graph.RandomStream(n, 150, 0.6, 1, rng) {
		if up.Op == graph.Insert {
			d.Insert(up.U, up.V, 1)
		} else {
			d.Delete(up.U, up.V)
		}
	}
	if d.Cluster().CommEntropy() < 2 {
		t.Fatalf("entropy %.2f suspiciously low for a broadcast protocol", d.Cluster().CommEntropy())
	}
}

// TestCCSoakLargerScale runs a long mixed stream at a larger size,
// validating the full distributed state periodically — a tripwire for
// rare interaction bugs between cuts, links and anchor maintenance.
func TestCCSoakLargerScale(t *testing.T) {
	const n = 60
	rng := rand.New(rand.NewSource(314))
	d := New(Config{N: n, Mode: CC, ExpectedEdges: 400})
	g := graph.New(n)
	for step, up := range graph.RandomStream(n, 900, 0.52, 1, rng) {
		if up.Op == graph.Insert {
			d.Insert(up.U, up.V, 1)
		} else {
			d.Delete(up.U, up.V)
		}
		g.Apply(up)
		if step%10 == 0 || step > 870 {
			if err := d.Validate(); err != nil {
				t.Fatalf("step %d (%v): %v", step, up, err)
			}
			checkPartition(t, d, g, up.String())
		}
	}
	if d.Cluster().Stats().Violations != 0 {
		t.Fatalf("%d model violations", d.Cluster().Stats().Violations)
	}
}
