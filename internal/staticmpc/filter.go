package staticmpc

import (
	"dmpc/internal/graph"
	"dmpc/internal/mpc"
)

// Filtering spanning forest / minimum spanning forest (Lattanzi et al.
// [26], the static baseline the paper cites for CC and MST). Edges are
// spread over the machines; every round each live machine computes the MSF
// of its local edge set (local computation is free in the MPC model),
// discards the rest, and ships the survivors to a machine of the next,
// halved group. After O(log(m/n)) rounds one machine holds a forest of the
// whole graph. As the paper notes, this baseline needs per-machine memory
// Ω(n); the bench configures it accordingly and the memory gap versus the
// dynamic algorithms is part of the reproduced contrast.

type filterMsg struct {
	edges []graph.WEdge
}

type filterMachine struct {
	n      int
	edges  []graph.WEdge
	live   bool
	target int // machine to ship survivors to; -1 = keep (final machine)
}

func (m *filterMachine) MemWords() int { return 3 * len(m.edges) }

func (m *filterMachine) HandleRound(ctx *mpc.Ctx, inbox []mpc.Message) {
	for _, msg := range inbox {
		if fm, ok := msg.Payload.(filterMsg); ok {
			m.edges = append(m.edges, fm.edges...)
		}
	}
	if !m.live {
		return
	}
	m.live = false
	m.edges = localMSF(m.n, m.edges)
	if m.target >= 0 {
		ctx.Send(m.target, filterMsg{edges: m.edges}, 3*len(m.edges)+1)
		m.edges = nil
	}
}

// localMSF runs Kruskal on an arbitrary edge multiset.
func localMSF(n int, edges []graph.WEdge) []graph.WEdge {
	g := graph.New(n)
	for _, e := range edges {
		if cur, ok := g.WeightOf(e.U, e.V); !ok || e.W < cur {
			g.Delete(e.U, e.V)
			g.Insert(e.U, e.V, e.W)
		}
	}
	return graph.MSFEdges(g)
}

// MinSpanningForest computes an MSF of g by filtering, returning the forest
// edges and the accounting. mu 0 sizes the cluster automatically.
func MinSpanningForest(g *graph.Graph, mu int) ([]graph.WEdge, Result) {
	n := g.N()
	edges := g.Edges()
	if mu <= 0 {
		mu = (len(edges)+n)/maxInt(n, 1) + 2
	}
	if mu < 2 {
		mu = 2
	}
	// Per-machine memory must hold a forest plus its input share.
	mem := 3*(len(edges)/mu+1) + 6*n + 16
	cl := mpc.NewCluster(mpc.Config{Machines: mu, MemWords: mem})
	machines := make([]*filterMachine, mu)
	for i := range machines {
		machines[i] = &filterMachine{n: n}
		cl.SetMachine(i, machines[i])
	}
	for i, e := range edges {
		m := machines[i%mu]
		m.edges = append(m.edges, e)
	}

	cl.BeginUpdate()
	for live := mu; live > 1; live = (live + 1) / 2 {
		half := (live + 1) / 2
		for i := 0; i < live; i++ {
			machines[i].live = true
			if i >= half {
				machines[i].target = i - half
			} else {
				machines[i].target = -1
			}
			cl.Schedule(i)
		}
		cl.Round() // filter + ship
		cl.Round() // absorb
	}
	machines[0].live = true
	machines[0].target = -1
	cl.Schedule(0)
	cl.Round() // final local MSF
	stats := cl.EndUpdate()

	return machines[0].edges, resultFrom(stats)
}

// SpanningForest computes an unweighted spanning forest by filtering.
func SpanningForest(g *graph.Graph, mu int) ([]graph.Edge, Result) {
	wedges, res := MinSpanningForest(g, mu)
	out := make([]graph.Edge, len(wedges))
	for i, e := range wedges {
		out[i] = graph.Edge{U: e.U, V: e.V}
	}
	return out, res
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ApproxMinSpanningForest computes a (1+eps)-approximate MSF by rounding
// weights into (1+eps) buckets before filtering — §5.1's preprocessing
// recipe ("it is enough to bucket the edges by weights and compute
// connected components by considering the edges in buckets of increasing
// weights"). The returned edges carry their original weights.
func ApproxMinSpanningForest(g *graph.Graph, eps float64, mu int) ([]graph.WEdge, Result) {
	rounded := graph.New(g.N())
	for _, e := range g.Edges() {
		rounded.Insert(e.U, e.V, graph.BucketWeight(e.W, eps))
	}
	forest, res := MinSpanningForest(rounded, mu)
	out := make([]graph.WEdge, len(forest))
	for i, e := range forest {
		w, _ := g.WeightOf(e.U, e.V)
		out[i] = graph.WEdge{U: e.U, V: e.V, W: w}
	}
	return out, res
}
