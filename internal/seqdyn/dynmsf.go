package seqdyn

import (
	"fmt"

	"dmpc/internal/graph"
)

// DynMSF maintains an exact minimum spanning forest under edge insertions
// and deletions.
//
// Insertions run in O(log n) amortized via link-cut path maxima (if the new
// edge closes a cycle, the heaviest cycle edge is evicted). Deletions of
// tree edges search the smaller side of the cut for the minimum-weight
// replacement by enumerating its vertices over an Euler-tour tree —
// correct, but O(smaller side) rather than the polylogarithmic bound of the
// full Holm et al. MSF; DESIGN.md records this substitution (the §7
// reduction's claim is "rounds proportional to sequential work", which the
// operation counter captures either way).
type DynMSF struct {
	n       int
	lct     *LCT
	ett     *ETT // mirrors the tree edges, for smaller-side enumeration
	edgeID  map[graph.Edge]int
	edgeOf  map[int]graph.Edge
	weights map[graph.Edge]graph.Weight
	isTree  map[graph.Edge]bool
	adj     []map[int32]bool // full graph adjacency (tree + non-tree)
	Ops     Counter
}

// NewDynMSF returns an empty forest on n vertices.
func NewDynMSF(n int) *DynMSF {
	d := &DynMSF{
		n:       n,
		edgeID:  make(map[graph.Edge]int),
		edgeOf:  make(map[int]graph.Edge),
		weights: make(map[graph.Edge]graph.Weight),
		isTree:  make(map[graph.Edge]bool),
		adj:     make([]map[int32]bool, n),
	}
	d.lct = NewLCT(n, &d.Ops)
	d.ett = NewETT(&d.Ops)
	for i := range d.adj {
		d.adj[i] = make(map[int32]bool)
	}
	return d
}

func (d *DynMSF) linkTree(e graph.Edge) {
	id := d.lct.AddNode(int64(d.weights[e]))
	d.edgeID[e] = id
	d.edgeOf[id] = e
	d.lct.Link(e.U, id)
	d.lct.Link(id, e.V)
	d.ett.Link(e.U, e.V)
	d.isTree[e] = true
}

func (d *DynMSF) cutTree(e graph.Edge) {
	id := d.edgeID[e]
	d.lct.Cut(e.U, id)
	d.lct.Cut(id, e.V)
	d.ett.Cut(e.U, e.V)
	delete(d.edgeID, e)
	delete(d.edgeOf, id)
	d.isTree[e] = false
}

// Insert adds edge (u,v) with weight w, restoring minimality. Duplicates
// and self-loops are no-ops.
func (d *DynMSF) Insert(u, v int, w graph.Weight) {
	if u == v {
		return
	}
	e := graph.NormEdge(u, v)
	if _, dup := d.weights[e]; dup {
		return
	}
	d.weights[e] = w
	d.adj[u][int32(v)] = true
	d.adj[v][int32(u)] = true
	d.Ops.Inc(1)
	if !d.lct.Connected(u, v) {
		d.linkTree(e)
		return
	}
	// Cycle: evict the heaviest edge if heavier than the new one.
	node, val := d.lct.PathMax(u, v)
	if val <= int64(w) {
		d.isTree[e] = false
		return
	}
	old := d.edgeOf[node]
	d.cutTree(old)
	d.linkTree(e)
}

// Delete removes edge (u,v); if it was a tree edge the minimum replacement
// across the cut is promoted. Unknown edges are no-ops.
func (d *DynMSF) Delete(u, v int) {
	e := graph.NormEdge(u, v)
	if _, ok := d.weights[e]; !ok {
		return
	}
	tree := d.isTree[e]
	delete(d.weights, e)
	delete(d.adj[e.U], int32(e.V))
	delete(d.adj[e.V], int32(e.U))
	d.Ops.Inc(1)
	if !tree {
		delete(d.isTree, e)
		return
	}
	d.cutTree(e)
	delete(d.isTree, e)

	// Enumerate the smaller side; scan its incident edges for the
	// minimum-weight crossing edge.
	side := e.U
	if d.ett.TreeSize(e.U) > d.ett.TreeSize(e.V) {
		side = e.V
	}
	var best graph.Edge
	bestW := graph.Weight(0)
	found := false
	for _, x := range d.ett.TourVertices(side) {
		for y := range d.adj[x] {
			d.Ops.Inc(1)
			ne := graph.NormEdge(x, int(y))
			if d.isTree[ne] {
				continue
			}
			if d.ett.Connected(x, int(y)) {
				continue // internal to the small side
			}
			w := d.weights[ne]
			if !found || w < bestW || (w == bestW && less(ne, best)) {
				best, bestW, found = ne, w, true
			}
		}
	}
	if found {
		d.linkTree(best)
	}
}

func less(a, b graph.Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// Connected reports whether u and v are connected in the current graph.
func (d *DynMSF) Connected(u, v int) bool { return d.ett.Connected(u, v) }

// Weight returns the total weight of the maintained forest.
func (d *DynMSF) Weight() graph.Weight {
	var total graph.Weight
	for e, tree := range d.isTree {
		if tree {
			total += d.weights[e]
		}
	}
	return total
}

// ForestEdges returns the current forest's edges.
func (d *DynMSF) ForestEdges() []graph.Edge {
	var out []graph.Edge
	for e, tree := range d.isTree {
		if tree {
			out = append(out, e)
		}
	}
	return out
}

// CheckInvariants verifies the forest is consistent (every tree edge is in
// both the LCT and ETT mirrors).
func (d *DynMSF) CheckInvariants() error {
	for e, tree := range d.isTree {
		if !tree {
			continue
		}
		if _, ok := d.edgeID[e]; !ok {
			return fmt.Errorf("tree edge %v missing LCT node", e)
		}
		if !d.ett.Connected(e.U, e.V) {
			return fmt.Errorf("tree edge %v not connected in ETT", e)
		}
	}
	return nil
}
