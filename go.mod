module dmpc

go 1.22
