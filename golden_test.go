package dmpc

import (
	"bytes"
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dmpc/internal/graph"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata golden files")

// goldenReport is the serialized accounting of one workload: every batch
// window (including per-wave attribution), every query window, and every
// mixed op window, verbatim.
type goldenReport struct {
	Name    string
	Batches []BatchStats
	Queries []QueryStats
	Mixed   []MixedStats `json:",omitempty"`
}

// goldenWorkloads runs a fixed seed/workload through every algorithm's
// batch and query pipelines and returns the complete recorded accounting.
// Any intentional scheduler change shows up as a diff against
// testdata/golden_stats.json and is re-pinned with `go test -run Golden
// -update .`; an unintentional one fails the table.
func goldenWorkloads() []goldenReport {
	const n = 48
	stream := graph.RandomStream(n, 160, 0.55, 30, rand.New(rand.NewSource(77)))
	pairs := graph.RandomPairs(n, 24, rand.New(rand.NewSource(78)))
	verts := graph.RandomVerts(n, 24, rand.New(rand.NewSource(79)))
	var out []goldenReport

	cc := NewConnectivity(n, 5*n)
	for _, b := range Chunk(stream, 16) {
		cc.ApplyBatch(b)
	}
	cc.ConnectedBatch(pairs)
	cc.ComponentOf(0)
	out = append(out, goldenReport{
		Name:    "dyncon-cc k=16 + ConnectedBatch(24) + ComponentOf",
		Batches: cc.Cluster().Stats().Batches(),
		Queries: cc.Cluster().Stats().Queries(),
	})

	mst := NewMST(n, 0.25, 5*n)
	for _, b := range Chunk(stream, 16) {
		mst.ApplyBatch(b)
	}
	mst.ConnectedBatch(pairs)
	out = append(out, goldenReport{
		Name:    "dyncon-mst eps=0.25 k=16 + ConnectedBatch(24)",
		Batches: mst.Cluster().Stats().Batches(),
		Queries: mst.Cluster().Stats().Queries(),
	})

	mm := NewMaximalMatching(n, len(stream))
	for _, b := range Chunk(stream, 16) {
		mm.ApplyBatch(b)
	}
	mm.MateOfBatch(verts)
	out = append(out, goldenReport{
		Name:    "dmm k=16 + MateOfBatch(24)",
		Batches: mm.Cluster().Stats().Batches(),
		Queries: mm.Cluster().Stats().Queries(),
	})

	am := NewAlmostMaximalMatching(n, 0.5, 7)
	for _, b := range Chunk(stream, 16) {
		am.ApplyBatch(b)
	}
	am.MateOfBatch(verts)
	out = append(out, goldenReport{
		Name:    "amm eps=0.5 seed=7 k=16 + MateOfBatch(24)",
		Batches: am.Cluster().Stats().Batches(),
		Queries: am.Cluster().Stats().Queries(),
	})

	// Mixed op pipeline: the same stream with reads sequenced into the
	// waves, pinning the MixedStats attribution (update/query halves and
	// per-wave read counts) against silent drift.
	mrng := rand.New(rand.NewSource(80))
	mops := graph.MixedStream(stream, 0.4, func(r *rand.Rand) Op {
		return OpQConnected(r.Intn(n), r.Intn(n))
	}, mrng)
	mcc := NewConnectivity(n, 5*n)
	for _, chunk := range SplitOps(mops, 20) {
		mcc.Apply(chunk)
	}
	out = append(out, goldenReport{
		Name:    "dyncon-cc mixed readfrac=0.4 k=20 (unified op pipeline)",
		Batches: mcc.Cluster().Stats().Batches(),
		Queries: mcc.Cluster().Stats().Queries(),
		Mixed:   mcc.Cluster().Stats().Mixed(),
	})
	return out
}

// TestGoldenStats pins the exact BatchStats/QueryStats accounting — rounds,
// actives, words, and the per-wave breakdown — of a fixed seed/workload for
// every algorithm, so a scheduler refactor cannot silently change round
// accounting: any drift fails here and must be re-pinned explicitly with
// -update, making the accounting change visible in review.
func TestGoldenStats(t *testing.T) {
	got, err := json.MarshalIndent(goldenWorkloads(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "golden_stats.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with `go test -run Golden -update .`)", err)
	}
	if !bytes.Equal(got, want) {
		// Point at the first diverging line to keep the failure readable.
		gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Fatalf("round accounting drifted from %s at line %d:\n got: %s\nwant: %s\n(re-pin intentional changes with `go test -run Golden -update .`)",
					path, i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("round accounting drifted from %s (length %d vs %d); re-pin intentional changes with `go test -run Golden -update .`",
			path, len(got), len(want))
	}
}
