package graph

// FuzzStream deterministically decodes raw fuzzer bytes into an update
// sequence on n vertices — the shared front-end of the FuzzBatchEquivalence
// harnesses. Every byte string decodes to a legal sequence: three bytes per
// update (op/weight selector, two endpoints), a would-be self-loop bumps
// its second endpoint, and the decoder does NOT filter semantically
// redundant operations — duplicate inserts and deletes of absent edges stay
// in the stream on purpose, because dyncon must agree with sequential
// replay on no-ops exactly as it does on effective updates. Algorithms
// whose stream contract requires well-formedness (dmm, amm) decode through
// FuzzStreamWellFormed instead.
func FuzzStream(data []byte, n int, maxW Weight) []Update {
	if n < 2 {
		return nil
	}
	ups := make([]Update, 0, len(data)/3)
	for i := 0; i+2 < len(data); i += 3 {
		sel, b1, b2 := data[i], data[i+1], data[i+2]
		u := int(b1) % n
		v := int(b2) % n
		if u == v {
			v = (v + 1) % n
		}
		if sel&1 == 0 {
			w := Weight(1)
			if maxW > 1 {
				w = 1 + Weight(sel>>1)%maxW
			}
			ups = append(ups, Update{Op: Insert, U: u, V: v, W: w})
		} else {
			ups = append(ups, Update{Op: Delete, U: u, V: v})
		}
	}
	return ups
}

// FuzzOps deterministically decodes raw fuzzer bytes into a mixed op
// stream on n vertices — the shared front-end of the FuzzMixedEquivalence
// harnesses. Three bytes per op, like FuzzStream: the selector's low two
// bits choose between an update (0, 1: decoded exactly like FuzzStream so
// update-only prefixes stay byte-compatible with the batch harnesses) and
// a query drawn from qkinds (2, 3), keeping roughly half of every random
// stream reads. qkinds may include OpSetWeight, in which case the drawn
// op is a vertex-weight write (U, W = third byte mod maxW+1) instead of a
// read. Callers whose update contract requires well-formedness
// (dmm) set wellFormed, which filters the interleaved updates through the
// FuzzStreamWellFormed rules while queries pass through untouched at their
// stream positions.
func FuzzOps(data []byte, n int, maxW Weight, qkinds []OpKind, wellFormed bool) []Op {
	ops, _ := fuzzOps(data, 3, n, maxW, qkinds, wellFormed)
	return ops
}

// fuzzOps is the stride-parameterized decoder behind FuzzOps and
// FuzzArrivals: each record is stride (>= 3) bytes, the first three
// decode the op exactly as FuzzOps documents, and any extra record bytes
// ride along with the emitted op — extras[j] holds bytes 3..stride of the
// j-th emitted op's record, so a record dropped by the well-formed filter
// drops its extra bytes too and extras stays index-aligned with ops.
func fuzzOps(data []byte, stride, n int, maxW Weight, qkinds []OpKind, wellFormed bool) (ops []Op, extras [][]byte) {
	if n < 2 || len(qkinds) == 0 {
		return nil, nil
	}
	// Well-formedness state for the update side only.
	g := New(n)
	var present []Edge
	pos := make(map[Edge]int)
	ops = make([]Op, 0, len(data)/stride)
	extras = make([][]byte, 0, len(data)/stride)
	emit := func(op Op, i int) {
		ops = append(ops, op)
		extras = append(extras, data[i+3:i+stride])
	}
	for i := 0; i+stride-1 < len(data); i += stride {
		sel, b1, b2 := data[i], data[i+1], data[i+2]
		u := int(b1) % n
		v := int(b2) % n
		if u == v {
			v = (v + 1) % n
		}
		switch sel & 3 {
		case 2, 3:
			k := qkinds[int(sel>>2)%len(qkinds)]
			if k == OpSetWeight {
				// A vertex-weight write drawn from the kind list: not
				// a query, but it rides the query selector so harnesses
				// opting in get weight churn interleaved with reads.
				emit(Op{Kind: OpSetWeight, U: u, W: Weight(b2) % (maxW + 1)}, i)
				continue
			}
			if k == OpComponentOf || k == OpMateOf || k == OpTreeTop {
				v = 0
			}
			if k == OpSubtreeSum || k == OpPathSum {
				// Undo the self-loop bump: rooting a subtree query at u
				// itself and the trivial u-u path are both legal and have
				// dedicated fast paths worth fuzzing.
				v = int(b2) % n
			}
			emit(Op{Kind: k, U: u, V: v}, i)
			continue
		}
		up := Update{Op: Delete, U: u, V: v}
		if sel&1 == 0 {
			w := Weight(1)
			if maxW > 1 {
				w = 1 + Weight(sel>>1)%maxW
			}
			up = Update{Op: Insert, U: u, V: v, W: w}
		}
		if !wellFormed {
			emit(OpUpdate(up), i)
			continue
		}
		e := NormEdge(up.U, up.V)
		if up.Op == Insert {
			if g.Has(e.U, e.V) {
				continue
			}
			g.Insert(e.U, e.V, up.W)
			pos[e] = len(present)
			present = append(present, e)
			emit(OpUpdate(up), i)
			continue
		}
		if !g.Has(e.U, e.V) {
			if len(present) == 0 {
				continue
			}
			e = present[(e.U+e.V)%len(present)]
		}
		last := len(present) - 1
		j := pos[e]
		present[j] = present[last]
		pos[present[j]] = j
		present = present[:last]
		delete(pos, e)
		g.Delete(e.U, e.V)
		emit(OpDel(e.U, e.V), i)
	}
	return ops, extras
}

// FuzzStreamWellFormed decodes like FuzzStream but keeps the sequence
// well-formed — no duplicate inserts, no deletes of absent edges — which is
// the standard dynamic-algorithm stream contract that dmm's and amm's
// degree bookkeeping relies on (see the startInsert comment in dmm). To
// preserve delete coverage, a delete whose decoded target is absent falls
// back to deleting a deterministically chosen present edge instead of being
// dropped; duplicate inserts are dropped (there is no canonical fallback
// edge to insert).
func FuzzStreamWellFormed(data []byte, n int, maxW Weight) []Update {
	raw := FuzzStream(data, n, maxW)
	g := New(n)
	var present []Edge
	pos := make(map[Edge]int)
	ups := make([]Update, 0, len(raw))
	for _, up := range raw {
		e := NormEdge(up.U, up.V)
		if up.Op == Insert {
			if g.Has(e.U, e.V) {
				continue
			}
			g.Insert(e.U, e.V, up.W)
			pos[e] = len(present)
			present = append(present, e)
			ups = append(ups, up)
			continue
		}
		if !g.Has(e.U, e.V) {
			if len(present) == 0 {
				continue
			}
			e = present[(e.U+e.V)%len(present)]
		}
		last := len(present) - 1
		i := pos[e]
		present[i] = present[last]
		pos[present[i]] = i
		present = present[:last]
		delete(pos, e)
		g.Delete(e.U, e.V)
		ups = append(ups, Update{Op: Delete, U: e.U, V: e.V})
	}
	return ups
}
