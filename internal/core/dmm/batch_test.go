package dmm

import (
	"math/rand"
	"testing"

	"dmpc/internal/graph"
)

// TestBatchEquivalence pins the batch pipeline's contract: applying a
// stream in batches of k yields exactly the matching produced by applying
// the updates one at a time, for both the §3 and §4 structures.
func TestBatchEquivalence(t *testing.T) {
	for _, three := range []bool{false, true} {
		for _, k := range []int{1, 5, 16} {
			const n, capEdges = 48, 300
			rng := rand.New(rand.NewSource(11))
			stream := graph.RandomStream(n, 240, 0.55, 1, rng)

			seqM := New(Config{N: n, CapEdges: capEdges, ThreeHalves: three})
			for _, up := range stream {
				if up.Op == graph.Insert {
					seqM.Insert(up.U, up.V)
				} else {
					seqM.Delete(up.U, up.V)
				}
			}

			batM := New(Config{N: n, CapEdges: capEdges, ThreeHalves: three})
			g := graph.New(n)
			for _, b := range graph.Chunk(stream, k) {
				st := batM.ApplyBatch(b)
				if st.Updates != len(b) || st.Rounds == 0 {
					t.Fatalf("three=%v k=%d: bad batch stats %+v", three, k, st)
				}
				b.Apply(g)
				if err := batM.Validate(g); err != nil {
					t.Fatalf("three=%v k=%d: invariants broken after batch: %v", three, k, err)
				}
			}

			want, got := seqM.MateTable(), batM.MateTable()
			for v := range want {
				if want[v] != got[v] {
					t.Fatalf("three=%v k=%d: mate of %d is %d, sequential %d",
						three, k, v, got[v], want[v])
				}
			}
			if !graph.IsMaximalMatching(g, got) {
				t.Fatalf("three=%v k=%d: batched matching not maximal", three, k)
			}
			if v := batM.Cluster().Stats().Violations; v != 0 {
				t.Fatalf("three=%v k=%d: %d cluster constraint violations", three, k, v)
			}
		}
	}
}

// TestBatchAmortizedRoundsDrop pins the batching win: chaining k updates
// through MC in one window costs strictly fewer rounds per update than
// separate windows, and the advantage grows with k.
func TestBatchAmortizedRoundsDrop(t *testing.T) {
	const n, capEdges = 48, 300
	perUpdate := func(k int) float64 {
		rng := rand.New(rand.NewSource(5))
		stream := graph.RandomStream(n, 256, 0.55, 1, rng)
		m := New(Config{N: n, CapEdges: capEdges})
		rounds, updates := 0, 0
		for _, b := range graph.Chunk(stream, k) {
			st := m.ApplyBatch(b)
			rounds += st.Rounds
			updates += st.Updates
		}
		return float64(rounds) / float64(updates)
	}
	r1, r16, r64 := perUpdate(1), perUpdate(16), perUpdate(64)
	if r16 >= r1 || r64 >= r16 {
		t.Fatalf("amortized rounds/update did not drop: k=1 %.2f, k=16 %.2f, k=64 %.2f", r1, r16, r64)
	}
}
