// Command dmpctrace runs one dynamic DMPC algorithm over a random update
// stream and prints a per-update trace of the model accounting — rounds,
// active machines, communicated words — plus solution-quality checks
// against sequential oracles. It is the quickest way to watch the
// protocols at work.
//
// Usage:
//
//	dmpctrace -alg cc|mst|mm|mm32|amm [-n 32] [-updates 40] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"dmpc/internal/core/amm"
	"dmpc/internal/core/dmm"
	"dmpc/internal/core/dyncon"
	"dmpc/internal/graph"
	"dmpc/internal/mpc"
)

func main() {
	alg := flag.String("alg", "cc", "algorithm: cc, mst, mm, mm32, amm")
	n := flag.Int("n", 32, "vertices")
	updates := flag.Int("updates", 40, "number of updates")
	seed := flag.Int64("seed", 7, "stream seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	stream := graph.RandomStream(*n, *updates, 0.6, 50, rng)
	g := graph.New(*n)

	var apply func(up graph.Update) mpc.UpdateStats
	var quality func() string

	switch *alg {
	case "cc":
		d := dyncon.New(dyncon.Config{N: *n, Mode: dyncon.CC, ExpectedEdges: 6 * *n})
		apply = func(up graph.Update) mpc.UpdateStats {
			if up.Op == graph.Insert {
				return d.Insert(up.U, up.V, 1)
			}
			return d.Delete(up.U, up.V)
		}
		quality = func() string {
			mine := make([]int, *n)
			for v := 0; v < *n; v++ {
				mine[v] = int(d.CompOf(v))
			}
			ok := graph.SameLabeling(mine, graph.Components(g))
			return fmt.Sprintf("components=%d correct=%v", graph.NumComponents(g), ok)
		}
	case "mst":
		d := dyncon.New(dyncon.Config{N: *n, Mode: dyncon.MST, ExpectedEdges: 6 * *n})
		apply = func(up graph.Update) mpc.UpdateStats {
			if up.Op == graph.Insert {
				return d.Insert(up.U, up.V, up.W)
			}
			return d.Delete(up.U, up.V)
		}
		quality = func() string {
			return fmt.Sprintf("forest=%d kruskal=%d", d.ForestWeight(), graph.MSFWeight(g))
		}
	case "mm", "mm32":
		m := dmm.New(dmm.Config{N: *n, CapEdges: 8 * *n, ThreeHalves: *alg == "mm32"})
		apply = func(up graph.Update) mpc.UpdateStats {
			if up.Op == graph.Insert {
				return m.Insert(up.U, up.V)
			}
			return m.Delete(up.U, up.V)
		}
		quality = func() string {
			mt := m.MateTable()
			s := fmt.Sprintf("|M|=%d maximal=%v", graph.MatchingSize(mt), graph.IsMaximalMatching(g, mt))
			if *alg == "mm32" {
				s += fmt.Sprintf(" no-aug3=%v", !graph.HasLength3AugPath(g, mt))
			}
			return s
		}
	case "amm":
		m := amm.New(amm.Config{N: *n, Seed: *seed})
		apply = func(up graph.Update) mpc.UpdateStats {
			if up.Op == graph.Insert {
				return m.Insert(up.U, up.V)
			}
			return m.Delete(up.U, up.V)
		}
		quality = func() string {
			mt := m.MateTable()
			return fmt.Sprintf("|M|=%d deficit=%d backlog=%d",
				graph.MatchingSize(mt), graph.CountFreeFreeEdges(g, mt), m.QueueBacklog())
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *alg)
		os.Exit(2)
	}

	fmt.Printf("%-4s %-18s %7s %9s %8s  %s\n", "#", "update", "rounds", "machines", "words", "solution")
	for i, up := range stream {
		st := apply(up)
		g.Apply(up)
		fmt.Printf("%-4d %-18s %7d %9d %8d  %s\n",
			i, up.String(), st.Rounds, st.MaxActive, st.MaxWords, quality())
	}
}
