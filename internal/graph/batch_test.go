package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestChunk(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	stream := RandomStream(20, 23, 0.6, 1, rng)
	for _, k := range []int{1, 4, 23, 100} {
		chunks := Chunk(stream, k)
		total := 0
		for i, b := range chunks {
			if len(b) > k {
				t.Fatalf("k=%d: chunk %d has %d updates", k, i, len(b))
			}
			if i < len(chunks)-1 && len(b) != k {
				t.Fatalf("k=%d: non-final chunk %d has %d updates", k, i, len(b))
			}
			total += len(b)
		}
		flat := make([]Update, 0, total)
		for _, b := range chunks {
			flat = append(flat, b...)
		}
		if len(flat) != len(stream) {
			t.Fatalf("k=%d: chunking dropped updates: %d vs %d", k, len(flat), len(stream))
		}
		for i := range flat {
			if flat[i] != stream[i] {
				t.Fatalf("k=%d: update %d reordered", k, i)
			}
		}
	}
	if got := Chunk(stream, 0); len(got[0]) != 1 {
		t.Fatalf("k=0 should clamp to singleton batches, got %d", len(got[0]))
	}
	if got := Chunk(nil, 4); len(got) != 0 {
		t.Fatalf("empty stream should chunk to nothing, got %d batches", len(got))
	}
}

// TestChunkBoundaries pins the edge cases of the k parameter around the
// stream length: k=0 clamps to singletons, k=1 is singletons, k=len is one
// full chunk, k=len+1 (and any larger k, up to MaxInt, which used to panic
// via capacity overflow) still returns exactly one chunk holding the whole
// stream — never a panic, never an empty result.
func TestChunkBoundaries(t *testing.T) {
	stream := []Update{
		{Op: Insert, U: 0, V: 1, W: 1},
		{Op: Insert, U: 1, V: 2, W: 1},
		{Op: Delete, U: 0, V: 1},
	}
	n := len(stream)
	cases := []struct {
		k          int
		wantChunks int
	}{
		{0, n},
		{1, n},
		{n, 1},
		{n + 1, 1},
		{1 << 40, 1},
		{math.MaxInt, 1},
		{-5, n},
	}
	for _, tc := range cases {
		got := Chunk(stream, tc.k)
		if len(got) != tc.wantChunks {
			t.Fatalf("k=%d: %d chunks, want %d", tc.k, len(got), tc.wantChunks)
		}
		var flat []Update
		for _, b := range got {
			flat = append(flat, b...)
		}
		if len(flat) != n {
			t.Fatalf("k=%d: chunking kept %d of %d updates", tc.k, len(flat), n)
		}
		for i := range flat {
			if flat[i] != stream[i] {
				t.Fatalf("k=%d: update %d reordered", tc.k, i)
			}
		}
	}
	for _, k := range []int{0, 1, math.MaxInt} {
		if got := Chunk(nil, k); got != nil {
			t.Fatalf("k=%d: empty stream should chunk to nil, got %v", k, got)
		}
	}
}

func TestBatchApplyMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	stream := RandomStream(16, 80, 0.55, 9, rng)
	seq := New(16)
	for _, up := range stream {
		seq.Apply(up)
	}
	bat := New(16)
	for _, b := range Chunk(stream, 7) {
		b.Apply(bat)
	}
	se, be := seq.Edges(), bat.Edges()
	if len(se) != len(be) {
		t.Fatalf("edge counts differ: %d vs %d", len(be), len(se))
	}
	for i := range se {
		if se[i] != be[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, be[i], se[i])
		}
	}
}

func TestDisjointPrefix(t *testing.T) {
	b := Batch{
		{Op: Insert, U: 0, V: 1},
		{Op: Insert, U: 2, V: 3},
		{Op: Delete, U: 4, V: 5},
		{Op: Insert, U: 1, V: 6}, // shares vertex 1 with the first update
		{Op: Insert, U: 7, V: 8},
	}
	if got := b.DisjointPrefix(0); got != 3 {
		t.Fatalf("DisjointPrefix = %d, want 3", got)
	}
	if got := b.DisjointPrefix(2); got != 2 {
		t.Fatalf("DisjointPrefix capped at 2 = %d", got)
	}
	if got := b[3:].DisjointPrefix(0); got != 2 {
		t.Fatalf("DisjointPrefix of tail = %d, want 2", got)
	}
	if got := (Batch{}).DisjointPrefix(0); got != 0 {
		t.Fatalf("DisjointPrefix of empty = %d, want 0", got)
	}
}

func TestBatchCounts(t *testing.T) {
	b := Batch{
		{Op: Insert, U: 0, V: 1},
		{Op: Delete, U: 0, V: 1},
		{Op: Insert, U: 2, V: 3},
	}
	if b.Inserts() != 2 || b.Deletes() != 1 {
		t.Fatalf("counts: %d inserts, %d deletes", b.Inserts(), b.Deletes())
	}
}
