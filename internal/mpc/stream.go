package mpc

import (
	"math"
	"sort"
)

// StreamStats is the accounting window of one asynchronous op stream —
// the streaming counterpart of MixedStats. Where a mixed window reports
// the amortized rounds per op of one batch, a stream window additionally
// reports what amortization hides: each op's rounds from *arrival* to
// answer, measured on the ingestor's virtual clock (arrivals carry a
// timestamp in rounds; an op admitted at time t and answered by a flush
// window ending at time t' observed latency t'−t, waiting included). The
// p50/p95/p99 of those latencies sit next to RoundsPerOp because the two
// disagree by design: the amortized-optimal batch size k makes early
// arrivals of every chunk wait longest, which is exactly what the
// AutoBatcher's TargetP99Rounds constraint trades against.
//
// A StreamStats is accumulated flush by flush by the facade's Ingestor;
// the zero value is ready to use.
type StreamStats struct {
	Ops     int // ops ingested (updates + queries)
	Updates int
	Queries int

	// Flushes counts the Apply windows the stream was cut into, broken
	// down by what triggered each cut: a conflicting arrival refused
	// admission to the forming set (FlushConflict), the set reaching the
	// batch-size bound k (FlushFull), the oldest forming op reaching the
	// age bound (FlushAge), or the end of the stream (FlushTail).
	Flushes       int
	FlushConflict int
	FlushFull     int
	FlushAge      int
	FlushTail     int

	// Rounds is the total cluster rounds the flush windows executed;
	// Makespan is the virtual time the last flush completed at — at least
	// Rounds, larger when arrival gaps left the cluster idle.
	Rounds   int
	Makespan int64

	// Latencies holds every op's rounds-from-arrival-to-answer, in
	// arrival order (updates count: an update's "answer" is its
	// application landing).
	Latencies []int64

	// Windows holds each flush's mixed accounting, in flush order.
	Windows []MixedStats
}

// RoundsPerOp returns the stream's amortized rounds per op — the same
// figure MixedStats.RoundsPerOp reports per window, over all windows.
func (s StreamStats) RoundsPerOp() float64 {
	if s.Ops == 0 {
		return 0
	}
	return float64(s.Rounds) / float64(s.Ops)
}

// Percentile returns the q-th latency percentile (0 < q <= 100) by the
// nearest-rank rule on a sorted copy of Latencies: the smallest recorded
// latency with at least ceil(q/100·n) recorded latencies at or below it.
// It returns 0 when no latencies were recorded.
func (s StreamStats) Percentile(q float64) int64 {
	n := len(s.Latencies)
	if n == 0 {
		return 0
	}
	sorted := make([]int64, n)
	copy(sorted, s.Latencies)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(float64(n) * q / 100))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// P50 returns the median rounds-from-arrival-to-answer.
func (s StreamStats) P50() int64 { return s.Percentile(50) }

// P95 returns the 95th-percentile rounds-from-arrival-to-answer.
func (s StreamStats) P95() int64 { return s.Percentile(95) }

// P99 returns the 99th-percentile rounds-from-arrival-to-answer.
func (s StreamStats) P99() int64 { return s.Percentile(99) }
