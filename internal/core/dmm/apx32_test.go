package dmm

import (
	"math/rand"
	"testing"

	"dmpc/internal/graph"
)

// drive32 applies a stream checking §4's invariants after every update:
// valid + maximal matching, no length-3 augmenting path (the 3/2
// certificate), exact free-neighbor counters, and storage invariants.
func drive32(t *testing.T, m *M, g *graph.Graph, updates []graph.Update, tag string) {
	t.Helper()
	for step, up := range updates {
		if up.Op == graph.Insert {
			m.Insert(up.U, up.V)
		} else {
			m.Delete(up.U, up.V)
		}
		g.Apply(up)
		mt := m.MateTable()
		if !graph.IsMatching(g, mt) {
			t.Fatalf("%s step %d (%v): invalid matching", tag, step, up)
		}
		if !graph.IsMaximalMatching(g, mt) {
			t.Fatalf("%s step %d (%v): matching not maximal", tag, step, up)
		}
		if graph.HasLength3AugPath(g, mt) {
			t.Fatalf("%s step %d (%v): length-3 augmenting path survived", tag, step, up)
		}
		if err := m.Validate(g); err != nil {
			t.Fatalf("%s step %d (%v): %v", tag, step, up, err)
		}
		// Counters must be exact.
		for v := 0; v < g.N(); v++ {
			want := int32(0)
			g.EachNeighbor(v, func(w int, _ graph.Weight) bool {
				if mt[w] == -1 {
					want++
				}
				return true
			})
			got := m.stats[v/m.coord.statsPer].get(int32(v)).freeNbr
			if got != want {
				t.Fatalf("%s step %d (%v): freeNbr(%d) = %d, want %d",
					tag, step, up, v, got, want)
			}
		}
	}
}

func TestApx32Basic(t *testing.T) {
	m := New(Config{N: 8, CapEdges: 40, ThreeHalves: true})
	g := graph.New(8)
	drive32(t, m, g, []graph.Update{
		{Op: graph.Insert, U: 0, V: 1}, // match (0,1)
		{Op: graph.Insert, U: 2, V: 3}, // match (2,3)
		{Op: graph.Insert, U: 1, V: 2}, // both matched
		{Op: graph.Insert, U: 4, V: 0}, // 4 free, 0 matched: aug via (0,1): 1 has free nbr 2? 2 matched. none
		{Op: graph.Insert, U: 5, V: 1}, // 5 free, 1 matched: mate 0 has free nbr? 4 free! rotate
		{Op: graph.Delete, U: 2, V: 3},
		{Op: graph.Insert, U: 6, V: 7},
		{Op: graph.Delete, U: 6, V: 7},
	}, "basic")
}

func TestApx32RandomStreams(t *testing.T) {
	const n = 20
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed + 21))
		m := New(Config{N: n, CapEdges: 120, ThreeHalves: true})
		g := graph.New(n)
		drive32(t, m, g, graph.RandomStream(n, 250, 0.55, 1, rng), "random32")
	}
}

func TestApx32ApproximationFactor(t *testing.T) {
	// With no length-3 augmenting paths, 3·|M| >= 2·|M*| must hold; check
	// directly against exact maximum matchings on small graphs.
	const n = 14
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed + 31))
		m := New(Config{N: n, CapEdges: 60, ThreeHalves: true})
		g := graph.New(n)
		for _, up := range graph.RandomStream(n, 120, 0.6, 1, rng) {
			if up.Op == graph.Insert {
				m.Insert(up.U, up.V)
			} else {
				m.Delete(up.U, up.V)
			}
			g.Apply(up)
			size := graph.MatchingSize(m.MateTable())
			if 3*size < 2*graph.MaxMatchingSize(g) {
				t.Fatalf("seed %d after %v: |M|=%d vs max %d violates 3/2",
					seed, up, size, graph.MaxMatchingSize(g))
			}
		}
	}
}

func TestApx32PathRotationScenario(t *testing.T) {
	// Construct the canonical rotation: matched edge (b,c) with free a
	// adjacent to b and free d adjacent to c; inserting (a,b) last must
	// trigger the rotation leaving all four matched.
	m := New(Config{N: 4, CapEdges: 16, ThreeHalves: true})
	g := graph.New(4)
	drive32(t, m, g, []graph.Update{
		{Op: graph.Insert, U: 1, V: 2}, // match (1,2)
		{Op: graph.Insert, U: 2, V: 3}, // 3 free, 2 matched: mate 1 has no free nbr
		{Op: graph.Insert, U: 0, V: 1}, // 0 free, 1 matched: mate 2 has free nbr 3: rotate
	}, "rotation")
	mt := m.MateTable()
	for v := 0; v < 4; v++ {
		if mt[v] == -1 {
			t.Fatalf("vertex %d left free after rotation; mate table %v", v, mt)
		}
	}
}

func TestApx32DeleteTriggersSweep(t *testing.T) {
	// A path a-b-c-d with (b,c) matched; deleting (b,c) frees both, and
	// the sweep must leave a maximal matching without length-3 paths.
	m := New(Config{N: 6, CapEdges: 20, ThreeHalves: true})
	g := graph.New(6)
	drive32(t, m, g, []graph.Update{
		{Op: graph.Insert, U: 1, V: 2},
		{Op: graph.Insert, U: 0, V: 1},
		{Op: graph.Insert, U: 2, V: 3},
		{Op: graph.Delete, U: 1, V: 2},
	}, "sweep")
	mt := m.MateTable()
	if mt[0] != 1 || mt[2] != 3 {
		t.Fatalf("expected (0,1) and (2,3) matched; got %v", mt)
	}
}

func TestApx32BoundsRow(t *testing.T) {
	// Table 1 row 2: O(1) rounds, O(n/√N) machines, O(√N) words.
	const n = 30
	rng := rand.New(rand.NewSource(8))
	m := New(Config{N: n, CapEdges: 150, ThreeHalves: true})
	g := graph.New(n)
	worstRounds := 0
	for _, up := range graph.RandomStream(n, 200, 0.55, 1, rng) {
		var st = m.Insert(up.U, up.V)
		if up.Op == graph.Delete {
			st = m.Delete(up.U, up.V)
		}
		g.Apply(up)
		if st.Rounds > worstRounds {
			worstRounds = st.Rounds
		}
	}
	if worstRounds > 60 {
		t.Fatalf("worst rounds %d exceeds protocol constant", worstRounds)
	}
	if m.Cluster().Stats().Violations != 0 {
		t.Fatalf("%d model violations", m.Cluster().Stats().Violations)
	}
}
