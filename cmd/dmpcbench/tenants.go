package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"dmpc"
)

// --- multi-tenant streams: noisy-neighbor isolation -----------------------

// tenantRow is one algorithm's adversarial-mix measurement: a read-mostly
// victim tenant shares the ingestion front door with a write-storm tenant,
// and the victim's p99 rounds-from-arrival is measured solo, shared with
// no controls (unfair), and shared under weighted fair-wave packing plus
// token-bucket admission on the storm (fair). ZeroTenantIdentical is the
// compatibility control: the same shared stream, tenant-tagged but with
// no weights or admission, must answer and account identically to the
// untagged run.
type tenantRow struct {
	Name                string  `json:"name"`
	VictimOps           int     `json:"victim_ops"`
	NoisyOps            int     `json:"noisy_ops"`
	VictimSoloP99       int64   `json:"victim_solo_p99_rounds"`
	VictimUnfairP99     int64   `json:"victim_unfair_p99_rounds"`
	VictimFairP99       int64   `json:"victim_fair_p99_rounds"`
	NoisyRejected       int     `json:"noisy_rejected"`
	VictimFairRounds    float64 `json:"victim_fair_rounds_share"`
	NoisyFairRounds     float64 `json:"noisy_fair_rounds_share"`
	ZeroTenantIdentical bool    `json:"zero_tenant_identical"`
}

// tenantStreams builds the deterministic adversarial mix: one victim
// connectivity query every 4 rounds on the low quarter of the vertex
// range, and a 12-write storm riding each query on the disjoint high
// range (contending only for wave budget and cluster time, never for the
// victim's data). steps scales with -updates.
func tenantStreams(n, steps int) (victim, mixed []dmpc.Arrival) {
	const gap, burst = 4, 12
	lo, hi := n/4, n-1
	pair := 0
	for s := 0; s < steps; s++ {
		at := int64(s) * gap
		u := (s * 2) % (lo - 1)
		q := dmpc.Arrival{At: at, Op: dmpc.QConnected(u, u+1).ForTenant(1)}
		victim = append(victim, q)
		mixed = append(mixed, q)
		for j := 0; j < burst; j++ {
			w := lo + (pair*2)%(hi-lo-1)
			pair++
			mixed = append(mixed, dmpc.Arrival{At: at, Op: dmpc.Ins(w, w+1).ForTenant(2)})
		}
	}
	return victim, mixed
}

// tenantTable measures the noisy-neighbor scenario on the §5 connectivity
// structure (the structure whose claims oracle covers both op kinds the
// scenario uses).
func tenantTable(n, nUpdates int, seed int64) []tenantRow {
	steps := nUpdates / 10
	if steps < 20 {
		steps = 20
	}
	capEdges := 6 * n
	weights := map[int]int{1: 3, 2: 1}
	cfg := dmpc.IngestorConfig{MaxAge: 4}
	victim, mixed := tenantStreams(n, steps)

	solo := dmpc.NewConnectivity(n, capEdges, benchOpts()...)
	_, stSolo := dmpc.Ingest(solo, victim, cfg)

	unfair := dmpc.NewConnectivity(n, capEdges, benchOpts()...)
	_, stUnfair := dmpc.Ingest(unfair, mixed, cfg)

	fairOpts := append(benchOpts(), dmpc.WithTenantWeights(weights))
	fair := dmpc.NewConnectivity(n, capEdges, fairOpts...)
	fairCfg := cfg
	fairCfg.Weights = weights
	fairCfg.Admission = map[int]dmpc.AdmissionPolicy{2: &dmpc.TokenBucket{Rate: 0.1, Burst: 1}}
	_, stFair := dmpc.Ingest(fair, mixed, fairCfg)

	// Zero-tenant control: tags alone must change nothing.
	plain := make([]dmpc.Arrival, len(mixed))
	for i, a := range mixed {
		a.Op.Tenant = 0
		plain[i] = a
	}
	ccPlain := dmpc.NewConnectivity(n, capEdges, benchOpts()...)
	resPlain, stPlain := dmpc.Ingest(ccPlain, plain, cfg)
	ccTag := dmpc.NewConnectivity(n, capEdges, benchOpts()...)
	resTag, stTag := dmpc.Ingest(ccTag, mixed, cfg)
	identical := len(resPlain) == len(resTag) &&
		stPlain.Flushes == stTag.Flushes && stPlain.Rounds == stTag.Rounds &&
		len(stPlain.Latencies) == len(stTag.Latencies)
	for i := 0; identical && i < len(resPlain); i++ {
		identical = resPlain[i] == resTag[i]
	}
	for i := 0; identical && i < len(stPlain.Latencies); i++ {
		identical = stPlain.Latencies[i] == stTag.Latencies[i]
	}

	v, noisy := stFair.Tenants[1], stFair.Tenants[2]
	return []tenantRow{{
		Name:                "Connected comps (§5)",
		VictimOps:           steps,
		NoisyOps:            len(mixed) - steps,
		VictimSoloP99:       stSolo.Tenants[1].P99(),
		VictimUnfairP99:     stUnfair.Tenants[1].P99(),
		VictimFairP99:       stFair.Tenants[1].P99(),
		NoisyRejected:       noisy.Rejected,
		VictimFairRounds:    v.Rounds,
		NoisyFairRounds:     noisy.Rounds,
		ZeroTenantIdentical: identical,
	}}
}

func printTenantTable(rows []tenantRow) {
	fmt.Println("\nMulti-tenant streams: victim read-p99 under a noisy tenant's write storm:")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Algorithm\tvictim ops\tnoisy ops\tsolo p99\tunfair p99\tfair p99\trejected\tzero-tenant identical\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%v\n",
			r.Name, r.VictimOps, r.NoisyOps, r.VictimSoloP99, r.VictimUnfairP99,
			r.VictimFairP99, r.NoisyRejected, r.ZeroTenantIdentical)
	}
	w.Flush()
	fmt.Println("(fair = deficit-round-robin wave shares + token-bucket admission on the storm;")
	fmt.Println(" the fair column must stay near the solo baseline while unfair drifts above it)")
}
