package main

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"dmpc/internal/core/dyncon"
	"dmpc/internal/graph"
	"dmpc/internal/mpc"
)

// --- tree-DP workload -------------------------------------------------------

// treedpRow is one (workload, k, backend) cell of the -treedp table: a
// mixed link/cut/weight/DP-query stream chunked at k, measured in model
// rounds and wall-clock. DPRoundsPerQuery is the query half's rounds
// amortized over the stream's DP reads — a read that rides an update
// wave bills the query half nothing, which is where the per-query cost
// drops below one round — and AnswersMatch records that the sim and
// parallel backends answered the identical stream bit-identically
// (checkBaseline gates it outright).
type treedpRow struct {
	Name             string  `json:"name"` // workload generator: uniform | powerlaw
	K                int     `json:"k"`
	Backend          string  `json:"backend"`
	Ops              int     `json:"ops"`
	Updates          int     `json:"updates"`
	DPQueries        int     `json:"dp_queries"`
	RoundsPerOp      float64 `json:"rounds_per_op"`
	DPRoundsPerQuery float64 `json:"dp_rounds_per_query"`
	NsPerOp          float64 `json:"ns_per_op"`
	MakespanNs       int64   `json:"makespan_ns"`
	AnswersMatch     bool    `json:"answers_match"`
}

// treeDPOps builds the -treedp op stream: the generator's structural
// churn (uniform random, or the preferential-attachment power-law tail)
// interleaved with vertex-weight writes and one DP read per update,
// cycling SubtreeSum / PathSum / TreeTop so every orchestration shape is
// on the bill. Deterministic for a fixed seed, so the sim and parallel
// cells — and the committed snapshot — all measure the identical stream.
func treeDPOps(n, nUpdates int, gen string, seed int64) []graph.Op {
	rng := rand.New(rand.NewSource(seed + 700))
	var ups []graph.Update
	if gen == "powerlaw" {
		ups = graph.PrefAttachStream(n, nUpdates, 0.3, rng)
	} else {
		ups = graph.RandomStream(n, nUpdates, 0.45, 1, rng)
	}
	ops := make([]graph.Op, 0, 3*len(ups))
	for q, up := range ups {
		ops = append(ops, graph.OpUpdate(up))
		if rng.Intn(2) == 0 {
			ops = append(ops, graph.OpSetW(rng.Intn(n), graph.Weight(rng.Intn(100))))
		}
		u, v := rng.Intn(n), rng.Intn(n)
		switch q % 3 {
		case 0:
			ops = append(ops, graph.OpQSubtreeSum(v, u))
		case 1:
			ops = append(ops, graph.OpQPathSum(u, v))
		case 2:
			ops = append(ops, graph.OpQTreeTop(u))
		}
	}
	return ops
}

// measureTreeDP runs one backend over the chunked stream on a fresh
// instance, returning the row and the positional answers (for the
// cross-backend equality bit). Construction sits outside the clock.
func measureTreeDP(gen string, ops []graph.Op, n, k int, be mpc.BackendKind) (treedpRow, graph.Results) {
	runtime.GC()
	d := dyncon.New(dyncon.Config{N: n, Mode: dyncon.CC, ExpectedEdges: 6 * n, Backend: be, Workers: benchWorkers})
	defer d.Close()
	var res graph.Results
	var rounds, qrounds, updates int
	start := time.Now()
	for _, chunk := range graph.SplitOps(ops, k) {
		r, st := d.ApplyOps(chunk)
		res = append(res, r...)
		rounds += st.Rounds()
		qrounds += st.Queries.Rounds
		updates += st.Updates.Updates
	}
	elapsed := time.Since(start).Nanoseconds()
	_, nq := graph.CountOps(ops)
	row := treedpRow{
		Name: gen, K: k, Backend: be.String(),
		Ops: len(ops), Updates: updates, DPQueries: nq,
		MakespanNs: elapsed,
	}
	if len(ops) > 0 {
		row.RoundsPerOp = float64(rounds) / float64(len(ops))
		row.NsPerOp = float64(elapsed) / float64(len(ops))
	}
	if nq > 0 {
		row.DPRoundsPerQuery = float64(qrounds) / float64(nq)
	}
	return row, res
}

// treedpTable measures both workload generators at k in {8, 64, 256} on
// both backends, pinning cross-backend answer equality per cell pair.
func treedpTable(n, nUpdates int, seed int64) []treedpRow {
	var rows []treedpRow
	for _, gen := range []string{"uniform", "powerlaw"} {
		ops := treeDPOps(n, nUpdates, gen, seed)
		for _, k := range []int{8, 64, 256} {
			simRow, simRes := measureTreeDP(gen, ops, n, k, mpc.BackendSim)
			parRow, parRes := measureTreeDP(gen, ops, n, k, mpc.BackendParallel)
			match := len(simRes) == len(parRes)
			for i := 0; match && i < len(simRes); i++ {
				match = simRes[i] == parRes[i]
			}
			simRow.AnswersMatch = match
			parRow.AnswersMatch = match
			rows = append(rows, simRow, parRow)
		}
	}
	return rows
}

func printTreeDPTable(rows []treedpRow) {
	fmt.Println("\nTree-DP workload: mixed link/cut/weight/DP-query streams (SubtreeSum, PathSum, TreeTop):")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Workload\tk\tbackend\tops\tDP reads\trounds/op\tDP rounds/query\tns/op\tanswers match\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%s\t%d\t%d\t%.3f\t%.3f\t%.0f\t%v\n",
			r.Name, r.K, r.Backend, r.Ops, r.DPQueries, r.RoundsPerOp, r.DPRoundsPerQuery, r.NsPerOp, r.AnswersMatch)
	}
	w.Flush()
	fmt.Println("(DP rounds/query bills the query-half rounds to the stream's DP reads; reads")
	fmt.Println(" that ride an update wave bill nothing, which pushes the amortized cost below")
	fmt.Println(" one round per query at k >= 64 on the uniform workload. The power-law rows")
	fmt.Println(" stay higher by design: nearly every op touches the preferential-attachment")
	fmt.Println(" giant component, and a read ordered between two writes of its own component")
	fmt.Println(" cannot share their waves — that is the snapshot-consistency contract)")
}
