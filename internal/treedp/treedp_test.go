package treedp

import (
	"testing"

	"dmpc/internal/etour"
)

func TestSpanContains(t *testing.T) {
	cases := []struct {
		s    Span
		a    int
		want bool
	}{
		{Span{All: true}, 0, true},
		{Span{All: true}, 7, true},
		{Span{Lo: 2, Hi: 5}, 2, true},
		{Span{Lo: 2, Hi: 5}, 5, true},
		{Span{Lo: 2, Hi: 5}, 6, false},
		{Span{Lo: 2, Hi: 5}, 1, false},
		{Span{Invert: true, Lo: 2, Hi: 5}, 3, false},
		{Span{Invert: true, Lo: 2, Hi: 5}, 6, true},
		{Span{Invert: true, Lo: 2, Hi: 5}, 1, true},
	}
	for _, c := range cases {
		if got := c.s.Contains(c.a); got != c.want {
			t.Errorf("%+v.Contains(%d) = %v, want %v", c.s, c.a, got, c.want)
		}
	}
}

// TestOnPath checks the predicate on the path tree 0-1-2 rooted at 0:
// tour 0 1 1 2 2 1 1 0, so f/l = (1,8), (2,7), (4,5) and the child
// interval of 1 toward 2 is [4,5].
func TestOnPath(t *testing.T) {
	f := []int{1, 2, 4}
	l := []int{8, 7, 5}
	// Path 0..2: all three vertices are on it. childBoth per vertex for
	// endpoints (0,2): vertex 1's child interval [4,5] holds f(2)=4 but
	// not f(0)=1, so childBoth=false everywhere on this query.
	for v := 0; v < 3; v++ {
		if !OnPath(f[v], l[v], f[0], l[2], false) {
			t.Errorf("vertex %d should be on path 0-2", v)
		}
	}
	// Path 2..2 (same endpoint twice): only vertex 2 is on it. Vertices
	// 0 and 1 are ancestors of both copies, and a single child interval
	// ([2,7] for 0, [4,5] for 1) holds both appearances -> childBoth.
	if !OnPath(f[2], l[2], f[2], f[2], false) {
		t.Error("vertex 2 should be on the trivial path 2-2")
	}
	for v := 0; v < 2; v++ {
		if OnPath(f[v], l[v], f[2], f[2], true) {
			t.Errorf("vertex %d should be off the trivial path 2-2", v)
		}
	}
	// Path 1..2: vertex 0 is an ancestor of both, with child interval
	// [2,7] holding both -> LCA test rejects it.
	if OnPath(f[0], l[0], f[1], f[2], true) {
		t.Error("vertex 0 should be off path 1-2")
	}
}

func TestRecApplyShifts(t *testing.T) {
	// A reroot of component 3 (tour length 8, pivot l(y)=7) moves
	// position 2 to ((2-7+8) mod 8) + 1 = 4; a foreign-component shift
	// must not touch the record; a LinkGuest relabels.
	r := Rec{Anchor: 2, Comp: 3, W: 5}
	r.ApplyShifts([]etour.Shift{{Kind: etour.ShiftReroot, Comp: 3, NewComp: 3, A: 8, B: 7}})
	if r.Anchor != 4 || r.Comp != 3 {
		t.Fatalf("reroot: got anchor %d comp %d, want 4 3", r.Anchor, r.Comp)
	}
	r.ApplyShifts([]etour.Shift{{Kind: etour.ShiftReroot, Comp: 9, NewComp: 9, A: 8, B: 7}})
	if r.Anchor != 4 {
		t.Fatalf("foreign-component shift moved the anchor to %d", r.Anchor)
	}
	r.ApplyShifts([]etour.Shift{{Kind: etour.ShiftLinkGuest, Comp: 3, NewComp: 11, A: 6}})
	if r.Anchor != 4+6+2 || r.Comp != 11 {
		t.Fatalf("link-guest: got anchor %d comp %d, want 12 11", r.Anchor, r.Comp)
	}
	// Singleton anchors are fixed points of every chain.
	s := Rec{Anchor: 0, Comp: 11, W: 1}
	s.ApplyShifts([]etour.Shift{{Kind: etour.ShiftLinkGuest, Comp: 11, NewComp: 12, A: 6}})
	if s.Anchor != 0 || s.Comp != 11 {
		t.Fatalf("singleton anchor moved: %+v", s)
	}
}

func TestOracle(t *testing.T) {
	// Forest: 0-1, 1-2, 1-3 (a star-ish tree) plus isolated 4.
	adj := [][]int{{1}, {0, 2, 3}, {1}, {1}, {}}
	o := NewOracle(5)
	o.SetWeight(0, 1)
	o.SetWeight(1, 10)
	o.SetWeight(2, 100)
	o.SetWeight(3, 1000)
	o.SetWeight(4, 7)

	if got := o.SubtreeSum(adj, 0, 1); got != 1110 {
		t.Errorf("SubtreeSum(root 0, u 1) = %d, want 1110", got)
	}
	if got := o.SubtreeSum(adj, 2, 1); got != 1011 {
		t.Errorf("SubtreeSum(root 2, u 1) = %d, want 1011", got)
	}
	if got := o.SubtreeSum(adj, 3, 3); got != 1111 {
		t.Errorf("SubtreeSum(root=u=3) should be the whole component, got %d", got)
	}
	if got := o.SubtreeSum(adj, 4, 1); got != 1111 {
		t.Errorf("SubtreeSum(disconnected root) should be the whole component, got %d", got)
	}
	if got := o.PathSum(adj, 0, 3); got != 1011 {
		t.Errorf("PathSum(0,3) = %d, want 1011", got)
	}
	if got := o.PathSum(adj, 2, 2); got != 100 {
		t.Errorf("PathSum(2,2) = %d, want 100", got)
	}
	if got := o.PathSum(adj, 0, 4); got != 0 {
		t.Errorf("PathSum(disconnected) = %d, want 0", got)
	}
	if got := o.TreeTop(adj, 0); got != 3 {
		t.Errorf("TreeTop(0) = %d, want 3", got)
	}
	if got := o.TreeTop(adj, 4); got != 4 {
		t.Errorf("TreeTop(4) = %d, want 4", got)
	}
	// Tie: equal weights pick the smallest id.
	o2 := NewOracle(3)
	adj2 := [][]int{{1}, {0}, {}}
	if got := o2.TreeTop(adj2, 1); got != 0 {
		t.Errorf("TreeTop tie = %d, want 0", got)
	}
}
