package sched

import (
	"math/rand"
	"testing"
)

// randItem draws a random item from a small key universe so conflicts,
// read sharing, budget exhaustion and the occasional Solo all occur.
func randItem(rng *rand.Rand) Item {
	if rng.Intn(20) == 0 {
		return Item{Solo: true}
	}
	var it Item
	for k := 0; k < 1+rng.Intn(2); k++ {
		it.Excl = append(it.Excl, int64(rng.Intn(8)))
	}
	for k := 0; k < rng.Intn(3); k++ {
		it.Read = append(it.Read, int64(8+rng.Intn(4)))
	}
	for k := 0; k < rng.Intn(3); k++ {
		it.Shared = append(it.Shared, Claim{Key: int64(rng.Intn(3)), Cost: 1 + rng.Intn(40)})
	}
	return it
}

// TestAdmitterFirstWaveEquivalence pins the Admitter to FirstWave: the
// greedy admitted prefix of an item sequence (admit until the first
// refusal) must be exactly the longest prefix P such that FirstWave over
// items[:len(P)] admits every position — the streaming and batch views
// of "these ops can share a wave" may never disagree.
func TestAdmitterFirstWaveEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, budget := range []int{0, 16, 64, 1 << 20} {
		for trial := 0; trial < 300; trial++ {
			n := 1 + rng.Intn(12)
			items := make([]Item, n)
			for i := range items {
				items[i] = randItem(rng)
			}
			a := NewAdmitter(budget)
			prefix := 0
			for _, it := range items {
				if !a.Admit(it) {
					break
				}
				prefix++
			}
			if a.Len() != prefix {
				t.Fatalf("budget %d: Len() = %d after %d admits", budget, a.Len(), prefix)
			}
			if prefix == 0 {
				t.Fatalf("budget %d: empty set refused an item (%+v)", budget, items[0])
			}
			// Every prefix up to the admitted one is a full first wave...
			for p := 1; p <= prefix; p++ {
				wave := FirstWave(items[:p], budget)
				if len(wave) != p {
					t.Fatalf("budget %d: Admit took %d items but FirstWave(items[:%d]) = %v",
						budget, prefix, p, wave)
				}
			}
			// ...and the refused item breaks it.
			if prefix < n {
				wave := FirstWave(items[:prefix+1], budget)
				if len(wave) == prefix+1 {
					t.Fatalf("budget %d: Admit refused item %d but FirstWave admits all of items[:%d]",
						budget, prefix, prefix+1)
				}
			}
		}
	}
}

// TestAdmitterReset pins that Reset empties the set: keys and budget
// usage held by the flushed wave no longer block anything.
func TestAdmitterReset(t *testing.T) {
	a := NewAdmitter(10)
	if !a.Admit(Item{Excl: []int64{1}, Shared: []Claim{{Key: 0, Cost: 9}}}) {
		t.Fatal("empty set refused the first item")
	}
	if a.Admit(Item{Excl: []int64{1}}) {
		t.Fatal("conflicting exclusive key admitted")
	}
	if a.Admit(Item{Shared: []Claim{{Key: 0, Cost: 2}}}) {
		t.Fatal("over-budget shared claim admitted")
	}
	a.Reset()
	if a.Len() != 0 {
		t.Fatalf("Len() = %d after Reset", a.Len())
	}
	if !a.Admit(Item{Excl: []int64{1}, Shared: []Claim{{Key: 0, Cost: 10}}}) {
		t.Fatal("Reset did not release the flushed wave's claims")
	}
}

// TestAdmitterSolo pins the Solo rules incrementally: a Solo item joins
// only an empty set, and once in, seals it.
func TestAdmitterSolo(t *testing.T) {
	a := NewAdmitter(0)
	if !a.Admit(Item{Solo: true}) {
		t.Fatal("empty set refused a Solo item")
	}
	if a.Admit(Item{}) {
		t.Fatal("zero item joined a Solo-held set")
	}
	a.Reset()
	if !a.Admit(Item{}) {
		t.Fatal("empty set refused the zero item")
	}
	if a.Admit(Item{Solo: true}) {
		t.Fatal("Solo item joined a non-empty set")
	}
}
