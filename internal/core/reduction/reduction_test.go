package reduction

import (
	"math/rand"
	"testing"

	"dmpc/internal/graph"
	"dmpc/internal/seqdyn"
)

func TestStoreReadWriteRoundTrip(t *testing.T) {
	sim := NewSim(4, 0)
	sim.Write(7, 42)
	sim.Write(1003, -5)
	if got := sim.Read(7); got != 42 {
		t.Fatalf("read = %d", got)
	}
	if got := sim.Read(1003); got != -5 {
		t.Fatalf("read = %d", got)
	}
	if got := sim.Read(99); got != 0 {
		t.Fatalf("unwritten read = %d", got)
	}
}

func TestMemoryOpAccounting(t *testing.T) {
	sim := NewSim(4, 0)
	sim.BeginUpdate()
	sim.Read(5)
	u := sim.EndUpdate()
	// One read = request round + reply round, <= 2 machines active.
	if u.Rounds != 2 {
		t.Fatalf("read rounds = %d, want 2", u.Rounds)
	}
	if u.MaxActive > 2 {
		t.Fatalf("active = %d, want <= 2", u.MaxActive)
	}
	if u.MaxWords > 4 {
		t.Fatalf("words = %d, want O(1)", u.MaxWords)
	}
	sim.BeginUpdate()
	sim.Write(5, 1)
	u = sim.EndUpdate()
	if u.Rounds != 1 || u.MaxActive > 1 {
		t.Fatalf("write stats = %+v", u)
	}
}

func TestStoreUnionFindMatchesOracle(t *testing.T) {
	const n = 32
	rng := rand.New(rand.NewSource(3))
	sim := NewSim(8, 0)
	uf := NewStoreUnionFind(sim, n)
	g := graph.New(n)
	for i := 0; i < 60; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		g.Insert(a, b, 1)
		uf.Union(a, b)
	}
	comp := graph.Components(g)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b += 3 {
			if uf.Connected(a, b) != (comp[a] == comp[b]) {
				t.Fatalf("Connected(%d,%d) mismatch", a, b)
			}
		}
	}
}

func TestLemma71RoundsTrackSequentialOps(t *testing.T) {
	// The wrapped HDT's rounds per update must equal Θ(counted ops): here
	// exactly 1 round per op (write replay) plus nothing else.
	const n = 24
	rng := rand.New(rand.NewSource(5))
	sim := NewSim(8, 1<<17)
	h := seqdyn.NewHDT(n)
	w := NewWrapped(sim, HDTTarget{H: h})
	for _, up := range graph.RandomStream(n, 150, 0.55, 1, rng) {
		before := h.Ops.Count()
		st := w.Update(up)
		ops := h.Ops.Count() - before
		if int64(st.Rounds) != ops {
			t.Fatalf("update %v: rounds %d != ops %d", up, st.Rounds, ops)
		}
		if st.MaxActive > 2 {
			t.Fatalf("update %v: %d active machines, want O(1)", up, st.MaxActive)
		}
		if st.MaxWords > 8 {
			t.Fatalf("update %v: %d words/round, want O(1)", up, st.MaxWords)
		}
	}
}

func TestWrappedTargetsStayCorrect(t *testing.T) {
	// The reduction must not perturb the wrapped algorithms' answers.
	const n = 20
	rng := rand.New(rand.NewSource(7))
	simH := NewSim(4, 1<<17)
	simM := NewSim(4, 1<<17)
	simF := NewSim(4, 1<<17)
	h := seqdyn.NewHDT(n)
	m := seqdyn.NewNSMatch(n, 100)
	f := seqdyn.NewDynMSF(n)
	wh := NewWrapped(simH, HDTTarget{H: h})
	wm := NewWrapped(simM, NSMatchTarget{M: m})
	wf := NewWrapped(simF, MSFTarget{F: f})
	g := graph.New(n)
	for _, up := range graph.RandomStream(n, 120, 0.6, 20, rng) {
		wh.Update(up)
		wm.Update(up)
		wf.Update(up)
		g.Apply(up)
	}
	if h.Components() != graph.NumComponents(g) {
		t.Fatal("HDT diverged under reduction")
	}
	if !graph.IsMaximalMatching(g, m.MateTable()) {
		t.Fatal("NSMatch diverged under reduction")
	}
	if f.Weight() != graph.MSFWeight(g) {
		t.Fatal("DynMSF diverged under reduction")
	}
}
