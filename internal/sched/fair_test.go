package sched

import (
	"math/rand"
	"testing"
)

// fairWeights is the tenant-weight table the randomized fair tests run
// under; randTenantItem draws tenants from a slightly wider universe so
// unconfigured tenants (defaulting to weight 1) are exercised too.
var fairWeights = map[int]int{0: 2, 1: 1, 2: 3}

func randTenantItem(rng *rand.Rand) Item {
	it := randItem(rng)
	it.Tenant = rng.Intn(4) // tenant 3 has no configured weight
	return it
}

// TestFirstWaveFairNil pins that a nil Fair is bit-identical to plain
// FirstWave — the single-tenant fast path costs nothing.
func TestFirstWaveFairNil(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		items := make([]Item, n)
		for i := range items {
			items[i] = randTenantItem(rng)
		}
		for _, budget := range []int{0, 16, 64} {
			a := FirstWave(items, budget)
			b := FirstWaveFair(items, budget, nil)
			if len(a) != len(b) {
				t.Fatalf("budget %d: FirstWave=%v FirstWaveFair(nil)=%v", budget, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("budget %d: FirstWave=%v FirstWaveFair(nil)=%v", budget, a, b)
				}
			}
		}
	}
}

// TestFirstWaveFairThrottlesTenant pins the deficit mechanics: a tenant
// that has spent its quantum is refused for the rest of the wave while
// another tenant's non-conflicting item still joins — weighted fair
// packing instead of first-fit.
func TestFirstWaveFairThrottlesTenant(t *testing.T) {
	// budget 100, equal weights: each tenant's quantum is 50 words/wave.
	fair := NewFair(100, map[int]int{1: 1, 2: 1})
	items := []Item{
		{Tenant: 1, Shared: []Claim{{Key: 10, Cost: 40}}},
		{Tenant: 1, Shared: []Claim{{Key: 11, Cost: 40}}}, // deficit 10 < 40: throttled
		{Tenant: 1, Shared: []Claim{{Key: 12, Cost: 40}}}, // throttled
		{Tenant: 2, Shared: []Claim{{Key: 13, Cost: 40}}}, // own deficit 50: joins
	}
	wave := FirstWaveFair(items, 100, fair)
	if len(wave) != 2 || wave[0] != 0 || wave[1] != 3 {
		t.Fatalf("fair wave = %v, want [0 3] (tenant 1 throttled after one 40-word op)", wave)
	}
	// First-fit would have taken all four: the keys are distinct and each
	// claim fits its key's budget.
	if ff := FirstWave(items, 100); len(ff) != 4 {
		t.Fatalf("first-fit control wave = %v, want all 4", ff)
	}
}

// TestFairRollForward pins the deficit-round-robin roll-forward: an
// idle tenant's unused share accumulates across waves, capped at one
// full budget.
func TestFairRollForward(t *testing.T) {
	fair := NewFair(100, map[int]int{1: 1, 2: 1})
	for w := 0; w < 5; w++ {
		fair.BeginWave()
	}
	if d := fair.deficit[1]; d != 100 {
		t.Fatalf("idle tenant deficit = %d after 5 waves, want capped at budget 100", d)
	}
	// The banked share is spendable at once: two 50-word ops in one wave,
	// where a single 50-word quantum would have allowed only one.
	items := []Item{
		{Tenant: 2, Shared: []Claim{{Key: 20, Cost: 1}}},
		{Tenant: 1, Shared: []Claim{{Key: 21, Cost: 50}}},
		{Tenant: 1, Shared: []Claim{{Key: 22, Cost: 50}}},
	}
	wave := FirstWaveFair(items, 100, fair)
	if len(wave) != 3 {
		t.Fatalf("banked deficit not spendable: wave = %v, want [0 1 2]", wave)
	}
}

// TestFirstWaveFairPreservesOrdering pins the fairness invariant: a
// tenant-throttled item records its exclusive claims exactly like a
// budget-refused one, so an op that conflicts with it cannot overtake
// it — fairness reshapes wave packing, never conflicting-op order.
func TestFirstWaveFairPreservesOrdering(t *testing.T) {
	fair := NewFair(100, map[int]int{1: 1, 2: 1})
	items := []Item{
		{Tenant: 1, Shared: []Claim{{Key: 10, Cost: 45}}},
		{Tenant: 1, Excl: []int64{5}, Shared: []Claim{{Key: 11, Cost: 10}}}, // throttled (deficit 5)
		{Tenant: 2, Excl: []int64{5}},                                       // conflicts with the throttled op
	}
	wave := FirstWaveFair(items, 100, fair)
	if len(wave) != 1 || wave[0] != 0 {
		t.Fatalf("wave = %v, want [0]: op 2 must stay behind the throttled op 1 it conflicts with", wave)
	}
}

// TestFirstWaveFairProgress pins the position-0 borrowing rule: the
// first item of a wave joins even when its cost exceeds its tenant's
// whole deficit (the deficit goes negative and is repaid from future
// quanta), so a fair scheduler loop always makes progress.
func TestFirstWaveFairProgress(t *testing.T) {
	fair := NewFair(100, map[int]int{1: 1, 2: 99}) // tenant 1 quantum: 1 word
	items := []Item{{Tenant: 1, Shared: []Claim{{Key: 10, Cost: 90}}}}
	if wave := FirstWaveFair(items, 100, fair); len(wave) != 1 {
		t.Fatalf("wave = %v: position 0 must always join", wave)
	}
	if d := fair.deficit[1]; d >= 0 {
		t.Fatalf("deficit = %d, want negative (borrowed against future quanta)", d)
	}
	// Solo from position 0 likewise joins and is charged the full budget.
	fair2 := NewFair(100, map[int]int{1: 1, 2: 99})
	if wave := FirstWaveFair([]Item{{Tenant: 1, Solo: true}}, 100, fair2); len(wave) != 1 {
		t.Fatalf("solo wave = %v: position 0 must always join", wave)
	}
	if d := fair2.deficit[1]; d != 1-100 {
		t.Fatalf("solo deficit = %d, want %d (charged the whole budget)", d, 1-100)
	}
}

// TestDriveFairCompletes pins that fairness only delays ops, never
// drops them: DriveFair executes every index exactly once, and nil
// fair matches Drive's wave count bit-for-bit.
func TestDriveFairCompletes(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(16)
		items := make([]Item, n)
		for i := range items {
			items[i] = randTenantItem(rng)
		}
		item := func(i int) Item { return items[i] }
		fair := NewFair(64, fairWeights)
		seen := make([]int, n)
		waves := DriveFair(n, item, 64, fair, func(wave []int) {
			if len(wave) == 0 {
				t.Fatal("empty wave: no progress")
			}
			for _, b := range wave {
				seen[b]++
			}
		})
		if waves < 1 {
			t.Fatalf("waves = %d", waves)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("op %d executed %d times", i, c)
			}
		}
		// nil fair must be Drive exactly.
		var a, b [][]int
		DriveFair(n, item, 64, nil, func(w []int) { a = append(a, append([]int(nil), w...)) })
		Drive(n, item, 64, func(w []int) { b = append(b, append([]int(nil), w...)) })
		if len(a) != len(b) {
			t.Fatalf("DriveFair(nil) waves %v != Drive waves %v", a, b)
		}
		for i := range a {
			if len(a[i]) != len(b[i]) {
				t.Fatalf("DriveFair(nil) waves %v != Drive waves %v", a, b)
			}
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("DriveFair(nil) waves %v != Drive waves %v", a, b)
				}
			}
		}
	}
}

// TestAdmitterFirstWaveFairEquivalence extends the Admitter-vs-
// FirstWave invariant to the fair path: with identical weight tables,
// the greedy admitted prefix must be exactly the longest prefix that
// FirstWaveFair (over a fresh Fair with the same configuration) admits
// in full, and the refused item must break it. The streaming and batch
// views of fair packing may never disagree.
func TestAdmitterFirstWaveFairEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, budget := range []int{16, 64, 1 << 20} {
		for trial := 0; trial < 300; trial++ {
			n := 1 + rng.Intn(12)
			items := make([]Item, n)
			for i := range items {
				items[i] = randTenantItem(rng)
			}
			a := NewAdmitterFair(budget, NewFair(budget, fairWeights))
			prefix := 0
			for _, it := range items {
				if !a.Admit(it) {
					break
				}
				prefix++
			}
			if a.Len() != prefix {
				t.Fatalf("budget %d: Len() = %d after %d admits", budget, a.Len(), prefix)
			}
			if prefix == 0 {
				t.Fatalf("budget %d: empty set refused an item (%+v)", budget, items[0])
			}
			for p := 1; p <= prefix; p++ {
				wave := FirstWaveFair(items[:p], budget, NewFair(budget, fairWeights))
				if len(wave) != p {
					t.Fatalf("budget %d: Admit took %d items but FirstWaveFair(items[:%d]) = %v",
						budget, prefix, p, wave)
				}
			}
			if prefix < n {
				wave := FirstWaveFair(items[:prefix+1], budget, NewFair(budget, fairWeights))
				if len(wave) == prefix+1 {
					t.Fatalf("budget %d: Admit refused item %d but FirstWaveFair admits all of items[:%d]",
						budget, prefix, prefix+1)
				}
			}
		}
	}
}
