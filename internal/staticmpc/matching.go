package staticmpc

import (
	"math/rand"

	"dmpc/internal/graph"
	"dmpc/internal/mpc"
)

// Randomized maximal matching by coin-flip proposals, in the spirit of
// Israeli–Itai [23] (the paper's suggested initializer for §3). Each
// iteration: every free vertex flips a coin; heads propose to a uniformly
// random free neighbor, tails accept their smallest proposer. An accept is
// a binding match for both sides — a tail accepts at most one proposer and
// a head can be accepted only by its single proposal target, so the
// matching stays consistent. Iterations are O(log n) w.h.p.; each costs a
// constant number of cluster rounds.

type mmKind int32

const (
	mmPropose mmKind = iota
	mmAccept
	mmMatched // a vertex announces to neighbors that it is matched
)

type mmMsg struct {
	kind mmKind
	a, b int32 // propose: (to, from); accept: (to, accepter); matched: (to, matchedVertex)
}

type mmMachine struct {
	layout   Layout
	verts    []int32
	adj      map[int32][]int32
	freeNbrs map[int32]map[int32]bool
	mate     map[int32]int32
	heads    map[int32]bool  // coin of the current iteration
	incoming map[int32]int32 // smallest proposer seen this iteration
	rng      *rand.Rand
	phase    int32
}

func (m *mmMachine) MemWords() int {
	w := 4 * len(m.verts)
	for _, s := range m.freeNbrs {
		w += len(s)
	}
	return w
}

func (m *mmMachine) announceMatched(ctx *mpc.Ctx, v int32) {
	for _, w := range m.adj[v] {
		ctx.Send(m.layout.Owner(int(w)), mmMsg{kind: mmMatched, a: w, b: v}, 3)
	}
}

func (m *mmMachine) HandleRound(ctx *mpc.Ctx, inbox []mpc.Message) {
	for _, msg := range inbox {
		mm, ok := msg.Payload.(mmMsg)
		if !ok {
			continue
		}
		switch mm.kind {
		case mmPropose:
			to, from := mm.a, mm.b
			if m.mate[to] != -1 || m.heads[to] {
				continue // heads ignore proposals this iteration
			}
			if cur, ok := m.incoming[to]; !ok || from < cur {
				m.incoming[to] = from
			}
		case mmAccept:
			// to = the proposer (heads); the accept is binding.
			to, accepter := mm.a, mm.b
			m.mate[to] = accepter
			m.announceMatched(ctx, to)
		case mmMatched:
			v, other := mm.a, mm.b
			if s, ok := m.freeNbrs[v]; ok {
				delete(s, other)
			}
		}
	}

	switch m.phase {
	case 0: // flip coins, heads propose
		for _, v := range m.verts {
			delete(m.incoming, v)
			if m.mate[v] != -1 {
				continue
			}
			m.heads[v] = m.rng.Intn(2) == 0
			if !m.heads[v] {
				continue
			}
			cands := m.freeNbrs[v]
			if len(cands) == 0 {
				continue
			}
			pick := m.rng.Intn(len(cands))
			i := 0
			for w := range cands {
				if i == pick {
					ctx.Send(m.layout.Owner(int(w)), mmMsg{kind: mmPropose, a: w, b: v}, 3)
					break
				}
				i++
			}
		}
	case 1: // tails accept their smallest proposer
		for _, v := range m.verts {
			if m.mate[v] != -1 || m.heads[v] {
				continue
			}
			if from, ok := m.incoming[v]; ok {
				m.mate[v] = from
				m.announceMatched(ctx, v)
				ctx.Send(m.layout.Owner(int(from)), mmMsg{kind: mmAccept, a: from, b: v}, 3)
			}
		}
	}
	m.phase = -1
}

// MaximalMatching computes a maximal matching of g on a cluster, returning
// the mate table and the accounting. seed fixes the proposal randomness.
func MaximalMatching(g *graph.Graph, mu, memWords int, seed int64) ([]int, Result) {
	n := g.N()
	cfg := mpc.Auto(n+2*g.M(), 4)
	if mu > 0 {
		cfg.Machines = mu
	}
	if memWords > 0 {
		cfg.MemWords = memWords
	}
	cl := mpc.NewCluster(cfg)
	layout := Layout{N: n, Mu: cfg.Machines}
	machines := make([]*mmMachine, cfg.Machines)
	for i := range machines {
		machines[i] = &mmMachine{
			layout:   layout,
			adj:      make(map[int32][]int32),
			freeNbrs: make(map[int32]map[int32]bool),
			mate:     make(map[int32]int32),
			heads:    make(map[int32]bool),
			incoming: make(map[int32]int32),
			rng:      rand.New(rand.NewSource(seed + int64(i))),
			phase:    -1,
		}
		cl.SetMachine(i, machines[i])
	}
	for v := 0; v < n; v++ {
		mach := machines[layout.Owner(v)]
		v32 := int32(v)
		mach.verts = append(mach.verts, v32)
		mach.mate[v32] = -1
		mach.freeNbrs[v32] = make(map[int32]bool)
		for _, w := range g.Neighbors(v) {
			mach.adj[v32] = append(mach.adj[v32], int32(w))
			mach.freeNbrs[v32][int32(w)] = true
		}
	}

	cl.BeginUpdate()
	for iter := 0; iter < 16*bitsFor(n)+32; iter++ {
		for i := range machines {
			machines[i].phase = 0
			cl.Schedule(i)
		}
		cl.Round() // proposals sent
		for i := range machines {
			machines[i].phase = 1
			cl.Schedule(i)
		}
		cl.Round() // accepts + matched announcements
		cl.Round() // binding accepts processed at proposers
		cl.Round() // absorb remaining matched announcements
		done := true
		for _, m := range machines {
			for _, v := range m.verts {
				if m.mate[v] == -1 && len(m.freeNbrs[v]) > 0 {
					done = false
					break
				}
			}
			if !done {
				break
			}
		}
		if done {
			break
		}
	}
	stats := cl.EndUpdate()

	mate := make([]int, n)
	for _, m := range machines {
		for _, v := range m.verts {
			mate[v] = int(m.mate[v])
		}
	}
	return mate, resultFrom(stats)
}
