package amm

import (
	"math/rand"
	"testing"

	"dmpc/internal/graph"
)

func applyStream(t *testing.T, m *M, g *graph.Graph, updates []graph.Update, validate bool) {
	t.Helper()
	for step, up := range updates {
		if up.Op == graph.Insert {
			m.Insert(up.U, up.V)
		} else {
			m.Delete(up.U, up.V)
		}
		g.Apply(up)
		if !graph.IsMatching(g, m.MateTable()) {
			t.Fatalf("step %d (%v): invalid matching", step, up)
		}
		if validate {
			if err := m.Validate(g); err != nil {
				t.Fatalf("step %d (%v): %v", step, up, err)
			}
		}
	}
}

func TestAmmBasic(t *testing.T) {
	m := New(Config{N: 8, Seed: 1})
	g := graph.New(8)
	applyStream(t, m, g, []graph.Update{
		{Op: graph.Insert, U: 0, V: 1},
		{Op: graph.Insert, U: 2, V: 3},
		{Op: graph.Insert, U: 1, V: 2},
		{Op: graph.Delete, U: 0, V: 1},
		{Op: graph.Insert, U: 4, V: 5},
		{Op: graph.Delete, U: 2, V: 3},
		{Op: graph.Delete, U: 4, V: 5},
	}, true)
}

func TestAmmRandomStreamsStayValid(t *testing.T) {
	const n = 30
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := New(Config{N: n, Seed: seed})
		g := graph.New(n)
		applyStream(t, m, g, graph.RandomStream(n, 300, 0.55, 1, rng), true)
	}
}

func TestAmmAlmostMaximal(t *testing.T) {
	// The §6 guarantee: at most an ε-fraction of a maximal matching's
	// edges are missing. Measure the deficit (free-free edges) after a
	// a quiet period (a few no-op cycles let the queues drain).
	const n = 40
	rng := rand.New(rand.NewSource(9))
	m := New(Config{N: n, Seed: 5})
	g := graph.New(n)
	applyStream(t, m, g, graph.RandomStream(n, 400, 0.6, 1, rng), false)
	// Drain: deletions/insertions of a scratch edge drive extra cycles.
	for i := 0; i < 30; i++ {
		m.Insert(0, n-1)
		m.Delete(0, n-1)
	}
	mt := m.MateTable()
	if !graph.IsMatching(g, mt) {
		t.Fatal("invalid matching after drain")
	}
	deficit := graph.CountFreeFreeEdges(g, mt)
	matched := graph.MatchingSize(mt)
	if deficit > matched/3+1 {
		t.Fatalf("deficit %d too large for matching of size %d (backlog %d)",
			deficit, matched, m.QueueBacklog())
	}
	// And the (2+eps) factor against the exact maximum on the final graph
	// (indirectly: a matching with deficit d has size >= (maximal-d)/1).
	if g.N() <= 22 {
		if 3*matched+2*deficit < graph.MaxMatchingSize(g) {
			t.Fatalf("approximation too weak: %d matched, max %d", matched, graph.MaxMatchingSize(g))
		}
	}
}

func TestAmmLevelsAndSupports(t *testing.T) {
	// Levels must be -1 exactly for free vertices; matched pairs share a
	// level >= 0 (checked by Validate); supports decay triggers proactive
	// unmatches without breaking validity.
	const n = 24
	rng := rand.New(rand.NewSource(4))
	m := New(Config{N: n, Seed: 11})
	g := graph.New(n)
	applyStream(t, m, g, graph.RandomStream(n, 250, 0.7, 1, rng), true)
	lv := m.Levels()
	mt := m.MateTable()
	for v := 0; v < n; v++ {
		if (mt[v] == -1) != (lv[v] == -1) {
			t.Fatalf("vertex %d: mate %d level %d", v, mt[v], lv[v])
		}
	}
}

func TestAmmBoundsRow(t *testing.T) {
	// Table 1 row 3: O(1) rounds per update, Õ(1) active machines, Õ(1)
	// words per round. Rounds are fixed by construction (7); machines and
	// words must stay well below the cluster size / √N scale.
	const n = 64
	rng := rand.New(rand.NewSource(2))
	m := New(Config{N: n, Seed: 3})
	g := graph.New(n)
	worstActive, worstWords := 0, 0
	for _, up := range graph.RandomStream(n, 300, 0.55, 1, rng) {
		var st = m.Insert(up.U, up.V)
		if up.Op == graph.Delete {
			st = m.Delete(up.U, up.V)
		}
		g.Apply(up)
		if st.Rounds != 7 {
			t.Fatalf("rounds = %d, want the fixed 7-round cycle", st.Rounds)
		}
		if st.MaxActive > worstActive {
			worstActive = st.MaxActive
		}
		if st.MaxWords > worstWords {
			worstWords = st.MaxWords
		}
	}
	polylog := 8 * bits(n) * bits(n)
	if worstActive > polylog {
		t.Fatalf("worst active %d exceeds polylog budget %d", worstActive, polylog)
	}
	if worstWords > 16*polylog {
		t.Fatalf("worst words %d exceeds polylog budget", worstWords)
	}
}

func TestAmmChurnOnMatchedEdges(t *testing.T) {
	// Adversarially delete currently-matched edges: the structure must
	// keep the matching valid and recover via the queues.
	const n = 20
	m := New(Config{N: n, Seed: 7})
	g := graph.New(n)
	rng := rand.New(rand.NewSource(13))
	applyStream(t, m, g, graph.RandomStream(n, 150, 0.9, 1, rng), true)
	for round := 0; round < 30; round++ {
		mt := m.MateTable()
		deleted := false
		for v := 0; v < n && !deleted; v++ {
			if mt[v] > v && g.Has(v, mt[v]) {
				applyStream(t, m, g, []graph.Update{{Op: graph.Delete, U: v, V: mt[v]}}, true)
				deleted = true
			}
		}
		if !deleted {
			break
		}
	}
}
