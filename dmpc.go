// Package dmpc is the public facade of this repository: a from-scratch Go
// reproduction of "Dynamic Algorithms for the Massively Parallel
// Computation Model" (Italiano, Lattanzi, Mirrokni, Parotsidis — SPAA
// 2019, arXiv:1905.09175).
//
// The DMPC model extends MPC to dynamic inputs: a cluster of µ machines
// with O(√N) words of memory each processes edge insertions and deletions,
// and an algorithm is charged per update for (i) rounds, (ii) active
// machines per round and (iii) communicated words per round. This package
// re-exports the simulated cluster and the paper's five dynamic algorithms
// plus the §7 reduction:
//
//   - NewMaximalMatching (§3): O(1) rounds, O(1) machines, O(√N) words.
//   - NewThreeHalvesMatching (§4): 3/2-approximate, O(n/√N) machines.
//   - NewConnectivity / NewMST (§5, §5.1): Euler-tour connectivity and
//     (1+ε)-MST, O(1) rounds, O(√N) machines and words.
//   - NewAlmostMaximalMatching (§6): (2+ε)-approximate, Õ(1) machines
//     and words.
//   - reduction.NewSim (§7): run any sequential dynamic algorithm in
//     O(u(N)) rounds on O(1) machines.
//
// Beyond the paper, every structure accepts batches of updates through
// ApplyBatch: a Batch shares one round-accounting window (BatchStats), and
// the algorithms parallelize non-conflicting updates so the amortized
// rounds per update drop as the batch grows — the direction of the
// batch-dynamic follow-ups (Nowicki–Onak, arXiv:2002.07800; Durfee et al.,
// arXiv:1908.01956). The wave machinery itself — resource-keyed conflict
// building, order-preserving precedence coloring, per-machine broadcast-
// budget packing, and the first-wave/recompute loop — lives in the shared
// internal/sched subsystem that dyncon and dmm both schedule through. The read path is symmetric: every structure
// answers protocol queries (Connected/ComponentOf, Matched/MateOf) whose
// rounds are charged to QueryStats windows, and batched queries
// (ConnectedBatch, MateOfBatch) share one scatter/gather window so the
// per-query round cost amortizes like update rounds do. Update and query
// windows are mutually exclusive in the simulator, so rounds can never
// leak between the two accounting classes. Driver-side oracle accessors
// (MateTable, and dyncon's CompOf/ForestEdges) bypass the cluster and are
// for validation only.
//
// See DESIGN.md for the system inventory, the batch pipeline, and the
// deviations from the paper; cmd/dmpcbench reproduces Table 1 and the
// batch amortization curves (its -json snapshots live in BENCH_*.json).
package dmpc

import (
	"dmpc/internal/core/amm"
	"dmpc/internal/core/dmm"
	"dmpc/internal/core/dyncon"
	"dmpc/internal/graph"
	"dmpc/internal/mpc"
)

// Re-exported building blocks.
type (
	// Graph is the dynamic graph used to describe workloads.
	Graph = graph.Graph
	// Update is one edge insertion or deletion.
	Update = graph.Update
	// Weight is an edge weight.
	Weight = graph.Weight
	// UpdateStats is the per-update DMPC accounting: rounds, active
	// machines per round, words per round.
	UpdateStats = mpc.UpdateStats
	// Batch is an ordered sequence of updates applied as one unit.
	Batch = graph.Batch
	// BatchStats is the shared round-accounting window of one batch.
	BatchStats = mpc.BatchStats
	// WaveStats is one concurrent wave's slice of a batch window; the wave
	// widths measure how much parallelism the batch scheduler extracted.
	WaveStats = mpc.WaveStats
	// Pair is one query's endpoints; a []Pair is the read-side analogue of
	// a Batch.
	Pair = graph.Pair
	// QueryStats is the shared round-accounting window of one query or one
	// query batch, mutually exclusive with update/batch windows.
	QueryStats = mpc.QueryStats
	// Cluster is the simulated DMPC cluster.
	Cluster = mpc.Cluster
)

// Chunk splits an update stream into consecutive batches of at most k
// updates, preserving order.
func Chunk(updates []Update, k int) []Batch { return graph.Chunk(updates, k) }

// Operation kinds for Update.Op.
const (
	Insert = graph.Insert
	Delete = graph.Delete
)

// NewGraph returns an empty dynamic graph on n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// Connectivity maintains the connected components of a dynamic graph (§5).
type Connectivity struct{ d *dyncon.D }

// NewConnectivity builds a fully-dynamic connected-components structure on
// n vertices, sized for expectedEdges simultaneous edges (0 = default).
func NewConnectivity(n, expectedEdges int) *Connectivity {
	return &Connectivity{d: dyncon.New(dyncon.Config{N: n, Mode: dyncon.CC, ExpectedEdges: expectedEdges})}
}

// Insert adds an edge, returning the update's accounting.
func (c *Connectivity) Insert(u, v int) UpdateStats { return c.d.Insert(u, v, 1) }

// Delete removes an edge.
func (c *Connectivity) Delete(u, v int) UpdateStats { return c.d.Delete(u, v) }

// Connected answers a connectivity query through the cluster (two rounds,
// charged to a QueryStats window).
func (c *Connectivity) Connected(u, v int) bool { return c.d.Connected(u, v) }

// ConnectedBatch answers k connectivity queries in one shared
// scatter/gather window, amortizing the round cost to 2/k per query (see
// dyncon.ConnectedBatch). Answers are positional.
func (c *Connectivity) ConnectedBatch(pairs []Pair) []bool { return c.d.ConnectedBatch(pairs) }

// ApplyBatch applies a batch of updates in one shared round window,
// running component-disjoint updates concurrently (see dyncon.ApplyBatch).
func (c *Connectivity) ApplyBatch(b Batch) BatchStats { return c.d.ApplyBatch(b) }

// ComponentOf returns v's component label, as a one-round protocol query
// through the cluster.
func (c *Connectivity) ComponentOf(v int) int64 { return c.d.ComponentOf(v) }

// CompOf returns v's component label by driver-side oracle access —
// validation only, no protocol accounting. Use ComponentOf for the
// protocol query.
func (c *Connectivity) CompOf(v int) int64 { return c.d.CompOf(v) }

// Cluster exposes the underlying cluster accounting.
func (c *Connectivity) Cluster() *Cluster { return c.d.Cluster() }

// MST maintains a (1+ε)-approximate minimum spanning forest (§5.1); eps 0
// maintains an exact MSF.
type MST struct{ d *dyncon.D }

// NewMST builds a fully-dynamic MSF structure.
func NewMST(n int, eps float64, expectedEdges int) *MST {
	return &MST{d: dyncon.New(dyncon.Config{N: n, Mode: dyncon.MST, Eps: eps, ExpectedEdges: expectedEdges})}
}

// Insert adds a weighted edge.
func (m *MST) Insert(u, v int, w Weight) UpdateStats { return m.d.Insert(u, v, w) }

// Delete removes an edge.
func (m *MST) Delete(u, v int) UpdateStats { return m.d.Delete(u, v) }

// ApplyBatch applies a batch of updates in one shared round window,
// running component-disjoint updates concurrently (see dyncon.ApplyBatch).
func (m *MST) ApplyBatch(b Batch) BatchStats { return m.d.ApplyBatch(b) }

// Weight returns the maintained forest's total (bucketed) weight
// (driver-side oracle access; validation only).
func (m *MST) Weight() Weight { return m.d.ForestWeight() }

// ForestEdges returns the maintained forest (driver-side oracle access;
// validation only).
func (m *MST) ForestEdges() []graph.WEdge { return m.d.ForestEdges() }

// Connected answers connectivity through the cluster (two rounds, charged
// to a QueryStats window).
func (m *MST) Connected(u, v int) bool { return m.d.Connected(u, v) }

// ConnectedBatch answers k connectivity queries in one shared
// scatter/gather window (see dyncon.ConnectedBatch).
func (m *MST) ConnectedBatch(pairs []Pair) []bool { return m.d.ConnectedBatch(pairs) }

// Cluster exposes the underlying cluster accounting.
func (m *MST) Cluster() *Cluster { return m.d.Cluster() }

// MaximalMatching maintains a maximal matching (§3).
type MaximalMatching struct{ m *dmm.M }

// NewMaximalMatching builds the §3 structure for n vertices and at most
// capEdges simultaneous edges.
func NewMaximalMatching(n, capEdges int) *MaximalMatching {
	return &MaximalMatching{m: dmm.New(dmm.Config{N: n, CapEdges: capEdges})}
}

// NewThreeHalvesMatching builds the §4 structure: a 3/2-approximate
// maximum matching (the graph must start empty, which it does).
func NewThreeHalvesMatching(n, capEdges int) *MaximalMatching {
	return &MaximalMatching{m: dmm.New(dmm.Config{N: n, CapEdges: capEdges, ThreeHalves: true})}
}

// Insert adds an edge.
func (mm *MaximalMatching) Insert(u, v int) UpdateStats { return mm.m.Insert(u, v) }

// Delete removes an edge.
func (mm *MaximalMatching) Delete(u, v int) UpdateStats { return mm.m.Delete(u, v) }

// ApplyBatch applies a batch of updates in one shared round window through
// the shared wave scheduler: endpoint-disjoint updates progress the §3
// case analysis phase-parallel as concurrent waves at the coordinator,
// serial stretches fall back to coordinator chaining (see dmm.ApplyBatch).
// The resulting matching is identical to applying the updates one at a
// time.
func (mm *MaximalMatching) ApplyBatch(b Batch) BatchStats { return mm.m.ApplyBatch(b) }

// ApplyBatchChained applies a batch through the PR 1 coordinator-chaining
// path — strictly in-order execution with shared injection and ack-tail
// rounds — retained as the serial baseline the wave scheduler is
// benchmarked against (see dmm.ApplyBatchChained).
func (mm *MaximalMatching) ApplyBatchChained(b Batch) BatchStats { return mm.m.ApplyBatchChained(b) }

// MateOf answers "who is v matched to?" (-1 = free) as a one-round
// protocol query at v's statistics machine.
func (mm *MaximalMatching) MateOf(v int) int { return mm.m.MateOf(v) }

// MateOfBatch answers k mate queries in one shared one-round window (see
// dmm.MateOfBatch).
func (mm *MaximalMatching) MateOfBatch(vs []int) []int { return mm.m.MateOfBatch(vs) }

// Matched reports whether (u,v) is in the matching, as a protocol query.
func (mm *MaximalMatching) Matched(u, v int) bool { return mm.m.Matched(u, v) }

// MateTable returns the current matching as a mate table (-1 = free) by
// driver-side oracle access — validation only, no protocol accounting. Use
// MateOf/MateOfBatch for protocol queries.
func (mm *MaximalMatching) MateTable() []int { return mm.m.MateTable() }

// Cluster exposes the underlying cluster accounting.
func (mm *MaximalMatching) Cluster() *Cluster { return mm.m.Cluster() }

// AlmostMaximalMatching maintains a (2+ε)-approximate matching (§6).
type AlmostMaximalMatching struct{ m *amm.M }

// NewAlmostMaximalMatching builds the §6 structure.
func NewAlmostMaximalMatching(n int, eps float64, seed int64) *AlmostMaximalMatching {
	return &AlmostMaximalMatching{m: amm.New(amm.Config{N: n, Eps: eps, Seed: seed})}
}

// Insert adds an edge.
func (am *AlmostMaximalMatching) Insert(u, v int) UpdateStats { return am.m.Insert(u, v) }

// Delete removes an edge.
func (am *AlmostMaximalMatching) Delete(u, v int) UpdateStats { return am.m.Delete(u, v) }

// ApplyBatch applies a batch of updates in one shared round window:
// endpoint-disjoint injection waves plus scheduler cycles shared across
// the batch (see amm.ApplyBatch).
func (am *AlmostMaximalMatching) ApplyBatch(b Batch) BatchStats { return am.m.ApplyBatch(b) }

// MateOf answers "who is v matched to?" (-1 = free) as a one-round
// protocol query at v's owner machine.
func (am *AlmostMaximalMatching) MateOf(v int) int { return am.m.MateOf(v) }

// MateOfBatch answers k mate queries in one shared one-round window (see
// amm.MateOfBatch).
func (am *AlmostMaximalMatching) MateOfBatch(vs []int) []int { return am.m.MateOfBatch(vs) }

// Matched reports whether (u,v) is in the matching, as a protocol query.
func (am *AlmostMaximalMatching) Matched(u, v int) bool { return am.m.Matched(u, v) }

// MateTable returns the current matching as a mate table (-1 = free) by
// driver-side oracle access — validation only, no protocol accounting. Use
// MateOf/MateOfBatch for protocol queries.
func (am *AlmostMaximalMatching) MateTable() []int { return am.m.MateTable() }

// Cluster exposes the underlying cluster accounting.
func (am *AlmostMaximalMatching) Cluster() *Cluster { return am.m.Cluster() }
