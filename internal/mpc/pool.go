package mpc

// Per-round memory pooling for the backend hot loop. A steady-state round
// used to allocate a fresh Ctx slab, re-grow every receiving machine's
// inbox from nil, and append per-handler outboxes from scratch; the pools
// here recycle all three backing stores so a bounded-active-set round
// settles at ~zero allocations (pinned by TestSteadyStateAllocsPerRound).
//
// The one rule that makes recycling safe is the payload-clearing rule
// inherited from PR 7's "drop the slab" lesson: a retired []Message
// backing array holds Payload pointers, and parking it in a free-list
// un-cleared would pin every payload of the round for the pool's
// lifetime. Every retirement therefore zeroes the consumed elements
// before banking the array. Elements beyond len(s) stay zero by
// induction — fresh arrays start zeroed and append only writes the
// elements that become part of len — so clearing len, not cap, suffices.

// msgPool is a free-list of retired []Message backing arrays, shared by
// the inboxes and refilled by settle each round. It is owned by the
// single driver goroutine; workers never touch it.
type msgPool struct {
	free [][]Message
}

// retire zeroes a consumed message slice (the payload-clearing rule),
// banks its backing array for reuse, and returns the nil slice the
// consumer stores back. A never-grown slice has nothing to bank.
func (p *msgPool) retire(ms []Message) []Message {
	if cap(ms) == 0 {
		return nil
	}
	clear(ms)
	p.free = append(p.free, ms[:0])
	return nil
}

// grab appends msg to ms, seeding an empty slice from the free-list so a
// machine receiving its first message of the round reuses a retired
// backing array instead of growing from nil.
func (p *msgPool) grab(ms []Message, msg Message) []Message {
	if cap(ms) == 0 {
		if n := len(p.free); n > 0 {
			ms = p.free[n-1]
			p.free[n-1] = nil
			p.free = p.free[:n-1]
		}
	}
	return append(ms, msg)
}

// growSlab returns a Ctx slab with at least n slots, preserving recycled
// slots' out/schedule backing arrays across growth. Slots are recycled
// (payload-cleared and truncated) by settle, so a reused slot's only live
// state is its empty backing arrays.
func growSlab(slab []Ctx, n int) []Ctx {
	if cap(slab) < n {
		grown := make([]Ctx, n)
		copy(grown, slab[:cap(slab)])
		return grown
	}
	return slab[:n]
}

// recycle resets a Ctx for reuse in a later round: the staged messages
// were already copied into the receiving inboxes by settle, so the only
// thing the slot may keep is the backing arrays — zeroed first, per the
// payload-clearing rule.
func (ctx *Ctx) recycle() {
	clear(ctx.out)
	ctx.out = ctx.out[:0]
	ctx.schedule = ctx.schedule[:0]
}

// pairEntry is one run of same-pair traffic staged by the current round.
type pairEntry struct {
	from, to, words int
}

// pairStage is the flat per-round accumulator for the pair-communication
// distribution. The delivery path used to do one map[[2]int]int write per
// staged message; the stage instead appends to a reused flat slice —
// coalescing consecutive same-pair messages, the common shape of a sender
// streaming to one destination — and folds into the map once at the end
// of settle. Integer addition commutes, so the folded map (and with it
// CommEntropy and MaxPairWords) is bit-identical to the per-message
// writes.
type pairStage struct {
	entries []pairEntry
}

// add stages words of (from → to) traffic.
func (s *pairStage) add(from, to, words int) {
	if n := len(s.entries); n > 0 {
		if e := &s.entries[n-1]; e.from == from && e.to == to {
			e.words += words
			return
		}
	}
	s.entries = append(s.entries, pairEntry{from: from, to: to, words: words})
}

// fold flushes the staged runs into the lifetime pair map and resets the
// stage for the next round.
func (s *pairStage) fold(st *Stats) {
	for _, e := range s.entries {
		st.pairWords[[2]int{e.from, e.to}] += e.words
	}
	s.entries = s.entries[:0]
}
