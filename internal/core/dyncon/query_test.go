package dyncon

import (
	"math/rand"
	"strings"
	"testing"

	"dmpc/internal/graph"
)

// TestQueryWindowRegression pins the headline bugfix of the query pipeline:
// interleaving protocol queries into a batched update workload leaves the
// recorded BatchStats bit-identical to the query-free run — query rounds
// are charged to QueryStats windows instead of leaking into whatever batch
// window is nearby, and no query disappears from per-op accounting.
func TestQueryWindowRegression(t *testing.T) {
	const n = 40
	mkStream := func() []graph.Update {
		rng := rand.New(rand.NewSource(17))
		return graph.RandomStream(n, 160, 0.55, 1, rng)
	}

	run := func(withQueries bool) (*D, int) {
		d := New(Config{N: n, Mode: CC, ExpectedEdges: 200})
		qrng := rand.New(rand.NewSource(23))
		queries := 0
		for _, b := range graph.Chunk(mkStream(), 8) {
			d.ApplyBatch(b)
			if !withQueries {
				continue
			}
			pairs := graph.RandomPairs(n, 4, qrng)
			d.ConnectedBatch(pairs)
			d.Connected(pairs[0].U, pairs[0].V)
			d.ComponentOf(pairs[0].U)
			queries += len(pairs) + 2
		}
		return d, queries
	}

	quiet, _ := run(false)
	noisy, queries := run(true)

	want := quiet.Cluster().Stats().Batches()
	got := noisy.Cluster().Stats().Batches()
	if len(want) != len(got) {
		t.Fatalf("batch window count differs: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("batch %d stats differ with queries interleaved: %+v vs %+v", i, got[i], want[i])
		}
	}
	if len(quiet.Cluster().Stats().Queries()) != 0 {
		t.Fatal("query-free run recorded query windows")
	}
	var counted int
	for _, q := range noisy.Cluster().Stats().Queries() {
		if q.Rounds == 0 {
			t.Fatalf("query window with zero rounds: %+v", q)
		}
		counted += q.Queries
	}
	if counted != queries {
		t.Fatalf("%d queries issued, %d accounted in query windows", queries, counted)
	}
}

// TestQueryWithInFlightUpdates covers the old fixed Run(8) budget panic:
// a query injected while update messages are still in flight now drives the
// cluster to quiescence (64-round guard) and answers, instead of dying with
// a bare "query result missing".
func TestQueryWithInFlightUpdates(t *testing.T) {
	d := New(Config{N: 16, ExpectedEdges: 64})
	d.Insert(0, 1, 1)
	d.Insert(2, 3, 1)

	// Inject an update without driving the cluster, as ApplyBatch's wave
	// injection does, then query an unrelated pair while it is in flight.
	d.seq++
	d.inject(graph.Update{Op: graph.Insert, U: 4, V: 5, W: 1}, d.seq)
	if !d.Connected(0, 1) || d.Connected(0, 2) {
		t.Fatal("query answered wrong while an update was in flight")
	}
	// The in-flight update must have completed during the query drain.
	if !d.Connected(4, 5) {
		t.Fatal("in-flight update was lost")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("invariants broken: %v", err)
	}
}

// TestConnectedBatchEquivalenceAndAmortization pins both halves of the
// ConnectedBatch contract: answers equal the sequential oracle, and a k=64
// batch shares one scatter and one gather round, putting the amortized cost
// far under the ~2 rounds a lone Connected pays.
func TestConnectedBatchEquivalenceAndAmortization(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(5))
	d := New(Config{N: n, ExpectedEdges: 5 * n})
	g := graph.New(n)
	for _, up := range graph.RandomStream(n, 200, 0.6, 1, rng) {
		if up.Op == graph.Insert {
			d.Insert(up.U, up.V, 1)
		} else {
			d.Delete(up.U, up.V)
		}
		g.Apply(up)
	}
	comp := graph.Components(g)

	pairs := graph.RandomPairs(n, 64, rng)
	before := len(d.Cluster().Stats().Queries())
	got := d.ConnectedBatch(pairs)
	for i, p := range pairs {
		if got[i] != (comp[p.U] == comp[p.V]) {
			t.Fatalf("pair %d (%d,%d): got %v, oracle %v", i, p.U, p.V, got[i], comp[p.U] == comp[p.V])
		}
	}
	qs := d.Cluster().Stats().Queries()
	if len(qs) != before+1 {
		t.Fatalf("expected one query window, got %d new", len(qs)-before)
	}
	batch := qs[len(qs)-1]
	if batch.Queries != 64 {
		t.Fatalf("window covers %d queries, want 64", batch.Queries)
	}
	if batch.Rounds != 2 {
		t.Fatalf("k=64 batch cost %d rounds, want the 2 of one query", batch.Rounds)
	}
	if rpq := batch.RoundsPerQuery(); rpq >= 0.5 {
		t.Fatalf("amortized %.3f rounds/query at k=64, want < 0.5", rpq)
	}

	// A lone Connected still pays its own two rounds.
	d.Connected(0, 1)
	qs = d.Cluster().Stats().Queries()
	if single := qs[len(qs)-1]; single.Queries != 1 || single.Rounds != 2 {
		t.Fatalf("lone query window %+v, want 1 query over 2 rounds", single)
	}
}

// TestComponentOfProtocol pins the protocol ComponentOf: it matches the
// CompOf validation oracle, costs one round, and is accounted as a query.
func TestComponentOfProtocol(t *testing.T) {
	const n = 24
	d := New(Config{N: n, ExpectedEdges: 100})
	for i := 0; i < 10; i++ {
		d.Insert(i, i+1, 1)
	}
	for v := 0; v < n; v++ {
		if got, want := d.ComponentOf(v), d.CompOf(v); got != want {
			t.Fatalf("ComponentOf(%d) = %d, oracle %d", v, got, want)
		}
	}
	qs := d.Cluster().Stats().Queries()
	if len(qs) != n {
		t.Fatalf("%d query windows, want %d", len(qs), n)
	}
	for _, q := range qs {
		if q.Rounds != 1 || q.Queries != 1 {
			t.Fatalf("component query window %+v, want 1 query over 1 round", q)
		}
	}
}

// TestQueryInsideBatchPanics pins the exclusivity rule end to end through
// dyncon: opening the query path while a batch window is live is a driver
// bug and must panic, naming the window conflict.
func TestQueryInsideBatchPanics(t *testing.T) {
	d := New(Config{N: 8, ExpectedEdges: 32})
	d.Insert(0, 1, 1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic for query inside a batch window")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "mutually exclusive") {
			t.Fatalf("panic %v does not name the window conflict", r)
		}
	}()
	d.Cluster().BeginBatch(4)
	d.Connected(0, 1)
}
