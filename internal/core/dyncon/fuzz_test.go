package dyncon

import (
	"testing"

	"dmpc/internal/graph"
)

// FuzzBatchEquivalence is the property-based equivalence harness for the
// conflict-graph wave scheduler: any update sequence, any chunking, and the
// batched result must be identical to sequential replay — forest, component
// labels, and every distributed invariant. The fuzzer decodes the raw bytes
// through graph.FuzzStream (which deliberately keeps no-op updates in), the
// low bits of sel pick the chunk size, and the top bit selects CC vs exact
// MST so both protocol families stay under fire.
//
// Run the full fuzzer with:
//
//	go test -run FuzzBatchEquivalence -fuzz FuzzBatchEquivalence ./internal/core/dyncon
func FuzzBatchEquivalence(f *testing.F) {
	f.Add(byte(1), []byte("abcabdacd"))
	f.Add(byte(4), []byte("0120340516273809"))
	f.Add(byte(131), []byte("ABCABDABEACDBCE!bcd!bce")) // MST mode, deletes via odd selectors
	f.Add(byte(64), []byte("aXYaYZaZWaWXcXZcYW!XY!ZW")) // wide chunk over a cycle
	f.Fuzz(func(t *testing.T, sel byte, data []byte) {
		const n = 24
		if len(data) > 360 { // 120 updates keeps a fuzz iteration fast
			data = data[:360]
		}
		stream := graph.FuzzStream(data, n, 20)
		if len(stream) == 0 {
			t.Skip()
		}
		cfg := Config{N: n, Mode: CC, ExpectedEdges: 160}
		if sel&0x80 != 0 {
			cfg.Mode = MST // Eps 0: exact MSF, comparable edge for edge
		}
		k := 1 + int(sel&0x7f)%len(stream)

		seqD := New(cfg)
		for _, up := range stream {
			if up.Op == graph.Insert {
				seqD.Insert(up.U, up.V, up.W)
			} else {
				seqD.Delete(up.U, up.V)
			}
		}

		batD := New(cfg)
		for _, b := range graph.Chunk(stream, k) {
			st := batD.ApplyBatch(b)
			if st.Updates != len(b) {
				t.Fatalf("batch stats cover %d updates, batch has %d", st.Updates, len(b))
			}
			covered := 0
			for _, w := range st.Waves {
				covered += w.Updates
			}
			if covered != st.Updates {
				t.Fatalf("waves cover %d of %d updates", covered, st.Updates)
			}
		}

		if err := batD.Validate(); err != nil {
			t.Fatalf("mode=%v k=%d: invariants broken after batches: %v", cfg.Mode, k, err)
		}
		wantF, gotF := forestKey(seqD), forestKey(batD)
		if len(wantF) != len(gotF) {
			t.Fatalf("mode=%v k=%d: forest sizes differ: %d vs %d", cfg.Mode, k, len(gotF), len(wantF))
		}
		for i := range wantF {
			if wantF[i] != gotF[i] {
				t.Fatalf("mode=%v k=%d: forest edge %d differs: %v vs %v", cfg.Mode, k, i, gotF[i], wantF[i])
			}
		}
		for v := 0; v < n; v++ {
			if seqD.CompOf(v) != batD.CompOf(v) {
				t.Fatalf("mode=%v k=%d: component of %d differs: %d vs %d",
					cfg.Mode, k, v, batD.CompOf(v), seqD.CompOf(v))
			}
		}
		if v := batD.Cluster().Stats().Violations; v != 0 {
			t.Fatalf("mode=%v k=%d: %d cluster constraint violations", cfg.Mode, k, v)
		}

		// Backend-equivalence replica: the same chunks on the goroutine-
		// per-machine runtime must reproduce the sim batches bit for bit —
		// state, invariants and cluster accounting — so every committed
		// corpus seed doubles as a backend determinism case.
		parD := New(parallelConfig(cfg))
		defer parD.Close()
		for _, b := range graph.Chunk(stream, k) {
			parD.ApplyBatch(b)
		}
		assertBackendEquivalent(t, batD, parD)
	})
}
