// Network monitor: a read-heavy workload on the §5 connectivity
// structure. A datacenter fabric (spine/leaf grid plus cross links)
// suffers continuous link flaps while a monitoring plane fires large
// bursts of reachability probes — "can rack u still reach rack v?" —
// between maintenance batches. Probes dominate updates ~10:1, so the
// read path's cost is the whole story: issued one by one each probe pays
// the §5 query's two rounds, but a ConnectedBatch shares one
// scatter/gather window and the amortized cost collapses to 2/k rounds
// per probe. Update accounting stays untouched by the probe storm — the
// simulator keeps query rounds in their own QueryStats class.
package main

import (
	"fmt"
	"math/rand"

	"dmpc"
	"dmpc/internal/graph"
)

func main() {
	const racks = 240
	const flapBatches = 12
	const flapsPerBatch = 24
	const probesPerBatch = 256

	rng := rand.New(rand.NewSource(4))
	g := dmpc.NewGraph(racks)
	cc := dmpc.NewConnectivity(racks, 6*racks)

	// Bring the fabric up: a 12x20 grid of racks with some cross links.
	grid := graph.Grid(12, 20, 1, rng)
	for _, e := range grid.Edges() {
		cc.Insert(e.U, e.V)
		g.Insert(e.U, e.V, 1)
	}
	fmt.Printf("fabric up: %d racks, %d links\n", racks, g.M())

	// Maintenance cycles: a batch of link flaps, then a probe storm.
	probes := 0
	var mismatches int
	for i := 0; i < flapBatches; i++ {
		var b dmpc.Batch
		for _, up := range graph.RandomStream(racks, flapsPerBatch, 0.45, 1, rng) {
			if g.Apply(up) {
				b = append(b, up)
			}
		}
		cc.ApplyBatch(b)

		pairs := graph.RandomPairs(racks, probesPerBatch, rng)
		comp := graph.Components(g)
		for j, reachable := range cc.ConnectedBatch(pairs) {
			probes++
			if reachable != (comp[pairs[j].U] == comp[pairs[j].V]) {
				mismatches++
			}
		}
	}

	st := cc.Cluster().Stats()
	rpq, _, _ := st.MeanQuery()
	rpu, _, _ := st.MeanBatch()
	fmt.Printf("monitoring plane: %d probes in %d batches, all matching the oracle: %v\n",
		probes, len(st.Queries()), mismatches == 0)
	fmt.Printf("read path: %.3f amortized rounds/probe (a lone probe pays 2)\n", rpq)
	fmt.Printf("write path: %.2f rounds/update across %d flap batches, unperturbed by probes\n",
		rpu, len(st.Batches()))
}
