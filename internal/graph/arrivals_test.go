package graph

import (
	"math/rand"
	"testing"
)

// TestArrivalHeapOrder pins the heap's ordering contract: ascending At,
// with simultaneous arrivals popping in input order.
func TestArrivalHeapOrder(t *testing.T) {
	arr := []Arrival{
		{At: 5, Op: OpIns(0, 1, 1)},
		{At: 1, Op: OpIns(1, 2, 1)},
		{At: 5, Op: OpDel(0, 1)},
		{At: 0, Op: OpQConnected(0, 1)},
		{At: 1, Op: OpIns(2, 3, 1)},
	}
	h := NewArrivalHeap(arr)
	wantIdx := []int{3, 1, 4, 0, 2}
	for _, wi := range wantIdx {
		if h.Len() == 0 {
			t.Fatal("heap drained early")
		}
		got := h.Pop()
		if got != arr[wi] {
			t.Fatalf("popped %+v, want %+v", got, arr[wi])
		}
	}
	if h.Len() != 0 {
		t.Fatalf("heap holds %d arrivals after draining", h.Len())
	}
	// A later Push with a tied timestamp pops after re-pushed earlier ties.
	h.Push(Arrival{At: 2, Op: OpIns(0, 1, 1)})
	h.Push(Arrival{At: 2, Op: OpDel(0, 1)})
	if first := h.Pop(); first.Op.Kind != OpInsert {
		t.Fatalf("tied pushes reordered: first pop %+v", first)
	}
}

// TestArrivalHeapTieStability is the property test behind the
// position-stable rule: for random schedules dense with tied
// timestamps — including interleaved pops and re-pushes — the pop
// order must equal a stable sort of the pushes by At, i.e. equal-At
// arrivals always pop in push order.
func TestArrivalHeapTieStability(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		// Draw timestamps from a tiny universe so most arrivals tie; encode
		// the push index in the op so stability is observable.
		h := NewArrivalHeap(nil)
		type rec struct {
			at  int64
			idx int
		}
		var live []rec // oracle: every pushed-not-yet-popped arrival
		pushes, pops := 0, 0
		for pushes < n || h.Len() > 0 {
			if pushes < n && (h.Len() == 0 || rng.Intn(3) > 0) {
				a := Arrival{At: int64(rng.Intn(4)), Op: OpIns(pushes, pushes+1, 1)}
				h.Push(a)
				live = append(live, rec{a.At, pushes})
				pushes++
				continue
			}
			// The pop must be the earliest-At, earliest-pushed live arrival:
			// ties break by insertion order, not by heap-internal layout.
			a := h.Pop()
			min := 0
			for j := 1; j < len(live); j++ {
				if live[j].at < live[min].at || (live[j].at == live[min].at && live[j].idx < live[min].idx) {
					min = j
				}
			}
			if got := (rec{a.At, a.Op.U}); got != live[min] {
				t.Fatalf("trial %d pop %d: got {at=%d idx=%d}, oracle wants {at=%d idx=%d}",
					trial, pops, got.at, got.idx, live[min].at, live[min].idx)
			}
			live = append(live[:min], live[min+1:]...)
			pops++
		}
		if pops != n {
			t.Fatalf("popped %d of %d arrivals", pops, n)
		}
	}
}

// TestArrivalGenerators pins the three schedule shapes: all-zero,
// non-decreasing Poisson, and the bursty within/between pattern.
func TestArrivalGenerators(t *testing.T) {
	ops := make([]Op, 10)
	for i := range ops {
		ops[i] = OpIns(i, i+1, 1)
	}
	for i, a := range ArrivalsNow(ops) {
		if a.At != 0 || a.Op != ops[i] {
			t.Fatalf("ArrivalsNow[%d] = %+v", i, a)
		}
	}
	rng := rand.New(rand.NewSource(1))
	prev := int64(0)
	for i, a := range PoissonArrivals(ops, 8, rng) {
		if a.At < prev {
			t.Fatalf("PoissonArrivals[%d] regresses: %d after %d", i, a.At, prev)
		}
		prev = a.At
	}
	arr := BurstyArrivals(ops, 4, 0, 50)
	for i, a := range arr {
		want := int64(i/4) * 50
		if a.At != want {
			t.Fatalf("BurstyArrivals[%d].At = %d, want %d", i, a.At, want)
		}
	}
}

// TestFuzzArrivalsAlignment pins the 4-byte decoding against FuzzOps:
// the op sequence must be exactly what FuzzOps would decode from the
// same records, timestamps must be non-decreasing, and the well-formed
// filter must drop a dropped op's gap with it (the next surviving op's
// gap is its own, not an accumulation artifact).
func TestFuzzArrivalsAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	qk := []OpKind{OpConnected, OpComponentOf}
	for trial := 0; trial < 50; trial++ {
		data := make([]byte, rng.Intn(160))
		rng.Read(data)
		for _, wf := range []bool{false, true} {
			arr := FuzzArrivals(data, 8, 1, qk, wf)
			// Project the same records through the 3-byte decoder.
			var recs []byte
			for i := 0; i+3 < len(data); i += 4 {
				recs = append(recs, data[i], data[i+1], data[i+2])
			}
			ops := FuzzOps(recs, 8, 1, qk, wf)
			if len(ops) != len(arr) {
				t.Fatalf("wf=%v: %d arrivals vs %d ops", wf, len(arr), len(ops))
			}
			prev := int64(0)
			for i, a := range arr {
				if a.Op != ops[i] {
					t.Fatalf("wf=%v: arrival %d op %+v, want %+v", wf, i, a.Op, ops[i])
				}
				if a.At < prev {
					t.Fatalf("wf=%v: arrival %d regresses", wf, i)
				}
				if a.At-prev > 12 {
					t.Fatalf("wf=%v: arrival %d gap %d exceeds the modulus", wf, i, a.At-prev)
				}
				prev = a.At
			}
		}
	}
}
