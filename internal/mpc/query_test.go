package mpc

import "testing"

// TestQueryAccounting pins the QueryStats window semantics: rounds between
// BeginQueryBatch and EndQueryBatch fold into one query aggregate — and
// into no update/batch aggregate — and the amortized helpers report against
// the window's query count.
func TestQueryAccounting(t *testing.T) {
	c := NewCluster(Config{Machines: 4, MemWords: 64})
	for i := 0; i < 4; i++ {
		c.SetMachine(i, bounceMachine{})
	}

	c.BeginQueryBatch(8)
	c.Send(Message{From: -1, To: 0, Payload: "ping", Words: 1})
	c.Send(Message{From: -1, To: 2, Payload: "ping", Words: 1})
	c.Run(8)
	q := c.EndQueryBatch()

	if q.Queries != 8 {
		t.Fatalf("query window covers %d queries, want 8", q.Queries)
	}
	if q.Rounds == 0 || q.SumWords == 0 || q.MaxActive == 0 {
		t.Fatalf("query accounting empty: %+v", q)
	}
	if want := float64(q.Rounds) / 8; q.RoundsPerQuery() != want {
		t.Fatalf("RoundsPerQuery %.3f, want %.3f", q.RoundsPerQuery(), want)
	}
	if got := c.Stats().Updates(); len(got) != 0 {
		t.Fatalf("query rounds recorded as updates: %+v", got)
	}
	if got := c.Stats().Batches(); len(got) != 0 {
		t.Fatalf("query rounds recorded as batches: %+v", got)
	}

	queries := c.Stats().Queries()
	if len(queries) != 1 || queries[0] != q {
		t.Fatalf("recorded query windows %+v, want [%+v]", queries, q)
	}
	rpq, act, words := c.Stats().MeanQuery()
	if rpq != q.RoundsPerQuery() || act == 0 || words == 0 {
		t.Fatalf("MeanQuery = (%.2f, %.2f, %.2f)", rpq, act, words)
	}

	// Rounds outside any query window must not fold in.
	c.Send(Message{From: -1, To: 0, Payload: "ping", Words: 1})
	c.Run(8)
	if got := c.Stats().Queries(); len(got) != 1 || got[0].Rounds != q.Rounds {
		t.Fatal("rounds outside the query window leaked into the aggregate")
	}

	if z := c.EndQueryBatch(); z != (QueryStats{}) {
		t.Fatalf("EndQueryBatch without BeginQueryBatch = %+v", z)
	}
}

// TestQueryWindowExclusivity pins the headline bugfix: query rounds can no
// longer leak into an open update/batch stats window — opening a query
// window inside an update or batch window (or vice versa) panics instead of
// silently folding rounds across accounting classes.
func TestQueryWindowExclusivity(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic, got none", name)
			}
		}()
		f()
	}

	mustPanic("query inside batch", func() {
		c := NewCluster(Config{Machines: 2, MemWords: 64})
		c.BeginBatch(4)
		c.BeginQuery()
	})
	mustPanic("query inside update", func() {
		c := NewCluster(Config{Machines: 2, MemWords: 64})
		c.BeginUpdate()
		c.BeginQueryBatch(2)
	})
	mustPanic("batch inside query", func() {
		c := NewCluster(Config{Machines: 2, MemWords: 64})
		c.BeginQueryBatch(2)
		c.BeginBatch(4)
	})
	mustPanic("update inside query", func() {
		c := NewCluster(Config{Machines: 2, MemWords: 64})
		c.BeginQuery()
		c.BeginUpdate()
	})
	mustPanic("query inside query", func() {
		c := NewCluster(Config{Machines: 2, MemWords: 64})
		c.BeginQuery()
		c.BeginQueryBatch(2)
	})

	// Sequential windows remain fine: batch, then queries, then a batch.
	c := NewCluster(Config{Machines: 4, MemWords: 64})
	for i := 0; i < 4; i++ {
		c.SetMachine(i, bounceMachine{})
	}
	c.BeginBatch(1)
	c.Send(Message{From: -1, To: 0, Payload: "ping", Words: 1})
	c.Run(8)
	b1 := c.EndBatch()
	c.BeginQuery()
	c.Send(Message{From: -1, To: 1, Payload: "ping", Words: 1})
	c.Run(8)
	c.EndQuery()
	c.BeginBatch(1)
	c.Send(Message{From: -1, To: 2, Payload: "ping", Words: 1})
	c.Run(8)
	b2 := c.EndBatch()
	if b1.Rounds != b2.Rounds {
		t.Fatalf("interleaved query window changed batch accounting: %+v vs %+v", b1, b2)
	}
	if len(c.Stats().Batches()) != 2 || len(c.Stats().Queries()) != 1 {
		t.Fatalf("window bookkeeping wrong: %d batches, %d query windows",
			len(c.Stats().Batches()), len(c.Stats().Queries()))
	}
}
