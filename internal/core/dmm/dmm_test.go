package dmm

import (
	"math/rand"
	"testing"

	"dmpc/internal/graph"
)

// drive applies a stream, checking matching validity + maximality and the
// storage invariants after every update.
func drive(t *testing.T, m *M, g *graph.Graph, updates []graph.Update, tag string) {
	t.Helper()
	for step, up := range updates {
		if up.Op == graph.Insert {
			m.Insert(up.U, up.V)
		} else {
			m.Delete(up.U, up.V)
		}
		g.Apply(up)
		mt := m.MateTable()
		if !graph.IsMatching(g, mt) {
			t.Fatalf("%s step %d (%v): invalid matching", tag, step, up)
		}
		if !graph.IsMaximalMatching(g, mt) {
			t.Fatalf("%s step %d (%v): matching not maximal", tag, step, up)
		}
		if err := m.Validate(g); err != nil {
			t.Fatalf("%s step %d (%v): %v", tag, step, up, err)
		}
	}
}

func TestMatchingBasic(t *testing.T) {
	m := New(Config{N: 6, CapEdges: 32})
	g := graph.New(6)
	drive(t, m, g, []graph.Update{
		{Op: graph.Insert, U: 0, V: 1},
		{Op: graph.Insert, U: 2, V: 3},
		{Op: graph.Insert, U: 1, V: 2}, // both matched: nothing
		{Op: graph.Delete, U: 0, V: 1}, // 0 free; 1 rematches via (1,2)? 2 is matched
		{Op: graph.Insert, U: 0, V: 4},
		{Op: graph.Delete, U: 2, V: 3},
		{Op: graph.Insert, U: 3, V: 5},
		{Op: graph.Delete, U: 0, V: 4},
	}, "basic")
}

func TestMatchingRandomStreams(t *testing.T) {
	const n = 24
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := New(Config{N: n, CapEdges: 150})
		g := graph.New(n)
		drive(t, m, g, graph.RandomStream(n, 300, 0.55, 1, rng), "random")
	}
}

func TestMatchingStarForcesHeavy(t *testing.T) {
	// A hub star: the hub crosses the heavy threshold, exercising
	// promote, alive windows, suspended stacks and the surrogate path.
	const leaves = 40
	m := New(Config{N: leaves + 1, CapEdges: leaves + 10})
	g := graph.New(leaves + 1)
	var ups []graph.Update
	for i := 1; i <= leaves; i++ {
		ups = append(ups, graph.Update{Op: graph.Insert, U: 0, V: i})
	}
	drive(t, m, g, ups, "star-build")
	if g.Degree(0) < m.coord.heavyAt {
		t.Skip("star too small to cross the heavy threshold")
	}
	// Delete the hub's matched edge repeatedly: the hub must stay matched
	// (Invariant 3.1) via free neighbors.
	for round := 0; round < 10; round++ {
		mate := m.MateTable()[0]
		if mate == -1 {
			t.Fatalf("round %d: heavy hub unmatched with free leaves around", round)
		}
		drive(t, m, g, []graph.Update{{Op: graph.Delete, U: 0, V: mate}}, "star-del")
	}
}

func TestMatchingSurrogateSteal(t *testing.T) {
	// Build two stars joined so that the heavy hub's neighbors are all
	// matched, forcing the steal path when the hub loses its mate.
	const n = 30
	rng := rand.New(rand.NewSource(9))
	m := New(Config{N: n, CapEdges: 120})
	g := graph.New(n)
	var ups []graph.Update
	// Hub 0 connected to 1..14; those leaves pairwise matched via a path.
	for i := 1; i <= 14; i++ {
		ups = append(ups, graph.Update{Op: graph.Insert, U: 0, V: i})
	}
	for i := 1; i+1 <= 14; i += 2 {
		ups = append(ups, graph.Update{Op: graph.Insert, U: i, V: i + 1})
	}
	drive(t, m, g, ups, "steal-build")
	// Random churn on the hub's matched edge.
	for round := 0; round < 12; round++ {
		mate := m.MateTable()[0]
		if mate == -1 {
			// Hub free: every neighbor matched; insert an edge to wake it.
			v := 15 + rng.Intn(10)
			if !g.Has(0, v) {
				drive(t, m, g, []graph.Update{{Op: graph.Insert, U: 0, V: v}}, "steal-ins")
			}
			continue
		}
		drive(t, m, g, []graph.Update{{Op: graph.Delete, U: 0, V: mate}}, "steal-del")
	}
}

func TestMatchingTransitions(t *testing.T) {
	// Push one vertex across the heavy threshold and back, repeatedly.
	const n = 50
	m := New(Config{N: n, CapEdges: 100})
	g := graph.New(n)
	thr := m.coord.heavyAt
	var build []graph.Update
	for i := 1; i <= thr+3; i++ {
		build = append(build, graph.Update{Op: graph.Insert, U: 0, V: i})
	}
	drive(t, m, g, build, "up")
	var tear []graph.Update
	for i := 1; i <= 6; i++ {
		tear = append(tear, graph.Update{Op: graph.Delete, U: 0, V: i})
	}
	drive(t, m, g, tear, "down")
	var again []graph.Update
	for i := 1; i <= 6; i++ {
		again = append(again, graph.Update{Op: graph.Insert, U: 0, V: i})
	}
	drive(t, m, g, again, "up-again")
}

func TestRoundsMachinesCommBounds(t *testing.T) {
	// Table 1 row 1: O(1) rounds, O(1) active machines, O(√N) words.
	const n = 40
	rng := rand.New(rand.NewSource(3))
	m := New(Config{N: n, CapEdges: 200})
	g := graph.New(n)
	worstRounds, worstActive := 0, 0
	for _, up := range graph.RandomStream(n, 250, 0.55, 1, rng) {
		var st = m.Insert(up.U, up.V)
		if up.Op == graph.Delete {
			st = m.Delete(up.U, up.V)
		}
		g.Apply(up)
		if st.Rounds > worstRounds {
			worstRounds = st.Rounds
		}
		if st.MaxActive > worstActive {
			worstActive = st.MaxActive
		}
	}
	if worstRounds > 30 {
		t.Fatalf("worst rounds %d exceeds the protocol constant", worstRounds)
	}
	if worstActive > 10 {
		t.Fatalf("worst active machines %d: should be O(1)", worstActive)
	}
	if m.Cluster().Stats().Violations != 0 {
		t.Fatalf("%d model violations", m.Cluster().Stats().Violations)
	}
}

func TestHistoryRefreshKeepsMachinesCurrent(t *testing.T) {
	// Long runs must not overflow the history ring (the round-robin
	// refresh guarantees every machine syncs in time). The panic inside
	// hAppend is the tripwire.
	const n = 16
	rng := rand.New(rand.NewSource(5))
	m := New(Config{N: n, CapEdges: 80})
	g := graph.New(n)
	drive(t, m, g, graph.RandomStream(n, 800, 0.5, 1, rng), "long")
}

// TestFallbackAccounting: the fallback counter exists for the rare
// small-scale case where the alive window offers no surrogate; on ordinary
// random streams it should stay tiny relative to the update count.
func TestFallbackAccounting(t *testing.T) {
	const n = 24
	rng := rand.New(rand.NewSource(17))
	m := New(Config{N: n, CapEdges: 120})
	g := graph.New(n)
	updates := graph.RandomStream(n, 400, 0.55, 1, rng)
	drive(t, m, g, updates, "fallback")
	if m.Fallbacks() > int64(len(updates))/4 {
		t.Fatalf("fallbacks %d out of %d updates: surrogate search is broken",
			m.Fallbacks(), len(updates))
	}
}
