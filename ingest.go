package dmpc

import (
	"fmt"

	"dmpc/internal/graph"
	"dmpc/internal/mpc"
	"dmpc/internal/sched"
)

// Streaming re-exports.
type (
	// Arrival is one timestamped op of an asynchronous stream: Op arrives
	// at virtual time At (in cluster rounds).
	Arrival = graph.Arrival
	// StreamStats is the accounting window of one ingested stream:
	// amortized rounds/op plus per-op arrival-to-answer latency
	// percentiles, flush counts by trigger, and per-flush mixed windows.
	StreamStats = mpc.StreamStats
)

// Arrival-schedule generators, re-exported for workload building.
var (
	// ArrivalsNow timestamps a whole op stream at time zero — the
	// schedule under which Ingest coincides exactly with Apply.
	ArrivalsNow = graph.ArrivalsNow
	// PoissonArrivals timestamps a stream with exponential inter-arrival
	// gaps of a given mean (in rounds).
	PoissonArrivals = graph.PoissonArrivals
	// BurstyArrivals timestamps a stream as bursts of back-to-back ops
	// separated by lulls.
	BurstyArrivals = graph.BurstyArrivals
	// NewArrivalHeap builds the min-heap Ingest consumes arrivals from.
	NewArrivalHeap = graph.NewArrivalHeap
)

// IngestorConfig configures NewIngestor. Pipeline is required; zero
// values elsewhere disable the corresponding flush trigger.
type IngestorConfig struct {
	// Pipeline is the structure the stream flows into. The facade's own
	// structures additionally expose their per-op claims oracle to the
	// ingestor (conflict admission); a foreign Pipeline implementation
	// ingests without admission control — only the age and size bounds
	// cut the stream.
	Pipeline Pipeline
	// MaxBatch flushes the forming set when it holds this many ops (the
	// k bound). 0 means unbounded; ignored when Auto is set, which sizes
	// k adaptively.
	MaxBatch int
	// MaxAge flushes the forming set the moment its oldest op has waited
	// this many rounds (measured on the virtual clock). 0 disables the
	// age bound.
	MaxAge int64
	// Auto, when set, applies every flush through the AutoBatcher — k
	// tracks its live knee search (only k-bound flushes feed the search,
	// exactly as partial Flush never adapts) — and must have been built
	// in ApplyOps mode over this same Pipeline's Apply.
	Auto *AutoBatcher
	// Weights, when non-nil, makes the conflict admitter meter each
	// tenant's summed shared-claim cost against a weighted deficit-
	// round-robin share of the per-round word budget S (sched.Fair): a
	// tenant that has spent its share cuts the window early instead of
	// packing the whole forming set, so one noisy tenant cannot fill
	// every wave. This shapes how the *forming set* groups; pair it with
	// the structure-level WithTenantWeights option to also shape wave
	// packing inside each flush window.
	Weights map[int]int
	// Admission maps tenant id -> admission policy, consulted before an
	// arrival enters the forming set. Tenants absent from the map are
	// always admitted. A rejected op is surfaced, never silently
	// dropped: it is recorded in StreamStats.Rejections (and the
	// tenant's Rejected count), and a rejected query additionally gets a
	// positional Results entry with Rejected set so result indexing
	// stays aligned. nil disables admission control.
	Admission map[int]AdmissionPolicy
}

// AdmissionPolicy decides, per arrival, whether a tenant's op may enter
// the forming set. now is the arrival's virtual-clock timestamp in
// rounds. Policies are consulted in arrival order, so stateful
// implementations (TokenBucket) need no locking.
type AdmissionPolicy interface {
	Admit(now int64) bool
}

// AlwaysAdmit admits every op — the explicit form of "no policy", for
// mixing open tenants with throttled ones in one Admission map.
type AlwaysAdmit struct{}

// Admit always reports true.
func (AlwaysAdmit) Admit(int64) bool { return true }

// TokenBucket admits ops against a token bucket refilled on the
// virtual clock: Rate tokens per round, holding at most Burst. Each
// admitted op consumes one token; an op arriving with less than one
// token available is rejected. The bucket starts full.
type TokenBucket struct {
	Rate  float64 // tokens added per virtual-clock round
	Burst float64 // bucket capacity (initial fill)

	tokens float64
	last   int64
	inited bool
}

// Admit refills the bucket for the rounds elapsed since the last
// arrival and consumes one token if available.
func (tb *TokenBucket) Admit(now int64) bool {
	if !tb.inited {
		tb.tokens = tb.Burst
		tb.last = now
		tb.inited = true
	}
	tb.tokens += float64(now-tb.last) * tb.Rate
	if tb.tokens > tb.Burst {
		tb.tokens = tb.Burst
	}
	tb.last = now
	if tb.tokens >= 1 {
		tb.tokens--
		return true
	}
	return false
}

// Ingestor is the streaming front door over a Pipeline — the event loop
// the batch entry points are special cases of. It consumes timestamped
// arrivals in time order, admits each op into the currently-forming wave
// set while the op's schedule-time claims don't conflict with the set
// (the sched.Admitter rules, i.e. exactly when the scheduled pipeline
// could run them in one wave anyway), and flushes the set through
// Pipeline.Apply when an arrival is refused admission, the set reaches
// the batch-size bound, the oldest forming op reaches the age bound, or
// the stream closes.
//
// Time is virtual, measured in cluster rounds: a flush triggered at time
// t starts at max(t, completion of the previous flush) and completes its
// window's rounds later, and every op in it observed latency completion
// − arrival. Close returns those latencies' percentiles in StreamStats,
// next to the amortized rounds/op the batch view reports — the two
// disagree under load, which is what the AutoBatcher's TargetP99Rounds
// constraint trades on.
//
// Answers are positional over the whole stream's queries in arrival
// order, exactly as Apply's are over a slice; end state and answers are
// bit-identical to Apply on the full slice for every arrival schedule
// (pinned by the FuzzArrivalEquivalence harnesses).
type Ingestor struct {
	p      Pipeline
	raw    func([]Op) (Results, MixedStats)
	claims func(graph.Op) sched.Item
	auto   *AutoBatcher

	maxBatch int
	maxAge   int64

	adm       *sched.Admitter
	admission map[int]AdmissionPolicy
	forming   []Op
	formingAt []int64
	formingQI []int // per forming op: global query index, -1 for updates

	now    int64 // virtual clock: completion time of the last flush
	lastAt int64 // latest arrival seen, for monotonicity + tail flush
	closed bool

	pushed int // arrivals seen, admitted and rejected alike
	qseq   int // queries seen, admitted and rejected alike

	// multiTenant gates whether the per-tenant breakdown is exposed:
	// set by configuration (Weights/Admission) or the first nonzero
	// tenant tag. Accounting is always accumulated in tstats so a tag
	// arriving mid-stream still yields complete tenant-0 history.
	multiTenant bool
	tstats      map[int]*mpc.TenantStreamStats

	res   Results
	stats StreamStats
}

// Flush triggers, recorded per flush in StreamStats.
const (
	flushConflict = iota // an arrival's claims were refused admission
	flushFull            // the forming set reached k
	flushAge             // the oldest forming op reached MaxAge
	flushTail            // Close drained the stream
)

// NewIngestor builds the streaming front door. It panics if cfg.Pipeline
// is nil or cfg.Auto was built without ApplyOps.
func NewIngestor(cfg IngestorConfig) *Ingestor {
	if cfg.Pipeline == nil {
		panic("dmpc: NewIngestor needs a Pipeline")
	}
	if cfg.Auto != nil && cfg.Auto.applyOps == nil {
		panic("dmpc: Ingestor needs an ApplyOps-mode AutoBatcher")
	}
	return newIngestor(cfg.Pipeline, cfg, true)
}

// newIngestor is the shared constructor; admission false builds the
// degenerate ingestor Apply routes through (no claims, no bounds — one
// tail flush).
func newIngestor(p Pipeline, cfg IngestorConfig, admission bool) *Ingestor {
	ing := &Ingestor{
		p:           p,
		maxBatch:    cfg.MaxBatch,
		maxAge:      cfg.MaxAge,
		auto:        cfg.Auto,
		admission:   cfg.Admission,
		multiTenant: len(cfg.Weights) > 0 || cfg.Admission != nil,
		tstats:      make(map[int]*mpc.TenantStreamStats),
	}
	if rp, ok := p.(interface {
		rawApply([]Op) (Results, MixedStats)
	}); ok {
		ing.raw = rp.rawApply
	} else {
		ing.raw = p.Apply
	}
	budget := 0
	if cl := p.Cluster(); cl != nil {
		budget = cl.MemWords()
	}
	if len(cfg.Weights) > 0 {
		ing.adm = sched.NewAdmitterFair(budget, sched.NewFair(budget, cfg.Weights))
	} else {
		ing.adm = sched.NewAdmitter(budget)
	}
	if admission {
		if cp, ok := p.(interface {
			streamClaims() func(graph.Op) sched.Item
		}); ok {
			ing.claims = cp.streamClaims()
		}
	}
	return ing
}

// k returns the live batch-size bound: the AutoBatcher's current K when
// one drives the flushes, else MaxBatch (0 = unbounded).
func (ing *Ingestor) k() int {
	if ing.auto != nil {
		return ing.auto.K()
	}
	return ing.maxBatch
}

// Now returns the virtual clock: the completion time (in rounds) of the
// last flush.
func (ing *Ingestor) Now() int64 { return ing.now }

// Pending returns the number of ops in the currently-forming set.
func (ing *Ingestor) Pending() int { return len(ing.forming) }

// Stats returns a snapshot of the stream accounting so far; latencies of
// ops still forming appear only after the flush that answers them. The
// per-tenant breakdown appears only on multi-tenant streams (a nonzero
// tenant tag seen, or Weights/Admission configured) — single-tenant
// accounting is bit-identical to pre-tenancy behavior.
func (ing *Ingestor) Stats() StreamStats {
	st := ing.stats
	if ing.multiTenant {
		st.Tenants = ing.tstats
	}
	return st
}

// Push feeds one arrival into the event loop. Arrivals must be pushed in
// time order (use Ingest, which consumes a heap, when the source does
// not sort); Push panics on a time regression or a closed ingestor.
func (ing *Ingestor) Push(a Arrival) {
	if ing.closed {
		panic("dmpc: Push on a closed Ingestor")
	}
	if a.At < ing.lastAt {
		panic(fmt.Sprintf("dmpc: Ingestor arrivals out of order (%d after %d)", a.At, ing.lastAt))
	}
	ing.lastAt = a.At
	if a.Op.Tenant != 0 {
		ing.multiTenant = true
	}
	// Age bound: the oldest forming op must not wait past MaxAge, so the
	// set flushed at that deadline, before this arrival's time. The
	// comparison is inclusive: an op whose age is *exactly* MaxAge at
	// this event triggers the flush, at the deadline itself (pinned by
	// TestIngestorMaxAgeBoundary).
	if len(ing.forming) > 0 && ing.maxAge > 0 && a.At >= ing.formingAt[0]+ing.maxAge {
		ing.flushAt(ing.formingAt[0]+ing.maxAge, flushAge)
	}
	// Per-tenant admission: policy-rejected ops never reach the forming
	// set, but they are surfaced — a typed Rejections record, and for
	// queries a positional Results entry with Rejected set (the age
	// flush above still ran: a rejected arrival is an event on the
	// virtual clock like any other).
	if pol := ing.admission[a.Op.Tenant]; pol != nil && !pol.Admit(a.At) {
		ing.stats.Rejected++
		ing.stats.Rejections = append(ing.stats.Rejections, mpc.Rejection{
			Index: ing.pushed, Tenant: a.Op.Tenant, At: a.At, Query: a.Op.IsQuery(),
		})
		ing.tstat(a.Op.Tenant).Rejected++
		if a.Op.IsQuery() {
			ing.place(ing.qseq, Answer{Rejected: true})
			ing.qseq++
		}
		ing.pushed++
		return
	}
	// Conflict admission: an op whose claims collide with the forming
	// set would serialize behind it inside one window anyway, so cut the
	// window now — the set's ops answer sooner and the newcomer starts a
	// fresh set. Claims are read against the post-last-flush quiescent
	// state (the FirstWave convention), so they are recomputed after a
	// conflict flush moves that state. With Weights configured the
	// admitter additionally meters each tenant's claim cost against its
	// deficit-round-robin share, so a share-exhausted tenant cuts the
	// window exactly like a conflicting one.
	if ing.claims != nil {
		if !ing.adm.Admit(ing.claims(a.Op)) {
			ing.flushAt(a.At, flushConflict)
			ing.adm.Admit(ing.claims(a.Op)) // fresh set: always admits
		}
	}
	qi := -1
	if a.Op.IsQuery() {
		qi = ing.qseq
		ing.qseq++
	}
	ing.pushed++
	ing.forming = append(ing.forming, a.Op)
	ing.formingAt = append(ing.formingAt, a.At)
	ing.formingQI = append(ing.formingQI, qi)
	if k := ing.k(); k > 0 && len(ing.forming) >= k {
		ing.flushAt(a.At, flushFull)
	}
}

// tstat returns (creating on demand) the tenant's accumulator.
func (ing *Ingestor) tstat(t int) *mpc.TenantStreamStats {
	ts := ing.tstats[t]
	if ts == nil {
		ts = &mpc.TenantStreamStats{}
		ing.tstats[t] = ts
	}
	return ts
}

// place writes a query answer at its global query index, growing the
// result slice as needed: rejected queries answer immediately while
// earlier admitted queries are still forming, so answers do not always
// land in index order even though they are all *assigned* in arrival
// order.
func (ing *Ingestor) place(qi int, a Answer) {
	for len(ing.res) <= qi {
		ing.res = append(ing.res, Answer{})
	}
	ing.res[qi] = a
}

// Ingest drains a whole arrival schedule through Push in time order (a
// min-heap orders simultaneous arrivals by input position). Call Close
// to flush the tail and collect answers and accounting.
func (ing *Ingestor) Ingest(arrivals []Arrival) {
	h := graph.NewArrivalHeap(arrivals)
	for h.Len() > 0 {
		ing.Push(h.Pop())
	}
}

// Close flushes whatever is still forming (the tail flush), stamps the
// makespan, and returns every query answer in arrival order plus the
// stream accounting. Close is idempotent; the ingestor accepts no pushes
// afterwards.
func (ing *Ingestor) Close() (Results, StreamStats) {
	if !ing.closed {
		ing.flushAt(ing.lastAt, flushTail)
		ing.stats.Makespan = ing.now
		if ing.multiTenant {
			ing.stats.Tenants = ing.tstats
		}
		ing.closed = true
	}
	return ing.res, ing.stats
}

// flushAt runs the forming set through the pipeline as one window,
// starting at the trigger time or at the previous flush's completion,
// whichever is later, and attributes each op's arrival-to-answer latency.
func (ing *Ingestor) flushAt(trigger int64, reason int) {
	if len(ing.forming) == 0 {
		return
	}
	start := trigger
	if start < ing.now {
		start = ing.now // the cluster is still busy with the previous flush
	}
	var res Results
	var st MixedStats
	if ing.auto != nil {
		res, st = ing.auto.ApplyChunk(ing.forming, reason == flushFull)
	} else {
		res, st = ing.raw(ing.forming)
	}
	end := start + int64(st.Rounds())
	ing.now = end
	for x, at := range ing.formingAt {
		lat := end - at
		ing.stats.Latencies = append(ing.stats.Latencies, lat)
		ts := ing.tstat(ing.forming[x].Tenant)
		ts.Ops++
		if ing.forming[x].IsQuery() {
			ts.Queries++
		} else {
			ts.Updates++
		}
		ts.Latencies = append(ts.Latencies, lat)
	}
	// Tenant rounds: prefer the window's own wave-share attribution;
	// windows without one (a pipeline whose core does no tenant census)
	// fall back to splitting the window total over the chunk's op counts.
	if st.Tenants != nil {
		for t, tc := range st.Tenants {
			ing.tstat(t).Rounds += tc.Rounds
		}
	} else if len(ing.forming) > 0 {
		counts := make(map[int]int, 2)
		for _, op := range ing.forming {
			counts[op.Tenant]++
		}
		for t, c := range counts {
			ing.tstat(t).Rounds += float64(st.Rounds()) * float64(c) / float64(len(ing.forming))
		}
	}
	ing.stats.Ops += st.Ops
	ing.stats.Updates += st.Updates.Updates
	ing.stats.Queries += st.Queries.Queries
	ing.stats.Rounds += st.Rounds()
	ing.stats.Flushes++
	switch reason {
	case flushConflict:
		ing.stats.FlushConflict++
	case flushFull:
		ing.stats.FlushFull++
	case flushAge:
		ing.stats.FlushAge++
	case flushTail:
		ing.stats.FlushTail++
	}
	ing.stats.Windows = append(ing.stats.Windows, st)
	j := 0
	for x := range ing.forming {
		if qi := ing.formingQI[x]; qi >= 0 {
			ing.place(qi, res[j])
			j++
		}
	}
	ing.forming = ing.forming[:0]
	ing.formingAt = ing.formingAt[:0]
	ing.formingQI = ing.formingQI[:0]
	ing.adm.Reset()
}

// Ingest is the one-call streaming entry: it builds an Ingestor over the
// pipeline, drains the arrival schedule through it, and closes it —
// Apply's counterpart for timestamped streams.
func Ingest(p Pipeline, arrivals []Arrival, cfg IngestorConfig) (Results, StreamStats) {
	cfg.Pipeline = p
	ing := NewIngestor(cfg)
	ing.Ingest(arrivals)
	return ing.Close()
}
