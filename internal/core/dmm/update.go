package dmm

import (
	"dmpc/internal/mpc"
)

// Orchestration of one update at MC, §3's insert(x,y) / delete(x,y). The
// flow is a chain of continuations, each segment costing one or two
// cluster rounds and touching O(1) machines; the H suffixes riding on the
// messages bound communication by O(√N) words per round.

func (c *coordinator) startUpdate(ctx *mpc.Ctx, m cmsg) {
	if m.A == m.B {
		c.updateDone(ctx)
		return
	}
	if m.Del {
		c.startDelete(ctx, m.A, m.B)
	} else {
		c.startInsert(ctx, m.A, m.B)
	}
}

func (c *coordinator) statsReq(ctx *mpc.Ctx, v, delta int32) {
	c.send(ctx, c.statsOf(v), cmsg{Kind: cStatsReq, V: v, DegDelta: delta})
}

// --- insert -------------------------------------------------------------

// startInsert assumes a well-formed stream (no duplicate inserts, no
// deletes of absent edges), the standard contract for dynamic algorithms;
// the degree bookkeeping on the statistics machines relies on it.
func (c *coordinator) startInsert(ctx *mpc.Ctx, x, y int32) {
	c.hAppend(hentry{op: hEdgeIns, a: x, b: y})
	c.statsReq(ctx, x, +1)
	c.statsReq(ctx, y, +1)
	c.await(ctx, 2, func(ctx *mpc.Ctx) {
		sx, sy := c.statOf(x), c.statOf(y)
		if c.threeHalves {
			// §4 edge event: the new edge contributes the endpoints'
			// pre-matching statuses to each other's counters.
			c.ctrEdgeEvent(ctx, x, y, sx.mate < 0, sy.mate < 0, true)
		}
		// Mirror records need the heaviness of the endpoints' mates.
		var need []int32
		if sx.mate >= 0 {
			need = append(need, sx.mate)
		}
		if sy.mate >= 0 && sy.mate != sx.mate {
			need = append(need, sy.mate)
		}
		for _, z := range need {
			c.statsReq(ctx, z, 0)
		}
		c.await(ctx, len(need), func(ctx *mpc.Ctx) {
			mateHeavy := map[int32]bool{}
			if sx.mate >= 0 {
				mateHeavy[sx.mate] = c.statOf(sx.mate).heavy
			}
			if sy.mate >= 0 {
				mateHeavy[sy.mate] = c.statOf(sy.mate).heavy
			}
			c.transitionUp(ctx, x, &sx, func(ctx *mpc.Ctx) {
				c.transitionUp(ctx, y, &sy, func(ctx *mpc.Ctx) {
					recX := edgeRec{other: y, matched: sy.mate >= 0, mate: sy.mate,
						heavy: sy.heavy, mateHeavy: sy.mate >= 0 && mateHeavy[sy.mate]}
					recY := edgeRec{other: x, matched: sx.mate >= 0, mate: sx.mate,
						heavy: sx.heavy, mateHeavy: sx.mate >= 0 && mateHeavy[sx.mate]}
					c.storeOne(ctx, x, &sx, recX, func(ctx *mpc.Ctx) {
						c.storeOne(ctx, y, &sy, recY, func(ctx *mpc.Ctx) {
							c.insertMatch(ctx, x, sx, y, sy)
						})
					})
				})
			})
		})
	})
}

// insertMatch applies §3's case analysis after the edge is stored.
func (c *coordinator) insertMatch(ctx *mpc.Ctx, x int32, sx stat, y int32, sy stat) {
	if c.threeHalves {
		c.insertMatch32(ctx, x, sx, y, sy)
		return
	}
	xFree, yFree := sx.mate < 0, sy.mate < 0
	switch {
	case xFree && yFree:
		c.matchPair(ctx, x, y, sx.heavy, sy.heavy)
		c.finishUpdate(ctx)
	case xFree && sx.heavy:
		c.surrogate(ctx, x, sx, func(ctx *mpc.Ctx) { c.finishUpdate(ctx) })
	case yFree && sy.heavy:
		c.surrogate(ctx, y, sy, func(ctx *mpc.Ctx) { c.finishUpdate(ctx) })
	default:
		c.finishUpdate(ctx)
	}
}

// --- delete -------------------------------------------------------------

func (c *coordinator) startDelete(ctx *mpc.Ctx, x, y int32) {
	c.hAppend(hentry{op: hEdgeDel, a: x, b: y})
	c.statsReq(ctx, x, -1)
	c.statsReq(ctx, y, -1)
	c.await(ctx, 2, func(ctx *mpc.Ctx) {
		sx, sy := c.statOf(x), c.statOf(y)
		wasMatched := sx.mate == y
		if c.threeHalves {
			// §4 edge event with pre-deletion statuses.
			c.ctrEdgeEvent(ctx, x, y, sx.mate < 0, sy.mate < 0, false)
		}
		if wasMatched {
			c.unmatchPair(ctx, x, y)
			sx.mate, sy.mate = -1, -1
		}
		c.transitionDown(ctx, x, &sx, func(ctx *mpc.Ctx) {
			c.transitionDown(ctx, y, &sy, func(ctx *mpc.Ctx) {
				if !wasMatched {
					c.finishUpdate(ctx)
					return
				}
				c.rematch(ctx, x, func(ctx *mpc.Ctx) {
					c.rematch(ctx, y, func(ctx *mpc.Ctx) {
						c.finishUpdate(ctx)
					})
				})
			})
		})
	})
}

// rematch re-reads v's authoritative stat (the x-side rematch may already
// have matched y through an augmenting steal) and restores maximality
// around v.
func (c *coordinator) rematch(ctx *mpc.Ctx, v int32, cont func(ctx *mpc.Ctx)) {
	c.statsReq(ctx, v, 0)
	c.await(ctx, 1, func(ctx *mpc.Ctx) {
		s := c.statOf(v)
		if s.mate >= 0 || s.deg == 0 {
			cont(ctx)
			return
		}
		if !s.heavy {
			c.rematchLightKnown(ctx, v, s, cont)
			return
		}
		c.surrogate(ctx, v, s, cont)
	})
}

// rematchLightKnown scans the light vertex's single home machine for a
// free neighbor.
func (c *coordinator) rematchLightKnown(ctx *mpc.Ctx, v int32, s stat, cont func(ctx *mpc.Ctx)) {
	if s.home < 0 {
		cont(ctx)
		return
	}
	c.send(ctx, s.home, cmsg{
		Kind: cScan, V: v, WantFree: true, Exclude: -1,
		H: c.suffixFor(s.home), Target: s.home,
	})
	c.await(ctx, 1, func(ctx *mpc.Ctx) {
		r := c.scanRep()
		if r.FoundFree {
			c.matchPair(ctx, v, r.FreeW, s.heavy, r.Rec.heavy)
		}
		cont(ctx)
	})
}

// surrogate restores Invariant 3.1 for a free heavy vertex v: match a free
// alive neighbor if any, otherwise steal a neighbor w whose mate z is
// light, then rematch z from its own (single-machine) adjacency. If the
// alive window offers neither, the suspended stack is scanned as a counted
// fallback.
func (c *coordinator) surrogate(ctx *mpc.Ctx, v int32, s stat, cont func(ctx *mpc.Ctx)) {
	machines := append([]int32{}, s.home)
	machines = append(machines, s.suspended...)
	c.surrogateScan(ctx, v, s, machines, 0, cont)
}

func (c *coordinator) surrogateScan(ctx *mpc.Ctx, v int32, s stat, machines []int32, idx int, cont func(ctx *mpc.Ctx)) {
	if idx >= len(machines) {
		cont(ctx) // v stays free; all neighbors are matched with heavy mates
		return
	}
	if idx == 1 {
		c.fallbacks++
	}
	m := machines[idx]
	if m < 0 {
		cont(ctx)
		return
	}
	c.send(ctx, m, cmsg{
		Kind: cScan, V: v, WantFree: true, WantSteal: true, Exclude: -1,
		H: c.suffixFor(m), Target: m,
	})
	c.await(ctx, 1, func(ctx *mpc.Ctx) {
		r := c.scanRep()
		switch {
		case r.FoundFree:
			c.matchPair(ctx, v, r.FreeW, s.heavy, r.Rec.heavy)
			cont(ctx)
		case r.FoundSteal:
			w, z := r.StealW, r.StealMate
			c.unmatchPair(ctx, w, z)
			c.matchPair(ctx, v, w, s.heavy, r.Rec.heavy)
			c.rematchLight(ctx, z, cont)
		default:
			c.surrogateScan(ctx, v, s, machines, idx+1, cont)
		}
	})
}

// rematchLight fetches z's stat first (the steal just freed it).
func (c *coordinator) rematchLight(ctx *mpc.Ctx, z int32, cont func(ctx *mpc.Ctx)) {
	c.statsReq(ctx, z, 0)
	c.await(ctx, 1, func(ctx *mpc.Ctx) {
		s := c.statOf(z)
		if s.mate >= 0 {
			cont(ctx)
			return
		}
		c.rematchLightKnown(ctx, z, s, cont)
	})
}

// --- transitions & storage placement ------------------------------------

// transitionUp promotes v to heavy when an insertion pushes its degree to
// the threshold: a fresh alive machine takes the first aliveCap records,
// the remainder goes to a fresh suspended machine.
func (c *coordinator) transitionUp(ctx *mpc.Ctx, v int32, s *stat, cont func(ctx *mpc.Ctx)) {
	if s.heavy || int(s.deg) < c.heavyAt {
		cont(ctx)
		return
	}
	s.heavy = true
	c.hAppend(hentry{op: hHeavyOn, a: v})
	c.setHeavy(ctx, v, true)
	if s.home < 0 {
		// Degenerate: no stored edges yet (cannot happen at threshold >= 1).
		cont(ctx)
		return
	}
	alive := c.allocate(mkExclusive, int32(c.mem))
	susp := c.allocate(mkExclusive, int32(c.mem))
	old := s.home
	c.send(ctx, old, cmsg{
		Kind: cMoveOut, V: v, Target: alive, Keep: int32(c.aliveCap), Overflow: susp,
		H: c.suffixFor(old),
	})
	// Three acks: source, alive target, overflow target.
	c.await(ctx, 3, func(ctx *mpc.Ctx) {
		kept := c.ackCount(alive)
		overflowed := c.ackCount(susp)
		s.home = alive
		s.aliveCnt = kept
		s.suspended = nil
		if overflowed > 0 {
			s.suspended = []int32{susp}
		} else {
			c.release(susp)
		}
		c.setHome(ctx, v, alive)
		c.setCnt(ctx, v, kept)
		c.setSusp(ctx, v, s.suspended)
		cont(ctx)
	})
}

// transitionDown demotes v to light when a deletion drops its degree below
// the threshold: alive and suspended records consolidate onto one shared
// light machine.
func (c *coordinator) transitionDown(ctx *mpc.Ctx, v int32, s *stat, cont func(ctx *mpc.Ctx)) {
	if !s.heavy || int(s.deg) >= c.heavyAt {
		cont(ctx)
		return
	}
	s.heavy = false
	c.hAppend(hentry{op: hHeavyOff, a: v})
	c.setHeavy(ctx, v, false)
	sources := append([]int32{}, s.home)
	sources = append(sources, s.suspended...)
	target := c.allocate(mkLight, (s.deg+2)*edgeWords)
	// A shared target may hold other vertices' records behind the history;
	// sync it now so the records arriving next round are not corrupted by
	// a later suffix replay.
	c.send(ctx, target, cmsg{Kind: cRefresh, H: c.suffixFor(target), Target: target})
	for _, src := range sources {
		c.send(ctx, src, cmsg{
			Kind: cMoveOut, V: v, Target: target, Keep: -1, Overflow: -1,
			H: c.suffixFor(src),
		})
	}
	// Each source acks, and the target acks each shipment.
	c.await(ctx, 2*len(sources), func(ctx *mpc.Ctx) {
		for _, src := range sources {
			c.release(src)
		}
		s.home = target
		s.aliveCnt = 0
		s.suspended = nil
		c.setHome(ctx, v, target)
		c.setCnt(ctx, v, 0)
		c.setSusp(ctx, v, nil)
		cont(ctx)
	})
}

// storeOne places v's copy of a new edge record, relocating v's light list
// when its home machine is full (the paper's moveEdges/toFit).
func (c *coordinator) storeOne(ctx *mpc.Ctx, v int32, s *stat, rec edgeRec, cont func(ctx *mpc.Ctx)) {
	if s.heavy {
		target := int32(-1)
		switch {
		case int(s.aliveCnt) < c.aliveCap && c.freeWords[s.home] >= edgeWords:
			target = s.home
			s.aliveCnt++
			c.setCnt(ctx, v, s.aliveCnt)
		case len(s.suspended) > 0 && c.freeWords[s.suspended[len(s.suspended)-1]] >= edgeWords:
			target = s.suspended[len(s.suspended)-1]
		default:
			target = c.allocate(mkExclusive, int32(c.mem))
			s.suspended = append(s.suspended, target)
			c.setSusp(ctx, v, s.suspended)
		}
		c.sendStore(ctx, target, v, rec)
		cont(ctx)
		return
	}
	// Light vertex.
	if s.home < 0 {
		s.home = c.allocate(mkLight, edgeWords*(s.deg+2))
		c.setHome(ctx, v, s.home)
	}
	if c.freeWords[s.home] >= edgeWords {
		c.sendStore(ctx, s.home, v, rec)
		cont(ctx)
		return
	}
	// Relocate the whole list to a machine that fits it plus the new
	// record. Sync the shared target first (see transitionDown).
	target := c.allocate(mkLight, edgeWords*(s.deg+2))
	old := s.home
	c.send(ctx, target, cmsg{Kind: cRefresh, H: c.suffixFor(target), Target: target})
	c.send(ctx, old, cmsg{
		Kind: cMoveOut, V: v, Target: target, Keep: -1, Overflow: -1,
		H: c.suffixFor(old),
	})
	c.await(ctx, 2, func(ctx *mpc.Ctx) {
		s.home = target
		c.setHome(ctx, v, target)
		c.sendStore(ctx, target, v, rec)
		cont(ctx)
	})
}
