package dmm

import "dmpc/internal/mpc"

// statsMachine holds the authoritative per-vertex statistics for a
// contiguous id range (the paper's O(n/√N) statistics machines).
type statsMachine struct {
	id           int
	per          int
	stats        map[int32]*stat
	queryResults map[int64]int32 // mate answers, gathered driver-side
}

func newStatsMachine(id, per int) *statsMachine {
	return &statsMachine{
		id: id, per: per,
		stats:        make(map[int32]*stat),
		queryResults: make(map[int64]int32),
	}
}

func (s *statsMachine) MemWords() int {
	w := 2 * len(s.queryResults)
	for _, st := range s.stats {
		w += 6 + len(st.suspended)
	}
	return w
}

func (s *statsMachine) get(v int32) *stat {
	st, ok := s.stats[v]
	if !ok {
		st = &stat{mate: -1, home: -1}
		s.stats[v] = st
	}
	return st
}

// peek returns a copy of v's scalar stat fields without allocating
// authoritative state for a never-touched vertex — the read the
// driver-side batch scheduler and the MateTable oracle use. The suspended
// list is withheld (nil) rather than copied: no peek caller reads it, and
// handing out the live slice would alias machine state.
func (s *statsMachine) peek(v int32) stat {
	if st, ok := s.stats[v]; ok {
		cp := *st
		cp.suspended = nil
		return cp
	}
	return stat{mate: -1, home: -1}
}

func (s *statsMachine) HandleRound(ctx *mpc.Ctx, inbox []mpc.Message) {
	for _, raw := range inbox {
		m, ok := raw.Payload.(cmsg)
		if !ok {
			continue
		}
		switch m.Kind {
		case cStatsReq:
			st := s.get(m.V)
			st.deg += m.DegDelta
			cp := *st
			cp.suspended = append([]int32(nil), st.suspended...)
			ctx.Send(0, cmsg{Kind: cStatsRep, Seq: m.Seq, V: m.V, St: cp}, 8+len(cp.suspended))
		case cStatsSet:
			st := s.get(m.V)
			if m.SetMate {
				st.mate = m.Mate
			}
			if m.SetHeavy {
				st.heavy = m.Heavy
			}
			if m.SetHome {
				st.home = m.Home
			}
			if m.SetCnt {
				st.aliveCnt = m.Cnt
			}
			if m.SetSusp {
				st.suspended = append([]int32(nil), m.Susp...)
			}
		case cCtrAdd:
			for i, v := range m.Vs {
				s.get(v).freeNbr += m.Ds[i]
			}
		case cMateQuery:
			// Plain lookup: a read must not allocate authoritative state
			// for a never-touched vertex (free vertices report -1 anyway).
			mate := int32(-1)
			if st, ok := s.stats[m.V]; ok {
				mate = st.mate
			}
			s.queryResults[m.Seq] = mate
		case cCtrGet:
			reply := cmsg{Kind: cCtrRep, Seq: m.Seq, Vs: append([]int32(nil), m.Vs...)}
			reply.Ds = make([]int32, len(m.Vs))
			for i, v := range m.Vs {
				reply.Ds[i] = s.get(v).freeNbr
			}
			ctx.Send(0, reply, 2+2*len(m.Vs))
		}
	}
}

// storeMachine holds adjacency records, keyed by owning vertex. It applies
// H suffixes before acting and reports reclaimed space on every reply.
type storeMachine struct {
	id    int
	edges map[int32][]edgeRec
}

func newStoreMachine(id int) *storeMachine {
	return &storeMachine{id: id, edges: make(map[int32][]edgeRec)}
}

func (s *storeMachine) MemWords() int {
	w := 0
	for _, recs := range s.edges {
		w += edgeWords * len(recs)
	}
	return w
}

// applyH replays an update-history suffix onto the local records,
// returning the number of words reclaimed by lazy deletions.
func (s *storeMachine) applyH(h []hentry) int32 {
	var freed int32
	for _, e := range h {
		switch e.op {
		case hEdgeDel:
			freed += s.removeRec(e.a, e.b)
			freed += s.removeRec(e.b, e.a)
		case hMatched:
			s.eachRec(e.a, func(r *edgeRec) { r.matched, r.mate, r.mateHeavy = true, e.b, e.bh })
			s.eachRec(e.b, func(r *edgeRec) { r.matched, r.mate, r.mateHeavy = true, e.a, e.ah })
		case hUnmatched:
			s.eachRec(e.a, func(r *edgeRec) { r.matched, r.mate, r.mateHeavy = false, -1, false })
			s.eachRec(e.b, func(r *edgeRec) { r.matched, r.mate, r.mateHeavy = false, -1, false })
		case hHeavyOn, hHeavyOff:
			on := e.op == hHeavyOn
			s.eachRec(e.a, func(r *edgeRec) { r.heavy = on })
			s.eachMate(e.a, func(r *edgeRec) { r.mateHeavy = on })
		}
	}
	return freed
}

// eachRec visits every record whose other endpoint is v.
func (s *storeMachine) eachRec(v int32, f func(*edgeRec)) {
	for _, recs := range s.edges {
		for i := range recs {
			if recs[i].other == v {
				f(&recs[i])
			}
		}
	}
}

// eachMate visits every record whose mirrored mate is v.
func (s *storeMachine) eachMate(v int32, f func(*edgeRec)) {
	for _, recs := range s.edges {
		for i := range recs {
			if recs[i].matched && recs[i].mate == v {
				f(&recs[i])
			}
		}
	}
}

func (s *storeMachine) removeRec(v, other int32) int32 {
	recs := s.edges[v]
	for i := range recs {
		if recs[i].other == other {
			recs[i] = recs[len(recs)-1]
			s.edges[v] = recs[:len(recs)-1]
			if len(s.edges[v]) == 0 {
				delete(s.edges, v)
			}
			return edgeWords
		}
	}
	return 0
}

func (s *storeMachine) HandleRound(ctx *mpc.Ctx, inbox []mpc.Message) {
	for _, raw := range inbox {
		m, ok := raw.Payload.(cmsg)
		if !ok {
			continue
		}
		switch m.Kind {
		case cStore:
			freed := s.applyH(m.H)
			s.edges[m.V] = append(s.edges[m.V], m.Rec)
			if freed > 0 {
				ctx.Send(0, cmsg{Kind: cAck, Seq: -1, Target: int32(s.id), Freed: freed}, 4)
			}
		case cRefresh:
			freed := s.applyH(m.H)
			ctx.Send(0, cmsg{Kind: cAck, Seq: -1, Target: int32(s.id), Freed: freed}, 4)
		case cScan:
			freed := s.applyH(m.H)
			reply := cmsg{Kind: cScanRep, Seq: m.Seq, V: m.V, Target: int32(s.id), Freed: freed}
			for _, r := range s.edges[m.V] {
				if m.WantFree && !r.matched && r.other != m.Exclude {
					reply.FoundFree, reply.FreeW, reply.Rec = true, r.other, r
					break
				}
				if m.WantSteal && !reply.FoundSteal && r.matched && !r.mateHeavy {
					reply.FoundSteal, reply.StealW, reply.StealMate = true, r.other, r.mate
					reply.Rec = r
				}
			}
			if reply.FoundFree {
				reply.FoundSteal = false
			}
			ctx.Send(0, reply, 12)
		case cList:
			freed := s.applyH(m.H)
			recs := append([]edgeRec(nil), s.edges[m.V]...)
			ctx.Send(0, cmsg{
				Kind: cListRep, Seq: m.Seq, V: m.V, Target: int32(s.id),
				Freed: freed, Recs: recs,
			}, 4+edgeWords*len(recs))
		case cMoveOut:
			freed := s.applyH(m.H)
			recs := s.edges[m.V]
			delete(s.edges, m.V)
			freed += int32(len(recs) * edgeWords)
			ctx.Send(int(m.Target), cmsg{
				Kind: cMoveIn, Seq: m.Seq, V: m.V, Recs: recs, Keep: m.Keep, Overflow: m.Overflow,
			}, 2+edgeWords*len(recs))
			ctx.Send(0, cmsg{Kind: cAck, Seq: m.Seq, Target: int32(s.id), Freed: freed}, 4)
		case cMoveIn:
			recs := m.Recs
			kept := recs
			if m.Keep >= 0 && int(m.Keep) < len(recs) {
				kept = recs[:m.Keep]
			}
			s.edges[m.V] = append(s.edges[m.V], kept...)
			ctx.Send(0, cmsg{
				Kind: cAck, Seq: m.Seq, Target: int32(s.id),
				Used: int32(len(kept) * edgeWords), Count: int32(len(kept)),
			}, 5)
			if m.Overflow >= 0 {
				rest := recs[len(kept):]
				ctx.Send(int(m.Overflow), cmsg{
					Kind: cMoveIn, Seq: m.Seq, V: m.V, Recs: rest, Keep: -1, Overflow: -1,
				}, 2+edgeWords*len(rest))
			}
		}
	}
}
