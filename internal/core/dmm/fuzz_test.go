package dmm

import (
	"testing"

	"dmpc/internal/graph"
)

// FuzzBatchEquivalence is the property-based equivalence harness for the §3
// batch pipeline: any update sequence, any chunking, and the coordinator-
// chained batch must produce the exact matching of sequential replay (dmm's
// case analysis is deterministic, so equality is edge-for-edge). The raw
// bytes decode through graph.FuzzStreamWellFormed: dmm's degree bookkeeping
// assumes the standard well-formed stream contract (no duplicate inserts,
// no deletes of absent edges — see the startInsert comment), so the decoder
// enforces it while redirecting bogus deletes onto present edges to keep
// delete coverage high.
//
// Run the full fuzzer with:
//
//	go test -run FuzzBatchEquivalence -fuzz FuzzBatchEquivalence ./internal/core/dmm
func FuzzBatchEquivalence(f *testing.F) {
	f.Add(byte(1), []byte("abcabdacd"))
	f.Add(byte(5), []byte("0120340516273809"))
	f.Add(byte(32), []byte("ABCABDABEACD!bcd!ace02460135"))
	f.Fuzz(func(t *testing.T, sel byte, data []byte) {
		const n = 20
		if len(data) > 300 { // 100 updates keeps a fuzz iteration fast
			data = data[:300]
		}
		stream := graph.FuzzStreamWellFormed(data, n, 1)
		if len(stream) == 0 {
			t.Skip()
		}
		k := 1 + int(sel)%len(stream)

		// CapEdges must absorb any prefix of distinct concurrent edges the
		// decoded stream can build (at most one per update).
		capEdges := len(stream)
		seqM := New(Config{N: n, CapEdges: capEdges})
		g := graph.New(n)
		for _, up := range stream {
			if up.Op == graph.Insert {
				seqM.Insert(up.U, up.V)
			} else {
				seqM.Delete(up.U, up.V)
			}
		}
		batM := New(Config{N: n, CapEdges: capEdges})
		for _, b := range graph.Chunk(stream, k) {
			st := batM.ApplyBatch(b)
			if st.Updates != len(b) {
				t.Fatalf("batch stats cover %d updates, batch has %d", st.Updates, len(b))
			}
			b.Apply(g)
		}

		want, got := seqM.MateTable(), batM.MateTable()
		for v := range want {
			if want[v] != got[v] {
				t.Fatalf("k=%d: mate of %d differs: %d vs %d", k, v, got[v], want[v])
			}
		}
		if !graph.IsMaximalMatching(g, got) {
			t.Fatalf("k=%d: batched matching not maximal over the final graph", k)
		}
		if err := batM.Validate(g); err != nil {
			t.Fatalf("k=%d: invariants broken after batches: %v", k, err)
		}
		if v := batM.Cluster().Stats().Violations; v != 0 {
			t.Fatalf("k=%d: %d cluster constraint violations", k, v)
		}
	})
}
