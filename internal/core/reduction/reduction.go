// Package reduction implements §7 of the paper: the black-box simulation
// of a centralized dynamic algorithm in the DMPC model. The sequential
// algorithm's memory is sharded over the cluster's machines; machine 0
// (the compute machine, the paper's M_MRA) performs the algorithm's local
// work, and every elementary memory operation becomes one request/response
// exchange — O(1) rounds, O(1) active machines and O(1) communicated words
// per operation, so an update with sequential time u(N) runs in O(u(N))
// rounds (Lemma 7.1). The amortized/worst-case and deterministic/
// randomized character of the plugged algorithm carries over unchanged.
//
// Two plug-in styles are provided:
//
//   - StoreUnionFind is written directly against the sharded Store, so its
//     address traffic is the real pointer-chasing of union-find; and
//   - Wrap adapts any seqdyn structure via its operation counter: the
//     update executes on the compute machine and the counted elementary
//     operations are replayed as memory exchanges with addresses derived
//     from the operation index. The round/machine/word accounting is
//     exact; only the address distribution is synthetic (recorded in
//     DESIGN.md).
package reduction

import (
	"fmt"

	"dmpc/internal/graph"
	"dmpc/internal/mpc"
	"dmpc/internal/seqdyn"
)

// Store is word-addressed memory; addresses are sharded over bank
// machines.
type Store interface {
	Read(addr int) int64
	Write(addr int, val int64)
}

// bank holds a shard of the address space.
type bank struct {
	words map[int]int64
}

func (b *bank) MemWords() int { return 2 * len(b.words) }

type memMsg struct {
	write bool
	addr  int
	val   int64
	reply bool
}

func (b *bank) HandleRound(ctx *mpc.Ctx, inbox []mpc.Message) {
	for _, raw := range inbox {
		m, ok := raw.Payload.(memMsg)
		if !ok || m.reply {
			continue
		}
		if m.write {
			b.words[m.addr] = m.val
			continue
		}
		ctx.Send(0, memMsg{reply: true, addr: m.addr, val: b.words[m.addr]}, 3)
	}
}

// compute is machine 0; it only relays the driver's memory traffic (the
// sequential algorithm's local work happens "on" it, which the MPC model
// does not charge).
type compute struct {
	lastVal  int64
	lastAddr int
	got      bool
}

func (c *compute) HandleRound(ctx *mpc.Ctx, inbox []mpc.Message) {
	for _, raw := range inbox {
		if m, ok := raw.Payload.(memMsg); ok && m.reply {
			c.lastVal, c.lastAddr, c.got = m.val, m.addr, true
		}
	}
}

// Sim is a DMPC cluster configured as the §7 simulation substrate.
type Sim struct {
	cluster *mpc.Cluster
	comp    *compute
	banks   int
}

// NewSim builds a simulation cluster: one compute machine plus banks
// memory machines, each with memWords capacity (0 = 4096).
func NewSim(banks, memWords int) *Sim {
	if banks < 1 {
		banks = 1
	}
	if memWords <= 0 {
		memWords = 4096
	}
	cl := mpc.NewCluster(mpc.Config{Machines: banks + 1, MemWords: memWords})
	s := &Sim{cluster: cl, comp: &compute{}, banks: banks}
	cl.SetMachine(0, s.comp)
	for i := 1; i <= banks; i++ {
		cl.SetMachine(i, &bank{words: make(map[int]int64)})
	}
	return s
}

// Cluster exposes the accounting.
func (s *Sim) Cluster() *mpc.Cluster { return s.cluster }

func (s *Sim) bankOf(addr int) int { return 1 + addr%s.banks }

// Read routes one word read through the cluster: request round + reply
// round, two active machines, O(1) words.
func (s *Sim) Read(addr int) int64 {
	s.comp.got = false
	s.cluster.Send(mpc.Message{From: 0, To: s.bankOf(addr), Payload: memMsg{addr: addr}, Words: 2})
	s.cluster.Round()
	s.cluster.Round()
	if !s.comp.got {
		panic(fmt.Sprintf("reduction: read of %d got no reply", addr))
	}
	return s.comp.lastVal
}

// Write routes one word write through the cluster (one round).
func (s *Sim) Write(addr int, val int64) {
	s.cluster.Send(mpc.Message{From: 0, To: s.bankOf(addr), Payload: memMsg{write: true, addr: addr, val: val}, Words: 3})
	s.cluster.Round()
}

// BeginUpdate / EndUpdate bracket per-update accounting.
func (s *Sim) BeginUpdate()               { s.cluster.BeginUpdate() }
func (s *Sim) EndUpdate() mpc.UpdateStats { return s.cluster.EndUpdate() }

// ReplayOps simulates k counted elementary operations as read exchanges
// with addresses derived from the operation index.
func (s *Sim) ReplayOps(k int64, salt int64) {
	for i := int64(0); i < k; i++ {
		addr := int((i*2654435761 + salt) & 0xffff)
		s.Write(addr, i)
	}
}

// Target is a sequential dynamic algorithm wrapped for the reduction.
type Target interface {
	Apply(up graph.Update)
	OpCounter() *seqdyn.Counter
}

// Wrapped couples a Target with a Sim; each Update runs the sequential
// algorithm and replays its operation count through the cluster.
type Wrapped struct {
	Sim    *Sim
	Target Target
	salt   int64
}

// NewWrapped builds the standard wrapper.
func NewWrapped(sim *Sim, t Target) *Wrapped { return &Wrapped{Sim: sim, Target: t} }

// Update performs one dynamic update under §7 accounting and returns the
// update's statistics: Rounds = Θ(sequential operations).
func (w *Wrapped) Update(up graph.Update) mpc.UpdateStats {
	w.Sim.BeginUpdate()
	before := w.Target.OpCounter().Count()
	w.Target.Apply(up)
	ops := w.Target.OpCounter().Count() - before
	w.salt++
	w.Sim.ReplayOps(ops, w.salt)
	return w.Sim.EndUpdate()
}

// ApplyBatch replays the batch sequentially inside one shared batch
// window. The §7 simulation is inherently serial — every elementary memory
// operation of the wrapped algorithm is its own request/response exchange
// at the compute machine — so a batch of k updates costs the sum of the
// individual O(u(N))-round costs and the amortized rounds per update do
// not drop with k; batching only unifies the accounting, matching the
// reduction's O(u(N))-rounds-per-update guarantee (Lemma 7.1). Per-update
// statistics keep accumulating inside the batch window.
func (w *Wrapped) ApplyBatch(batch graph.Batch) mpc.BatchStats {
	w.Sim.Cluster().BeginBatch(len(batch))
	for _, up := range batch {
		w.Update(up)
	}
	return w.Sim.Cluster().EndBatch()
}

// --- ready-made targets ---------------------------------------------------

// HDTTarget plugs Holm–de Lichtenberg–Thorup connectivity (the paper's
// Table 1 "Connected comps, Õ(1) amortized" row).
type HDTTarget struct{ H *seqdyn.HDT }

// Apply implements Target.
func (t HDTTarget) Apply(up graph.Update) {
	if up.Op == graph.Insert {
		t.H.Insert(up.U, up.V)
	} else {
		t.H.Delete(up.U, up.V)
	}
}

// OpCounter implements Target.
func (t HDTTarget) OpCounter() *seqdyn.Counter { return &t.H.Ops }

// NSMatchTarget plugs the Neiman–Solomon-style maximal matching (the
// "Maximal matching, O(1) amortized" row; we substitute the deterministic
// O(√m) worst-case algorithm, see DESIGN.md).
type NSMatchTarget struct{ M *seqdyn.NSMatch }

// Apply implements Target.
func (t NSMatchTarget) Apply(up graph.Update) {
	if up.Op == graph.Insert {
		t.M.Insert(up.U, up.V)
	} else {
		t.M.Delete(up.U, up.V)
	}
}

// OpCounter implements Target.
func (t NSMatchTarget) OpCounter() *seqdyn.Counter { return &t.M.Ops }

// MSFTarget plugs the dynamic minimum spanning forest (the "MST, Õ(1)
// amortized" row).
type MSFTarget struct{ F *seqdyn.DynMSF }

// Apply implements Target.
func (t MSFTarget) Apply(up graph.Update) {
	if up.Op == graph.Insert {
		t.F.Insert(up.U, up.V, up.W)
	} else {
		t.F.Delete(up.U, up.V)
	}
}

// OpCounter implements Target.
func (t MSFTarget) OpCounter() *seqdyn.Counter { return &t.F.Ops }

// --- union-find over the real store ---------------------------------------

// StoreUnionFind is incremental connectivity written directly against the
// sharded Store: its DMPC round pattern is the genuine address trace of
// union-find with path halving, not a replay.
type StoreUnionFind struct {
	sim *Sim
	n   int
}

// NewStoreUnionFind initializes parent[i] = i in distributed memory.
func NewStoreUnionFind(sim *Sim, n int) *StoreUnionFind {
	u := &StoreUnionFind{sim: sim, n: n}
	for i := 0; i < n; i++ {
		sim.Write(i, int64(i))
	}
	return u
}

func (u *StoreUnionFind) find(x int) int {
	for {
		p := u.sim.Read(x)
		if int(p) == x {
			return x
		}
		gp := u.sim.Read(int(p))
		if gp != p {
			u.sim.Write(x, gp) // path halving
		}
		x = int(gp)
	}
}

// Union merges the sets containing a and b.
func (u *StoreUnionFind) Union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if ra < rb {
		u.sim.Write(rb, int64(ra))
	} else {
		u.sim.Write(ra, int64(rb))
	}
}

// Connected answers a connectivity query through distributed memory.
func (u *StoreUnionFind) Connected(a, b int) bool { return u.find(a) == u.find(b) }
