package seqdyn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dmpc/internal/graph"
)

func TestUnionFindBasic(t *testing.T) {
	uf := NewUnionFind(6)
	if uf.Components() != 6 {
		t.Fatal("should start with 6 components")
	}
	if !uf.Union(0, 1) || !uf.Union(1, 2) {
		t.Fatal("unions should succeed")
	}
	if uf.Union(0, 2) {
		t.Fatal("redundant union should report false")
	}
	if !uf.Connected(0, 2) || uf.Connected(0, 3) {
		t.Fatal("connectivity wrong")
	}
	if uf.Components() != 4 {
		t.Fatalf("components = %d", uf.Components())
	}
	if uf.Ops.Count() == 0 {
		t.Fatal("ops should be counted")
	}
}

func TestUnionFindQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20
		uf := NewUnionFind(n)
		g := graph.New(n)
		for i := 0; i < 30; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			g.Insert(u, v, 1)
			uf.Union(u, v)
		}
		comp := graph.Components(g)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if (comp[u] == comp[v]) != uf.Connected(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// replayETT drives an ETT and a DSU-recomputed oracle through random
// link/cut operations.
func TestETTLinkCutRandom(t *testing.T) {
	const n = 30
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ett := NewETT(nil)
		type e struct{ u, v int }
		var edges []e
		for step := 0; step < 400; step++ {
			if len(edges) == 0 || rng.Intn(2) == 0 {
				u, v := rng.Intn(n), rng.Intn(n)
				if u == v || ett.Connected(u, v) {
					continue
				}
				ett.Link(u, v)
				edges = append(edges, e{u, v})
			} else {
				i := rng.Intn(len(edges))
				x := edges[i]
				edges[i] = edges[len(edges)-1]
				edges = edges[:len(edges)-1]
				ett.Cut(x.u, x.v)
			}
			// Oracle.
			g := graph.New(n)
			for _, x := range edges {
				g.Insert(x.u, x.v, 1)
			}
			comp := graph.Components(g)
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					if (comp[u] == comp[v]) != ett.Connected(u, v) {
						t.Fatalf("seed %d step %d: connectivity mismatch (%d,%d)", seed, step, u, v)
					}
				}
			}
			// Tree sizes must match component sizes.
			sizes := map[int]int{}
			for v := 0; v < n; v++ {
				sizes[comp[v]]++
			}
			for v := 0; v < n; v++ {
				if ett.TreeSize(v) != sizes[comp[v]] {
					t.Fatalf("seed %d step %d: tree size of %d = %d, want %d",
						seed, step, v, ett.TreeSize(v), sizes[comp[v]])
				}
			}
		}
	}
}

func TestETTTourVertices(t *testing.T) {
	ett := NewETT(nil)
	ett.Link(0, 1)
	ett.Link(1, 2)
	ett.Link(2, 3)
	vs := ett.TourVertices(0)
	if len(vs) != 4 {
		t.Fatalf("tour vertices = %v", vs)
	}
	seen := map[int]bool{}
	for _, v := range vs {
		seen[v] = true
	}
	for v := 0; v < 4; v++ {
		if !seen[v] {
			t.Fatalf("vertex %d missing from tour", v)
		}
	}
}

func TestETTFlags(t *testing.T) {
	ett := NewETT(nil)
	ett.Link(0, 1)
	ett.Link(1, 2)
	if _, _, ok := ett.FindEdgeFlag(0); ok {
		t.Fatal("no flags set yet")
	}
	ett.SetEdgeFlag(0, 1, true)
	a, b, ok := ett.FindEdgeFlag(2)
	if !ok || a != 0 || b != 1 {
		t.Fatalf("found edge (%d,%d,%v)", a, b, ok)
	}
	ett.SetEdgeFlag(0, 1, false)
	if _, _, ok := ett.FindEdgeFlag(2); ok {
		t.Fatal("flag should be cleared")
	}
	ett.SetVertexFlag(2, true)
	v, ok := ett.FindVertexFlag(0)
	if !ok || v != 2 {
		t.Fatalf("found vertex %d,%v", v, ok)
	}
	// Flags survive links and cuts.
	ett.Link(2, 3)
	if v, ok := ett.FindVertexFlag(3); !ok || v != 2 {
		t.Fatalf("flag lost after link: %d,%v", v, ok)
	}
	ett.Cut(1, 2)
	if _, ok := ett.FindVertexFlag(0); ok {
		t.Fatal("flag should be in the other tree now")
	}
	if v, ok := ett.FindVertexFlag(3); !ok || v != 2 {
		t.Fatalf("flag missing in detached tree: %d,%v", v, ok)
	}
}

func TestETTCutPanicsOnNonEdge(t *testing.T) {
	ett := NewETT(nil)
	ett.Link(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ett.Cut(0, 2)
}

func TestHDTAgainstOracle(t *testing.T) {
	const n = 40
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := NewHDT(n)
		g := graph.New(n)
		updates := graph.RandomStream(n, 500, 0.55, 1, rng)
		for step, u := range updates {
			if u.Op == graph.Insert {
				h.Insert(u.U, u.V)
			} else {
				h.Delete(u.U, u.V)
			}
			g.Apply(u)
			if step%10 == 0 || step > 450 {
				comp := graph.Components(g)
				for a := 0; a < n; a += 3 {
					for b := a + 1; b < n; b += 2 {
						if (comp[a] == comp[b]) != h.Connected(a, b) {
							t.Fatalf("seed %d step %d: connectivity (%d,%d) mismatch", seed, step, a, b)
						}
					}
				}
				if h.Components() != graph.NumComponents(g) {
					t.Fatalf("seed %d step %d: components %d want %d",
						seed, step, h.Components(), graph.NumComponents(g))
				}
				if err := h.CheckInvariants(); err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
			}
		}
	}
}

func TestHDTTreeEdgeDeletionStress(t *testing.T) {
	// Build a path (every edge is a tree edge), add chords, then delete
	// path edges to force replacement searches.
	const n = 64
	h := NewHDT(n)
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		h.Insert(i, i+1)
		g.Insert(i, i+1, 1)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 40; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && g.Insert(u, v, 1) {
			h.Insert(u, v)
		}
	}
	for i := 0; i+1 < n; i += 2 {
		h.Delete(i, i+1)
		g.Delete(i, i+1)
		comp := graph.Components(g)
		for a := 0; a < n; a += 5 {
			for b := a + 1; b < n; b += 3 {
				if (comp[a] == comp[b]) != h.Connected(a, b) {
					t.Fatalf("after deleting (%d,%d): mismatch at (%d,%d)", i, i+1, a, b)
				}
			}
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHDTDuplicateAndUnknown(t *testing.T) {
	h := NewHDT(4)
	h.Insert(0, 1)
	h.Insert(0, 1) // duplicate
	h.Insert(2, 2) // self-loop
	h.Delete(1, 3) // unknown
	if !h.Connected(0, 1) || h.Connected(0, 2) {
		t.Fatal("connectivity wrong")
	}
	h.Delete(0, 1)
	if h.Connected(0, 1) {
		t.Fatal("edge should be gone")
	}
}

func TestLCTPathMax(t *testing.T) {
	// Path 0-1-2-3 with edge nodes valued 5, 9, 3.
	lct := NewLCT(4, nil)
	weights := []int64{5, 9, 3}
	ids := make([]int, 3)
	for i, w := range weights {
		id := lct.AddNode(w)
		ids[i] = id
		lct.Link(i, id)
		lct.Link(id, i+1)
	}
	node, val := lct.PathMax(0, 3)
	if val != 9 || node != ids[1] {
		t.Fatalf("path max = node %d val %d", node, val)
	}
	node, val = lct.PathMax(2, 3)
	if val != 3 || node != ids[2] {
		t.Fatalf("path max(2,3) = node %d val %d", node, val)
	}
	// Cut the middle edge; 0 and 3 disconnect.
	lct.Cut(1, ids[1])
	lct.Cut(ids[1], 2)
	if lct.Connected(0, 3) {
		t.Fatal("should be disconnected")
	}
	if !lct.Connected(0, 1) || !lct.Connected(2, 3) {
		t.Fatal("halves should remain connected")
	}
}

func TestLCTRandomAgainstBruteForce(t *testing.T) {
	const n = 20
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed + 77))
		lct := NewLCT(n, nil)
		g := graph.New(n)
		type rec struct {
			u, v int
			id   int
			w    int64
		}
		var edges []rec
		for step := 0; step < 250; step++ {
			if len(edges) == 0 || rng.Intn(3) > 0 {
				u, v := rng.Intn(n), rng.Intn(n)
				if u == v || lct.Connected(u, v) {
					continue
				}
				w := int64(rng.Intn(100))
				id := lct.AddNode(w)
				lct.Link(u, id)
				lct.Link(id, v)
				g.Insert(u, v, graph.Weight(w))
				edges = append(edges, rec{u, v, id, w})
			} else {
				i := rng.Intn(len(edges))
				e := edges[i]
				edges[i] = edges[len(edges)-1]
				edges = edges[:len(edges)-1]
				lct.Cut(e.u, e.id)
				lct.Cut(e.id, e.v)
				g.Delete(e.u, e.v)
			}
			// Check connectivity and path maxima against BFS.
			comp := graph.Components(g)
			for a := 0; a < n; a++ {
				for b := a + 1; b < n; b++ {
					want := comp[a] == comp[b]
					if lct.Connected(a, b) != want {
						t.Fatalf("seed %d step %d: connectivity (%d,%d)", seed, step, a, b)
					}
					if want && a != b {
						_, got := lct.PathMax(a, b)
						if brute := brutePathMax(g, a, b); got != brute {
							t.Fatalf("seed %d step %d: pathmax(%d,%d) = %d want %d",
								seed, step, a, b, got, brute)
						}
					}
				}
			}
		}
	}
}

// brutePathMax finds the maximum edge weight on the unique tree path a..b.
func brutePathMax(g *graph.Graph, a, b int) int64 {
	type st struct {
		v   int
		max int64
	}
	prev := make(map[int]int)
	prev[a] = a
	stack := []st{{a, negInf}}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur.v == b {
			return cur.max
		}
		g.EachNeighbor(cur.v, func(w int, wt graph.Weight) bool {
			if _, ok := prev[w]; !ok {
				prev[w] = cur.v
				m := cur.max
				if int64(wt) > m {
					m = int64(wt)
				}
				stack = append(stack, st{w, m})
			}
			return true
		})
	}
	return negInf
}

func TestDynMSFAgainstKruskal(t *testing.T) {
	const n = 26
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed + 5))
		msf := NewDynMSF(n)
		g := graph.New(n)
		updates := graph.RandomStream(n, 350, 0.6, 50, rng)
		for step, u := range updates {
			if u.Op == graph.Insert {
				msf.Insert(u.U, u.V, u.W)
			} else {
				msf.Delete(u.U, u.V)
			}
			g.Apply(u)
			if msf.Weight() != graph.MSFWeight(g) {
				t.Fatalf("seed %d step %d (%v): MSF weight %d, Kruskal %d",
					seed, step, u, msf.Weight(), graph.MSFWeight(g))
			}
			if err := msf.CheckInvariants(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			var plain []graph.Edge
			for _, e := range msf.ForestEdges() {
				plain = append(plain, e)
			}
			if !graph.IsSpanningForest(g, plain) {
				t.Fatalf("seed %d step %d: not a spanning forest", seed, step)
			}
		}
	}
}

func TestNSMatchMaximality(t *testing.T) {
	const n = 30
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := NewNSMatch(n, 200)
		g := graph.New(n)
		updates := graph.RandomStream(n, 400, 0.6, 1, rng)
		for step, u := range updates {
			if u.Op == graph.Insert {
				m.Insert(u.U, u.V)
			} else {
				m.Delete(u.U, u.V)
			}
			g.Apply(u)
			mt := m.MateTable()
			if !graph.IsMatching(g, mt) {
				t.Fatalf("seed %d step %d: invalid matching", seed, step)
			}
			if !graph.IsMaximalMatching(g, mt) {
				t.Fatalf("seed %d step %d (%v): matching not maximal", seed, step, u)
			}
		}
	}
}

func TestNSMatchStarStress(t *testing.T) {
	// Hub with many leaves: hub is heavy; deleting its matched edge forces
	// the heavy rematch path repeatedly.
	const leaves = 50
	m := NewNSMatch(leaves+1, leaves+10)
	g := graph.New(leaves + 1)
	for i := 1; i <= leaves; i++ {
		m.Insert(0, i)
		g.Insert(0, i, 1)
	}
	for round := 0; round < 20; round++ {
		mate := m.Mate(0)
		if mate == -1 {
			t.Fatal("hub should be matched (it has free neighbors)")
		}
		m.Delete(0, mate)
		g.Delete(0, mate)
		if !graph.IsMaximalMatching(g, m.MateTable()) {
			t.Fatalf("round %d: not maximal", round)
		}
	}
}

func TestNSMatchApproximationFactor(t *testing.T) {
	// A maximal matching is a 2-approximation of maximum.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16
		m := NewNSMatch(n, 60)
		g := graph.New(n)
		for _, u := range graph.RandomStream(n, 120, 0.7, 1, rng) {
			if u.Op == graph.Insert {
				m.Insert(u.U, u.V)
			} else {
				m.Delete(u.U, u.V)
			}
			g.Apply(u)
		}
		size := graph.MatchingSize(m.MateTable())
		return 2*size >= graph.MaxMatchingSize(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterResetAndCount(t *testing.T) {
	var c Counter
	c.Inc(3)
	c.Inc(4)
	if c.Count() != 7 {
		t.Fatalf("count = %d", c.Count())
	}
	if c.Reset() != 7 || c.Count() != 0 {
		t.Fatal("reset wrong")
	}
}

func TestLCTLinkPanicsOnCycle(t *testing.T) {
	lct := NewLCT(3, nil)
	lct.Link(0, 1)
	lct.Link(1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on cycle-creating link")
		}
	}()
	lct.Link(2, 0)
}

func TestLCTCutPanicsOnNonAdjacent(t *testing.T) {
	lct := NewLCT(4, nil)
	lct.Link(0, 1)
	lct.Link(1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-adjacent cut")
		}
	}()
	lct.Cut(0, 2)
}

func TestNSMatchFallbacksStayZeroAtScale(t *testing.T) {
	// With the paper's parameters the counting argument guarantees a
	// light-mated surrogate; at a healthy capacity the fallback path
	// should essentially never fire.
	rng := rand.New(rand.NewSource(23))
	m := NewNSMatch(60, 500)
	for _, u := range graph.RandomStream(60, 1500, 0.55, 1, rng) {
		if u.Op == graph.Insert {
			m.Insert(u.U, u.V)
		} else {
			m.Delete(u.U, u.V)
		}
	}
	if m.Fallbacks() > 40 {
		t.Fatalf("fallbacks = %d over 1500 updates", m.Fallbacks())
	}
}
