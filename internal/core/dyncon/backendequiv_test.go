package dyncon

import (
	"testing"

	"dmpc/internal/mpc"
)

// parallelConfig retargets a fuzz config at the goroutine-per-machine
// backend with a worker count small enough to force sharding, so corpus
// replay (and CI's -race replay) exercises the channel-woken worker path
// rather than the driver-inline fast path.
func parallelConfig(cfg Config) Config {
	cfg.Backend = mpc.BackendParallel
	cfg.Workers = 3
	return cfg
}

// assertBackendEquivalent pins the backend determinism rule between a
// sim-backend instance and a parallel-backend replica that consumed the
// same chunked stream: identical forest, component labels and distributed
// invariants, and bit-identical cluster accounting.
func assertBackendEquivalent(t *testing.T, sim, par *D) {
	t.Helper()
	if err := par.Validate(); err != nil {
		t.Fatalf("parallel replica invariants: %v", err)
	}
	wf, pf := forestKey(sim), forestKey(par)
	if len(wf) != len(pf) {
		t.Fatalf("parallel replica forest size %d, sim %d", len(pf), len(wf))
	}
	for i := range wf {
		if wf[i] != pf[i] {
			t.Fatalf("parallel replica forest edge %d: %v, sim %v", i, pf[i], wf[i])
		}
	}
	for v := 0; v < sim.cfg.N; v++ {
		if sim.CompOf(v) != par.CompOf(v) {
			t.Fatalf("parallel replica component of %d: %d, sim %d", v, par.CompOf(v), sim.CompOf(v))
		}
	}
	assertSameAccounting(t, sim.Cluster(), par.Cluster())
}

// assertSameAccounting compares the accounting a backend must reproduce
// bit for bit regardless of execution strategy.
func assertSameAccounting(t *testing.T, sim, par *mpc.Cluster) {
	t.Helper()
	a, b := sim.Stats(), par.Stats()
	if a.Rounds != b.Rounds || a.Words != b.Words || a.Messages != b.Messages ||
		a.Violations != b.Violations || a.PeakMemWords != b.PeakMemWords {
		t.Fatalf("parallel replica accounting (rounds %d, words %d, msgs %d, viol %d, peak %d) diverges from sim (rounds %d, words %d, msgs %d, viol %d, peak %d)",
			b.Rounds, b.Words, b.Messages, b.Violations, b.PeakMemWords,
			a.Rounds, a.Words, a.Messages, a.Violations, a.PeakMemWords)
	}
}
