package sched

// Fair is a weighted deficit-round-robin share of the per-round word
// budget S across tenants. Each tenant t holds a deficit counter; at
// every wave boundary (BeginWave) the counter is topped up by the
// tenant's quantum
//
//	quantum(t) = max(1, S * weight(t) / totalWeight)
//
// and capped at S, so unused share rolls forward but a long-idle tenant
// can never hoard more than one full wave's budget. An item's fair cost
// is the sum of its Shared claim costs (a Solo item charges the whole
// budget: it takes the wave to itself); exclusive and read keys are
// ordering constraints, not capacity, and cost nothing. An item joins a
// wave only while its tenant's deficit covers its cost — except the
// first item of a wave, which always joins and may drive its deficit
// negative (the position-0 progress guarantee; the debt is repaid out
// of future quanta).
//
// totalWeight is the sum of the configured weights (minimum 1), so the
// configuration alone fixes every quantum. This is deliberate: quanta
// must not depend on which tenants happen to appear in a batch, or the
// greedy one-at-a-time Admitter and the whole-batch FirstWaveFair would
// disagree (the Admitter cannot know the batch's tenant set in
// advance). A tenant with no configured weight gets weight 1 over the
// same denominator.
//
// Fairness never reorders conflicting ops: FirstWaveFair refuses a
// tenant-throttled item exactly like a budget-refused one — the item
// still records its exclusive/read claims, so everything that conflicts
// with it stays behind it (the fairness invariant, pinned by
// TestFirstWaveFairPreservesOrdering).
type Fair struct {
	budget  int
	weights map[int]int
	total   int
	deficit map[int]int
}

// NewFair returns a Fair policy carving the per-wave budget into the
// given weight shares. weights maps tenant id -> weight (values < 1 are
// treated as 1); tenants absent from the map weigh 1 against the same
// total. A nil Fair disables fairness entirely (plain FirstWave
// packing), which is the single-tenant default.
func NewFair(budget int, weights map[int]int) *Fair {
	f := &Fair{
		budget:  budget,
		weights: make(map[int]int, len(weights)),
		deficit: make(map[int]int, len(weights)+1),
	}
	for t, w := range weights {
		if w < 1 {
			w = 1
		}
		f.weights[t] = w
		f.total += w
	}
	if f.total < 1 {
		f.total = 1
	}
	for t := range f.weights {
		f.deficit[t] = 0
	}
	return f
}

// quantum is the tenant's per-wave top-up: its weight share of the
// budget, at least one word so every tenant always makes progress.
func (f *Fair) quantum(t int) int {
	w := f.weights[t]
	if w < 1 {
		w = 1
	}
	q := f.budget * w / f.total
	if q < 1 {
		q = 1
	}
	return q
}

// BeginWave tops up every known tenant's deficit by its quantum, capped
// at the full budget. Called once per wave by FirstWaveFair / the
// Admitter's Reset.
func (f *Fair) BeginWave() {
	for t, d := range f.deficit {
		d += f.quantum(t)
		if d > f.budget {
			d = f.budget
		}
		f.deficit[t] = d
	}
}

// cost is the item's charge against its tenant's deficit: the summed
// shared-claim words, or the whole budget for a Solo item.
func (f *Fair) cost(it Item) int {
	if it.Solo {
		return f.budget
	}
	c := 0
	for _, cl := range it.Shared {
		c += cl.Cost
	}
	return c
}

// allows reports whether the tenant's deficit covers the cost. A tenant
// seen for the first time mid-run starts with one quantum, exactly as
// if it had been topped up at this wave's BeginWave.
func (f *Fair) allows(t, cost int) bool {
	d, ok := f.deficit[t]
	if !ok {
		d = f.quantum(t)
		f.deficit[t] = d
	}
	return d >= cost
}

// charge debits the cost against the tenant's deficit (which may go
// negative via the position-0 progress rule).
func (f *Fair) charge(t, cost int) {
	if _, ok := f.deficit[t]; !ok {
		f.deficit[t] = f.quantum(t)
	}
	f.deficit[t] -= cost
}

// FirstWaveFair is FirstWave with a deficit-round-robin tenant policy
// layered over the shared-claim packing: an item additionally needs its
// tenant's deficit to cover its fair cost, except at position 0 of the
// wave where it joins unconditionally and is charged anyway (progress).
// A fairness-refused item records its exclusive/read claims exactly
// like a budget-refused one, so conflicting ops keep batch order. nil
// fair means FirstWaveFair(items, budget, nil) == FirstWave(items,
// budget) identically.
func FirstWaveFair(items []Item, budget int, fair *Fair) []int {
	if fair == nil {
		return FirstWave(items, budget)
	}
	fair.BeginWave()
	claimed := make(map[int64]bool, 2*len(items))
	readClaimed := make(map[int64]bool, 4)
	usage := make(map[int64]int, 4)
	var wave []int
	for i, it := range items {
		if it.Solo {
			if i == 0 {
				fair.charge(it.Tenant, fair.cost(it))
				return []int{0}
			}
			break
		}
		free := true
		for _, k := range it.Excl {
			if claimed[k] || readClaimed[k] {
				free = false
				break
			}
		}
		if free {
			for _, k := range it.Read {
				if claimed[k] {
					free = false
					break
				}
			}
		}
		if free && budget > 0 {
			for _, cl := range it.Shared {
				if u := usage[cl.Key]; u > 0 && u+cl.Cost > budget {
					free = false
					break
				}
			}
		}
		if free && len(wave) > 0 && !fair.allows(it.Tenant, fair.cost(it)) {
			free = false
		}
		if free {
			wave = append(wave, i)
			fair.charge(it.Tenant, fair.cost(it))
			for _, cl := range it.Shared {
				usage[cl.Key] += cl.Cost
			}
		}
		for _, k := range it.Excl {
			claimed[k] = true
		}
		for _, k := range it.Read {
			readClaimed[k] = true
		}
	}
	return wave
}

// DriveFair is Drive with a Fair tenant policy threaded through each
// wave's packing; nil fair is exactly Drive.
func DriveFair(n int, item func(i int) Item, budget int, fair *Fair, exec func(wave []int)) int {
	if fair == nil {
		return Drive(n, item, budget, exec)
	}
	pending := make([]int, n)
	for i := range pending {
		pending[i] = i
	}
	items := make([]Item, 0, n)
	waves := 0
	for len(pending) > 0 {
		items = items[:0]
		for _, b := range pending {
			items = append(items, item(b))
		}
		pos := FirstWaveFair(items, budget, fair)
		wave := make([]int, len(pos))
		for x, j := range pos {
			wave[x] = pending[j]
		}
		exec(wave)
		waves++
		kept := pending[:0]
		x := 0
		for j, b := range pending {
			if x < len(pos) && pos[x] == j {
				x++
				continue
			}
			kept = append(kept, b)
		}
		pending = kept
	}
	return waves
}
