package dmpc

import (
	"sort"
	"testing"

	"dmpc/internal/graph"
)

// The FuzzArrivalEquivalence harnesses pin the arrival-schedule
// independence of streaming ingestion: for ANY op stream and ANY
// inter-arrival gaps — hence any pattern of conflict, age, size and tail
// flushes — the Ingestor's answers and end state must be bit-identical
// to Apply on the full slice (which the per-algorithm
// FuzzMixedEquivalence suites pin to sequential replay in turn). The
// fuzzer decodes 4 bytes per arrival through graph.FuzzArrivals (3 op
// bytes + 1 gap byte); sel's low nibble picks the batch-size bound, bits
// 4-5 the age bound, and the top bit the structure variant.
//
// Run the full fuzzers with:
//
//	go test -run FuzzArrivalEquivalenceConn -fuzz FuzzArrivalEquivalenceConn .
//	go test -run FuzzArrivalEquivalenceDMM -fuzz FuzzArrivalEquivalenceDMM .

func FuzzArrivalEquivalenceConn(f *testing.F) {
	f.Add(byte(3), []byte("abcdabceacdebcde"))
	f.Add(byte(0x92), []byte("0123ABCD4567EFGH89abIJKL")) // MST, k=3, age 8
	f.Add(byte(0x21), []byte("aXYZaYZWbZWXbWXYcXZWfXYZgZWX"))
	f.Add(byte(0x7f), []byte("??????!!!!!!......______"))
	// MaxAge boundary: age 8 with an arrival at exactly t=8 — the
	// inclusive flushAge edge pinned by TestIngestorMaxAgeBoundary.
	f.Add(byte(0x12), []byte{2, 1, 2, 0, 2, 3, 4, 8, 0, 5, 6, 0, 2, 7, 8, 5})
	f.Fuzz(func(t *testing.T, sel byte, data []byte) {
		const n = 24
		if len(data) > 480 { // 120 arrivals keeps one iteration fast
			data = data[:480]
		}
		arrivals := graph.FuzzArrivals(data, n, 20,
			[]graph.OpKind{graph.OpConnected, graph.OpComponentOf}, false)
		if len(arrivals) == 0 {
			t.Skip()
		}
		ops := make([]Op, len(arrivals))
		for i, a := range arrivals {
			ops[i] = a.Op
		}
		cfg := IngestorConfig{
			MaxBatch: 1 + int(sel&0x0f),
			MaxAge:   int64(sel>>4&0x3) * 8,
		}
		var ref, str Pipeline
		var refMST, strMST *MST
		var refCC, strCC *Connectivity
		if sel&0x80 != 0 {
			refMST, strMST = NewMST(n, 0, 160), NewMST(n, 0, 160)
			ref, str = refMST, strMST
		} else {
			refCC, strCC = NewConnectivity(n, 160), NewConnectivity(n, 160)
			ref, str = refCC, strCC
		}

		want, _ := ref.Apply(ops)
		got, st := Ingest(str, arrivals, cfg)

		if len(got) != len(want) {
			t.Fatalf("sel=%#x: %d answers, want %d", sel, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("sel=%#x: query %d answered %+v streamed, %+v batched", sel, j, got[j], want[j])
			}
		}
		if st.Ops != len(ops) || len(st.Latencies) != len(ops) {
			t.Fatalf("sel=%#x: stats cover %d ops / %d latencies of %d", sel, st.Ops, len(st.Latencies), len(ops))
		}
		if sel&0x80 != 0 {
			wantF, gotF := sortedForest(refMST), sortedForest(strMST)
			if len(wantF) != len(gotF) {
				t.Fatalf("sel=%#x: forest sizes differ: %d vs %d", sel, len(gotF), len(wantF))
			}
			for i := range wantF {
				if wantF[i] != gotF[i] {
					t.Fatalf("sel=%#x: forest edge %d differs: %v vs %v", sel, i, gotF[i], wantF[i])
				}
			}
		} else {
			for v := 0; v < n; v++ {
				if refCC.CompOf(v) != strCC.CompOf(v) {
					t.Fatalf("sel=%#x: component of %d differs: %d vs %d",
						sel, v, strCC.CompOf(v), refCC.CompOf(v))
				}
			}
		}
		if v := str.Cluster().Stats().Violations; v != 0 {
			t.Fatalf("sel=%#x: %d cluster constraint violations", sel, v)
		}

		// Backend-equivalence replica: the same arrival schedule ingested
		// on the goroutine-per-machine backend must answer and account
		// bit-identically to the sim-backend streamed instance.
		popts := []Option{WithBackend(BackendParallel), WithWorkers(3)}
		var par Pipeline
		var parMST *MST
		var parCC *Connectivity
		if sel&0x80 != 0 {
			parMST = NewMST(n, 0, 160, popts...)
			par = parMST
		} else {
			parCC = NewConnectivity(n, 160, popts...)
			par = parCC
		}
		defer par.Close()
		pgot, _ := Ingest(par, arrivals, cfg)
		if len(pgot) != len(got) {
			t.Fatalf("sel=%#x: parallel replica answered %d queries, sim %d", sel, len(pgot), len(got))
		}
		for j := range got {
			if pgot[j] != got[j] {
				t.Fatalf("sel=%#x: parallel replica answered query %d %+v, sim %+v", sel, j, pgot[j], got[j])
			}
		}
		if sel&0x80 != 0 {
			wantF, gotF := sortedForest(strMST), sortedForest(parMST)
			if len(wantF) != len(gotF) {
				t.Fatalf("sel=%#x: parallel replica forest size %d, sim %d", sel, len(gotF), len(wantF))
			}
			for i := range wantF {
				if wantF[i] != gotF[i] {
					t.Fatalf("sel=%#x: parallel replica forest edge %d: %v, sim %v", sel, i, gotF[i], wantF[i])
				}
			}
		} else {
			for v := 0; v < n; v++ {
				if strCC.CompOf(v) != parCC.CompOf(v) {
					t.Fatalf("sel=%#x: parallel replica component of %d: %d, sim %d",
						sel, v, parCC.CompOf(v), strCC.CompOf(v))
				}
			}
		}
		assertSameAccounting(t, str.Cluster(), par.Cluster())
	})
}

// assertSameAccounting pins the backend determinism rule at the cluster
// level: accounting a backend must reproduce bit for bit regardless of
// execution strategy.
func assertSameAccounting(t *testing.T, sim, par *Cluster) {
	t.Helper()
	a, b := sim.Stats(), par.Stats()
	if a.Rounds != b.Rounds || a.Words != b.Words || a.Messages != b.Messages ||
		a.Violations != b.Violations || a.PeakMemWords != b.PeakMemWords {
		t.Fatalf("parallel replica accounting (rounds %d, words %d, msgs %d, viol %d, peak %d) diverges from sim (rounds %d, words %d, msgs %d, viol %d, peak %d)",
			b.Rounds, b.Words, b.Messages, b.Violations, b.PeakMemWords,
			a.Rounds, a.Words, a.Messages, a.Violations, a.PeakMemWords)
	}
}

// sortedForest canonicalizes a maintained spanning forest for
// comparison.
func sortedForest(m *MST) []graph.WEdge {
	edges := m.ForestEdges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		if edges[i].V != edges[j].V {
			return edges[i].V < edges[j].V
		}
		return edges[i].W < edges[j].W
	})
	return edges
}

func FuzzArrivalEquivalenceDMM(f *testing.F) {
	f.Add(byte(5), []byte("abcdabceacdebcde"))
	f.Add(byte(0x30), []byte("0123A5CD4567EFGH89abIJKL099a"))
	f.Add(byte(0x1c), []byte("aXYZbYZWcZWXdWXYeXZWfXYZgZWX"))
	f.Fuzz(func(t *testing.T, sel byte, data []byte) {
		const n = 24
		if len(data) > 480 {
			data = data[:480]
		}
		// dmm's stream contract requires well-formed updates, so decode
		// through the filtered front-end (dropped ops drop their gaps).
		arrivals := graph.FuzzArrivals(data, n, 1,
			[]graph.OpKind{graph.OpMateOf, graph.OpMatched}, true)
		if len(arrivals) == 0 {
			t.Skip()
		}
		ops := make([]Op, len(arrivals))
		for i, a := range arrivals {
			ops[i] = a.Op
		}
		cfg := IngestorConfig{
			MaxBatch: 1 + int(sel&0x0f),
			MaxAge:   int64(sel>>4&0x3) * 8,
		}
		ref := NewMaximalMatching(n, 200)
		str := NewMaximalMatching(n, 200)

		want, _ := ref.Apply(ops)
		got, st := Ingest(str, arrivals, cfg)

		if len(got) != len(want) {
			t.Fatalf("sel=%#x: %d answers, want %d", sel, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("sel=%#x: query %d answered %+v streamed, %+v batched", sel, j, got[j], want[j])
			}
		}
		if st.Ops != len(ops) || len(st.Latencies) != len(ops) {
			t.Fatalf("sel=%#x: stats cover %d ops / %d latencies of %d", sel, st.Ops, len(st.Latencies), len(ops))
		}
		wantM, gotM := ref.MateTable(), str.MateTable()
		for v := range wantM {
			if wantM[v] != gotM[v] {
				t.Fatalf("sel=%#x: mate of %d differs: %d vs %d", sel, v, gotM[v], wantM[v])
			}
		}
		if v := str.Cluster().Stats().Violations; v != 0 {
			t.Fatalf("sel=%#x: %d cluster constraint violations", sel, v)
		}

		// Backend-equivalence replica: same arrivals, goroutine-per-machine
		// backend, bit-identical answers, mate table and accounting.
		par := NewMaximalMatching(n, 200, WithBackend(BackendParallel), WithWorkers(3))
		defer par.Close()
		pgot, _ := Ingest(par, arrivals, cfg)
		if len(pgot) != len(got) {
			t.Fatalf("sel=%#x: parallel replica answered %d queries, sim %d", sel, len(pgot), len(got))
		}
		for j := range got {
			if pgot[j] != got[j] {
				t.Fatalf("sel=%#x: parallel replica answered query %d %+v, sim %+v", sel, j, pgot[j], got[j])
			}
		}
		wantP, gotP := str.MateTable(), par.MateTable()
		for v := range wantP {
			if wantP[v] != gotP[v] {
				t.Fatalf("sel=%#x: parallel replica mate of %d: %d, sim %d", sel, v, gotP[v], wantP[v])
			}
		}
		assertSameAccounting(t, str.Cluster(), par.Cluster())
	})
}
