package dyncon

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"dmpc/internal/graph"
)

// stateFingerprint serializes the complete distributed state of d — every
// shard's tree records (with all four tour positions), non-tree records
// (with anchors and per-anchor components), vertex labels and registry
// sizes — into one canonical string. Two structures with equal fingerprints
// are bit-identical, not merely equivalent.
func stateFingerprint(d *D) string {
	var lines []string
	for _, sh := range d.shards {
		for e, rec := range sh.tree {
			lines = append(lines, fmt.Sprintf("m%d tree %d-%d pos=%v comp=%d w=%d",
				sh.id, e.U, e.V, rec.pos, rec.comp, rec.w))
		}
		for e, rec := range sh.nontree {
			lines = append(lines, fmt.Sprintf("m%d nt %d-%d a=(%d,%d) c=(%d,%d) w=%d",
				sh.id, e.U, e.V, rec.aU, rec.aV, rec.cU, rec.cV, rec.w))
		}
		for v, comp := range sh.verts {
			lines = append(lines, fmt.Sprintf("m%d vert %d comp=%d", sh.id, v, comp))
		}
		for comp, size := range sh.sizes {
			lines = append(lines, fmt.Sprintf("m%d size %d=%d", sh.id, comp, size))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestWavePermutationCommutativity is the commutativity proof obligation
// from ROADMAP as a property test: for every wave the conflict-graph
// scheduler forms, executing the wave's updates in any order must yield
// bit-identical distributed state — same tour positions, same anchors, same
// labels, same registry — because component-disjoint updates touch disjoint
// records. The test replays the same chunked stream with the injection
// order of every wave shuffled under several seeds (via the wavePerm test
// hook) and demands fingerprint equality with the unpermuted run, in both
// CC and exact-MST modes.
func TestWavePermutationCommutativity(t *testing.T) {
	const n = 48
	stream := graph.RandomStream(n, 240, 0.55, 30, rand.New(rand.NewSource(41)))
	for _, md := range []struct {
		name string
		cfg  Config
	}{
		{"cc", Config{N: n, Mode: CC, ExpectedEdges: 240}},
		{"mst", Config{N: n, Mode: MST, Eps: 0, ExpectedEdges: 240}},
	} {
		run := func(perm func(wave []int)) *D {
			d := New(md.cfg)
			d.wavePerm = perm
			for _, b := range graph.Chunk(stream, 32) {
				d.ApplyBatch(b)
			}
			return d
		}
		base := run(nil)
		want := stateFingerprint(base)
		if err := base.Validate(); err != nil {
			t.Fatalf("%s: baseline invariants broken: %v", md.name, err)
		}
		permuted := 0
		for seed := int64(0); seed < 5; seed++ {
			rng := rand.New(rand.NewSource(100 + seed))
			d := run(func(wave []int) {
				if len(wave) > 1 {
					permuted++
				}
				rng.Shuffle(len(wave), func(i, j int) { wave[i], wave[j] = wave[j], wave[i] })
			})
			if got := stateFingerprint(d); got != want {
				t.Fatalf("%s seed %d: permuted wave execution diverged from canonical order:\n got: %.300s\nwant: %.300s",
					md.name, seed, got, want)
			}
			if err := d.Validate(); err != nil {
				t.Fatalf("%s seed %d: invariants broken: %v", md.name, seed, err)
			}
		}
		if permuted == 0 {
			t.Fatalf("%s: no wave wider than 1 was ever permuted — the property was vacuous", md.name)
		}
	}
}
