package amm

import (
	"math/rand"
	"testing"

	"dmpc/internal/graph"
)

// TestMateQueries pins the §6 protocol query path: MateOf/Matched agree
// with the MateTable validation oracle (matching state is authoritative at
// the owners), a k-query batch costs one shared round, and query rounds are
// charged to QueryStats windows only.
func TestMateQueries(t *testing.T) {
	const n = 40
	rng := rand.New(rand.NewSource(9))
	m := New(Config{N: n, Seed: 3})
	for _, up := range graph.RandomStream(n, 150, 0.6, 1, rng) {
		if up.Op == graph.Insert {
			m.Insert(up.U, up.V)
		} else {
			m.Delete(up.U, up.V)
		}
	}
	updatesBefore := len(m.Cluster().Stats().Updates())

	vs := make([]int, n)
	for v := range vs {
		vs[v] = v
	}
	got := m.MateOfBatch(vs)
	// Oracle read *after* the query: the query window settles any update
	// traffic still in flight first, so the answers must match the settled
	// state — and be symmetric as a whole.
	oracle := m.MateTable()
	for v := range vs {
		if got[v] != oracle[v] {
			t.Fatalf("MateOfBatch[%d] = %d, oracle %d", v, got[v], oracle[v])
		}
		if got[v] >= 0 && got[got[v]] != v {
			t.Fatalf("asymmetric answers: MateOf(%d)=%d but MateOf(%d)=%d", v, got[v], got[v], got[got[v]])
		}
	}
	qs := m.Cluster().Stats().Queries()
	if len(qs) != 1 || qs[0].Queries != n || qs[0].Rounds != 1 {
		t.Fatalf("query windows %+v, want one window of %d queries over 1 round", qs, n)
	}

	for _, v := range []int{0, 3, n - 1} {
		if m.MateOf(v) != oracle[v] {
			t.Fatalf("MateOf(%d) = %d, oracle %d", v, m.MateOf(v), oracle[v])
		}
		if oracle[v] >= 0 && !m.Matched(v, oracle[v]) {
			t.Fatalf("Matched(%d,%d) = false for a matched pair", v, oracle[v])
		}
	}
	if after := len(m.Cluster().Stats().Updates()); after != updatesBefore {
		t.Fatalf("queries leaked into update accounting: %d -> %d windows", updatesBefore, after)
	}
}

// TestQueryLeavesNoResidue pins the query-only-round rule: a mate query on
// a shard that still holds pending level-notification jobs must not re-send
// a scheduler report — the read costs its one round, leaves the cluster
// quiescent, and the next update's accounting is identical to a query-free
// run.
func TestQueryLeavesNoResidue(t *testing.T) {
	build := func(withQuery bool) *M {
		m := New(Config{N: 32, Seed: 5})
		// A star around vertex 0 whose degree exceeds Delta, then a delete
		// of 0's matched edge: the level change queues more neighbor
		// notifications than one Δ-bounded tick can drain, so 0's owner
		// shard still holds pending jobs when the read arrives.
		for v := 1; v <= m.cfg.Delta+4; v++ {
			m.Insert(0, v)
		}
		m.Delete(0, 1)
		// Settle any in-flight tail traffic so both runs start identically
		// (jobs only drain on scheduler ticks, so they stay pending).
		m.cluster.Run(64)
		if withQuery {
			m.MateOf(0)
			qs := m.Cluster().Stats().Queries()
			if last := qs[len(qs)-1]; last.Rounds != 1 {
				t.Fatalf("query on a jobs-pending shard cost %d rounds, want 1", last.Rounds)
			}
			if !m.cluster.Quiescent() {
				t.Fatal("read left traffic in flight for the next update window to absorb")
			}
		}
		m.Insert(28, 29)
		return m
	}
	quiet := build(false)
	noisy := build(true)
	uq := quiet.Cluster().Stats().Updates()
	un := noisy.Cluster().Stats().Updates()
	if len(uq) != len(un) {
		t.Fatalf("update window counts differ: %d vs %d", len(un), len(uq))
	}
	if uq[len(uq)-1] != un[len(un)-1] {
		t.Fatalf("post-query update accounting differs: %+v vs %+v", un[len(un)-1], uq[len(uq)-1])
	}
}
