package graph

// Batch is an ordered sequence of updates applied to a dynamic structure as
// one unit, sharing a single round-accounting window in the DMPC simulator.
// Applying a batch is semantically equivalent to applying its updates one
// at a time in order; batching only changes how rounds are charged and lets
// algorithms overlap or parallelize non-conflicting updates.
type Batch []Update

// Chunk splits a stream into consecutive batches of at most k updates,
// preserving order. k <= 1 yields singleton batches (per-update semantics);
// k >= len(updates) yields the whole stream as one chunk. Any k is safe:
// the capacity expression (len+k-1)/k used to overflow for k near MaxInt,
// panicking in make, so k is clamped to the stream length first.
func Chunk(updates []Update, k int) []Batch {
	if len(updates) == 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > len(updates) {
		k = len(updates)
	}
	out := make([]Batch, 0, (len(updates)+k-1)/k)
	for len(updates) > 0 {
		n := k
		if n > len(updates) {
			n = len(updates)
		}
		out = append(out, Batch(updates[:n:n]))
		updates = updates[n:]
	}
	return out
}

// Inserts and Deletes count the batch's operations by kind.
func (b Batch) Inserts() int {
	n := 0
	for _, u := range b {
		if u.Op == Insert {
			n++
		}
	}
	return n
}

// Deletes counts the deletion operations in the batch.
func (b Batch) Deletes() int { return len(b) - b.Inserts() }

// Apply replays the batch onto g, returning how many updates changed it.
func (b Batch) Apply(g *Graph) int {
	changed := 0
	for _, u := range b {
		if g.Apply(u) {
			changed++
		}
	}
	return changed
}

// DisjointPrefix returns the length of the longest prefix of b whose
// updates touch pairwise-disjoint endpoint sets, capped at max (0 = no
// cap). Endpoint-disjoint updates mutate disjoint vertex state, so an
// algorithm may inject such a prefix into its cluster concurrently and
// still match the sequential outcome exactly.
func (b Batch) DisjointPrefix(max int) int {
	if max <= 0 || max > len(b) {
		max = len(b)
	}
	touched := make(map[int]bool, 2*max)
	for i := 0; i < max; i++ {
		u := b[i]
		if touched[u.U] || touched[u.V] {
			return i
		}
		touched[u.U] = true
		touched[u.V] = true
	}
	return max
}
