package graph

// Golden sequential checkers. These are the oracles every DMPC algorithm is
// validated against in the tests; they favor obviousness over speed.

// Components returns a canonical component labeling: comp[v] is the
// smallest vertex id in v's connected component.
func Components(g *Graph) []int {
	comp := make([]int, g.N())
	for i := range comp {
		comp[i] = -1
	}
	stack := make([]int, 0, g.N())
	for s := 0; s < g.N(); s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = s
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			g.EachNeighbor(v, func(w int, _ Weight) bool {
				if comp[w] == -1 {
					comp[w] = s
					stack = append(stack, w)
				}
				return true
			})
		}
	}
	return comp
}

// SameComponent reports whether u and v are connected in g.
func SameComponent(g *Graph, u, v int) bool {
	comp := Components(g)
	return comp[u] == comp[v]
}

// NumComponents returns the number of connected components (isolated
// vertices count).
func NumComponents(g *Graph) int {
	comp := Components(g)
	n := 0
	for v, c := range comp {
		if c == v {
			n++
		}
	}
	return n
}

// SameLabeling reports whether two labelings induce the same partition.
func SameLabeling(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := make(map[int]int)
	bwd := make(map[int]int)
	for i := range a {
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		if x, ok := bwd[b[i]]; ok && x != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		bwd[b[i]] = a[i]
	}
	return true
}

// IsSpanningForest reports whether the edge set f is a spanning forest of
// g: acyclic, every edge present in g, and connecting exactly g's
// components.
func IsSpanningForest(g *Graph, f []Edge) bool {
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range f {
		if !g.Has(e.U, e.V) {
			return false
		}
		ru, rv := find(e.U), find(e.V)
		if ru == rv {
			return false // cycle
		}
		parent[ru] = rv
	}
	forestComp := make([]int, g.N())
	for v := range forestComp {
		forestComp[v] = find(v)
	}
	return SameLabeling(Components(g), forestComp)
}
