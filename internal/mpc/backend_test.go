package mpc

import (
	"runtime"
	"testing"
)

// relayFingerprint is the full observable state of one relay run — the
// answer trace plus every accounting figure the determinism rule pins,
// including the pair-communication distribution (CommEntropy and
// MaxPairWords must survive the staged-fold accounting path bit for bit).
type relayFingerprint struct {
	rounds, words, maxPair int
	entropy                float64
	trace                  []int64
}

// runRelayOn executes the branching relay of determinism_test.go on a
// specific backend and worker bound, returning the trace fingerprint.
func runRelayOn(be BackendKind, workers int) relayFingerprint {
	const mu = 7
	c := NewCluster(Config{Machines: mu, MemWords: 1 << 20, Workers: workers, Backend: be})
	defer c.Close()
	ms := make([]*relayMachine, mu)
	for i := range ms {
		ms[i] = &relayMachine{id: i, mu: mu, budget: 40}
		c.SetMachine(i, ms[i])
	}
	c.Send(Message{To: 0, Payload: int64(1), Words: 1})
	c.Run(500)
	fp := relayFingerprint{
		rounds:  c.Stats().Rounds,
		words:   c.Stats().Words,
		maxPair: c.MaxPairWords(),
		entropy: c.CommEntropy(),
	}
	for _, m := range ms {
		fp.trace = append(fp.trace, int64(len(m.seen)))
		for _, v := range m.seen {
			fp.trace = append(fp.trace, v)
		}
	}
	return fp
}

// TestParallelBackendMatchesSim: the goroutine-per-machine runtime must
// reproduce the sim oracle's trace, rounds and words bit for bit, at
// every worker sharding — one worker (fully inline on the driver),
// fewer workers than machines (sharded), and one goroutine per machine.
func TestParallelBackendMatchesSim(t *testing.T) {
	want := runRelayOn(BackendSim, 0)
	for _, workers := range []int{1, 2, 3, 7, 16} {
		got := runRelayOn(BackendParallel, workers)
		if got.rounds != want.rounds || got.words != want.words {
			t.Fatalf("parallel workers=%d: rounds/words %d/%d, sim %d/%d",
				workers, got.rounds, got.words, want.rounds, want.words)
		}
		if got.maxPair != want.maxPair || got.entropy != want.entropy {
			t.Fatalf("parallel workers=%d: pair accounting %d/%v, sim %d/%v",
				workers, got.maxPair, got.entropy, want.maxPair, want.entropy)
		}
		if len(got.trace) != len(want.trace) {
			t.Fatalf("parallel workers=%d: trace length %d, sim %d", workers, len(got.trace), len(want.trace))
		}
		for i := range want.trace {
			if got.trace[i] != want.trace[i] {
				t.Fatalf("parallel workers=%d: trace[%d] = %d, sim %d", workers, i, got.trace[i], want.trace[i])
			}
		}
	}
}

// TestWorkersDeterminismPerBackend: Workers=1 and Workers=GOMAXPROCS
// produce bit-identical stats on both backends — the Config.Workers
// guarantee.
func TestWorkersDeterminismPerBackend(t *testing.T) {
	for _, be := range []BackendKind{BackendSim, BackendParallel} {
		f1 := runRelayOn(be, 1)
		fn := runRelayOn(be, runtime.GOMAXPROCS(0))
		if f1.rounds != fn.rounds || f1.words != fn.words || len(f1.trace) != len(fn.trace) ||
			f1.maxPair != fn.maxPair || f1.entropy != fn.entropy {
			t.Fatalf("%v: workers=1 got %+v, GOMAXPROCS got %+v", be, f1, fn)
		}
		for i := range f1.trace {
			if f1.trace[i] != fn.trace[i] {
				t.Fatalf("%v: trace[%d] differs across worker counts: %d vs %d", be, i, f1.trace[i], fn.trace[i])
			}
		}
	}
}

// TestScheduledNilMachineSlots: scheduling an unattached slot must count
// it active without running a handler, on both backends, and
// Quiescent/Run must see and then drain it.
func TestScheduledNilMachineSlots(t *testing.T) {
	for _, be := range []BackendKind{BackendSim, BackendParallel} {
		c := NewCluster(Config{Machines: 4, MemWords: 64, Workers: 3, Backend: be})
		if !c.Quiescent() {
			t.Fatalf("%v: fresh cluster not quiescent", be)
		}
		c.Schedule(2) // no machine attached to slot 2
		if c.Quiescent() {
			t.Fatalf("%v: scheduled cluster reports quiescent", be)
		}
		rs := c.Round()
		if rs.Active != 1 || rs.Words != 0 || rs.Messages != 0 {
			t.Fatalf("%v: nil-slot round stats %+v, want 1 active, 0 words", be, rs)
		}
		if !c.Quiescent() {
			t.Fatalf("%v: cluster not quiescent after nil-slot round", be)
		}
		c.Schedule(0)
		c.Schedule(3)
		if n := c.Run(10); n != 1 {
			t.Fatalf("%v: Run over nil slots took %d rounds, want 1", be, n)
		}
		c.Close()
	}
}

// TestSendBoundsCheck: an externally injected message to an out-of-range
// machine is a counted model violation (fatal in strict mode), not a raw
// index panic, and the message is dropped.
func TestSendBoundsCheck(t *testing.T) {
	for _, be := range []BackendKind{BackendSim, BackendParallel} {
		c := NewCluster(Config{Machines: 3, MemWords: 64, Backend: be})
		c.Send(Message{To: 99, Payload: 1, Words: 1})
		c.Send(Message{To: -1, Payload: 1, Words: 1})
		if v := c.Stats().Violations; v != 2 {
			t.Fatalf("%v: %d violations after two out-of-range sends, want 2", be, v)
		}
		if !c.Quiescent() {
			t.Fatalf("%v: dropped out-of-range sends left the cluster non-quiescent", be)
		}
		c.Close()

		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%v: strict mode did not panic on out-of-range Send", be)
				}
			}()
			sc := NewCluster(Config{Machines: 3, MemWords: 64, Strict: true, Backend: be})
			defer sc.Close()
			sc.Send(Message{To: 42, Payload: 1, Words: 1})
		}()
	}
}

// TestExternalWordsCounted: externally injected words must show up in
// the pair-communication distribution CommEntropy reports on — before
// this accounting, a workload driven purely by external injection scored
// a misleading entropy of 0.
func TestExternalWordsCounted(t *testing.T) {
	c := NewCluster(Config{Machines: 4, MemWords: 64})
	defer c.Close()
	c.Send(Message{From: -1, To: 0, Payload: 1, Words: 3})
	c.Send(Message{From: -1, To: 1, Payload: 1, Words: 3})
	if h := c.CommEntropy(); h != 1 {
		t.Fatalf("entropy %v after two equal external pair volumes, want exactly 1 bit", h)
	}
}

// TestCloseIsIdempotentAndFinal: closing twice is fine; rounding a
// closed parallel cluster is a driver bug and panics.
func TestCloseIsIdempotentAndFinal(t *testing.T) {
	c := NewCluster(Config{Machines: 4, MemWords: 64, Workers: 2, Backend: BackendParallel})
	c.Close()
	c.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Round on a closed parallel cluster did not panic")
		}
	}()
	c.Schedule(0)
	c.Round()
}

// pingMachine keeps a fixed-width round-robin cascade alive: every round
// each machine forwards one word to its successor and re-schedules
// itself, so every machine is active every round — the steady-state hot
// loop the allocs/round benchmark and the backend wall-clock comparison
// measure.
type pingMachine struct {
	id, mu int
}

func (p *pingMachine) HandleRound(ctx *Ctx, inbox []Message) {
	ctx.Send((p.id+1)%p.mu, int64(ctx.Round()), 1)
}

func newPingCluster(mu int, be BackendKind, workers int) *Cluster {
	c := NewCluster(Config{Machines: mu, MemWords: 1 << 16, Workers: workers, Backend: be})
	for i := 0; i < mu; i++ {
		c.SetMachine(i, &pingMachine{id: i, mu: mu})
	}
	for i := 0; i < mu; i++ {
		c.Schedule(i)
	}
	return c
}

// BenchmarkRoundAllocs measures the per-round allocation bill of the hot
// loop with every machine active — the satellite target for hoisting the
// sim backend's per-round scratch (semaphore, active set, context slice)
// into reused state. Run with -benchmem; the sim backend's bill is one
// Ctx per active machine plus inbox churn, the parallel backend's is
// inbox churn only.
func BenchmarkRoundAllocs(b *testing.B) {
	for _, bc := range []struct {
		name string
		be   BackendKind
	}{{"sim", BackendSim}, {"parallel", BackendParallel}} {
		b.Run(bc.name, func(b *testing.B) {
			c := newPingCluster(16, bc.be, 4)
			defer c.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Round()
			}
		})
	}
}

// BenchmarkBackends compares wall-clock time per round between the sim
// oracle and the parallel runtime on the steady-state cascade at two
// cluster widths.
func BenchmarkBackends(b *testing.B) {
	for _, mu := range []int{16, 128} {
		for _, bc := range []struct {
			name string
			be   BackendKind
		}{{"sim", BackendSim}, {"parallel", BackendParallel}} {
			b.Run(bc.name+"/mu="+itoa(mu), func(b *testing.B) {
				c := newPingCluster(mu, bc.be, 0)
				defer c.Close()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.Round()
				}
			})
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
