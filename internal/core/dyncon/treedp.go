package dyncon

import (
	"fmt"

	"dmpc/internal/etour"
	"dmpc/internal/graph"
	"dmpc/internal/mpc"
	"dmpc/internal/treedp"
)

// Tree-DP protocol over the §5 tour machinery (see internal/treedp for
// the interval algebra). Three query orchestrations, all run at the
// owner of the query's first vertex and keyed by query id in qpend:
//
//   - SubtreeSum: read f(u)/l(u) locally, fetch the root's comp and
//     appearance from its owner (one round trip), decide the Span —
//     whole component, u's interval, or the inverted child-toward-root
//     interval — and broadcast it; every machine replies one partial
//     sum over its weight records.
//   - PathSum: fetch the far endpoint's comp and appearance, then
//     broadcast both appearances; every machine evaluates the OnPath
//     predicate against its weighted vertices' locally computable
//     intervals and replies one partial sum.
//   - TreeTop: broadcast the component; every machine replies its local
//     argmax over owned vertices (weight 0 when unrecorded).
//
// No new round *types* are introduced: the orchestrations reuse the
// info-request/reply and broadcast/gather shapes of the §5 update
// protocol, and the weight partials themselves are repaired by the very
// Shift descriptors links and cuts already broadcast (onDoLink /
// onDoCut), so a zero-DP stream exchanges bit-identical messages to the
// pre-DP protocol.

// dpPending is one in-flight DP query orchestration.
type dpPending struct {
	kind   graph.OpKind
	u, v   int32
	comp   int64
	fu, lu int

	replies int
	sum     int64

	bestFound bool
	bestV     int32
	bestW     int64
}

// onSetWeight installs or overwrites the owned vertex's weight record.
// The anchor is any current appearance of the vertex (f(v), computed on
// demand; 0 for a singleton) — from here on it is maintained purely by
// the broadcast shift chains, like every non-tree anchor.
func (s *shard) onSetWeight(w wire) {
	f, _ := s.flOf(w.U)
	s.weights[w.U] = &treedp.Rec{Anchor: f, Comp: s.verts[w.U], W: w.W}
}

func (s *shard) onDPSubtree(ctx *mpc.Ctx, w wire) {
	u, r := w.U, w.V
	comp := s.verts[u]
	if u == r {
		// Rooting at u itself: the subtree is the whole component.
		s.qpend[w.Seq] = &dpPending{kind: graph.OpSubtreeSum, u: u, comp: comp}
		s.dpBroadcastSum(ctx, w.Seq, comp, treedp.Span{All: true})
		return
	}
	fu, lu := s.flOf(u)
	s.qpend[w.Seq] = &dpPending{kind: graph.OpSubtreeSum, u: u, v: r, comp: comp, fu: fu, lu: lu}
	ctx.Send(s.owner(r), wire{Kind: kDPInfoReq, U: r, Seq: w.Seq, ReplyTo: int32(s.id)}, 4)
}

func (s *shard) onDPPath(ctx *mpc.Ctx, w wire) {
	u, v := w.U, w.V
	if u == v {
		// The trivial path: w(u), readable locally at u's owner.
		var sum int64
		if rec, ok := s.weights[u]; ok {
			sum = rec.W
		}
		s.dpResults[w.Seq] = sum
		return
	}
	fu, _ := s.flOf(u)
	s.qpend[w.Seq] = &dpPending{kind: graph.OpPathSum, u: u, v: v, comp: s.verts[u], fu: fu}
	ctx.Send(s.owner(v), wire{Kind: kDPInfoReq, U: v, Seq: w.Seq, ReplyTo: int32(s.id)}, 4)
}

func (s *shard) onDPTop(ctx *mpc.Ctx, w wire) {
	comp := s.verts[w.U]
	s.qpend[w.Seq] = &dpPending{kind: graph.OpTreeTop, u: w.U, comp: comp}
	ctx.Broadcast(wire{Kind: kDPTopReq, Seq: w.Seq, Comp: comp, ReplyTo: int32(s.id)}, 4, true)
}

// onDPInfo resumes a SubtreeSum or PathSum orchestration once the far
// vertex's component and appearance arrive.
func (s *shard) onDPInfo(ctx *mpc.Ctx, w wire) {
	p, ok := s.qpend[w.Seq]
	if !ok {
		return
	}
	switch p.kind {
	case graph.OpSubtreeSum:
		span := treedp.Span{All: true} // root in another component
		if w.Comp == p.comp {
			if etour.InSubtree(w.F, w.L, p.fu, p.lu) {
				// The root lies strictly below u: re-rooted at it, u's
				// subtree is everything EXCEPT the child-toward-root
				// subtree, whose interval u's owner reads locally.
				cf, cl := s.childTowards(p.u, p.comp, w.F)
				span = treedp.Span{Invert: true, Lo: cf, Hi: cl}
			} else {
				// Root above or beside u: the current interval stands.
				span = treedp.Span{Lo: p.fu, Hi: p.lu}
			}
		}
		s.dpBroadcastSum(ctx, w.Seq, p.comp, span)
	case graph.OpPathSum:
		if w.Comp != p.comp {
			s.dpResults[w.Seq] = 0
			delete(s.qpend, w.Seq)
			return
		}
		p.replies, p.sum = 0, 0
		ctx.Broadcast(wire{
			Kind: kDPPathReq, Seq: w.Seq, Comp: p.comp,
			F: p.fu, L: w.F, ReplyTo: int32(s.id),
		}, 6, true)
	}
}

// childTowards finds the child-of-u subtree interval containing the
// appearance fr — u's owner holds every u-incident tree record, and on
// each record u is the parent iff its positions are the outer pair.
func (s *shard) childTowards(u int32, comp int64, fr int) (int, int) {
	for ge, rec := range s.tree {
		if rec.comp != comp || (int32(ge.U) != u && int32(ge.V) != u) {
			continue
		}
		cf, cl := childInterval(&rec.pos)
		pu := posOf(&rec.pos, int(u))
		if pu[0] == cf || pu[0] == cl {
			continue // u is the child on this record
		}
		if fr >= cf && fr <= cl {
			return cf, cl
		}
	}
	panic(fmt.Sprintf("dyncon: no child interval of %d holds appearance %d (comp %d)", u, fr, comp))
}

// dpBroadcastSum ships the Span predicate to every machine and resets
// the pending reply collection.
func (s *shard) dpBroadcastSum(ctx *mpc.Ctx, seq int64, comp int64, span treedp.Span) {
	p := s.qpend[seq]
	p.replies, p.sum = 0, 0
	ctx.Broadcast(wire{
		Kind: kDPSumReq, Seq: seq, Comp: comp, Span: span, ReplyTo: int32(s.id),
	}, 4+span.Words(), true)
}

// onDPSumReq evaluates the Span over the shard's weight records: one
// anchor comparison per record, one partial sum back. O(local records)
// work, O(1) words.
func (s *shard) onDPSumReq(ctx *mpc.Ctx, w wire) {
	var sum int64
	for _, rec := range s.weights {
		if rec.Comp == w.Comp && w.Span.Contains(rec.Anchor) {
			sum += rec.W
		}
	}
	ctx.Send(int(w.ReplyTo), wire{Kind: kDPSumRep, Seq: w.Seq, W: sum}, 3)
}

func (s *shard) onDPSumRep(w wire) {
	p, ok := s.qpend[w.Seq]
	if !ok {
		return
	}
	p.replies++
	p.sum += w.W
	if p.replies < s.mu {
		return
	}
	s.dpResults[w.Seq] = p.sum
	delete(s.qpend, w.Seq)
}

// onDPPathReq evaluates the OnPath predicate for every owned weighted
// vertex of the component. One pass over the local tree records
// computes, per weighted vertex, its interval [f, l] (min/max of its
// positions on incident records — the owner holds them all) and whether
// a single child interval holds both broadcast appearances; OnPath then
// keeps exactly the vertices of the u–v path (LCA included once).
func (s *shard) onDPPathReq(ctx *mpc.Ctx, w wire) {
	au, av := w.F, w.L
	type pathInfo struct {
		f, l      int
		childBoth bool
	}
	var info map[int32]*pathInfo
	for v, rec := range s.weights {
		if rec.Comp != w.Comp {
			continue
		}
		if info == nil {
			info = make(map[int32]*pathInfo)
		}
		info[v] = &pathInfo{}
	}
	var sum int64
	if len(info) > 0 {
		for ge, rec := range s.tree {
			if rec.comp != w.Comp {
				continue
			}
			cf, cl := childInterval(&rec.pos)
			for _, x := range [2]int{ge.U, ge.V} {
				pi, ok := info[int32(x)]
				if !ok {
					continue
				}
				pu := posOf(&rec.pos, x)
				for _, i := range pu {
					if pi.f == 0 || i < pi.f {
						pi.f = i
					}
					if i > pi.l {
						pi.l = i
					}
				}
				if pu[0] != cf && pu[0] != cl && // x is the parent here
					cf <= au && au <= cl && cf <= av && av <= cl {
					pi.childBoth = true
				}
			}
		}
		for v, pi := range info {
			if treedp.OnPath(pi.f, pi.l, au, av, pi.childBoth) {
				sum += s.weights[v].W
			}
		}
	}
	ctx.Send(int(w.ReplyTo), wire{Kind: kDPSumRep, Seq: w.Seq, W: sum}, 3)
}

// onDPTopReq reports the shard's local argmax over the component's
// owned vertices — every vertex counts, at weight 0 when unrecorded, so
// the global answer is total over the component.
func (s *shard) onDPTopReq(ctx *mpc.Ctx, w wire) {
	reply := wire{Kind: kDPTopRep, Seq: w.Seq}
	for _, v := range s.compVerts[w.Comp] {
		var wt int64
		if rec, ok := s.weights[v]; ok {
			wt = rec.W
		}
		if !reply.Found || wt > reply.W || (wt == reply.W && v < reply.U) {
			reply.Found = true
			reply.U, reply.W = v, wt
		}
	}
	ctx.Send(int(w.ReplyTo), reply, 5)
}

func (s *shard) onDPTopRep(w wire) {
	p, ok := s.qpend[w.Seq]
	if !ok || p.kind != graph.OpTreeTop {
		return
	}
	p.replies++
	if w.Found && (!p.bestFound || w.W > p.bestW || (w.W == p.bestW && w.U < p.bestV)) {
		p.bestFound = true
		p.bestV, p.bestW = w.U, w.W
	}
	if p.replies < s.mu {
		return
	}
	s.dpResults[w.Seq] = int64(p.bestV)
	delete(s.qpend, w.Seq)
}
