package mpc

import "testing"

type bounceMachine struct{}

func (bounceMachine) HandleRound(ctx *Ctx, inbox []Message) {
	for _, m := range inbox {
		if m.Payload == "ping" {
			ctx.Send((m.To+1)%ctx.Machines(), "pong", 1)
		}
	}
}

// TestBatchAccounting pins the BatchStats window semantics: rounds between
// BeginBatch and EndBatch fold into one aggregate, per-update accounting
// nests inside it, and the amortized helpers report against the batch's
// update count.
func TestBatchAccounting(t *testing.T) {
	c := NewCluster(Config{Machines: 4, MemWords: 64})
	for i := 0; i < 4; i++ {
		c.SetMachine(i, bounceMachine{})
	}

	c.BeginBatch(3)
	c.BeginUpdate()
	c.Send(Message{From: -1, To: 0, Payload: "ping", Words: 1})
	c.Run(8)
	inner := c.EndUpdate()
	c.Send(Message{From: -1, To: 1, Payload: "ping", Words: 1})
	c.Run(8)
	b := c.EndBatch()

	if b.Updates != 3 {
		t.Fatalf("batch covers %d updates, want 3", b.Updates)
	}
	if b.Rounds == 0 || b.Rounds < inner.Rounds {
		t.Fatalf("batch rounds %d must cover nested update rounds %d", b.Rounds, inner.Rounds)
	}
	if want := float64(b.Rounds) / 3; b.RoundsPerUpdate() != want {
		t.Fatalf("RoundsPerUpdate %.3f, want %.3f", b.RoundsPerUpdate(), want)
	}
	if b.SumWords == 0 || b.MaxActive == 0 {
		t.Fatalf("batch word/active accounting empty: %+v", b)
	}

	batches := c.Stats().Batches()
	if len(batches) != 1 || !batches[0].Equal(b) {
		t.Fatalf("recorded batches %+v, want [%+v]", batches, b)
	}
	rpu, act, words := c.Stats().MeanBatch()
	if rpu != b.RoundsPerUpdate() || act == 0 || words == 0 {
		t.Fatalf("MeanBatch = (%.2f, %.2f, %.2f)", rpu, act, words)
	}

	// Rounds outside any batch window must not fold in.
	c.Send(Message{From: -1, To: 0, Payload: "ping", Words: 1})
	c.Run(8)
	if got := c.Stats().Batches(); len(got) != 1 || got[0].Rounds != b.Rounds {
		t.Fatal("rounds outside the batch window leaked into the aggregate")
	}

	if z := c.EndBatch(); !z.Equal(BatchStats{}) {
		t.Fatalf("EndBatch without BeginBatch = %+v", z)
	}
}

// TestWaveAccounting pins the per-wave attribution inside a batch window:
// rounds fold into the open wave and the batch simultaneously, scheduling
// rounds outside waves belong to the batch only, and the wave discipline
// (waves only inside batches, never nested, closed before EndBatch) is
// enforced by panics.
func TestWaveAccounting(t *testing.T) {
	c := NewCluster(Config{Machines: 4, MemWords: 64})
	for i := 0; i < 4; i++ {
		c.SetMachine(i, bounceMachine{})
	}

	c.BeginBatch(5)
	c.BeginWave(3)
	c.Send(Message{From: -1, To: 0, Payload: "ping", Words: 1})
	c.Run(8)
	w1 := c.EndWave()
	c.Send(Message{From: -1, To: 1, Payload: "ping", Words: 1}) // scheduling traffic outside any wave
	c.Run(8)
	c.BeginWave(2)
	c.Send(Message{From: -1, To: 2, Payload: "ping", Words: 1})
	c.Run(8)
	c.EndWave()
	b := c.EndBatch()

	if len(b.Waves) != 2 {
		t.Fatalf("batch recorded %d waves, want 2", len(b.Waves))
	}
	if b.Waves[0] != w1 {
		t.Fatalf("EndWave returned %+v, batch recorded %+v", w1, b.Waves[0])
	}
	if b.Waves[0].Updates != 3 || b.Waves[1].Updates != 2 {
		t.Fatalf("wave widths (%d,%d), want (3,2)", b.Waves[0].Updates, b.Waves[1].Updates)
	}
	if b.Waves[0].Rounds == 0 || b.Waves[1].Rounds == 0 {
		t.Fatalf("wave rounds empty: %+v", b.Waves)
	}
	if sum := b.Waves[0].Rounds + b.Waves[1].Rounds; sum >= b.Rounds {
		t.Fatalf("wave rounds %d should undercount batch rounds %d (scheduling rounds are batch-only)", sum, b.Rounds)
	}

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("BeginWave outside batch", func() { c.BeginWave(1) })
	c.BeginBatch(1)
	c.BeginWave(1)
	mustPanic("nested BeginWave", func() { c.BeginWave(1) })
	mustPanic("EndBatch with open wave", func() { c.EndBatch() })
	c.EndWave()
	mustPanic("EndWave without wave", func() { c.EndWave() })
	c.EndBatch()
}
